// Conformance tests for the exact tier (aba, acs): the same scenario —
// composed adversaries, link faults and all — must satisfy the tier's
// guarantees on the deterministic simulator, the loopback cluster and real
// TCP sockets, and on the simulator the parallel engine must replay the
// inline engine's delivery trace byte for byte at every worker count.
//
// Exact consensus has no ε slack: agreement means spread exactly zero, and
// for acs additionally that every honest node decides the same subset and
// the same decision vector, of size at least n−f, carrying real inputs.
package repro_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro"
)

// exactScenarios returns one scenario per exact-tier protocol, each with a
// composed adversary and liveness-preserving link faults (duplicate and
// delay — never unconditional drops, which could starve a quorum).
//
// The aba scenario gives honest nodes unanimous input 1, so the binding
// rule pins the decision and the equivocating node (which two-faces its
// votes per recipient) cannot flip it. The acs scenario's faulty node
// crashes mid-protocol with an input (2) inside the honest range [0,3]:
// whether or not its broadcast lands in the agreed subset, validity holds.
func exactScenarios(seed int64) []repro.Scenario {
	links := []repro.LinkFault{
		{Kind: "duplicate", Edges: [][2]int{{0, 1}}, Params: map[string]float64{"prob": 0.5}},
		{Kind: "delay", Edges: [][2]int{{1, 2}}, Params: map[string]float64{"prob": 0.4, "amount": 5}},
	}
	return []repro.Scenario{
		{
			Name: "aba-equivocate-noise", Graph: "clique:4", Protocol: "aba",
			Inputs: []float64{1, 1, 1, 0}, F: 1, K: 1, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{
				Node: 3, Kind: "equivocate",
				Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 3}}},
			}},
			LinkFaults: links,
		},
		{
			Name: "acs-crash-noise", Graph: "clique:4", Protocol: "acs",
			Inputs: []float64{0, 3, 1, 2}, F: 1, K: 3, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{
				Node: 3, Kind: "crash", Params: map[string]float64{"after": 40},
				Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 1}}},
			}},
			LinkFaults: links,
		},
	}
}

// checkExactResult asserts the exact tier's guarantees on one run: all
// honest nodes decide, agreement is exact (spread zero), and every decided
// value is legitimate for the scenario. For acs it additionally checks the
// decision vectors: identical across honest nodes, at least n−f entries,
// every entry equal to the owning node's real input.
func checkExactResult(t *testing.T, label string, s repro.Scenario, res *repro.Result) {
	t.Helper()
	if !res.Decided {
		t.Fatalf("%s: honest nodes did not all decide", label)
	}
	if res.Spread != 0 {
		t.Fatalf("%s: exact tier decided with nonzero spread %v (outputs %v)", label, res.Spread, res.Outputs)
	}
	if !res.Converged {
		t.Fatalf("%s: not converged: %+v", label, res)
	}
	switch s.Protocol {
	case "aba":
		for id, v := range res.Outputs {
			if v != 1 {
				t.Fatalf("%s: node %d decided %v against honest-unanimous 1", label, id, v)
			}
		}
	case "acs":
		const n, f = 4, 1
		var base map[int]float64
		for _, id := range sortedKeys(res.Vectors) {
			vec := res.Vectors[id]
			if len(vec) < n-f {
				t.Fatalf("%s: node %d vector %v smaller than n-f=%d", label, id, vec, n-f)
			}
			for origin, v := range vec {
				if origin < 0 || origin >= n || v != s.Inputs[origin] {
					t.Fatalf("%s: node %d vector slot %d carries %v, input was %v",
						label, id, origin, v, s.Inputs[origin])
				}
			}
			if base == nil {
				base = vec
			} else if !reflect.DeepEqual(vec, base) {
				t.Fatalf("%s: vectors differ across nodes: %v vs %v", label, vec, base)
			}
		}
		if base == nil {
			t.Fatalf("%s: no honest node reported a decision vector", label)
		}
		if got := len(res.Vectors); got < n-f {
			t.Fatalf("%s: only %d honest vectors reported", label, got)
		}
	}
}

func sortedKeys(m map[int]map[int]float64) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// TestExactCrossRuntime: each exact-tier scenario — composed adversary,
// link faults — must satisfy the tier's guarantees on all three runtimes.
// The agreed subset may legally differ between runtimes (it depends on the
// schedule), so each run is judged on its own terms.
func TestExactCrossRuntime(t *testing.T) {
	for _, seed := range []int64{1, 23} {
		for _, s := range exactScenarios(seed) {
			for _, runtime := range repro.RuntimeNames() {
				s := s
				t.Run(fmt.Sprintf("%s/seed%d/%s", s.Name, seed, runtime), func(t *testing.T) {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					res, err := s.RunOn(ctx, runtime)
					if err != nil {
						t.Fatalf("%s: %v", runtime, err)
					}
					checkExactResult(t, runtime, s, res)
				})
			}
		}
	}
}

// TestExactCrossEngine: on the simulator, the goroutine engine and the
// parallel engine at workers 1, 2 and 8 must replay the inline engine's
// delivery trace byte for byte — the exact tier inherits the determinism
// contract wholesale, including its decision vectors.
func TestExactCrossEngine(t *testing.T) {
	for _, seed := range []int64{1, 23} {
		for _, s := range exactScenarios(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", s.Name, seed), func(t *testing.T) {
				base := runEngine(t, s, "inline", 0)
				checkExactResult(t, "inline", s, base)
				got := runEngine(t, s, "goroutine", 0)
				requireSameRun(t, "goroutine", base, got)
				if !reflect.DeepEqual(got.Vectors, base.Vectors) {
					t.Fatalf("goroutine: vectors diverged: %v vs %v", got.Vectors, base.Vectors)
				}
				for _, w := range []int{1, 2, 8} {
					got := runEngine(t, s, "parallel", w)
					requireSameRun(t, fmt.Sprintf("parallel w=%d", w), base, got)
					if !reflect.DeepEqual(got.Vectors, base.Vectors) {
						t.Fatalf("parallel w=%d: vectors diverged: %v vs %v", w, got.Vectors, base.Vectors)
					}
				}
			})
		}
	}
}
