package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/linkfault"
)

// recordingOutbound captures frames per destination.
type recordingOutbound struct {
	mu    sync.Mutex
	sends map[int]int
}

func (r *recordingOutbound) Send(to int, frame []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sends == nil {
		r.sends = make(map[int]int)
	}
	r.sends[to]++
	return nil
}

func (r *recordingOutbound) count(to int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sends[to]
}

// TestFaultyOutbound pins the cluster-side enforcement of the link-fault
// rules: drops never reach the transport, duplicates reach it twice, and
// delayed frames arrive after (not before) their delay elapses.
func TestFaultyOutbound(t *testing.T) {
	g := graph.Clique(4)
	set, err := linkfault.New(g, []linkfault.Rule{
		{Kind: linkfault.KindDrop, Edges: [][2]int{{0, 1}}},
		{Kind: linkfault.KindDuplicate, Edges: [][2]int{{0, 2}}},
		{Kind: linkfault.KindDelay, Edges: [][2]int{{0, 3}}, Params: map[string]float64{"amount": 30}},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingOutbound{}
	out := FaultyOutbound(rec, set, 0)
	frame := []byte{1, 2, 3}
	for _, to := range []int{1, 2, 3} {
		if err := out.Send(to, frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.count(1); got != 0 {
		t.Errorf("dropped edge delivered %d frames", got)
	}
	if got := rec.count(2); got != 2 {
		t.Errorf("duplicated edge delivered %d frames, want 2", got)
	}
	if got := rec.count(3); got != 0 {
		t.Errorf("delayed frame arrived immediately (%d frames)", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rec.count(3) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := rec.count(3); got != 1 {
		t.Errorf("delayed edge delivered %d frames after the delay, want 1", got)
	}
	dropped, duplicated, delayed := set.Counts()
	if dropped != 1 || duplicated != 1 || delayed != 1 {
		t.Errorf("counts = %d/%d/%d", dropped, duplicated, delayed)
	}
}

// TestFaultyOutboundNilSet pins the zero-cost path: no rules, no wrapper.
func TestFaultyOutboundNilSet(t *testing.T) {
	rec := &recordingOutbound{}
	if out := FaultyOutbound(rec, nil, 0); out != rec {
		t.Error("nil set should return the outbound unchanged")
	}
}
