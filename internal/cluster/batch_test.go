package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestQueuePopBatch(t *testing.T) {
	q := newQueue[int](8)
	for i := 0; i < 5; i++ {
		if !q.push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	// A batch smaller than the depth drains a FIFO prefix; the rest stays.
	batch, ok := q.popBatch(make([]int, 0, 3))
	if !ok || len(batch) != 3 {
		t.Fatalf("popBatch: %v ok=%v, want 3 items", batch, ok)
	}
	for i, v := range batch {
		if v != i {
			t.Fatalf("batch[%d] = %d, want %d (FIFO)", i, v, i)
		}
	}
	batch, ok = q.popBatch(batch[:0])
	if !ok || len(batch) != 2 || batch[0] != 3 || batch[1] != 4 {
		t.Fatalf("second popBatch: %v ok=%v, want [3 4]", batch, ok)
	}
	st := q.snapshot()
	if st.Enqueued != 5 || st.Depth != 0 || st.Shed != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	q.close()
	if _, ok := q.popBatch(batch[:0]); ok {
		t.Fatal("popBatch on a closed queue reported ok")
	}
}

func TestQueuePopBatchWakesBlockedPushers(t *testing.T) {
	q := newQueue[int](2)
	q.push(0)
	q.push(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.push(2) // blocks: queue full
		q.push(3)
	}()
	// Wait for the pusher to block so the wait is counted.
	deadline := time.Now().Add(time.Second)
	for q.snapshot().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pusher never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	batch, ok := q.popBatch(make([]int, 0, 4))
	if !ok || len(batch) != 2 {
		t.Fatalf("popBatch: %v ok=%v", batch, ok)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("batch drain did not wake the blocked pusher")
	}
	batch, ok = q.popBatch(batch[:0])
	if !ok || len(batch) != 2 || batch[0] != 2 || batch[1] != 3 {
		t.Fatalf("after wakeup: %v ok=%v, want [2 3]", batch, ok)
	}
	if st := q.snapshot(); st.Waits != 1 || st.Enqueued != 4 {
		t.Fatalf("stats: %+v, want 1 wait, 4 enqueued", st)
	}
}

// TestQueueShedUnderBatchDrain pins the accounting when producers outrun a
// batching consumer: overflow tryPushes count as shed, drained slots accept
// new frames, and enqueued+shed covers every offered frame exactly once.
func TestQueueShedUnderBatchDrain(t *testing.T) {
	q := newQueue[int](4)
	offered, accepted := 0, 0
	for i := 0; i < 6; i++ {
		offered++
		if q.tryPush(i) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d of %d, want 4 (capacity)", accepted, offered)
	}
	batch, ok := q.popBatch(make([]int, 0, maxBatchFrames))
	if !ok || len(batch) != 4 {
		t.Fatalf("popBatch: %v ok=%v", batch, ok)
	}
	// The drain freed the whole queue: the next burst fits again.
	for i := 6; i < 10; i++ {
		offered++
		if q.tryPush(i) {
			accepted++
		}
	}
	st := q.snapshot()
	if st.Enqueued != int64(accepted) || st.Shed != int64(offered-accepted) {
		t.Fatalf("stats %+v, want enqueued=%d shed=%d", st, accepted, offered-accepted)
	}
	if st.Enqueued+st.Shed != int64(offered) {
		t.Fatalf("enqueued+shed = %d, want every offered frame counted once (%d)", st.Enqueued+st.Shed, offered)
	}
}

// TestQueueBatchAllocBudget is the queue-side alloc fence: steady-state
// push/popBatch churn must not allocate once the queue's backing array has
// grown to the burst size.
func TestQueueBatchAllocBudget(t *testing.T) {
	q := newQueue[[]byte](DefaultQueueCap)
	frame := make([]byte, 64)
	batch := make([][]byte, 0, maxBatchFrames)
	// Prime the backing array to the burst size.
	for i := 0; i < maxBatchFrames; i++ {
		q.tryPush(frame)
	}
	batch, _ = q.popBatch(batch)
	got := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			q.tryPush(frame)
		}
		var ok bool
		if batch, ok = q.popBatch(batch); !ok || len(batch) != 8 {
			t.Fatalf("popBatch: len=%d ok=%v", len(batch), ok)
		}
	})
	if got != 0 {
		t.Errorf("push/popBatch churn allocates %.2f per burst, want 0", got)
	}
}

func TestCoalesceFramesAndTailStart(t *testing.T) {
	frames := [][]byte{
		bytes.Repeat([]byte{0xA0}, 100),
		bytes.Repeat([]byte{0xB1}, 150),
		bytes.Repeat([]byte{0xC2}, 200),
	}
	buf, ends := coalesceFrames(nil, nil, frames)
	if want := 3*4 + 100 + 150 + 200; len(buf) != want {
		t.Fatalf("coalesced %d bytes, want %d", len(buf), want)
	}
	wantEnds := []int{104, 258, 462}
	for i, e := range ends {
		if e != wantEnds[i] {
			t.Fatalf("ends[%d] = %d, want %d", i, e, wantEnds[i])
		}
	}
	// The coalesced stream reads back as the same frames.
	fr := wire.NewFrameReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: err=%v equal=%v", i, err, bytes.Equal(got, want))
		}
		wire.PutBuf(got)
	}

	// tailStart: a prefix covering frame 0 and part of frame 1 replays from 1.
	cases := []struct{ n, want int }{
		{0, 0}, {103, 0}, {104, 1}, {150, 1}, {257, 1}, {258, 2}, {461, 2}, {462, 3},
	}
	for _, tc := range cases {
		if got := tailStart(ends, tc.n); got != tc.want {
			t.Errorf("tailStart(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestCoalesceFramesDropsOversize(t *testing.T) {
	small := []byte{0x01, 0x02}
	huge := make([]byte, wire.MaxFrame+1)
	buf, ends := coalesceFrames(nil, nil, [][]byte{small, huge, small})
	if len(ends) != 3 {
		t.Fatalf("ends len %d, want 3 (parallel to frames)", len(ends))
	}
	// The oversize frame appended nothing: its end equals its predecessor's,
	// so every tailStart treats it as written and it is never replayed.
	if ends[1] != ends[0] {
		t.Fatalf("oversize frame advanced the buffer: ends %v", ends)
	}
	fr := wire.NewFrameReader(bytes.NewReader(buf))
	for i := 0; i < 2; i++ {
		got, err := fr.Next()
		if err != nil || !bytes.Equal(got, small) {
			t.Fatalf("surviving frame %d: err=%v", i, err)
		}
		wire.PutBuf(got)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after the two small frames, got %v", err)
	}
}

// scriptedConn is a fake net.Conn that accepts at most failAfter bytes
// (then reports a broken pipe) and records everything accepted.
type scriptedConn struct {
	mu        sync.Mutex
	wrote     bytes.Buffer
	failAfter int // -1: accept everything
	closed    bool
}

var errScriptedCut = errors.New("scripted connection cut")

func (c *scriptedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.failAfter < 0 || len(p) <= c.failAfter-c.wrote.Len() {
		c.wrote.Write(p)
		return len(p), nil
	}
	n := c.failAfter - c.wrote.Len()
	if n < 0 {
		n = 0
	}
	c.wrote.Write(p[:n])
	return n, errScriptedCut
}

func (c *scriptedConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.wrote.Bytes()...)
}

func (c *scriptedConn) Read([]byte) (int, error) { return 0, io.EOF }
func (c *scriptedConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
func (c *scriptedConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *scriptedConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *scriptedConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptedConn) SetWriteDeadline(time.Time) error { return nil }

// TestDrainLoopPartialWriteReplay pins the batching change's hardest
// invariant: when a coalesced write fails partway through, the reconnected
// stream replays exactly the frames not fully contained in the written
// prefix — no frame lost, none duplicated, order preserved. The frame the
// cut landed in died with the connection, so from the peer's point of view
// every frame arrives at most once and the replayed tail exactly once.
func TestDrainLoopPartialWriteReplay(t *testing.T) {
	frames := [][]byte{
		bytes.Repeat([]byte{0xA0}, 100), // fully inside the written prefix
		bytes.Repeat([]byte{0xB1}, 150), // cut mid-frame: replayed
		bytes.Repeat([]byte{0xC2}, 200), // unwritten: replayed
	}
	// ends = [104, 258, 462]; a 150-byte prefix covers frame 0 in full and
	// cuts frame 1, so the replay must start at frame 1.
	first := &scriptedConn{failAfter: 150}
	second := &scriptedConn{failAfter: -1}
	conns := make(chan net.Conn, 2)
	conns <- first
	conns <- second

	q := newQueue[[]byte](16)
	for _, f := range frames {
		buf := append(wire.GetBuf(), f...)
		if !q.push(buf) {
			t.Fatal("push rejected")
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		drainLoop(ctx, q,
			func(ctx context.Context) (net.Conn, error) {
				select {
				case c := <-conns:
					return c, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
			func(net.Conn) bool { return true })
	}()

	wantReplay := 4 + 150 + 4 + 200
	deadline := time.Now().Add(5 * time.Second)
	for len(second.bytes()) < wantReplay {
		if time.Now().After(deadline) {
			t.Fatalf("replay stalled: second conn has %d of %d bytes", len(second.bytes()), wantReplay)
		}
		time.Sleep(time.Millisecond)
	}
	q.close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drainLoop did not exit after queue close")
	}

	if got := first.bytes(); len(got) != 150 {
		t.Fatalf("first conn accepted %d bytes, want the scripted 150", len(got))
	}
	fr := wire.NewFrameReader(bytes.NewReader(second.bytes()))
	for i, want := range frames[1:] {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("replayed frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replayed frame %d corrupted: %d bytes, want %d", i, len(got), len(want))
		}
		wire.PutBuf(got)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("second conn carries extra frames: %v, want io.EOF", err)
	}
}
