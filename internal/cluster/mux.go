package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/wire"
)

// The Mux is the service tier's transport: one persistent TCP connection
// per directed edge carrying frames for every concurrent consensus
// instance (the instance id rides in the wire frame — codec v4), instead
// of the classic transports' one-cluster-one-instance lifecycle. Per-peer
// outbound queues are bounded (see queue): a daemon that outruns a slow
// peer blocks on Send — backpressure that propagates to the instance event
// loops — or sheds on TrySend, both accounted and surfaced through the
// daemon's metrics plane. Inbound, one reader per in-edge hands raw frames
// to the dispatcher; a dispatcher that blocks (an instance inbox at
// capacity) stalls exactly that one peer connection, which is TCP's own
// flow control doing the rest.

// muxMagic opens every mux connection; the bytes after it are the wire
// codec version and the sender's vertex id (two big-endian bytes, so mux
// clusters can use the full graph.MaxNodes id range — the classic tcp
// hello's single byte caps at 255).
var muxMagic = [4]byte{'A', 'B', 'M', 'X'}

const muxHelloLen = 7

func writeMuxHello(c net.Conn, id int) error {
	if id < 0 || id > 0xFFFF {
		return fmt.Errorf("cluster: vertex id %d does not fit the mux hello", id)
	}
	var buf [muxHelloLen]byte
	copy(buf[:], muxMagic[:])
	buf[4] = wire.Version
	binary.BigEndian.PutUint16(buf[5:], uint16(id))
	_, err := c.Write(buf[:])
	return err
}

func readMuxHello(c net.Conn) (int, error) {
	var buf [muxHelloLen]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		return 0, err
	}
	if [4]byte(buf[:4]) != muxMagic {
		return 0, fmt.Errorf("cluster: bad mux hello magic %q", buf[:4])
	}
	if buf[4] != wire.Version {
		return 0, fmt.Errorf("cluster: peer speaks wire version %d, this build speaks %d", buf[4], wire.Version)
	}
	return int(binary.BigEndian.Uint16(buf[5:])), nil
}

// MuxConfig parameterizes one vertex's multiplexed transport.
type MuxConfig struct {
	// ID is this daemon's vertex; Graph the shared topology.
	ID    int
	Graph *graph.Graph
	// Listener accepts peer connections (bind it before constructing, so
	// addresses are known; see Listen).
	Listener net.Listener
	// Peers maps every out-neighbor of ID to its dial address.
	Peers map[int]string
	// QueueCap bounds each per-peer outbound queue (0 = DefaultQueueCap).
	QueueCap int
	// OnFrame consumes every inbound frame with the true sender (from the
	// handshake — the reliable-link model's sender authentication, which
	// each instance's node re-checks against the frame contents). It is
	// invoked from per-connection reader goroutines and may block; a
	// blocked dispatcher stalls only that peer's connection. Ownership of
	// frame transfers with the call: the bytes are a pooled buffer and the
	// dispatch chain's final consumer releases them with wire.PutBuf (the
	// reader never touches the frame again).
	OnFrame func(from int, frame []byte)
	// OnFrameBatch, when non-nil, replaces OnFrame on the read path: the
	// reader decodes bursts with wire.FrameReader.NextBatch and hands the
	// whole burst over in one call, each frame's routing header already
	// peeked into infos[i] (infos[i].Bad marks a frame whose header did not
	// parse — the consumer accounts for it and releases it). frames[i] is
	// in per-link arrival order. Ownership of every frame buffer transfers
	// with the call, but the frames and infos slices themselves remain the
	// reader's scratch and are reused for the next burst: the consumer must
	// not retain either slice past return. At least one of OnFrame and
	// OnFrameBatch must be set; when both are, OnFrameBatch wins.
	OnFrameBatch func(from int, frames [][]byte, infos []wire.FrameInfo)
}

// Mux is one vertex's persistent multiplexed connection fabric. Create
// with NewMux, launch with Start, transmit with Send/TrySend.
type Mux struct {
	cfg    MuxConfig
	queues map[int]*queue[[]byte]
	wg     sync.WaitGroup
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  []net.Conn
	closed bool

	stopOnce sync.Once
}

// NewMux validates the config and builds the fabric (no goroutines yet).
func NewMux(cfg MuxConfig) (*Mux, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("cluster: mux needs a graph")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Graph.N() {
		return nil, fmt.Errorf("cluster: mux id %d outside graph order %d", cfg.ID, cfg.Graph.N())
	}
	if cfg.Listener == nil {
		return nil, fmt.Errorf("cluster: mux needs a listener")
	}
	if cfg.OnFrame == nil && cfg.OnFrameBatch == nil {
		return nil, fmt.Errorf("cluster: mux needs a frame dispatcher")
	}
	m := &Mux{cfg: cfg, queues: make(map[int]*queue[[]byte])}
	for _, v := range cfg.Graph.Out(cfg.ID) {
		if _, ok := cfg.Peers[v]; !ok {
			return nil, fmt.Errorf("cluster: vertex %d has edge to %d but no peer address for it", cfg.ID, v)
		}
		m.queues[v] = newQueue[[]byte](cfg.QueueCap)
	}
	return m, nil
}

// Send enqueues a frame toward an out-neighbor, blocking while that peer's
// bounded queue is full (the backpressure path). Frames enqueued after
// shutdown are shed silently, like messages in flight when a run ends.
// Ownership of frame transfers to the fabric: the per-edge writer releases
// it to the pool after transmission (or here, when the shutdown shed drops
// it), so the caller must not retain it.
func (m *Mux) Send(to int, frame []byte) error {
	q, ok := m.queues[to]
	if !ok {
		return fmt.Errorf("cluster: mux send over non-edge %d->%d", m.cfg.ID, to)
	}
	if !q.push(frame) {
		wire.PutBuf(frame)
	}
	return nil
}

// TrySend enqueues without blocking; a full queue sheds the frame
// (counted and released) and reports false. The daemon uses this for
// re-floodable control traffic where blocking an event loop is worse than
// retrying. Ownership transfers on every path: a shed frame is released
// here, so the caller must re-encode rather than retry the same slice.
func (m *Mux) TrySend(to int, frame []byte) (bool, error) {
	q, ok := m.queues[to]
	if !ok {
		return false, fmt.Errorf("cluster: mux send over non-edge %d->%d", m.cfg.ID, to)
	}
	accepted := q.tryPush(frame)
	if !accepted {
		wire.PutBuf(frame)
	}
	return accepted, nil
}

// QueueStats aggregates the outbound queues' accounting across peers.
func (m *Mux) QueueStats() QueueStats {
	var s QueueStats
	for _, q := range m.queues {
		s.add(q.snapshot())
	}
	return s
}

// QueueDepths reports each out-neighbor's current queue depth (a gauge for
// the metrics plane).
func (m *Mux) QueueDepths() map[int]int64 {
	out := make(map[int]int64, len(m.queues))
	for to, q := range m.queues {
		out[to] = q.snapshot().Depth
	}
	return out
}

// Start launches the accept loop, one dialer/writer per out-edge, and the
// teardown watcher. The fabric runs until ctx ends or Stop is called;
// either path cancels the internal context, so every goroutine unwinds.
func (m *Mux) Start(ctx context.Context) {
	ctx, m.cancel = context.WithCancel(ctx)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.acceptLoop(ctx)
	}()
	for to, q := range m.queues {
		m.wg.Add(1)
		go func(to int, q *queue[[]byte]) {
			defer m.wg.Done()
			m.writeLoop(ctx, to, q)
		}(to, q)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		<-ctx.Done()
		m.teardown()
	}()
}

// track registers a connection for teardown; it returns false (and closes
// the conn) when the fabric is already stopped.
func (m *Mux) track(c net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		c.Close()
		return false
	}
	m.conns = append(m.conns, c)
	return true
}

func (m *Mux) teardown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	conns := m.conns
	m.conns = nil
	m.closed = true
	m.mu.Unlock()
	if m.cancel != nil {
		m.cancel()
	}
	m.cfg.Listener.Close()
	for _, q := range m.queues {
		q.close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Stop tears the fabric down and joins every goroutine.
func (m *Mux) Stop() { m.stopOnce.Do(func() { m.teardown(); m.wg.Wait() }) }

// acceptLoop serves inbound edges: handshake, validate the claimed peer
// against the topology, then hand every frame to the dispatcher.
func (m *Mux) acceptLoop(ctx context.Context) {
	for {
		c, err := m.cfg.Listener.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		if !m.track(c) {
			return
		}
		m.wg.Add(1)
		go func(c net.Conn) {
			defer m.wg.Done()
			peer, err := readMuxHello(c)
			if err != nil || peer < 0 || peer >= m.cfg.Graph.N() || !m.cfg.Graph.HasEdge(peer, m.cfg.ID) {
				// Not a cluster member with an edge to us: refuse the link.
				c.Close()
				return
			}
			fr := wire.NewFrameReader(c)
			if m.cfg.OnFrameBatch != nil {
				// Batched read path: one NextBatch per socket burst, one
				// dispatcher call per burst. The scratch slices live for the
				// connection and are reused every iteration — the dispatcher
				// contract (see MuxConfig.OnFrameBatch) forbids retaining
				// them, so the steady state allocates nothing.
				frames := make([][]byte, 0, maxBatchFrames)
				infos := make([]wire.FrameInfo, 0, maxBatchFrames)
				for {
					var err error
					frames, infos, err = fr.NextBatch(frames[:0], infos[:0], maxBatchFrames)
					if err != nil {
						c.Close()
						return
					}
					if ctx.Err() != nil {
						releaseFrames(frames)
						c.Close()
						return
					}
					m.cfg.OnFrameBatch(peer, frames, infos) // frame ownership transfers
				}
			}
			for {
				frame, err := fr.Next()
				if err != nil {
					c.Close()
					return
				}
				if ctx.Err() != nil {
					wire.PutBuf(frame)
					c.Close()
					return
				}
				m.cfg.OnFrame(peer, frame) // ownership transfers
			}
		}(c)
	}
}

// dialMux connects to addr with retry/backoff until ctx ends, completing
// the mux handshake — same start-order independence as the classic tcp
// transport: whichever daemon starts first keeps knocking.
func (m *Mux) dialMux(ctx context.Context, addr string) (net.Conn, error) {
	backoff := dialRetryFloor
	d := net.Dialer{}
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if err := writeMuxHello(c, m.cfg.ID); err == nil {
				return c, nil
			}
			c.Close()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialRetryCeil {
			backoff = dialRetryCeil
		}
	}
}

// writeLoop drains one peer's bounded queue onto its persistent connection
// through the shared batched drain (see drainLoop): bursts coalesce into
// one Write syscall, write failures redial with the unwritten tail
// retained — identical reconnect discipline to the classic tcp transport,
// but the connection now outlives any single consensus instance.
func (m *Mux) writeLoop(ctx context.Context, to int, q *queue[[]byte]) {
	drainLoop(ctx, q, func(ctx context.Context) (net.Conn, error) {
		return m.dialMux(ctx, m.cfg.Peers[to])
	}, m.track)
}
