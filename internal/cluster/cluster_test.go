package cluster_test

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/bw"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/sim"
)

// iterativeSpec builds an honest all-to-all iterative run: on a clique with
// f=0 every node collects every value each round, so all nodes agree
// exactly after one round whatever the schedule — a tight, deterministic
// assertion even on live transports.
func iterativeSpec(t *testing.T, n, rounds int) cluster.Spec {
	t.Helper()
	g := graph.Clique(n)
	handlers := make([]sim.Handler, n)
	for i := 0; i < n; i++ {
		h, err := iterative.NewMachine(g, 0, i, rounds, float64(i))
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	return cluster.Spec{Graph: g, Handlers: handlers, Honest: graph.FullSet(n)}
}

func checkAgreement(t *testing.T, out *cluster.Outcome, want int, eps float64) {
	t.Helper()
	if !out.Decided {
		t.Fatalf("run did not decide: %+v", out)
	}
	if len(out.Outputs) != want {
		t.Fatalf("%d outputs, want %d", len(out.Outputs), want)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range out.Outputs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if hi-lo >= eps {
		t.Fatalf("spread %g >= eps %g (outputs %v)", hi-lo, eps, out.Outputs)
	}
}

func TestLoopbackIterativeClique(t *testing.T) {
	out, err := cluster.RunLoopback(context.Background(), iterativeSpec(t, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, out, 4, 1e-9)
	if out.Runtime != "loopback" {
		t.Fatalf("runtime = %q", out.Runtime)
	}
	if out.Sent == 0 || out.Deliveries == 0 || out.ByKind["ITER-VAL"] == 0 {
		t.Fatalf("stats not collected: %+v", out)
	}
	for id, hist := range out.Histories {
		if len(hist) != 3 {
			t.Fatalf("node %d history %v, want 3 rounds", id, hist)
		}
	}
}

// TestLoopbackBWWithSilentFault runs the paper's Algorithm BW on Figure
// 1(a) with a silent Byzantine node — the same setup the simulator's
// experiments use — and asserts the protocol guarantees (termination,
// validity, ε-agreement) hold over the live runtime.
func TestLoopbackBWWithSilentFault(t *testing.T) {
	g := graph.Fig1a()
	inputs := []float64{0, 4, 1, 3, 2}
	const f, k, eps = 1, 4, 0.25
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]sim.Handler, g.N())
	honest := graph.EmptySet
	for i := 0; i < g.N(); i++ {
		if i == 1 {
			handlers[i] = &adversary.Silent{NodeID: i}
			continue
		}
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = m
		honest = honest.Add(i)
	}
	out, err := cluster.RunLoopback(context.Background(),
		cluster.Spec{Graph: g, Handlers: handlers, Honest: honest})
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, out, honest.Count(), eps)
	for id, x := range out.Outputs {
		if x < 0 || x > 4 {
			t.Fatalf("node %d output %g violates validity [0, 4]", id, x)
		}
	}
}

func TestTCPTwoNodeIntegration(t *testing.T) {
	out, err := cluster.RunTCP(context.Background(), iterativeSpec(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, out, 2, 1e-9)
	if out.Runtime != "tcp" {
		t.Fatalf("runtime = %q", out.Runtime)
	}
}

// TestJoinTCPWithPortCollision exercises the daemon path end to end: two
// vertices join over real sockets, and the first vertex's configured port
// is deliberately occupied so Listen must fall back to the next port. The
// dial side starts before the second listener is up, exercising the
// dial-race retry too.
func TestJoinTCPWithPortCollision(t *testing.T) {
	g := graph.Clique(2)
	mk := func(id int) sim.Handler {
		h, err := iterative.NewMachine(g, 0, id, 1, float64(id))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	// Occupy a port so vertex 0's Listen(addr, 4) has to skip it.
	blocker, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	blockedAddr := blocker.Addr().String()

	// Vertex 1's listener is pre-bound so its address is known up front;
	// vertex 0 discovers its own (post-fallback) address via OnListen and
	// hands it to vertex 1 through a channel. Vertex 1 therefore dials an
	// address whose listener may not be accepting yet — the dial-race the
	// retry loop absorbs.
	ln1, err := cluster.Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}

	addr0 := make(chan string, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runCtx, stopNodes := context.WithCancel(ctx)
	defer stopNodes()

	var wg sync.WaitGroup
	outcomes := make([]*cluster.NodeOutcome, 2)
	errs := make([]error, 2)
	decided := make(chan int, 2)

	wg.Add(2)
	go func() {
		defer wg.Done()
		outcomes[0], errs[0] = cluster.JoinTCP(runCtx, cluster.JoinConfig{
			ID: 0, Graph: g, Handler: mk(0),
			Listen: blockedAddr, ListenAttempts: 4,
			Peers:    map[int]string{1: ln1.Addr().String()},
			OnListen: func(a string) { addr0 <- a },
			OnDecide: func(int, float64) { decided <- 0 },
		})
	}()
	go func() {
		defer wg.Done()
		outcomes[1], errs[1] = cluster.JoinTCP(runCtx, cluster.JoinConfig{
			ID: 1, Graph: g, Handler: mk(1),
			Listener: ln1,
			Peers:    map[int]string{0: <-addr0},
			OnDecide: func(int, float64) { decided <- 1 },
		})
	}()

	for i := 0; i < 2; i++ {
		select {
		case <-decided:
		case <-ctx.Done():
			t.Fatal("nodes never decided")
		}
	}
	stopNodes()
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		if !outcomes[i].Decided || outcomes[i].Output != 0.5 {
			t.Fatalf("join %d outcome = %+v, want decided 0.5", i, outcomes[i])
		}
	}
	if outcomes[0].Addr == blockedAddr {
		t.Fatalf("vertex 0 bound the occupied port %s", blockedAddr)
	}
}

// TestJoinTCPLateJoiner exercises joining mid-instance: two of three
// vertices start immediately and send their round-1 values toward the
// third, whose JoinTCP only begins well after the instance is underway.
// Its pre-bound listener holds the early connections in the accept
// backlog, so the latecomer must drain already-queued frames on join; the
// early vertices (f=0, so each round waits for every in-neighbor) are
// blocked on it and may only decide once it catches up.
func TestJoinTCPLateJoiner(t *testing.T) {
	const n = 3
	g := graph.Clique(n)
	mk := func(id int) sim.Handler {
		h, err := iterative.NewMachine(g, 0, id, 2, float64(id))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	listeners := make([]net.Listener, n)
	peers := make(map[int]string, n)
	for i := range listeners {
		ln, err := cluster.Listen("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runCtx, stopNodes := context.WithCancel(ctx)
	defer stopNodes()

	var wg sync.WaitGroup
	outcomes := make([]*cluster.NodeOutcome, n)
	errs := make([]error, n)
	decided := make(chan int, n)
	join := func(i int) {
		defer wg.Done()
		others := make(map[int]string, n-1)
		for j, addr := range peers {
			if j != i {
				others[j] = addr
			}
		}
		outcomes[i], errs[i] = cluster.JoinTCP(runCtx, cluster.JoinConfig{
			ID: i, Graph: g, Handler: mk(i),
			Listener: listeners[i],
			Peers:    others,
			OnDecide: func(int, float64) { decided <- i },
		})
	}

	wg.Add(n)
	go join(0)
	go join(1)
	go func() {
		time.Sleep(300 * time.Millisecond) // instance well underway
		join(2)
	}()

	for i := 0; i < n; i++ {
		select {
		case <-decided:
		case <-ctx.Done():
			t.Fatal("nodes never decided")
		}
	}
	stopNodes()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		if !outcomes[i].Decided || outcomes[i].Output != 1 {
			t.Fatalf("join %d outcome = %+v, want decided 1 (mean of 0,1,2)", i, outcomes[i])
		}
	}
}

func TestListenPortFallback(t *testing.T) {
	blocker, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	addr := blocker.Addr().String()

	if _, err := cluster.Listen(addr, 1); err == nil {
		t.Fatal("want collision error with a single attempt")
	}
	ln, err := cluster.Listen(addr, 8)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	defer ln.Close()
	if ln.Addr().String() == addr {
		t.Fatal("fallback bound the occupied address")
	}
}

// TestLoopbackTimeoutUndecided checks the non-terminating path: all-silent
// handlers never decide, so the run must come back within its timeout with
// Decided false and no error.
func TestLoopbackTimeoutUndecided(t *testing.T) {
	g := graph.Clique(2)
	spec := cluster.Spec{
		Graph:    g,
		Handlers: []sim.Handler{&adversary.Silent{NodeID: 0}, &adversary.Silent{NodeID: 1}},
		Honest:   graph.FullSet(2),
		Timeout:  200 * time.Millisecond,
	}
	start := time.Now()
	out, err := cluster.RunLoopback(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Decided || len(out.Outputs) != 0 {
		t.Fatalf("outcome = %+v, want undecided", out)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("timeout did not bound the run")
	}
}

func TestLoopbackCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.Clique(2)
	spec := cluster.Spec{
		Graph:    g,
		Handlers: []sim.Handler{&adversary.Silent{NodeID: 0}, &adversary.Silent{NodeID: 1}},
		Honest:   graph.FullSet(2),
	}
	if _, err := cluster.RunLoopback(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	g := graph.Clique(2)
	h0, _ := iterative.NewMachine(g, 0, 0, 1, 0)
	cases := []cluster.Spec{
		{},                                      // no graph
		{Graph: g, Handlers: []sim.Handler{h0}}, // wrong arity
		{Graph: g, Handlers: []sim.Handler{h0, h0}},  // duplicate id
		{Graph: g, Handlers: []sim.Handler{h0, nil}}, // nil handler
	}
	for i, spec := range cases {
		if _, err := cluster.RunLoopback(context.Background(), spec); err == nil {
			t.Errorf("spec %d: want error", i)
		}
	}
}
