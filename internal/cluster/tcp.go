package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/linkfault"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wire"
)

// The TCP medium maps each directed edge (u, v) to one TCP connection
// dialed by the sender u. A connection opens with a fixed-size hello —
// magic, codec version, sender vertex — after which it carries
// length-prefixed wire frames, one per protocol message, in send order
// (TCP gives the per-edge FIFO reliability the model assumes). Dialing
// retries with backoff until the context ends, so the inevitable races of
// multi-process startup — the peer's listener not up yet — resolve
// themselves; a write failure mid-run redials the same way, keeping the
// frame that failed.

// helloMagic opens every connection; the byte after it is the wire codec
// version, then the sender's vertex id.
var helloMagic = [4]byte{'A', 'B', 'A', 'C'}

const helloLen = 6

// dialRetryFloor/Ceil bound the reconnect backoff.
const (
	dialRetryFloor = 5 * time.Millisecond
	dialRetryCeil  = 250 * time.Millisecond
)

func writeHello(c net.Conn, id int) error {
	if id < 0 || id > 255 {
		return fmt.Errorf("cluster: vertex id %d does not fit the hello byte", id)
	}
	var buf [helloLen]byte
	copy(buf[:], helloMagic[:])
	buf[4] = wire.Version
	buf[5] = byte(id)
	_, err := c.Write(buf[:])
	return err
}

func readHello(c net.Conn) (int, error) {
	var buf [helloLen]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		return 0, err
	}
	if [4]byte(buf[:4]) != helloMagic {
		return 0, fmt.Errorf("cluster: bad hello magic %q", buf[:4])
	}
	if buf[4] != wire.Version {
		return 0, fmt.Errorf("cluster: peer speaks wire version %d, this build speaks %d", buf[4], wire.Version)
	}
	return int(buf[5]), nil
}

// Listen binds a TCP listener on addr. When the port is taken and non-zero,
// it retries the next `attempts-1` consecutive ports — the port-collision
// fallback multi-process runs on one host need. The bound address is
// recoverable from the listener.
func Listen(addr string, attempts int) (net.Listener, error) {
	if attempts < 1 {
		attempts = 1
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen address %q: bad port: %w", addr, err)
	}
	if port == 0 {
		attempts = 1 // the kernel picks; collisions cannot happen
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		ln, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(port+i)))
		if err == nil {
			return ln, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: no free port in %d attempts from %s: %w", attempts, addr, lastErr)
}

// tcpEndpoint is one vertex's TCP presence: a listener accepting its
// in-edges, one dialer+writer per out-edge (fed by a bounded queue — the
// node's send path blocks only when a peer falls DefaultQueueCap frames
// behind, the live tier's backpressure contract), and the reader
// goroutines feeding the node's inbox.
type tcpEndpoint struct {
	id    int
	g     *graph.Graph
	ln    net.Listener
	peers map[int]string // out-neighbor -> dial address

	queues map[int]*queue[[]byte]
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  []net.Conn
	closed bool

	stopOnce sync.Once
}

func newTCPEndpoint(id int, g *graph.Graph, ln net.Listener, peers map[int]string) (*tcpEndpoint, error) {
	e := &tcpEndpoint{id: id, g: g, ln: ln, peers: peers, queues: make(map[int]*queue[[]byte])}
	for _, v := range g.Out(id) {
		if _, ok := peers[v]; !ok {
			return nil, fmt.Errorf("cluster: vertex %d has edge to %d but no peer address for it", id, v)
		}
		e.queues[v] = newQueue[[]byte](0)
	}
	return e, nil
}

// Send implements node.Outbound: enqueue toward the per-edge writer.
// Ownership of frame transfers to the endpoint; the writer releases it to
// the pool after transmission (or here, when a shutdown shed drops it).
func (e *tcpEndpoint) Send(to int, frame []byte) error {
	q, ok := e.queues[to]
	if !ok {
		return fmt.Errorf("cluster: tcp send over non-edge %d->%d", e.id, to)
	}
	if !q.push(frame) {
		wire.PutBuf(frame)
	}
	return nil
}

// track registers a connection for teardown; it returns false (and closes
// the conn) when the endpoint is already stopped.
func (e *tcpEndpoint) track(c net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return false
	}
	e.conns = append(e.conns, c)
	return true
}

// start launches the accept loop and one dialer/writer per out-edge.
func (e *tcpEndpoint) start(ctx context.Context, nd *node.Node) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.acceptLoop(ctx, nd)
	}()
	for to, q := range e.queues {
		e.wg.Add(1)
		go func(to int, q *queue[[]byte]) {
			defer e.wg.Done()
			e.writeLoop(ctx, to, q)
		}(to, q)
	}
	// Teardown watcher: when the run context ends, close the listener and
	// every connection so blocked reads/writes/accepts return.
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		<-ctx.Done()
		e.teardown()
	}()
}

func (e *tcpEndpoint) teardown() {
	e.mu.Lock()
	conns := e.conns
	e.conns = nil
	e.closed = true
	e.mu.Unlock()
	e.ln.Close()
	for _, q := range e.queues {
		q.close()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (e *tcpEndpoint) stop() { e.stopOnce.Do(func() { e.teardown(); e.wg.Wait() }) }

func (e *tcpEndpoint) queueStats() QueueStats {
	var s QueueStats
	for _, q := range e.queues {
		s.add(q.snapshot())
	}
	return s
}

// acceptLoop serves inbound edges: handshake, validate the claimed peer
// against the topology, then pump frames into the node's inbox.
func (e *tcpEndpoint) acceptLoop(ctx context.Context, nd *node.Node) {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		if !e.track(c) {
			return
		}
		e.wg.Add(1)
		go func(c net.Conn) {
			defer e.wg.Done()
			peer, err := readHello(c)
			if err != nil || peer < 0 || peer >= e.g.N() || !e.g.HasEdge(peer, e.id) {
				// Not a cluster member with an edge to us: refuse the link.
				c.Close()
				return
			}
			fr := wire.NewFrameReader(c)
			frames := make([][]byte, 0, maxBatchFrames)
			infos := make([]wire.FrameInfo, 0, maxBatchFrames)
			for {
				var err error
				// One NextBatch per socket burst, one slab push per burst.
				// The classic tier's node decodes every frame fully, so the
				// peeked infos are unused here; the batch read still saves
				// the per-frame header syscall discipline and channel ops.
				frames, infos, err = fr.NextBatch(frames[:0], infos[:0], maxBatchFrames)
				if err != nil {
					c.Close()
					return
				}
				slab := node.GetSlab()
				for _, frame := range frames {
					slab = append(slab, node.Inbound{From: peer, Frame: frame})
				}
				// PushBatch transfers ownership of the slab and every frame;
				// on false (node shut down, ctx cancelled) everything is
				// still ours to release.
				if !nd.PushBatch(ctx, slab) {
					releaseFrames(frames)
					node.PutSlab(slab)
					c.Close()
					return
				}
			}
		}(c)
	}
}

// dial connects to addr with retry/backoff until ctx ends — the
// reconnect-on-dial-race behavior: whichever process starts first just
// keeps knocking until the peer's listener is up.
func (e *tcpEndpoint) dial(ctx context.Context, addr string) (net.Conn, error) {
	backoff := dialRetryFloor
	d := net.Dialer{}
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if err := writeHello(c, e.id); err == nil {
				return c, nil
			}
			c.Close()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialRetryCeil {
			backoff = dialRetryCeil
		}
	}
}

// writeLoop drains the per-edge queue onto the connection through the
// shared batched drain (see drainLoop): bursts coalesce into one Write
// syscall; a write failure backs off, redials, and replays the unwritten
// tail of the batch.
func (e *tcpEndpoint) writeLoop(ctx context.Context, to int, q *queue[[]byte]) {
	drainLoop(ctx, q, func(ctx context.Context) (net.Conn, error) {
		return e.dial(ctx, e.peers[to])
	}, e.track)
}

// tcpNetwork is the in-process harness form of the medium: one endpoint
// per vertex, listeners bound up front on ephemeral ports so addresses are
// discovered before anything dials.
type tcpNetwork struct {
	g         *graph.Graph
	endpoints []*tcpEndpoint
	stopOnce  sync.Once
}

func newTCPNetwork(g *graph.Graph) (*tcpNetwork, error) {
	if g == nil {
		return nil, fmt.Errorf("cluster: tcp needs a graph")
	}
	n := g.N()
	listeners := make([]net.Listener, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := Listen("127.0.0.1:0", 1)
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tn := &tcpNetwork{g: g, endpoints: make([]*tcpEndpoint, n)}
	for i := 0; i < n; i++ {
		e, err := newTCPEndpoint(i, g, listeners[i], addrs)
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, err
		}
		tn.endpoints[i] = e
	}
	return tn, nil
}

func (tn *tcpNetwork) name() string { return "tcp" }

func (tn *tcpNetwork) link(id int) node.Outbound { return tn.endpoints[id] }

func (tn *tcpNetwork) start(ctx context.Context, nodes []*node.Node) error {
	for i, e := range tn.endpoints {
		e.start(ctx, nodes[i])
	}
	return nil
}

func (tn *tcpNetwork) stop() {
	tn.stopOnce.Do(func() {
		for _, e := range tn.endpoints {
			e.stop()
		}
	})
}

func (tn *tcpNetwork) queueStats() QueueStats {
	var s QueueStats
	for _, e := range tn.endpoints {
		s.add(e.queueStats())
	}
	return s
}

// JoinConfig describes one vertex joining a (possibly multi-process) TCP
// cluster: its own machine, where to listen for in-edges, and where to
// find the vertices it has out-edges to.
type JoinConfig struct {
	ID      int
	Graph   *graph.Graph
	Handler sim.Handler
	// Listener, when non-nil, is used as-is (the harness path). Otherwise
	// Listen ("host:port"; empty means 127.0.0.1:0) is bound with
	// ListenAttempts consecutive-port fallback.
	Listener       net.Listener
	Listen         string
	ListenAttempts int
	// Peers maps every out-neighbor of ID to its dial address.
	Peers map[int]string
	// LinkFaults, when non-nil, applies per-edge link failures to this
	// vertex's outbound frames (see FaultyOutbound). Every member of a
	// multi-process cluster compiles the same rule set from the shared
	// scenario; each consults only its own out-edges, so the per-edge
	// seeded streams agree across processes.
	LinkFaults *linkfault.Set
	// Observer and OnDecide are passed to the node runtime.
	Observer sim.Observer
	OnDecide func(id int, output float64)
	// OnListen, when non-nil, is invoked with the bound listen address
	// before any dialing starts (operators log it; tests discover fallback
	// ports through it).
	OnListen func(addr string)
}

// NodeOutcome reports one vertex's run.
type NodeOutcome struct {
	ID      int
	Output  float64
	Decided bool
	Addr    string
	Stats   node.Stats
}

// JoinTCP runs one vertex of a TCP cluster until ctx ends (the caller
// decides how long to keep serving after deciding — in the asynchronous
// model honest nodes keep relaying for their peers). It returns the
// vertex's outcome; cancellation is the normal exit and is not an error.
func JoinTCP(ctx context.Context, cfg JoinConfig) (*NodeOutcome, error) {
	if cfg.Graph == nil {
		return nil, errors.New("cluster: join needs a graph")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Graph.N() {
		return nil, fmt.Errorf("cluster: join id %d outside graph order %d", cfg.ID, cfg.Graph.N())
	}
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if ln, err = Listen(addr, cfg.ListenAttempts); err != nil {
			return nil, err
		}
	}
	e, err := newTCPEndpoint(cfg.ID, cfg.Graph, ln, cfg.Peers)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr().String())
	}
	nd, err := node.New(node.Config{
		ID:       cfg.ID,
		Graph:    cfg.Graph,
		Handler:  cfg.Handler,
		Out:      FaultyOutbound(e, cfg.LinkFaults, cfg.ID),
		Observer: cfg.Observer,
		OnDecide: cfg.OnDecide,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.start(runCtx, nd)
	runErr := nd.Run(runCtx)
	cancel()
	e.stop()
	out := &NodeOutcome{ID: cfg.ID, Addr: ln.Addr().String(), Stats: nd.Stats()}
	out.Output, out.Decided = nd.Output()
	if runErr != nil {
		return out, fmt.Errorf("cluster: join: %w", runErr)
	}
	return out, nil
}
