package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/transport"
	"repro/internal/wire"
)

// muxPair builds and starts two Mux endpoints over a 2-clique on loopback
// listeners, returning them plus a per-endpoint inbound sink.
func muxPair(t *testing.T, ctx context.Context, qcap int) (ms [2]*Mux, got [2]chan Inbound2) {
	t.Helper()
	g := graph.Clique(2)
	var err error
	var ls [2]net.Listener
	for i := range ls {
		if ls[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	addrs := [2]string{ls[0].Addr().String(), ls[1].Addr().String()}
	for i := range ms {
		i := i
		got[i] = make(chan Inbound2, 64)
		ms[i], err = NewMux(MuxConfig{
			ID:       i,
			Graph:    g,
			Listener: ls[i],
			Peers:    map[int]string{1 - i: addrs[1-i]},
			QueueCap: qcap,
			OnFrame:  func(from int, frame []byte) { got[i] <- Inbound2{from, frame} },
		})
		if err != nil {
			t.Fatal(err)
		}
		ms[i].Start(ctx)
		t.Cleanup(ms[i].Stop)
	}
	return ms, got
}

type Inbound2 struct {
	From  int
	Frame []byte
}

func recvFrame(t *testing.T, ch chan Inbound2) Inbound2 {
	t.Helper()
	select {
	case in := <-ch:
		return in
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for mux frame")
		return Inbound2{}
	}
}

func TestMuxRoundTrip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ms, got := muxPair(t, ctx, 0)

	// Frames carry distinct instance ids over the same persistent pair of
	// connections — the multiplexing the service tier rests on.
	for inst := uint64(0); inst < 4; inst++ {
		frame, err := wire.EncodeInstanceMessage(inst, transport.Message{
			From: 0, To: 1, Payload: bw.ValPayload{Round: 1, Value: float64(inst)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ms[0].Send(1, frame); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		in := recvFrame(t, got[1])
		if in.From != 0 {
			t.Fatalf("frame attributed to %d, want 0", in.From)
		}
		fi, err := wire.PeekFrame(in.Frame)
		if err != nil {
			t.Fatal(err)
		}
		seen[fi.Inst] = true
	}
	for inst := uint64(0); inst < 4; inst++ {
		if !seen[inst] {
			t.Fatalf("instance %d frame never arrived (got %v)", inst, seen)
		}
	}

	// And the reverse direction.
	frame, err := wire.EncodeInstanceMessage(9, transport.Message{
		From: 1, To: 0, Payload: bw.ValPayload{Round: 1, Value: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms[1].Send(0, frame); err != nil {
		t.Fatal(err)
	}
	if in := recvFrame(t, got[0]); in.From != 1 {
		t.Fatalf("frame attributed to %d, want 1", in.From)
	}

	st := ms[0].QueueStats()
	if st.Enqueued != 4 {
		t.Fatalf("endpoint 0 enqueued %d frames, want 4", st.Enqueued)
	}
	if d := ms[0].QueueDepths(); len(d) != 1 {
		t.Fatalf("endpoint 0 has %d peer queues, want 1", len(d))
	}
}

func TestMuxRejectsNonEdgeSend(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ms, _ := muxPair(t, ctx, 0)
	if err := ms[0].Send(0, []byte{1}); err == nil {
		t.Fatal("self-send over a non-edge was accepted")
	}
	if _, err := ms[0].TrySend(5, []byte{1}); err == nil {
		t.Fatal("send to an unknown vertex was accepted")
	}
}

func TestMuxTrySendShedsWhenFull(t *testing.T) {
	// No Start: nothing drains the queue, so a capacity-2 queue sheds the
	// third TrySend and counts it.
	g := graph.Clique(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m, err := NewMux(MuxConfig{
		ID: 0, Graph: g, Listener: l,
		Peers:    map[int]string{1: "127.0.0.1:1"},
		QueueCap: 2,
		OnFrame:  func(int, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if ok, err := m.TrySend(1, []byte{byte(i)}); err != nil || !ok {
			t.Fatalf("TrySend %d = %v, %v; want accept", i, ok, err)
		}
	}
	if ok, err := m.TrySend(1, []byte{2}); err != nil || ok {
		t.Fatalf("TrySend over full queue = %v, %v; want shed", ok, err)
	}
	st := m.QueueStats()
	if st.Shed != 1 || st.Enqueued != 2 || st.MaxDepth != 2 {
		t.Fatalf("stats = %+v; want 2 enqueued, 1 shed, max depth 2", st)
	}
}

func TestMuxLateListener(t *testing.T) {
	// Endpoint 0 starts sending before endpoint 1 exists; the dial retry
	// loop delivers once 1 comes up (start-order independence).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := graph.Clique(2)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l1.Addr().String()
	l1.Close() // free the port; endpoint 1 will rebind it later

	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m0, err := NewMux(MuxConfig{
		ID: 0, Graph: g, Listener: l0,
		Peers:   map[int]string{1: addr1},
		OnFrame: func(int, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	m0.Start(ctx)
	defer m0.Stop()

	frame, err := wire.EncodeInstanceMessage(3, transport.Message{
		From: 0, To: 1, Payload: bw.ValPayload{Round: 1, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.Send(1, frame); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // let a few dial attempts fail

	l1b, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr1, err)
	}
	got := make(chan Inbound2, 1)
	m1, err := NewMux(MuxConfig{
		ID: 1, Graph: g, Listener: l1b,
		Peers:   map[int]string{0: l0.Addr().String()},
		OnFrame: func(from int, f []byte) { got <- Inbound2{from, f} },
	})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start(ctx)
	defer m1.Stop()

	in := recvFrame(t, got)
	fi, err := wire.PeekFrame(in.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if in.From != 0 || fi.Inst != 3 {
		t.Fatalf("late-listener frame from=%d inst=%d, want from=0 inst=3", in.From, fi.Inst)
	}
}

func TestMuxRejectsBadHello(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := graph.Clique(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	frames := 0
	m, err := NewMux(MuxConfig{
		ID: 0, Graph: g, Listener: l,
		Peers: map[int]string{1: "127.0.0.1:1"},
		OnFrame: func(int, []byte) {
			mu.Lock()
			frames++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start(ctx)
	defer m.Stop()

	// Wrong magic: the connection must be refused without dispatching.
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("NOPE"))
	c.Write(make([]byte, 16))
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("connection with bad magic stayed open")
	}
	c.Close()

	// Claimed id outside the graph: also refused.
	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMuxHello(c2, 7); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Read(buf); err == nil {
		t.Fatal("connection claiming an out-of-graph id stayed open")
	}
	c2.Close()

	mu.Lock()
	defer mu.Unlock()
	if frames != 0 {
		t.Fatalf("%d frames dispatched from refused connections", frames)
	}
}
