package cluster

import (
	"fmt"
	"sync"

	"context"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/wire"
)

// loopback is the in-process transport: one bounded frame queue per
// directed edge (see queue — push blocks when a peer falls DefaultQueueCap
// frames behind), one pump goroutine per edge moving frames into the
// receiver's inbox. Per-edge order is FIFO (the reliable-link assumption);
// the interleaving across edges is whatever the Go scheduler produces — a
// legal asynchronous schedule, different from the simulator's seeded one.
type loopback struct {
	g      *graph.Graph
	edges  map[[2]int]*queue[[]byte]
	stopMu sync.Once
	wg     sync.WaitGroup
}

func newLoopback(g *graph.Graph) (*loopback, error) {
	if g == nil {
		return nil, fmt.Errorf("cluster: loopback needs a graph")
	}
	lb := &loopback{g: g, edges: make(map[[2]int]*queue[[]byte], g.M())}
	for _, e := range g.Edges() {
		lb.edges[e] = newQueue[[]byte](0)
	}
	return lb, nil
}

func (lb *loopback) name() string { return "loopback" }

// loopLink is one vertex's outbound view of the loopback medium.
type loopLink struct {
	lb   *loopback
	from int
}

func (l loopLink) Send(to int, frame []byte) error {
	q, ok := l.lb.edges[[2]int{l.from, to}]
	if !ok {
		// Outboxes already drop non-edge sends; reaching here is a harness
		// bug, not adversarial behavior.
		return fmt.Errorf("cluster: loopback send over non-edge %d->%d", l.from, to)
	}
	// A push against a closed queue means the run is shutting down; the
	// frame is shed (and released) like any message still in flight at the
	// end of a run. Ownership transfers to the medium either way.
	if !q.push(frame) {
		wire.PutBuf(frame)
	}
	return nil
}

func (lb *loopback) link(id int) node.Outbound { return loopLink{lb: lb, from: id} }

func (lb *loopback) start(ctx context.Context, nodes []*node.Node) error {
	for e, q := range lb.edges {
		from, to := e[0], e[1]
		lb.wg.Add(1)
		go func(q *queue[[]byte], from int, nd *node.Node) {
			defer lb.wg.Done()
			// Drain in batches — one queue lock round-trip per burst — and
			// forward each burst as one inbox slab (one channel op); per-edge
			// FIFO is preserved because this pump is the edge's only consumer
			// and the slab keeps pop order.
			batch := make([][]byte, 0, maxBatchFrames)
			for {
				var ok bool
				if batch, ok = q.popBatch(batch); !ok {
					return
				}
				slab := node.GetSlab()
				for _, frame := range batch {
					slab = append(slab, node.Inbound{From: from, Frame: frame})
				}
				if !nd.PushBatch(ctx, slab) {
					releaseFrames(batch)
					node.PutSlab(slab)
					return
				}
			}
		}(q, from, nodes[to])
	}
	// Close the queues when the run context ends so pumps blocked in pop
	// wake up.
	go func() {
		<-ctx.Done()
		for _, q := range lb.edges {
			q.close()
		}
	}()
	return nil
}

func (lb *loopback) stop() {
	lb.stopMu.Do(func() {
		for _, q := range lb.edges {
			q.close()
		}
		lb.wg.Wait()
	})
}

func (lb *loopback) queueStats() QueueStats {
	var s QueueStats
	for _, q := range lb.edges {
		s.add(q.snapshot())
	}
	return s
}
