package cluster

import (
	"context"
	"net"
	"time"

	"repro/internal/wire"
)

// The batched write path shared by the tcp and mux transports: drain the
// per-edge bounded queue in batches (one lock round-trip per burst, see
// queue.popBatch), coalesce each batch into a single reused buffer with the
// length prefixes appended in place (wire.AppendRawFrame), and hand the
// whole batch to the kernel as one Write syscall. A write failure redials
// with the unwritten tail retained and replays it — exactly once from the
// peer's point of view, because a frame cut mid-write died with the broken
// connection — keeping the redial/backoff semantics of the old
// one-frame-at-a-time loops.

const (
	// maxBatchFrames caps one coalesced write. The cap bounds both the
	// latency a frame can sit behind earlier frames of its own batch and
	// the replay cost after a partial write.
	maxBatchFrames = 64
	// maxRetainedCoalesce bounds the coalesce buffer kept across batches;
	// a rare giant batch does not park its buffer on the writer forever.
	maxRetainedCoalesce = 1 << 20
)

// coalesceFrames appends each frame, length-prefixed, to buf and records
// in ends the buffer offset at which each frame is complete (parallel to
// frames). An oversized frame appends nothing — its end equals its
// predecessor's, so the replay logic treats it as written and it is
// dropped, like a frame shed at the queue.
func coalesceFrames(buf []byte, ends []int, frames [][]byte) ([]byte, []int) {
	for _, f := range frames {
		if next, err := wire.AppendRawFrame(buf, f); err == nil {
			buf = next
		}
		ends = append(ends, len(buf))
	}
	return buf, ends
}

// tailStart returns the index of the first frame not fully contained in a
// written prefix of n bytes — the start of the batch tail a reconnecting
// writer must replay. Frames with ends[i] <= n reached the kernel buffer
// in full and count as transmitted (the same at-most-once caveat a
// single-frame Write has: bytes accepted by the kernel may still be lost
// with the connection).
func tailStart(ends []int, n int) int {
	for i, e := range ends {
		if e > n {
			return i
		}
	}
	return len(ends)
}

// releaseFrames returns a batch's frame buffers to the pool (the writer is
// each frame's final owner).
func releaseFrames(frames [][]byte) {
	for _, f := range frames {
		wire.PutBuf(f)
	}
}

// drainLoop is the shared per-edge writer: batches from q, coalesced
// writes to a connection obtained from dial, redial with tail replay on
// write failure, exit when the queue closes or ctx ends. track registers
// each new connection for the owner's teardown (false means the owner is
// already stopped). dial must block-retry until ctx ends, returning an
// error only for shutdown — both transports' diallers do.
func drainLoop(ctx context.Context, q *queue[[]byte], dial func(context.Context) (net.Conn, error), track func(net.Conn) bool) {
	var (
		c       net.Conn
		backoff = dialRetryFloor
		batch   = make([][]byte, 0, maxBatchFrames)
		buf     = make([]byte, 0, minPooledBatchBuf)
		ends    = make([]int, 0, maxBatchFrames)
	)
	for {
		var ok bool
		if batch, ok = q.popBatch(batch); !ok {
			return
		}
		tail := batch
		buf, ends = coalesceFrames(buf[:0], ends[:0], tail)
		for len(tail) > 0 {
			if c == nil {
				var err error
				if c, err = dial(ctx); err != nil {
					releaseFrames(tail)
					return // context ended while dialing: shutdown
				}
				if !track(c) {
					releaseFrames(tail)
					return
				}
			}
			n, err := c.Write(buf)
			if err == nil {
				backoff = dialRetryFloor
				releaseFrames(tail)
				break
			}
			// The written prefix is transmitted; the frame the cut landed in
			// died with the connection, so the replay starts there and the
			// peer sees every frame exactly once.
			c.Close()
			c = nil
			k := tailStart(ends, n)
			releaseFrames(tail[:k])
			tail = tail[k:]
			buf, ends = coalesceFrames(buf[:0], ends[:0], tail)
			// Back off before the redial: a peer that accepts the TCP
			// handshake but rejects the link would otherwise drive a
			// dial-ok/write-fail cycle at full speed.
			select {
			case <-ctx.Done():
				releaseFrames(tail)
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > dialRetryCeil {
				backoff = dialRetryCeil
			}
		}
		if cap(buf) > maxRetainedCoalesce {
			buf = make([]byte, 0, minPooledBatchBuf)
		}
		// Frames were released above; drop the batch's references too so a
		// long-idle writer does not pin released buffers.
		for i := range batch {
			batch[i] = nil
		}
	}
}

// minPooledBatchBuf seeds the coalesce buffer; it grows organically to the
// edge's typical batch footprint.
const minPooledBatchBuf = 4 << 10
