// Package cluster materializes a whole protocol run as live nodes over a
// real transport: one node.Node per graph vertex (faulty vertices carry
// their adversary-wrapped handlers), connected either by the in-process
// loopback transport (reliable per-edge FIFO channels through the wire
// codec — what the tests use) or by TCP sockets on localhost or a real
// network. It is the execution tier next to internal/sim: the same
// machines, the same topology rules, but actual concurrency and actual
// serialization instead of a centrally scheduled message pool.
//
// The harness launches every node, waits until every honest vertex has
// decided (or the context ends), then shuts the runtime down and collects
// outputs and traffic statistics. Any schedule the transports produce is a
// legal asynchronous execution, so the protocol guarantees checked by the
// simulator — validity and ε-agreement — must hold here too; the
// cross-runtime conformance tests in the root package assert exactly that.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/linkfault"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Spec describes one materialized cluster run.
type Spec struct {
	// Graph is the topology; Handlers[i] is vertex i's machine (honest or
	// adversary-wrapped), exactly as sim.New takes them.
	Graph    *graph.Graph
	Handlers []sim.Handler
	// Honest is the set of vertices whose outputs the run waits for.
	Honest graph.Set
	// LinkFaults, when non-nil, applies per-edge Byzantine link failures on
	// every node's send path: frames may be dropped, duplicated, or delayed
	// by Fate.Delay milliseconds before entering the transport — the same
	// rule set the simulator enforces at its pool boundary.
	LinkFaults *linkfault.Set
	// Observer, when non-nil, receives every node's runtime events. It is
	// shared across concurrent node loops and must be goroutine-safe.
	Observer sim.Observer
	// Timeout bounds the run when ctx carries no deadline (default 60s). A
	// run that times out returns the partial outcome with Decided false.
	Timeout time.Duration
}

// DefaultTimeout caps a run whose context has no deadline.
const DefaultTimeout = 60 * time.Second

// Outcome reports a cluster run.
type Outcome struct {
	// Outputs holds the decisions of the honest vertices that decided;
	// Decided reports whether all of them did before shutdown.
	Outputs map[int]float64
	Decided bool
	// Deliveries and Sent aggregate the per-node counters; ByKind breaks
	// sends down per payload kind.
	Deliveries int
	Sent       int
	ByKind     map[string]int
	// Histories holds per-round values of honest nodes whose machines
	// record them.
	Histories map[int][]float64
	// Vectors holds the decision vectors of honest nodes whose machines
	// decide vectors (the exact tier's ACS).
	Vectors map[int]map[int]float64
	// Queue aggregates the transport's bounded per-edge queue accounting:
	// backpressure waits, shed frames and the depth high-water mark.
	Queue QueueStats
	// Runtime names the transport that executed the run.
	Runtime string
}

// Transport wires a set of nodes together. Start is called with every node
// already constructed (so inboxes exist); it launches whatever pumps or
// sockets the medium needs and returns a stop function that tears them
// down. The links passed to node construction come from Link.
type transportDriver interface {
	name() string
	// link returns the Outbound for vertex id.
	link(id int) node.Outbound
	// start launches the medium's goroutines feeding the given inboxes.
	start(ctx context.Context, nodes []*node.Node) error
	// stop tears the medium down; it must unblock any pump still pushing.
	stop()
	// queueStats aggregates the medium's bounded-queue accounting.
	queueStats() QueueStats
}

// RunLoopback executes the spec over the in-process loopback transport.
func RunLoopback(ctx context.Context, spec Spec) (*Outcome, error) {
	lb, err := newLoopback(spec.Graph)
	if err != nil {
		return nil, err
	}
	return run(ctx, spec, lb)
}

// RunTCP executes the spec over localhost TCP sockets: every vertex gets
// its own listener on an ephemeral port, ports are discovered in-process,
// and each directed edge becomes one TCP connection dialed by the sender.
func RunTCP(ctx context.Context, spec Spec) (*Outcome, error) {
	tn, err := newTCPNetwork(spec.Graph)
	if err != nil {
		return nil, err
	}
	return run(ctx, spec, tn)
}

// Runtimes lists the available cluster transports.
func Runtimes() []string { return []string{"loopback", "tcp"} }

// ByName resolves a cluster transport runner.
func ByName(name string) (func(context.Context, Spec) (*Outcome, error), error) {
	switch name {
	case "loopback":
		return RunLoopback, nil
	case "tcp":
		return RunTCP, nil
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %q (valid values are: %v)", name, Runtimes())
	}
}

func (s Spec) validate() error {
	if s.Graph == nil {
		return errors.New("cluster: spec needs a graph")
	}
	if len(s.Handlers) != s.Graph.N() {
		return fmt.Errorf("cluster: %d handlers for %d nodes", len(s.Handlers), s.Graph.N())
	}
	for i, h := range s.Handlers {
		if h == nil {
			return fmt.Errorf("cluster: handler %d is nil", i)
		}
		if h.ID() != i {
			return fmt.Errorf("cluster: handler at index %d has ID %d", i, h.ID())
		}
	}
	return nil
}

type decision struct {
	id    int
	value float64
}

// run is the shared harness: build nodes over the driver's links, start
// the medium, run every node loop, wait for the honest set to decide (or
// the context to end), then tear everything down and aggregate.
func run(ctx context.Context, spec Spec, driver transportDriver) (*Outcome, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		timeout := spec.Timeout
		if timeout <= 0 {
			timeout = DefaultTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	n := spec.Graph.N()
	decisions := make(chan decision, n)
	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		nd, err := node.New(node.Config{
			ID:       i,
			Graph:    spec.Graph,
			Handler:  spec.Handlers[i],
			Out:      FaultyOutbound(driver.link(i), spec.LinkFaults, i),
			Observer: spec.Observer,
			OnDecide: func(id int, x float64) { decisions <- decision{id, x} },
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	if err := driver.start(runCtx, nodes); err != nil {
		return nil, err
	}
	defer driver.stop()

	var wg sync.WaitGroup
	runErrs := make([]error, n)
	wg.Add(n)
	for i, nd := range nodes {
		go func(i int, nd *node.Node) {
			defer wg.Done()
			runErrs[i] = nd.Run(runCtx)
		}(i, nd)
	}

	// Wait for every honest vertex to decide. Faulty vertices may never
	// decide (Silent, Crash) — they are not waited for, matching the
	// simulator's semantics.
	outputs := make(map[int]float64, spec.Honest.Count())
	want := spec.Honest.Count()
	decided := 0
	var ctxErr error
collect:
	for decided < want {
		select {
		case d := <-decisions:
			if spec.Honest.Has(d.id) {
				outputs[d.id] = d.value
				decided++
			}
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break collect
		}
	}

	// Shut down: cancel the node loops and the medium, then join. The
	// transports close their pumps with the same context, so no pump stays
	// blocked into a dead inbox.
	cancelRun()
	wg.Wait()
	driver.stop()

	// A deadline can win the select race against a decision that already
	// landed in the buffered channel. Every node loop has returned, so all
	// OnDecide sends are complete (the channel's capacity is n): drain it
	// and credit decisions that beat the deadline.
	for drained := false; !drained; {
		select {
		case d := <-decisions:
			if spec.Honest.Has(d.id) {
				if _, dup := outputs[d.id]; !dup {
					outputs[d.id] = d.value
					decided++
				}
			}
		default:
			drained = true
		}
	}

	out := &Outcome{
		Outputs:   outputs,
		Decided:   decided == want,
		ByKind:    make(map[string]int),
		Histories: make(map[int][]float64),
		Vectors:   make(map[int]map[int]float64),
		Queue:     driver.queueStats(),
		Runtime:   driver.name(),
	}
	for i, nd := range nodes {
		st := nd.Stats()
		out.Deliveries += st.Delivered
		out.Sent += st.Sent
		for k, c := range st.ByKind {
			out.ByKind[k] += c
		}
		if spec.Honest.Has(i) {
			if hp, ok := nd.Handler().(historyProvider); ok {
				out.Histories[i] = hp.History()
			}
			if vp, ok := nd.Handler().(vectorProvider); ok {
				if vec := vp.Vector(); vec != nil {
					out.Vectors[i] = vec
				}
			}
		}
	}
	for _, err := range runErrs {
		if err != nil {
			return out, fmt.Errorf("cluster (%s): %w", driver.name(), err)
		}
	}
	// Cancellation (as opposed to an elapsed deadline) means the caller
	// aborted the run: report it. A deadline with missing decisions is the
	// livelock-analog of the simulator's undecided quiescence and comes
	// back as a non-error outcome with Decided == false.
	if ctxErr != nil && errors.Is(ctxErr, context.Canceled) {
		return out, ctxErr
	}
	return out, nil
}

// historyProvider mirrors the simulator's per-round history hook.
type historyProvider interface{ History() []float64 }

// vectorProvider mirrors the simulator's decision-vector hook.
type vectorProvider interface{ Vector() map[int]float64 }

// FaultyOutbound wraps vertex from's outbound with the link-fault rule
// set: each frame's fate (drop, duplicate, delay in milliseconds) is drawn
// from the set's seeded per-edge streams before the frame reaches the
// transport. A nil set returns out unchanged. Exported so multi-process
// members (JoinTCP callers) enforce the same rules as the in-process
// harness.
func FaultyOutbound(out node.Outbound, set *linkfault.Set, from int) node.Outbound {
	if set == nil {
		return out
	}
	return &faultyOutbound{inner: out, set: set, from: from}
}

type faultyOutbound struct {
	inner node.Outbound
	set   *linkfault.Set
	from  int
}

func (o *faultyOutbound) Send(to int, frame []byte) error {
	fate := o.set.Next(o.from, to)
	// Each Send transfers ownership of its slice (the transport releases
	// frames to the pool after transmission), so every copy but the last
	// immediate one — and every delayed copy, whose timer outlives this
	// call — must be a clone, never the shared original. An original that
	// no copy consumed (dropped, or all copies delayed) is released here.
	consumed := false
	for i := 0; i < fate.Copies; i++ {
		f := frame
		if fate.Delay > 0 || i < fate.Copies-1 {
			f = append([]byte(nil), frame...)
		} else {
			consumed = true
		}
		if fate.Delay > 0 {
			// Fire-and-forget: a delayed frame that lands after shutdown is
			// dropped by the closed transport queues, exactly like a message
			// still in flight when a run ends.
			time.AfterFunc(time.Duration(fate.Delay)*time.Millisecond, func() { _ = o.inner.Send(to, f) })
			continue
		}
		if err := o.inner.Send(to, f); err != nil {
			return err
		}
	}
	if !consumed {
		wire.PutBuf(frame)
	}
	return nil
}

// SortedIDs returns the outcome's decided vertex ids in order (a rendering
// helper for CLIs).
func (o *Outcome) SortedIDs() []int {
	ids := make([]int, 0, len(o.Outputs))
	for id := range o.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
