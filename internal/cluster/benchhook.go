package cluster

import "testing"

// QueueDrainBench measures the bounded per-edge queue's push/popBatch
// round trip — the per-burst lock cost the batched writers pay. It is an
// exported testing.B function (rather than a _test.go benchmark) so the
// E16b experiment tier can run it through testing.Benchmark from a normal
// binary while the queue type stays unexported. Steady state must not
// allocate: the alloc fences and the BENCH_6 micro cells both pin that.
func QueueDrainBench(b *testing.B) {
	q := newQueue[[]byte](DefaultQueueCap)
	frame := make([]byte, 64)
	batch := make([][]byte, 0, maxBatchFrames)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := maxBatchFrames
		if done+k > b.N {
			k = b.N - done
		}
		for j := 0; j < k; j++ {
			q.tryPush(frame)
		}
		for k > 0 {
			var ok bool
			if batch, ok = q.popBatch(batch); !ok {
				b.Fatal("queue closed mid-bench")
			}
			k -= len(batch)
			done += len(batch)
		}
	}
}
