package cluster

import "sync"

// DefaultQueueCap bounds a per-edge frame queue when the caller does not
// choose a capacity. The bound is the backpressure contract of the live
// tier: a sender that outruns a peer's drain rate by this many frames
// blocks (push) or sheds (tryPush) instead of growing the heap without
// limit — the failure mode the unbounded queues of the earlier single-shot
// transports had under sustained service traffic.
const DefaultQueueCap = 1 << 14

// QueueStats counts one queue's admission decisions. Counters are
// cumulative; Depth and MaxDepth describe occupancy.
type QueueStats struct {
	// Enqueued counts accepted items.
	Enqueued int64
	// Shed counts rejected items: tryPush against a full queue, or any
	// push after close (shutdown drops, exactly like messages still in
	// flight when a run ends).
	Shed int64
	// Waits counts pushes that found the queue full and blocked — each is
	// one backpressure event propagated to the producer.
	Waits int64
	// Depth is the current occupancy; MaxDepth the high-water mark.
	Depth    int64
	MaxDepth int64
}

func (s *QueueStats) add(o QueueStats) {
	s.Enqueued += o.Enqueued
	s.Shed += o.Shed
	s.Waits += o.Waits
	s.Depth += o.Depth
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// queue is a bounded FIFO connecting a producer to a consumer pump. A full
// queue blocks push (backpressure) or rejects tryPush (shedding), both
// accounted in QueueStats; closing wakes every waiter. The previous
// generation of this type was unbounded — mirroring the paper's
// arbitrarily-many-messages-in-flight network model — which is the right
// model for one bounded-length protocol run but lets a long-lived service
// trade memory for a slow peer forever; the bound turns that into explicit,
// observable backpressure.
type queue[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	nonFull  *sync.Cond
	items    []T
	head     int
	capacity int
	closed   bool
	stats    QueueStats
}

// newQueue builds a queue bounded at capacity (<= 0 means DefaultQueueCap).
func newQueue[T any](capacity int) *queue[T] {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	q := &queue[T]{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	q.nonFull = sync.NewCond(&q.mu)
	return q
}

func (q *queue[T]) depth() int { return len(q.items) - q.head }

// push appends an item, blocking while the queue is full (one Waits count
// per blocking event). It reports false when the queue is closed — before
// or while waiting — and the item is then dropped and counted as shed.
func (q *queue[T]) push(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.depth() >= q.capacity && !q.closed {
		q.stats.Waits++
		for q.depth() >= q.capacity && !q.closed {
			q.nonFull.Wait()
		}
	}
	if q.closed {
		q.stats.Shed++
		return false
	}
	q.enqueue(v)
	return true
}

// tryPush appends an item only when there is room right now; a full or
// closed queue sheds it (counted) and reports false.
func (q *queue[T]) tryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.depth() >= q.capacity {
		q.stats.Shed++
		return false
	}
	q.enqueue(v)
	return true
}

func (q *queue[T]) enqueue(v T) {
	// Compact the consumed prefix before growing past it: memory stays
	// O(capacity) without a preallocated ring (queues are per-edge, and
	// large graphs have many edges).
	if q.head > 0 && len(q.items) == cap(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
	q.stats.Enqueued++
	if d := int64(q.depth()); d > q.stats.MaxDepth {
		q.stats.MaxDepth = d
	}
	q.nonEmpty.Signal()
}

// pop blocks for the next item; ok is false once the queue is closed
// (pending items are abandoned — the shutdown path).
func (q *queue[T]) pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth() == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release the reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.nonFull.Signal()
	return v, true
}

// popBatch blocks for at least one item, then moves up to cap(dst) queued
// items into dst[:0] under a single lock acquisition — the batch form of
// pop that lets a writer drain a burst with one mutex round-trip instead
// of one per frame. Order is preserved (FIFO), accounting is identical to
// the same number of pops, and every drained slot wakes blocked pushers.
// ok is false once the queue is closed; cap(dst) must be non-zero.
func (q *queue[T]) popBatch(dst []T) (batch []T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth() == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		return dst[:0], false
	}
	n := q.depth()
	if m := cap(dst); n > m {
		n = m
	}
	dst = dst[:0]
	var zero T
	for i := 0; i < n; i++ {
		dst = append(dst, q.items[q.head])
		q.items[q.head] = zero // release the reference
		q.head++
	}
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	// A batch frees many slots at once: wake every blocked pusher, not one.
	q.nonFull.Broadcast()
	return dst, true
}

// close wakes all waiters; pending items are abandoned.
func (q *queue[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.nonFull.Broadcast()
}

// snapshot returns the queue's stats with Depth filled from the current
// occupancy.
func (q *queue[T]) snapshot() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = int64(q.depth())
	return s
}
