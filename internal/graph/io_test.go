package graph

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	for _, g := range []*Graph{Clique(4), DirectedCycle(5), Fig1b(), Wheel(4)} {
		var buf bytes.Buffer
		if err := g.Marshal(&buf); err != nil {
			t.Fatalf("Marshal(%s): %v", g, err)
		}
		back, err := Unmarshal(&buf)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", g, err)
		}
		if back.N() != g.N() || !reflect.DeepEqual(back.SortedEdges(), g.SortedEdges()) {
			t.Errorf("round trip mismatch for %s", g)
		}
		if back.Name() != g.Name() {
			t.Errorf("name lost: %q != %q", back.Name(), g.Name())
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"edge first":     "e 0 1\nn 2\n",
		"double order":   "n 2\nn 3\n",
		"bad order":      "n zero\n",
		"order range":    fmt.Sprintf("n %d\n", MaxNodes+1),
		"bad edge arity": "n 2\ne 0\n",
		"bad edge node":  "n 2\ne 0 5\n",
		"self loop":      "n 2\ne 1 1\n",
		"unknown":        "n 2\nx 1 2\n",
	}
	for name, in := range cases {
		if _, err := Unmarshal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUnmarshalSkipsBlanksAndComments(t *testing.T) {
	in := "# my graph\n\n  \nn 3\ne 0 1\n# trailing\ne 1 2\n"
	g, err := Unmarshal(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "my graph" || g.M() != 2 {
		t.Errorf("got %s name=%q", g, g.Name())
	}
}

func TestDOT(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.AddBoth(1, 2)
	dot := g.DOT()
	if !strings.Contains(dot, "0 -> 1;") {
		t.Errorf("missing directed edge: %s", dot)
	}
	if !strings.Contains(dot, "1 -> 2 [dir=both];") {
		t.Errorf("missing bidirected edge: %s", dot)
	}
	if strings.Contains(dot, "2 -> 1") {
		t.Errorf("bidirected pair drawn twice: %s", dot)
	}
}

func TestNamedSpecs(t *testing.T) {
	good := map[string]int{
		"clique:5":        5,
		"cycle:3":         3,
		"wheel:4":         5,
		"fig1a":           5,
		"fig1b":           14,
		"fig1b-analog":    8,
		"circulant:7:1,2": 7,
		"random:6:0.5:42": 6,
	}
	for spec, n := range good {
		g, err := Named(spec)
		if err != nil {
			t.Errorf("Named(%q): %v", spec, err)
			continue
		}
		if g.N() != n {
			t.Errorf("Named(%q).N() = %d, want %d", spec, g.N(), n)
		}
	}
	// Smallest square torus that exceeds the build's node limit.
	torusSide := 1
	for torusSide*torusSide <= MaxNodes {
		torusSide++
	}
	bad := []string{"", "nope", "clique", "clique:x", "circulant:5", "circulant:5:a", "random:5", "random:5:x:1", "random:5:0.5:x",
		// Bounds and arity hardening: these must error, never panic or
		// attempt a giant allocation.
		"clique:0", "clique:-3", fmt.Sprintf("clique:%d", MaxNodes+1), "clique:999999999", "cycle:0",
		"wheel:1", "wheel:0", fmt.Sprintf("wheel:%d", MaxNodes), "fig1a:2", "clique:5:9",
		"circulant:0:1", "circulant:5:1,2:3", "random:5:1.5:1", "random:5:-0.1:1", "random:5:NaN:1", "random:5:0.5:1:extra",
		"torus:1:4", fmt.Sprintf("torus:2:%d", MaxNodes+2), fmt.Sprintf("torus:%d:%d", torusSide, torusSide), "torus:2", "torus:2:3:4", "torus:x:2",
		"torus:3037000500:3037000500", // rows*cols overflows int; must error, not panic
		fmt.Sprintf("kregular:%d:2:1", MaxNodes+1), fmt.Sprintf("expander:%d:2:1", MaxNodes+2),
		"kregular:5:0:1", "kregular:5:5:1", "kregular:5:x:1", "kregular:5:2", "kregular:0:1:1",
		"expander:5:0:1", "expander:5:3:1", "expander:4:2:1", "expander:5:2", "expander:5:x:1"}
	for _, spec := range bad {
		if _, err := Named(spec); err == nil {
			t.Errorf("Named(%q) should fail", spec)
		}
	}
}

func TestNamedSpecsCatalog(t *testing.T) {
	specs := NamedSpecs()
	if len(specs) != 11 {
		t.Fatalf("NamedSpecs() lists %d forms, want 11", len(specs))
	}
	// Every catalog line's head must be a real spec form.
	for _, line := range specs {
		head := strings.Fields(line)[0]
		head = strings.NewReplacer("<n>", "5", "<k>", "4", "<d1,d2,...>", "1,2", "<p>", "0.5", "<seed>", "1",
			"<rows>", "2", "<cols>", "3", "<d>", "2").Replace(head)
		if _, err := Named(head); err != nil {
			t.Errorf("catalog form %q does not parse (as %q): %v", line, head, err)
		}
	}
}
