//go:build !graph4096

package graph

// MaxNodes in the default build: 1024 nodes, 16-word Sets — no bitmask tax
// on the small and mid-size graphs that dominate the test and experiment
// suites. Build with -tags graph4096 to raise the dimension to 4096.
const MaxNodes = 1024
