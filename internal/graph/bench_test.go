package graph

import "testing"

func BenchmarkDescendants(b *testing.B) {
	g := Fig1b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Descendants(0, SetOf(3, 10))
	}
}

func BenchmarkSourceComponent(b *testing.B) {
	g := Fig1b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SourceComponent(SetOf(3), SetOf(10))
	}
}

func BenchmarkSCCs(b *testing.B) {
	g := RandomDigraph(32, 0.1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SCCs()
	}
}

func BenchmarkMaxDisjointPaths(b *testing.B) {
	g := Fig1b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.MaxDisjointPaths(0, 7, EmptySet) != 4 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkVertexConnectivity(b *testing.B) {
	g := Wheel(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.VertexConnectivity()
	}
}

func BenchmarkSimplePathsTo(b *testing.B) {
	g := Fig1bAnalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SimplePathsTo(0, EmptySet, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRedundantPathsTo(b *testing.B) {
	g := Circulant(6, 1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RedundantPathsTo(0, EmptySet, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsRedundant(b *testing.B) {
	p := Path{0, 1, 2, 3, 4, 2, 5, 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.IsRedundant()
	}
}

func BenchmarkSubsets(b *testing.B) {
	u := FullSet(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		Subsets(u, 2, func(Set) bool { count++; return true })
		if count != 106 {
			b.Fatal("wrong count")
		}
	}
}
