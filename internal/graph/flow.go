package graph

// This file implements vertex-disjoint path counting (Menger's theorem) via
// unit-capacity max-flow with node splitting. Graphs here are tiny (n <= 64)
// so an adjacency-matrix Edmonds-Karp is simple and fast.

const infCap = 1 << 20

type flowNet struct {
	size int
	cap  [][]int
}

func newFlowNet(size int) *flowNet {
	capm := make([][]int, size)
	cells := make([]int, size*size)
	for i := range capm {
		capm[i] = cells[i*size : (i+1)*size]
	}
	return &flowNet{size: size, cap: capm}
}

func (f *flowNet) addEdge(u, v, c int) { f.cap[u][v] += c }

// maxFlow runs Edmonds-Karp from s to t and returns the max flow value,
// stopping early once the flow reaches limit (pass infCap for no limit).
func (f *flowNet) maxFlow(s, t, limit int) int {
	total := 0
	parent := make([]int, f.size)
	queue := make([]int, 0, f.size)
	for total < limit {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < f.size; v++ {
				if parent[v] == -1 && f.cap[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			break
		}
		// Find bottleneck.
		aug := infCap
		for v := t; v != s; v = parent[v] {
			if c := f.cap[parent[v]][v]; c < aug {
				aug = c
			}
		}
		for v := t; v != s; v = parent[v] {
			f.cap[parent[v]][v] -= aug
			f.cap[v][parent[v]] += aug
		}
		total += aug
	}
	return total
}

// nodeSplit builds the split network for g restricted to V \ excl:
// in(x) = 2x, out(x) = 2x+1, through-capacity 1 except for nodes in wide,
// which get infinite through-capacity. Graph edges get capacity 1: the
// graph is simple, so each edge carries at most one of the disjoint paths
// (this also makes a direct u->v edge count as exactly one path even though
// both endpoints have infinite through-capacity).
func (g *Graph) nodeSplit(excl, wide Set) *flowNet {
	f := newFlowNet(2*g.n + 2)
	for x := 0; x < g.n; x++ {
		if excl.Has(x) {
			continue
		}
		c := 1
		if wide.Has(x) {
			c = infCap
		}
		f.addEdge(2*x, 2*x+1, c)
		for _, y := range g.out[x] {
			if !excl.Has(y) {
				f.addEdge(2*x+1, 2*y, 1)
			}
		}
	}
	return f
}

// MaxDisjointPaths returns the maximum number of internally vertex-disjoint
// directed paths from u to v in the subgraph induced by V \ excl. The direct
// edge (u,v), if present, counts as one path. Returns 0 if u or v is
// excluded; returns a large value (>= n) if u == v.
func (g *Graph) MaxDisjointPaths(u, v int, excl Set) int {
	if u == v {
		return g.n
	}
	if excl.Has(u) || excl.Has(v) {
		return 0
	}
	f := g.nodeSplit(excl, SetOf(u, v))
	return f.maxFlow(2*u+1, 2*v, infCap)
}

// MaxDisjointPathsFromSet returns the maximum number of node-disjoint
// (A, b)-paths — paths starting at distinct nodes of A, ending at b, and
// pairwise sharing no node other than b — in the subgraph induced by
// V \ excl. This realizes the paper's Definition 10 when called with
// excl = complement of C. If b is in A the answer is taken to be n
// (the trivial path <b> gives unbounded common influence).
func (g *Graph) MaxDisjointPathsFromSet(a Set, b int, excl Set) int {
	a = a.Minus(excl)
	if a.Has(b) {
		return g.n
	}
	if a.Empty() || excl.Has(b) {
		return 0
	}
	f := g.nodeSplit(excl, SetOf(b))
	s := 2 * g.n
	a.ForEach(func(x int) bool {
		f.addEdge(s, 2*x, 1)
		return true
	})
	return f.maxFlow(s, 2*b, infCap)
}

// Propagates implements Definition 10: A propagates in C to B, written
// A ~C~> B, iff B is empty or every b in B has at least f+1 node-disjoint
// (A, b)-paths inside the induced subgraph G_C.
func (g *Graph) Propagates(a, b, c Set, f int) bool {
	if b.Empty() {
		return true
	}
	excl := g.Nodes().Minus(c)
	ok := true
	b.ForEach(func(x int) bool {
		if g.MaxDisjointPathsFromSet(a, x, excl) < f+1 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// VertexConnectivity returns κ(G) for an undirected graph (one with
// symmetric edges): the minimum, over non-adjacent ordered pairs, of the
// max number of internally disjoint paths; n-1 for complete graphs.
func (g *Graph) VertexConnectivity() int {
	best := g.n - 1
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if k := g.MaxDisjointPaths(u, v, EmptySet); k < best {
				best = k
			}
		}
	}
	return best
}
