package graph

import (
	"testing"
	"testing/quick"
)

func TestSCCsCycleAndClique(t *testing.T) {
	if got := DirectedCycle(5).SCCs(); len(got) != 1 || got[0] != FullSet(5) {
		t.Errorf("cycle SCCs = %v", got)
	}
	if got := Clique(4).SCCs(); len(got) != 1 || got[0] != FullSet(4) {
		t.Errorf("clique SCCs = %v", got)
	}
}

func TestSCCsChain(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	sccs := g.SCCs()
	if len(sccs) != 3 {
		t.Fatalf("chain SCCs = %v", sccs)
	}
	// Reverse topological order: sinks first.
	if sccs[0] != SetOf(2) || sccs[2] != SetOf(0) {
		t.Errorf("order wrong: %v", sccs)
	}
}

func TestSCCsTwoCycles(t *testing.T) {
	// Cycle {0,1} feeding cycle {2,3}.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(1, 2)
	sccs := g.SCCs()
	if len(sccs) != 2 {
		t.Fatalf("SCCs = %v", sccs)
	}
	if sccs[0] != SetOf(2, 3) || sccs[1] != SetOf(0, 1) {
		t.Errorf("components/order wrong: %v", sccs)
	}
	srcs := g.CondensationSources()
	if len(srcs) != 1 || srcs[0] != SetOf(0, 1) {
		t.Errorf("condensation sources = %v", srcs)
	}
}

// TestSCCPartition: components partition V and each is maximal strongly
// connected, cross-checked against reachability.
func TestSCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomDigraph(8, 0.25, seed)
		sccs := g.SCCs()
		var union Set
		for _, c := range sccs {
			if c.Empty() || c.Intersects(union) {
				return false
			}
			union = union.Union(c)
			if !g.StronglyConnectedWithin(c) {
				return false
			}
		}
		if union != FullSet(8) {
			return false
		}
		// Same-component iff mutually reachable.
		for u := 0; u < 8; u++ {
			du := g.Descendants(u, EmptySet)
			au := g.Ancestors(u, EmptySet)
			for v := 0; v < 8; v++ {
				same := false
				for _, c := range sccs {
					if c.Has(u) && c.Has(v) {
						same = true
					}
				}
				if same != (du.Has(v) && au.Has(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
