package graph

import (
	"errors"
	"fmt"
)

// Path is a directed walk represented by its node sequence. Path{v} is the
// trivial path at v. The paper's propagation paths are "redundant paths":
// concatenations of at most two simple paths (Section 3), so their length is
// bounded by 2n.
type Path []int

// Init returns the initial node of the path.
func (p Path) Init() int { return p[0] }

// Ter returns the terminal node of the path.
func (p Path) Ter() int { return p[len(p)-1] }

// Key encodes the path as a compact string usable as a map key. Node IDs are
// below 64, so one byte per node suffices.
func (p Path) Key() string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}

// PathFromKey decodes a Key back into a Path.
func PathFromKey(k string) Path {
	p := make(Path, len(k))
	for i := 0; i < len(k); i++ {
		p[i] = int(k[i])
	}
	return p
}

// Set returns the set of nodes on the path.
func (p Path) Set() Set { return PathSet(p) }

// Clone returns a copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Append returns p with v appended (a fresh slice; p is not modified).
func (p Path) Append(v int) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = v
	return out
}

// IsSimple reports whether the path repeats no node.
func (p Path) IsSimple() bool {
	var seen Set
	for _, v := range p {
		if seen.Has(v) {
			return false
		}
		seen = seen.Add(v)
	}
	return true
}

// IsRedundant reports whether the path is a concatenation p1 || p2 of two
// simple paths (one possibly trivial) — the paper's redundant path
// (Section 3). Every simple path is redundant.
func (p Path) IsRedundant() bool {
	if len(p) == 0 {
		return false
	}
	// a = length of the longest all-distinct prefix; prefixes p[:i+1] are
	// simple iff i+1 <= a.
	a := len(p)
	var seen Set
	for i, v := range p {
		if seen.Has(v) {
			a = i
			break
		}
		seen = seen.Add(v)
	}
	// b = start of the longest all-distinct suffix; suffixes p[i:] are
	// simple iff i >= b.
	b := 0
	seen = EmptySet
	for i := len(p) - 1; i >= 0; i-- {
		if seen.Has(p[i]) {
			b = i + 1
			break
		}
		seen = seen.Add(p[i])
	}
	// Redundant iff some split index i has p[:i+1] and p[i:] both simple:
	// i <= a-1 and i >= b.
	return b <= a-1
}

// ValidIn reports whether p is a directed walk of g: nonempty, nodes in
// range, and consecutive nodes joined by edges.
func (p Path) ValidIn(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for _, v := range p {
		if v < 0 || v >= g.n {
			return false
		}
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// String renders the path as "<a b c>".
func (p Path) String() string {
	s := "<"
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ">"
}

// ErrPathBudget is returned when an enumeration would exceed its budget.
// Callers use it to refuse experiment configurations whose redundant-path
// floods would be astronomically large (see DESIGN.md fidelity note 7).
var ErrPathBudget = errors.New("graph: path enumeration budget exceeded")

// SimplePathsTo enumerates every simple path that ends at v and avoids excl,
// including the trivial path <v>. It returns ErrPathBudget if more than
// budget paths exist (budget <= 0 means unlimited).
func (g *Graph) SimplePathsTo(v int, excl Set, budget int) ([]Path, error) {
	if excl.Has(v) {
		return nil, nil
	}
	var out []Path
	// Backward DFS from v, extending at the front.
	cur := Path{v}
	var rec func(front int, visited Set) error
	rec = func(front int, visited Set) error {
		p := make(Path, len(cur))
		copy(p, cur)
		out = append(out, p)
		if budget > 0 && len(out) > budget {
			return ErrPathBudget
		}
		var err error
		g.inMask[front].Minus(visited).Minus(excl).ForEach(func(w int) bool {
			cur = append(Path{w}, cur...)
			err = rec(w, visited.Add(w))
			cur = cur[1:]
			return err == nil
		})
		return err
	}
	if err := rec(v, SetOf(v)); err != nil {
		return nil, err
	}
	return out, nil
}

// SimplePathsFromTo enumerates the simple (from, to)-paths avoiding excl.
// With from == to only the trivial path is returned.
func (g *Graph) SimplePathsFromTo(from, to int, excl Set, budget int) ([]Path, error) {
	if excl.Has(from) || excl.Has(to) {
		return nil, nil
	}
	if from == to {
		return []Path{{to}}, nil
	}
	var out []Path
	cur := Path{from}
	var rec func(at int, visited Set) error
	rec = func(at int, visited Set) error {
		if at == to {
			p := make(Path, len(cur))
			copy(p, cur)
			out = append(out, p)
			if budget > 0 && len(out) > budget {
				return ErrPathBudget
			}
			return nil
		}
		var err error
		g.outMask[at].Minus(visited).Minus(excl).ForEach(func(w int) bool {
			cur = append(cur, w)
			err = rec(w, visited.Add(w))
			cur = cur[:len(cur)-1]
			return err == nil
		})
		return err
	}
	if err := rec(from, SetOf(from)); err != nil {
		return nil, err
	}
	return out, nil
}

// RedundantPathsTo enumerates every redundant path ending at v that avoids
// excl — the set {p in Pr_{V\excl} : ter(p) = v} of Definition 9. The result
// is deduplicated (a sequence decomposable at several split points appears
// once) and returned as a key set. It returns ErrPathBudget if more than
// budget distinct paths exist (budget <= 0 means unlimited).
func (g *Graph) RedundantPathsTo(v int, excl Set, budget int) (map[string]struct{}, error) {
	if excl.Has(v) {
		return map[string]struct{}{}, nil
	}
	// All simple paths ending at v.
	s2, err := g.SimplePathsTo(v, excl, budget)
	if err != nil {
		return nil, err
	}
	// Group second halves by their initial node.
	byInit := make(map[int][]Path)
	for _, p := range s2 {
		byInit[p.Init()] = append(byInit[p.Init()], p)
	}
	out := make(map[string]struct{}, len(s2))
	for m, seconds := range byInit {
		firsts, err := g.SimplePathsTo(m, excl, budget)
		if err != nil {
			return nil, err
		}
		for _, s1 := range firsts {
			for _, sp := range seconds {
				whole := make(Path, 0, len(s1)+len(sp)-1)
				whole = append(whole, s1...)
				whole = append(whole, sp[1:]...)
				out[whole.Key()] = struct{}{}
				if budget > 0 && len(out) > budget {
					return nil, ErrPathBudget
				}
			}
		}
	}
	return out, nil
}

// CountRedundantPathsTo returns the number of distinct redundant paths
// ending at v avoiding excl, or ErrPathBudget if it exceeds budget.
func (g *Graph) CountRedundantPathsTo(v int, excl Set, budget int) (int, error) {
	m, err := g.RedundantPathsTo(v, excl, budget)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}
