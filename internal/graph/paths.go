package graph

import (
	"errors"
	"fmt"
)

// Path is a directed walk represented by its node sequence. Path{v} is the
// trivial path at v. The paper's propagation paths are "redundant paths":
// concatenations of at most two simple paths (Section 3), so their length is
// bounded by 2n.
type Path []int

// Init returns the initial node of the path.
func (p Path) Init() int { return p[0] }

// Ter returns the terminal node of the path.
func (p Path) Ter() int { return p[len(p)-1] }

// Key encodes the path as a compact string usable as a map key: two
// big-endian bytes per node (IDs are below MaxNodes = 1024, so two bytes
// suffice). Keys compare lexicographically in the same order as the node
// sequences they encode, and the first two bytes of a key are the path's
// initial node — both properties are relied on by the BW machine.
func (p Path) Key() string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}

// KeyInit decodes the initial node of an encoded Key ("" yields -1).
func KeyInit(k string) int {
	if len(k) < 2 {
		return -1
	}
	return int(k[0])<<8 | int(k[1])
}

// PathFromKey decodes a Key back into a Path. Odd-length inputs (which no
// Key produces) drop the trailing byte.
func PathFromKey(k string) Path {
	p := make(Path, len(k)/2)
	for i := range p {
		p[i] = int(k[2*i])<<8 | int(k[2*i+1])
	}
	return p
}

// Set returns the set of nodes on the path.
func (p Path) Set() Set { return PathSet(p) }

// Clone returns a copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Append returns p with v appended (a fresh slice; p is not modified).
func (p Path) Append(v int) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = v
	return out
}

// IsSimple reports whether the path repeats no node.
func (p Path) IsSimple() bool {
	var seen Set
	for _, v := range p {
		if seen.Has(v) {
			return false
		}
		seen = seen.Add(v)
	}
	return true
}

// IsRedundant reports whether the path is a concatenation p1 || p2 of two
// simple paths (one possibly trivial) — the paper's redundant path
// (Section 3). Every simple path is redundant.
func (p Path) IsRedundant() bool {
	if len(p) == 0 {
		return false
	}
	// a = length of the longest all-distinct prefix; prefixes p[:i+1] are
	// simple iff i+1 <= a.
	a := len(p)
	var seen Set
	for i, v := range p {
		if seen.Has(v) {
			a = i
			break
		}
		seen = seen.Add(v)
	}
	// b = start of the longest all-distinct suffix; suffixes p[i:] are
	// simple iff i >= b.
	b := 0
	seen = EmptySet
	for i := len(p) - 1; i >= 0; i-- {
		if seen.Has(p[i]) {
			b = i + 1
			break
		}
		seen = seen.Add(p[i])
	}
	// Redundant iff some split index i has p[:i+1] and p[i:] both simple:
	// i <= a-1 and i >= b.
	return b <= a-1
}

// ValidIn reports whether p is a directed walk of g: nonempty, nodes in
// range, and consecutive nodes joined by edges.
func (p Path) ValidIn(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for _, v := range p {
		if v < 0 || v >= g.n {
			return false
		}
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// String renders the path as "<a b c>".
func (p Path) String() string {
	s := "<"
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ">"
}

// ErrPathBudget is returned when an enumeration would exceed its budget.
// Callers use it to refuse experiment configurations whose redundant-path
// floods would be astronomically large (see DESIGN.md fidelity note 7).
var ErrPathBudget = errors.New("graph: path enumeration budget exceeded")

// SimplePathsTo enumerates every simple path that ends at v and avoids excl,
// including the trivial path <v>. It returns ErrPathBudget if more than
// budget paths exist (budget <= 0 means unlimited).
func (g *Graph) SimplePathsTo(v int, excl Set, budget int) ([]Path, error) {
	if excl.Has(v) {
		return nil, nil
	}
	var out []Path
	// Backward DFS from v, extending at the front.
	cur := Path{v}
	var rec func(front int, visited Set) error
	rec = func(front int, visited Set) error {
		p := make(Path, len(cur))
		copy(p, cur)
		out = append(out, p)
		if budget > 0 && len(out) > budget {
			return ErrPathBudget
		}
		var err error
		g.inMask[front].Minus(visited).Minus(excl).ForEach(func(w int) bool {
			cur = append(Path{w}, cur...)
			err = rec(w, visited.Add(w))
			cur = cur[1:]
			return err == nil
		})
		return err
	}
	if err := rec(v, SetOf(v)); err != nil {
		return nil, err
	}
	return out, nil
}

// SimplePathsFromTo enumerates the simple (from, to)-paths avoiding excl.
// With from == to only the trivial path is returned.
func (g *Graph) SimplePathsFromTo(from, to int, excl Set, budget int) ([]Path, error) {
	if excl.Has(from) || excl.Has(to) {
		return nil, nil
	}
	if from == to {
		return []Path{{to}}, nil
	}
	var out []Path
	cur := Path{from}
	var rec func(at int, visited Set) error
	rec = func(at int, visited Set) error {
		if at == to {
			p := make(Path, len(cur))
			copy(p, cur)
			out = append(out, p)
			if budget > 0 && len(out) > budget {
				return ErrPathBudget
			}
			return nil
		}
		var err error
		g.outMask[at].Minus(visited).Minus(excl).ForEach(func(w int) bool {
			cur = append(cur, w)
			err = rec(w, visited.Add(w))
			cur = cur[:len(cur)-1]
			return err == nil
		})
		return err
	}
	if err := rec(from, SetOf(from)); err != nil {
		return nil, err
	}
	return out, nil
}

// RedundantPathsTo enumerates every redundant path ending at v that avoids
// excl — the set {p in Pr_{V\excl} : ter(p) = v} of Definition 9. The result
// is deduplicated (a sequence decomposable at several split points appears
// once) and returned as a key set. It returns ErrPathBudget if more than
// budget distinct paths exist (budget <= 0 means unlimited).
func (g *Graph) RedundantPathsTo(v int, excl Set, budget int) (map[string]struct{}, error) {
	if excl.Has(v) {
		return map[string]struct{}{}, nil
	}
	// All simple paths ending at v.
	s2, err := g.SimplePathsTo(v, excl, budget)
	if err != nil {
		return nil, err
	}
	// Group second halves by their initial node.
	byInit := make(map[int][]Path)
	for _, p := range s2 {
		byInit[p.Init()] = append(byInit[p.Init()], p)
	}
	out := make(map[string]struct{}, len(s2))
	for m, seconds := range byInit {
		firsts, err := g.SimplePathsTo(m, excl, budget)
		if err != nil {
			return nil, err
		}
		for _, s1 := range firsts {
			for _, sp := range seconds {
				whole := make(Path, 0, len(s1)+len(sp)-1)
				whole = append(whole, s1...)
				whole = append(whole, sp[1:]...)
				out[whole.Key()] = struct{}{}
				if budget > 0 && len(out) > budget {
					return nil, ErrPathBudget
				}
			}
		}
	}
	return out, nil
}

// CountRedundantPathsTo returns the number of distinct redundant paths
// ending at v avoiding excl, or ErrPathBudget if it exceeds budget
// (budget <= 0 means unlimited).
//
// Unlike RedundantPathsTo it never materializes the paths: it walks the
// reversed graph depth-first from v, extending one node at a time with the
// O(1) redundancy test. This works because the reverse of a redundant path
// is redundant (reversing a concatenation of two simple paths yields
// another), and redundant walks are closed under taking suffixes, so a
// failed extension prunes the whole subtree exactly. Each distinct walk is
// visited once, making the count exact in O(degree) per path — the form the
// BW fullness precomputation uses at scale, where building every key string
// would cost gigabytes.
func (g *Graph) CountRedundantPathsTo(v int, excl Set, budget int) (int, error) {
	if excl.Has(v) {
		return 0, nil
	}
	// State of the reversed walk r (grown by appending in-neighbors):
	// n = len(r); a = length of the longest all-distinct prefix (== n while
	// the walk is fully distinct, frozen at the first repeat); b = start of
	// the longest all-distinct suffix. r is redundant iff b <= a-1 — the
	// same invariant analyzeRedundant maintains on the forward walk.
	var lastIdx [MaxNodes]int32 // node -> last occurrence depth + 1 (0 = absent)
	count := 0
	n, a, b := 1, 1, 0
	lastIdx[v] = 1
	var rec func(front int) error
	rec = func(front int) error {
		count++
		if budget > 0 && count > budget {
			return ErrPathBudget
		}
		var err error
		g.inMask[front].ForEach(func(w int) bool {
			if excl.Has(w) {
				return true
			}
			na := a
			if a == n && lastIdx[w] == 0 {
				na = n + 1
			}
			nb := b
			if int(lastIdx[w]) > nb {
				nb = int(lastIdx[w])
			}
			if nb > na-1 {
				return true // not redundant; no extension can be either
			}
			savedA, savedB, savedLast := a, b, lastIdx[w]
			n++
			a, b = na, nb
			lastIdx[w] = int32(n)
			err = rec(w)
			lastIdx[w] = savedLast
			a, b = savedA, savedB
			n--
			return err == nil
		})
		return err
	}
	if err := rec(v); err != nil {
		return 0, err
	}
	return count, nil
}
