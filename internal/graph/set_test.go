package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := SetOf(1, 3, 5)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, v := range []int{1, 3, 5} {
		if !s.Has(v) {
			t.Errorf("Has(%d) = false", v)
		}
	}
	for _, v := range []int{0, 2, 4, 6} {
		if s.Has(v) {
			t.Errorf("Has(%d) = true", v)
		}
	}
	if got := s.Remove(3); got.Has(3) || got.Count() != 2 {
		t.Errorf("Remove(3) = %s", got)
	}
	if got := s.Add(3); got != s {
		t.Errorf("Add of existing member changed set: %s", got)
	}
	if s.String() != "{1,3,5}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := SetOf(0, 1, 2), SetOf(2, 3)
	tests := []struct {
		name string
		got  Set
		want []int
	}{
		{"union", a.Union(b), []int{0, 1, 2, 3}},
		{"intersect", a.Intersect(b), []int{2}},
		{"minus", a.Minus(b), []int{0, 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.got.Members(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
	if !a.Intersects(b) || a.Intersects(SetOf(5)) {
		t.Error("Intersects wrong")
	}
	if !a.Contains(SetOf(0, 2)) || a.Contains(b) {
		t.Error("Contains wrong")
	}
}

func TestFullSet(t *testing.T) {
	if got := FullSet(4).Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("FullSet(4) = %v", got)
	}
	if FullSet(0) != EmptySet {
		t.Error("FullSet(0) not empty")
	}
	if FullSet(64).Count() != 64 {
		t.Errorf("FullSet(64).Count() = %d", FullSet(64).Count())
	}
}

func TestSetMinAndForEach(t *testing.T) {
	if EmptySet.Min() != -1 {
		t.Error("empty Min should be -1")
	}
	if SetOf(7, 2, 9).Min() != 2 {
		t.Error("Min wrong")
	}
	var seen []int
	SetOf(4, 1, 6).ForEach(func(v int) bool {
		seen = append(seen, v)
		return v != 4 // stop after 4
	})
	if !reflect.DeepEqual(seen, []int{1, 4}) {
		t.Errorf("ForEach early stop: %v", seen)
	}
}

// TestSetQuickAgainstMap cross-checks bitmask set algebra against a
// map-based reference model with testing/quick.
func TestSetQuickAgainstMap(t *testing.T) {
	type model struct {
		bits Set
		ref  map[int]bool
	}
	build := func(vals []uint16) model {
		m := model{ref: make(map[int]bool)}
		for _, v := range vals {
			node := int(v) % MaxNodes
			m.bits = m.bits.Add(node)
			m.ref[node] = true
		}
		return m
	}
	f := func(avals, bvals []uint16) bool {
		a, b := build(avals), build(bvals)
		union := a.bits.Union(b.bits)
		inter := a.bits.Intersect(b.bits)
		minus := a.bits.Minus(b.bits)
		for v := 0; v < MaxNodes; v++ {
			if union.Has(v) != (a.ref[v] || b.ref[v]) {
				return false
			}
			if inter.Has(v) != (a.ref[v] && b.ref[v]) {
				return false
			}
			if minus.Has(v) != (a.ref[v] && !b.ref[v]) {
				return false
			}
		}
		return union.Count() == len(unionMap(a.ref, b.ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func unionMap(a, b map[int]bool) map[int]bool {
	u := make(map[int]bool)
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

func TestSubsetsEnumeration(t *testing.T) {
	var got []string
	Subsets(SetOf(0, 1, 2), 2, func(s Set) bool {
		got = append(got, s.String())
		return true
	})
	want := []string{"{}", "{0}", "{0,1}", "{0,2}", "{1}", "{1,2}", "{2}"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Subsets = %v, want %v", got, want)
	}
}

func TestSubsetsCountMatchesBinomial(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 0}, {5, 1}, {5, 2}, {6, 3}, {8, 2}, {4, 4}} {
		count := 0
		Subsets(FullSet(tc.n), tc.k, func(Set) bool { count++; return true })
		if want := CountSubsets(tc.n, tc.k); count != want {
			t.Errorf("n=%d k=%d: enumerated %d, binomial sum %d", tc.n, tc.k, count, want)
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(FullSet(10), 3, func(Set) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d calls, want 5", count)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	count := 0
	SubsetsOfSize(FullSet(6), 2, func(s Set) bool {
		if s.Count() != 2 {
			t.Fatalf("size %d subset emitted", s.Count())
		}
		count++
		return true
	})
	if count != 15 {
		t.Errorf("C(6,2) = %d, want 15", count)
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int{
		{0, 0}: 1, {5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120, {6, 7}: 0, {4, -1}: 0,
	}
	for in, want := range cases {
		if got := binomial(in[0], in[1]); got != want {
			t.Errorf("binomial(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}

func TestPathSetAndMembersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		var nodes []int
		var want Set
		for j := 0; j < rng.Intn(10); j++ {
			v := rng.Intn(MaxNodes)
			nodes = append(nodes, v)
			want = want.Add(v)
		}
		if got := PathSet(nodes); got != want {
			t.Fatalf("PathSet(%v) = %s, want %s", nodes, got, want)
		}
	}
}
