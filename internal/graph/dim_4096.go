//go:build graph4096

package graph

// MaxNodes in the graph4096 build: 4096 nodes, 64-word Sets. Every Set
// operation touches 4x the words of the default build, so this tag is for
// the large-scale experiment rungs (E14 n=2048/4096), not for routine use.
const MaxNodes = 4096
