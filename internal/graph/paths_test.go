package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := Path{2, 0, 1}
	if p.Init() != 2 || p.Ter() != 1 {
		t.Error("Init/Ter wrong")
	}
	if p.Set() != SetOf(0, 1, 2) {
		t.Error("Set wrong")
	}
	if got := PathFromKey(p.Key()); !reflect.DeepEqual(got, p) {
		t.Errorf("key round trip: %v", got)
	}
	ap := p.Append(3)
	if !reflect.DeepEqual(ap, Path{2, 0, 1, 3}) || len(p) != 3 {
		t.Error("Append must not mutate the receiver")
	}
	if p.String() != "<2 0 1>" {
		t.Errorf("String = %q", p.String())
	}
}

func TestIsSimple(t *testing.T) {
	if !(Path{0, 1, 2}).IsSimple() || (Path{0, 1, 0}).IsSimple() {
		t.Error("IsSimple wrong")
	}
	if !(Path{5}).IsSimple() {
		t.Error("trivial path is simple")
	}
}

func TestIsRedundant(t *testing.T) {
	tests := []struct {
		p    Path
		want bool
	}{
		{Path{0}, true},              // trivial
		{Path{0, 1, 2}, true},        // simple
		{Path{0, 1, 0, 2}, true},     // <0,1,0> no... split at index 1: <0,1>+<1,0,2>
		{Path{0, 1, 2, 1, 3}, true},  // <0,1,2> + <2,1,3>
		{Path{0, 1, 0, 1}, false},    // needs three simple pieces
		{Path{1, 0, 1, 0}, false},    // same
		{Path{0, 1, 2, 0, 1}, true},  // <0,1,2> + <2,0,1>
		{Path{}, false},              // empty is not a path
		{Path{3, 4, 3, 4, 3}, false}, // zigzag needs 4 pieces
	}
	for _, tc := range tests {
		if got := tc.p.IsRedundant(); got != tc.want {
			t.Errorf("IsRedundant(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestIsRedundantMatchesBruteForce compares the linear-time check with the
// definition: some split into two simple halves exists.
func TestIsRedundantMatchesBruteForce(t *testing.T) {
	brute := func(p Path) bool {
		for i := 0; i < len(p); i++ {
			if Path(p[:i+1]).IsSimple() && Path(p[i:]).IsSimple() {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(8)
		p := make(Path, n)
		for i := range p {
			p[i] = rng.Intn(4)
		}
		if got, want := p.IsRedundant(), brute(p); got != want {
			t.Fatalf("IsRedundant(%v) = %v, brute = %v", p, got, want)
		}
	}
}

func TestValidIn(t *testing.T) {
	g := DirectedCycle(4)
	if !(Path{0, 1, 2}).ValidIn(g) {
		t.Error("valid path rejected")
	}
	if (Path{0, 2}).ValidIn(g) {
		t.Error("non-edge accepted")
	}
	if (Path{}).ValidIn(g) || (Path{7}).ValidIn(g) {
		t.Error("empty/out-of-range accepted")
	}
}

func TestSimplePathsToCycle(t *testing.T) {
	g := DirectedCycle(4)
	paths, err := g.SimplePathsTo(0, EmptySet, 0)
	if err != nil {
		t.Fatal(err)
	}
	// <0>, <3,0>, <2,3,0>, <1,2,3,0>.
	if len(paths) != 4 {
		t.Fatalf("cycle simple paths to 0: %d, want 4: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p.Ter() != 0 || !p.IsSimple() || !p.ValidIn(g) {
			t.Errorf("bad path %v", p)
		}
	}
}

func TestSimplePathsToExclusion(t *testing.T) {
	g := Clique(4)
	paths, err := g.SimplePathsTo(0, SetOf(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	// K3 on {0,1,2}: <0>, <1,0>, <2,0>, <1,2,0>, <2,1,0>.
	if len(paths) != 5 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p.Set().Has(3) {
			t.Errorf("excluded node on path %v", p)
		}
	}
}

func TestSimplePathsFromTo(t *testing.T) {
	g := Clique(4)
	paths, err := g.SimplePathsFromTo(1, 2, EmptySet, 0)
	if err != nil {
		t.Fatal(err)
	}
	// <1,2>, <1,0,2>, <1,3,2>, <1,0,3,2>, <1,3,0,2>.
	if len(paths) != 5 {
		t.Fatalf("got %d: %v", len(paths), paths)
	}
	same, err := g.SimplePathsFromTo(2, 2, EmptySet, 0)
	if err != nil || len(same) != 1 || len(same[0]) != 1 {
		t.Errorf("from==to: %v, %v", same, err)
	}
}

func TestPathBudget(t *testing.T) {
	g := Clique(6)
	if _, err := g.SimplePathsTo(0, EmptySet, 10); !errors.Is(err, ErrPathBudget) {
		t.Errorf("want ErrPathBudget, got %v", err)
	}
	if _, err := g.RedundantPathsTo(0, EmptySet, 50); !errors.Is(err, ErrPathBudget) {
		t.Errorf("want ErrPathBudget, got %v", err)
	}
}

// TestRedundantPathsMatchBruteForce enumerates all walks up to length 2n on
// tiny graphs and compares the redundant ones ending at v with the
// generator's output.
func TestRedundantPathsMatchBruteForce(t *testing.T) {
	graphs := []*Graph{
		DirectedCycle(3),
		Clique(3),
		func() *Graph {
			g := New(4)
			g.MustAddEdge(0, 1)
			g.MustAddEdge(1, 2)
			g.MustAddEdge(2, 0)
			g.MustAddEdge(1, 3)
			g.MustAddEdge(3, 0)
			return g
		}(),
	}
	for gi, g := range graphs {
		for v := 0; v < g.N(); v++ {
			got, err := g.RedundantPathsTo(v, EmptySet, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteRedundantTo(g, v, EmptySet)
			if !reflect.DeepEqual(keysSorted(got), keysSorted(want)) {
				t.Errorf("graph %d, v=%d: generator %d paths, brute force %d",
					gi, v, len(got), len(want))
			}
		}
	}
}

// bruteRedundantTo enumerates all walks ending at v by BFS over walk space,
// keeping redundant ones. Walk length is bounded by 2n (the paper's bound
// on redundant path length).
func bruteRedundantTo(g *Graph, v int, excl Set) map[string]struct{} {
	out := make(map[string]struct{})
	var rec func(walk Path)
	rec = func(walk Path) {
		if len(walk) > 2*g.N() {
			return
		}
		if !walk.IsRedundant() {
			return // no extension of a non-redundant prefix is redundant
		}
		if walk.Ter() == v {
			out[walk.Key()] = struct{}{}
		}
		last := walk.Ter()
		for _, w := range g.Out(last) {
			if !excl.Has(w) {
				rec(walk.Append(w))
			}
		}
	}
	for s := 0; s < g.N(); s++ {
		if !excl.Has(s) {
			rec(Path{s})
		}
	}
	return out
}

func keysSorted(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestRedundantPrefixClosed: every prefix of a redundant path is redundant
// (the property the flooding relay rule relies on).
func TestRedundantPrefixClosed(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make(Path, 0, len(raw))
		for _, b := range raw {
			p = append(p, int(b%5))
		}
		if !p.IsRedundant() {
			return true
		}
		for i := 1; i <= len(p); i++ {
			if !Path(p[:i]).IsRedundant() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountRedundantPathsTo(t *testing.T) {
	g := DirectedCycle(3)
	n, err := g.CountRedundantPathsTo(0, EmptySet, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := len(bruteRedundantTo(g, 0, EmptySet))
	if n != want {
		t.Errorf("count = %d, want %d", n, want)
	}
}

// TestCountRedundantMatchesEnumeration pins the DFS counter to the
// materializing enumeration across graph shapes and exclusion sets — the
// counter visits walks in a completely different order (reversed-graph DFS),
// so agreement here is a strong check of the O(1) extension arithmetic.
func TestCountRedundantMatchesEnumeration(t *testing.T) {
	graphs := []*Graph{
		DirectedCycle(3),
		DirectedCycle(6),
		Clique(4),
		Wheel(4),
		Circulant(6, 1, 2),
		Torus(2, 3),
		KRegular(6, 2, 7),
		RandomDigraph(6, 0.4, 11),
	}
	for gi, g := range graphs {
		for v := 0; v < g.N(); v++ {
			for _, excl := range []Set{EmptySet, SetOf((v + 1) % g.N()), SetOf(v)} {
				enum, err := g.RedundantPathsTo(v, excl, 0)
				if err != nil {
					t.Fatal(err)
				}
				count, err := g.CountRedundantPathsTo(v, excl, 0)
				if err != nil {
					t.Fatal(err)
				}
				if count != len(enum) {
					t.Errorf("graph %d (%s), v=%d excl=%s: count %d, enumeration %d",
						gi, g.Name(), v, excl, count, len(enum))
				}
			}
		}
	}
	// The budget fires identically to the enumeration's.
	if _, err := Clique(6).CountRedundantPathsTo(0, EmptySet, 50); !errors.Is(err, ErrPathBudget) {
		t.Errorf("want ErrPathBudget, got %v", err)
	}
}
