package graph

// SCCs returns the strongly connected components of the graph as node sets
// in reverse topological order of the condensation (every edge between
// components points from a later component to an earlier one in the returned
// slice). Tarjan's algorithm, iterative to avoid deep recursion.
func (g *Graph) SCCs() []Set {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		sccs    []Set
		counter int
	)

	type frame struct {
		v    int
		next int // index into g.out[v]
	}

	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.next < len(g.out[v]) {
				w := g.out[v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp Set
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = comp.Add(w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// CondensationSources returns the SCCs with no incoming edges from other
// SCCs (the source components of the condensation DAG).
func (g *Graph) CondensationSources() []Set {
	sccs := g.SCCs()
	compOf := make([]int, g.n)
	for i, c := range sccs {
		c.ForEach(func(v int) bool {
			compOf[v] = i
			return true
		})
	}
	hasIncoming := make([]bool, len(sccs))
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if compOf[u] != compOf[v] {
				hasIncoming[compOf[v]] = true
			}
		}
	}
	var out []Set
	for i, c := range sccs {
		if !hasIncoming[i] {
			out = append(out, c)
		}
	}
	return out
}
