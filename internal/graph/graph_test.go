package graph

import (
	"errors"
	"reflect"
	"testing"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil { // duplicate is a no-op
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d after duplicate insert", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directedness broken")
	}
	if !reflect.DeepEqual(g.Out(0), []int{1}) || !reflect.DeepEqual(g.In(1), []int{0}) {
		t.Error("adjacency lists wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop error = %v", err)
	}
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrNodeRange) {
		t.Errorf("range error = %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrNodeRange) {
		t.Errorf("range error = %v", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Clique(4)
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("RemoveEdge broke wrong direction")
	}
	if g.M() != 11 {
		t.Errorf("M = %d, want 11", g.M())
	}
	g.RemoveEdge(1, 2) // no-op
	if g.M() != 11 {
		t.Error("double remove changed count")
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		g.MustAddEdge(0, v)
	}
	if !reflect.DeepEqual(g.Out(0), []int{1, 2, 3, 4, 5}) {
		t.Errorf("Out not sorted: %v", g.Out(0))
	}
	if g.OutSet(0) != SetOf(1, 2, 3, 4, 5) {
		t.Errorf("OutSet = %s", g.OutSet(0))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Clique(3)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("clone mutation affected original")
	}
	if c.Name() != g.Name() {
		t.Error("clone lost name")
	}
}

func TestInducedExclude(t *testing.T) {
	g := Clique(4)
	sub := g.InducedExclude(SetOf(3))
	if sub.HasEdge(0, 3) || sub.HasEdge(3, 0) {
		t.Error("excluded node still has edges")
	}
	if sub.M() != 6 {
		t.Errorf("induced M = %d, want 6 (K3)", sub.M())
	}
}

func TestReducedRemovesOnlyOutgoing(t *testing.T) {
	g := Clique(3)
	red := g.Reduced(SetOf(0), EmptySet)
	if red.HasEdge(0, 1) || red.HasEdge(0, 2) {
		t.Error("outgoing edges of reduced node remain")
	}
	if !red.HasEdge(1, 0) || !red.HasEdge(2, 0) {
		t.Error("incoming edges of reduced node were removed")
	}
}

func TestIsUndirected(t *testing.T) {
	if !Clique(4).IsUndirected() {
		t.Error("clique should be undirected")
	}
	if DirectedCycle(4).IsUndirected() {
		t.Error("cycle should be directed")
	}
	if !Wheel(4).IsUndirected() {
		t.Error("wheel should be undirected")
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := DirectedCycle(3)
	want := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestGraphString(t *testing.T) {
	if got := Clique(3).String(); got != "clique3(n=3, m=6)" {
		t.Errorf("String = %q", got)
	}
	if got := New(2).String(); got != "graph(n=2, m=0)" {
		t.Errorf("String = %q", got)
	}
}
