package graph

import "math/bits"

// bfsMasked runs the word-level BFS shared by Descendants and Ancestors
// over the given adjacency masks. The loops index the multiword sets
// directly and stop at nw — the number of words a graph of this order can
// populate — instead of going through the value-receiver algebra over all
// 16 words: these searches run once per (node, removal set) in the
// exponential condition checkers, whose graphs are capped at CertLimit
// (one word), so the fixed-size method forms cost ~16x the useful work.
func bfsMasked(masks []Set, v int, excl Set, nw int) Set {
	var seen Set
	seen[uint(v)>>6] = 1 << (uint(v) & 63)
	frontier := seen
	for {
		var next Set
		for fw := 0; fw < nw; fw++ {
			m := frontier[fw]
			for m != 0 {
				u := fw<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				adj := &masks[u]
				for w := 0; w < nw; w++ {
					next[w] |= adj[w] &^ seen[w] &^ excl[w]
				}
			}
		}
		var nonzero uint64
		for w := 0; w < nw; w++ {
			seen[w] |= next[w]
			nonzero |= next[w]
		}
		if nonzero == 0 {
			return seen
		}
		frontier = next
	}
}

// words returns how many Set words a graph of this order populates.
func (g *Graph) words() int { return (g.n + 63) >> 6 }

// Descendants returns the set of nodes reachable from v (including v) by
// directed paths that avoid every node in excl entirely. If v itself is in
// excl the result is empty.
func (g *Graph) Descendants(v int, excl Set) Set {
	if excl.Has(v) {
		return EmptySet
	}
	return bfsMasked(g.outMask, v, excl, g.words())
}

// Ancestors returns the set of nodes that can reach v (including v) by
// directed paths avoiding every node in excl. If v is in excl the result is
// empty.
func (g *Graph) Ancestors(v int, excl Set) Set {
	if excl.Has(v) {
		return EmptySet
	}
	return bfsMasked(g.inMask, v, excl, g.words())
}

// ReachSet implements Definition 2 of the paper: reach_v(F) is the set of
// nodes u outside F that have a directed path to v in the subgraph induced by
// V \ F. v itself is always a member (when v is not in F).
func (g *Graph) ReachSet(v int, f Set) Set {
	return g.Ancestors(v, f)
}

// DescendantsReduced returns the nodes reachable from v in the reduced graph
// G_{F1,F2} (Definition 5): outgoing edges of nodes in F1 ∪ F2 are removed,
// but those nodes remain valid targets.
func (g *Graph) DescendantsReduced(v int, f1, f2 Set) Set {
	rm := f1.Union(f2)
	nw := g.words()
	var seen Set
	seen[uint(v)>>6] = 1 << (uint(v) & 63)
	frontier := seen
	for {
		var next Set
		for fw := 0; fw < nw; fw++ {
			// Removed nodes have no outgoing edges; mask them out of the
			// frontier before expanding.
			m := frontier[fw] &^ rm[fw]
			for m != 0 {
				u := fw<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				adj := &g.outMask[u]
				for w := 0; w < nw; w++ {
					next[w] |= adj[w] &^ seen[w]
				}
			}
		}
		var nonzero uint64
		for w := 0; w < nw; w++ {
			seen[w] |= next[w]
			nonzero |= next[w]
		}
		if nonzero == 0 {
			return seen
		}
		frontier = next
	}
}

// SourceComponent implements Definition 6: the set of nodes in the reduced
// graph G_{F1,F2} that have directed paths to every node in V. The result is
// either empty or a strongly connected set.
func (g *Graph) SourceComponent(f1, f2 Set) Set {
	all := g.Nodes()
	var src Set
	for v := 0; v < g.n; v++ {
		if f1.Union(f2).Has(v) {
			continue // removed nodes have no outgoing edges; cannot reach all
		}
		if g.DescendantsReduced(v, f1, f2) == all {
			src = src.Add(v)
		}
	}
	return src
}

// StronglyConnectedWithin reports whether every ordered pair of nodes in s
// is connected by a directed path that stays inside s.
func (g *Graph) StronglyConnectedWithin(s Set) bool {
	if s.Count() <= 1 {
		return true
	}
	excl := g.Nodes().Minus(s)
	root := s.Min()
	if g.Descendants(root, excl) != s {
		return false
	}
	return g.Ancestors(root, excl) == s
}

// IsStronglyConnected reports whether the whole graph is strongly connected.
func (g *Graph) IsStronglyConnected() bool {
	return g.StronglyConnectedWithin(g.Nodes())
}
