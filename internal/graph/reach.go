package graph

// Descendants returns the set of nodes reachable from v (including v) by
// directed paths that avoid every node in excl entirely. If v itself is in
// excl the result is empty.
func (g *Graph) Descendants(v int, excl Set) Set {
	if excl.Has(v) {
		return EmptySet
	}
	seen := SetOf(v)
	frontier := SetOf(v)
	for !frontier.Empty() {
		var next Set
		frontier.ForEach(func(u int) bool {
			next = next.Union(g.outMask[u].Minus(seen).Minus(excl))
			return true
		})
		seen = seen.Union(next)
		frontier = next
	}
	return seen
}

// Ancestors returns the set of nodes that can reach v (including v) by
// directed paths avoiding every node in excl. If v is in excl the result is
// empty.
func (g *Graph) Ancestors(v int, excl Set) Set {
	if excl.Has(v) {
		return EmptySet
	}
	seen := SetOf(v)
	frontier := SetOf(v)
	for !frontier.Empty() {
		var next Set
		frontier.ForEach(func(u int) bool {
			next = next.Union(g.inMask[u].Minus(seen).Minus(excl))
			return true
		})
		seen = seen.Union(next)
		frontier = next
	}
	return seen
}

// ReachSet implements Definition 2 of the paper: reach_v(F) is the set of
// nodes u outside F that have a directed path to v in the subgraph induced by
// V \ F. v itself is always a member (when v is not in F).
func (g *Graph) ReachSet(v int, f Set) Set {
	return g.Ancestors(v, f)
}

// DescendantsReduced returns the nodes reachable from v in the reduced graph
// G_{F1,F2} (Definition 5): outgoing edges of nodes in F1 ∪ F2 are removed,
// but those nodes remain valid targets.
func (g *Graph) DescendantsReduced(v int, f1, f2 Set) Set {
	rm := f1.Union(f2)
	seen := SetOf(v)
	frontier := SetOf(v)
	for !frontier.Empty() {
		var next Set
		frontier.ForEach(func(u int) bool {
			if rm.Has(u) {
				return true // no outgoing edges from removed nodes
			}
			next = next.Union(g.outMask[u].Minus(seen))
			return true
		})
		seen = seen.Union(next)
		frontier = next
	}
	return seen
}

// SourceComponent implements Definition 6: the set of nodes in the reduced
// graph G_{F1,F2} that have directed paths to every node in V. The result is
// either empty or a strongly connected set.
func (g *Graph) SourceComponent(f1, f2 Set) Set {
	all := g.Nodes()
	var src Set
	for v := 0; v < g.n; v++ {
		if f1.Union(f2).Has(v) {
			continue // removed nodes have no outgoing edges; cannot reach all
		}
		if g.DescendantsReduced(v, f1, f2) == all {
			src = src.Add(v)
		}
	}
	return src
}

// StronglyConnectedWithin reports whether every ordered pair of nodes in s
// is connected by a directed path that stays inside s.
func (g *Graph) StronglyConnectedWithin(s Set) bool {
	if s.Count() <= 1 {
		return true
	}
	excl := g.Nodes().Minus(s)
	root := s.Min()
	if g.Descendants(root, excl) != s {
		return false
	}
	return g.Ancestors(root, excl) == s
}

// IsStronglyConnected reports whether the whole graph is strongly connected.
func (g *Graph) IsStronglyConnected() bool {
	return g.StronglyConnectedWithin(g.Nodes())
}
