package graph

import (
	"testing"
	"testing/quick"
)

func TestDescendantsAncestors(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	tests := []struct {
		name string
		got  Set
		want Set
	}{
		{"desc(0)", g.Descendants(0, EmptySet), SetOf(0, 1, 2)},
		{"desc(1)", g.Descendants(1, EmptySet), SetOf(1, 2)},
		{"desc(3)", g.Descendants(3, EmptySet), SetOf(3)},
		{"anc(2)", g.Ancestors(2, EmptySet), SetOf(0, 1, 2)},
		{"anc(0)", g.Ancestors(0, EmptySet), SetOf(0)},
		{"desc(0) excl 1", g.Descendants(0, SetOf(1)), SetOf(0)},
		{"anc(2) excl 1", g.Ancestors(2, SetOf(1)), SetOf(2)},
		{"desc of excluded", g.Descendants(1, SetOf(1)), EmptySet},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("%s = %s, want %s", tc.name, tc.got, tc.want)
		}
	}
}

func TestReachSetDefinition(t *testing.T) {
	// Paper's Definition 2 on the directed cycle: reach_v(F) is the arc
	// that can still reach v.
	g := DirectedCycle(4) // 0->1->2->3->0
	if got := g.ReachSet(0, SetOf(2)); got != SetOf(3, 0) {
		t.Errorf("reach_0({2}) = %s, want {0,3}", got)
	}
	// v always belongs to its own reach set.
	for v := 0; v < 4; v++ {
		if !g.ReachSet(v, EmptySet).Has(v) {
			t.Errorf("reach_%d(∅) misses v", v)
		}
	}
}

// TestAncestorsDescendantsDual checks u ∈ Ancestors(v) ⟺ v ∈ Descendants(u)
// on random graphs.
func TestAncestorsDescendantsDual(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomDigraph(7, 0.3, seed)
		for u := 0; u < 7; u++ {
			du := g.Descendants(u, EmptySet)
			for v := 0; v < 7; v++ {
				if du.Has(v) != g.Ancestors(v, EmptySet).Has(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReachMonotone: growing the removed set shrinks the reach set.
func TestReachMonotone(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := RandomDigraph(7, 0.4, seed)
		small := SetOf(int(a % 7))
		big := small.Add(int(b % 7))
		for v := 0; v < 7; v++ {
			if small.Has(v) || big.Has(v) {
				continue
			}
			rBig := g.ReachSet(v, big)
			rSmall := g.ReachSet(v, small)
			if !rSmall.Union(big).Contains(rBig) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSourceComponentClique(t *testing.T) {
	g := Clique(4)
	// Removing outgoing edges of {0} leaves {1,2,3} as the source component
	// (they still reach 0 through incoming edges).
	if got := g.SourceComponent(SetOf(0), EmptySet); got != SetOf(1, 2, 3) {
		t.Errorf("S_{0},∅ = %s", got)
	}
	if got := g.SourceComponent(SetOf(0), SetOf(1)); got != SetOf(2, 3) {
		t.Errorf("S_{0},{1} = %s", got)
	}
	// Source component depends only on the union of the two sets.
	if g.SourceComponent(SetOf(0, 1), EmptySet) != g.SourceComponent(SetOf(0), SetOf(1)) {
		t.Error("source component not a function of the union")
	}
}

func TestSourceComponentCycle(t *testing.T) {
	g := DirectedCycle(4)
	// Cutting node 1's outgoing edge leaves 2 -> 3 -> 0 -> 1: node 2 reaches
	// everyone, nobody else reaches 2.
	if got := g.SourceComponent(SetOf(1), EmptySet); got != SetOf(2) {
		t.Errorf("cycle source component = %s, want {2}", got)
	}
}

func TestSourceComponentEmpty(t *testing.T) {
	// Two disconnected nodes: no node reaches all of V.
	g := New(2)
	if got := g.SourceComponent(EmptySet, EmptySet); !got.Empty() {
		t.Errorf("disconnected graph source component = %s", got)
	}
}

// TestSourceComponentStronglyConnected verifies the paper's remark after
// Definition 6: nonempty source components are strongly connected in the
// reduced graph.
func TestSourceComponentStronglyConnected(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := RandomDigraph(6, 0.4, seed)
		f1, f2 := SetOf(int(a%6)), SetOf(int(b%6))
		s := g.SourceComponent(f1, f2)
		if s.Empty() {
			return true
		}
		return g.Reduced(f1, f2).StronglyConnectedWithin(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStronglyConnected(t *testing.T) {
	if !DirectedCycle(5).IsStronglyConnected() {
		t.Error("cycle should be strongly connected")
	}
	chain := New(3)
	chain.MustAddEdge(0, 1)
	chain.MustAddEdge(1, 2)
	if chain.IsStronglyConnected() {
		t.Error("chain should not be strongly connected")
	}
	if !Clique(4).StronglyConnectedWithin(SetOf(1, 2)) {
		t.Error("sub-clique should be strongly connected within")
	}
	g := New(4)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 1)
	// {1,2} connected through 0, which is outside the set.
	if g.StronglyConnectedWithin(SetOf(1, 2)) {
		t.Error("paths must stay inside the set")
	}
}
