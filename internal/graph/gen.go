package graph

import (
	"fmt"
	"math/rand"
)

// Clique returns the complete digraph on n nodes (every ordered pair joined).
func Clique(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g.SetName(fmt.Sprintf("clique%d", n))
}

// DirectedCycle returns the cycle 0 -> 1 -> ... -> n-1 -> 0.
func DirectedCycle(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		g.MustAddEdge(u, (u+1)%n)
	}
	return g.SetName(fmt.Sprintf("cycle%d", n))
}

// Wheel returns the (bidirected) wheel W_k: hub node 0 joined to every rim
// node, plus the rim cycle 1..k. W_4 (n = 5) is minimally 3-connected and is
// our stand-in for the paper's Figure 1(a): n > 3f and κ(G) > 2f hold for
// f = 1, and removing any single edge breaks κ(G) > 2f.
func Wheel(k int) *Graph {
	g := New(k + 1)
	for i := 1; i <= k; i++ {
		if err := g.AddBoth(0, i); err != nil {
			panic(err)
		}
		if err := g.AddBoth(i, i%k+1); err != nil {
			panic(err)
		}
	}
	return g.SetName(fmt.Sprintf("wheel%d", k))
}

// Fig1a returns the Figure 1(a) stand-in graph (see DESIGN.md fidelity
// note 6): the wheel W_4 as a bidirected digraph, n = 5.
func Fig1a() *Graph {
	return Wheel(4).SetName("fig1a")
}

// Fig1b returns the Figure 1(b) graph: two cliques of 7 nodes each plus
// eight directed cross edges. Nodes 0..6 are v1..v7 (clique K1) and nodes
// 7..13 are w1..w7 (clique K2). Cross edges: v_i -> w_i for i = 1..4 and
// w_i -> v_i for i = 4..7, so only the pair (v4, w4) carries a bidirectional
// bridge. The benchmark suite verifies exhaustively that this graph
// satisfies 3-reach for f = 2 while v1 and w1 are joined by only 2f = 4
// vertex-disjoint paths (all-pair reliable message transmission impossible).
func Fig1b() *Graph {
	g := New(14)
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			if u != v {
				g.MustAddEdge(u, v)
				g.MustAddEdge(u+7, v+7)
			}
		}
	}
	for i := 0; i < 4; i++ { // v1->w1 .. v4->w4
		g.MustAddEdge(i, i+7)
	}
	for i := 3; i < 7; i++ { // w4->v4 .. w7->v7
		g.MustAddEdge(i+7, i)
	}
	return g.SetName("fig1b")
}

// Fig1bAnalog returns the scaled-down analog of Figure 1(b) used for
// end-to-end BW executions (f = 1): two cliques of 4 plus four cross edges
// with pairwise-disjoint endpoints. Nodes 0..3 are v1..v4, nodes 4..7 are
// w1..w4. Cross edges: v1->w1, v2->w2 (K1 to K2) and w3->v3, w4->v4 (K2 to
// K1). The condition checker verifies 3-reach for f = 1, and v1-w1 are
// joined by only 2f = 2 disjoint paths.
func Fig1bAnalog() *Graph {
	g := New(8)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				g.MustAddEdge(u, v)
				g.MustAddEdge(u+4, v+4)
			}
		}
	}
	g.MustAddEdge(0, 4) // v1 -> w1
	g.MustAddEdge(1, 5) // v2 -> w2
	g.MustAddEdge(6, 2) // w3 -> v3
	g.MustAddEdge(7, 3) // w4 -> v4
	return g.SetName("fig1b-analog")
}

// Circulant returns the circulant digraph on n nodes with edges
// i -> (i+d) mod n for every offset d. With offsets 1..2f+1 these graphs
// satisfy 3-reach for small f and grow sparsely, which makes them the
// scalability family for the benchmarks.
func Circulant(n int, offsets ...int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for _, d := range offsets {
			v := ((u+d)%n + n) % n
			if v != u {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g.SetName(fmt.Sprintf("circulant%d", n))
}

// RandomDigraph returns a digraph where each ordered pair (u, v), u != v, is
// an edge independently with probability p, using the given seed.
func RandomDigraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g.SetName(fmt.Sprintf("random%d", n))
}

// RandomUndirected returns a bidirected digraph where each unordered pair is
// joined (in both directions) independently with probability p.
func RandomUndirected(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddBoth(u, v); err != nil {
					panic(err) // unreachable: endpoints valid by loop bounds
				}
			}
		}
	}
	return g.SetName(fmt.Sprintf("randomU%d", n))
}

// Torus returns the bidirected rows x cols torus: node r*cols+c is joined
// (in both directions) to its four grid neighbors with wraparound. The
// standard sparse mesh family for the scale experiments — constant degree,
// diameter (rows+cols)/2.
func Torus(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Adding the "forward" neighbor in both directions covers every
			// torus edge exactly once; duplicate AddBoth calls on 2-cycles
			// (rows or cols == 2) are no-ops.
			for _, nb := range [][2]int{{r, c + 1}, {r + 1, c}} {
				if v := id(nb[0], nb[1]); v != id(r, c) {
					if err := g.AddBoth(id(r, c), v); err != nil {
						panic(err) // unreachable: ids valid by construction
					}
				}
			}
		}
	}
	return g.SetName(fmt.Sprintf("torus%dx%d", rows, cols))
}

// KRegular returns a random k-out-regular digraph: every node gets exactly k
// distinct out-neighbors drawn uniformly without replacement, using the
// given seed. In-degrees are k only in expectation. Requires 1 <= k < n.
func KRegular(n, k int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	others := make([]int, n-1)
	for u := 0; u < n; u++ {
		j := 0
		for v := 0; v < n; v++ {
			if v != u {
				others[j] = v
				j++
			}
		}
		// Partial Fisher-Yates: the first k entries are a uniform sample.
		for i := 0; i < k; i++ {
			swap := i + rng.Intn(len(others)-i)
			others[i], others[swap] = others[swap], others[i]
			g.MustAddEdge(u, others[i])
		}
	}
	return g.SetName(fmt.Sprintf("kregular%d", n))
}

// Expander returns a d-regular digraph built as the union of d random
// permutations without fixed points or duplicate edges (each permutation is
// resampled per offending node until clean) — a standard construction whose
// instances are expanders with high probability. Every node has out-degree
// and in-degree exactly d. Requires 1 <= d < n.
func Expander(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for layer := 0; layer < d; layer++ {
		perm := rng.Perm(n)
		// Repair fixed points and edges duplicating earlier layers by random
		// transpositions: whole-permutation rejection has acceptance ~e^-d,
		// while repairs converge in a handful of swaps when d << n.
		for attempts := 0; ; attempts++ {
			bad := -1
			for u, v := range perm {
				if u == v || g.HasEdge(u, v) {
					bad = u
					break
				}
			}
			if bad < 0 {
				break
			}
			if attempts > 100*(n+1) {
				panic(fmt.Sprintf("graph: Expander(%d, %d, %d): could not place layer %d", n, d, seed, layer))
			}
			j := rng.Intn(n)
			perm[bad], perm[j] = perm[j], perm[bad]
		}
		for u, v := range perm {
			g.MustAddEdge(u, v)
		}
	}
	return g.SetName(fmt.Sprintf("expander%d", n))
}

// TwoCliquesBridged is the generic two-clique family behind Figure 1(b):
// cliques of size k on nodes 0..k-1 and k..2k-1, plus the given cross edges
// (pairs are (u, v) node IDs in the combined numbering).
func TwoCliquesBridged(k int, cross [][2]int) *Graph {
	g := New(2 * k)
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			if u != v {
				g.MustAddEdge(u, v)
				g.MustAddEdge(u+k, v+k)
			}
		}
	}
	for _, e := range cross {
		g.MustAddEdge(e[0], e[1])
	}
	return g.SetName(fmt.Sprintf("twocliques%d", k))
}
