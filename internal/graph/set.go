// Package graph provides the directed-graph substrate used throughout the
// repository: bitmask node sets, adjacency structures, strongly connected
// components, reachability, vertex-disjoint paths (Menger via max-flow),
// simple/redundant path enumeration with explicit budgets, generators for
// the paper's example graphs, and text serialization.
//
// Node identifiers are dense ints in [0, n) with n <= MaxNodes so that node
// sets fit in a single machine word.
package graph

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// MaxNodes is the largest supported graph order. Sets are single uint64
// bitmasks, which keeps the exponential condition checkers (that enumerate
// millions of node subsets) allocation-free.
const MaxNodes = 64

// Set is a set of node IDs represented as a bitmask. The zero value is the
// empty set and is ready to use.
type Set uint64

// EmptySet is the set containing no nodes.
const EmptySet Set = 0

// SetOf builds a set from the given node IDs.
func SetOf(nodes ...int) Set {
	var s Set
	for _, v := range nodes {
		s = s.Add(v)
	}
	return s
}

// FullSet returns the set {0, ..., n-1}.
func FullSet(n int) Set {
	if n <= 0 {
		return 0
	}
	if n >= MaxNodes {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s with node v included.
func (s Set) Add(v int) Set { return s | 1<<uint(v) }

// Remove returns s with node v excluded.
func (s Set) Remove(v int) Set { return s &^ (1 << uint(v)) }

// Has reports whether v is a member of s.
func (s Set) Has(v int) bool { return s&(1<<uint(v)) != 0 }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns the set difference s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Count returns the number of members.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Contains reports whether every member of t is also in s.
func (s Set) Contains(t Set) bool { return t&^s == 0 }

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// Members returns the node IDs in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for m := s; m != 0; {
		v := bits.TrailingZeros64(uint64(m))
		out = append(out, v)
		m &= m - 1
	}
	return out
}

// ForEach calls fn for every member in ascending order. It stops early if fn
// returns false.
func (s Set) ForEach(fn func(v int) bool) {
	for m := s; m != 0; {
		v := bits.TrailingZeros64(uint64(m))
		if !fn(v) {
			return
		}
		m &= m - 1
	}
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set as "{a,b,c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(v))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// PathSet returns the set of nodes appearing on the path.
func PathSet(path []int) Set {
	var s Set
	for _, v := range path {
		s = s.Add(v)
	}
	return s
}

// Subsets enumerates every subset of universe with at most k members, in a
// deterministic order (by size, then lexicographically by member list), and
// calls fn for each. Enumeration stops early if fn returns false.
func Subsets(universe Set, k int, fn func(Set) bool) {
	members := universe.Members()
	if k > len(members) {
		k = len(members)
	}
	if !fn(EmptySet) {
		return
	}
	// chosen holds indices into members.
	chosen := make([]int, 0, k)
	var rec func(start int, cur Set) bool
	rec = func(start int, cur Set) bool {
		if len(chosen) == cap(chosen) {
			return true
		}
		for i := start; i < len(members); i++ {
			next := cur.Add(members[i])
			chosen = append(chosen, i)
			if !fn(next) {
				return false
			}
			if !rec(i+1, next) {
				return false
			}
			chosen = chosen[:len(chosen)-1]
		}
		return true
	}
	if k > 0 {
		rec(0, EmptySet)
	}
}

// SubsetsOfSize enumerates subsets of universe with exactly k members.
func SubsetsOfSize(universe Set, k int, fn func(Set) bool) {
	Subsets(universe, k, func(s Set) bool {
		if s.Count() != k {
			return true
		}
		return fn(s)
	})
}

// CountSubsets returns the number of subsets of a set with size c that have
// at most k members: sum_{i=0..k} C(c, i).
func CountSubsets(c, k int) int {
	total := 0
	for i := 0; i <= k && i <= c; i++ {
		total += binomial(c, i)
	}
	return total
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// SortedMembers is a convenience for tests: it returns the members of each
// set in the slice, sorted by the sets' string forms for stable comparison.
func SortedMembers(sets []Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}
