// Package graph provides the directed-graph substrate used throughout the
// repository: bitmask node sets, adjacency structures, strongly connected
// components, reachability, vertex-disjoint paths (Menger via max-flow),
// simple/redundant path enumeration with explicit budgets, generators for
// the paper's example graphs, and text serialization.
//
// Node identifiers are dense ints in [0, n) with n <= MaxNodes so that node
// sets fit in a fixed, comparable array of machine words.
package graph

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// MaxNodes is the largest supported graph order, a build dimension: the
// default build supports 1024 nodes (16-word Sets), and the graph4096 build
// tag widens Sets to 64 words for n up to 4096. See dim_default.go /
// dim_4096.go. Keeping the dimension a compile-time constant preserves
// what the Set representation is load-bearing for: fixed-size multiword
// bitmasks are value types, comparable and usable as map keys, so the
// exponential condition checkers (which enumerate millions of node subsets)
// stay allocation-free — and small-graph builds pay no 64-word bitmask tax.

// setWords is the number of 64-bit words backing a Set.
const setWords = MaxNodes / 64

// Set is a set of node IDs represented as a multiword bitmask. The zero
// value is the empty set and is ready to use. Set is a comparable value
// type: == compares contents and Sets index maps directly.
type Set [setWords]uint64

// EmptySet is the set containing no nodes.
var EmptySet Set

// SetOf builds a set from the given node IDs.
func SetOf(nodes ...int) Set {
	var s Set
	for _, v := range nodes {
		s[uint(v)>>6] |= 1 << (uint(v) & 63)
	}
	return s
}

// FullSet returns the set {0, ..., n-1}.
func FullSet(n int) Set {
	var s Set
	if n <= 0 {
		return s
	}
	if n > MaxNodes {
		n = MaxNodes
	}
	for w := 0; w < n>>6; w++ {
		s[w] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		s[n>>6] = 1<<rem - 1
	}
	return s
}

// Add returns s with node v included.
func (s Set) Add(v int) Set {
	s[uint(v)>>6] |= 1 << (uint(v) & 63)
	return s
}

// Remove returns s with node v excluded.
func (s Set) Remove(v int) Set {
	s[uint(v)>>6] &^= 1 << (uint(v) & 63)
	return s
}

// Has reports whether v is a member of s.
func (s Set) Has(v int) bool {
	return s[uint(v)>>6]&(1<<(uint(v)&63)) != 0
}

// Union returns the union of s and t.
func (s Set) Union(t Set) Set {
	for w := range s {
		s[w] |= t[w]
	}
	return s
}

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set {
	for w := range s {
		s[w] &= t[w]
	}
	return s
}

// Minus returns the set difference s \ t.
func (s Set) Minus(t Set) Set {
	for w := range s {
		s[w] &^= t[w]
	}
	return s
}

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == EmptySet }

// Contains reports whether every member of t is also in s.
func (s Set) Contains(t Set) bool {
	for w := range s {
		if t[w]&^s[w] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool {
	for w := range s {
		if s[w]&t[w] != 0 {
			return true
		}
	}
	return false
}

// Members returns the node IDs in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for w, m := range s {
		base := w << 6
		for m != 0 {
			out = append(out, base+bits.TrailingZeros64(m))
			m &= m - 1
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order. It stops early if fn
// returns false.
func (s Set) ForEach(fn func(v int) bool) {
	for w, m := range s {
		base := w << 6
		for m != 0 {
			if !fn(base + bits.TrailingZeros64(m)) {
				return
			}
			m &= m - 1
		}
	}
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	for w, m := range s {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// String renders the set as "{a,b,c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(v))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// PathSet returns the set of nodes appearing on the path.
func PathSet(path []int) Set {
	var s Set
	for _, v := range path {
		s[uint(v)>>6] |= 1 << (uint(v) & 63)
	}
	return s
}

// Subsets enumerates every subset of universe with at most k members, in a
// deterministic order (lexicographic DFS over the ascending member list),
// and calls fn for each. Enumeration stops early if fn returns false.
func Subsets(universe Set, k int, fn func(Set) bool) {
	members := universe.Members()
	if k > len(members) {
		k = len(members)
	}
	if !fn(EmptySet) {
		return
	}
	// chosen holds indices into members.
	chosen := make([]int, 0, k)
	var rec func(start int, cur Set) bool
	rec = func(start int, cur Set) bool {
		if len(chosen) == cap(chosen) {
			return true
		}
		for i := start; i < len(members); i++ {
			next := cur.Add(members[i])
			chosen = append(chosen, i)
			if !fn(next) {
				return false
			}
			if !rec(i+1, next) {
				return false
			}
			chosen = chosen[:len(chosen)-1]
		}
		return true
	}
	if k > 0 {
		rec(0, EmptySet)
	}
}

// SubsetsOfSize enumerates subsets of universe with exactly k members.
func SubsetsOfSize(universe Set, k int, fn func(Set) bool) {
	Subsets(universe, k, func(s Set) bool {
		if s.Count() != k {
			return true
		}
		return fn(s)
	})
}

// CountSubsets returns the number of subsets of a set with size c that have
// at most k members: sum_{i=0..k} C(c, i).
func CountSubsets(c, k int) int {
	total := 0
	for i := 0; i <= k && i <= c; i++ {
		total += binomial(c, i)
	}
	return total
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// SortedMembers is a convenience for tests: it returns the members of each
// set in the slice, sorted by the sets' string forms for stable comparison.
func SortedMembers(sets []Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}
