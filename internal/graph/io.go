package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Marshal writes the graph in a small line-oriented text format:
//
//	# optional comment lines
//	n <order>
//	e <from> <to>
//
// The format round-trips through Unmarshal.
func (g *Graph) Marshal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.name != "" {
		fmt.Fprintf(bw, "# %s\n", g.name)
	}
	fmt.Fprintf(bw, "n %d\n", g.n)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// Unmarshal parses the format written by Marshal.
func Unmarshal(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	name := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(text, "#"))
			}
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate order declaration", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'n <order>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > MaxNodes {
				return nil, fmt.Errorf("graph: line %d: bad order %q", line, fields[1])
			}
			g = New(n)
			g.name = name
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before order declaration", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e <from> <to>'", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: input contained no order declaration")
	}
	return g, nil
}

// DOT renders the graph in Graphviz format. Bidirectional edge pairs are
// drawn once with dir=both to keep figures readable.
func (g *Graph) DOT() string {
	var b strings.Builder
	name := g.name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	drawn := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if drawn[[2]int{u, v}] {
			continue
		}
		if g.HasEdge(v, u) {
			fmt.Fprintf(&b, "  %d -> %d [dir=both];\n", u, v)
			drawn[[2]int{v, u}] = true
		} else {
			fmt.Fprintf(&b, "  %d -> %d;\n", u, v)
		}
		drawn[[2]int{u, v}] = true
	}
	b.WriteString("}\n")
	return b.String()
}

// NamedSpecs lists the spec grammar Named accepts, one form per line — the
// single source the CLIs print and the doc comment mirrors.
func NamedSpecs() []string {
	return []string{
		"clique:<n>                 complete digraph",
		"cycle:<n>                  directed cycle",
		"wheel:<k>                  bidirected wheel (k >= 2 rim nodes)",
		"fig1a                      the paper's Figure 1(a) stand-in (W4)",
		"fig1b                      the paper's Figure 1(b) graph (two K7 + 8 bridges)",
		"fig1b-analog               the scaled Figure 1(b) analog (two K4 + 4 bridges)",
		"circulant:<n>:<d1,d2,...>  circulant digraph",
		"random:<n>:<p>:<seed>      random digraph",
		"torus:<rows>:<cols>        bidirected torus grid (rows, cols >= 2)",
		"kregular:<n>:<k>:<seed>    random k-out-regular digraph (1 <= k < n)",
		"expander:<n>:<d>:<seed>    d-regular permutation expander (1 <= d < n/2)",
	}
}

// Named constructs one of the built-in graphs from a spec string, for the
// CLIs and scenario files (the forms NamedSpecs lists):
//
//	clique:<n>       complete digraph
//	cycle:<n>        directed cycle
//	wheel:<k>        bidirected wheel (k rim nodes)
//	fig1a            the paper's Figure 1(a) stand-in (W4)
//	fig1b            the paper's Figure 1(b) graph (two K7 + 8 bridges)
//	fig1b-analog     the scaled Figure 1(b) analog (two K4 + 4 bridges)
//	circulant:<n>:<d1,d2,...>  circulant digraph
//	random:<n>:<p>:<seed>      random digraph
//	torus:<rows>:<cols>        bidirected torus grid
//	kregular:<n>:<k>:<seed>    random k-out-regular digraph
//	expander:<n>:<d>:<seed>    d-regular permutation expander
//
// Every argument is validated — orders outside [1, MaxNodes], probabilities
// outside [0, 1], and surplus arguments are errors, never panics — so specs
// arriving from CLI flags or scenario JSON fail with a message instead of
// crashing the process.
func Named(spec string) (*Graph, error) {
	parts := strings.Split(spec, ":")
	arity := func(n int) error {
		if len(parts) != n {
			return fmt.Errorf("graph: spec %q: want %d arguments, have %d", spec, n-1, len(parts)-1)
		}
		return nil
	}
	order := func(i int) (int, error) {
		n, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("graph: spec %q: bad order %q", spec, parts[i])
		}
		if n < 1 || n > MaxNodes {
			return 0, fmt.Errorf("graph: spec %q: order %d outside [1,%d]", spec, n, MaxNodes)
		}
		return n, nil
	}
	switch parts[0] {
	case "clique":
		if err := arity(2); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		return Clique(n), nil
	case "cycle":
		if err := arity(2); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		return DirectedCycle(n), nil
	case "wheel":
		if err := arity(2); err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 2 || k+1 > MaxNodes {
			return nil, fmt.Errorf("graph: spec %q: rim size must be in [2,%d]", spec, MaxNodes-1)
		}
		return Wheel(k), nil
	case "fig1a":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Fig1a(), nil
	case "fig1b":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Fig1b(), nil
	case "fig1b-analog":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Fig1bAnalog(), nil
	case "circulant":
		if err := arity(3); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		var offsets []int
		for _, s := range strings.Split(parts[2], ",") {
			d, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("graph: spec %q: bad offset %q", spec, s)
			}
			offsets = append(offsets, d)
		}
		return Circulant(n, offsets...), nil
	case "random":
		if err := arity(4); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		// Written as !(0 <= p <= 1) so NaN is rejected too.
		if err != nil || !(p >= 0 && p <= 1) {
			return nil, fmt.Errorf("graph: spec %q: probability %q outside [0,1]", spec, parts[2])
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad seed", spec)
		}
		return RandomDigraph(n, p, seed), nil
	case "torus":
		if err := arity(3); err != nil {
			return nil, err
		}
		rows, err1 := strconv.Atoi(parts[1])
		cols, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || rows < 2 || cols < 2 {
			return nil, fmt.Errorf("graph: spec %q: torus sides must be integers >= 2", spec)
		}
		// Bound each side before multiplying: the product of two huge sides
		// overflows int and could wrap past the MaxNodes guard.
		if rows > MaxNodes || cols > MaxNodes || rows*cols > MaxNodes {
			return nil, fmt.Errorf("graph: spec %q: order exceeds %d", spec, MaxNodes)
		}
		return Torus(rows, cols), nil
	case "kregular":
		if err := arity(4); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(parts[2])
		if err != nil || k < 1 || k >= n {
			return nil, fmt.Errorf("graph: spec %q: out-degree must be in [1,%d]", spec, n-1)
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad seed", spec)
		}
		return KRegular(n, k, seed), nil
	case "expander":
		if err := arity(4); err != nil {
			return nil, err
		}
		n, err := order(1)
		if err != nil {
			return nil, err
		}
		d, err := strconv.Atoi(parts[2])
		// d < n/2 keeps the permutation-repair construction comfortably away
		// from the dense regime where placements can fail.
		if err != nil || d < 1 || d >= (n+1)/2 {
			return nil, fmt.Errorf("graph: spec %q: degree must be in [1,%d]", spec, (n+1)/2-1)
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad seed", spec)
		}
		return Expander(n, d, seed), nil
	default:
		return nil, fmt.Errorf("graph: unknown spec %q (known forms: clique:<n>, cycle:<n>, wheel:<k>, fig1a, fig1b, fig1b-analog, circulant:<n>:<offsets>, random:<n>:<p>:<seed>, torus:<rows>:<cols>, kregular:<n>:<k>:<seed>, expander:<n>:<d>:<seed>)", spec)
	}
}

// SortedEdges returns the edges formatted "u->v", sorted, for stable test
// comparisons.
func (g *Graph) SortedEdges() []string {
	es := g.Edges()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = fmt.Sprintf("%d->%d", e[0], e[1])
	}
	sort.Strings(out)
	return out
}
