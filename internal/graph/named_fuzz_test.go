package graph

import (
	"testing"
)

// FuzzNamed drives the spec parser with arbitrary strings: it must either
// return an error or a well-formed graph within the supported order range —
// never panic, never allocate an absurd graph. The corpus seeds every
// grammar form plus near-miss malformations.
func FuzzNamed(f *testing.F) {
	seeds := []string{
		"clique:5", "cycle:3", "wheel:4", "fig1a", "fig1b", "fig1b-analog",
		"circulant:7:1,2", "random:6:0.5:42",
		"clique:-1", "clique:99999999999999999999", "wheel:1",
		"circulant:5:", "circulant:5:1,,2", "random:5:NaN:1", "random:5:1e308:1",
		":::", "clique:5:5", "random:5:0.5:9223372036854775807", "circulant:5:-1000000",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := Named(spec)
		if err != nil {
			if g != nil {
				t.Fatalf("Named(%q) returned both a graph and error %v", spec, err)
			}
			return
		}
		if g.N() < 1 || g.N() > MaxNodes {
			t.Fatalf("Named(%q) built order %d outside [1,%d]", spec, g.N(), MaxNodes)
		}
		if g.M() < 0 || g.M() > g.N()*(g.N()-1) {
			t.Fatalf("Named(%q) has impossible edge count %d", spec, g.M())
		}
		// Accepted specs must parse identically when round-tripped through
		// the same string (the parser is a pure function).
		again, err := Named(spec)
		if err != nil {
			t.Fatalf("Named(%q) flapped: %v", spec, err)
		}
		if len(again.SortedEdges()) != len(g.SortedEdges()) {
			t.Fatalf("Named(%q) nondeterministic", spec)
		}
	})
}
