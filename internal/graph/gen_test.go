package graph

import (
	"reflect"
	"strings"
	"testing"
)

func TestClique(t *testing.T) {
	g := Clique(5)
	if g.N() != 5 || g.M() != 20 {
		t.Errorf("K5: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsStronglyConnected() {
		t.Error("clique not strongly connected")
	}
}

func TestDirectedCycleShape(t *testing.T) {
	g := DirectedCycle(6)
	if g.M() != 6 {
		t.Errorf("cycle m = %d", g.M())
	}
	for v := 0; v < 6; v++ {
		if len(g.Out(v)) != 1 || len(g.In(v)) != 1 {
			t.Errorf("cycle degree wrong at %d", v)
		}
	}
}

func TestWheelShape(t *testing.T) {
	g := Wheel(4)
	if g.N() != 5 || g.M() != 16 { // 8 undirected edges
		t.Errorf("W4: n=%d m=%d", g.N(), g.M())
	}
	if len(g.Out(0)) != 4 {
		t.Errorf("hub degree = %d", len(g.Out(0)))
	}
	for v := 1; v <= 4; v++ {
		if len(g.Out(v)) != 3 {
			t.Errorf("rim degree at %d = %d", v, len(g.Out(v)))
		}
	}
}

func TestFig1bShape(t *testing.T) {
	g := Fig1b()
	if g.N() != 14 {
		t.Fatalf("n = %d", g.N())
	}
	// Two K7s: 2*42 = 84 internal edges, plus 8 bridges.
	if g.M() != 92 {
		t.Errorf("m = %d, want 92", g.M())
	}
	cross := 0
	for _, e := range g.Edges() {
		if (e[0] < 7) != (e[1] < 7) {
			cross++
		}
	}
	if cross != 8 {
		t.Errorf("cross edges = %d, want 8", cross)
	}
}

func TestFig1bAnalogShape(t *testing.T) {
	g := Fig1bAnalog()
	if g.N() != 8 || g.M() != 2*12+4 {
		t.Errorf("analog: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsStronglyConnected() {
		t.Error("analog not strongly connected")
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(6, 1, 2)
	if g.M() != 12 {
		t.Errorf("m = %d", g.M())
	}
	if !g.HasEdge(5, 0) || !g.HasEdge(5, 1) {
		t.Error("wraparound edges missing")
	}
	if !g.IsStronglyConnected() {
		t.Error("circulant not strongly connected")
	}
}

func TestRandomDigraphDeterminism(t *testing.T) {
	a := RandomDigraph(8, 0.4, 11)
	b := RandomDigraph(8, 0.4, 11)
	c := RandomDigraph(8, 0.4, 12)
	if strings.Join(a.SortedEdges(), ",") != strings.Join(b.SortedEdges(), ",") {
		t.Error("same seed produced different graphs")
	}
	if strings.Join(a.SortedEdges(), ",") == strings.Join(c.SortedEdges(), ",") {
		t.Error("different seeds produced identical graphs (unlikely)")
	}
}

func TestRandomDigraphExtremes(t *testing.T) {
	if g := RandomDigraph(5, 0, 1); g.M() != 0 {
		t.Error("p=0 has edges")
	}
	if g := RandomDigraph(5, 1, 1); g.M() != 20 {
		t.Error("p=1 not complete")
	}
	if g := RandomUndirected(5, 1, 1); g.M() != 20 || !g.IsUndirected() {
		t.Error("undirected p=1 wrong")
	}
}

func TestTwoCliquesBridged(t *testing.T) {
	g := TwoCliquesBridged(3, [][2]int{{0, 3}, {4, 1}})
	if g.N() != 6 || g.M() != 12+2 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(4, 1) {
		t.Error("bridges missing")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 8)
	if g.N() != 32 || !g.IsUndirected() {
		t.Fatalf("n=%d undirected=%v", g.N(), g.IsUndirected())
	}
	// Every node has exactly four neighbors on sides >= 3.
	for v := 0; v < g.N(); v++ {
		if d := len(g.Out(v)); d != 4 {
			t.Fatalf("node %d out-degree %d, want 4", v, d)
		}
	}
	if !g.IsStronglyConnected() {
		t.Error("torus not strongly connected")
	}
	// 2xN tori collapse the duplicate row edges; still valid and connected.
	small := Torus(2, 2)
	if small.N() != 4 || !small.IsStronglyConnected() || !small.IsUndirected() {
		t.Errorf("torus 2x2 malformed: %s", small)
	}
}

func TestKRegular(t *testing.T) {
	g := KRegular(20, 3, 5)
	for v := 0; v < g.N(); v++ {
		if d := len(g.Out(v)); d != 3 {
			t.Fatalf("node %d out-degree %d, want 3", v, d)
		}
		for _, w := range g.Out(v) {
			if w == v {
				t.Fatal("self loop")
			}
		}
	}
	// Seeded determinism.
	if !reflect.DeepEqual(KRegular(20, 3, 5).SortedEdges(), g.SortedEdges()) {
		t.Error("KRegular not deterministic for a fixed seed")
	}
	if reflect.DeepEqual(KRegular(20, 3, 6).SortedEdges(), g.SortedEdges()) {
		t.Error("KRegular ignores the seed")
	}
}

func TestExpander(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{8, 2}, {20, 4}, {64, 3}, {2, 1}} {
		g := Expander(tc.n, tc.d, 9)
		for v := 0; v < g.N(); v++ {
			if len(g.Out(v)) != tc.d || len(g.In(v)) != tc.d {
				t.Fatalf("n=%d d=%d node %d: degree out=%d in=%d",
					tc.n, tc.d, v, len(g.Out(v)), len(g.In(v)))
			}
		}
	}
	g := Expander(64, 3, 9)
	if !g.IsStronglyConnected() {
		t.Error("expander instance not strongly connected")
	}
	if !reflect.DeepEqual(Expander(64, 3, 9).SortedEdges(), g.SortedEdges()) {
		t.Error("Expander not deterministic for a fixed seed")
	}
}
