package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple directed graph on nodes 0..n-1. Self-loops are rejected,
// matching the paper's model (every node can always message itself; the edge
// set E excludes self-loops). The zero value is not useful; construct with
// New.
//
// Graph is immutable after construction in all concurrent contexts: the
// simulator and the condition checkers share one Graph across goroutines and
// never mutate it. Mutating methods (AddEdge) are for build time only.
type Graph struct {
	n       int
	name    string
	out     [][]int
	in      [][]int
	outMask []Set
	inMask  []Set
	edges   int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 1 || n > MaxNodes {
		panic(fmt.Sprintf("graph: order %d outside [1,%d]", n, MaxNodes))
	}
	return &Graph{
		n:       n,
		out:     make([][]int, n),
		in:      make([][]int, n),
		outMask: make([]Set, n),
		inMask:  make([]Set, n),
	}
}

// ErrSelfLoop is returned when an edge (v, v) is added.
var ErrSelfLoop = errors.New("graph: self-loops are not allowed")

// ErrNodeRange is returned when an edge endpoint is out of range.
var ErrNodeRange = errors.New("graph: node id out of range")

// AddEdge inserts the directed edge (u, v). Duplicate insertions are no-ops.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if g.outMask[u].Has(v) {
		return nil
	}
	g.out[u] = insertSorted(g.out[u], v)
	g.in[v] = insertSorted(g.in[v], u)
	g.outMask[u] = g.outMask[u].Add(v)
	g.inMask[v] = g.inMask[v].Add(u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for build-time literals; it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddBoth inserts both (u, v) and (v, u); used to embed undirected graphs.
func (g *Graph) AddBoth(u, v int) error {
	if err := g.AddEdge(u, v); err != nil {
		return err
	}
	return g.AddEdge(v, u)
}

// RemoveEdge deletes the directed edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || !g.outMask[u].Has(v) {
		return
	}
	g.out[u] = removeSorted(g.out[u], v)
	g.in[v] = removeSorted(g.in[v], u)
	g.outMask[u] = g.outMask[u].Remove(v)
	g.inMask[v] = g.inMask[v].Remove(u)
	g.edges--
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.edges }

// Name returns the graph's display name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's display name and returns the graph for chaining.
func (g *Graph) SetName(name string) *Graph {
	g.name = name
	return g
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	return u >= 0 && u < g.n && g.outMask[u].Has(v)
}

// Out returns u's out-neighbors in ascending order. The caller must not
// modify the returned slice.
func (g *Graph) Out(u int) []int { return g.out[u] }

// In returns u's in-neighbors in ascending order. The caller must not modify
// the returned slice.
func (g *Graph) In(u int) []int { return g.in[u] }

// OutSet returns u's out-neighborhood as a set.
func (g *Graph) OutSet(u int) Set { return g.outMask[u] }

// InSet returns u's in-neighborhood as a set.
func (g *Graph) InSet(u int) Set { return g.inMask[u] }

// Nodes returns the full node set.
func (g *Graph) Nodes() Set { return FullSet(g.n) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.name = g.name
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			c.MustAddEdge(u, v)
		}
	}
	return c
}

// Edges returns every directed edge as a (from, to) pair, ordered by from
// and then to.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// IsUndirected reports whether every edge has its reverse.
func (g *Graph) IsUndirected() bool {
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if !g.outMask[v].Has(u) {
				return false
			}
		}
	}
	return true
}

// InducedExclude returns a new graph on the same node IDs with every edge
// incident to a node of excl removed (the subgraph induced by V \ excl,
// keeping the original numbering; excluded nodes become isolated).
func (g *Graph) InducedExclude(excl Set) *Graph {
	c := New(g.n)
	c.name = g.name
	for u := 0; u < g.n; u++ {
		if excl.Has(u) {
			continue
		}
		for _, v := range g.out[u] {
			if !excl.Has(v) {
				c.MustAddEdge(u, v)
			}
		}
	}
	return c
}

// Reduced returns the paper's reduced graph G_{F1,F2} (Definition 5): same
// node set, with every outgoing edge of each node in F1 ∪ F2 removed.
// Incoming edges of those nodes are kept.
func (g *Graph) Reduced(f1, f2 Set) *Graph {
	rm := f1.Union(f2)
	c := New(g.n)
	c.name = g.name
	for u := 0; u < g.n; u++ {
		if rm.Has(u) {
			continue
		}
		for _, v := range g.out[u] {
			c.MustAddEdge(u, v)
		}
	}
	return c
}

// String summarizes the graph.
func (g *Graph) String() string {
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s(n=%d, m=%d)", name, g.n, g.edges)
}
