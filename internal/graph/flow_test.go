package graph

import (
	"testing"
	"testing/quick"
)

func TestMaxDisjointPathsClique(t *testing.T) {
	g := Clique(5)
	// K5: direct edge plus 3 two-hop paths.
	if got := g.MaxDisjointPaths(0, 1, EmptySet); got != 4 {
		t.Errorf("K5 disjoint(0,1) = %d, want 4", got)
	}
	if got := g.MaxDisjointPaths(0, 1, SetOf(2)); got != 3 {
		t.Errorf("K5 minus node disjoint = %d, want 3", got)
	}
}

func TestMaxDisjointPathsCycle(t *testing.T) {
	g := DirectedCycle(5)
	if got := g.MaxDisjointPaths(0, 3, EmptySet); got != 1 {
		t.Errorf("cycle disjoint = %d, want 1", got)
	}
	if got := g.MaxDisjointPaths(0, 3, SetOf(1)); got != 0 {
		t.Errorf("cut cycle disjoint = %d, want 0", got)
	}
}

func TestMaxDisjointPathsEdgeCases(t *testing.T) {
	g := Clique(4)
	if got := g.MaxDisjointPaths(2, 2, EmptySet); got != 4 {
		t.Errorf("self disjoint = %d, want n", got)
	}
	if got := g.MaxDisjointPaths(0, 1, SetOf(0)); got != 0 {
		t.Errorf("excluded source = %d, want 0", got)
	}
}

func TestMaxDisjointPathsFromSet(t *testing.T) {
	g := DirectedCycle(4)
	// Only one path into any node on a cycle.
	if got := g.MaxDisjointPathsFromSet(SetOf(0, 1), 3, EmptySet); got != 1 {
		t.Errorf("cycle from-set = %d, want 1", got)
	}
	k := Clique(5)
	if got := k.MaxDisjointPathsFromSet(SetOf(0, 1, 2), 4, EmptySet); got != 3 {
		t.Errorf("clique from-set = %d, want 3", got)
	}
	// b inside A: unbounded by convention.
	if got := k.MaxDisjointPathsFromSet(SetOf(3, 4), 4, EmptySet); got != 5 {
		t.Errorf("b in A = %d, want n", got)
	}
}

func TestPropagates(t *testing.T) {
	g := Clique(5)
	all := g.Nodes()
	// In K5, any 3-set propagates to the rest for f+1 = 3.
	if !g.Propagates(SetOf(0, 1, 2), SetOf(3, 4), all, 2) {
		t.Error("K5 propagation should hold for f=2")
	}
	if g.Propagates(SetOf(0, 1, 2), SetOf(3, 4), all, 3) {
		t.Error("K5 propagation cannot reach f+1=4 from 3 sources")
	}
	// Empty B propagates trivially.
	if !g.Propagates(SetOf(0), EmptySet, all, 10) {
		t.Error("empty target must propagate")
	}
}

func TestVertexConnectivity(t *testing.T) {
	tests := []struct {
		g    *Graph
		want int
	}{
		{Clique(5), 4},
		{Wheel(4), 3},
		{RandomUndirected(1, 0, 1), 0},
	}
	for _, tc := range tests {
		if got := tc.g.VertexConnectivity(); got != tc.want {
			t.Errorf("kappa(%s) = %d, want %d", tc.g, got, tc.want)
		}
	}
	// Path graph has connectivity 1.
	p := New(4)
	p.AddBoth(0, 1)
	p.AddBoth(1, 2)
	p.AddBoth(2, 3)
	if got := p.VertexConnectivity(); got != 1 {
		t.Errorf("path kappa = %d, want 1", got)
	}
}

func TestWheelMinimallyThreeConnected(t *testing.T) {
	// The Figure 1(a) claim: removing ANY edge of W4 drops κ below 3.
	w := Wheel(4)
	if w.VertexConnectivity() != 3 {
		t.Fatalf("W4 kappa = %d", w.VertexConnectivity())
	}
	for _, e := range w.Edges() {
		if e[0] > e[1] {
			continue // undirected edge once
		}
		c := w.Clone()
		c.RemoveEdge(e[0], e[1])
		c.RemoveEdge(e[1], e[0])
		if got := c.VertexConnectivity(); got >= 3 {
			t.Errorf("removing %v keeps kappa = %d", e, got)
		}
	}
}

// TestMengerLowerBound cross-checks max-flow against explicit path packing:
// the flow value never exceeds the in/out degree bounds and respects
// monotonicity under node removal.
func TestMengerBounds(t *testing.T) {
	f := func(seed int64, x uint8) bool {
		g := RandomDigraph(7, 0.35, seed)
		u, v := int(x%7), int((x/7)%7)
		if u == v {
			return true
		}
		k := g.MaxDisjointPaths(u, v, EmptySet)
		outDeg, inDeg := len(g.Out(u)), len(g.In(v))
		if k > outDeg || k > inDeg {
			return false
		}
		// Removing one more node cannot increase the count.
		for w := 0; w < 7; w++ {
			if w == u || w == v {
				continue
			}
			if g.MaxDisjointPaths(u, v, SetOf(w)) > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFig1bDisjointPathCounts(t *testing.T) {
	// The paper: v1 and w1 are connected via only 2f = 4 disjoint paths.
	g := Fig1b()
	if got := g.MaxDisjointPaths(0, 7, EmptySet); got != 4 {
		t.Errorf("fig1b v1->w1 = %d, want 4", got)
	}
	if got := g.MaxDisjointPaths(7, 0, EmptySet); got != 4 {
		t.Errorf("fig1b w1->v1 = %d, want 4", got)
	}
	// Inside a clique connectivity stays high.
	if got := g.MaxDisjointPaths(0, 1, EmptySet); got != 6 {
		t.Errorf("fig1b v1->v2 = %d, want 6", got)
	}
}
