package crashapprox_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/cond"
	"repro/internal/crashapprox"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

func run(t *testing.T, g *graph.Graph, f int, inputs []float64, k, eps float64,
	crashed map[int]int, seed int64) map[int]float64 {
	t.Helper()
	proto, err := crashapprox.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := crashapprox.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if after, bad := crashed[i]; bad {
			if after < 0 {
				handlers[i] = &adversary.Silent{NodeID: i}
			} else {
				handlers[i] = &adversary.Crash{Inner: m, AfterDeliveries: after, FinalSends: 1}
			}
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(honest)
	if !all {
		t.Fatalf("honest nodes did not decide: %v", outs)
	}
	t.Logf("%s outputs=%v steps=%d", g, outs, r.Steps())
	return outs
}

func check(t *testing.T, outs map[int]float64, eps, lo, hi float64) {
	t.Helper()
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	if max-min >= eps {
		t.Errorf("convergence violated: %g >= %g", max-min, eps)
	}
	if min < lo || max > hi {
		t.Errorf("validity violated: [%g,%g] not in [%g,%g]", min, max, lo, hi)
	}
}

// twoReachGraph returns a digraph verified to satisfy 2-reach for f=1: the
// circulant on 5 nodes with offsets {1,2}.
func twoReachGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.Circulant(5, 1, 2)
	if ok, w := cond.Check2Reach(g, 1); !ok {
		t.Fatalf("test graph must satisfy 2-reach: witness %v", w)
	}
	return g
}

func TestCrashApproxHonest(t *testing.T) {
	g := twoReachGraph(t)
	outs := run(t, g, 1, []float64{0, 1, 2, 3, 4}, 4, 0.2, nil, 3)
	check(t, outs, 0.2, 0, 4)
}

func TestCrashApproxSilentNode(t *testing.T) {
	g := twoReachGraph(t)
	outs := run(t, g, 1, []float64{0, 1, 2, 3, 4}, 4, 0.2, map[int]int{2: -1}, 5)
	// Honest inputs 0,1,3,4.
	check(t, outs, 0.2, 0, 4)
}

func TestCrashApproxMidwayCrash(t *testing.T) {
	g := twoReachGraph(t)
	for seed := int64(0); seed < 10; seed++ {
		outs := run(t, g, 1, []float64{4, 0, 2, 1, 3}, 4, 0.2, map[int]int{4: int(seed) * 3}, seed)
		check(t, outs, 0.2, 0, 4)
	}
}

func TestCrashApproxCliqueMatchesTheory(t *testing.T) {
	// On a clique, 2-reach needs n > 2f: K3 with f=1 works.
	g := graph.Clique(3)
	if ok, _ := cond.Check2Reach(g, 1); !ok {
		t.Fatal("K3 should satisfy 2-reach for f=1")
	}
	outs := run(t, g, 1, []float64{0, 1, 2}, 2, 0.1, map[int]int{1: 4}, 7)
	check(t, outs, 0.1, 0, 2)
}

func TestCrashApproxHalving(t *testing.T) {
	g := twoReachGraph(t)
	proto, err := crashapprox.NewProto(g, 1, 8, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{0, 8, 4, 2, 6}
	machines := make([]*crashapprox.Machine, g.N())
	handlers := make([]sim.Handler, g.N())
	for i := range handlers {
		machines[i], err = crashapprox.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = machines[i]
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(1)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	prev := 8.0
	for round := 0; ; round++ {
		min, max := math.Inf(1), math.Inf(-1)
		complete := true
		for _, m := range machines {
			h := m.History()
			if len(h) <= round {
				complete = false
				break
			}
			min, max = math.Min(min, h[round]), math.Max(max, h[round])
		}
		if !complete {
			break
		}
		if max-min > prev/2+1e-12 {
			t.Errorf("round %d: spread %g > half of %g", round, max-min, prev)
		}
		prev = max - min
	}
	if prev >= 0.1 {
		t.Errorf("final spread %g >= eps", prev)
	}
}

func TestCrashApproxRejectsBadParams(t *testing.T) {
	g := graph.Clique(3)
	if _, err := crashapprox.NewProto(g, -1, 1, 0.1, 0); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := crashapprox.NewProto(g, 1, 0, 0.1, 0); err == nil {
		t.Error("zero range accepted")
	}
	if _, err := crashapprox.NewProto(g, 1, 1, 0, 0); err == nil {
		t.Error("zero eps accepted")
	}
}
