// Package crashapprox implements asynchronous approximate consensus for
// crash faults in directed networks under the 2-reach condition — the
// crash/asynchronous cell of the paper's Table 2 (Theorem 2, due to
// Tseng–Vaidya 2012/2015).
//
// Crash faults never tamper with relayed values, so the Byzantine machinery
// of algorithm BW (redundant paths, COMPLETE verification, f-covers)
// degenerates away. What remains is the skeleton shared with BW: per round,
// flood the state value along all simple paths; run one logical thread per
// candidate crash set Fv; a thread fires when the node has received a value
// along every simple incoming path avoiding Fv (the fullness condition);
// the first fired thread updates the state to the midpoint of all collected
// values. Convergence follows from 2-reach exactly as in the paper's
// Lemma 15: for any two nodes the fired threads' reach sets intersect in a
// common influence node z whose (genuine, untampered) value both have
// collected, so midpoints contract the range by half each round.
package crashapprox

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ValPayload is a flooded (round, value, path) message; the path ends at
// the sender, and relays extend it along simple paths only.
type ValPayload struct {
	Round int
	Value float64
	Path  graph.Path
}

// Kind implements transport.Payload.
func (ValPayload) Kind() string { return "CRASH-VAL" }

// Proto is the shared static context.
type Proto struct {
	G          *graph.Graph
	F          int
	K, Eps     float64
	Rounds     int
	PathBudget int
	faultSets  []graph.Set
}

// NewProto validates parameters and enumerates candidate crash sets.
func NewProto(g *graph.Graph, f int, k, eps float64, pathBudget int) (*Proto, error) {
	if f < 0 || k <= 0 || eps <= 0 {
		return nil, fmt.Errorf("crashapprox: invalid parameters f=%d k=%v eps=%v", f, k, eps)
	}
	if pathBudget <= 0 {
		pathBudget = 250_000
	}
	p := &Proto{G: g, F: f, K: k, Eps: eps, Rounds: roundsFor(k, eps), PathBudget: pathBudget}
	graph.Subsets(g.Nodes(), f, func(s graph.Set) bool {
		p.faultSets = append(p.faultSets, s)
		return true
	})
	return p, nil
}

func roundsFor(k, eps float64) int {
	r := 0
	for spread := k; spread >= eps; spread /= 2 {
		r++
		if r > 64 {
			break
		}
	}
	return r
}

type threadState struct {
	fv      graph.Set
	missing int
	fired   bool
}

type roundState struct {
	started  bool
	advanced bool
	min, max float64
	haveAny  bool
	byPath   map[string]struct{}
	threads  []*threadState
}

// Machine is the protocol endpoint for one node; it implements sim.Handler.
type Machine struct {
	proto *Proto
	id    int
	input float64

	// expected[i] is the fullness target of thread i: all simple paths
	// ending at this node that avoid faultSets[i].
	expected []map[string]struct{}

	cur    int
	x      float64
	rounds map[int]*roundState

	output  float64
	done    bool
	history []float64
}

var _ sim.Handler = (*Machine)(nil)

// NewMachine precomputes the per-thread fullness sets for node id.
func NewMachine(p *Proto, id int, input float64) (*Machine, error) {
	m := &Machine{proto: p, id: id, input: input, rounds: make(map[int]*roundState)}
	for _, fv := range p.faultSets {
		if fv.Has(id) {
			m.expected = append(m.expected, nil)
			continue
		}
		paths, err := p.G.SimplePathsTo(id, fv, p.PathBudget)
		if err != nil {
			return nil, fmt.Errorf("crashapprox: node %d thread %s: %w", id, fv, err)
		}
		set := make(map[string]struct{}, len(paths))
		for _, sp := range paths {
			set[sp.Key()] = struct{}{}
		}
		m.expected = append(m.expected, set)
	}
	return m, nil
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Output implements sim.Handler.
func (m *Machine) Output() (float64, bool) { return m.output, m.done }

// History returns x after each completed round.
func (m *Machine) History() []float64 { return m.history }

// Start implements sim.Handler.
func (m *Machine) Start(out *sim.Outbox) {
	m.x = m.input
	if m.proto.Rounds == 0 {
		m.output, m.done = m.x, true
		return
	}
	m.cur = 1
	m.startRound(out)
	m.tryAdvance(out)
}

// Deliver implements sim.Handler.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	p, ok := msg.Payload.(ValPayload)
	if !ok {
		return
	}
	if p.Round < 1 || p.Round > m.proto.Rounds {
		return
	}
	if len(p.Path) == 0 || p.Path.Ter() != msg.From || !p.Path.ValidIn(m.proto.G) {
		return
	}
	storage := p.Path.Append(m.id)
	if !storage.IsSimple() {
		return
	}
	rs := m.round(p.Round)
	key := storage.Key()
	if _, dup := rs.byPath[key]; dup {
		return
	}
	for _, w := range m.proto.G.Out(m.id) {
		if !storage.Set().Has(w) {
			out.Send(w, ValPayload{Round: p.Round, Value: p.Value, Path: storage})
		}
	}
	m.accept(rs, key, storage.Set(), p.Value)
	m.tryAdvance(out)
}

func (m *Machine) round(r int) *roundState {
	rs, ok := m.rounds[r]
	if !ok {
		rs = &roundState{byPath: make(map[string]struct{})}
		for i, fv := range m.proto.faultSets {
			t := &threadState{fv: fv}
			if m.expected[i] == nil {
				t.fired = false
				t.missing = -1 // thread unusable: fv contains this node
			} else {
				t.missing = len(m.expected[i])
			}
			rs.threads = append(rs.threads, t)
		}
		m.rounds[r] = rs
	}
	return rs
}

func (m *Machine) startRound(out *sim.Outbox) {
	rs := m.round(m.cur)
	rs.started = true
	self := graph.Path{m.id}
	out.Broadcast(ValPayload{Round: m.cur, Value: m.x, Path: self})
	m.accept(rs, self.Key(), graph.SetOf(m.id), m.x)
}

func (m *Machine) accept(rs *roundState, key string, set graph.Set, value float64) {
	rs.byPath[key] = struct{}{}
	if !rs.haveAny || value < rs.min {
		rs.min = value
	}
	if !rs.haveAny || value > rs.max {
		rs.max = value
	}
	rs.haveAny = true
	for i, t := range rs.threads {
		if t.fired || t.missing < 0 {
			continue
		}
		if _, want := m.expected[i][key]; want {
			t.missing--
			if t.missing == 0 {
				t.fired = true
			}
		}
	}
}

func (m *Machine) tryAdvance(out *sim.Outbox) {
	for !m.done {
		rs, ok := m.rounds[m.cur]
		if !ok || !rs.started || rs.advanced {
			return
		}
		fired := false
		for _, t := range rs.threads {
			if t.fired {
				fired = true
				break
			}
		}
		if !fired {
			return
		}
		rs.advanced = true
		m.x = (rs.min + rs.max) / 2
		m.history = append(m.history, m.x)
		if m.cur == m.proto.Rounds {
			m.output, m.done = m.x, true
			return
		}
		m.cur++
		m.startRound(out)
	}
}
