package iterative_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/sim"
	"repro/internal/transport"
)

func run(t *testing.T, g *graph.Graph, f, rounds int, inputs []float64,
	faulty map[int]sim.Handler, seed int64) map[int]float64 {
	t.Helper()
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		if h, bad := faulty[i]; bad {
			handlers[i] = h
			continue
		}
		m, err := iterative.NewMachine(g, f, i, rounds, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = m
		honest = honest.Add(i)
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(honest)
	if !all {
		t.Fatalf("nodes did not finish: %v", outs)
	}
	t.Logf("%s outputs=%v", g, outs)
	return outs
}

func spread(outs map[int]float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	return max - min
}

func TestIterativeCliqueConverges(t *testing.T) {
	g := graph.Clique(5)
	outs := run(t, g, 1, 30, []float64{0, 1, 2, 3, 4}, nil, 3)
	if s := spread(outs); s >= 0.01 {
		t.Errorf("clique iterative should converge, spread = %g", s)
	}
}

func TestIterativeCliqueWithSilentFault(t *testing.T) {
	g := graph.Clique(5)
	outs := run(t, g, 1, 30, []float64{0, 1, 2, 3, 4},
		map[int]sim.Handler{2: &adversary.Silent{NodeID: 2}}, 5)
	if s := spread(outs); s >= 0.01 {
		t.Errorf("spread = %g", s)
	}
	for _, x := range outs {
		if x < 0 || x > 4 {
			t.Errorf("validity violated: %g", x)
		}
	}
}

// TestIterativeFailsOn3ReachGraph is the E9 ablation: the two-clique
// Figure 1(b) analog satisfies 3-reach for f=1 — algorithm BW converges on
// it (see the adversary tests) — yet the local trimmed-mean update cannot:
// each clique trims away the single cross-clique value as a potential
// Byzantine extreme, so the cliques' values never merge even with NO actual
// faults. Local algorithms require a strictly stronger condition than
// 3-reach.
func TestIterativeFailsOn3ReachGraph(t *testing.T) {
	g := graph.Fig1bAnalog()
	inputs := []float64{0, 0, 0, 0, 1, 1, 1, 1} // clique K1 at 0, K2 at 1
	outs := run(t, g, 1, 40, inputs, nil, 7)
	if s := spread(outs); s < 0.5 {
		t.Errorf("expected the cliques to stay separated, spread = %g", s)
	}
	// Per-clique agreement still holds (each clique is locally fine).
	for _, clique := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range clique {
			min, max = math.Min(min, outs[v]), math.Max(max, outs[v])
		}
		if max-min > 1e-9 {
			t.Errorf("intra-clique spread %g", max-min)
		}
	}
}

func TestIterativeValidity(t *testing.T) {
	g := graph.Clique(4)
	outs := run(t, g, 1, 20, []float64{1, 2, 3, 1.5}, nil, 9)
	for _, x := range outs {
		if x < 1 || x > 3 {
			t.Errorf("validity violated: %g", x)
		}
	}
}

func TestIterativeZeroRounds(t *testing.T) {
	g := graph.Clique(3)
	m, err := iterative.NewMachine(g, 1, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	col := sim.NewCollector(0, g)
	m.Start(col)
	if out, done := m.Output(); !done || out != 5 {
		t.Errorf("out=%g done=%v", out, done)
	}
}

func TestIterativeRejectsBadParams(t *testing.T) {
	g := graph.Clique(3)
	if _, err := iterative.NewMachine(g, -1, 0, 5, 0); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := iterative.NewMachine(g, 1, 0, -5, 0); err == nil {
		t.Error("negative rounds accepted")
	}
}
