// Package iterative implements the local iterative trimmed-mean algorithm
// family (W-MSR style) studied by LeBlanc et al. [13] and Vaidya–Tseng–
// Liang [25], the paper's related-work baseline. Nodes exchange values only
// with direct neighbors and trim up to f extreme values per side before
// averaging.
//
// These algorithms need a strictly stronger topological condition
// (robustness) than the paper's 3-reach: experiment E9 shows a graph that
// satisfies 3-reach — where algorithm BW converges — on which the iterative
// update provably stalls, because each clique trims away the only values
// arriving from the other side. This reproduces the paper's point that
// local algorithms cannot be resilience-optimal in directed networks.
package iterative

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ValPayload carries one round's state value to direct out-neighbors.
type ValPayload struct {
	Round int
	Value float64
}

// Kind implements transport.Payload.
func (ValPayload) Kind() string { return "ITER-VAL" }

// Machine is the iterative protocol endpoint; it implements sim.Handler.
type Machine struct {
	g      *graph.Graph
	f      int
	id     int
	rounds int
	input  float64

	cur     int
	x       float64
	state   map[int]map[int]float64 // round -> sender -> value
	output  float64
	done    bool
	history []float64
}

var _ sim.Handler = (*Machine)(nil)

// NewMachine builds an iterative node that runs the given number of rounds.
func NewMachine(g *graph.Graph, f, id, rounds int, input float64) (*Machine, error) {
	if f < 0 || rounds < 0 {
		return nil, fmt.Errorf("iterative: invalid f=%d rounds=%d", f, rounds)
	}
	return &Machine{
		g: g, f: f, id: id, rounds: rounds, input: input,
		state: make(map[int]map[int]float64),
	}, nil
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Output implements sim.Handler.
func (m *Machine) Output() (float64, bool) { return m.output, m.done }

// History returns x after each completed round.
func (m *Machine) History() []float64 { return m.history }

// Start implements sim.Handler.
func (m *Machine) Start(out *sim.Outbox) {
	m.x = m.input
	if m.rounds == 0 {
		m.output, m.done = m.x, true
		return
	}
	m.cur = 1
	out.Broadcast(ValPayload{Round: 1, Value: m.x})
	m.tryAdvance(out)
}

// Deliver implements sim.Handler.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	p, ok := msg.Payload.(ValPayload)
	if !ok || p.Round < 1 || p.Round > m.rounds {
		return
	}
	bySender, ok := m.state[p.Round]
	if !ok {
		bySender = make(map[int]float64)
		m.state[p.Round] = bySender
	}
	if _, dup := bySender[msg.From]; !dup {
		bySender[msg.From] = p.Value
	}
	m.tryAdvance(out)
}

// tryAdvance applies the W-MSR update once enough in-neighbor values for
// the current round have arrived. The node waits for indegree−f distinct
// senders (it cannot wait for all: up to f in-neighbors may be faulty and
// silent).
func (m *Machine) tryAdvance(out *sim.Outbox) {
	for !m.done {
		need := len(m.g.In(m.id)) - m.f
		if need < 0 {
			need = 0
		}
		got := m.state[m.cur]
		if len(got) < need {
			return
		}
		m.x = m.trimmedUpdate(got)
		m.history = append(m.history, m.x)
		if m.cur == m.rounds {
			m.output, m.done = m.x, true
			return
		}
		m.cur++
		out.Broadcast(ValPayload{Round: m.cur, Value: m.x})
	}
}

// trimmedUpdate is the W-MSR rule: among received values, discard up to f
// strictly above own value and up to f strictly below, then average the
// survivors together with the own value.
func (m *Machine) trimmedUpdate(received map[int]float64) float64 {
	vals := make([]float64, 0, len(received))
	for _, v := range received {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	lo := 0
	for lo < len(vals) && lo < m.f && vals[lo] < m.x {
		lo++
	}
	hi := len(vals)
	trimmedHigh := 0
	for hi > lo && trimmedHigh < m.f && vals[hi-1] > m.x {
		hi--
		trimmedHigh++
	}
	sum := m.x
	count := 1
	for _, v := range vals[lo:hi] {
		sum += v
		count++
	}
	return sum / float64(count)
}
