// Package linkfault models Byzantine link failures: per-directed-edge fault
// rules — drop, duplicate, delay, partition — applied to every send crossing
// a matched edge, independently of whether the endpoints are honest. This is
// the fault class of Tseng & Vaidya's Byzantine links (arXiv:1401.6615) and
// the local-broadcast edge faults of Khan & Vaidya (arXiv:1909.02865): the
// node is correct, the wire lies.
//
// A compiled Set is runtime-agnostic. The simulator applies it when a sent
// message is injected into the transport pool (delays are measured in
// delivery steps); the live cluster transports apply it on each node's send
// path (delays are measured in milliseconds). Decisions are seeded and
// deterministic per edge: every (rule, edge) pair owns an independent
// splitmix-derived rand stream, so the fate of the k-th send on an edge is a
// pure function of (seed, rule index, edge, k) — identical across engines,
// and identical across the per-process Sets of a multi-process cluster,
// which each consult only their own out-edges.
package linkfault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/seedmix"
)

// Rule is one declarative link-fault rule. Drop, duplicate and delay match
// the explicitly listed directed edges; partition matches every edge
// crossing the boundary of the listed node set (in both directions).
type Rule struct {
	// Kind is a registered rule kind; see Kinds.
	Kind string
	// Edges lists the matched directed edges (drop, duplicate, delay).
	Edges [][2]int
	// Nodes lists one side of the cut (partition).
	Nodes []int
	// Params carries the kind's named knobs; see Defaults.
	Params map[string]float64
}

// Rule kinds.
const (
	// KindDrop discards each matched send with probability prob.
	KindDrop = "drop"
	// KindDuplicate re-sends each matched send with probability prob.
	KindDuplicate = "duplicate"
	// KindDelay holds each matched send (probability prob) for amount
	// units: delivery steps on the simulator, milliseconds on a cluster.
	KindDelay = "delay"
	// KindPartition drops every send crossing the node-set boundary; with
	// heal > 0 the partition heals after heal matched sends per edge.
	KindPartition = "partition"
)

// Kinds lists the rule kinds, sorted.
func Kinds() []string {
	return []string{KindDelay, KindDrop, KindDuplicate, KindPartition}
}

// Defaults returns the kind's accepted params with their default values.
func Defaults(kind string) (map[string]float64, error) {
	switch kind {
	case KindDrop:
		return map[string]float64{"prob": 1}, nil
	case KindDuplicate:
		return map[string]float64{"prob": 1}, nil
	case KindDelay:
		return map[string]float64{"prob": 1, "amount": 20}, nil
	case KindPartition:
		return map[string]float64{"heal": 0}, nil
	default:
		return nil, fmt.Errorf("linkfault: unknown link fault kind %q (valid values are: %v)", kind, Kinds())
	}
}

// Doc returns a one-line description of the kind for catalogs.
func Doc(kind string) string {
	switch kind {
	case KindDrop:
		return "discards each send on the listed edges with probability prob"
	case KindDuplicate:
		return "re-sends each send on the listed edges with probability prob"
	case KindDelay:
		return "holds each send on the listed edges (probability prob) for amount units (sim: delivery steps, cluster: ms)"
	case KindPartition:
		return "drops every send crossing the listed node set's boundary; heal > 0 restores each edge after heal matched sends"
	default:
		return ""
	}
}

// validate checks the rule against a graph of order n with edge predicate
// hasEdge, rejecting unknown kinds, unknown params, and edge/node lists
// that do not fit the rule shape or the topology.
func (r Rule) validate(n int, hasEdge func(u, v int) bool) error {
	defs, err := Defaults(r.Kind)
	if err != nil {
		return err
	}
	for k := range r.Params {
		if _, ok := defs[k]; !ok {
			valid := make([]string, 0, len(defs))
			for name := range defs {
				valid = append(valid, name)
			}
			sort.Strings(valid)
			return fmt.Errorf("linkfault: %s: unknown param %q (valid params are: %v)", r.Kind, k, valid)
		}
	}
	if p, ok := r.Params["prob"]; ok && (p < 0 || p > 1) {
		return fmt.Errorf("linkfault: %s: prob %g outside [0, 1]", r.Kind, p)
	}
	if a, ok := r.Params["amount"]; ok && a < 0 {
		return fmt.Errorf("linkfault: %s: amount %g must be non-negative", r.Kind, a)
	}
	if h, ok := r.Params["heal"]; ok && h < 0 {
		return fmt.Errorf("linkfault: %s: heal %g must be non-negative", r.Kind, h)
	}
	if r.Kind == KindPartition {
		if len(r.Edges) > 0 {
			return fmt.Errorf("linkfault: partition takes nodes, not edges")
		}
		if len(r.Nodes) == 0 {
			return fmt.Errorf("linkfault: partition needs a non-empty node set")
		}
		for _, v := range r.Nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("linkfault: partition node %d outside graph order %d", v, n)
			}
		}
		return nil
	}
	if len(r.Nodes) > 0 {
		return fmt.Errorf("linkfault: %s takes edges, not nodes", r.Kind)
	}
	if len(r.Edges) == 0 {
		return fmt.Errorf("linkfault: %s needs at least one edge", r.Kind)
	}
	for _, e := range r.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("linkfault: edge %d->%d outside graph order %d", e[0], e[1], n)
		}
		if !hasEdge(e[0], e[1]) {
			return fmt.Errorf("linkfault: %d->%d is not an edge of the graph", e[0], e[1])
		}
	}
	return nil
}

// Validate checks rules against g without compiling them (the decode-time
// entry point).
func Validate(g *graph.Graph, rules []Rule) error {
	for i, r := range rules {
		if err := r.validate(g.N(), g.HasEdge); err != nil {
			return fmt.Errorf("linkFaults[%d]: %w", i, err)
		}
	}
	return nil
}

// Fate is the outcome of one send: how many copies cross the link (0 means
// dropped) and how long each copy is delayed (0 means immediate; units are
// runtime-defined, see the package comment).
type Fate struct {
	Copies int
	Delay  int
}

// edgeRule is one rule's compiled per-edge state: its own seeded stream
// plus the partition heal counter. Each edgeRule is only ever touched by
// the goroutine that owns the edge's sender (the simulator loop, or one
// node's event loop), so no locking is needed.
type edgeRule struct {
	kind    string
	prob    float64
	amount  int
	heal    int
	matched int
	rng     *rand.Rand
}

// stats counts a Set's interventions, aggregated across edges. Counters
// are atomic.Int64 (self-aligning, so 32-bit platforms are safe) because
// cluster runtimes consult the Set from concurrent node loops.
type stats struct {
	dropped, duplicated, delayed atomic.Int64
}

// Set is a compiled rule set: the per-edge rule chains plus intervention
// counters. A nil *Set is valid and applies no faults.
type Set struct {
	perEdge map[[2]int][]*edgeRule
	stats   stats
}

// New validates and compiles rules for g. Every (rule, edge) pair draws
// from an independent stream derived from seed, the rule index and the
// edge, so fates do not depend on cross-edge interleaving. Returns nil
// when rules is empty.
func New(g *graph.Graph, rules []Rule, seed int64) (*Set, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	if err := Validate(g, rules); err != nil {
		return nil, err
	}
	s := &Set{perEdge: make(map[[2]int][]*edgeRule)}
	for ri, r := range rules {
		defs, _ := Defaults(r.Kind)
		for k, v := range r.Params {
			defs[k] = v
		}
		for _, e := range matchedEdges(g, r) {
			er := &edgeRule{
				kind:   r.Kind,
				prob:   defs["prob"],
				amount: int(defs["amount"]),
				heal:   int(defs["heal"]),
				rng:    rand.New(rand.NewSource(seedmix.Mix(seed, int64(ri), int64(e[0]), int64(e[1])))),
			}
			s.perEdge[e] = append(s.perEdge[e], er)
		}
	}
	return s, nil
}

// matchedEdges resolves a rule's edge set against the topology.
func matchedEdges(g *graph.Graph, r Rule) [][2]int {
	if r.Kind != KindPartition {
		// Deduplicate: a doubly listed edge must not get two rule states.
		seen := make(map[[2]int]bool, len(r.Edges))
		out := make([][2]int, 0, len(r.Edges))
		for _, e := range r.Edges {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
		return out
	}
	in := graph.EmptySet
	for _, v := range r.Nodes {
		in = in.Add(v)
	}
	var out [][2]int
	for _, e := range g.Edges() {
		if in.Has(e[0]) != in.Has(e[1]) {
			out = append(out, e)
		}
	}
	return out
}

// Next decides the fate of the next send on the directed edge from->to,
// advancing that edge's rule state. Rules apply in declaration order; a
// drop short-circuits. Safe to call concurrently for distinct edges with
// distinct sender goroutines (the cluster case); the simulator calls it
// from its single loop.
func (s *Set) Next(from, to int) Fate {
	fate := Fate{Copies: 1}
	for _, er := range s.perEdge[[2]int{from, to}] {
		switch er.kind {
		case KindDrop:
			if er.rng.Float64() < er.prob {
				s.stats.dropped.Add(1)
				return Fate{}
			}
		case KindDuplicate:
			if er.rng.Float64() < er.prob {
				s.stats.duplicated.Add(1)
				fate.Copies++
			}
		case KindDelay:
			if er.rng.Float64() < er.prob {
				s.stats.delayed.Add(1)
				fate.Delay += er.amount
			}
		case KindPartition:
			er.matched++
			if er.heal == 0 || er.matched <= er.heal {
				s.stats.dropped.Add(1)
				return Fate{}
			}
		}
	}
	return fate
}

// Counts returns the interventions so far: sends dropped, extra copies
// created, and copies delayed.
func (s *Set) Counts() (dropped, duplicated, delayed int) {
	if s == nil {
		return 0, 0, 0
	}
	return int(s.stats.dropped.Load()),
		int(s.stats.duplicated.Load()),
		int(s.stats.delayed.Load())
}
