package linkfault

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestValidateRejects(t *testing.T) {
	g := graph.Clique(4)
	cases := []struct {
		name   string
		rule   Rule
		errHas string
	}{
		{"unknown kind", Rule{Kind: "sever"}, "unknown link fault kind"},
		{"unknown param", Rule{Kind: KindDrop, Edges: [][2]int{{0, 1}}, Params: map[string]float64{"rate": 1}}, `unknown param "rate"`},
		{"bad prob", Rule{Kind: KindDrop, Edges: [][2]int{{0, 1}}, Params: map[string]float64{"prob": 2}}, "outside [0, 1]"},
		{"negative amount", Rule{Kind: KindDelay, Edges: [][2]int{{0, 1}}, Params: map[string]float64{"amount": -1}}, "non-negative"},
		{"no edges", Rule{Kind: KindDrop}, "at least one edge"},
		{"edge range", Rule{Kind: KindDrop, Edges: [][2]int{{0, 9}}, Params: nil}, "outside graph order"},
		{"non-edge", Rule{Kind: KindDrop, Edges: [][2]int{{0, 0}}}, "not an edge"},
		{"drop with nodes", Rule{Kind: KindDrop, Edges: [][2]int{{0, 1}}, Nodes: []int{0}}, "takes edges, not nodes"},
		{"partition with edges", Rule{Kind: KindPartition, Edges: [][2]int{{0, 1}}, Nodes: []int{0}}, "takes nodes, not edges"},
		{"partition empty", Rule{Kind: KindPartition}, "non-empty node set"},
		{"partition node range", Rule{Kind: KindPartition, Nodes: []int{7}}, "outside graph order"},
		{"negative heal", Rule{Kind: KindPartition, Nodes: []int{0}, Params: map[string]float64{"heal": -2}}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(g, []Rule{tc.rule})
			if err == nil {
				t.Fatalf("accepted: %+v", tc.rule)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}

func TestNewEmptyIsNil(t *testing.T) {
	s, err := New(graph.Clique(3), nil, 1)
	if err != nil || s != nil {
		t.Fatalf("empty rules: %v %v", s, err)
	}
	var nilSet *Set
	if d, du, de := nilSet.Counts(); d+du+de != 0 {
		t.Error("nil set reports counts")
	}
}

func TestDropAlways(t *testing.T) {
	g := graph.Clique(3)
	s, err := New(g, []Rule{{Kind: KindDrop, Edges: [][2]int{{0, 1}}}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if f := s.Next(0, 1); f.Copies != 0 {
			t.Fatalf("send %d on matched edge not dropped: %+v", i, f)
		}
		if f := s.Next(1, 0); f.Copies != 1 || f.Delay != 0 {
			t.Fatalf("unmatched edge perturbed: %+v", f)
		}
	}
	if d, _, _ := s.Counts(); d != 10 {
		t.Errorf("dropped = %d, want 10", d)
	}
}

func TestDuplicateAndDelayAccumulate(t *testing.T) {
	g := graph.Clique(3)
	s, err := New(g, []Rule{
		{Kind: KindDuplicate, Edges: [][2]int{{0, 1}}},
		{Kind: KindDelay, Edges: [][2]int{{0, 1}}, Params: map[string]float64{"amount": 5}},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Next(0, 1)
	if f.Copies != 2 || f.Delay != 5 {
		t.Fatalf("fate = %+v, want 2 copies delayed 5", f)
	}
	_, du, de := s.Counts()
	if du != 1 || de != 1 {
		t.Errorf("counts = dup %d delay %d", du, de)
	}
}

func TestPartitionMatchesCrossingEdgesAndHeals(t *testing.T) {
	g := graph.Clique(4)
	s, err := New(g, []Rule{{Kind: KindPartition, Nodes: []int{0, 1}, Params: map[string]float64{"heal": 2}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Inside either side of the cut: untouched.
	if f := s.Next(0, 1); f.Copies != 1 {
		t.Fatalf("intra-side edge dropped: %+v", f)
	}
	if f := s.Next(2, 3); f.Copies != 1 {
		t.Fatalf("intra-side edge dropped: %+v", f)
	}
	// Crossing edges drop the first heal sends, then recover — per edge.
	for _, e := range [][2]int{{0, 2}, {3, 1}} {
		for i := 0; i < 2; i++ {
			if f := s.Next(e[0], e[1]); f.Copies != 0 {
				t.Fatalf("crossing send %d on %v not dropped: %+v", i, e, f)
			}
		}
		if f := s.Next(e[0], e[1]); f.Copies != 1 {
			t.Fatalf("edge %v did not heal: %+v", e, f)
		}
	}
}

func TestPermanentPartitionNeverHeals(t *testing.T) {
	g := graph.Clique(3)
	s, err := New(g, []Rule{{Kind: KindPartition, Nodes: []int{0}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if f := s.Next(0, 2); f.Copies != 0 {
			t.Fatalf("permanent partition healed at send %d", i)
		}
	}
}

// TestSeededDeterminismPerEdge pins the core contract: the fate of the
// k-th send on an edge depends only on (seed, rules, edge, k), not on the
// interleaving of other edges' sends.
func TestSeededDeterminismPerEdge(t *testing.T) {
	g := graph.Clique(3)
	rules := []Rule{
		{Kind: KindDrop, Edges: [][2]int{{0, 1}, {1, 2}}, Params: map[string]float64{"prob": 0.5}},
		{Kind: KindDuplicate, Edges: [][2]int{{0, 1}}, Params: map[string]float64{"prob": 0.5}},
	}
	a, err := New(g, rules, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, rules, 42)
	if err != nil {
		t.Fatal(err)
	}
	var seqA, seqB []Fate
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Next(0, 1))
	}
	// Interleave another edge's sends on b: the 0->1 stream must not move.
	for i := 0; i < 200; i++ {
		b.Next(1, 2)
		seqB = append(seqB, b.Next(0, 1))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("send %d fate drifted under interleaving: %+v vs %+v", i, seqA[i], seqB[i])
		}
	}
	// A different seed must produce a different stream.
	c, _ := New(g, rules, 43)
	same := true
	for i := 0; i < 200; i++ {
		if c.Next(0, 1) != seqA[i] {
			same = false
		}
	}
	if same {
		t.Error("seed 42 and 43 produced identical fate streams")
	}
}

func TestDefaultsAndKinds(t *testing.T) {
	for _, k := range Kinds() {
		defs, err := Defaults(k)
		if err != nil {
			t.Fatal(err)
		}
		if Doc(k) == "" {
			t.Errorf("kind %q has no doc", k)
		}
		_ = defs
	}
	if _, err := Defaults("sever"); err == nil {
		t.Error("unknown kind accepted")
	}
}
