package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro"
)

func testScenario() repro.Scenario {
	return repro.Scenario{
		Graph:    "clique:4",
		Protocol: "acs",
		Inputs:   []float64{2.5, 2.5, 2.5, 2.5},
		F:        1,
		Seed:     7,
	}
}

func deploy(t *testing.T, cfg DeployConfig) (*Deployment, context.Context) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	if cfg.Linger == 0 {
		cfg.Linger = 200 * time.Millisecond
	}
	dep, err := Deploy(ctx, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dep.Close()
		cancel()
	})
	return dep, ctx
}

// TestServiceConformance pins the service tier to the simulator: a
// pipelined ACS instance must decide exactly the value the equivalent
// single-shot sim run decides (equal inputs make the subset mean
// schedule-independent), and every daemon must agree on the vector.
func TestServiceConformance(t *testing.T) {
	s := testScenario()
	simRes, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Decided {
		t.Fatal("sim run did not decide")
	}
	var simValue float64
	for _, x := range simRes.Outputs {
		simValue = x
		break
	}

	dep, _ := deploy(t, DeployConfig{Scenario: s})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inst, err := dep.Daemons[0].Submit("")
	if err != nil {
		t.Fatal(err)
	}
	var ref *Decision
	for i, d := range dep.Daemons {
		dec, err := d.Wait(ctx, inst)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		if dec.Value != simValue {
			t.Fatalf("daemon %d decided %v, sim run decided %v", i, dec.Value, simValue)
		}
		if dec.Protocol != "acs" {
			t.Fatalf("daemon %d decision carries protocol %q", i, dec.Protocol)
		}
		if ref == nil {
			ref = &dec
			continue
		}
		if len(dec.Vector) != len(ref.Vector) {
			t.Fatalf("daemon %d vector %v != daemon 0 vector %v", i, dec.Vector, ref.Vector)
		}
		for k, v := range ref.Vector {
			if dec.Vector[k] != v {
				t.Fatalf("daemon %d vector %v != daemon 0 vector %v", i, dec.Vector, ref.Vector)
			}
		}
	}
}

// TestServicePipelined drives several concurrent instances across two
// protocols through one fleet: all must decide, and the counters must add
// up.
func TestServicePipelined(t *testing.T) {
	s := testScenario()
	dep, _ := deploy(t, DeployConfig{Scenario: s, Protocols: []string{"acs", "bw"}})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const perDaemon = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(dep.Daemons)*perDaemon)
	for di, d := range dep.Daemons {
		for j := 0; j < perDaemon; j++ {
			proto := "acs"
			if (di+j)%2 == 1 {
				proto = "bw"
			}
			wg.Add(1)
			go func(d *Daemon, proto string) {
				defer wg.Done()
				dec, err := d.SubmitWait(ctx, proto)
				if err != nil {
					errs <- err
					return
				}
				if proto == "bw" && math.Abs(dec.Value-2.5) > 0.1 {
					errs <- fmt.Errorf("bw decided %v, want ~2.5", dec.Value)
				}
				if proto == "acs" && dec.Value != 2.5 {
					errs <- fmt.Errorf("acs decided %v, want 2.5", dec.Value)
				}
			}(d, proto)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(len(dep.Daemons) * perDaemon)
	var submitted int64
	for _, d := range dep.Daemons {
		snap := d.Snapshot()
		submitted += snap.Submitted
		if snap.Opened < snap.Submitted {
			t.Fatalf("daemon %d opened %d < submitted %d", d.ID(), snap.Opened, snap.Submitted)
		}
		if snap.Queue.Enqueued == 0 {
			t.Fatalf("daemon %d moved no frames", d.ID())
		}
	}
	if submitted != total {
		t.Fatalf("fleet submitted %d, want %d", submitted, total)
	}
	// Every daemon decides every instance locally: n * total decisions.
	// SubmitWait only proves the submitting vertex decided, so the other
	// daemons' machines may still be finishing — poll up to the deadline.
	want := total * int64(len(dep.Daemons))
	for {
		var decided int64
		for _, d := range dep.Daemons {
			decided += d.Snapshot().Decided
		}
		if decided == want {
			return
		}
		if decided > want {
			t.Fatalf("fleet recorded %d decisions, want %d", decided, want)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("fleet recorded %d decisions, want %d", decided, want)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestServiceClientPlane exercises the JSON-lines plane end to end:
// submit on one daemon's client port, wait on another's, stats on a third.
func TestServiceClientPlane(t *testing.T) {
	s := testScenario()
	dep, _ := deploy(t, DeployConfig{Scenario: s, WithClients: true})

	c0, err := Dial(dep.ClientAddrs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	inst, err := c0.Submit("acs")
	if err != nil {
		t.Fatal(err)
	}
	if inst&(1<<10-1) != 0 {
		t.Fatalf("instance %d not allocated by daemon 0", inst)
	}

	c2, err := Dial(dep.ClientAddrs[2], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	dec, err := c2.Wait(inst)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Value != 2.5 {
		t.Fatalf("client wait returned %v, want 2.5", dec.Value)
	}

	dec2, err := c0.SubmitWait("")
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Value != 2.5 {
		t.Fatalf("submitwait returned %v, want 2.5", dec2.Value)
	}

	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ID != 2 || stats.Decided < 1 {
		t.Fatalf("stats = %+v; want id 2 with decisions", stats)
	}
}

// TestServiceMetricsPlane checks /metrics and /healthz, including the
// drain flip to 503.
func TestServiceMetricsPlane(t *testing.T) {
	s := testScenario()
	dep, _ := deploy(t, DeployConfig{Scenario: s, WithHTTP: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := dep.Daemons[0].SubmitWait(ctx, ""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + dep.HTTPAddrs[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.ID != 0 || snap.Decided < 1 || snap.Queue.Enqueued == 0 {
		t.Fatalf("metrics snapshot = %+v; want id 0 with decisions and traffic", snap)
	}

	if resp, err = http.Get("http://" + dep.HTTPAddrs[0] + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	dep.Daemons[0].BeginDrain()
	if resp, err = http.Get("http://" + dep.HTTPAddrs[0] + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestServicePprofPlane: the Pprof knob mounts /debug/pprof on the
// observability plane; without it the endpoint stays absent (the default
// plane exposes nothing an operator did not ask for).
func TestServicePprofPlane(t *testing.T) {
	s := testScenario()
	on, _ := deploy(t, DeployConfig{Scenario: s, WithHTTP: true, Pprof: true})
	resp, err := http.Get("http://" + on.HTTPAddrs[0] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with Pprof on = %d, want 200", resp.StatusCode)
	}

	off, _ := deploy(t, DeployConfig{Scenario: s, WithHTTP: true})
	if resp, err = http.Get("http://" + off.HTTPAddrs[0] + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof index with Pprof off = %d, want 404", resp.StatusCode)
	}
}

// TestServiceDrain: drain refuses new submits, in-flight instances decide,
// Shutdown returns cleanly.
func TestServiceDrain(t *testing.T) {
	s := testScenario()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dep, err := Deploy(ctx, DeployConfig{Scenario: s, Linger: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	inst, err := dep.Daemons[1].Submit("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Daemons[1].Wait(wctx, inst); err != nil {
		t.Fatal(err)
	}

	dep.Daemons[0].BeginDrain()
	if _, err := dep.Daemons[0].Submit(""); err == nil {
		t.Fatal("draining daemon accepted a submit")
	}
	if err := dep.Shutdown(wctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	for i, d := range dep.Daemons {
		if !d.Drained() {
			t.Fatalf("daemon %d still has instances after shutdown", i)
		}
	}
}

// TestServiceLateDaemon starts one daemon only after instances are already
// in flight: the mux dial retry plus the pending-frame buffer must let the
// latecomer catch up and decide — the service-tier analog of JoinTCP
// joining mid-instance.
func TestServiceLateDaemon(t *testing.T) {
	s := testScenario()
	g, _, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ls := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range ls {
		if ls[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addrs[i] = ls[i].Addr().String()
	}
	late := n - 1
	// The late vertex's listener must not accept while it is "down";
	// closing it frees the port for the late rebind. (A small race window
	// on the port is possible; skip if the rebind loses it.)
	ls[late].Close()

	mk := func(i int, l net.Listener) *Daemon {
		peers := make(map[int]string)
		for _, v := range g.Out(i) {
			peers[v] = addrs[v]
		}
		d, err := New(Config{
			ID: i, Scenario: s, PeerListener: l, Peers: peers,
			Linger: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start(ctx)
		t.Cleanup(d.Close)
		return d
	}
	daemons := make([]*Daemon, n)
	for i := 0; i < n; i++ {
		if i != late {
			daemons[i] = mk(i, ls[i])
		}
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	inst, err := daemons[0].Submit("")
	if err != nil {
		t.Fatal(err)
	}
	// With f=1 the other three decide without the late vertex.
	if _, err := daemons[0].Wait(wctx, inst); err != nil {
		t.Fatal(err)
	}

	lateL, err := net.Listen("tcp", addrs[late])
	if err != nil {
		t.Skipf("late rebind of %s lost the port: %v", addrs[late], err)
	}
	daemons[late] = mk(late, lateL)
	dec, err := daemons[late].Wait(wctx, inst)
	if err != nil {
		t.Fatalf("late daemon never decided: %v", err)
	}
	if dec.Value != 2.5 {
		t.Fatalf("late daemon decided %v, want 2.5", dec.Value)
	}
}
