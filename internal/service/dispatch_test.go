package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/wire"
)

// newDispatchHarness builds a daemon skeleton (routing table only, no
// fabric or planes) with one running-instance entry per id in insts, each
// backed by a real node whose event loop is NOT running — tests drain the
// inboxes directly with ReceiveBatch to observe exactly what dispatch
// delivered, in order.
func newDispatchHarness(t *testing.T, insts []uint64) (*Daemon, map[uint64]*instance) {
	t.Helper()
	g := graph.Clique(2)
	d := &Daemon{cfg: Config{ID: 1, PendingCap: DefaultPendingCap}}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.instances = make(map[uint64]*instance)
		sh.retired = make(map[uint64]struct{})
		sh.decisions = make(map[uint64]Decision)
		sh.pending = make(map[uint64][]node.Inbound)
	}
	d.memo = make([]atomic.Pointer[instance], g.N())
	byInst := make(map[uint64]*instance, len(insts))
	for _, inst := range insts {
		nd, err := node.New(node.Config{
			ID: 1, Graph: g, Handler: benchHandler{id: 1}, Out: nullOut{},
			InboxCap: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		ictx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		ins := &instance{
			inst: inst, protocol: "bench", nd: nd,
			cancel: cancel, ictx: ictx, ready: make(chan struct{}),
		}
		close(ins.ready)
		d.shard(inst).instances[inst] = ins
		byInst[inst] = ins
	}
	return d, byInst
}

// dispatchFrame encodes one protocol frame for inst whose payload Round
// carries seq, so drains can verify ordering.
func dispatchFrame(t *testing.T, inst uint64, seq int) ([]byte, wire.FrameInfo) {
	t.Helper()
	frame, err := wire.EncodeInstanceMessage(inst, transport.Message{
		From: 0, To: 1,
		Payload: bw.ValPayload{Round: seq, Value: 0.5, Path: graph.Path{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := wire.PeekFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	return frame, info
}

// drainRounds pulls exactly want frames off ins's inbox and returns their
// payload Round sequence in delivery order.
func drainRounds(t *testing.T, ins *instance, want int) []int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var rounds []int
	for len(rounds) < want {
		slab, ok := ins.nd.ReceiveBatch(ctx)
		if !ok {
			t.Fatalf("inbox drain timed out with %d/%d frames", len(rounds), want)
		}
		for _, in := range slab {
			_, m, err := wire.DecodeInstanceMessage(in.Frame)
			wire.PutBuf(in.Frame)
			if err != nil {
				t.Fatal(err)
			}
			rounds = append(rounds, m.Payload.(bw.ValPayload).Round)
		}
		node.PutSlab(slab)
	}
	return rounds
}

// TestDispatchBatchFIFO pins the FIFO-preservation argument of the batch
// dispatcher: within one connection's batch, frames are processed in scan
// order and only maximal consecutive same-instance runs are grouped, so
// each instance receives its frames in exactly the per-link order they
// arrived — whatever the interleaving — and a bad frame in the middle is
// absorbed (counted, released) without disturbing its neighbors.
func TestDispatchBatchFIFO(t *testing.T) {
	const (
		instA = uint64(7<<10 | 1)
		instB = uint64(9<<10 | 0)
	)
	d, byInst := newDispatchHarness(t, []uint64{instA, instB})

	// An adversarial interleaving: runs of 1..3 frames, switching
	// instances, with a malformed frame wedged between two runs.
	pattern := []uint64{instA, instA, instB, instA, instB, instB, instB, instA, instA, instB}
	var frames [][]byte
	var infos []wire.FrameInfo
	var wantA, wantB []int
	for seq, inst := range pattern {
		if seq == 4 {
			frames = append(frames, []byte("not a frame"))
			infos = append(infos, wire.FrameInfo{Bad: true})
		}
		f, fi := dispatchFrame(t, inst, seq)
		frames = append(frames, f)
		infos = append(infos, fi)
		if inst == instA {
			wantA = append(wantA, seq)
		} else {
			wantB = append(wantB, seq)
		}
	}
	d.dispatchBatch(0, frames, infos)

	gotA := drainRounds(t, byInst[instA], len(wantA))
	gotB := drainRounds(t, byInst[instB], len(wantB))
	if fmt.Sprint(gotA) != fmt.Sprint(wantA) {
		t.Fatalf("instance A delivery order %v, want %v", gotA, wantA)
	}
	if fmt.Sprint(gotB) != fmt.Sprint(wantB) {
		t.Fatalf("instance B delivery order %v, want %v", gotB, wantB)
	}
	if got := d.badFr.Load(); got != 1 {
		t.Fatalf("badFrames = %d, want 1", got)
	}
}

// TestDispatchBatchPendingAndRetired pins the slow paths under batching:
// a run for an unknown instance lands in the pending buffer intact and in
// order; a run for a retired instance is dropped and counted, never
// buffered.
func TestDispatchBatchPendingAndRetired(t *testing.T) {
	const (
		instPend = uint64(11<<10 | 2)
		instGone = uint64(13<<10 | 3)
	)
	d, _ := newDispatchHarness(t, nil)
	d.shard(instGone).retired[instGone] = struct{}{}

	var frames [][]byte
	var infos []wire.FrameInfo
	for seq := 0; seq < 3; seq++ {
		f, fi := dispatchFrame(t, instPend, seq)
		frames = append(frames, f)
		infos = append(infos, fi)
	}
	for seq := 0; seq < 2; seq++ {
		f, fi := dispatchFrame(t, instGone, seq)
		frames = append(frames, f)
		infos = append(infos, fi)
	}
	d.dispatchBatch(0, frames, infos)

	sh := d.shard(instPend)
	sh.mu.Lock()
	pend := sh.pending[instPend]
	sh.mu.Unlock()
	if len(pend) != 3 {
		t.Fatalf("pending holds %d frames, want 3", len(pend))
	}
	for seq, in := range pend {
		_, m, err := wire.DecodeInstanceMessage(in.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Payload.(bw.ValPayload).Round; got != seq {
			t.Fatalf("pending[%d] carries seq %d, want %d", seq, got, seq)
		}
	}
	if got := d.lateFrames.Load(); got != 2 {
		t.Fatalf("lateFrames = %d, want 2", got)
	}
	gone := d.shard(instGone)
	gone.mu.Lock()
	leaked := len(gone.pending[instGone])
	gone.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("retired instance buffered %d pending frames", leaked)
	}
}

// TestDispatchAllocBudget pins the batch-dispatch steady state at zero
// allocations per frame: grouping scratch, slabs and frame buffers are all
// recycled, so dispatch cost cannot creep back in as GC pressure. The
// channel-freelist pools make the fence deterministic (see wire.GetBuf).
func TestDispatchAllocBudget(t *testing.T) {
	res := testing.Benchmark(DispatchBench)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("batched dispatch allocates %d allocs/frame steady state, want 0", a)
	}
}

// TestDispatchRouteOpenRace is the -race regression fence for the
// route/open/retire races: a fleet under concurrent submissions (OPEN
// floods racing protocol traffic through bufferPending and the ready
// gate) while injector goroutines hammer the same daemons' dispatchers
// with duplicate OPENs, protocol frames for decided-and-retiring
// instances, and malformed frames. Every submission must still decide —
// no frame lost where it matters — and the injected garbage must land in
// the right counters; the race detector and the pool discipline (a
// double-released frame is handed to two owners concurrently) do the
// rest.
func TestDispatchRouteOpenRace(t *testing.T) {
	s := testScenario()
	dep, _ := deploy(t, DeployConfig{Scenario: s, Linger: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const (
		submitters = 4
		perWorker  = 6
	)
	decided := make(chan uint64, submitters*perWorker)
	errs := make(chan error, submitters*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := dep.Daemons[(w+i)%len(dep.Daemons)]
				dec, err := d.SubmitWait(ctx, "")
				if err != nil {
					errs <- fmt.Errorf("worker %d submit %d: %w", w, i, err)
					return
				}
				decided <- dec.Inst
			}
		}(w)
	}

	// Injectors race the dispatchers while the fleet is busy: duplicate
	// OPENs for instances in every lifecycle state, protocol frames aimed
	// at instances that are lingering or retired, and junk bytes.
	stop := make(chan struct{})
	var injWG sync.WaitGroup
	var badInjected, lateInjected atomic.Int64
	for k := 0; k < 2; k++ {
		injWG.Add(1)
		go func(k int) {
			defer injWG.Done()
			var seen []uint64
			for {
				select {
				case <-stop:
					return
				case inst := <-decided:
					seen = append(seen, inst)
				case <-time.After(time.Millisecond):
				}
				d := dep.Daemons[k%len(dep.Daemons)]
				from := (d.ID() + 1) % len(dep.Daemons)
				// Junk: header does not parse.
				bad := append(wire.GetBuf(), "garbage-frame"...)
				d.dispatch(from, bad)
				badInjected.Add(1)
				for _, inst := range seen {
					// Duplicate OPEN for a known instance: a no-op against
					// running and retired entries alike.
					open, err := wire.EncodeInstanceMessage(inst, transport.Message{
						From: from, To: d.ID(), Payload: wire.Open{Protocol: "acs"},
					})
					if err != nil {
						t.Error(err)
						return
					}
					d.dispatch(from, open)
					// A protocol frame for a decided instance: delivered and
					// ignored while it lingers, dropped into lateFrames once
					// retired. Either way it must not wedge the dispatcher.
					frame, err := wire.EncodeInstanceMessage(inst, transport.Message{
						From: from, To: d.ID(),
						Payload: bw.ValPayload{Round: 1, Value: 0.25, Path: graph.Path{from, d.ID()}},
					})
					if err != nil {
						t.Error(err)
						return
					}
					d.dispatch(from, frame)
					lateInjected.Add(1)
				}
				if len(seen) > 8 {
					seen = seen[len(seen)-8:]
				}
			}
		}(k)
	}

	wg.Wait()
	close(stop)
	injWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var bad int64
	for _, d := range dep.Daemons {
		snap := d.Snapshot()
		bad += snap.BadFrames
	}
	if got := badInjected.Load(); bad < got {
		t.Fatalf("fleet counted %d bad frames, injected at least %d", bad, got)
	}
}
