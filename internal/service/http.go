package service

import (
	"encoding/json"
	"net"
	"net/http"

	"repro/internal/prof"
)

// The observability plane: /metrics serves the Snapshot as JSON (counters,
// queue accounting, decision rate), /healthz answers 200 while serving and
// 503 once draining — the shape load balancers and probes expect. With
// Config.Pprof, the /debug/pprof handlers mount here too, with mutex and
// block profiling enabled — the contention view of the dispatch hot path.

func (d *Daemon) serveHTTP(l net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	if d.cfg.Pprof {
		prof.Attach(mux)
		prof.EnableContention(prof.DefaultMutexFraction, prof.DefaultBlockRate)
	}
	d.httpSrv = &http.Server{Handler: mux}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = d.httpSrv.Serve(l) // returns on Close
	}()
}

func (d *Daemon) closeHTTP() {
	if d.httpSrv != nil {
		_ = d.httpSrv.Close()
	}
}
