package service

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DispatchBench measures the daemon's batched inbound dispatch in
// isolation: a pre-peeked burst of same-instance frames through
// dispatchBatch — run grouping, memo/shard lookup, ready gate, one slab
// push into the instance inbox — and back out through the inbox drain. It
// is an exported testing.B function (like cluster.QueueDrainBench) so the
// E16c experiment tier can run it through testing.Benchmark from a normal
// binary while the dispatch internals stay unexported.
//
// The harness is a daemon skeleton (routing table + one running
// instance), no fabric or planes; one goroutine both dispatches and
// drains, so the frame and slab pools reach a deterministic steady state
// — the alloc fence pins it at 0 allocs/op. b.N counts frames; each
// dispatched frame is re-encoded into a pooled buffer first (a GetBuf and
// a copy), which is the cost the real reader pays to hand the dispatcher
// an owned frame, so ns/frame includes it.
func DispatchBench(b *testing.B) {
	g := graph.Clique(2)
	d := &Daemon{cfg: Config{ID: 1, PendingCap: DefaultPendingCap}}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.instances = make(map[uint64]*instance)
		sh.retired = make(map[uint64]struct{})
		sh.decisions = make(map[uint64]Decision)
		sh.pending = make(map[uint64][]node.Inbound)
	}
	d.memo = make([]atomic.Pointer[instance], g.N())

	const inst = uint64(42<<10 | 1)
	nd, err := node.New(node.Config{
		ID: 1, Graph: g, Handler: benchHandler{id: 1}, Out: nullOut{},
		// The drain keeps pace within each iteration; a few slabs of slack.
		InboxCap: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	ictx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ins := &instance{
		inst: inst, protocol: "bench", nd: nd,
		cancel: cancel, ictx: ictx, ready: make(chan struct{}),
	}
	close(ins.ready) // no pre-open backlog: the gate is open
	sh := d.shard(inst)
	sh.instances[inst] = ins

	body, err := wire.EncodeInstanceMessage(inst, transport.Message{
		From: 0, To: 1,
		Payload: bw.ValPayload{Round: 2, Value: 0.625, Path: graph.Path{0, 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	frames := make([][]byte, batch)
	infos := make([]wire.FrameInfo, batch)
	for i := range infos {
		infos[i] = wire.FrameInfo{Inst: inst, From: 0, To: 1}
	}

	round := func(k int) {
		for j := 0; j < k; j++ {
			frames[j] = append(wire.GetBuf(), body...)
		}
		d.dispatchBatch(0, frames[:k], infos[:k])
		for drained := 0; drained < k; {
			slab, ok := nd.ReceiveBatch(ictx)
			if !ok {
				b.Fatal("inbox drain cancelled mid-bench")
			}
			for _, in := range slab {
				wire.PutBuf(in.Frame)
			}
			drained += len(slab)
			node.PutSlab(slab)
		}
	}
	round(batch) // warm the frame and slab pools before the fence
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := batch
		if done+k > b.N {
			k = b.N - done
		}
		round(k)
		done += k
	}
}

// benchHandler is an inert protocol machine: DispatchBench never runs the
// node's event loop, so it only has to satisfy construction.
type benchHandler struct{ id int }

func (h benchHandler) ID() int                              { return h.id }
func (benchHandler) Start(*sim.Outbox)                      {}
func (benchHandler) Deliver(transport.Message, *sim.Outbox) {}
func (benchHandler) Output() (float64, bool)                { return 0, false }

// nullOut discards outbound frames (the machine never sends).
type nullOut struct{}

func (nullOut) Send(_ int, frame []byte) error { wire.PutBuf(frame); return nil }
