// Package service is the consensus-as-a-service tier: a long-lived daemon
// (one per graph vertex) that multiplexes many concurrent consensus
// instances over persistent peer connections, instead of the single-shot
// lifecycle of the cluster harness. Every wire frame carries an instance
// id (codec v4); the daemon routes frames to per-instance node event
// loops, spawning machines on demand from a repro.InstanceFactory and
// retiring them after decision. New instances are announced with a flooded
// OPEN control frame; per-connection FIFO ordering guarantees a sender's
// OPEN precedes its protocol traffic, and frames that race ahead of the
// announcement through third parties wait in a bounded pending buffer.
//
// The daemon exposes three planes: the peer plane (the cluster.Mux fabric,
// bounded per-peer queues with backpressure and shed accounting), a client
// plane (JSON lines over TCP: submit, wait, stats — see Client), and an
// observability plane (HTTP /metrics and /healthz). Shutdown is graceful
// by default: drain refuses new instances, lets in-flight ones decide,
// then tears the fabric down.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Defaults for Config knobs left zero.
const (
	DefaultInboxCap     = 1024
	DefaultPendingCap   = 4096
	DefaultLinger       = 1500 * time.Millisecond
	DefaultDrainTimeout = 30 * time.Second
)

// maxDaemonID bounds vertex ids so instance ids can pack (seq << 10) | id.
const maxDaemonID = 1<<10 - 1

// Config parameterizes one daemon.
type Config struct {
	// ID is the graph vertex this daemon hosts.
	ID int
	// Scenario is the shared base: graph, inputs, fault plan, eps, seed.
	// Every daemon of a deployment must be given the same scenario, the
	// same way the multi-process cluster tier shares one scenario file.
	Scenario repro.Scenario
	// Protocols lists the protocols this daemon serves (each must have a
	// live-runtime builder). Empty means just the scenario's own protocol.
	Protocols []string
	// PeerListener accepts peer-plane connections (the Mux fabric).
	PeerListener net.Listener
	// Peers maps every out-neighbor of ID to its peer-plane address.
	Peers map[int]string
	// ClientListener, when non-nil, serves the JSON-lines client plane.
	ClientListener net.Listener
	// HTTPListener, when non-nil, serves /metrics and /healthz.
	HTTPListener net.Listener
	// QueueCap bounds each per-peer outbound queue (0 = cluster default).
	QueueCap int
	// InboxCap buffers each instance's inbox (0 = DefaultInboxCap).
	InboxCap int
	// PendingCap bounds frames buffered per not-yet-opened instance;
	// overflow is shed and counted (0 = DefaultPendingCap).
	PendingCap int
	// Linger keeps a decided instance's machine serving peers before
	// retirement — other vertices may still need its frames to decide
	// (0 = DefaultLinger).
	Linger time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight instances
	// (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Pprof, when true, mounts the /debug/pprof handlers on the
	// observability plane and enables mutex/block profiling, so service-tier
	// contention is observable in production (see internal/prof.Attach).
	Pprof bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Decision is one instance's outcome at this daemon's vertex.
type Decision struct {
	Inst     uint64  `json:"inst"`
	Protocol string  `json:"protocol"`
	Value    float64 `json:"value"`
	// Vector is set for vector-decision protocols (acs).
	Vector    map[int]float64 `json:"vector,omitempty"`
	ElapsedMS float64         `json:"elapsedMs"`
}

// Snapshot is the observability plane's state dump (/metrics and the
// client plane's stats op).
type Snapshot struct {
	ID        int      `json:"id"`
	UptimeSec float64  `json:"uptimeSec"`
	Draining  bool     `json:"draining"`
	Protocols []string `json:"protocols"`

	Submitted   int64 `json:"submitted"`
	Opened      int64 `json:"opened"`
	Decided     int64 `json:"decided"`
	Retired     int64 `json:"retired"`
	Active      int64 `json:"active"`
	LateFrames  int64 `json:"lateFrames"`
	PendingShed int64 `json:"pendingShed"`
	Refused     int64 `json:"refused"`
	BadFrames   int64 `json:"badFrames"`

	DecisionsPerSec float64 `json:"decisionsPerSec"`

	Queue       cluster.QueueStats `json:"queue"`
	QueueDepths map[int]int64      `json:"queueDepths"`
}

type vectorProvider interface{ Vector() map[int]float64 }

// instance is one consensus instance's machinery at this vertex.
type instance struct {
	inst     uint64
	protocol string
	nd       *node.Node
	started  time.Time
	cancel   context.CancelFunc
	ictx     context.Context
	// ready closes once buffered pre-open frames are replayed, so the
	// dispatcher cannot reorder live frames ahead of them (per-link FIFO).
	ready chan struct{}

	mu       sync.Mutex
	decision *Decision
	waiters  []chan Decision
}

// Daemon is one vertex's consensus service.
type Daemon struct {
	cfg   Config
	facs  map[string]*repro.InstanceFactory
	names []string
	mux   *cluster.Mux

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	start   time.Time
	httpSrv *http.Server

	// mu is a read/write lock so the frame-dispatch hot path (routeFrame's
	// instance lookup, once per inbound protocol frame) takes only a read
	// lock and pipelined instances dispatch concurrently; state changes
	// (open, retire, pending buffering, drain) take the write lock.
	mu        sync.RWMutex
	instances map[uint64]*instance
	// retired and decisions grow with instance count; a service-lifetime
	// ledger (the id space is never reused, so retirement must be
	// remembered to keep late frames and duplicate OPENs out).
	retired   map[uint64]struct{}
	decisions map[uint64]Decision
	pending   map[uint64][]node.Inbound
	seq       uint64
	draining  bool

	submitted, opened, decided, retiredN    atomic.Int64
	lateFrames, pendingShed, refused, badFr atomic.Int64
}

// New validates the config and builds the daemon (no goroutines; Start).
func New(cfg Config) (*Daemon, error) {
	if cfg.ID < 0 || cfg.ID > maxDaemonID {
		return nil, fmt.Errorf("service: daemon id %d outside [0,%d]", cfg.ID, maxDaemonID)
	}
	if cfg.InboxCap == 0 {
		cfg.InboxCap = DefaultInboxCap
	}
	if cfg.PendingCap == 0 {
		cfg.PendingCap = DefaultPendingCap
	}
	if cfg.Linger == 0 {
		cfg.Linger = DefaultLinger
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	names := cfg.Protocols
	if len(names) == 0 {
		if cfg.Scenario.Protocol == "" {
			return nil, errors.New("service: config names no protocols and the scenario has none")
		}
		names = []string{cfg.Scenario.Protocol}
	}
	d := &Daemon{
		cfg:       cfg,
		facs:      make(map[string]*repro.InstanceFactory, len(names)),
		instances: make(map[uint64]*instance),
		retired:   make(map[uint64]struct{}),
		decisions: make(map[uint64]Decision),
		pending:   make(map[uint64][]node.Inbound),
	}
	for _, name := range names {
		if _, dup := d.facs[name]; dup {
			continue
		}
		fac, err := repro.NewInstanceFactoryFor(cfg.Scenario, name)
		if err != nil {
			return nil, fmt.Errorf("service: protocol %q: %w", name, err)
		}
		d.facs[name] = fac
		d.names = append(d.names, name)
	}
	sort.Strings(d.names)
	fac := d.facs[d.names[0]]
	mux, err := cluster.NewMux(cluster.MuxConfig{
		ID:       cfg.ID,
		Graph:    fac.Graph(),
		Listener: cfg.PeerListener,
		Peers:    cfg.Peers,
		QueueCap: cfg.QueueCap,
		OnFrame:  d.dispatch,
	})
	if err != nil {
		return nil, err
	}
	d.mux = mux
	return d, nil
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// ID returns the hosted vertex.
func (d *Daemon) ID() int { return d.cfg.ID }

// Protocols lists the served protocols, sorted.
func (d *Daemon) Protocols() []string { return append([]string(nil), d.names...) }

// DefaultProtocol is the protocol a submit with no name gets: the
// scenario's own when served, else the first served name.
func (d *Daemon) DefaultProtocol() string {
	if _, ok := d.facs[d.cfg.Scenario.Protocol]; ok && d.cfg.Scenario.Protocol != "" {
		return d.cfg.Scenario.Protocol
	}
	return d.names[0]
}

// Start launches the peer fabric and the client/observability planes.
func (d *Daemon) Start(ctx context.Context) {
	d.ctx, d.cancel = context.WithCancel(ctx)
	d.start = time.Now()
	d.mux.Start(d.ctx)
	if d.cfg.ClientListener != nil {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveClients(d.cfg.ClientListener)
		}()
	}
	if d.cfg.HTTPListener != nil {
		d.serveHTTP(d.cfg.HTTPListener)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		<-d.ctx.Done()
		if d.cfg.ClientListener != nil {
			d.cfg.ClientListener.Close()
		}
	}()
}

// dispatch consumes every peer-plane frame: OPEN announcements spawn
// instances; protocol frames route to their instance's inbox, wait in the
// bounded pending buffer when the announcement has not arrived yet, or are
// dropped (counted) when the instance is already retired. The frame is a
// pooled buffer the Mux reader handed over; every path either forwards it
// (an inbox push, whose node releases it after decode) or releases it here.
func (d *Daemon) dispatch(from int, frame []byte) {
	fi, err := wire.PeekFrame(frame)
	if err != nil {
		wire.PutBuf(frame)
		d.badFr.Add(1)
		return
	}
	if fi.Open {
		_, msg, err := wire.DecodeInstanceMessage(frame)
		wire.PutBuf(frame) // OPENs are consumed by the dispatcher
		if err != nil {
			d.badFr.Add(1)
			return
		}
		op, ok := msg.Payload.(wire.Open)
		if !ok {
			d.badFr.Add(1)
			return
		}
		if err := d.open(fi.Inst, op.Protocol, false); err != nil {
			d.logf("service[%d]: refused open inst=%d: %v", d.cfg.ID, fi.Inst, err)
		}
		return
	}
	d.route(fi.Inst, node.Inbound{From: from, Frame: frame})
}

// route's fast path — the per-frame instance lookup — holds only the read
// lock, so pipelined instances dispatch concurrently; the not-running slow
// path retries under the write lock (see bufferPending).
func (d *Daemon) route(inst uint64, in node.Inbound) {
	d.mu.RLock()
	ins, running := d.instances[inst]
	d.mu.RUnlock()
	if !running {
		d.bufferPending(inst, in)
		return
	}
	d.pushInstance(ins, in)
}

// bufferPending is route's slow path: under the write lock, recheck (the
// instance may have opened or retired between the read-locked lookup and
// here), then buffer the frame for the not-yet-opened instance, bounded.
func (d *Daemon) bufferPending(inst uint64, in node.Inbound) {
	d.mu.Lock()
	if ins, running := d.instances[inst]; running {
		d.mu.Unlock()
		d.pushInstance(ins, in)
		return
	}
	if _, gone := d.retired[inst]; gone {
		d.mu.Unlock()
		d.lateFrames.Add(1)
		wire.PutBuf(in.Frame)
		return
	}
	if len(d.pending[inst]) >= d.cfg.PendingCap {
		d.mu.Unlock()
		d.pendingShed.Add(1)
		wire.PutBuf(in.Frame)
		return
	}
	d.pending[inst] = append(d.pending[inst], in)
	d.mu.Unlock()
}

// pushInstance delivers one frame to a running instance. Wait for the
// pre-open replay so this frame cannot jump the queue (per-link FIFO),
// then push with backpressure: a full inbox blocks this peer's reader,
// which is the inbound flow-control path.
func (d *Daemon) pushInstance(ins *instance, in node.Inbound) {
	select {
	case <-ins.ready:
	case <-ins.ictx.Done():
		d.lateFrames.Add(1)
		wire.PutBuf(in.Frame)
		return
	}
	select {
	case ins.nd.Inbox() <- in:
	case <-ins.nd.Done():
		d.lateFrames.Add(1)
		wire.PutBuf(in.Frame)
	case <-ins.ictx.Done():
		d.lateFrames.Add(1)
		wire.PutBuf(in.Frame)
	}
}

// Submit starts a new instance of protocol (the daemon default when
// empty), announces it to the peers, and returns its id.
func (d *Daemon) Submit(protocol string) (uint64, error) {
	if protocol == "" {
		protocol = d.DefaultProtocol()
	}
	seq := atomic.AddUint64(&d.seq, 1)
	inst := seq<<10 | uint64(d.cfg.ID)
	if err := d.open(inst, protocol, true); err != nil {
		return 0, err
	}
	d.submitted.Add(1)
	return inst, nil
}

// open spawns instance inst running protocol, replays any buffered frames,
// and floods the OPEN announcement. Duplicate opens (every daemon
// re-floods the first sighting) are no-ops.
func (d *Daemon) open(inst uint64, protocol string, local bool) error {
	if d.ctx == nil {
		return errors.New("service: daemon not started")
	}
	fac, ok := d.facs[protocol]
	if !ok {
		d.refused.Add(1)
		return fmt.Errorf("service: protocol %q not served (valid values are: %v)", protocol, d.names)
	}

	d.mu.Lock()
	if _, running := d.instances[inst]; running {
		d.mu.Unlock()
		return nil
	}
	if _, gone := d.retired[inst]; gone {
		d.mu.Unlock()
		return nil
	}
	if d.draining {
		d.mu.Unlock()
		d.refused.Add(1)
		return errors.New("service: draining")
	}
	// Spawn under the lock so a concurrent duplicate OPEN cannot double-
	// start; machine construction is cheap (the factory pre-materialized
	// the shared context).
	h, err := fac.HandlerFor(inst, d.cfg.ID)
	if err != nil {
		d.mu.Unlock()
		d.refused.Add(1)
		return err
	}
	ictx, cancel := context.WithCancel(d.ctx)
	ins := &instance{
		inst:     inst,
		protocol: protocol,
		started:  time.Now(),
		cancel:   cancel,
		ictx:     ictx,
		ready:    make(chan struct{}),
	}
	nd, err := node.New(node.Config{
		ID:       d.cfg.ID,
		Graph:    fac.Graph(),
		Handler:  h,
		Out:      muxOutbound{d.mux},
		InboxCap: d.cfg.InboxCap,
		Encode: func(dst []byte, m transport.Message) ([]byte, error) {
			return wire.AppendInstanceMessage(dst, inst, m)
		},
		OnDecide: func(int, float64) { d.onDecide(ins) },
	})
	if err != nil {
		cancel()
		d.mu.Unlock()
		d.refused.Add(1)
		return err
	}
	ins.nd = nd
	d.instances[inst] = ins
	pend := d.pending[inst]
	delete(d.pending, inst)
	d.mu.Unlock()
	d.opened.Add(1)

	// Announce before the machine's first sends enter the per-peer queues:
	// FIFO order then guarantees every peer sees our OPEN before any of
	// our protocol frames for this instance.
	d.flood(inst, protocol)

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = ins.nd.Run(ictx)
		d.finish(ins)
	}()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer close(ins.ready)
		for i, in := range pend {
			select {
			case ins.nd.Inbox() <- in:
			case <-ins.nd.Done():
				releasePending(pend[i:])
				return
			case <-ictx.Done():
				releasePending(pend[i:])
				return
			}
		}
	}()
	return nil
}

// releasePending returns an aborted pending replay's frames to the pool.
func releasePending(pend []node.Inbound) {
	for _, in := range pend {
		wire.PutBuf(in.Frame)
	}
}

// flood announces inst on every out-edge. Send blocks under backpressure —
// an announcement must not be shed, or a peer would buffer our frames in
// pending until the cap and never start the instance.
func (d *Daemon) flood(inst uint64, protocol string) {
	g := d.facs[protocol].Graph()
	for _, v := range g.Out(d.cfg.ID) {
		frame, err := wire.AppendInstanceMessage(wire.GetBuf(), inst, transport.Message{
			From: d.cfg.ID, To: v, Payload: wire.Open{Protocol: protocol},
		})
		if err != nil {
			wire.PutBuf(frame)
			d.logf("service[%d]: encode open inst=%d: %v", d.cfg.ID, inst, err)
			return
		}
		if err := d.mux.Send(v, frame); err != nil {
			d.logf("service[%d]: flood open inst=%d to %d: %v", d.cfg.ID, inst, v, err)
		}
	}
}

// onDecide records the instance's decision, releases waiters, and starts
// the linger clock toward retirement.
func (d *Daemon) onDecide(ins *instance) {
	x, ok := ins.nd.Output()
	if !ok {
		return
	}
	dec := Decision{
		Inst:      ins.inst,
		Protocol:  ins.protocol,
		Value:     x,
		ElapsedMS: float64(time.Since(ins.started)) / float64(time.Millisecond),
	}
	if vp, isVec := ins.nd.Handler().(vectorProvider); isVec {
		dec.Vector = vp.Vector()
	}
	ins.mu.Lock()
	if ins.decision != nil {
		ins.mu.Unlock()
		return
	}
	ins.decision = &dec
	waiters := ins.waiters
	ins.waiters = nil
	ins.mu.Unlock()
	d.decided.Add(1)
	for _, w := range waiters {
		w <- dec
	}
	// The machine keeps answering peers for the linger window — vertices
	// that have not decided yet may need its frames — then retires.
	linger := time.AfterFunc(d.cfg.Linger, ins.cancel)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		<-ins.ictx.Done()
		linger.Stop()
	}()
}

// finish retires an instance whose event loop has returned.
func (d *Daemon) finish(ins *instance) {
	ins.cancel()
	ins.mu.Lock()
	dec := ins.decision
	waiters := ins.waiters
	ins.waiters = nil
	ins.mu.Unlock()
	d.mu.Lock()
	delete(d.instances, ins.inst)
	d.retired[ins.inst] = struct{}{}
	if dec != nil {
		d.decisions[ins.inst] = *dec
	}
	d.mu.Unlock()
	d.retiredN.Add(1)
	// Waiters on an instance that retired undecided learn it from the
	// closed channel.
	for _, w := range waiters {
		close(w)
	}
}

// Wait blocks until instance inst decides at this vertex (or ctx ends).
// It works before the instance's OPEN has even arrived — the waiter parks
// until the decision — and returns immediately for retired instances.
func (d *Daemon) Wait(ctx context.Context, inst uint64) (Decision, error) {
	for {
		d.mu.RLock()
		if dec, done := d.decisions[inst]; done {
			d.mu.RUnlock()
			return dec, nil
		}
		if _, gone := d.retired[inst]; gone {
			d.mu.RUnlock()
			return Decision{}, fmt.Errorf("service: instance %d retired without deciding", inst)
		}
		ins, running := d.instances[inst]
		d.mu.RUnlock()
		if !running {
			// Not yet opened here: poll cheaply until the OPEN lands. The
			// interval only delays the rare submit-elsewhere/wait-here race.
			select {
			case <-time.After(5 * time.Millisecond):
				continue
			case <-ctx.Done():
				return Decision{}, ctx.Err()
			}
		}
		ch := make(chan Decision, 1)
		ins.mu.Lock()
		if ins.decision != nil {
			dec := *ins.decision
			ins.mu.Unlock()
			return dec, nil
		}
		ins.waiters = append(ins.waiters, ch)
		ins.mu.Unlock()
		select {
		case dec, ok := <-ch:
			if !ok {
				return Decision{}, fmt.Errorf("service: instance %d retired without deciding", inst)
			}
			return dec, nil
		case <-ctx.Done():
			return Decision{}, ctx.Err()
		}
	}
}

// SubmitWait is Submit then Wait.
func (d *Daemon) SubmitWait(ctx context.Context, protocol string) (Decision, error) {
	inst, err := d.Submit(protocol)
	if err != nil {
		return Decision{}, err
	}
	return d.Wait(ctx, inst)
}

// Snapshot dumps the daemon's counters (the /metrics body).
func (d *Daemon) Snapshot() Snapshot {
	d.mu.RLock()
	active := int64(len(d.instances))
	draining := d.draining
	d.mu.RUnlock()
	up := time.Since(d.start).Seconds()
	dec := d.decided.Load()
	s := Snapshot{
		ID:          d.cfg.ID,
		UptimeSec:   up,
		Draining:    draining,
		Protocols:   d.Protocols(),
		Submitted:   d.submitted.Load(),
		Opened:      d.opened.Load(),
		Decided:     dec,
		Retired:     d.retiredN.Load(),
		Active:      active,
		LateFrames:  d.lateFrames.Load(),
		PendingShed: d.pendingShed.Load(),
		Refused:     d.refused.Load(),
		BadFrames:   d.badFr.Load(),
		Queue:       d.mux.QueueStats(),
		QueueDepths: d.mux.QueueDepths(),
	}
	if up > 0 {
		s.DecisionsPerSec = float64(dec) / up
	}
	return s
}

// BeginDrain flips the daemon into drain mode: submits and peer OPENs are
// refused, in-flight instances keep running.
func (d *Daemon) BeginDrain() {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	d.logf("service[%d]: draining", d.cfg.ID)
}

// Drained reports whether no instances remain in flight.
func (d *Daemon) Drained() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.instances) == 0
}

// Shutdown drains gracefully: refuse new work, wait for in-flight
// instances to decide and retire (bounded by DrainTimeout or ctx), then
// tear the fabric down. The error reports an unfinished drain; teardown
// happens regardless.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.BeginDrain()
	deadline := time.NewTimer(d.cfg.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for !d.Drained() {
		select {
		case <-tick.C:
		case <-deadline.C:
			err = errors.New("service: drain timeout with instances in flight")
			break wait
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		}
	}
	d.Close()
	return err
}

// Close tears the daemon down immediately: in-flight instances are
// abandoned like messages in flight at the end of a run.
func (d *Daemon) Close() {
	if d.cancel != nil {
		d.cancel()
	}
	d.mux.Stop()
	d.closeHTTP()
	d.wg.Wait()
}

// muxOutbound adapts the Mux to the node's Outbound: blocking bounded
// sends, i.e. instance event loops feel peer backpressure directly.
type muxOutbound struct{ mux *cluster.Mux }

func (o muxOutbound) Send(to int, frame []byte) error { return o.mux.Send(to, frame) }
