// Package service is the consensus-as-a-service tier: a long-lived daemon
// (one per graph vertex) that multiplexes many concurrent consensus
// instances over persistent peer connections, instead of the single-shot
// lifecycle of the cluster harness. Every wire frame carries an instance
// id (codec v4); the daemon routes frames to per-instance node event
// loops, spawning machines on demand from a repro.InstanceFactory and
// retiring them after decision. New instances are announced with a flooded
// OPEN control frame; per-connection FIFO ordering guarantees a sender's
// OPEN precedes its protocol traffic, and frames that race ahead of the
// announcement through third parties wait in a bounded pending buffer.
//
// The daemon exposes three planes: the peer plane (the cluster.Mux fabric,
// bounded per-peer queues with backpressure and shed accounting), a client
// plane (JSON lines over TCP: submit, wait, stats — see Client), and an
// observability plane (HTTP /metrics and /healthz). Shutdown is graceful
// by default: drain refuses new instances, lets in-flight ones decide,
// then tears the fabric down.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Defaults for Config knobs left zero.
const (
	DefaultInboxCap     = 1024
	DefaultPendingCap   = 4096
	DefaultLinger       = 1500 * time.Millisecond
	DefaultDrainTimeout = 30 * time.Second
)

// maxDaemonID bounds vertex ids so instance ids can pack (seq << 10) | id.
const maxDaemonID = 1<<10 - 1

// The routing table is sharded so concurrent per-connection readers — and
// the open/retire state changes racing them — contend on 1/16th of the
// table instead of one global lock. Power-of-two count, mask selection.
const (
	routeShardBits = 4
	routeShards    = 1 << routeShardBits
)

// routeShard is one slice of the instance routing table: the running
// instances plus the full lifecycle ledger (retired ids, decisions, pending
// pre-open buffers) for every instance id that hashes here. Keeping the
// ledger beside the live map means one shard lock answers "running,
// retired, or unseen?" atomically — the invariant the pending/retire
// transitions need.
type routeShard struct {
	mu        sync.RWMutex
	instances map[uint64]*instance
	// retired and decisions grow with instance count; a service-lifetime
	// ledger (the id space is never reused, so retirement must be
	// remembered to keep late frames and duplicate OPENs out).
	retired   map[uint64]struct{}
	decisions map[uint64]Decision
	pending   map[uint64][]node.Inbound
}

// Config parameterizes one daemon.
type Config struct {
	// ID is the graph vertex this daemon hosts.
	ID int
	// Scenario is the shared base: graph, inputs, fault plan, eps, seed.
	// Every daemon of a deployment must be given the same scenario, the
	// same way the multi-process cluster tier shares one scenario file.
	Scenario repro.Scenario
	// Protocols lists the protocols this daemon serves (each must have a
	// live-runtime builder). Empty means just the scenario's own protocol.
	Protocols []string
	// PeerListener accepts peer-plane connections (the Mux fabric).
	PeerListener net.Listener
	// Peers maps every out-neighbor of ID to its peer-plane address.
	Peers map[int]string
	// ClientListener, when non-nil, serves the JSON-lines client plane.
	ClientListener net.Listener
	// HTTPListener, when non-nil, serves /metrics and /healthz.
	HTTPListener net.Listener
	// QueueCap bounds each per-peer outbound queue (0 = cluster default).
	QueueCap int
	// InboxCap buffers each instance's inbox (0 = DefaultInboxCap).
	InboxCap int
	// PendingCap bounds frames buffered per not-yet-opened instance;
	// overflow is shed and counted (0 = DefaultPendingCap).
	PendingCap int
	// Linger keeps a decided instance's machine serving peers before
	// retirement — other vertices may still need its frames to decide
	// (0 = DefaultLinger).
	Linger time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight instances
	// (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Pprof, when true, mounts the /debug/pprof handlers on the
	// observability plane and enables mutex/block profiling, so service-tier
	// contention is observable in production (see internal/prof.Attach).
	Pprof bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Decision is one instance's outcome at this daemon's vertex.
type Decision struct {
	Inst     uint64  `json:"inst"`
	Protocol string  `json:"protocol"`
	Value    float64 `json:"value"`
	// Vector is set for vector-decision protocols (acs).
	Vector    map[int]float64 `json:"vector,omitempty"`
	ElapsedMS float64         `json:"elapsedMs"`
}

// Snapshot is the observability plane's state dump (/metrics and the
// client plane's stats op).
type Snapshot struct {
	ID        int      `json:"id"`
	UptimeSec float64  `json:"uptimeSec"`
	Draining  bool     `json:"draining"`
	Protocols []string `json:"protocols"`

	Submitted   int64 `json:"submitted"`
	Opened      int64 `json:"opened"`
	Decided     int64 `json:"decided"`
	Retired     int64 `json:"retired"`
	Active      int64 `json:"active"`
	LateFrames  int64 `json:"lateFrames"`
	PendingShed int64 `json:"pendingShed"`
	Refused     int64 `json:"refused"`
	BadFrames   int64 `json:"badFrames"`

	DecisionsPerSec float64 `json:"decisionsPerSec"`

	Queue       cluster.QueueStats `json:"queue"`
	QueueDepths map[int]int64      `json:"queueDepths"`
}

type vectorProvider interface{ Vector() map[int]float64 }

// instance is one consensus instance's machinery at this vertex.
type instance struct {
	inst     uint64
	protocol string
	nd       *node.Node
	started  time.Time
	cancel   context.CancelFunc
	ictx     context.Context
	// ready closes once buffered pre-open frames are replayed, so the
	// dispatcher cannot reorder live frames ahead of them (per-link FIFO).
	ready chan struct{}

	mu       sync.Mutex
	decision *Decision
	waiters  []chan Decision
}

// Daemon is one vertex's consensus service.
type Daemon struct {
	cfg   Config
	facs  map[string]*repro.InstanceFactory
	names []string
	mux   *cluster.Mux

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	start   time.Time
	httpSrv *http.Server

	// shards is the instance routing table (see routeShard). The dispatch
	// hot path takes one shard's read lock once per same-instance frame
	// group; state changes (open, retire, pending buffering) take that
	// shard's write lock and leave the other 15 shards untouched.
	shards [routeShards]routeShard
	// memo caches, per inbound connection, the last instance that peer's
	// frames routed to: pipelined traffic is heavily run-structured, so
	// most groups hit the memo and skip the shard lock entirely. Entries
	// are atomic pointers because a peer that double-connects would give
	// two readers the same index. A stale entry is harmless — instance ids
	// are never reused, so a memoized retired instance fails the push (its
	// context is done) and the frames land in lateFrames, exactly like the
	// retired-ledger path.
	memo     []atomic.Pointer[instance]
	seq      uint64
	draining atomic.Bool

	submitted, opened, decided, retiredN    atomic.Int64
	lateFrames, pendingShed, refused, badFr atomic.Int64
}

// New validates the config and builds the daemon (no goroutines; Start).
func New(cfg Config) (*Daemon, error) {
	if cfg.ID < 0 || cfg.ID > maxDaemonID {
		return nil, fmt.Errorf("service: daemon id %d outside [0,%d]", cfg.ID, maxDaemonID)
	}
	if cfg.InboxCap == 0 {
		cfg.InboxCap = DefaultInboxCap
	}
	if cfg.PendingCap == 0 {
		cfg.PendingCap = DefaultPendingCap
	}
	if cfg.Linger == 0 {
		cfg.Linger = DefaultLinger
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	names := cfg.Protocols
	if len(names) == 0 {
		if cfg.Scenario.Protocol == "" {
			return nil, errors.New("service: config names no protocols and the scenario has none")
		}
		names = []string{cfg.Scenario.Protocol}
	}
	d := &Daemon{
		cfg:  cfg,
		facs: make(map[string]*repro.InstanceFactory, len(names)),
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.instances = make(map[uint64]*instance)
		sh.retired = make(map[uint64]struct{})
		sh.decisions = make(map[uint64]Decision)
		sh.pending = make(map[uint64][]node.Inbound)
	}
	for _, name := range names {
		if _, dup := d.facs[name]; dup {
			continue
		}
		fac, err := repro.NewInstanceFactoryFor(cfg.Scenario, name)
		if err != nil {
			return nil, fmt.Errorf("service: protocol %q: %w", name, err)
		}
		d.facs[name] = fac
		d.names = append(d.names, name)
	}
	sort.Strings(d.names)
	fac := d.facs[d.names[0]]
	d.memo = make([]atomic.Pointer[instance], fac.Graph().N())
	mux, err := cluster.NewMux(cluster.MuxConfig{
		ID:           cfg.ID,
		Graph:        fac.Graph(),
		Listener:     cfg.PeerListener,
		Peers:        cfg.Peers,
		QueueCap:     cfg.QueueCap,
		OnFrame:      d.dispatch,
		OnFrameBatch: d.dispatchBatch,
	})
	if err != nil {
		return nil, err
	}
	d.mux = mux
	return d, nil
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// ID returns the hosted vertex.
func (d *Daemon) ID() int { return d.cfg.ID }

// Protocols lists the served protocols, sorted.
func (d *Daemon) Protocols() []string { return append([]string(nil), d.names...) }

// DefaultProtocol is the protocol a submit with no name gets: the
// scenario's own when served, else the first served name.
func (d *Daemon) DefaultProtocol() string {
	if _, ok := d.facs[d.cfg.Scenario.Protocol]; ok && d.cfg.Scenario.Protocol != "" {
		return d.cfg.Scenario.Protocol
	}
	return d.names[0]
}

// Start launches the peer fabric and the client/observability planes.
func (d *Daemon) Start(ctx context.Context) {
	d.ctx, d.cancel = context.WithCancel(ctx)
	d.start = time.Now()
	d.mux.Start(d.ctx)
	if d.cfg.ClientListener != nil {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveClients(d.cfg.ClientListener)
		}()
	}
	if d.cfg.HTTPListener != nil {
		d.serveHTTP(d.cfg.HTTPListener)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		<-d.ctx.Done()
		if d.cfg.ClientListener != nil {
			d.cfg.ClientListener.Close()
		}
	}()
}

// shard selects inst's routing-table slice. Instance ids pack
// (seq << 10) | daemonID, so the low bits carry the *daemon* id — plain
// masking would land every instance a given daemon submits in one shard.
// A multiplicative (Fibonacci) hash mixes all the bits into the top ones.
func (d *Daemon) shard(inst uint64) *routeShard {
	return &d.shards[(inst*0x9E3779B97F4A7C15)>>(64-routeShardBits)]
}

// dispatch consumes one peer-plane frame — the per-frame compatibility
// path (and the unit the batch path is defined in terms of): OPEN
// announcements spawn instances; protocol frames route to their instance's
// inbox. The frame is a pooled buffer whose ownership arrives with the
// call; every path forwards or releases it.
func (d *Daemon) dispatch(from int, frame []byte) {
	fi, err := wire.PeekFrame(frame)
	if err != nil {
		wire.PutBuf(frame)
		d.badFr.Add(1)
		return
	}
	if fi.Open {
		d.handleOpen(fi.Inst, frame)
		return
	}
	group := [1][]byte{frame}
	d.routeGroup(from, fi.Inst, group[:])
}

// dispatchBatch consumes one read burst: frames in per-link arrival order,
// each routing header already peeked by the socket reader (never re-parsed
// here). Frames are grouped into maximal consecutive runs of the same
// instance id and each run pays one route lookup, one ready-gate wait and
// one inbox channel op — the batch discipline's whole point. Only
// *consecutive* frames group, so processing stays in scan order and
// per-link FIFO is preserved by construction: a frame is never dispatched
// before an earlier frame of the same connection, whatever the
// interleaving of instances. OPENs are consumed inline at their arrival
// position (they order before the sender's own protocol frames). Ownership
// of every frame transfers with the call; the frames/infos slices are the
// caller's scratch and are not retained.
func (d *Daemon) dispatchBatch(from int, frames [][]byte, infos []wire.FrameInfo) {
	for i := 0; i < len(frames); {
		fi := infos[i]
		if fi.Bad {
			wire.PutBuf(frames[i])
			d.badFr.Add(1)
			i++
			continue
		}
		if fi.Open {
			d.handleOpen(fi.Inst, frames[i])
			i++
			continue
		}
		j := i + 1
		for j < len(frames) && !infos[j].Bad && !infos[j].Open && infos[j].Inst == fi.Inst {
			j++
		}
		d.routeGroup(from, fi.Inst, frames[i:j])
		i = j
	}
}

// handleOpen consumes one OPEN announcement frame (released here — OPENs
// never reach an instance inbox).
func (d *Daemon) handleOpen(inst uint64, frame []byte) {
	_, msg, err := wire.DecodeInstanceMessage(frame)
	wire.PutBuf(frame)
	if err != nil {
		d.badFr.Add(1)
		return
	}
	op, ok := msg.Payload.(wire.Open)
	if !ok {
		d.badFr.Add(1)
		return
	}
	if err := d.open(inst, op.Protocol, false); err != nil {
		d.logf("service[%d]: refused open inst=%d: %v", d.cfg.ID, inst, err)
	}
}

// routeGroup routes one same-instance run of frames from one connection:
// memo hit or one shard read-lock lookup, then one batched inbox push; the
// not-running slow path falls through to the pending buffer.
func (d *Daemon) routeGroup(from int, inst uint64, frames [][]byte) {
	if ins := d.lookup(from, inst); ins != nil {
		d.pushGroup(ins, from, frames)
		return
	}
	d.bufferPendingGroup(from, inst, frames)
}

// lookup finds a running instance, consulting the per-connection memo
// before the shard table and refreshing the memo on a table hit.
func (d *Daemon) lookup(from int, inst uint64) *instance {
	memo := from >= 0 && from < len(d.memo)
	if memo {
		if ins := d.memo[from].Load(); ins != nil && ins.inst == inst {
			return ins
		}
	}
	sh := d.shard(inst)
	sh.mu.RLock()
	ins := sh.instances[inst]
	sh.mu.RUnlock()
	if ins != nil && memo {
		d.memo[from].Store(ins)
	}
	return ins
}

// bufferPendingGroup is routeGroup's slow path: under the shard write
// lock, recheck (the instance may have opened or retired between the
// lookup and here), then buffer the run for the not-yet-opened instance,
// bounded by PendingCap with per-frame shed accounting.
func (d *Daemon) bufferPendingGroup(from int, inst uint64, frames [][]byte) {
	sh := d.shard(inst)
	sh.mu.Lock()
	if ins, running := sh.instances[inst]; running {
		sh.mu.Unlock()
		d.pushGroup(ins, from, frames)
		return
	}
	if _, gone := sh.retired[inst]; gone {
		sh.mu.Unlock()
		d.dropLate(frames)
		return
	}
	pend := sh.pending[inst]
	for _, frame := range frames {
		if len(pend) >= d.cfg.PendingCap {
			d.pendingShed.Add(1)
			wire.PutBuf(frame)
			continue
		}
		pend = append(pend, node.Inbound{From: from, Frame: frame})
	}
	sh.pending[inst] = pend
	sh.mu.Unlock()
}

// pushGroup delivers one same-instance run to a running instance. Wait
// once for the pre-open replay so no frame of the run can jump the queue
// (per-link FIFO), then hand the whole run to the inbox as one slab with
// backpressure: a full inbox blocks this peer's reader, which is the
// inbound flow-control path.
func (d *Daemon) pushGroup(ins *instance, from int, frames [][]byte) {
	select {
	case <-ins.ready:
	case <-ins.ictx.Done():
		d.dropLate(frames)
		return
	}
	slab := node.GetSlab()
	for _, frame := range frames {
		slab = append(slab, node.Inbound{From: from, Frame: frame})
	}
	// PushBatch transfers ownership of slab and frames on true; on false
	// (instance cancelled or its loop gone) everything is still ours.
	if !ins.nd.PushBatch(ins.ictx, slab) {
		d.dropLate(frames)
		node.PutSlab(slab)
	}
}

// dropLate releases a run of frames that arrived after their instance
// retired (or mid-teardown), counting each.
func (d *Daemon) dropLate(frames [][]byte) {
	d.lateFrames.Add(int64(len(frames)))
	for _, frame := range frames {
		wire.PutBuf(frame)
	}
}

// Submit starts a new instance of protocol (the daemon default when
// empty), announces it to the peers, and returns its id.
func (d *Daemon) Submit(protocol string) (uint64, error) {
	if protocol == "" {
		protocol = d.DefaultProtocol()
	}
	seq := atomic.AddUint64(&d.seq, 1)
	inst := seq<<10 | uint64(d.cfg.ID)
	if err := d.open(inst, protocol, true); err != nil {
		return 0, err
	}
	d.submitted.Add(1)
	return inst, nil
}

// open spawns instance inst running protocol, replays any buffered frames,
// and floods the OPEN announcement. Duplicate opens (every daemon
// re-floods the first sighting) are no-ops.
func (d *Daemon) open(inst uint64, protocol string, local bool) error {
	if d.ctx == nil {
		return errors.New("service: daemon not started")
	}
	fac, ok := d.facs[protocol]
	if !ok {
		d.refused.Add(1)
		return fmt.Errorf("service: protocol %q not served (valid values are: %v)", protocol, d.names)
	}

	sh := d.shard(inst)
	sh.mu.Lock()
	if _, running := sh.instances[inst]; running {
		sh.mu.Unlock()
		return nil
	}
	if _, gone := sh.retired[inst]; gone {
		sh.mu.Unlock()
		return nil
	}
	if d.draining.Load() {
		sh.mu.Unlock()
		d.refused.Add(1)
		return errors.New("service: draining")
	}
	// Spawn under the shard lock so a concurrent duplicate OPEN cannot
	// double-start; machine construction is cheap (the factory
	// pre-materialized the shared context).
	h, err := fac.HandlerFor(inst, d.cfg.ID)
	if err != nil {
		sh.mu.Unlock()
		d.refused.Add(1)
		return err
	}
	ictx, cancel := context.WithCancel(d.ctx)
	ins := &instance{
		inst:     inst,
		protocol: protocol,
		started:  time.Now(),
		cancel:   cancel,
		ictx:     ictx,
		ready:    make(chan struct{}),
	}
	nd, err := node.New(node.Config{
		ID:       d.cfg.ID,
		Graph:    fac.Graph(),
		Handler:  h,
		Out:      muxOutbound{d.mux},
		InboxCap: d.cfg.InboxCap,
		Encode: func(dst []byte, m transport.Message) ([]byte, error) {
			return wire.AppendInstanceMessage(dst, inst, m)
		},
		OnDecide: func(int, float64) { d.onDecide(ins) },
	})
	if err != nil {
		cancel()
		sh.mu.Unlock()
		d.refused.Add(1)
		return err
	}
	ins.nd = nd
	sh.instances[inst] = ins
	pend := sh.pending[inst]
	delete(sh.pending, inst)
	sh.mu.Unlock()
	d.opened.Add(1)

	// Announce before the machine's first sends enter the per-peer queues:
	// FIFO order then guarantees every peer sees our OPEN before any of
	// our protocol frames for this instance.
	d.flood(inst, protocol)

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = ins.nd.Run(ictx)
		d.finish(ins)
	}()
	if len(pend) == 0 {
		// Nothing buffered: the gate opens immediately, no replay goroutine.
		close(ins.ready)
		return nil
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer close(ins.ready)
		// The buffered pre-open frames are already a []node.Inbound in
		// arrival order — push them as one slab (ownership of slab and
		// frames transfers on success; the event loop recycles both).
		if !ins.nd.PushBatch(ictx, pend) {
			releasePending(pend)
		}
	}()
	return nil
}

// releasePending returns an aborted pending replay's frames to the pool.
func releasePending(pend []node.Inbound) {
	for _, in := range pend {
		wire.PutBuf(in.Frame)
	}
}

// flood announces inst on every out-edge. Send blocks under backpressure —
// an announcement must not be shed, or a peer would buffer our frames in
// pending until the cap and never start the instance.
func (d *Daemon) flood(inst uint64, protocol string) {
	g := d.facs[protocol].Graph()
	for _, v := range g.Out(d.cfg.ID) {
		frame, err := wire.AppendInstanceMessage(wire.GetBuf(), inst, transport.Message{
			From: d.cfg.ID, To: v, Payload: wire.Open{Protocol: protocol},
		})
		if err != nil {
			wire.PutBuf(frame)
			d.logf("service[%d]: encode open inst=%d: %v", d.cfg.ID, inst, err)
			return
		}
		if err := d.mux.Send(v, frame); err != nil {
			d.logf("service[%d]: flood open inst=%d to %d: %v", d.cfg.ID, inst, v, err)
		}
	}
}

// onDecide records the instance's decision, releases waiters, and starts
// the linger clock toward retirement.
func (d *Daemon) onDecide(ins *instance) {
	x, ok := ins.nd.Output()
	if !ok {
		return
	}
	dec := Decision{
		Inst:      ins.inst,
		Protocol:  ins.protocol,
		Value:     x,
		ElapsedMS: float64(time.Since(ins.started)) / float64(time.Millisecond),
	}
	if vp, isVec := ins.nd.Handler().(vectorProvider); isVec {
		dec.Vector = vp.Vector()
	}
	ins.mu.Lock()
	if ins.decision != nil {
		ins.mu.Unlock()
		return
	}
	ins.decision = &dec
	waiters := ins.waiters
	ins.waiters = nil
	ins.mu.Unlock()
	d.decided.Add(1)
	for _, w := range waiters {
		w <- dec
	}
	// The machine keeps answering peers for the linger window — vertices
	// that have not decided yet may need its frames — then retires.
	linger := time.AfterFunc(d.cfg.Linger, ins.cancel)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		<-ins.ictx.Done()
		linger.Stop()
	}()
}

// finish retires an instance whose event loop has returned.
func (d *Daemon) finish(ins *instance) {
	ins.cancel()
	ins.mu.Lock()
	dec := ins.decision
	waiters := ins.waiters
	ins.waiters = nil
	ins.mu.Unlock()
	sh := d.shard(ins.inst)
	sh.mu.Lock()
	delete(sh.instances, ins.inst)
	sh.retired[ins.inst] = struct{}{}
	if dec != nil {
		sh.decisions[ins.inst] = *dec
	}
	sh.mu.Unlock()
	// Evict the retired instance from the connection memos. A lookup racing
	// this sweep can re-install it, but that is benign: ids are never
	// reused, pushes against it fail (context done) into lateFrames, and
	// the next successful lookup from that connection overwrites the entry.
	for i := range d.memo {
		d.memo[i].CompareAndSwap(ins, nil)
	}
	d.retiredN.Add(1)
	// Waiters on an instance that retired undecided learn it from the
	// closed channel.
	for _, w := range waiters {
		close(w)
	}
}

// Wait blocks until instance inst decides at this vertex (or ctx ends).
// It works before the instance's OPEN has even arrived — the waiter parks
// until the decision — and returns immediately for retired instances.
func (d *Daemon) Wait(ctx context.Context, inst uint64) (Decision, error) {
	sh := d.shard(inst)
	for {
		sh.mu.RLock()
		if dec, done := sh.decisions[inst]; done {
			sh.mu.RUnlock()
			return dec, nil
		}
		if _, gone := sh.retired[inst]; gone {
			sh.mu.RUnlock()
			return Decision{}, fmt.Errorf("service: instance %d retired without deciding", inst)
		}
		ins, running := sh.instances[inst]
		sh.mu.RUnlock()
		if !running {
			// Not yet opened here: poll cheaply until the OPEN lands. The
			// interval only delays the rare submit-elsewhere/wait-here race.
			select {
			case <-time.After(5 * time.Millisecond):
				continue
			case <-ctx.Done():
				return Decision{}, ctx.Err()
			}
		}
		ch := make(chan Decision, 1)
		ins.mu.Lock()
		if ins.decision != nil {
			dec := *ins.decision
			ins.mu.Unlock()
			return dec, nil
		}
		ins.waiters = append(ins.waiters, ch)
		ins.mu.Unlock()
		select {
		case dec, ok := <-ch:
			if !ok {
				return Decision{}, fmt.Errorf("service: instance %d retired without deciding", inst)
			}
			return dec, nil
		case <-ctx.Done():
			return Decision{}, ctx.Err()
		}
	}
}

// SubmitWait is Submit then Wait.
func (d *Daemon) SubmitWait(ctx context.Context, protocol string) (Decision, error) {
	inst, err := d.Submit(protocol)
	if err != nil {
		return Decision{}, err
	}
	return d.Wait(ctx, inst)
}

// Snapshot dumps the daemon's counters (the /metrics body).
func (d *Daemon) Snapshot() Snapshot {
	var active int64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		active += int64(len(sh.instances))
		sh.mu.RUnlock()
	}
	draining := d.draining.Load()
	up := time.Since(d.start).Seconds()
	dec := d.decided.Load()
	s := Snapshot{
		ID:          d.cfg.ID,
		UptimeSec:   up,
		Draining:    draining,
		Protocols:   d.Protocols(),
		Submitted:   d.submitted.Load(),
		Opened:      d.opened.Load(),
		Decided:     dec,
		Retired:     d.retiredN.Load(),
		Active:      active,
		LateFrames:  d.lateFrames.Load(),
		PendingShed: d.pendingShed.Load(),
		Refused:     d.refused.Load(),
		BadFrames:   d.badFr.Load(),
		Queue:       d.mux.QueueStats(),
		QueueDepths: d.mux.QueueDepths(),
	}
	if up > 0 {
		s.DecisionsPerSec = float64(dec) / up
	}
	return s
}

// BeginDrain flips the daemon into drain mode: submits and peer OPENs are
// refused, in-flight instances keep running.
func (d *Daemon) BeginDrain() {
	d.draining.Store(true)
	d.logf("service[%d]: draining", d.cfg.ID)
}

// Drained reports whether no instances remain in flight.
func (d *Daemon) Drained() bool {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n := len(sh.instances)
		sh.mu.RUnlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// Shutdown drains gracefully: refuse new work, wait for in-flight
// instances to decide and retire (bounded by DrainTimeout or ctx), then
// tear the fabric down. The error reports an unfinished drain; teardown
// happens regardless.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.BeginDrain()
	deadline := time.NewTimer(d.cfg.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for !d.Drained() {
		select {
		case <-tick.C:
		case <-deadline.C:
			err = errors.New("service: drain timeout with instances in flight")
			break wait
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		}
	}
	d.Close()
	return err
}

// Close tears the daemon down immediately: in-flight instances are
// abandoned like messages in flight at the end of a run.
func (d *Daemon) Close() {
	if d.cancel != nil {
		d.cancel()
	}
	d.mux.Stop()
	d.closeHTTP()
	d.wg.Wait()
}

// muxOutbound adapts the Mux to the node's Outbound: blocking bounded
// sends, i.e. instance event loops feel peer backpressure directly.
type muxOutbound struct{ mux *cluster.Mux }

func (o muxOutbound) Send(to int, frame []byte) error { return o.mux.Send(to, frame) }
