package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The client plane speaks JSON lines over TCP: one request object per
// line, one response object per line, strictly in order per connection.
// Ops: "submit" (start an instance, return its id), "wait" (block until an
// instance decides here), "submitwait" (both), "stats" (a Snapshot). A
// connection is a session; concurrent load comes from concurrent
// connections, which is what the load generator does.

// clientRequest is one line from a client.
type clientRequest struct {
	Op       string `json:"op"`
	Protocol string `json:"protocol,omitempty"`
	Inst     uint64 `json:"inst,omitempty"`
}

// clientResponse is one line back.
type clientResponse struct {
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Inst     uint64    `json:"inst,omitempty"`
	Decision *Decision `json:"decision,omitempty"`
	Stats    *Snapshot `json:"stats,omitempty"`
}

// maxClientLine bounds one request line (requests are tiny; a huge line is
// a protocol violation, not a workload).
const maxClientLine = 1 << 16

func (d *Daemon) serveClients(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		d.wg.Add(1)
		go func(c net.Conn) {
			defer d.wg.Done()
			defer c.Close()
			go func() { // unblock reads when the daemon stops
				<-d.ctx.Done()
				c.Close()
			}()
			d.clientSession(c)
		}(c)
	}
}

func (d *Daemon) clientSession(c net.Conn) {
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 4096), maxClientLine)
	enc := json.NewEncoder(c)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req clientRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(clientResponse{Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		resp := d.handleClient(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (d *Daemon) handleClient(req clientRequest) clientResponse {
	switch req.Op {
	case "submit":
		inst, err := d.Submit(req.Protocol)
		if err != nil {
			return clientResponse{Error: err.Error()}
		}
		return clientResponse{OK: true, Inst: inst}
	case "wait":
		dec, err := d.Wait(d.ctx, req.Inst)
		if err != nil {
			return clientResponse{Error: err.Error()}
		}
		return clientResponse{OK: true, Inst: req.Inst, Decision: &dec}
	case "submitwait":
		dec, err := d.SubmitWait(d.ctx, req.Protocol)
		if err != nil {
			return clientResponse{Error: err.Error()}
		}
		return clientResponse{OK: true, Inst: dec.Inst, Decision: &dec}
	case "stats":
		s := d.Snapshot()
		return clientResponse{OK: true, Stats: &s}
	default:
		return clientResponse{Error: fmt.Sprintf("unknown op %q (valid values are: submit, wait, submitwait, stats)", req.Op)}
	}
}

// Client is the Go face of the client plane: one connection, sequential
// requests. Use one Client per concurrent worker.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a daemon's client plane.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req clientRequest) (clientResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := json.Marshal(req)
	if err != nil {
		return clientResponse{}, err
	}
	buf = append(buf, '\n')
	if _, err := c.conn.Write(buf); err != nil {
		return clientResponse{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return clientResponse{}, err
	}
	var resp clientResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return clientResponse{}, err
	}
	if !resp.OK {
		if resp.Error == "" {
			resp.Error = "request failed"
		}
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Submit starts an instance of protocol ("" = daemon default).
func (c *Client) Submit(protocol string) (uint64, error) {
	resp, err := c.roundTrip(clientRequest{Op: "submit", Protocol: protocol})
	return resp.Inst, err
}

// Wait blocks until the instance decides at the daemon's vertex.
func (c *Client) Wait(inst uint64) (Decision, error) {
	resp, err := c.roundTrip(clientRequest{Op: "wait", Inst: inst})
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("service: wait response without a decision")
	}
	return *resp.Decision, nil
}

// SubmitWait submits and blocks for the decision.
func (c *Client) SubmitWait(protocol string) (Decision, error) {
	resp, err := c.roundTrip(clientRequest{Op: "submitwait", Protocol: protocol})
	if err != nil {
		return Decision{}, err
	}
	if resp.Decision == nil {
		return Decision{}, errors.New("service: submitwait response without a decision")
	}
	return *resp.Decision, nil
}

// Stats fetches the daemon's Snapshot.
func (c *Client) Stats() (Snapshot, error) {
	resp, err := c.roundTrip(clientRequest{Op: "stats"})
	if err != nil {
		return Snapshot{}, err
	}
	if resp.Stats == nil {
		return Snapshot{}, errors.New("service: stats response without a snapshot")
	}
	return *resp.Stats, nil
}
