package service

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro"
)

// DeployConfig parameterizes an in-process deployment: one daemon per
// graph vertex, all on loopback listeners with ephemeral ports. This is
// the self-host mode behind the load generator and the service tests —
// the same daemons as production, just colocated.
type DeployConfig struct {
	Scenario  repro.Scenario
	Protocols []string
	QueueCap  int
	Linger    time.Duration
	// WithClients/WithHTTP attach the client and observability planes to
	// every daemon (addresses in Deployment.ClientAddrs/HTTPAddrs).
	WithClients bool
	WithHTTP    bool
	// Pprof mounts /debug/pprof on every daemon's observability plane
	// (needs WithHTTP) and enables mutex/block profiling.
	Pprof bool
	Logf  func(format string, args ...any)
}

// Deployment is a running in-process daemon fleet.
type Deployment struct {
	Daemons     []*Daemon
	ClientAddrs []string
	HTTPAddrs   []string
}

// Deploy builds and starts a full fleet for the scenario's graph.
func Deploy(ctx context.Context, cfg DeployConfig) (*Deployment, error) {
	g, _, err := cfg.Scenario.Materialize()
	if err != nil {
		return nil, err
	}
	n := g.N()
	peerLs := make([]net.Listener, n)
	addrs := make([]string, n)
	cleanup := func() {
		for _, l := range peerLs {
			if l != nil {
				l.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		if peerLs[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			cleanup()
			return nil, fmt.Errorf("service: deploy: %w", err)
		}
		addrs[i] = peerLs[i].Addr().String()
	}
	dep := &Deployment{Daemons: make([]*Daemon, n)}
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for _, v := range g.Out(i) {
			peers[v] = addrs[v]
		}
		dcfg := Config{
			ID:           i,
			Scenario:     cfg.Scenario,
			Protocols:    cfg.Protocols,
			PeerListener: peerLs[i],
			Peers:        peers,
			QueueCap:     cfg.QueueCap,
			Linger:       cfg.Linger,
			Pprof:        cfg.Pprof,
			Logf:         cfg.Logf,
		}
		if cfg.WithClients {
			cl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				cleanup()
				dep.Close()
				return nil, fmt.Errorf("service: deploy: %w", err)
			}
			dcfg.ClientListener = cl
			dep.ClientAddrs = append(dep.ClientAddrs, cl.Addr().String())
		}
		if cfg.WithHTTP {
			hl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				cleanup()
				dep.Close()
				return nil, fmt.Errorf("service: deploy: %w", err)
			}
			dcfg.HTTPListener = hl
			dep.HTTPAddrs = append(dep.HTTPAddrs, hl.Addr().String())
		}
		d, err := New(dcfg)
		if err != nil {
			cleanup()
			dep.Close()
			return nil, err
		}
		dep.Daemons[i] = d
	}
	peerLs = nil // ownership passed to the daemons
	for _, d := range dep.Daemons {
		d.Start(ctx)
	}
	return dep, nil
}

// Shutdown drains every daemon concurrently; the first drain failure is
// returned (all daemons are torn down regardless).
func (dep *Deployment) Shutdown(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(dep.Daemons))
	for i, d := range dep.Daemons {
		if d == nil {
			continue
		}
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Shutdown(ctx)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close tears every daemon down immediately.
func (dep *Deployment) Close() {
	var wg sync.WaitGroup
	for _, d := range dep.Daemons {
		if d == nil {
			continue
		}
		wg.Add(1)
		go func(d *Daemon) {
			defer wg.Done()
			d.Close()
		}(d)
	}
	wg.Wait()
}
