package seedmix

import "testing"

func TestMixDeterministic(t *testing.T) {
	if Mix(7, 1, 2) != Mix(7, 1, 2) {
		t.Fatal("Mix is not deterministic")
	}
}

func TestMixDecorrelatesAdjacentSalts(t *testing.T) {
	// Adjacent salts (and adjacent base seeds) must land far apart: count
	// differing bits instead of just inequality.
	pairs := [][2]int64{{Mix(1, 0), Mix(1, 1)}, {Mix(1, 0), Mix(2, 0)}, {Mix(0), Mix(1)}}
	for _, p := range pairs {
		diff := p[0] ^ p[1]
		bits := 0
		for u := uint64(diff); u != 0; u &= u - 1 {
			bits++
		}
		if bits < 16 {
			t.Errorf("Mix outputs %#x and %#x differ in only %d bits", p[0], p[1], bits)
		}
	}
}

func TestMixSaltArityMatters(t *testing.T) {
	if Mix(3) == Mix(3, 0) || Mix(3, 1) == Mix(3, 1, 1) {
		t.Error("salt arity should change the output")
	}
}
