// Package seedmix derives decorrelated pseudo-random seeds from a base
// seed plus salts (node ids, rule indexes, edge endpoints). Adjacent salts
// must yield statistically independent streams: naive derivations such as
// seed+i hand adjacent consumers nearly identical rand.Source states, which
// correlates, for example, two Byzantine nodes' noise streams. Mix runs
// every input through a splitmix64-style finalizer, whose avalanche makes
// any single-bit input change flip about half of the output bits.
package seedmix

// Mix folds the base seed and the salts into one well-mixed 64-bit seed.
// It is pure and deterministic: the same inputs always produce the same
// seed, on every platform.
func Mix(seed int64, salts ...int64) int64 {
	h := splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	for _, s := range salts {
		h = splitmix64(h ^ uint64(s))
	}
	return int64(h)
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14):
// an invertible avalanche permutation of the 64-bit state.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
