package experiments_test

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

func TestRandomSweep(t *testing.T) {
	count := 8
	if testing.Short() {
		count = 3
	}
	rep, err := experiments.RunSweep(count, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < count {
		t.Fatalf("only %d of %d runs completed (candidates=%d, satisfying=%d)",
			len(rep.Rows), count, rep.Candidates, rep.Satisfying)
	}
	if !rep.AllPassed() {
		t.Fatalf("sweep failures:\n%s", rep.Render())
	}
}

// TestSweepDeterministicAcrossWorkersAndEngines pins the parallel runner's
// core guarantee: the report is byte-identical whatever the worker count
// and whichever engine executes the runs.
func TestSweepDeterministicAcrossWorkersAndEngines(t *testing.T) {
	count := 4
	if testing.Short() {
		count = 2
	}
	base, err := experiments.RunSweepExec(context.Background(), count, 99, experiments.Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) < count {
		t.Fatalf("only %d of %d runs completed", len(base.Rows), count)
	}
	for _, exec := range []experiments.Exec{
		{Workers: 4},
		{Workers: 0}, // one worker per CPU
		{Workers: 4, Engine: "goroutine"},
		{Workers: 1, Engine: "goroutine"},
	} {
		rep, err := experiments.RunSweepExec(context.Background(), count, 99, exec)
		if err != nil {
			t.Fatalf("%+v: %v", exec, err)
		}
		if rep.Render() != base.Render() {
			t.Fatalf("%+v diverged from sequential inline run:\n%s\nvs\n%s",
				exec, rep.Render(), base.Render())
		}
	}
}
