package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

func TestRandomSweep(t *testing.T) {
	count := 8
	if testing.Short() {
		count = 3
	}
	rep, err := experiments.RunSweep(count, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < count {
		t.Fatalf("only %d of %d runs completed (candidates=%d, satisfying=%d)",
			len(rep.Rows), count, rep.Candidates, rep.Satisfying)
	}
	if !rep.AllPassed() {
		t.Fatalf("sweep failures:\n%s", rep.Render())
	}
}
