package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/par"
)

// Experiment E15 exercises the exact-consensus tier (aba, acs) the way E13
// exercises the approximate tier: a ladder of graph rungs crossed with the
// full registered adversary matrix — every fault kind with its default
// params on all f nodes at once, a composed crash+noise cell, and a
// link-fault cell. Exact consensus has no ε slack, so each non-skipped
// rung must decide with spread exactly zero, stay within the honest input
// range, and (for acs) agree on a subset of at least n−f origins — also
// in the rows where the f nodes run the silent or equivocate strategies.
//
// The exact tier requires a complete communication graph (its thresholds
// assume all-to-all links), so the ladder runs the clique family plus the
// k-out-regular family at k = n−1 — complete by construction, a positive
// control that family specs route through the ladder — and reports the
// expander family as explicitly skipped: d < n/2 means an expander is
// never complete.

// ExactRow is one executed cell of E15.
type ExactRow struct {
	Name      string
	Protocol  string
	Family    string
	N         int
	F         int
	Adversary string
	Steps     int
	Messages  int
	Ms        float64
	Decided   bool
	Converged bool
	Validity  bool
	// Subset is the smallest agreed-subset size across honest nodes (acs
	// rows only; 0 for scalar-decision protocols).
	Subset int
}

// ExactReport aggregates experiment E15.
type ExactReport struct {
	Rows []ExactRow
	// Skipped lists rungs deliberately not run, with reasons (no silent
	// caps).
	Skipped []string
}

// AllPassed reports whether every executed cell met the exact tier's
// guarantees: decided, converged (zero spread), valid, and for acs a
// subset of at least n−f.
func (r ExactReport) AllPassed() bool {
	for _, row := range r.Rows {
		if !row.Decided || !row.Converged || !row.Validity {
			return false
		}
		if row.Protocol == "acs" && row.Subset < row.N-row.F {
			return false
		}
	}
	return true
}

// BenchRuns renders the report as BENCH_4.json cells.
func (r ExactReport) BenchRuns() []BenchRun {
	runs := make([]BenchRun, 0, len(r.Rows))
	for _, row := range r.Rows {
		runs = append(runs, BenchRun{
			Name:      row.Name,
			Runtime:   "sim",
			Ms:        row.Ms,
			Steps:     row.Steps,
			Sends:     row.Messages,
			Decided:   row.Decided,
			Converged: row.Converged,
			Valid:     row.Validity,
			Protocol:  row.Protocol,
			Family:    row.Family,
			N:         row.N,
			F:         row.F,
			Adversary: row.Adversary,
			Subset:    row.Subset,
		})
	}
	return runs
}

// Render prints the study.
func (r ExactReport) Render() string {
	var b strings.Builder
	b.WriteString("E15 / exact tier — aba and acs across complete-graph families x the full adversary matrix (f nodes per cell)\n")
	fmt.Fprintf(&b, "  %-9s %-9s %-4s %-3s %-18s %8s %9s %9s %-8s %-9s %-6s %s\n",
		"protocol", "family", "n", "f", "adversary", "steps", "messages", "ms", "decided", "converged", "valid", "subset")
	for _, row := range r.Rows {
		subset := "-"
		if row.Protocol == "acs" {
			subset = fmt.Sprintf("%d/%d", row.Subset, row.N)
		}
		fmt.Fprintf(&b, "  %-9s %-9s %-4d %-3d %-18s %8d %9d %9.1f %-8v %-9v %-6v %s\n",
			row.Protocol, row.Family, row.N, row.F, row.Adversary,
			row.Steps, row.Messages, row.Ms, row.Decided, row.Converged, row.Validity, subset)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "  skipped: %s\n", s)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// exactRungs is the graph ladder: the clique family at three orders plus
// the complete k-out-regular control.
var exactRungs = []struct {
	spec   string
	family string
	n, f   int
}{
	{"clique:4", "clique", 4, 1},
	{"clique:7", "clique", 7, 2},
	{"clique:10", "clique", 10, 3},
	{"kregular:10:9:1", "kregular", 10, 3},
}

// exactAdversaryCell is one adversary configuration of the matrix.
type exactAdversaryCell struct {
	name   string
	faults []repro.FaultSpec
	links  []repro.LinkFault
}

// exactAdversaries builds the matrix's adversary axis for a rung of order
// n with fault bound f: the honest baseline, every registered fault kind
// on the last f nodes simultaneously, the composed crash+noise cell, and
// the silent+link-faults cell (duplication and delay only — unconditional
// drops could starve a quorum, which no Byzantine node is allowed to do).
func exactAdversaries(n, f int) []exactAdversaryCell {
	lastF := func(kind string, params map[string]float64, compose []repro.MutationSpec) []repro.FaultSpec {
		specs := make([]repro.FaultSpec, 0, f)
		for i := 0; i < f; i++ {
			specs = append(specs, repro.FaultSpec{Node: n - 1 - i, Kind: kind, Params: params, Compose: compose})
		}
		return specs
	}
	cells := []exactAdversaryCell{{name: "none"}}
	for _, kind := range repro.FaultKinds() {
		cells = append(cells, exactAdversaryCell{name: kind, faults: lastF(kind, nil, nil)})
	}
	cells = append(cells, exactAdversaryCell{
		name: "crash+noise",
		faults: lastF("crash", map[string]float64{"after": 20, "finalSends": 2},
			[]repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 25}}}),
	})
	cells = append(cells, exactAdversaryCell{
		name:   "silent+linkfaults",
		faults: lastF("silent", nil, nil),
		links: []repro.LinkFault{
			{Kind: "duplicate", Edges: [][2]int{{0, 1}}, Params: map[string]float64{"prob": 0.5}},
			{Kind: "delay", Edges: [][2]int{{1, 2}}, Params: map[string]float64{"prob": 0.5, "amount": 7}},
		},
	})
	return cells
}

// exactCase is one prepared scenario cell of E15.
type exactCase struct {
	s         repro.Scenario
	family    string
	n, f      int
	adversary string
}

// exactCases builds every scenario cell. Inputs come from the mod
// generator: aba proposes bits (mod 2), acs values in [0, 2] (mod 3) — in
// both cases the faulty nodes' inputs fall inside the honest range, so
// validity must hold whether or not a faulty origin's broadcast lands in
// the agreed subset.
func exactCases(seed int64) ([]exactCase, []string) {
	var cases []exactCase
	var skipped []string
	for _, protocol := range []string{"aba", "acs"} {
		mod, k := 2, 1.0
		if protocol == "acs" {
			mod, k = 3, 2.0
		}
		for ri, rung := range exactRungs {
			for ai, adv := range exactAdversaries(rung.n, rung.f) {
				s := repro.Scenario{
					Name:     fmt.Sprintf("exact-%s-%s-%d-%s", protocol, rung.family, rung.n, adv.name),
					Graph:    rung.spec,
					Protocol: protocol,
					InputGen: &repro.InputGenSpec{Kind: "mod", Mod: mod},
					F:        rung.f, K: k, Eps: 0.25,
					Seed:       seed + int64(1000*ri+ai),
					Faults:     adv.faults,
					LinkFaults: adv.links,
				}
				cases = append(cases, exactCase{
					s: s, family: rung.family, n: rung.n, f: rung.f, adversary: adv.name,
				})
			}
		}
		skipped = append(skipped, fmt.Sprintf(
			"exact-%s-expander: the exact tier requires a complete graph; an expander (d < n/2) is never complete — no expander rung can run", protocol))
	}
	return cases, skipped
}

// RunExact produces the full E15 report under DefaultExec.
func RunExact(seed int64) (ExactReport, error) {
	return RunExactExec(context.Background(), seed, DefaultExec)
}

// RunExactExec runs the matrix on the configured engine with the
// configured worker fan-out. Cells are independent seeded scenarios, so
// the acceptance facts are identical for every worker count and engine;
// only the per-cell wall times move.
func RunExactExec(ctx context.Context, seed int64, exec Exec) (ExactReport, error) {
	cases, skipped := exactCases(seed)
	rows, err := par.Map(ctx, exec.Workers, len(cases), func(i int) (ExactRow, error) {
		c := cases[i]
		start := time.Now()
		out, err := runScenario(c.s, exec)
		if err != nil {
			return ExactRow{}, fmt.Errorf("%s: %w", c.s.Name, err)
		}
		subset := 0
		if c.s.Protocol == "acs" {
			for _, vec := range out.Vectors {
				if subset == 0 || len(vec) < subset {
					subset = len(vec)
				}
			}
		}
		return ExactRow{
			Name:      c.s.Name,
			Protocol:  c.s.Protocol,
			Family:    c.family,
			N:         c.n,
			F:         c.f,
			Adversary: c.adversary,
			Steps:     out.Steps,
			Messages:  out.MessagesSent,
			Ms:        float64(time.Since(start).Microseconds()) / 1000,
			Decided:   out.Decided,
			Converged: out.Converged,
			Validity:  out.ValidityOK,
			Subset:    subset,
		}, nil
	})
	if err != nil {
		return ExactReport{}, err
	}
	return ExactReport{Rows: rows, Skipped: skipped}, nil
}
