package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestTable1NoMismatches(t *testing.T) {
	samples := 6
	if testing.Short() {
		samples = 2
	}
	rep := experiments.Table1(samples, 42)
	if rep.Mismatches() != 0 {
		t.Fatalf("Table 1 equivalences violated:\n%s", rep.Render())
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(rep.Render(), "total mismatches: 0") {
		t.Error("render missing summary")
	}
}

func TestTable2NoMismatches(t *testing.T) {
	samples := 10
	if testing.Short() {
		samples = 3
	}
	rep := experiments.Table2(samples, 7)
	if rep.Mismatches() != 0 {
		t.Fatalf("Theorem 17 equivalences violated:\n%s", rep.Render())
	}
	for _, row := range rep.Rows {
		if row.Checked < 64 {
			t.Errorf("row %q checked only %d graphs", row.Condition, row.Checked)
		}
	}
}

func TestFig1a(t *testing.T) {
	rep, err := experiments.RunFig1a(3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ThreeReach || rep.Kappa != 3 || !rep.MinimalEdge || !rep.BWConverged {
		t.Fatalf("Figure 1(a) claims failed:\n%s", rep.Render())
	}
}

func TestFig1b(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=14 check")
	}
	rep, err := experiments.RunFig1b(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ThreeReachF2 || rep.DisjointVW != 4 || rep.DisjointWV != 4 ||
		!rep.RMTImpossible || !rep.BridgeBreak || !rep.AnalogConverged {
		t.Fatalf("Figure 1(b) claims failed:\n%s", rep.Render())
	}
}

func TestSufficiencyMatrix(t *testing.T) {
	rep, err := experiments.RunSufficiency(11)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("sufficiency matrix failed:\n%s", rep.Render())
	}
	if len(rep.Cases) != 3*7 {
		t.Errorf("cases = %d, want 21", len(rep.Cases))
	}
}

func TestConvergenceBound(t *testing.T) {
	rep, err := experiments.RunConvergence(13)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("Lemma 15 bound violated:\n%s", rep.Render())
	}
	if len(rep.Spreads) != rep.Rounds {
		t.Errorf("series length %d != rounds %d", len(rep.Spreads), rep.Rounds)
	}
	// Final spread below eps.
	if rep.Spreads[len(rep.Spreads)-1] >= rep.Eps {
		t.Errorf("final spread %g >= eps", rep.Spreads[len(rep.Spreads)-1])
	}
}

func TestNecessity(t *testing.T) {
	rep, err := experiments.RunNecessity(17)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated {
		t.Fatalf("necessity construction did not violate convergence:\n%s", rep.Render())
	}
}

func TestAADComparison(t *testing.T) {
	rep, err := experiments.RunAADComparison(19)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if !row.BothOK {
			t.Fatalf("comparison failed:\n%s", rep.Render())
		}
		if row.AADMessages > row.BWMessages {
			t.Errorf("expected AAD to be no costlier on K%d: aad=%d bw=%d",
				row.N, row.AADMessages, row.BWMessages)
		}
	}
	// BW's path-flooding overhead must dominate as the clique grows.
	last := rep.Rows[len(rep.Rows)-1]
	if last.AADMessages >= last.BWMessages {
		t.Errorf("on K%d BW should pay a strict flooding overhead: aad=%d bw=%d",
			last.N, last.AADMessages, last.BWMessages)
	}
}

func TestIterativeAblation(t *testing.T) {
	rep, err := experiments.RunIterativeAblation(23)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CliqueConverged || !rep.TwoCliqueStalled || !rep.BWConverged {
		t.Fatalf("ablation failed:\n%s", rep.Render())
	}
}

func TestKReachHierarchy(t *testing.T) {
	rep := experiments.RunKReach()
	if !rep.AllMatch() {
		t.Fatalf("k-reach hierarchy mismatch:\n%s", rep.Render())
	}
}

func TestStructureTheorems(t *testing.T) {
	if testing.Short() {
		t.Skip("K7 f=2 structure check is heavy")
	}
	rep := experiments.RunStructure()
	if !rep.AllOK() {
		t.Fatalf("structure theorems failed:\n%s", rep.Render())
	}
}

func TestCrashCell(t *testing.T) {
	rep, err := experiments.RunCrashCell(29)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TwoReach || !rep.Converged || !rep.Validity {
		t.Fatalf("crash cell failed:\n%s", rep.Render())
	}
}

func TestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size BW runs")
	}
	rep, err := experiments.RunScaling(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("too few scaling rows:\n%s", rep.Render())
	}
	for _, row := range rep.Rows {
		if !row.Converged {
			t.Errorf("n=%d did not converge", row.N)
		}
	}
	// Cost grows with n.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].Messages <= rep.Rows[i-1].Messages {
			t.Errorf("messages not growing: %d then %d", rep.Rows[i-1].Messages, rep.Rows[i].Messages)
		}
	}
}
