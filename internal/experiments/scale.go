package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/graph"
)

// ScaleCase is one prepared cell of the E14 scale-out study: a declarative
// scenario plus the runtimes it runs on. Exported so cmd/benchruntimes can
// record the identical ladder into BENCH_2.json.
type ScaleCase struct {
	Scenario repro.Scenario
	Family   string   // graph family label ("cycle", "torus", "expander")
	N        int      // graph order
	F        int      // effective fault bound (0 for the FZero rows)
	Runtimes []string // runtimes this cell runs on ("sim", "loopback")
	// SkipNote explains any runtime deliberately absent from Runtimes, so
	// every consumer reports the same reason (no silent caps).
	SkipNote string
}

// ScaleSizes is the E14 ladder of graph orders. The rungs above the
// default build's node limit (graph.MaxNodes = 1024) only materialize under
// the graph4096 build tag; ScaleCases drops them with an explicit skip note
// otherwise.
var ScaleSizes = []int{8, 32, 128, 512, 1024, 2048, 4096}

// scaleLoopbackMaxBW bounds the BW loopback rows: every BW message carries
// a propagation path, so the wire encode/decode bill grows with n^3 and the
// live in-process cluster stops being a seconds-scale experiment well
// before the simulator does. Larger BW cells run on the simulator only and
// the report says so — no silent truncation.
const scaleLoopbackMaxBW = 128

// scaleBWMaxN bounds the BW simulator rows: the n=1024 cycle rung already
// costs minutes of single-core delivery (BENCH_2), and the redundant-path
// machinery grows superlinearly past it. The 2048/4096 rungs run the
// iterative baseline only, with an explicit skip note.
const scaleBWMaxN = 1024

// scaleTorusDims factors the ladder sizes into torus sides.
var scaleTorusDims = map[int][2]int{
	8: {2, 4}, 32: {4, 8}, 128: {8, 16}, 512: {16, 32}, 1024: {32, 32},
	2048: {32, 64}, 4096: {64, 64},
}

// ScaleCases builds the E14 ladder: Algorithm BW on the directed cycle (the
// path-sparse family — every other named family's redundant-path count
// explodes past the protocol budget long before n = 1024) with an explicit
// zero fault bound, and the local iterative baseline on the torus and
// expander families with f = 1. maxN caps the ladder (0 = the full 1024).
func ScaleCases(seed int64, maxN int) []ScaleCase {
	var cases []ScaleCase
	for _, n := range ScaleSizes {
		if maxN > 0 && n > maxN {
			continue
		}
		if n > graph.MaxNodes {
			// A rung above the build dimension is reported, not silently
			// dropped: a case with no runtimes carries only the note.
			cases = append(cases, ScaleCase{
				Family: "-", N: n,
				SkipNote: fmt.Sprintf("n=%d rung: exceeds this build's node limit (graph.MaxNodes=%d); rebuild with -tags graph4096", n, graph.MaxNodes),
			})
			continue
		}
		if n <= scaleBWMaxN {
			bwRuntimes := []string{"sim", "loopback"}
			bwSkip := ""
			if n > scaleLoopbackMaxBW {
				bwRuntimes = []string{"sim"}
				bwSkip = fmt.Sprintf("scale-bw-cycle-%d on loopback: BW wire-encodes a path per message; n > %d is simulator-only", n, scaleLoopbackMaxBW)
			}
			cases = append(cases, ScaleCase{
				Scenario: repro.Scenario{
					Name:     fmt.Sprintf("scale-bw-cycle-%d", n),
					Graph:    fmt.Sprintf("cycle:%d", n),
					Protocol: "bw",
					InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 2},
					F:        repro.FZero, K: 1, Eps: 0.6, Seed: seed,
				},
				Family: "cycle", N: n, F: 0, Runtimes: bwRuntimes, SkipNote: bwSkip,
			})
		} else {
			cases = append(cases, ScaleCase{
				Family: "cycle", N: n,
				SkipNote: fmt.Sprintf("scale-bw-cycle-%d: BW's redundant-path machinery is past its seconds-to-minutes budget above n=%d; the %d rung runs the iterative baseline only", n, scaleBWMaxN, n),
			})
		}
		// Above the default dimension the iterative rows run simulator-only:
		// a live loopback cluster of thousands of goroutine nodes measures
		// the host's scheduler, not the protocol.
		iterRuntimes := []string{"sim", "loopback"}
		iterSkip := func(family string) string { return "" }
		if n > 1024 {
			iterRuntimes = []string{"sim"}
			iterSkip = func(family string) string {
				return fmt.Sprintf("scale-iter-%s-%d on loopback: n > 1024 cluster rows measure host scheduling, not the protocol; simulator-only", family, n)
			}
		}
		d := scaleTorusDims[n]
		cases = append(cases, ScaleCase{
			Scenario: repro.Scenario{
				Name:     fmt.Sprintf("scale-iter-torus-%d", n),
				Graph:    fmt.Sprintf("torus:%d:%d", d[0], d[1]),
				Protocol: "iterative",
				InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
				F:        1, K: 3, Eps: 0.25, Seed: seed,
			},
			Family: "torus", N: n, F: 1, Runtimes: iterRuntimes, SkipNote: iterSkip("torus"),
		})
		cases = append(cases, ScaleCase{
			Scenario: repro.Scenario{
				Name:     fmt.Sprintf("scale-iter-expander-%d", n),
				Graph:    fmt.Sprintf("expander:%d:3:%d", n, seed),
				Protocol: "iterative",
				InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
				F:        1, K: 3, Eps: 0.25, Seed: seed,
			},
			Family: "expander", N: n, F: 1, Runtimes: iterRuntimes, SkipNote: iterSkip("expander"),
		})
	}
	return cases
}

// ScaleRow is one executed cell of E14.
type ScaleRow struct {
	Name      string
	Protocol  string
	Family    string
	N         int
	F         int
	Runtime   string
	Steps     int
	Messages  int
	Ms        float64
	Decided   bool
	Converged bool
	CertNote  string
}

// ScaleReport aggregates experiment E14: how the delivery core and the
// protocols behave as the graph order grows to 1024 — the axis none of the
// paper-reproduction experiments exercise.
type ScaleReport struct {
	Rows []ScaleRow
	// Skipped lists cells deliberately not run, with reasons (no silent
	// caps).
	Skipped []string
}

// Render prints the study.
func (r ScaleReport) Render() string {
	var b strings.Builder
	b.WriteString("E14 / scale-out — BW and iterative from n=8 up to the build's node limit (n=4096 under -tags graph4096)\n")
	fmt.Fprintf(&b, "  %-10s %-9s %-5s %-3s %-9s %10s %10s %12s %-8s %-9s %s\n",
		"protocol", "family", "n", "f", "runtime", "steps", "messages", "ms", "decided", "converged", "3-reach")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-9s %-5d %-3d %-9s %10d %10d %12.1f %-8v %-9v %s\n",
			row.Protocol, row.Family, row.N, row.F, row.Runtime,
			row.Steps, row.Messages, row.Ms, row.Decided, row.Converged, row.CertNote)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "  skipped: %s\n", s)
	}
	return b.String()
}

// certNote certifies the cell's graph when it is small enough, with the
// explicit skip note above CertLimit.
func certNote(spec string, f int) string {
	g, err := repro.NamedGraph(spec)
	if err != nil {
		return "graph error: " + err.Error()
	}
	rep := repro.CheckConditions(g, f)
	if !rep.Certified {
		return rep.Note
	}
	return fmt.Sprintf("3-reach=%v", rep.ThreeReach)
}

// RunScale produces the full E14 report under DefaultExec.
func RunScale(seed int64) (ScaleReport, error) {
	return RunScaleExec(context.Background(), seed, DefaultExec, 0)
}

// RunScaleExec runs the ladder up to maxN (0 = all sizes). Cells run
// sequentially — each large cell saturates memory bandwidth on its own, and
// wall-clock per cell is itself a reported measurement, so fanning cells
// across workers would corrupt the numbers.
func RunScaleExec(ctx context.Context, seed int64, exec Exec, maxN int) (ScaleReport, error) {
	var rep ScaleReport
	for _, c := range ScaleCases(seed, maxN) {
		// Note-only cases (rungs above the build dimension, BW rows past the
		// budget) carry no scenario to certify or run.
		note := ""
		if len(c.Runtimes) > 0 {
			note = certNote(c.Scenario.Graph, c.F)
		}
		for _, runtime := range c.Runtimes {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			s := c.Scenario
			var out *repro.Result
			var err error
			start := time.Now()
			if runtime == "sim" {
				out, err = runScenario(s, exec)
			} else {
				// Cluster runtimes reject sim-only knobs; the scenario stays
				// engine-free.
				out, err = s.RunOn(ctx, runtime)
			}
			if err != nil {
				return rep, fmt.Errorf("%s on %s: %w", s.Name, runtime, err)
			}
			rep.Rows = append(rep.Rows, ScaleRow{
				Name:     s.Name,
				Protocol: s.Protocol,
				Family:   c.Family,
				N:        c.N,
				F:        c.F,
				Runtime:  runtime,
				Steps:    out.Steps, Messages: out.MessagesSent,
				Ms:        float64(time.Since(start).Microseconds()) / 1000,
				Decided:   out.Decided,
				Converged: out.Converged,
				CertNote:  note,
			})
		}
		if c.SkipNote != "" {
			rep.Skipped = append(rep.Skipped, c.SkipNote)
		}
	}
	return rep, nil
}
