package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// BenchRun is one measured cell of a BENCH_*.json report: a (scenario,
// runtime, engine-configuration) triple with its best wall time and the
// run's acceptance facts. Fields beyond Name and Ms are optional — the
// benchtables experiment timings carry only the pair, the benchruntimes
// suites fill the rest.
type BenchRun struct {
	Name    string `json:"name"`
	Runtime string `json:"runtime,omitempty"`
	// Engine and Workers record the sim engine configuration when it is not
	// the inline default (the BENCH_3 workers column).
	Engine  string `json:"engine,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Policy records a delivery-policy override ("" = the scenario's own).
	Policy    string  `json:"policy,omitempty"`
	Ms        float64 `json:"ms"` // best-of-reps wall time
	Steps     int     `json:"steps,omitempty"`
	Sends     int     `json:"sends,omitempty"`
	Decided   bool    `json:"decided,omitempty"`
	Converged bool    `json:"converged,omitempty"`
	Valid     bool    `json:"valid,omitempty"`
	// Scale-suite columns (omitted by the default suite).
	Protocol string `json:"protocol,omitempty"`
	Family   string `json:"family,omitempty"`
	N        int    `json:"n,omitempty"`
	F        int    `json:"f,omitempty"`
	// Exact-tier columns (BENCH_4): the adversary cell the run executed
	// under and, for vector-decision protocols, the agreed subset size.
	Adversary string `json:"adversary,omitempty"`
	Subset    int    `json:"subset,omitempty"`
	// Service-tier columns (BENCH_5): sustained throughput over pipelined
	// instances — decided instance count, decisions/sec at the submitting
	// vertex, and the fleet's bounded-queue accounting (backpressure waits
	// and shed frames) over the measurement window.
	Decisions int64   `json:"decisions,omitempty"`
	PerSec    float64 `json:"perSec,omitempty"`
	Waits     int64   `json:"waits,omitempty"`
	Shed      int64   `json:"shed,omitempty"`
	// Frame-path columns (BENCH_6): per-frame cost on the live tier's hot
	// path. On "micro" cells they come from testing.Benchmark over the
	// codec/queue primitives; on service cells AllocsPerFrame is the whole
	// process's heap allocations over the window divided by the frames the
	// fleet enqueued — an upper bound that includes client-plane and
	// machine work, honest about everything the service does per frame.
	NsPerFrame     float64 `json:"nsPerFrame,omitempty"`
	AllocsPerFrame float64 `json:"allocsPerFrame,omitempty"`
}

// Key identifies the cell for cross-report comparison: the scenario and
// runtime plus the engine configuration. Two reports' cells with equal keys
// measured the same work.
func (r BenchRun) Key() string {
	return fmt.Sprintf("%s|%s|%s|w%d", r.Name, r.Runtime, r.Engine, r.Workers)
}

// BaseKey is Key without the engine configuration — the match used to
// compare an engine-swept cell against a plain baseline report.
func (r BenchRun) BaseKey() string {
	return fmt.Sprintf("%s|%s", r.Name, r.Runtime)
}

// BenchReport is the shared schema of every BENCH_*.json file in the
// repository root. One decoder covers all generations: benchtables writes
// per-experiment timings under "experiments" (BENCH_0), the benchruntimes
// suites write full cells under "runs" (BENCH_1, BENCH_2, BENCH_3); Cells
// returns whichever is populated.
type BenchReport struct {
	Suite string `json:"suite,omitempty"`
	// Engine/Workers at this level are benchtables' process-wide settings;
	// per-cell engine configuration lives on the runs.
	Engine      string     `json:"engine,omitempty"`
	Workers     int        `json:"workers,omitempty"`
	Seed        int64      `json:"seed"`
	Reps        int        `json:"reps,omitempty"`
	Runs        []BenchRun `json:"runs,omitempty"`
	Experiments []BenchRun `json:"experiments,omitempty"`
	Skipped     []string   `json:"skipped,omitempty"`
	// Notes carries measurement caveats (hardware limits, policy
	// overrides) that belong with the numbers rather than in prose.
	Notes []string `json:"notes,omitempty"`
}

// Cells returns the report's measured cells in file order, whichever field
// they were recorded under.
func (r *BenchReport) Cells() []BenchRun {
	if len(r.Runs) > 0 {
		return r.Runs
	}
	return r.Experiments
}

// LoadBench reads and decodes one BENCH_*.json file. Unknown fields are
// rejected so a schema drift fails loudly here instead of comparing zeroes.
func LoadBench(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	rep := &BenchReport{}
	if err := dec.Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Runs) > 0 && len(rep.Experiments) > 0 {
		return nil, fmt.Errorf("%s: both runs and experiments populated", path)
	}
	return rep, nil
}
