package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/adversary"
	"repro/internal/cond"
	"repro/internal/graph"
	"repro/internal/sim"
)

// SweepRow is one random-graph row of the generality sweep.
type SweepRow struct {
	Seed      int64
	N, M      int
	Adversary string
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// SweepReport is experiment E5b: BW on randomly generated 3-reach digraphs
// with randomly chosen Byzantine behaviors. Unlike E5's fixed graphs, this
// demonstrates the algorithm on topologies with no hand-built structure.
type SweepReport struct {
	Candidates int // random digraphs examined
	Satisfying int // of which satisfied 3-reach
	Rows       []SweepRow
}

// AllPassed reports whether every run converged with validity.
func (r SweepReport) AllPassed() bool {
	for _, row := range r.Rows {
		if !row.Converged || !row.Validity {
			return false
		}
	}
	return true
}

// Render prints the sweep.
func (r SweepReport) Render() string {
	var b strings.Builder
	b.WriteString("E5b / generality sweep — BW on random 3-reach digraphs (f=1)\n")
	fmt.Fprintf(&b, "  %d random digraphs examined, %d satisfied 3-reach, %d executed\n",
		r.Candidates, r.Satisfying, len(r.Rows))
	fmt.Fprintf(&b, "  %-6s %-4s %-4s %-12s %-10s %-9s %-10s %-9s\n",
		"seed", "n", "m", "adversary", "converged", "validity", "spread", "messages")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6d %-4d %-4d %-12s %-10v %-9v %-10.4g %-9d\n",
			row.Seed, row.N, row.M, row.Adversary, row.Converged, row.Validity, row.Spread, row.Messages)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// RunSweep generates random digraphs, keeps those satisfying 3-reach within
// the path budget, and runs BW on each with a pseudo-randomly chosen
// Byzantine behavior at a pseudo-random node.
func RunSweep(count int, seed int64) (SweepReport, error) {
	var rep SweepReport
	rng := rand.New(rand.NewSource(seed))
	behaviors := []struct {
		name string
		wrap func(inner sim.Handler, r *rand.Rand) sim.Handler
	}{
		{"silent", func(sim.Handler, *rand.Rand) sim.Handler { return nil }}, // filled below
		{"extreme", func(inner sim.Handler, r *rand.Rand) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: r,
				Mutators: []adversary.Mutator{adversary.ExtremeInput(1e7)}}
		}},
		{"tamper", func(inner sim.Handler, r *rand.Rand) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: r,
				Mutators: []adversary.Mutator{adversary.TamperRelays(func(x float64) float64 { return -3 * x })}}
		}},
		{"noise", func(inner sim.Handler, r *rand.Rand) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: r,
				Mutators: []adversary.Mutator{adversary.RandomNoise(25)}}
		}},
	}

	for len(rep.Rows) < count && rep.Candidates < 50*count {
		rep.Candidates++
		gseed := seed + int64(rep.Candidates)
		n := 5 + rng.Intn(2)
		g := graph.RandomDigraph(n, 0.55+0.1*rng.Float64(), gseed)
		if ok, _ := cond.Check3Reach(g, 1); !ok {
			continue
		}
		// Keep the flooding affordable: skip graphs whose redundant path
		// count at node 0 exceeds a small budget.
		if _, err := g.CountRedundantPathsTo(0, graph.EmptySet, 30_000); err != nil {
			continue
		}
		rep.Satisfying++

		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64() * 4
		}
		badNode := rng.Intn(n)
		behavior := behaviors[rng.Intn(len(behaviors))]
		faults := map[int]func(sim.Handler) sim.Handler{
			badNode: func(inner sim.Handler) sim.Handler {
				if behavior.name == "silent" {
					return &adversary.Silent{NodeID: badNode}
				}
				return behavior.wrap(inner, rand.New(rand.NewSource(gseed)))
			},
		}
		handlers, honest, err := bwHandlers(g, 1, inputs, 4, 0.25, faults)
		if err != nil {
			return rep, err
		}
		out, err := runHandlers(g, handlers, honest, inputs, 0.25, gseed)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, SweepRow{
			Seed: gseed, N: n, M: g.M(),
			Adversary: behavior.name,
			Converged: out.Converged, Validity: out.Validity,
			Spread: out.Spread, Messages: out.Messages,
		})
	}
	return rep, nil
}
