package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cond"
	"repro/internal/graph"
	"repro/internal/par"
)

// SweepRow is one random-graph row of the generality sweep.
type SweepRow struct {
	Seed      int64
	N, M      int
	Adversary string
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// SweepReport is experiment E5b: BW on randomly generated 3-reach digraphs
// with randomly chosen Byzantine behaviors. Unlike E5's fixed graphs, this
// demonstrates the algorithm on topologies with no hand-built structure.
type SweepReport struct {
	Candidates int // random digraphs examined
	Satisfying int // of which satisfied 3-reach
	Rows       []SweepRow
}

// AllPassed reports whether every run converged with validity.
func (r SweepReport) AllPassed() bool {
	for _, row := range r.Rows {
		if !row.Converged || !row.Validity {
			return false
		}
	}
	return true
}

// Render prints the sweep.
func (r SweepReport) Render() string {
	var b strings.Builder
	b.WriteString("E5b / generality sweep — BW on random 3-reach digraphs (f=1)\n")
	fmt.Fprintf(&b, "  %d random digraphs examined, %d satisfied 3-reach, %d executed\n",
		r.Candidates, r.Satisfying, len(r.Rows))
	fmt.Fprintf(&b, "  %-6s %-4s %-4s %-12s %-10s %-9s %-10s %-9s\n",
		"seed", "n", "m", "adversary", "converged", "validity", "spread", "messages")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6d %-4d %-4d %-12s %-10v %-9v %-10.4g %-9d\n",
			row.Seed, row.N, row.M, row.Adversary, row.Converged, row.Validity, row.Spread, row.Messages)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// sweepCase is one prepared independent run: the declarative scenario plus
// the row metadata, generated up front by the single-threaded candidate
// phase so the shared rng stream is consumed in a fixed order no matter how
// the runs are later scheduled. The scenario's graph is carried as a
// "random:<n>:<p>:<seed>" spec, so every sweep cell is individually
// serializable and replayable via `abacsim -scenario`.
type sweepCase struct {
	scenario  repro.Scenario
	adversary string
	n, m      int
}

// sweepBehaviors are the Byzantine behaviors the sweep samples from, as
// declarative fault specs — including the registry's composable strategies
// (delayed equivocation, targeted split values, replay, and a composed
// crash+noise adversary).
var sweepBehaviors = []struct {
	name  string
	fault repro.FaultSpec
}{
	{"silent", repro.FaultSpec{Kind: "silent"}},
	{"extreme", repro.FaultSpec{Kind: "extreme", Params: map[string]float64{"value": 1e7}}},
	{"tamper", repro.FaultSpec{Kind: "tamper", Params: map[string]float64{"delta": 3}}},
	{"noise", repro.FaultSpec{Kind: "noise", Params: map[string]float64{"amp": 25}}},
	{"delayedequiv", repro.FaultSpec{Kind: "delayedequiv", Params: map[string]float64{"step": 1.5, "after": 4}}},
	{"split", repro.FaultSpec{Kind: "split", Params: map[string]float64{"lo": -100, "hi": 100, "pivot": 2}}},
	{"replay", repro.FaultSpec{Kind: "replay", Params: map[string]float64{"prob": 0.5}}},
	{"crash+noise", repro.FaultSpec{Kind: "crash", Params: map[string]float64{"after": 15, "finalSends": 2},
		Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 40}}}}},
}

// generateSweepCases is the sequential phase: it draws random digraphs,
// keeps those satisfying 3-reach within the path budget, and attaches a
// pseudo-randomly chosen Byzantine behavior at a pseudo-random node.
func generateSweepCases(count int, seed int64, rep *SweepReport) []sweepCase {
	rng := rand.New(rand.NewSource(seed))
	var cases []sweepCase
	for len(cases) < count && rep.Candidates < 50*count {
		rep.Candidates++
		gseed := seed + int64(rep.Candidates)
		n := 5 + rng.Intn(2)
		p := 0.55 + 0.1*rng.Float64()
		g := graph.RandomDigraph(n, p, gseed)
		if ok, _ := cond.Check3Reach(g, 1); !ok {
			continue
		}
		// Keep the flooding affordable: skip graphs whose redundant path
		// count at node 0 exceeds a small budget.
		if _, err := g.CountRedundantPathsTo(0, graph.EmptySet, 30_000); err != nil {
			continue
		}
		rep.Satisfying++

		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64() * 4
		}
		// The draw order (inputs, badNode, behavior) is part of the sweep's
		// seeded identity — do not reorder.
		badNode := rng.Intn(n)
		behavior := sweepBehaviors[rng.Intn(len(sweepBehaviors))]
		fault := behavior.fault
		fault.Node = badNode
		cases = append(cases, sweepCase{
			scenario: repro.Scenario{
				Name: fmt.Sprintf("sweep-%d", gseed),
				Graph: "random:" + strconv.Itoa(n) + ":" +
					strconv.FormatFloat(p, 'g', -1, 64) + ":" + strconv.FormatInt(gseed, 10),
				Protocol: "bw",
				Inputs:   inputs,
				F:        1, K: 4, Eps: 0.25, Seed: gseed,
				Faults: []repro.FaultSpec{fault},
			},
			adversary: behavior.name,
			n:         n, m: g.M(),
		})
	}
	return cases
}

// runSweepCase is the execution phase for one case; cases are independent,
// so these run in parallel.
func runSweepCase(c sweepCase, exec Exec) (SweepRow, error) {
	out, err := runScenario(c.scenario, exec)
	if err != nil {
		return SweepRow{}, err
	}
	return SweepRow{
		Seed: c.scenario.Seed, N: c.n, M: c.m,
		Adversary: c.adversary,
		Converged: out.Converged, Validity: out.ValidityOK,
		Spread: out.Spread, Messages: out.MessagesSent,
	}, nil
}

// RunSweep runs the generality sweep under DefaultExec.
func RunSweep(count int, seed int64) (SweepReport, error) {
	return RunSweepExec(context.Background(), count, seed, DefaultExec)
}

// RunSweepExec runs the generality sweep on the configured engine with the
// configured worker fan-out. Candidate generation is sequential (so the rng
// stream, and therefore the chosen graphs, inputs and fault patterns, are
// identical whatever the worker count); the independent BW executions fan
// across the worker pool; rows are reported in candidate order. The report
// is byte-identical for every Workers setting and every engine. Cancelling
// ctx stops the sweep between runs and surfaces ctx.Err().
func RunSweepExec(ctx context.Context, count int, seed int64, exec Exec) (SweepReport, error) {
	var rep SweepReport
	cases := generateSweepCases(count, seed, &rep)
	rows, err := par.Map(ctx, exec.Workers, len(cases), func(i int) (SweepRow, error) {
		return runSweepCase(cases[i], exec)
	})
	if err != nil {
		return rep, err
	}
	rep.Rows = rows
	return rep, nil
}
