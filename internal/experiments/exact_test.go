package experiments_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
	"repro/internal/experiments"
)

func TestExactMatrixAllPass(t *testing.T) {
	rep, err := experiments.RunExact(1)
	if err != nil {
		t.Fatal(err)
	}
	// Both exact protocols cross every rung with the full adversary axis:
	// the honest baseline, every registered fault kind, and the two
	// composed cells.
	perRung := len(repro.FaultKinds()) + 3
	if want := 2 * 4 * perRung; len(rep.Rows) != want {
		t.Fatalf("matrix has %d rows, want %d", len(rep.Rows), want)
	}
	if !rep.AllPassed() {
		t.Fatalf("exact matrix failures:\n%s", rep.Render())
	}
	for _, row := range rep.Rows {
		if row.Protocol != "acs" {
			continue
		}
		switch row.Adversary {
		case "silent", "silent+linkfaults", "equivocate":
			// Silent origins never broadcast and equivocating origins
			// never assemble an echo quorum, so the agreed subset is
			// exactly the honest n−f — the acceptance bar the issue pins.
			if row.Subset != row.N-row.F {
				t.Errorf("%s: subset %d, want exactly n-f=%d", row.Name, row.Subset, row.N-row.F)
			}
		}
	}
	// The expander family cannot satisfy the exact tier's complete-graph
	// requirement; it must be reported as skipped, not silently absent.
	if len(rep.Skipped) != 2 {
		t.Fatalf("skips: %v", rep.Skipped)
	}
}

// TestExactMatrixDeterministicAcrossWorkersAndEngines: the acceptance
// facts are identical whatever the sweep fan-out and sim engine — only
// wall times move.
func TestExactMatrixDeterministicAcrossWorkersAndEngines(t *testing.T) {
	strip := func(rep experiments.ExactReport) []experiments.ExactRow {
		rows := make([]experiments.ExactRow, len(rep.Rows))
		copy(rows, rep.Rows)
		for i := range rows {
			rows[i].Ms = 0
		}
		return rows
	}
	base, err := experiments.RunExactExec(context.Background(), 5, experiments.Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, exec := range []experiments.Exec{
		{Workers: 4},
		{Engine: "goroutine", Workers: 2},
		{Engine: "parallel", EngineWorkers: 2, Workers: 2},
	} {
		got, err := experiments.RunExactExec(context.Background(), 5, exec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(strip(got), strip(base)) {
			t.Fatalf("report diverged under %+v", exec)
		}
	}
}

// TestExactBenchRuns pins the BENCH_4 cell mapping.
func TestExactBenchRuns(t *testing.T) {
	rep, err := experiments.RunExact(9)
	if err != nil {
		t.Fatal(err)
	}
	runs := rep.BenchRuns()
	if len(runs) != len(rep.Rows) {
		t.Fatalf("%d cells for %d rows", len(runs), len(rep.Rows))
	}
	for i, r := range runs {
		row := rep.Rows[i]
		if r.Name != row.Name || r.Runtime != "sim" || r.Adversary != row.Adversary ||
			r.Protocol != row.Protocol || r.Family != row.Family ||
			r.N != row.N || r.F != row.F || r.Subset != row.Subset ||
			r.Decided != row.Decided || r.Converged != row.Converged || r.Valid != row.Validity {
			t.Fatalf("cell %d diverges from row: %+v vs %+v", i, r, row)
		}
	}
}
