package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro"
	"repro/internal/par"
)

// The attack matrix is the adversary-layer counterpart of the protocol
// conformance experiments: every registered adversary strategy (plus a
// composed strategy and a link-fault cell) crossed with the
// Byzantine-tolerant protocols on their reference graphs. Each cell is a
// declarative Scenario, so any row is individually replayable via
// `abacsim -scenario`. Within each protocol's resilience envelope (one
// Byzantine node, f = 1) every cell must converge with validity —
// AllPassed is the summary assertion the tests pin.

// AttackCell is one (protocol, graph, adversary) cell of the matrix.
type AttackCell struct {
	Protocol  string
	Graph     string
	Adversary string
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
	// LinkStats is non-zero only for link-fault cells.
	LinkStats repro.LinkFaultStats
}

// AttackMatrixReport aggregates the attack-matrix sweep.
type AttackMatrixReport struct {
	Rows []AttackCell
}

// AllPassed reports whether every cell converged with validity.
func (r AttackMatrixReport) AllPassed() bool {
	for _, row := range r.Rows {
		if !row.Converged || !row.Validity {
			return false
		}
	}
	return true
}

// Render prints the matrix.
func (r AttackMatrixReport) Render() string {
	var b strings.Builder
	b.WriteString("attack matrix — protocol x adversary x graph (f=1)\n")
	fmt.Fprintf(&b, "  %-12s %-10s %-22s %-10s %-9s %-10s %-9s\n",
		"protocol", "graph", "adversary", "converged", "validity", "spread", "messages")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-10s %-22s %-10v %-9v %-10.4g %-9d\n",
			row.Protocol, row.Graph, row.Adversary, row.Converged, row.Validity, row.Spread, row.Messages)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// attackTarget is one protocol on its reference graph. Only protocols that
// tolerate one arbitrary Byzantine node appear: crashapprox tolerates
// crash faults only and is exercised by its own experiments.
var attackTargets = []struct {
	protocol string
	graph    string
	inputs   []float64
	k        float64
}{
	{"bw", "fig1a", []float64{0, 4, 1, 3, 2}, 4},
	{"aad", "clique:5", []float64{0, 3, 1, 2, 2}, 3},
	{"iterative", "clique:5", []float64{0, 3, 1, 2, 2}, 3},
}

// attackScenarios builds the matrix's scenario cells: every registered
// adversary with its default params, one composed adversary, and one
// link-fault cell per target.
func attackScenarios(seed int64) []struct {
	s         repro.Scenario
	adversary string
} {
	var cells []struct {
		s         repro.Scenario
		adversary string
	}
	add := func(s repro.Scenario, adversary string) {
		cells = append(cells, struct {
			s         repro.Scenario
			adversary string
		}{s, adversary})
	}
	for ti, tgt := range attackTargets {
		base := repro.Scenario{
			Graph: tgt.graph, Protocol: tgt.protocol, Inputs: tgt.inputs,
			F: 1, K: tgt.k, Eps: 0.25,
		}
		for ai, kind := range repro.FaultKinds() {
			s := base
			s.Name = fmt.Sprintf("attack-%s-%s", tgt.protocol, kind)
			s.Seed = seed + int64(100*ti+ai)
			s.Faults = []repro.FaultSpec{{Node: 1, Kind: kind}}
			add(s, kind)
		}
		// Composed: a crash-after-N node spraying noise until it dies.
		s := base
		s.Name = fmt.Sprintf("attack-%s-crash+noise", tgt.protocol)
		s.Seed = seed + int64(100*ti+90)
		s.Faults = []repro.FaultSpec{{
			Node: 1, Kind: "crash", Params: map[string]float64{"after": 10, "finalSends": 2},
			Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 25}}},
		}}
		add(s, "crash+noise")
		// Link faults: duplication and delay preserve liveness, so the
		// guarantees must survive them.
		s = base
		s.Name = fmt.Sprintf("attack-%s-linkfaults", tgt.protocol)
		s.Seed = seed + int64(100*ti+91)
		s.Faults = []repro.FaultSpec{{Node: 1, Kind: "silent"}}
		s.LinkFaults = []repro.LinkFault{
			{Kind: "duplicate", Edges: [][2]int{{0, 2}}, Params: map[string]float64{"prob": 0.5}},
			{Kind: "delay", Edges: [][2]int{{2, 3}}, Params: map[string]float64{"prob": 0.5, "amount": 7}},
		}
		add(s, "silent+linkfaults")
	}
	return cells
}

// RunAttackMatrix runs the matrix under DefaultExec.
func RunAttackMatrix(seed int64) (AttackMatrixReport, error) {
	return RunAttackMatrixExec(context.Background(), seed, DefaultExec)
}

// RunAttackMatrixExec runs the attack matrix on the configured engine with
// the configured worker fan-out. Cells are independent seeded scenarios,
// so the report is identical for every worker count and engine. Cancelling
// ctx stops the matrix between runs and surfaces ctx.Err().
func RunAttackMatrixExec(ctx context.Context, seed int64, exec Exec) (AttackMatrixReport, error) {
	cells := attackScenarios(seed)
	rows, err := par.Map(ctx, exec.Workers, len(cells), func(i int) (AttackCell, error) {
		out, err := runScenario(cells[i].s, exec)
		if err != nil {
			return AttackCell{}, fmt.Errorf("%s: %w", cells[i].s.Name, err)
		}
		return AttackCell{
			Protocol:  cells[i].s.Protocol,
			Graph:     cells[i].s.Graph,
			Adversary: cells[i].adversary,
			Converged: out.Converged,
			Validity:  out.ValidityOK,
			Spread:    out.Spread,
			Messages:  out.MessagesSent,
			LinkStats: out.LinkStats,
		}, nil
	})
	if err != nil {
		return AttackMatrixReport{}, err
	}
	return AttackMatrixReport{Rows: rows}, nil
}
