package experiments

import (
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/graph"
)

// TestScaleLadderShape pins the E14 case matrix: every ladder size carries
// the three family cells, BW rows use the explicit zero fault bound, and
// the large BW cells are simulator-only.
func TestScaleLadderShape(t *testing.T) {
	cases := ScaleCases(1, 0)
	// Sizes within the build dimension yield three family cells; n=2048 and
	// n=4096 collapse to one note-only case under the default build, and to
	// two runnable iterative cells plus a note-only BW case under graph4096
	// (BW is capped at scaleBWMaxN either way).
	want := 0
	for _, n := range ScaleSizes {
		switch {
		case n > graph.MaxNodes:
			want++
		default:
			want += 3
		}
	}
	if len(cases) != want {
		t.Fatalf("ladder has %d cells, want %d", len(cases), want)
	}
	for _, c := range cases {
		if len(c.Runtimes) == 0 {
			// Note-only case: must explain itself and carry no scenario.
			if c.SkipNote == "" {
				t.Errorf("n=%d %s: runtime-less case without a skip note", c.N, c.Family)
			}
			if c.Scenario.Name != "" {
				t.Errorf("n=%d %s: note-only case carries a scenario", c.N, c.Family)
			}
			continue
		}
		if err := c.Scenario.Validate(); err != nil {
			t.Errorf("%s: %v", c.Scenario.Name, err)
		}
		if c.N > 1024 && len(c.Runtimes) != 1 {
			t.Errorf("%s: rungs above n=1024 must be simulator-only", c.Scenario.Name)
		}
		if c.Scenario.Protocol == "bw" {
			if c.N > scaleBWMaxN {
				t.Errorf("%s: BW rows past n=%d must be note-only", c.Scenario.Name, scaleBWMaxN)
			}
			if c.Scenario.F != repro.FZero {
				t.Errorf("%s: BW ladder rows must use the explicit zero fault bound", c.Scenario.Name)
			}
			wantLoopback := c.N <= scaleLoopbackMaxBW
			hasLoopback := len(c.Runtimes) == 2
			if wantLoopback != hasLoopback {
				t.Errorf("%s: loopback presence = %v, want %v", c.Scenario.Name, hasLoopback, wantLoopback)
			}
			if hasSkip := c.SkipNote != ""; hasSkip == wantLoopback {
				t.Errorf("%s: skip note presence = %v, want %v (every absent runtime needs a reason)",
					c.Scenario.Name, hasSkip, !wantLoopback)
			}
		}
	}
	if got := len(ScaleCases(1, 32)); got != 6 {
		t.Fatalf("maxN=32 ladder has %d cells, want 6", got)
	}
}

// TestScaleSmallRuns executes the bottom of the ladder end to end on both
// runtimes: BW must decide and converge on the cycle rows, the report must
// carry certification notes, and nothing may be silently skipped.
func TestScaleSmallRuns(t *testing.T) {
	rep, err := RunScaleExec(context.Background(), 1, Exec{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 { // 6 cells x {sim, loopback}
		t.Fatalf("rows = %d, want 12", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Protocol == "bw" && (!row.Decided || !row.Converged) {
			t.Errorf("%s on %s: BW cycle row did not converge", row.Name, row.Runtime)
		}
		if row.CertNote == "" {
			t.Errorf("%s: missing certification note", row.Name)
		}
		if !row.Decided {
			t.Errorf("%s on %s: run did not decide", row.Name, row.Runtime)
		}
	}
	if !strings.Contains(rep.Render(), "3-reach") {
		t.Error("render misses the certification column")
	}
}

// TestScaleCertNoteAboveLimit: ladder rows beyond CertLimit must carry the
// explicit skip note, not a fabricated verdict.
func TestScaleCertNoteAboveLimit(t *testing.T) {
	note := certNote("cycle:128", 0)
	if !strings.Contains(note, "skipped") {
		t.Fatalf("cert note for n=128 should record the skip, got %q", note)
	}
	if certNote("cycle:32", 0) != "3-reach=true" {
		t.Fatalf("cycle:32 f=0 should certify, got %q", certNote("cycle:32", 0))
	}
}
