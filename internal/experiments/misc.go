package experiments

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/adversary"
	"repro/internal/cond"
	"repro/internal/graph"
)

// NecessityReport is experiment E7 (Theorem 18).
type NecessityReport struct {
	Graph    string
	F        int
	Result   *adversary.NecessityResult
	Violated bool
}

// Render prints the report.
func (r NecessityReport) Render() string {
	var b strings.Builder
	b.WriteString("E7 / Theorem 18 — necessity of 3-reach (indistinguishability construction)\n")
	fmt.Fprintf(&b, "  graph=%s f=%d\n", r.Graph, r.F)
	if r.Result != nil {
		fmt.Fprintf(&b, "  witness: %s\n", r.Result.Witness.String())
		fmt.Fprintf(&b, "  L=%s R=%s stitching-structure=%v\n", r.Result.L, r.Result.R, r.Result.StructureOK)
		fmt.Fprintf(&b, "  e1: v=%d outputs %.4g; e2: u=%d outputs %.4g; spread=%.4g eps=%.4g\n",
			r.Result.Witness.V, r.Result.VOutput, r.Result.Witness.U, r.Result.UOutput,
			r.Result.Spread, r.Result.Eps)
	}
	fmt.Fprintf(&b, "  convergence violated: %v\n", r.Violated)
	return b.String()
}

// RunNecessity produces the E7 report on K3 (n = 3f for f = 1).
func RunNecessity(seed int64) (NecessityReport, error) {
	g := graph.Clique(3)
	rep := NecessityReport{Graph: g.Name(), F: 1}
	res, err := adversary.RunNecessity(g, 1, 1, 0.25, seed)
	if err != nil {
		return rep, err
	}
	rep.Result = res
	rep.Violated = res.Violated()
	return rep, nil
}

// KReachRow is one row of the E10 hierarchy table.
type KReachRow struct {
	Graph string
	K     int
	F     int
	Holds bool
	Want  bool
}

// KReachReport aggregates E10 (the Appendix A k-reach family).
type KReachReport struct {
	Rows []KReachRow
}

// AllMatch reports whether every row matched its expectation.
func (r KReachReport) AllMatch() bool {
	for _, row := range r.Rows {
		if row.Holds != row.Want {
			return false
		}
	}
	return true
}

// Render prints the table.
func (r KReachReport) Render() string {
	var b strings.Builder
	b.WriteString("E10 / Appendix A — k-reach hierarchy (cliques: k-reach ⟺ n > k·f)\n")
	fmt.Fprintf(&b, "  %-10s %-3s %-3s %-7s %-7s\n", "graph", "k", "f", "holds", "want")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-3d %-3d %-7v %-7v\n", row.Graph, row.K, row.F, row.Holds, row.Want)
	}
	fmt.Fprintf(&b, "  all match: %v\n", r.AllMatch())
	return b.String()
}

// RunKReach produces the E10 report.
func RunKReach() KReachReport {
	var rep KReachReport
	for _, n := range []int{2, 3, 4, 5, 6} {
		g := graph.Clique(n)
		for k := 2; k <= 5; k++ {
			holds, _ := cond.CheckKReach(g, k, 1)
			rep.Rows = append(rep.Rows, KReachRow{
				Graph: g.Name(), K: k, F: 1, Holds: holds, Want: n > k,
			})
		}
	}
	// Directed separations: the cycle satisfies 1-reach but not 2-reach for
	// f=1; the wheel satisfies 3-reach but not 4-reach.
	cyc := graph.DirectedCycle(5)
	h1, _ := cond.Check1Reach(cyc, 1)
	h2, _ := cond.Check2Reach(cyc, 1)
	rep.Rows = append(rep.Rows,
		KReachRow{Graph: cyc.Name(), K: 1, F: 1, Holds: h1, Want: true},
		KReachRow{Graph: cyc.Name(), K: 2, F: 1, Holds: h2, Want: false},
	)
	// The wheel satisfies 4-reach for f=1 (removing any two nodes leaves it
	// connected, so reach sets are 3-of-5 subsets and always intersect) but
	// fails 5-reach (three removals per side can isolate disjoint rim
	// pairs).
	wheel := graph.Fig1a()
	h3, _ := cond.Check3Reach(wheel, 1)
	h4, _ := cond.CheckKReach(wheel, 4, 1)
	h5, _ := cond.CheckKReach(wheel, 5, 1)
	rep.Rows = append(rep.Rows,
		KReachRow{Graph: wheel.Name(), K: 3, F: 1, Holds: h3, Want: true},
		KReachRow{Graph: wheel.Name(), K: 4, F: 1, Holds: h4, Want: true},
		KReachRow{Graph: wheel.Name(), K: 5, F: 1, Holds: h5, Want: false},
	)
	return rep
}

// StructureReport aggregates E11 (Theorems 5 and 12).
type StructureReport struct {
	Rows []StructureRow
}

// StructureRow is one graph's structural verification.
type StructureRow struct {
	Graph   string
	F       int
	T5Pairs int
	T5OK    bool
	T12OK   bool
	Failure string
}

// AllOK reports whether all graphs passed.
func (r StructureReport) AllOK() bool {
	for _, row := range r.Rows {
		if !row.T5OK || !row.T12OK {
			return false
		}
	}
	return true
}

// Render prints the table.
func (r StructureReport) Render() string {
	var b strings.Builder
	b.WriteString("E11 / Theorems 5 & 12 — source-component structure on 3-reach graphs\n")
	fmt.Fprintf(&b, "  %-14s %-3s %-9s %-6s %-6s %s\n", "graph", "f", "T5 pairs", "T5", "T12", "failure")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %-3d %-9d %-6v %-6v %s\n",
			row.Graph, row.F, row.T5Pairs, row.T5OK, row.T12OK, row.Failure)
	}
	return b.String()
}

// RunStructure produces the E11 report.
func RunStructure() StructureReport {
	var rep StructureReport
	cases := []struct {
		g *graph.Graph
		f int
	}{
		{graph.Fig1a(), 1},
		{graph.Fig1bAnalog(), 1},
		{graph.Clique(4), 1},
		{graph.Clique(7), 2},
		{graph.Circulant(7, 1, 2, 3), 1},
	}
	for _, tc := range cases {
		if ok, _ := cond.Check3Reach(tc.g, tc.f); !ok {
			rep.Rows = append(rep.Rows, StructureRow{
				Graph: tc.g.Name(), F: tc.f, Failure: "graph does not satisfy 3-reach (skipped)",
			})
			continue
		}
		t5 := cond.CheckTheorem5(tc.g, tc.f)
		t12 := cond.CheckTheorem12(tc.g, tc.f)
		row := StructureRow{
			Graph: tc.g.Name(), F: tc.f,
			T5Pairs: t5.PairsChecked, T5OK: t5.Ok(), T12OK: t12.Ok(),
		}
		if !t5.Ok() {
			row.Failure = t5.Failure
		} else if !t12.Ok() {
			row.Failure = t12.Failure
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// ScalingRow is one point of the E12 cost study.
type ScalingRow struct {
	Graph     string
	N         int
	F         int
	Threads   int
	Redundant int // redundant paths into node 0
	Messages  int
	Converged bool
}

// ScalingReport aggregates E12.
type ScalingReport struct {
	Rows []ScalingRow
}

// Render prints the table.
func (r ScalingReport) Render() string {
	var b strings.Builder
	b.WriteString("E12 / cost growth — BW on sparse circulant 3-reach graphs (f=1)\n")
	fmt.Fprintf(&b, "  %-14s %-4s %-3s %-8s %-10s %-10s %-9s\n", "graph", "n", "f", "threads", "redPaths", "messages", "converged")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %-4d %-3d %-8d %-10d %-10d %-9v\n",
			row.Graph, row.N, row.F, row.Threads, row.Redundant, row.Messages, row.Converged)
	}
	b.WriteString("  threads grow with C(n-1,<=f); messages with the redundant path count.\n")
	return b.String()
}

// RunScaling produces the E12 report.
func RunScaling(seed int64) (ScalingReport, error) {
	var rep ScalingReport
	for _, n := range []int{5, 6, 7, 8} {
		g := graph.Circulant(n, 1, 2, 3)
		if ok, _ := cond.Check3Reach(g, 1); !ok {
			continue
		}
		red, err := g.CountRedundantPathsTo(0, graph.EmptySet, 0)
		if err != nil {
			return rep, err
		}
		out, err := runScenario(repro.Scenario{
			Name:  fmt.Sprintf("scaling-n%d", n),
			Graph: fmt.Sprintf("circulant:%d:1,2,3", n), Protocol: "bw",
			InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 3},
			F:        1, K: 2, Eps: 0.25, Seed: seed,
		}, DefaultExec)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, ScalingRow{
			Graph: g.Name(), N: n, F: 1,
			Threads:   graph.CountSubsets(n-1, 1),
			Redundant: red,
			Messages:  out.MessagesSent,
			Converged: out.Converged && out.ValidityOK,
		})
	}
	return rep, nil
}
