// Package experiments implements the reproduction harness: one driver per
// table/figure/claim of the paper (see EXPERIMENTS.md's experiment index).
// Each driver returns a structured report with a text rendering;
// cmd/benchtables prints them and the top-level benchmarks re-run them, so
// EXPERIMENTS.md numbers are regenerable with one command. Drivers execute
// on the engine and worker pool configured by Exec (DefaultExec for the
// no-argument entry points); reports are deterministic for a fixed seed
// whatever the engine or fan-out.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cond"
	"repro/internal/graph"
)

// Table1Row is one parameter row of the Table 1 (undirected) verification:
// on undirected graphs the reach conditions must coincide with the
// connectivity/size thresholds the table states.
type Table1Row struct {
	N       int
	P       float64
	F       int
	Samples int
	// Mismatches between each reach condition and its Table 1 threshold:
	// 1-reach vs (n > f ∧ κ > 0... the crash-sync column), 2-reach vs
	// (n > 2f ∧ κ > f), 3-reach vs (n > 3f ∧ κ > 2f).
	Mismatch2 int
	Mismatch3 int
	Holds3    int // samples satisfying 3-reach (coverage indicator)
}

// Table1Report aggregates experiment E1.
type Table1Report struct {
	Rows []Table1Row
}

// Table1 verifies the undirected equivalences of Table 1 on random
// undirected graphs: 2-reach ⟺ (n > 2f ∧ κ(G) > f) — the asynchronous
// crash column — and 3-reach ⟺ (n > 3f ∧ κ(G) > 2f) — the Byzantine
// column.
func Table1(samples int, seed int64) Table1Report {
	var rep Table1Report
	for _, n := range []int{4, 5, 6, 7} {
		for _, p := range []float64{0.4, 0.6, 0.8} {
			for _, f := range []int{1, 2} {
				row := Table1Row{N: n, P: p, F: f, Samples: samples}
				for s := 0; s < samples; s++ {
					g := graph.RandomUndirected(n, p, seed+int64(1000*s)+int64(n*31+int(p*100)+f))
					kappa := g.VertexConnectivity()
					want2 := n > 2*f && kappa > f
					want3 := n > 3*f && kappa > 2*f
					got2, _ := cond.Check2Reach(g, f)
					got3, _ := cond.Check3Reach(g, f)
					if got2 != want2 {
						row.Mismatch2++
					}
					if got3 != want3 {
						row.Mismatch3++
					}
					if got3 {
						row.Holds3++
					}
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep
}

// Mismatches returns the total number of equivalence violations (expected 0).
func (r Table1Report) Mismatches() int {
	total := 0
	for _, row := range r.Rows {
		total += row.Mismatch2 + row.Mismatch3
	}
	return total
}

// Render prints the report as an aligned table.
func (r Table1Report) Render() string {
	var b strings.Builder
	b.WriteString("E1 / Table 1 — undirected graphs: reach conditions vs connectivity thresholds\n")
	b.WriteString("  2-reach ⟺ n>2f ∧ κ>f (crash, async) ; 3-reach ⟺ n>3f ∧ κ>2f (Byzantine)\n")
	fmt.Fprintf(&b, "  %-4s %-5s %-3s %-8s %-10s %-10s %-8s\n", "n", "p", "f", "samples", "mismatch2", "mismatch3", "3-reach")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4d %-5.2f %-3d %-8d %-10d %-10d %-8d\n",
			row.N, row.P, row.F, row.Samples, row.Mismatch2, row.Mismatch3, row.Holds3)
	}
	fmt.Fprintf(&b, "  total mismatches: %d (expected 0)\n", r.Mismatches())
	return b.String()
}

// Table2Row is one cell verification of Table 2: a reach condition versus
// its Tseng–Vaidya partition form.
type Table2Row struct {
	Condition string
	Checked   int
	Mismatch  int
	HoldCount int
}

// Table2Report aggregates experiment E2.
type Table2Report struct {
	Rows []Table2Row
}

// Table2 verifies Theorem 17's equivalences — CCS ⟺ 1-reach,
// CCA ⟺ 2-reach, BCS ⟺ 3-reach — exhaustively over all digraphs on 3
// nodes and on random digraphs of orders 4..6.
func Table2(samples int, seed int64) Table2Report {
	rows := map[string]*Table2Row{
		"CCS=1reach": {Condition: "CCS ⟺ 1-reach (crash, synchronous)"},
		"CCA=2reach": {Condition: "CCA ⟺ 2-reach (crash, asynchronous)"},
		"BCS=3reach": {Condition: "BCS ⟺ 3-reach (Byzantine, both — this paper)"},
	}
	check := func(g *graph.Graph, f int) {
		r1, _ := cond.Check1Reach(g, f)
		c1, _ := cond.CheckCCS(g, f)
		r2, _ := cond.Check2Reach(g, f)
		c2, _ := cond.CheckCCA(g, f)
		r3, _ := cond.Check3Reach(g, f)
		c3, _ := cond.CheckBCS(g, f)
		update := func(key string, a, b bool) {
			row := rows[key]
			row.Checked++
			if a != b {
				row.Mismatch++
			}
			if a {
				row.HoldCount++
			}
		}
		update("CCS=1reach", r1, c1)
		update("CCA=2reach", r2, c2)
		update("BCS=3reach", r3, c3)
	}
	// Exhaustive n=3.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	for mask := 0; mask < 64; mask++ {
		g := graph.New(3)
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				g.MustAddEdge(e[0], e[1])
			}
		}
		check(g, 1)
	}
	// Randomized larger orders.
	for s := 0; s < samples; s++ {
		check(graph.RandomDigraph(4, 0.4, seed+int64(s)), 1)
		check(graph.RandomDigraph(5, 0.5, seed+int64(s)+500), 1)
		check(graph.RandomDigraph(6, 0.6, seed+int64(s)+900), 2)
	}
	var rep Table2Report
	for _, key := range []string{"CCS=1reach", "CCA=2reach", "BCS=3reach"} {
		rep.Rows = append(rep.Rows, *rows[key])
	}
	return rep
}

// Mismatches returns the total equivalence violations (expected 0).
func (r Table2Report) Mismatches() int {
	total := 0
	for _, row := range r.Rows {
		total += row.Mismatch
	}
	return total
}

// Render prints the report.
func (r Table2Report) Render() string {
	var b strings.Builder
	b.WriteString("E2 / Table 2 — directed graphs: Theorem 17 equivalences\n")
	fmt.Fprintf(&b, "  %-48s %-8s %-9s %-6s\n", "equivalence", "checked", "mismatch", "holds")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-48s %-8d %-9d %-6d\n", row.Condition, row.Checked, row.Mismatch, row.HoldCount)
	}
	fmt.Fprintf(&b, "  total mismatches: %d (expected 0)\n", r.Mismatches())
	return b.String()
}

// Fig1aReport verifies the Figure 1(a) claims.
type Fig1aReport struct {
	N, M        int
	Kappa       int
	ThreeReach  bool
	MinimalEdge bool // removing any edge breaks κ > 2f
	BWConverged bool
	BWSpread    float64
	BWMessages  int
}

// Render prints the report.
func (r Fig1aReport) Render() string {
	var b strings.Builder
	b.WriteString("E3 / Figure 1(a) — W4 stand-in, f = 1\n")
	fmt.Fprintf(&b, "  n=%d m=%d κ=%d (κ>2f: %v, n>3f: %v)\n", r.N, r.M, r.Kappa, r.Kappa > 2, r.N > 3)
	fmt.Fprintf(&b, "  3-reach(f=1): %v\n", r.ThreeReach)
	fmt.Fprintf(&b, "  removing any edge breaks κ>2f: %v\n", r.MinimalEdge)
	fmt.Fprintf(&b, "  BW with 1 Byzantine: converged=%v spread=%.4g messages=%d\n",
		r.BWConverged, r.BWSpread, r.BWMessages)
	return b.String()
}

// Fig1bReport verifies the Figure 1(b) claims.
type Fig1bReport struct {
	N, M            int
	ThreeReachF2    bool
	DisjointVW      int // max disjoint v1->w1 paths (paper: 2f = 4)
	DisjointWV      int
	RMTImpossible   bool // some pair below the 2f+1 all-pair RMT threshold
	BridgeBreak     bool // removing K2->K1 bridges kills 3-reach
	AnalogConverged bool // BW end-to-end on the scaled analog
	AnalogSpread    float64
	AnalogMessages  int
}

// Render prints the report.
func (r Fig1bReport) Render() string {
	var b strings.Builder
	b.WriteString("E4 / Figure 1(b) — two K7 cliques + 8 bridges, f = 2\n")
	fmt.Fprintf(&b, "  n=%d m=%d\n", r.N, r.M)
	fmt.Fprintf(&b, "  3-reach(f=2), exhaustive: %v\n", r.ThreeReachF2)
	fmt.Fprintf(&b, "  disjoint paths v1→w1: %d, w1→v1: %d (2f = 4; 2f+1 needed for RMT)\n", r.DisjointVW, r.DisjointWV)
	fmt.Fprintf(&b, "  all-pair RMT impossible: %v, consensus still possible (Theorem 4)\n", r.RMTImpossible)
	fmt.Fprintf(&b, "  removing K2→K1 bridges breaks 3-reach: %v\n", r.BridgeBreak)
	fmt.Fprintf(&b, "  BW on scaled analog (2×K4, f=1): converged=%v spread=%.4g messages=%d\n",
		r.AnalogConverged, r.AnalogSpread, r.AnalogMessages)
	return b.String()
}
