package experiments

// Exec selects how experiment executions run: which sim engine invokes the
// protocol handlers (via each driver's Scenario.Engine), and how many
// workers fan out the independent runs of a sweep. The zero value — inline
// engine, one worker per CPU for sweeps — is the fast default.
type Exec struct {
	// Engine names a sim engine ("inline", "goroutine", "parallel"); ""
	// selects inline.
	Engine string
	// EngineWorkers is the worker count for engines that take one
	// ("parallel"); 0 means the engine default. Engine workers never change
	// results. When sweeps fan out too, the engine clamps itself to a sweep
	// lane's fair CPU share (par.NestedWorkers) rather than multiplying the
	// two budgets.
	EngineWorkers int
	// Workers bounds the sweep fan-out: < 1 means one worker per CPU,
	// 1 runs sequentially. Single executions ignore it.
	Workers int
}

// DefaultExec is the process-wide execution configuration used by the
// drivers that take no explicit Exec. Commands may set it once at startup
// before running any driver; it must not be mutated afterwards (sweep
// workers read it concurrently).
var DefaultExec Exec
