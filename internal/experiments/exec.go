package experiments

// Exec selects how experiment executions run: which sim engine invokes the
// protocol handlers (via each driver's Scenario.Engine), and how many
// workers fan out the independent runs of a sweep. The zero value — inline
// engine, one worker per CPU for sweeps — is the fast default.
type Exec struct {
	// Engine names a sim engine ("inline", "goroutine"); "" selects inline.
	Engine string
	// Workers bounds the sweep fan-out: < 1 means one worker per CPU,
	// 1 runs sequentially. Single executions ignore it.
	Workers int
}

// DefaultExec is the process-wide execution configuration used by the
// drivers that take no explicit Exec. Commands may set it once at startup
// before running any driver; it must not be mutated afterwards (sweep
// workers read it concurrently).
var DefaultExec Exec
