package experiments

import (
	"io"
	"testing"

	"repro/internal/bw"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The E16b microbenchmark tier: per-frame cost of the live tier's hot-path
// primitives — encode into a reused buffer, length-prefixed write, buffered
// pooled read, and the bounded queue's batch drain. Cells carry NsPerFrame
// and AllocsPerFrame; the acceptance bar is ~0 allocs/op steady state on
// all of them (the same arena/freelist lesson PR 5 applied to the
// simulator's transport pool, now on the stack abacd serves traffic with).
// Run via abacload -selfhost -framebench; the cells land in BENCH_6 next
// to the service-tier throughput rows.

// frameBenchMessage is the representative steady-state frame: a BW VAL
// flood with a short relay path, a few dozen wire bytes like most protocol
// traffic.
func frameBenchMessage() transport.Message {
	return transport.Message{
		From: 3, To: 5,
		Payload: bw.ValPayload{Round: 2, Value: 0.625, Path: graph.Path{3, 1, 5}},
	}
}

// repeatReader serves one frame stream in a loop — an infinite in-memory
// peer for the read benchmark.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// FramePathBenchCells runs the micro tier and returns one BenchRun per
// primitive (Runtime "micro"; Ms mirrors ns/op so generic tooling still
// sorts sensibly).
func FramePathBenchCells() []BenchRun {
	msg := frameBenchMessage()
	const inst = uint64(77<<10 | 3)
	body, err := wire.EncodeInstanceMessage(inst, msg)
	if err != nil {
		panic(err) // a codec that cannot carry its own bench message is a programming error
	}

	var cells []BenchRun
	add := func(name string, r testing.BenchmarkResult) {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		cells = append(cells, BenchRun{
			Name:           name,
			Runtime:        "micro",
			Ms:             ns / 1e6,
			NsPerFrame:     ns,
			AllocsPerFrame: float64(r.AllocsPerOp()),
			Decided:        true,
			Valid:          true,
		})
	}

	add("frame-encode", testing.Benchmark(func(b *testing.B) {
		buf := wire.GetBuf()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if buf, err = wire.AppendInstanceMessage(buf[:0], inst, msg); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		wire.PutBuf(buf)
	}))

	add("frame-write", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := wire.WriteRawFrame(io.Discard, body); err != nil {
				b.Fatal(err)
			}
		}
	}))

	add("frame-read", testing.Benchmark(func(b *testing.B) {
		// One bufio fill ingests many frames, like a burst on a socket.
		var stream []byte
		for i := 0; i < 64; i++ {
			stream, _ = wire.AppendRawFrame(stream, body)
		}
		fr := wire.NewFrameReader(&repeatReader{data: stream})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := fr.Next()
			if err != nil {
				b.Fatal(err)
			}
			wire.PutBuf(f)
		}
	}))

	add("queue-drain", testing.Benchmark(cluster.QueueDrainBench))
	return cells
}

// DispatchBenchCell runs the E16c dispatch micro-cell: the daemon's
// batched inbound dispatch from a pre-peeked frame burst to the instance
// inbox and back out (see service.DispatchBench). Same cell shape as the
// E16b primitives: Runtime "micro", NsPerFrame/AllocsPerFrame with ~0
// allocs steady state as the acceptance bar.
func DispatchBenchCell() BenchRun {
	r := testing.Benchmark(service.DispatchBench)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return BenchRun{
		Name:           "dispatch-inbox",
		Runtime:        "micro",
		Ms:             ns / 1e6,
		NsPerFrame:     ns,
		AllocsPerFrame: float64(r.AllocsPerOp()),
		Decided:        true,
		Valid:          true,
	}
}
