package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/service"
)

// The E16 throughput study: how many pipelined consensus instances per
// second a self-hosted daemon fleet sustains, per protocol, with the
// bounded-queue backpressure accounting that makes the number honest. One
// BenchRun cell per protocol; the report is BENCH_5.json.

// ServiceBenchConfig parameterizes one E16 measurement.
type ServiceBenchConfig struct {
	// Scenario is the fleet's shared base (graph, inputs, eps, seed). The
	// default is the committed examples/service.json shape: acs on clique:8.
	Scenario repro.Scenario
	// Protocols to measure, one cell each (default: the scenario's).
	Protocols []string
	// Duration is the measurement window per protocol (default 3s).
	Duration time.Duration
	// Concurrency is the number of closed-loop submit workers, spread
	// round-robin across the fleet's client planes (default 2 per daemon).
	Concurrency int
	// FrameBench appends the E16b frame-path microbenchmark cells
	// (encode/write/read/queue-drain, Runtime "micro") to the report.
	FrameBench bool
	// DispatchBench appends the E16c dispatch micro-cell: ns/frame and
	// allocs/frame through the daemon's batched dispatch→inbox hand-off.
	DispatchBench bool
	// GoMaxProcs, when non-empty, runs the whole cell set once per entry
	// with runtime.GOMAXPROCS pinned to it, stamping each cell's Workers
	// column — the multi-core sweep (E16c). Cells keep their BaseKey, so
	// benchdiff's fallback compares every rung against a plain baseline.
	// Empty means: run once at the ambient GOMAXPROCS, Workers unset.
	GoMaxProcs []int
}

// DefaultServiceScenario is the committed service-tier base scenario.
func DefaultServiceScenario() repro.Scenario {
	return repro.Scenario{
		Name:     "service-clique8",
		Graph:    "clique:8",
		Protocol: "acs",
		InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
		F:        1,
		Seed:     11,
	}
}

// RunServiceBench deploys an in-process fleet, drives closed-loop load
// through the JSON-lines client plane for the window, and reports one cell
// per protocol. Decisions counts completed submit→decide round trips at
// the submitting vertex; the queue columns aggregate the whole fleet's
// bounded-queue accounting over that protocol's window.
func RunServiceBench(ctx context.Context, cfg ServiceBenchConfig) (*BenchReport, error) {
	if cfg.Scenario.Graph == "" {
		cfg.Scenario = DefaultServiceScenario()
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []string{cfg.Scenario.Protocol}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}

	dep, err := service.Deploy(ctx, service.DeployConfig{
		Scenario:    cfg.Scenario,
		Protocols:   cfg.Protocols,
		WithClients: true,
		Linger:      500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2 * len(dep.Daemons)
	}

	report := &BenchReport{
		Suite: "service",
		Seed:  cfg.Scenario.Seed,
		Notes: []string{
			fmt.Sprintf("E16: closed-loop load, %d workers over %d daemons' client planes, %s window per protocol",
				cfg.Concurrency, len(dep.Daemons), cfg.Duration),
			"decisions count submit->decide round trips at the submitting vertex; waits/shed aggregate every daemon's bounded per-peer queues",
		},
	}

	sweep := cfg.GoMaxProcs
	if len(sweep) == 0 {
		sweep = []int{0} // one pass at the ambient setting, Workers unset
	} else {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"E16c: GOMAXPROCS sweep %v on a %d-CPU host; each cell's workers column records the sweep rung",
			sweep, runtime.NumCPU()))
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, gmp := range sweep {
		if gmp > 0 {
			runtime.GOMAXPROCS(gmp)
		}
		stamp := func(cell BenchRun) BenchRun {
			if gmp > 0 {
				cell.Workers = gmp
			}
			return cell
		}
		for _, proto := range cfg.Protocols {
			cell, err := serviceBenchCell(ctx, dep, cfg, proto)
			if err != nil {
				return nil, fmt.Errorf("experiments: service bench %q: %w", proto, err)
			}
			report.Runs = append(report.Runs, stamp(cell))
		}
		if cfg.FrameBench {
			for _, cell := range FramePathBenchCells() {
				report.Runs = append(report.Runs, stamp(cell))
			}
		}
		if cfg.DispatchBench {
			report.Runs = append(report.Runs, stamp(DispatchBenchCell()))
		}
	}
	totals := fleetQueueTotals(dep)
	report.Notes = append(report.Notes, fmt.Sprintf(
		"observed over the whole run: %d backpressure waits, %d shed frames (bounded per-peer queues; also on every daemon's /metrics)",
		totals.waits, totals.shed))
	if cfg.FrameBench {
		report.Notes = append(report.Notes,
			"micro cells (E16b): testing.Benchmark over the frame-path primitives; allocsPerFrame is allocs/op, the ~0 steady-state acceptance bar",
			"service cells' allocsPerFrame: whole-process heap allocs over the window / frames enqueued fleet-wide — an upper bound including client-plane and machine work")
	}
	if cfg.DispatchBench {
		report.Notes = append(report.Notes,
			"dispatch-inbox cell (E16c): one pre-peeked 64-frame burst through the daemon's batched dispatch (grouping, shard/memo lookup, ready gate, slab inbox push) and back out of the inbox; ns/frame includes re-encoding each frame into a pooled buffer")
	}
	return report, nil
}

func serviceBenchCell(ctx context.Context, dep *service.Deployment, cfg ServiceBenchConfig, proto string) (BenchRun, error) {
	before := fleetQueueTotals(dep)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	var decisions atomic.Int64
	var firstErr atomic.Value

	wctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		addr := dep.ClientAddrs[w%len(dep.ClientAddrs)]
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			cl, err := service.Dial(addr, 0)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cl.Close()
			go func() { // end the blocking round trip at window close
				<-wctx.Done()
				cl.Close()
			}()
			for wctx.Err() == nil {
				if _, err := cl.SubmitWait(proto); err != nil {
					if wctx.Err() == nil {
						firstErr.CompareAndSwap(nil, err)
					}
					return
				}
				decisions.Add(1)
			}
		}(addr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return BenchRun{}, err
	}
	dec := decisions.Load()
	if dec == 0 {
		return BenchRun{}, fmt.Errorf("no instance decided inside the %s window", cfg.Duration)
	}

	// Let in-flight retirements settle so the queue delta is the window's.
	time.Sleep(100 * time.Millisecond)
	after := fleetQueueTotals(dep)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	cell := BenchRun{
		Name:      fmt.Sprintf("%s-%s", cfg.Scenario.Name, proto),
		Runtime:   "service",
		Protocol:  proto,
		N:         len(dep.Daemons),
		F:         cfg.Scenario.F,
		Ms:        float64(elapsed) / float64(time.Millisecond),
		Decisions: dec,
		PerSec:    float64(dec) / elapsed.Seconds(),
		Waits:     after.waits - before.waits,
		Shed:      after.shed - before.shed,
		Decided:   true,
		Valid:     true,
	}
	// Whole-process allocations over the window per frame the fleet
	// enqueued: an upper bound (client plane, machines, GC assist all
	// count), honest about everything the service does per frame.
	if enq := after.enqueued - before.enqueued; enq > 0 {
		cell.AllocsPerFrame = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(enq)
	}
	return cell, nil
}

type queueTotals struct{ waits, shed, enqueued int64 }

func fleetQueueTotals(dep *service.Deployment) queueTotals {
	var t queueTotals
	for _, d := range dep.Daemons {
		s := d.Snapshot()
		t.waits += s.Queue.Waits
		t.shed += s.Queue.Shed + s.PendingShed
		t.enqueued += s.Queue.Enqueued
	}
	return t
}
