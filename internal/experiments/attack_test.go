package experiments_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/experiments"
)

func TestAttackMatrixAllPass(t *testing.T) {
	rep, err := experiments.RunAttackMatrix(777)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered adversary appears for every target protocol, plus
	// the composed and link-fault cells.
	perTarget := len(repro.FaultKinds()) + 2
	if len(rep.Rows) < 3*perTarget {
		t.Fatalf("matrix has %d rows, want at least %d", len(rep.Rows), 3*perTarget)
	}
	if !rep.AllPassed() {
		t.Fatalf("attack matrix failures:\n%s", rep.Render())
	}
	sawLink := false
	for _, row := range rep.Rows {
		if row.LinkStats.Duplicated > 0 || row.LinkStats.Delayed > 0 {
			sawLink = true
		}
	}
	if !sawLink {
		t.Error("no link-fault cell reported interventions")
	}
}

// TestAttackMatrixDeterministicAcrossWorkersAndEngines extends the sweep
// determinism guarantee to the attack matrix: the report is byte-identical
// whatever the worker count and engine.
func TestAttackMatrixDeterministicAcrossWorkersAndEngines(t *testing.T) {
	base, err := experiments.RunAttackMatrixExec(context.Background(), 5, experiments.Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, exec := range []experiments.Exec{
		{Workers: 4},
		{Workers: 4, Engine: "goroutine"},
	} {
		rep, err := experiments.RunAttackMatrixExec(context.Background(), 5, exec)
		if err != nil {
			t.Fatalf("%+v: %v", exec, err)
		}
		if rep.Render() != base.Render() {
			t.Fatalf("%+v diverged:\n%s\nvs\n%s", exec, rep.Render(), base.Render())
		}
	}
}
