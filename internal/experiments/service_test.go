package experiments

import (
	"context"
	"testing"
	"time"

	"repro"
)

// TestRunServiceBenchSmoke runs the E16 harness end to end on a small
// fleet with a short window: the report must carry one valid cell per
// protocol with at least one decided instance, and the fleet must tear
// down cleanly. This is the tier-1 guard for the BENCH_5 pipeline; the
// committed numbers come from the full clique:8 run.
func TestRunServiceBenchSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	report, err := RunServiceBench(ctx, ServiceBenchConfig{
		Scenario: repro.Scenario{
			Name:     "service-smoke",
			Graph:    "clique:4",
			Protocol: "acs",
			InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
			F:        1,
			Seed:     11,
		},
		Protocols: []string{"acs"},
		Duration:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Suite != "service" {
		t.Fatalf("suite = %q, want service", report.Suite)
	}
	if len(report.Runs) != 1 {
		t.Fatalf("got %d cells, want 1", len(report.Runs))
	}
	cell := report.Runs[0]
	if cell.Name != "service-smoke-acs" || cell.Protocol != "acs" {
		t.Fatalf("cell identity = %q/%q", cell.Name, cell.Protocol)
	}
	if cell.Decisions <= 0 || cell.PerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", cell)
	}
	if !cell.Decided || !cell.Valid {
		t.Fatalf("cell not marked decided+valid: %+v", cell)
	}
	if cell.N != 4 || cell.F != 1 {
		t.Fatalf("cell shape = n%d f%d, want n4 f1", cell.N, cell.F)
	}
	if len(report.Notes) == 0 {
		t.Fatal("report carries no measurement notes")
	}
}
