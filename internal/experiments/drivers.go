package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro"
	"repro/internal/bw"
	"repro/internal/cond"
	"repro/internal/graph"
)

// runScenario executes one declarative scenario on the engine configured by
// exec. Every driver below goes through this: each experiment cell IS a
// (graph, adversary, schedule) triple in the Scenario sense, so the tables
// are assembled from the same replayable specs the CLIs accept.
func runScenario(s repro.Scenario, exec Exec) (*repro.Result, error) {
	s.Engine = exec.Engine
	s.EngineWorkers = exec.EngineWorkers
	return s.Run()
}

// spreadOf computes max-min over a round's recorded values.
func spreadOf(histories map[int][]float64, round int) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, h := range histories {
		if round < len(h) {
			min, max = math.Min(min, h[round]), math.Max(max, h[round])
		}
	}
	return max - min
}

// RunFig1a produces the E3 report.
func RunFig1a(seed int64) (Fig1aReport, error) {
	g := graph.Fig1a()
	rep := Fig1aReport{N: g.N(), M: g.M(), Kappa: g.VertexConnectivity()}
	rep.ThreeReach, _ = cond.Check3Reach(g, 1)

	rep.MinimalEdge = true
	for _, e := range g.Edges() {
		if e[0] > e[1] {
			continue
		}
		c := g.Clone()
		c.RemoveEdge(e[0], e[1])
		c.RemoveEdge(e[1], e[0])
		if c.VertexConnectivity() > 2 {
			rep.MinimalEdge = false
		}
	}

	out, err := runScenario(repro.Scenario{
		Name: "fig1a-bw", Graph: "fig1a", Protocol: "bw",
		Inputs: []float64{0, 4, 1, 3, 2},
		F:      1, K: 4, Eps: 0.25, Seed: seed,
		Faults: []repro.FaultSpec{{Node: 1, Kind: "extreme", Params: map[string]float64{"value": 1e6}}},
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.BWConverged = out.Converged && out.ValidityOK
	rep.BWSpread = out.Spread
	rep.BWMessages = out.MessagesSent
	return rep, nil
}

// RunFig1b produces the E4 report. The exhaustive f=2 check on the 14-node
// graph takes a few hundred milliseconds; the BW run uses the scaled analog
// (see DESIGN.md fidelity note 7).
func RunFig1b(seed int64) (Fig1bReport, error) {
	g := graph.Fig1b()
	rep := Fig1bReport{N: g.N(), M: g.M()}
	rep.ThreeReachF2, _ = cond.Check3Reach(g, 2)
	rep.DisjointVW = g.MaxDisjointPaths(0, 7, graph.EmptySet)
	rep.DisjointWV = g.MaxDisjointPaths(7, 0, graph.EmptySet)
	rep.RMTImpossible = rep.DisjointVW < 2*2+1
	broken := g.Clone()
	for i := 3; i < 7; i++ {
		broken.RemoveEdge(i+7, i)
	}
	ok, _ := cond.Check3Reach(broken, 2)
	rep.BridgeBreak = !ok

	out, err := runScenario(repro.Scenario{
		Name: "fig1b-analog-bw", Graph: "fig1b-analog", Protocol: "bw",
		Inputs: []float64{0, 0.5, 1, 0.25, 0.75, 1, 0, 0.5},
		F:      1, K: 1, Eps: 0.25, Seed: seed,
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.AnalogConverged = out.Converged && out.ValidityOK
	rep.AnalogSpread = out.Spread
	rep.AnalogMessages = out.MessagesSent
	return rep, nil
}

// SufficiencyCase is one (graph, adversary) cell of the E5 matrix.
type SufficiencyCase struct {
	Graph     string
	Adversary string
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// SufficiencyReport aggregates experiment E5 (Theorem 4's constructive
// side): BW achieves approximate consensus on 3-reach graphs under every
// implemented Byzantine behavior.
type SufficiencyReport struct {
	Cases []SufficiencyCase
}

// AllPassed reports whether every cell converged with validity.
func (r SufficiencyReport) AllPassed() bool {
	for _, c := range r.Cases {
		if !c.Converged || !c.Validity {
			return false
		}
	}
	return true
}

// Render prints the matrix.
func (r SufficiencyReport) Render() string {
	var b strings.Builder
	b.WriteString("E5 / Theorem 4 sufficiency — BW under Byzantine adversaries (3-reach graphs)\n")
	fmt.Fprintf(&b, "  %-14s %-12s %-10s %-9s %-10s %-9s\n", "graph", "adversary", "converged", "validity", "spread", "messages")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-14s %-12s %-10v %-9v %-10.4g %-9d\n",
			c.Graph, c.Adversary, c.Converged, c.Validity, c.Spread, c.Messages)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// sufficiencyAdversaries are the E5 fault columns: node 1 exhibits each
// classic fault behavior (the empty kind is the honest control).
var sufficiencyAdversaries = []struct {
	name   string
	kind   string
	params map[string]float64
}{
	{"honest", "", nil},
	{"silent", "silent", nil},
	{"crash", "crash", map[string]float64{"after": 25}},
	{"extreme", "extreme", map[string]float64{"value": -1e9}},
	{"equivocate", "equivocate", map[string]float64{"step": 0.9}},
	{"tamper", "tamper", map[string]float64{"delta": 11}},
	{"noise", "noise", map[string]float64{"amp": 50}},
}

// RunSufficiency produces the E5 report.
func RunSufficiency(seed int64) (SufficiencyReport, error) {
	graphSpecs := []string{"clique:4", "clique:5", "fig1a"}

	var rep SufficiencyReport
	for _, spec := range graphSpecs {
		g, err := graph.Named(spec)
		if err != nil {
			return rep, err
		}
		inputs := make([]float64, g.N())
		for i := range inputs {
			inputs[i] = float64((i * 7) % 5)
		}
		for _, adv := range sufficiencyAdversaries {
			s := repro.Scenario{
				Name: spec + "-" + adv.name, Graph: spec, Protocol: "bw",
				Inputs: inputs,
				F:      1, K: 4, Eps: 0.25, Seed: seed + int64(len(rep.Cases)),
			}
			if adv.kind != "" {
				s.Faults = []repro.FaultSpec{{Node: 1, Kind: adv.kind, Params: adv.params}}
			}
			out, err := runScenario(s, DefaultExec)
			if err != nil {
				return rep, err
			}
			rep.Cases = append(rep.Cases, SufficiencyCase{
				Graph:     g.Name(),
				Adversary: adv.name,
				Converged: out.Converged,
				Validity:  out.ValidityOK,
				Spread:    out.Spread,
				Messages:  out.MessagesSent,
			})
		}
	}
	return rep, nil
}

// ConvergenceReport is experiment E6: measured per-round contraction
// against the Lemma 15 bound.
type ConvergenceReport struct {
	Graph      string
	K, Eps     float64
	Rounds     int
	Spreads    []float64 // measured U[r] - µ[r]
	Bound      []float64 // K / 2^r
	Violations int
}

// Render prints the series.
func (r ConvergenceReport) Render() string {
	var b strings.Builder
	b.WriteString("E6 / Lemma 15 — per-round contraction (BW)\n")
	fmt.Fprintf(&b, "  graph=%s K=%g eps=%g rounds=%d\n", r.Graph, r.K, r.Eps, r.Rounds)
	fmt.Fprintf(&b, "  %-6s %-14s %-14s\n", "round", "measured", "bound K/2^r")
	for i := range r.Spreads {
		fmt.Fprintf(&b, "  %-6d %-14.6g %-14.6g\n", i+1, r.Spreads[i], r.Bound[i])
	}
	fmt.Fprintf(&b, "  bound violations: %d (expected 0)\n", r.Violations)
	return b.String()
}

// RunConvergence produces the E6 report on the Figure 1(a) graph with a
// Byzantine extreme-value injector.
func RunConvergence(seed int64) (ConvergenceReport, error) {
	k, eps := 8.0, 0.2
	rep := ConvergenceReport{Graph: "fig1a", K: k, Eps: eps, Rounds: bw.RoundsFor(k, eps)}
	out, err := runScenario(repro.Scenario{
		Name: "fig1a-contraction", Graph: "fig1a", Protocol: "bw",
		Inputs: []float64{0, 8, 4, 6, 2},
		F:      1, K: k, Eps: eps, Seed: seed,
		Faults: []repro.FaultSpec{{Node: 3, Kind: "extreme", Params: map[string]float64{"value": 1e9}}},
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	bound := k
	for r := 0; r < rep.Rounds; r++ {
		bound /= 2
		rep.Spreads = append(rep.Spreads, spreadOf(out.Histories, r))
		rep.Bound = append(rep.Bound, bound)
		if rep.Spreads[r] > bound+1e-9 {
			rep.Violations++
		}
	}
	return rep, nil
}

// AADComparison is experiment E8: AAD vs BW on cliques.
type AADComparison struct {
	N, F        int
	AADMessages int
	BWMessages  int
	AADSpread   float64
	BWSpread    float64
	BothOK      bool
}

// AADReport aggregates E8.
type AADReport struct {
	Rows []AADComparison
}

// Render prints the comparison.
func (r AADReport) Render() string {
	var b strings.Builder
	b.WriteString("E8 / Abraham–Amit–Dolev baseline vs BW on cliques (f=1)\n")
	fmt.Fprintf(&b, "  %-4s %-4s %-12s %-12s %-12s %-12s %-6s\n", "n", "f", "aadMsgs", "bwMsgs", "aadSpread", "bwSpread", "ok")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4d %-4d %-12d %-12d %-12.4g %-12.4g %-6v\n",
			row.N, row.F, row.AADMessages, row.BWMessages, row.AADSpread, row.BWSpread, row.BothOK)
	}
	b.WriteString("  BW pays a path-flooding overhead for directed-graph generality;\n")
	b.WriteString("  AAD exploits the clique's reliable broadcast.\n")
	return b.String()
}

// RunAADComparison produces the E8 report: the same clique, inputs,
// adversary and seed, run under both protocols by switching the scenario's
// Protocol name.
func RunAADComparison(seed int64) (AADReport, error) {
	var rep AADReport
	k, eps := 3.0, 0.2
	for _, n := range []int{4, 5} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64((i * 3) % 4)
		}
		base := repro.Scenario{
			Graph:  fmt.Sprintf("clique:%d", n),
			Inputs: inputs,
			F:      1, K: k, Eps: eps, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		}
		aadRun := base
		aadRun.Protocol = "aad"
		aadOut, err := runScenario(aadRun, DefaultExec)
		if err != nil {
			return rep, err
		}
		bwRun := base
		bwRun.Protocol = "bw"
		bwOut, err := runScenario(bwRun, DefaultExec)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, AADComparison{
			N: n, F: 1,
			AADMessages: aadOut.MessagesSent, BWMessages: bwOut.MessagesSent,
			AADSpread: aadOut.Spread, BWSpread: bwOut.Spread,
			BothOK: aadOut.Converged && aadOut.ValidityOK && bwOut.Converged && bwOut.ValidityOK,
		})
	}
	return rep, nil
}

// IterativeReport is experiment E9: the local-algorithm ablation.
type IterativeReport struct {
	CliqueConverged   bool
	CliqueSpread      float64
	CliqueRobust      bool // K5 is (f+1,f+1)-robust: W-MSR's tight condition
	TwoCliqueSpread   float64
	TwoCliqueStalled  bool
	TwoClique3Reach   bool // the separation: 3-reach holds ...
	TwoCliqueRobust   bool // ... while (f+1,f+1)-robustness fails
	BWTwoCliqueSpread float64
	BWConverged       bool
}

// Render prints the ablation.
func (r IterativeReport) Render() string {
	var b strings.Builder
	b.WriteString("E9 / iterative (local trimmed-mean) ablation\n")
	fmt.Fprintf(&b, "  clique K5 ((2,2)-robust=%v):  iterative converges=%v (spread %.4g)\n",
		r.CliqueRobust, r.CliqueConverged, r.CliqueSpread)
	fmt.Fprintf(&b, "  two-clique: 3-reach=%v, (2,2)-robust=%v — the separation\n",
		r.TwoClique3Reach, r.TwoCliqueRobust)
	fmt.Fprintf(&b, "  two-clique: iterative spread=%.4g stalled=%v\n", r.TwoCliqueSpread, r.TwoCliqueStalled)
	fmt.Fprintf(&b, "  two-clique: BW spread=%.4g converged=%v\n", r.BWTwoCliqueSpread, r.BWConverged)
	b.WriteString("  local algorithms need (f+1,f+1)-robustness [13], strictly stronger than 3-reach.\n")
	return b.String()
}

// RunIterativeAblation produces the E9 report.
func RunIterativeAblation(seed int64) (IterativeReport, error) {
	var rep IterativeReport
	// Clique: iterative works.
	rep.CliqueRobust, _ = cond.CheckRobustness(graph.Clique(5), 2, 2)
	out, err := runScenario(repro.Scenario{
		Name: "k5-iterative", Graph: "clique:5", Protocol: "iterative",
		Inputs: []float64{0, 1, 2, 3, 4},
		F:      1, Eps: 0.01, Rounds: 30, Seed: seed,
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.CliqueConverged = out.Converged
	rep.CliqueSpread = out.Spread

	// Two-clique 3-reach graph: iterative stalls, BW converges.
	g := graph.Fig1bAnalog()
	rep.TwoClique3Reach, _ = cond.Check3Reach(g, 1)
	rep.TwoCliqueRobust, _ = cond.CheckRobustness(g, 2, 2)
	inputs := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	out, err = runScenario(repro.Scenario{
		Name: "two-clique-iterative", Graph: "fig1b-analog", Protocol: "iterative",
		Inputs: inputs,
		F:      1, Eps: 0.5, Rounds: 30, Seed: seed,
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.TwoCliqueSpread = out.Spread
	rep.TwoCliqueStalled = out.Spread >= 0.5

	bwOut, err := runScenario(repro.Scenario{
		Name: "two-clique-bw", Graph: "fig1b-analog", Protocol: "bw",
		Inputs: inputs,
		F:      1, K: 1, Eps: 0.25, Seed: seed,
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.BWTwoCliqueSpread = bwOut.Spread
	rep.BWConverged = bwOut.Converged && bwOut.ValidityOK
	return rep, nil
}

// CrashReport covers the Table 2 crash/asynchronous cell (Theorem 2):
// the 2-reach algorithm under crash faults.
type CrashReport struct {
	Graph     string
	TwoReach  bool
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// Render prints the report.
func (r CrashReport) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 crash/async cell (Theorem 2) — 2-reach crash algorithm\n")
	fmt.Fprintf(&b, "  graph=%s 2-reach=%v converged=%v validity=%v spread=%.4g messages=%d\n",
		r.Graph, r.TwoReach, r.Converged, r.Validity, r.Spread, r.Messages)
	return b.String()
}

// RunCrashCell produces the crash-cell report.
func RunCrashCell(seed int64) (CrashReport, error) {
	g := graph.Circulant(5, 1, 2)
	rep := CrashReport{Graph: g.Name()}
	rep.TwoReach, _ = cond.Check2Reach(g, 1)
	out, err := runScenario(repro.Scenario{
		Name: "crash-cell", Graph: "circulant:5:1,2", Protocol: "crashapprox",
		Inputs: []float64{0, 1, 2, 3, 4},
		F:      1, K: 4, Eps: 0.2, Seed: seed,
		Faults: []repro.FaultSpec{{Node: 2, Kind: "crash", Params: map[string]float64{"after": 12}}},
	}, DefaultExec)
	if err != nil {
		return rep, err
	}
	rep.Converged = out.Converged
	rep.Validity = out.ValidityOK
	rep.Spread = out.Spread
	rep.Messages = out.MessagesSent
	return rep, nil
}
