package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/aad"
	"repro/internal/adversary"
	"repro/internal/bw"
	"repro/internal/cond"
	"repro/internal/crashapprox"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/sim"
	"repro/internal/transport"
)

// runOutcome summarizes one protocol execution.
type runOutcome struct {
	Spread    float64
	Converged bool
	Validity  bool
	Messages  int
	Steps     int
	Histories [][]float64 // honest nodes' per-round values
}

// runHandlers executes prepared handlers under DefaultExec and summarizes
// the honest outputs.
func runHandlers(g *graph.Graph, handlers []sim.Handler, honest graph.Set,
	inputs []float64, eps float64, seed int64) (runOutcome, error) {
	return runHandlersExec(DefaultExec, g, handlers, honest, inputs, eps, seed)
}

// runHandlersExec executes prepared handlers on the configured engine and
// summarizes the honest outputs.
func runHandlersExec(exec Exec, g *graph.Graph, handlers []sim.Handler, honest graph.Set,
	inputs []float64, eps float64, seed int64) (runOutcome, error) {
	eng, err := exec.engine()
	if err != nil {
		return runOutcome{}, err
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed), Engine: eng}, handlers)
	if err != nil {
		return runOutcome{}, err
	}
	if err := r.Run(); err != nil {
		return runOutcome{}, err
	}
	outs, all := r.Outputs(honest)
	out := runOutcome{Messages: r.Stats().Sent, Steps: r.Steps()}
	if !all {
		return out, fmt.Errorf("experiments: honest nodes undecided (%d/%d)", len(outs), honest.Count())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	honest.ForEach(func(v int) bool {
		lo, hi = math.Min(lo, inputs[v]), math.Max(hi, inputs[v])
		if hp, ok := r.Handler(v).(interface{ History() []float64 }); ok {
			out.Histories = append(out.Histories, hp.History())
		} else if m, ok := r.Handler(v).(*bw.Machine); ok {
			out.Histories = append(out.Histories, m.Snapshot().History)
		}
		return true
	})
	omin, omax := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		omin, omax = math.Min(omin, x), math.Max(omax, x)
	}
	out.Spread = omax - omin
	out.Converged = out.Spread < eps
	out.Validity = omin >= lo && omax <= hi
	return out, nil
}

// bwHandlers builds BW machines with the given fault wrappers.
func bwHandlers(g *graph.Graph, f int, inputs []float64, k, eps float64,
	faults map[int]func(sim.Handler) sim.Handler) ([]sim.Handler, graph.Set, error) {
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		return nil, 0, err
	}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			return nil, 0, err
		}
		if wrap, bad := faults[i]; bad {
			handlers[i] = wrap(m)
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	return handlers, honest, nil
}

// RunFig1a produces the E3 report.
func RunFig1a(seed int64) (Fig1aReport, error) {
	g := graph.Fig1a()
	rep := Fig1aReport{N: g.N(), M: g.M(), Kappa: g.VertexConnectivity()}
	rep.ThreeReach, _ = cond.Check3Reach(g, 1)

	rep.MinimalEdge = true
	for _, e := range g.Edges() {
		if e[0] > e[1] {
			continue
		}
		c := g.Clone()
		c.RemoveEdge(e[0], e[1])
		c.RemoveEdge(e[1], e[0])
		if c.VertexConnectivity() > 2 {
			rep.MinimalEdge = false
		}
	}

	inputs := []float64{0, 4, 1, 3, 2}
	handlers, honest, err := bwHandlers(g, 1, inputs, 4, 0.25, map[int]func(sim.Handler) sim.Handler{
		1: func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{adversary.ExtremeInput(1e6)}}
		},
	})
	if err != nil {
		return rep, err
	}
	out, err := runHandlers(g, handlers, honest, inputs, 0.25, seed)
	if err != nil {
		return rep, err
	}
	rep.BWConverged = out.Converged && out.Validity
	rep.BWSpread = out.Spread
	rep.BWMessages = out.Messages
	return rep, nil
}

// RunFig1b produces the E4 report. The exhaustive f=2 check on the 14-node
// graph takes a few hundred milliseconds; the BW run uses the scaled analog
// (see DESIGN.md fidelity note 7).
func RunFig1b(seed int64) (Fig1bReport, error) {
	g := graph.Fig1b()
	rep := Fig1bReport{N: g.N(), M: g.M()}
	rep.ThreeReachF2, _ = cond.Check3Reach(g, 2)
	rep.DisjointVW = g.MaxDisjointPaths(0, 7, graph.EmptySet)
	rep.DisjointWV = g.MaxDisjointPaths(7, 0, graph.EmptySet)
	rep.RMTImpossible = rep.DisjointVW < 2*2+1
	broken := g.Clone()
	for i := 3; i < 7; i++ {
		broken.RemoveEdge(i+7, i)
	}
	ok, _ := cond.Check3Reach(broken, 2)
	rep.BridgeBreak = !ok

	analog := graph.Fig1bAnalog()
	inputs := []float64{0, 0.5, 1, 0.25, 0.75, 1, 0, 0.5}
	handlers, honest, err := bwHandlers(analog, 1, inputs, 1, 0.25, nil)
	if err != nil {
		return rep, err
	}
	out, err := runHandlers(analog, handlers, honest, inputs, 0.25, seed)
	if err != nil {
		return rep, err
	}
	rep.AnalogConverged = out.Converged && out.Validity
	rep.AnalogSpread = out.Spread
	rep.AnalogMessages = out.Messages
	return rep, nil
}

// SufficiencyCase is one (graph, adversary) cell of the E5 matrix.
type SufficiencyCase struct {
	Graph     string
	Adversary string
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// SufficiencyReport aggregates experiment E5 (Theorem 4's constructive
// side): BW achieves approximate consensus on 3-reach graphs under every
// implemented Byzantine behavior.
type SufficiencyReport struct {
	Cases []SufficiencyCase
}

// AllPassed reports whether every cell converged with validity.
func (r SufficiencyReport) AllPassed() bool {
	for _, c := range r.Cases {
		if !c.Converged || !c.Validity {
			return false
		}
	}
	return true
}

// Render prints the matrix.
func (r SufficiencyReport) Render() string {
	var b strings.Builder
	b.WriteString("E5 / Theorem 4 sufficiency — BW under Byzantine adversaries (3-reach graphs)\n")
	fmt.Fprintf(&b, "  %-14s %-12s %-10s %-9s %-10s %-9s\n", "graph", "adversary", "converged", "validity", "spread", "messages")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-14s %-12s %-10v %-9v %-10.4g %-9d\n",
			c.Graph, c.Adversary, c.Converged, c.Validity, c.Spread, c.Messages)
	}
	fmt.Fprintf(&b, "  all passed: %v\n", r.AllPassed())
	return b.String()
}

// RunSufficiency produces the E5 report.
func RunSufficiency(seed int64) (SufficiencyReport, error) {
	graphs := []*graph.Graph{graph.Clique(4), graph.Clique(5), graph.Fig1a()}
	adversaries := map[string]func(inner sim.Handler) sim.Handler{
		"honest": nil,
		"silent": func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 1} },
		"crash": func(inner sim.Handler) sim.Handler {
			return &adversary.Crash{Inner: inner, AfterDeliveries: 25, FinalSends: 1}
		},
		"extreme": func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{adversary.ExtremeInput(-1e9)}}
		},
		"equivocate": func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{adversary.EquivocateInput(0.9)}}
		},
		"tamper": func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{
					adversary.TamperRelays(func(x float64) float64 { return 2*x + 11 }),
					adversary.ForgeCompletes(3),
				}}
		},
		"noise": func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{adversary.RandomNoise(50)}}
		},
	}
	order := []string{"honest", "silent", "crash", "extreme", "equivocate", "tamper", "noise"}

	var rep SufficiencyReport
	for _, g := range graphs {
		inputs := make([]float64, g.N())
		for i := range inputs {
			inputs[i] = float64((i * 7) % 5)
		}
		for _, name := range order {
			var faults map[int]func(sim.Handler) sim.Handler
			if wrap := adversaries[name]; wrap != nil {
				faults = map[int]func(sim.Handler) sim.Handler{1: wrap}
			}
			handlers, honest, err := bwHandlers(g, 1, inputs, 4, 0.25, faults)
			if err != nil {
				return rep, err
			}
			out, err := runHandlers(g, handlers, honest, inputs, 0.25, seed+int64(len(rep.Cases)))
			if err != nil {
				return rep, err
			}
			rep.Cases = append(rep.Cases, SufficiencyCase{
				Graph:     g.Name(),
				Adversary: name,
				Converged: out.Converged,
				Validity:  out.Validity,
				Spread:    out.Spread,
				Messages:  out.Messages,
			})
		}
	}
	return rep, nil
}

// ConvergenceReport is experiment E6: measured per-round contraction
// against the Lemma 15 bound.
type ConvergenceReport struct {
	Graph      string
	K, Eps     float64
	Rounds     int
	Spreads    []float64 // measured U[r] - µ[r]
	Bound      []float64 // K / 2^r
	Violations int
}

// Render prints the series.
func (r ConvergenceReport) Render() string {
	var b strings.Builder
	b.WriteString("E6 / Lemma 15 — per-round contraction (BW)\n")
	fmt.Fprintf(&b, "  graph=%s K=%g eps=%g rounds=%d\n", r.Graph, r.K, r.Eps, r.Rounds)
	fmt.Fprintf(&b, "  %-6s %-14s %-14s\n", "round", "measured", "bound K/2^r")
	for i := range r.Spreads {
		fmt.Fprintf(&b, "  %-6d %-14.6g %-14.6g\n", i+1, r.Spreads[i], r.Bound[i])
	}
	fmt.Fprintf(&b, "  bound violations: %d (expected 0)\n", r.Violations)
	return b.String()
}

// RunConvergence produces the E6 report on the Figure 1(a) graph with a
// Byzantine extreme-value injector.
func RunConvergence(seed int64) (ConvergenceReport, error) {
	g := graph.Fig1a()
	k, eps := 8.0, 0.2
	inputs := []float64{0, 8, 4, 6, 2}
	rep := ConvergenceReport{Graph: g.Name(), K: k, Eps: eps, Rounds: bw.RoundsFor(k, eps)}
	handlers, honest, err := bwHandlers(g, 1, inputs, k, eps, map[int]func(sim.Handler) sim.Handler{
		3: func(inner sim.Handler) sim.Handler {
			return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed)),
				Mutators: []adversary.Mutator{adversary.ExtremeInput(1e9)}}
		},
	})
	if err != nil {
		return rep, err
	}
	out, err := runHandlers(g, handlers, honest, inputs, eps, seed)
	if err != nil {
		return rep, err
	}
	bound := k
	for r := 0; r < rep.Rounds; r++ {
		bound /= 2
		min, max := math.Inf(1), math.Inf(-1)
		for _, h := range out.Histories {
			if r < len(h) {
				min, max = math.Min(min, h[r]), math.Max(max, h[r])
			}
		}
		rep.Spreads = append(rep.Spreads, max-min)
		rep.Bound = append(rep.Bound, bound)
		if max-min > bound+1e-9 {
			rep.Violations++
		}
	}
	return rep, nil
}

// AADComparison is experiment E8: AAD vs BW on cliques.
type AADComparison struct {
	N, F        int
	AADMessages int
	BWMessages  int
	AADSpread   float64
	BWSpread    float64
	BothOK      bool
}

// AADReport aggregates E8.
type AADReport struct {
	Rows []AADComparison
}

// Render prints the comparison.
func (r AADReport) Render() string {
	var b strings.Builder
	b.WriteString("E8 / Abraham–Amit–Dolev baseline vs BW on cliques (f=1)\n")
	fmt.Fprintf(&b, "  %-4s %-4s %-12s %-12s %-12s %-12s %-6s\n", "n", "f", "aadMsgs", "bwMsgs", "aadSpread", "bwSpread", "ok")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4d %-4d %-12d %-12d %-12.4g %-12.4g %-6v\n",
			row.N, row.F, row.AADMessages, row.BWMessages, row.AADSpread, row.BWSpread, row.BothOK)
	}
	b.WriteString("  BW pays a path-flooding overhead for directed-graph generality;\n")
	b.WriteString("  AAD exploits the clique's reliable broadcast.\n")
	return b.String()
}

// RunAADComparison produces the E8 report.
func RunAADComparison(seed int64) (AADReport, error) {
	var rep AADReport
	k, eps := 3.0, 0.2
	for _, n := range []int{4, 5} {
		g := graph.Clique(n)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64((i * 3) % 4)
		}
		rounds := bw.RoundsFor(k, eps)

		honest := graph.EmptySet
		aadHandlers := make([]sim.Handler, n)
		for i := 0; i < n; i++ {
			m, err := aad.NewMachine(n, 1, i, rounds, inputs[i])
			if err != nil {
				return rep, err
			}
			if i == 1 {
				aadHandlers[i] = &adversary.Silent{NodeID: i}
			} else {
				aadHandlers[i] = m
				honest = honest.Add(i)
			}
		}
		aadOut, err := runHandlers(g, aadHandlers, honest, inputs, eps, seed)
		if err != nil {
			return rep, err
		}

		bwHs, bwHonest, err := bwHandlers(g, 1, inputs, k, eps, map[int]func(sim.Handler) sim.Handler{
			1: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 1} },
		})
		if err != nil {
			return rep, err
		}
		bwOut, err := runHandlers(g, bwHs, bwHonest, inputs, eps, seed)
		if err != nil {
			return rep, err
		}

		rep.Rows = append(rep.Rows, AADComparison{
			N: n, F: 1,
			AADMessages: aadOut.Messages, BWMessages: bwOut.Messages,
			AADSpread: aadOut.Spread, BWSpread: bwOut.Spread,
			BothOK: aadOut.Converged && aadOut.Validity && bwOut.Converged && bwOut.Validity,
		})
	}
	return rep, nil
}

// IterativeReport is experiment E9: the local-algorithm ablation.
type IterativeReport struct {
	CliqueConverged   bool
	CliqueSpread      float64
	CliqueRobust      bool // K5 is (f+1,f+1)-robust: W-MSR's tight condition
	TwoCliqueSpread   float64
	TwoCliqueStalled  bool
	TwoClique3Reach   bool // the separation: 3-reach holds ...
	TwoCliqueRobust   bool // ... while (f+1,f+1)-robustness fails
	BWTwoCliqueSpread float64
	BWConverged       bool
}

// Render prints the ablation.
func (r IterativeReport) Render() string {
	var b strings.Builder
	b.WriteString("E9 / iterative (local trimmed-mean) ablation\n")
	fmt.Fprintf(&b, "  clique K5 ((2,2)-robust=%v):  iterative converges=%v (spread %.4g)\n",
		r.CliqueRobust, r.CliqueConverged, r.CliqueSpread)
	fmt.Fprintf(&b, "  two-clique: 3-reach=%v, (2,2)-robust=%v — the separation\n",
		r.TwoClique3Reach, r.TwoCliqueRobust)
	fmt.Fprintf(&b, "  two-clique: iterative spread=%.4g stalled=%v\n", r.TwoCliqueSpread, r.TwoCliqueStalled)
	fmt.Fprintf(&b, "  two-clique: BW spread=%.4g converged=%v\n", r.BWTwoCliqueSpread, r.BWConverged)
	b.WriteString("  local algorithms need (f+1,f+1)-robustness [13], strictly stronger than 3-reach.\n")
	return b.String()
}

// RunIterativeAblation produces the E9 report.
func RunIterativeAblation(seed int64) (IterativeReport, error) {
	var rep IterativeReport
	// Clique: iterative works.
	k5 := graph.Clique(5)
	rep.CliqueRobust, _ = cond.CheckRobustness(k5, 2, 2)
	inputs5 := []float64{0, 1, 2, 3, 4}
	handlers := make([]sim.Handler, 5)
	for i := 0; i < 5; i++ {
		m, err := iterative.NewMachine(k5, 1, i, 30, inputs5[i])
		if err != nil {
			return rep, err
		}
		handlers[i] = m
	}
	out, err := runHandlers(k5, handlers, k5.Nodes(), inputs5, 0.01, seed)
	if err != nil {
		return rep, err
	}
	rep.CliqueConverged = out.Converged
	rep.CliqueSpread = out.Spread

	// Two-clique 3-reach graph: iterative stalls, BW converges.
	g := graph.Fig1bAnalog()
	rep.TwoClique3Reach, _ = cond.Check3Reach(g, 1)
	rep.TwoCliqueRobust, _ = cond.CheckRobustness(g, 2, 2)
	inputs := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	handlers = make([]sim.Handler, 8)
	for i := 0; i < 8; i++ {
		m, err := iterative.NewMachine(g, 1, i, 30, inputs[i])
		if err != nil {
			return rep, err
		}
		handlers[i] = m
	}
	out, err = runHandlers(g, handlers, g.Nodes(), inputs, 0.5, seed)
	if err != nil {
		return rep, err
	}
	rep.TwoCliqueSpread = out.Spread
	rep.TwoCliqueStalled = out.Spread >= 0.5

	bwHs, honest, err := bwHandlers(g, 1, inputs, 1, 0.25, nil)
	if err != nil {
		return rep, err
	}
	bwOut, err := runHandlers(g, bwHs, honest, inputs, 0.25, seed)
	if err != nil {
		return rep, err
	}
	rep.BWTwoCliqueSpread = bwOut.Spread
	rep.BWConverged = bwOut.Converged && bwOut.Validity
	return rep, nil
}

// CrashReport covers the Table 2 crash/asynchronous cell (Theorem 2):
// the 2-reach algorithm under crash faults.
type CrashReport struct {
	Graph     string
	TwoReach  bool
	Converged bool
	Validity  bool
	Spread    float64
	Messages  int
}

// Render prints the report.
func (r CrashReport) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 crash/async cell (Theorem 2) — 2-reach crash algorithm\n")
	fmt.Fprintf(&b, "  graph=%s 2-reach=%v converged=%v validity=%v spread=%.4g messages=%d\n",
		r.Graph, r.TwoReach, r.Converged, r.Validity, r.Spread, r.Messages)
	return b.String()
}

// RunCrashCell produces the crash-cell report.
func RunCrashCell(seed int64) (CrashReport, error) {
	g := graph.Circulant(5, 1, 2)
	rep := CrashReport{Graph: g.Name()}
	rep.TwoReach, _ = cond.Check2Reach(g, 1)
	proto, err := crashapprox.NewProto(g, 1, 4, 0.2, 0)
	if err != nil {
		return rep, err
	}
	inputs := []float64{0, 1, 2, 3, 4}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, 5)
	for i := 0; i < 5; i++ {
		m, err := crashapprox.NewMachine(proto, i, inputs[i])
		if err != nil {
			return rep, err
		}
		if i == 2 {
			handlers[i] = &adversary.Crash{Inner: m, AfterDeliveries: 12, FinalSends: 1}
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	out, err := runHandlers(g, handlers, honest, inputs, 0.2, seed)
	if err != nil {
		return rep, err
	}
	rep.Converged = out.Converged
	rep.Validity = out.Validity
	rep.Spread = out.Spread
	rep.Messages = out.Messages
	return rep, nil
}
