package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBenchGenerations: one decoder must read every committed BENCH
// generation — benchtables' experiments-shaped report and the benchruntimes
// runs-shaped reports.
func TestLoadBenchGenerations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	expShaped := write("bench0.json", `{
		"engine": "inline", "workers": 1, "seed": 1,
		"experiments": [{"name": "table1", "ms": 12.5}]
	}`)
	rep, err := LoadBench(expShaped)
	if err != nil {
		t.Fatal(err)
	}
	if cells := rep.Cells(); len(cells) != 1 || cells[0].Name != "table1" {
		t.Fatalf("cells = %+v", cells)
	}

	runShaped := write("bench3.json", `{
		"suite": "scale", "seed": 1, "reps": 1,
		"runs": [
			{"name": "scale-bw-cycle-8", "runtime": "sim", "ms": 1.0},
			{"name": "scale-bw-cycle-8", "runtime": "sim", "engine": "parallel", "workers": 4, "policy": "fifo", "ms": 0.4}
		],
		"notes": ["parallel-engine cells run under the fifo delivery policy"]
	}`)
	rep, err = LoadBench(runShaped)
	if err != nil {
		t.Fatal(err)
	}
	cells := rep.Cells()
	if len(cells) != 2 {
		t.Fatalf("cells = %+v", cells)
	}
	// The engine configuration distinguishes keys; the base key matches the
	// plain baseline for cross-report fallback.
	if cells[0].Key() == cells[1].Key() {
		t.Error("engine-swept cells must have distinct keys")
	}
	if cells[0].BaseKey() != cells[1].BaseKey() {
		t.Error("engine-swept cells must share the base key")
	}

	if _, err := LoadBench(write("drift.json", `{"seed": 1, "rows": []}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Errorf("schema drift must fail loudly, got %v", err)
	}
	if _, err := LoadBench(write("both.json",
		`{"seed": 1, "runs": [{"name": "a", "ms": 1}], "experiments": [{"name": "b", "ms": 1}]}`)); err == nil {
		t.Error("a report with both runs and experiments must be rejected")
	}
}

// TestLoadBenchCommittedFiles: the repository's committed snapshots —
// every generation BENCH_0 through BENCH_7 — must all parse under the
// shared schema; missing generations are named, not silently skipped by
// the glob.
func TestLoadBenchCommittedFiles(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed BENCH files")
	}
	seen := make(map[string]bool, len(matches))
	for _, p := range matches {
		seen[filepath.Base(p)] = true
		rep, err := LoadBench(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(rep.Cells()) == 0 {
			t.Errorf("%s: no cells", p)
		}
	}
	for gen := 0; gen <= 7; gen++ {
		name := fmt.Sprintf("BENCH_%d.json", gen)
		if !seen[name] {
			t.Errorf("committed generation %s missing", name)
		}
	}
}
