package aba_test

import (
	"fmt"
	"testing"

	"repro/internal/aba"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestCoinDeterministicAndBalanced pins the coin determinism contract: a
// pure function of (seed, instance, round) — and sanity-checks that both
// outcomes actually occur, since liveness relies on the coin eventually
// matching the locked value.
func TestCoinDeterministicAndBalanced(t *testing.T) {
	if aba.Coin(7, 3, 5) != aba.Coin(7, 3, 5) {
		t.Fatal("coin is not a pure function")
	}
	var ones int
	const rounds = 1000
	for r := 1; r <= rounds; r++ {
		c := aba.Coin(42, 0, r)
		if c != 0 && c != 1 {
			t.Fatalf("coin(42,0,%d) = %d", r, c)
		}
		ones += c
	}
	if ones < rounds/4 || ones > 3*rounds/4 {
		t.Fatalf("coin badly skewed: %d ones of %d", ones, rounds)
	}
	// Streams must differ across instances and seeds (else ACS's n
	// instances would decide in lockstep for the wrong reason).
	same := 0
	for r := 1; r <= 64; r++ {
		if aba.Coin(42, 0, r) == aba.Coin(42, 1, r) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("instances 0 and 1 share a coin stream")
	}
}

func runABA(t *testing.T, handlers []sim.Handler, g *graph.Graph, policy string, seed int64) *sim.Runner {
	t.Helper()
	params := map[string]float64{}
	if policy == "bounded" {
		params["bound"] = 4
	}
	pol, err := transport.NewPolicy(policy, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: pol}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

var abaPolicies = []string{"random", "fifo", "lifo", "bounded"}

// TestABAAgreementAndTermination: mixed proposals, every policy, many
// seeds — all nodes decide one common bit and the run goes quiescent.
func TestABAAgreementAndTermination(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	for _, policy := range abaPolicies {
		for seed := int64(0); seed < 15; seed++ {
			handlers := make([]sim.Handler, n)
			for i := 0; i < n; i++ {
				handlers[i] = aba.NewMachine(n, f, i, seed, i%2)
			}
			r := runABA(t, handlers, g, policy, seed)
			outputs, decided := r.Outputs(graph.FullSet(n))
			if !decided {
				t.Fatalf("%s seed %d: not all nodes decided", policy, seed)
			}
			for i := 1; i < n; i++ {
				if outputs[i] != outputs[0] {
					t.Fatalf("%s seed %d: disagreement %v", policy, seed, outputs)
				}
			}
			if outputs[0] != 0 && outputs[0] != 1 {
				t.Fatalf("%s seed %d: non-binary decision %v", policy, seed, outputs[0])
			}
		}
	}
}

// TestABAUnanimousValidity: when every honest node proposes v, the
// binding-value rule forbids any other decision — even with a silent
// Byzantine node.
func TestABAUnanimousValidity(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	for _, bit := range []int{0, 1} {
		for seed := int64(0); seed < 10; seed++ {
			handlers := make([]sim.Handler, n)
			honest := graph.EmptySet
			for i := 0; i < n-1; i++ {
				handlers[i] = aba.NewMachine(n, f, i, seed, bit)
				honest = honest.Add(i)
			}
			handlers[n-1] = &silentHandler{id: n - 1}
			r := runABA(t, handlers, g, "random", seed)
			outputs, decided := r.Outputs(honest)
			if !decided {
				t.Fatalf("bit %d seed %d: honest nodes did not decide", bit, seed)
			}
			for i, v := range outputs {
				if v != float64(bit) {
					t.Fatalf("bit %d seed %d: node %d decided %v", bit, seed, i, v)
				}
			}
		}
	}
}

type silentHandler struct{ id int }

func (s *silentHandler) ID() int                                { return s.id }
func (s *silentHandler) Start(*sim.Outbox)                      {}
func (s *silentHandler) Deliver(transport.Message, *sim.Outbox) {}
func (s *silentHandler) Output() (float64, bool)                { return 0, false }

// twoFaced is a Byzantine node that BVALs both bits every round it hears
// about and forges a DONE(flip) — the two-faced vote the binding rule and
// the f+1 DONE threshold must contain.
type twoFaced struct {
	id   int
	flip int
	seen map[int]bool
}

func (b *twoFaced) ID() int { return b.id }

func (b *twoFaced) Start(out *sim.Outbox) {
	for v := 0; v <= 1; v++ {
		out.Broadcast(aba.Msg{Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: v})
	}
	out.Broadcast(aba.Msg{Inst: 0, Round: 0, Phase: aba.PhaseDone, Value: b.flip})
}

func (b *twoFaced) Deliver(msg transport.Message, out *sim.Outbox) {
	m, ok := msg.Payload.(aba.Msg)
	if !ok || m.Round < 1 || b.seen[m.Round] {
		return
	}
	b.seen[m.Round] = true
	for v := 0; v <= 1; v++ {
		out.Broadcast(aba.Msg{Inst: 0, Round: m.Round, Phase: aba.PhaseBval, Value: v})
		out.Broadcast(aba.Msg{Inst: 0, Round: m.Round, Phase: aba.PhaseAux, Value: v})
	}
}

func (b *twoFaced) Output() (float64, bool) { return 0, false }

// TestABAByzantineCannotOverturnUnanimous: honest nodes unanimously
// propose 1; a protocol-aware Byzantine node voting both ways and forging
// DONE(0) must not flip the decision or break agreement.
func TestABAByzantineCannotOverturnUnanimous(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	for _, policy := range abaPolicies {
		for seed := int64(0); seed < 15; seed++ {
			handlers := make([]sim.Handler, n)
			honest := graph.EmptySet
			for i := 0; i < n-1; i++ {
				handlers[i] = aba.NewMachine(n, f, i, seed, 1)
				honest = honest.Add(i)
			}
			handlers[n-1] = &twoFaced{id: n - 1, flip: 0, seen: map[int]bool{}}
			r := runABA(t, handlers, g, policy, seed)
			outputs, decided := r.Outputs(honest)
			if !decided {
				t.Fatalf("%s seed %d: honest nodes did not decide", policy, seed)
			}
			for i, v := range outputs {
				if v != 1 {
					t.Fatalf("%s seed %d: node %d decided %v against unanimous 1", policy, seed, i, v)
				}
			}
		}
	}
}

// passiveHandler wraps a Core that never proposes, the situation of an ACS
// instance whose RBC has not delivered locally.
type passiveHandler struct {
	id   int
	core *aba.Core
}

func (p *passiveHandler) ID() int           { return p.id }
func (p *passiveHandler) Start(*sim.Outbox) {}
func (p *passiveHandler) Deliver(msg transport.Message, out *sim.Outbox) {
	if m, ok := msg.Payload.(aba.Msg); ok && m.Inst == 0 {
		p.core.Handle(msg.From, m, out)
	}
}
func (p *passiveHandler) Output() (float64, bool) {
	v, ok := p.core.Decided()
	return float64(v), ok
}

// TestABAPassiveParticipation: a core that never proposes still relays,
// AUXes and decides alongside the proposers — required for ACS
// interleavings where a node votes in instances it has no opinion on yet.
func TestABAPassiveParticipation(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	for seed := int64(0); seed < 15; seed++ {
		handlers := make([]sim.Handler, n)
		for i := 0; i < n-1; i++ {
			handlers[i] = aba.NewMachine(n, f, i, seed, 1)
		}
		handlers[n-1] = &passiveHandler{id: n - 1, core: aba.NewCore(n, f, n-1, 0, seed)}
		r := runABA(t, handlers, g, "random", seed)
		outputs, decided := r.Outputs(graph.FullSet(n))
		if !decided {
			t.Fatalf("seed %d: passive node never decided", seed)
		}
		for i, v := range outputs {
			if v != 1 {
				t.Fatalf("seed %d: node %d decided %v", seed, i, v)
			}
		}
	}
}

// TestABAProposeAfterBindIsNoOp: once an estimate is bound, a late Propose
// cannot change the instance's course.
func TestABAProposeAfterBindIsNoOp(t *testing.T) {
	g := graph.Clique(4)
	c := aba.NewCore(4, 1, 0, 0, 3)
	col := sim.NewCollector(0, g)
	c.Propose(1, col)
	first := len(col.Messages())
	if first == 0 {
		t.Fatal("Propose sent nothing")
	}
	c.Propose(0, col)
	if len(col.Messages()) != first {
		t.Fatal("second Propose sent traffic after the estimate was bound")
	}
}

// TestABAInvalidMessagesIgnored: out-of-range values, rounds and phases
// from a hostile peer must not wedge or crash the core.
func TestABAInvalidMessagesIgnored(t *testing.T) {
	g := graph.Clique(4)
	c := aba.NewCore(4, 1, 0, 0, 3)
	col := sim.NewCollector(0, g)
	for _, m := range []aba.Msg{
		{Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: 7},
		{Inst: 0, Round: -1, Phase: aba.PhaseBval, Value: 1},
		{Inst: 0, Round: 1 << 30, Phase: aba.PhaseAux, Value: 0},
		{Inst: 0, Round: 5, Phase: aba.PhaseDone, Value: 1}, // DONE must be round 0
		{Inst: 0, Round: 1, Phase: aba.Phase(9), Value: 1},
	} {
		c.Handle(1, m, col)
	}
	if len(col.Messages()) != 0 {
		t.Fatalf("invalid traffic provoked %d sends", len(col.Messages()))
	}
	if _, decided := c.Decided(); decided {
		t.Fatal("invalid traffic decided the instance")
	}
}

// TestABAKindStrings pins the payload kinds the stats and traces report.
func TestABAKindStrings(t *testing.T) {
	for phase, want := range map[aba.Phase]string{
		aba.PhaseBval: "ABA-BVAL",
		aba.PhaseAux:  "ABA-AUX",
		aba.PhaseDone: "ABA-DONE",
	} {
		if got := (aba.Msg{Phase: phase}).Kind(); got != want {
			t.Errorf("Kind(%v) = %q, want %q", phase, got, want)
		}
	}
	if fmt.Sprint(aba.Phase(9)) != "Phase(9)" {
		t.Errorf("unknown phase string: %v", aba.Phase(9))
	}
}
