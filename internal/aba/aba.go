// Package aba implements MMR-style asynchronous binary Byzantine agreement
// (Mostéfaoui–Moumen–Raynal) for complete networks with n > 3f: per round,
// a BV-broadcast with the binding-value rule admits only values proposed by
// at least one honest node, an AUX exchange collects n−f opinions over the
// admitted set, and a common coin breaks symmetry. The coin here is the
// seeded deterministic one every node can compute locally from the run
// seed (internal/seedmix), which keeps simulator traces byte-identical
// across engines and worker counts and needs no extra message kinds.
//
// Termination is made quiescent in two complementary ways. First,
// coin-bounded participation: a node that decides v at round r keeps
// participating through the first later round whose coin is v — by then
// every honest est equals v (the binding rule bars the adversary from
// re-injecting 1−v), so all laggards decide there — and then stops.
// Second, a Bracha-style DONE gadget: deciding broadcasts DONE(v); f+1
// DONE(v) lets an undecided node decide and relay immediately, and 2f+1
// DONE(v) halts the instance outright, which is the fast path under fair
// schedules.
package aba

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/seedmix"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Phase is the protocol step of an ABA message.
type Phase int

// Message phases. BVAL and AUX carry a round; DONE is round-less (Round 0).
const (
	PhaseBval Phase = iota + 1
	PhaseAux
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseBval:
		return "BVAL"
	case PhaseAux:
		return "AUX"
	case PhaseDone:
		return "DONE"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Msg is the wire payload of one ABA instance. Inst namespaces concurrent
// instances multiplexed over one link (ACS runs n of them); the standalone
// protocol uses instance 0.
type Msg struct {
	Inst  int
	Round int
	Phase Phase
	Value int // 0 or 1
}

// Kind implements transport.Payload.
func (m Msg) Kind() string { return "ABA-" + m.Phase.String() }

// coinSalt decorrelates the common-coin stream from every other consumer
// of the run seed (adversary node seeds use seedmix.Mix(seed, id), link
// faults use salt 0x11f4).
const coinSalt = 0x0aba

// maxRound caps the per-round state a hostile peer can make us allocate;
// honest executions decide in a handful of rounds (each round's coin
// matches the locked value with probability 1/2).
const maxRound = 1 << 20

// Coin is the seeded deterministic common coin: every node computes the
// same bit for (instance, round) from the shared run seed. This is the
// coin determinism contract — no coin messages exist, so schedules,
// engines and worker counts cannot perturb it.
func Coin(seed int64, inst, round int) int {
	return int(seedmix.Mix(seed, coinSalt, int64(inst), int64(round)) & 1)
}

// roundState accumulates one round's BV-broadcast and AUX exchange.
type roundState struct {
	bvalSent  [2]bool
	bvalFrom  [2]graph.Set // value -> senders
	bin       [2]bool      // binding values: admitted at 2f+1 senders
	auxSent   bool
	auxFrom   graph.Set    // all AUX senders this round (first value wins)
	auxVal    [2]graph.Set // value -> AUX senders
	completed bool
}

// Core is one ABA instance's state machine. It is passive until Propose:
// it relays BVALs, sends AUX and advances rounds on behalf of others (ACS
// needs that for instances whose RBC hasn't delivered locally yet), but
// broadcasts no estimate of its own until either Propose binds one or the
// first round completes and binds one from the admitted values. Like the
// rbc.Broadcaster it is driven by a single-goroutine event loop and needs
// no locking.
type Core struct {
	n, f, id, inst int
	seed           int64

	rounds   map[int]*roundState
	round    int // current round, always >= 1
	est      int
	estBound bool // Propose happened or a round completed

	decided   bool
	decision  int
	haltRound int // participate through this round once decided, then stop
	doneSent  bool
	doneFrom  [2]graph.Set
	halted    bool

	outQ []Msg // broadcasts staged during a transition, drained re-entrantly

	// OnDecide, when set, fires exactly once at the moment of decision with
	// the outbox live at that point (ACS uses it to trigger its 0-proposals).
	OnDecide func(inst, value int, out *sim.Outbox)
}

// NewCore returns the state machine for one instance; n > 3f is the
// caller's contract (checked by the protocol builders).
func NewCore(n, f, id, inst int, seed int64) *Core {
	return &Core{
		n: n, f: f, id: id, inst: inst, seed: seed,
		rounds: make(map[int]*roundState),
		round:  1,
	}
}

func (c *Core) state(r int) *roundState {
	rs, ok := c.rounds[r]
	if !ok {
		rs = &roundState{}
		c.rounds[r] = rs
	}
	return rs
}

// Decided reports the decision once reached.
func (c *Core) Decided() (int, bool) { return c.decision, c.decided }

// Halted reports whether the instance has gone quiescent.
func (c *Core) Halted() bool { return c.halted }

// Propose binds the node's own estimate and starts round 1. It is a no-op
// if an estimate is already bound (a passive instance that completed round
// 1 on others' traffic binds the derived value instead — by then the
// proposal could no longer influence the admitted set).
func (c *Core) Propose(v int, out *sim.Outbox) {
	if c.halted || c.estBound || v < 0 || v > 1 {
		return
	}
	c.est, c.estBound = v, true
	rs := c.state(c.round)
	if !rs.bvalSent[v] {
		rs.bvalSent[v] = true
		c.stage(Msg{Inst: c.inst, Round: c.round, Phase: PhaseBval, Value: v})
	}
	c.drain(out)
}

// Handle processes one incoming ABA message for this instance.
func (c *Core) Handle(from int, m Msg, out *sim.Outbox) {
	c.ingest(from, m, out)
	c.drain(out)
}

// stage queues a broadcast; drain sends it and self-processes it, exactly
// like a neighbor's copy, so thresholds count the local node uniformly.
func (c *Core) stage(m Msg) { c.outQ = append(c.outQ, m) }

func (c *Core) drain(out *sim.Outbox) {
	for len(c.outQ) > 0 {
		m := c.outQ[0]
		c.outQ = c.outQ[1:]
		out.Broadcast(m)
		c.ingest(c.id, m, out)
	}
}

func (c *Core) ingest(from int, m Msg, out *sim.Outbox) {
	if c.halted || m.Value < 0 || m.Value > 1 {
		return
	}
	switch m.Phase {
	case PhaseBval:
		if m.Round < 1 || m.Round > maxRound {
			return
		}
		rs := c.state(m.Round)
		if rs.bvalFrom[m.Value].Has(from) {
			return
		}
		rs.bvalFrom[m.Value] = rs.bvalFrom[m.Value].Add(from)
		n := rs.bvalFrom[m.Value].Count()
		// Relay at f+1 distinct senders: at least one is honest, so the
		// value traces back to an honest proposal (the binding rule's
		// grounding induction). Relays run for any round — laggards' 2f+1
		// quorums are fed by them.
		if n >= c.f+1 && !rs.bvalSent[m.Value] {
			rs.bvalSent[m.Value] = true
			c.stage(Msg{Inst: c.inst, Round: m.Round, Phase: PhaseBval, Value: m.Value})
		}
		if n >= 2*c.f+1 && !rs.bin[m.Value] {
			rs.bin[m.Value] = true
			// bin_values became (or grew while) nonempty: announce one
			// admitted value, and re-check completion — buffered AUXes may
			// only now fall inside the admitted set.
			if !rs.auxSent {
				rs.auxSent = true
				c.stage(Msg{Inst: c.inst, Round: m.Round, Phase: PhaseAux, Value: m.Value})
			}
			c.tryComplete(m.Round, out)
		}
	case PhaseAux:
		if m.Round < 1 || m.Round > maxRound {
			return
		}
		rs := c.state(m.Round)
		if rs.auxFrom.Has(from) {
			return
		}
		rs.auxFrom = rs.auxFrom.Add(from)
		rs.auxVal[m.Value] = rs.auxVal[m.Value].Add(from)
		c.tryComplete(m.Round, out)
	case PhaseDone:
		if m.Round != 0 {
			return
		}
		if c.doneFrom[m.Value].Has(from) {
			return
		}
		c.doneFrom[m.Value] = c.doneFrom[m.Value].Add(from)
		n := c.doneFrom[m.Value].Count()
		if n >= c.f+1 && !c.decided {
			// f+1 DONE(v) contains an honest decider; adopt and relay.
			c.decide(m.Value, out)
		}
		if n >= 2*c.f+1 {
			c.halted = true
		}
	}
}

// tryComplete checks the current round's exit condition: n−f AUX senders
// whose values lie in bin_values. The subset is chosen to favor deciding:
// if the coin value alone has an n−f quorum the values-set is the
// singleton {coin} and we decide; a singleton of the other value adopts
// it; a mixed set adopts the coin.
func (c *Core) tryComplete(r int, out *sim.Outbox) {
	if r != c.round {
		return
	}
	rs := c.state(r)
	if rs.completed {
		return
	}
	var cnt [2]int
	for v := 0; v <= 1; v++ {
		if rs.bin[v] {
			cnt[v] = rs.auxVal[v].Count()
		}
	}
	coin := Coin(c.seed, c.inst, r)
	next := -1
	switch {
	case cnt[coin] >= c.n-c.f:
		if !c.decided {
			c.decide(coin, out)
		}
		next = coin
	case cnt[1-coin] >= c.n-c.f:
		next = 1 - coin
	case cnt[0]+cnt[1] >= c.n-c.f:
		next = coin
	default:
		return
	}
	rs.completed = true
	c.est, c.estBound = next, true
	c.enterRound(r+1, out)
}

func (c *Core) decide(v int, out *sim.Outbox) {
	c.decided, c.decision = true, v
	c.est, c.estBound = v, true
	// Participate through the next round whose coin equals v: every honest
	// node still running holds est=v after this round, so that round's
	// values-set is the singleton {v} and all of them decide there.
	c.haltRound = c.round + 1
	for Coin(c.seed, c.inst, c.haltRound) != v {
		c.haltRound++
	}
	if !c.doneSent {
		c.doneSent = true
		c.stage(Msg{Inst: c.inst, Round: 0, Phase: PhaseDone, Value: v})
	}
	if c.OnDecide != nil {
		c.OnDecide(c.inst, v, out)
	}
}

func (c *Core) enterRound(r int, out *sim.Outbox) {
	c.round = r
	if c.decided && r > c.haltRound {
		c.halted = true
		return
	}
	rs := c.state(r)
	if !rs.bvalSent[c.est] {
		rs.bvalSent[c.est] = true
		c.stage(Msg{Inst: c.inst, Round: r, Phase: PhaseBval, Value: c.est})
	}
	// Traffic for this round may have arrived while we were behind: the
	// AUX announcement and even the exit condition can be ready already.
	if !rs.auxSent {
		for v := 0; v <= 1; v++ {
			if rs.bin[v] {
				rs.auxSent = true
				c.stage(Msg{Inst: c.inst, Round: r, Phase: PhaseAux, Value: v})
				break
			}
		}
	}
	c.tryComplete(r, out)
}

// Machine adapts a single Core (instance 0) to the sim.Handler contract,
// making ABA an ordinary registered protocol: scalar inputs map to the
// proposed bit (nonzero -> 1) and the decision is the output 0/1.
type Machine struct {
	id    int
	input int
	core  *Core
}

// NewMachine builds the standalone ABA handler for node id proposing the
// given bit.
func NewMachine(n, f, id int, seed int64, input int) *Machine {
	return &Machine{id: id, input: input, core: NewCore(n, f, id, 0, seed)}
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Start implements sim.Handler.
func (m *Machine) Start(out *sim.Outbox) { m.core.Propose(m.input, out) }

// Deliver implements sim.Handler.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	am, ok := msg.Payload.(Msg)
	if !ok || am.Inst != 0 {
		return
	}
	m.core.Handle(msg.From, am, out)
}

// Output implements sim.Handler.
func (m *Machine) Output() (float64, bool) {
	v, ok := m.core.Decided()
	return float64(v), ok
}
