package node_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// memOut records transmitted frames.
type memOut struct {
	mu     sync.Mutex
	frames []struct {
		to    int
		frame []byte
	}
}

func (o *memOut) Send(to int, frame []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.frames = append(o.frames, struct {
		to    int
		frame []byte
	}{to, frame})
	return nil
}

func (o *memOut) sent() []struct {
	to    int
	frame []byte
} {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append(o.frames[:0:0], o.frames...)
}

func encode(t *testing.T, m transport.Message) []byte {
	t.Helper()
	b, err := wire.EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runNode drives a node until check passes or the deadline hits.
func runNode(t *testing.T, n *node.Node) (cancel func()) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- n.Run(ctx) }()
	return func() {
		stop()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("node run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("node did not shut down")
		}
	}
}

// TestNodeRunsIterativeMachine drives a 2-node iterative run by hand: the
// node under test is vertex 0 of a 2-clique with f=0, its peer's frames are
// injected directly, and the node must decide on the averaged value.
func TestNodeRunsIterativeMachine(t *testing.T) {
	g := graph.Clique(2)
	h, err := iterative.NewMachine(g, 0, 0, 1, 0) // one round, input 0
	if err != nil {
		t.Fatal(err)
	}
	out := &memOut{}
	decided := make(chan float64, 1)
	n, err := node.New(node.Config{
		ID: 0, Graph: g, Handler: h, Out: out,
		OnDecide: func(_ int, x float64) { decided <- x },
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := runNode(t, n)

	// Peer 1 reports value 1 for round 1; with inputs {0, 1} the trimmed
	// mean (f=0) is 0.5.
	n.Inbox() <- []node.Inbound{{From: 1, Frame: encode(t, transport.Message{
		From: 1, To: 0, Payload: iterative.ValPayload{Round: 1, Value: 1},
	})}}
	select {
	case x := <-decided:
		if x != 0.5 {
			t.Fatalf("decided %v, want 0.5", x)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node never decided")
	}
	stop()

	if x, ok := n.Output(); !ok || x != 0.5 {
		t.Fatalf("Output() = %v, %v", x, ok)
	}
	st := n.Stats()
	if st.Delivered != 1 || st.Sent != 1 || st.ByKind["ITER-VAL"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	sent := out.sent()
	if len(sent) != 1 || sent[0].to != 1 {
		t.Fatalf("sent = %+v, want one frame to node 1", sent)
	}
	m, err := wire.DecodeMessage(sent[0].frame)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := m.Payload.(iterative.ValPayload); !ok || p.Round != 1 || p.Value != 0 {
		t.Fatalf("start frame = %#v", m)
	}
}

// TestNodeDropsForgedFrames checks the reliable-link enforcement: frames
// that are malformed, mis-addressed, sender-spoofed or off-edge never reach
// the handler.
func TestNodeDropsForgedFrames(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(1, 0) // only 1->0 exists
	h, err := iterative.NewMachine(g, 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan struct{}, 1)
	obs := sim.ObserverFunc(func(e sim.Event) {
		if e.Type == sim.EventDeliver {
			delivered <- struct{}{}
		}
	})
	n, err := node.New(node.Config{ID: 0, Graph: g, Handler: h, Out: &memOut{}, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	stop := runNode(t, n)

	payload := iterative.ValPayload{Round: 1, Value: 9}
	// One slab carrying every case, in order — the loop drains slabs FIFO,
	// so the genuine frame's delivery event (pushed last) means every
	// forged frame before it has been processed.
	n.Inbox() <- []node.Inbound{
		{From: 1, Frame: []byte("garbage")},
		// Claimed sender 2 on a frame arriving over the link from 1.
		{From: 1, Frame: encode(t, transport.Message{From: 2, To: 0, Payload: payload})},
		// Wrong destination.
		{From: 1, Frame: encode(t, transport.Message{From: 1, To: 2, Payload: payload})},
		// Edge 2->0 does not exist.
		{From: 2, Frame: encode(t, transport.Message{From: 2, To: 0, Payload: payload})},
		// The genuine frame.
		{From: 1, Frame: encode(t, transport.Message{From: 1, To: 0, Payload: payload})},
	}

	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("genuine frame never delivered")
	}
	stop()

	st := n.Stats()
	if st.Malformed != 1 || st.Spoofed != 3 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 1 malformed, 3 spoofed, 1 delivered", st)
	}
}

// TestNodeObserverSeesDeliveriesAndRounds verifies the event stream.
func TestNodeObserverSeesDeliveriesAndRounds(t *testing.T) {
	g := graph.Clique(2)
	h, err := iterative.NewMachine(g, 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []sim.Event
	obs := sim.ObserverFunc(func(e sim.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	decided := make(chan float64, 1)
	n, err := node.New(node.Config{
		ID: 0, Graph: g, Handler: h, Out: &memOut{}, Observer: obs,
		OnDecide: func(_ int, x float64) { decided <- x },
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := runNode(t, n)
	n.Inbox() <- []node.Inbound{{From: 1, Frame: encode(t, transport.Message{
		From: 1, To: 0, Payload: iterative.ValPayload{Round: 1, Value: 1},
	})}}
	<-decided
	stop()

	mu.Lock()
	defer mu.Unlock()
	var delivers, rounds int
	for _, e := range events {
		switch e.Type {
		case sim.EventDeliver:
			delivers++
			if e.Message.From != 1 || e.Message.To != 0 || e.Message.Seq != 1 {
				t.Fatalf("deliver event = %+v", e.Message)
			}
		case sim.EventRound:
			rounds++
			if e.Node != 0 || e.Round != 1 || e.Value != 0.5 {
				t.Fatalf("round event = %+v", e)
			}
		}
	}
	if delivers != 1 || rounds != 1 {
		t.Fatalf("got %d delivers, %d rounds; want 1 and 1", delivers, rounds)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	g := graph.Clique(2)
	h, _ := iterative.NewMachine(g, 0, 1, 1, 0)
	cases := []node.Config{
		{}, // no graph
		{Graph: g, ID: 5, Handler: h, Out: &memOut{}}, // id out of range
		{Graph: g, ID: 0, Out: &memOut{}},             // no handler
		{Graph: g, ID: 0, Handler: h, Out: &memOut{}}, // id mismatch (handler is 1)
		{Graph: g, ID: 1, Handler: h},                 // no outbound
	}
	for i, cfg := range cases {
		if _, err := node.New(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

// failOut fails every send — the transport-collapse shutdown path.
type failOut struct{ calls int }

func (o *failOut) Send(int, []byte) error { o.calls++; return errFail }

var errFail = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "transport collapsed" }

// TestNodeShutdownWithPendingInbox pins the cancellation half of the
// shutdown contract: a node cancelled while frames still sit in its inbox
// returns promptly and cleanly — pending deliveries are abandoned like
// messages still in flight when a simulator run stops — and Done() closes
// so transport pumps blocked mid-push can unwind.
func TestNodeShutdownWithPendingInbox(t *testing.T) {
	g := graph.Clique(2)
	h, err := iterative.NewMachine(g, 0, 0, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{ID: 0, Graph: g, Handler: h, Out: &memOut{}, InboxCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- n.Run(ctx) }()

	// Stuff the inbox beyond what one round consumes, then cancel while
	// the backlog is still pending.
	frame := encode(t, transport.Message{From: 1, To: 0, Payload: iterative.ValPayload{Round: 1, Value: 1}})
	for i := 0; i < 32; i++ {
		n.Inbox() <- []node.Inbound{{From: 1, Frame: frame}}
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("cancelled run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node did not shut down with a pending inbox")
	}
	select {
	case <-n.Done():
	default:
		t.Fatal("Done() not closed after Run returned")
	}
}

// TestNodeOutboundFailureStopsRun pins the other half: a send that fails
// mid-delivery surfaces as Run's error — on reliable links a dead
// transport is unsalvageable, not retryable — and the loop stops instead
// of delivering on top of a partial broadcast.
func TestNodeOutboundFailureStopsRun(t *testing.T) {
	g := graph.Clique(2)
	h, err := iterative.NewMachine(g, 0, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := &failOut{}
	n, err := node.New(node.Config{ID: 0, Graph: g, Handler: h, Out: out})
	if err != nil {
		t.Fatal(err)
	}
	// Start sends the round-1 broadcast, which fails immediately.
	err = n.Run(context.Background())
	if err == nil {
		t.Fatal("run with a failing outbound returned nil")
	}
	if out.calls == 0 {
		t.Fatal("outbound never invoked")
	}
}

// TestNodeInstanceEncode pins the service tier's encode hook: a node
// configured with a per-instance encoder stamps the instance id into every
// frame it transmits, while the default remains instance 0.
func TestNodeInstanceEncode(t *testing.T) {
	g := graph.Clique(2)
	const inst = uint64(4242)
	for _, tc := range []struct {
		name   string
		encode func([]byte, transport.Message) ([]byte, error)
		want   uint64
	}{
		{"default", nil, 0},
		{"stamped", func(dst []byte, m transport.Message) ([]byte, error) {
			return wire.AppendInstanceMessage(dst, inst, m)
		}, inst},
	} {
		h, err := iterative.NewMachine(g, 0, 0, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		out := &memOut{}
		n, err := node.New(node.Config{ID: 0, Graph: g, Handler: h, Out: out, Encode: tc.encode})
		if err != nil {
			t.Fatal(err)
		}
		stop := runNode(t, n)
		stop()
		sent := out.sent()
		if len(sent) == 0 {
			t.Fatalf("%s: no start traffic", tc.name)
		}
		for _, f := range sent {
			got, _, err := wire.DecodeInstanceMessage(f.frame)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got != tc.want {
				t.Fatalf("%s: frame stamped with instance %d, want %d", tc.name, got, tc.want)
			}
		}
	}
}
