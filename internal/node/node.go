// Package node is the live per-process runtime of the system: it wraps one
// protocol machine (a sim.Handler — honest or adversary-wrapped) behind a
// real inbox/outbox loop so the same state machines that run inside the
// deterministic simulator run unchanged over network transports.
//
// A Node owns a single event-loop goroutine. Inbound frames arrive on the
// inbox channel (pushed there by a transport's per-peer readers, which
// preserves per-peer order — the FIFO links the protocols assume); the loop
// decodes each frame with the wire codec, enforces the reliable-link model
// (the claimed sender must match the link the frame arrived on, and the
// edge must exist), invokes the handler, and transmits everything the
// handler sent through the Outbound. Handlers therefore keep the exact
// concurrency contract they have in the simulator: one invocation at a
// time, on one goroutine, with sends collected per invocation.
package node

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Inbound is one raw frame received from peer From. The From tag comes
// from the transport layer (the connection the frame arrived on), not from
// the frame contents; the node cross-checks the two. Pushing an Inbound
// into a node's inbox transfers ownership of Frame: the event loop
// releases the buffer to the wire pool after decoding it, so the pusher
// must not retain or reuse the slice (non-pooled buffers are released into
// a no-op, so hand-crafted frames are safe).
type Inbound struct {
	From  int
	Frame []byte
}

// Slabs are the unit the inbox channel carries: one []Inbound per channel
// operation, so a transport that read a burst of frames pays one send (and
// the event loop one receive) for the whole burst instead of one per frame.
// Like frame buffers, slabs are pooled in a capacity band through a channel
// freelist — deterministic for the alloc fences, inert for foreign slices.
const (
	// defaultSlabCap matches the transports' read-batch ceiling, so one
	// socket batch fits one slab without growing it.
	defaultSlabCap = 64
	minSlabCap     = 8
	maxSlabCap     = 1024
)

// slabPool holds released inbox slabs.
var slabPool = make(chan []Inbound, 1024)

// GetSlab returns an empty Inbound slab, reusing a released one when
// available. The caller owns it until it hands it off or releases it.
func GetSlab() []Inbound {
	select {
	case s := <-slabPool:
		return s[:0]
	default:
		return make([]Inbound, 0, defaultSlabCap)
	}
}

// PutSlab releases a slab back to the pool. Entries are zeroed first so a
// pooled slab never pins frame buffers; slabs outside the capacity band —
// including nil and slice literals from tests — are dropped silently. The
// frames inside must already have been released or handed off: PutSlab
// recycles only the container.
func PutSlab(s []Inbound) {
	if cap(s) < minSlabCap || cap(s) > maxSlabCap {
		return
	}
	for i := range s {
		s[i] = Inbound{}
	}
	select {
	case slabPool <- s[:0]:
	default:
	}
}

// Outbound transmits encoded frames toward a peer. Implementations must
// not block indefinitely on a slow peer — the cluster transports enqueue
// onto unbounded per-peer queues — because a blocked send path can deadlock
// two nodes that are flooding each other.
type Outbound interface {
	Send(to int, frame []byte) error
}

// Config parameterizes a Node.
type Config struct {
	// ID is this node's vertex in the graph.
	ID int
	// Graph is the shared topology (all nodes know the network, as the
	// paper assumes); it bounds which edges the node may use.
	Graph *graph.Graph
	// Handler is the protocol machine, possibly adversary-wrapped.
	Handler sim.Handler
	// Out transmits this node's traffic.
	Out Outbound
	// Encode appends an outbound message's wire frame body to dst (a pooled
	// buffer the node hands in) and returns the extended slice. Nil means
	// wire.AppendMessage (instance 0 — the single-shot runtimes). The
	// service tier supplies a per-instance encoder that stamps the
	// instance id into every frame the machine emits.
	Encode func(dst []byte, m transport.Message) ([]byte, error)
	// Observer, when non-nil, receives this node's runtime events
	// (deliveries and per-round value snapshots). In a cluster one observer
	// is typically shared by every node and is then invoked from concurrent
	// node loops: it must be goroutine-safe (JSONLObserver is). Event.Step
	// is the node-local delivery count.
	Observer sim.Observer
	// OnDecide, when non-nil, is invoked exactly once, from the node's
	// loop, when the handler first reports an output.
	OnDecide func(id int, output float64)
	// InboxCap is the inbox channel's buffer in slabs (default 256; each
	// slab carries up to a transport read batch of frames). Transport
	// pumps block when it fills, their upstream queues absorb the backlog.
	InboxCap int
}

// Stats counts a node's runtime traffic.
type Stats struct {
	// Delivered is the number of frames decoded and handed to the handler.
	Delivered int
	// Sent is the number of frames transmitted.
	Sent int
	// Malformed counts inbound frames the codec rejected; Spoofed counts
	// well-formed frames whose claimed sender or edge did not match the
	// link they arrived on. Both are dropped.
	Malformed int
	Spoofed   int
	// ByKind counts sent messages per payload kind, like the simulator's
	// transport stats.
	ByKind map[string]int
}

// Node runs one protocol endpoint over a live transport. Create with New,
// feed via Inbox, drive with Run.
type Node struct {
	cfg     Config
	inbox   chan []Inbound
	stats   Stats
	steps   int
	decided bool
	seen    int // rounds already streamed to the observer
	done    chan struct{}
}

// New validates the config and builds a node.
func New(cfg Config) (*Node, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("node: config needs a graph")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Graph.N() {
		return nil, fmt.Errorf("node: id %d outside graph order %d", cfg.ID, cfg.Graph.N())
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("node: config needs a handler")
	}
	if cfg.Handler.ID() != cfg.ID {
		return nil, fmt.Errorf("node: handler has id %d, config says %d", cfg.Handler.ID(), cfg.ID)
	}
	if cfg.Out == nil {
		return nil, fmt.Errorf("node: config needs an outbound")
	}
	if cfg.InboxCap == 0 {
		cfg.InboxCap = 256
	}
	if cfg.Encode == nil {
		cfg.Encode = wire.AppendMessage
	}
	return &Node{
		cfg:   cfg,
		inbox: make(chan []Inbound, cfg.InboxCap),
		stats: Stats{ByKind: make(map[string]int)},
		done:  make(chan struct{}),
	}, nil
}

// ID returns the node's vertex id.
func (n *Node) ID() int { return n.cfg.ID }

// Inbox is the channel transports push inbound slabs into — one []Inbound
// per channel operation (PushBatch is the usual front door; direct sends
// are for tests). Pushing a slab transfers ownership of the slab and every
// frame inside it. Senders must stop pushing (or tolerate blocking forever)
// once Run has returned; cluster transports handle this by closing their
// pumps alongside the node's context. InboxCap is therefore measured in
// slabs, not frames.
func (n *Node) Inbox() chan<- []Inbound { return n.inbox }

// PushBatch delivers one slab of inbound frames in a single channel
// operation. On true, ownership of slab and every frame in it has
// transferred to the node (the event loop releases frames after decoding
// and recycles the slab). On false the node is shutting down (or ctx was
// cancelled) and nothing was consumed: the caller still owns the slab and
// its frames and must release them.
func (n *Node) PushBatch(ctx context.Context, slab []Inbound) bool {
	if len(slab) == 0 {
		PutSlab(slab)
		return true
	}
	select {
	case n.inbox <- slab:
		return true
	case <-n.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// ReceiveBatch takes one slab off the inbox without running the event
// loop. It exists for the dispatch benchmarks and tests that need to
// observe the inbox hand-off itself; never call it while Run is live (the
// two would race for slabs and break per-link FIFO). Ownership of the
// returned slab and its frames transfers to the caller.
func (n *Node) ReceiveBatch(ctx context.Context) ([]Inbound, bool) {
	select {
	case slab := <-n.inbox:
		return slab, true
	case <-ctx.Done():
		return nil, false
	}
}

// Done is closed when Run returns; transports use it to unblock pumps that
// are mid-push into a full inbox.
func (n *Node) Done() <-chan struct{} { return n.done }

// Run executes the node's event loop: Start the handler, then deliver
// inbound frames until ctx is cancelled. Cancellation is the normal
// shutdown path and returns nil; Run only errors when the outbound
// transport fails, which on reliable links means the run is unsalvageable.
//
// Run must be called exactly once. After it returns, Output and Stats are
// safe to read from any goroutine.
func (n *Node) Run(ctx context.Context) error {
	defer close(n.done)
	out := sim.NewCollector(n.cfg.ID, n.cfg.Graph)
	n.cfg.Handler.Start(out)
	if err := n.transmit(out.Messages()); err != nil {
		return err
	}
	n.observeProgress()

	for {
		select {
		case <-ctx.Done():
			return nil
		case slab := <-n.inbox:
			if err := n.deliverSlab(slab); err != nil {
				return err
			}
		}
	}
}

// deliverSlab drains one inbox slab through deliver and recycles the slab.
// On a delivery error (outbound transport failure) the remaining frames
// are released — deliver already released the failing frame's buffer — so
// pool accounting stays balanced on the unsalvageable-run path too.
func (n *Node) deliverSlab(slab []Inbound) error {
	for i := range slab {
		if err := n.deliver(slab[i]); err != nil {
			for _, rest := range slab[i+1:] {
				wire.PutBuf(rest.Frame)
			}
			PutSlab(slab)
			return err
		}
	}
	PutSlab(slab)
	return nil
}

// deliver decodes, validates and hands one frame to the handler, then
// transmits the handler's response traffic.
func (n *Node) deliver(in Inbound) error {
	m, err := wire.DecodeMessage(in.Frame)
	// The decode copies every payload field out of the frame, so the node —
	// the frame's final owner — releases the buffer to the pool right here,
	// malformed or not.
	wire.PutBuf(in.Frame)
	if err != nil {
		n.stats.Malformed++
		return nil
	}
	// Reliable-link model: the receiver learns the true sender. A frame
	// claiming a different From than the connection it arrived on, a wrong
	// destination, or a non-edge is forged and dropped — the same guarantee
	// the simulator enforces by stamping From in the Outbox.
	if m.From != in.From || m.To != n.cfg.ID || !n.cfg.Graph.HasEdge(m.From, m.To) {
		n.stats.Spoofed++
		return nil
	}
	n.steps++
	n.stats.Delivered++
	m.Seq = uint64(n.steps) // node-local delivery order, for observability
	if n.cfg.Observer != nil {
		n.cfg.Observer.Observe(sim.Event{Type: sim.EventDeliver, Step: n.steps, Message: m})
	}
	out := sim.NewCollector(n.cfg.ID, n.cfg.Graph)
	n.cfg.Handler.Deliver(m, out)
	if err := n.transmit(out.Messages()); err != nil {
		return err
	}
	n.observeProgress()
	return nil
}

// transmit encodes and sends a handler invocation's collected messages.
// Each frame is encoded into a pooled buffer whose ownership travels with
// the Send; the transport releases it after transmission.
func (n *Node) transmit(msgs []transport.Message) error {
	for _, m := range msgs {
		frame, err := n.cfg.Encode(wire.GetBuf(), m)
		if err != nil {
			wire.PutBuf(frame)
			// A payload the codec cannot carry is a programming error in the
			// protocol/codec pairing, not a runtime condition.
			return fmt.Errorf("node %d: %w", n.cfg.ID, err)
		}
		if err := n.cfg.Out.Send(m.To, frame); err != nil {
			return fmt.Errorf("node %d: send to %d: %w", n.cfg.ID, m.To, err)
		}
		n.stats.Sent++
		n.stats.ByKind[m.Payload.Kind()]++
	}
	return nil
}

// historyProvider is implemented by machines that record per-round values.
type historyProvider interface{ History() []float64 }

// observeProgress streams newly completed rounds and fires OnDecide once.
func (n *Node) observeProgress() {
	if n.cfg.Observer != nil {
		if hp, ok := n.cfg.Handler.(historyProvider); ok {
			hist := hp.History()
			for r := n.seen; r < len(hist); r++ {
				n.cfg.Observer.Observe(sim.Event{
					Type: sim.EventRound, Step: n.steps,
					Node: n.cfg.ID, Round: r + 1, Value: hist[r],
				})
			}
			n.seen = len(hist)
		}
	}
	if !n.decided {
		if x, ok := n.cfg.Handler.Output(); ok {
			n.decided = true
			if n.cfg.OnDecide != nil {
				n.cfg.OnDecide(n.cfg.ID, x)
			}
		}
	}
}

// Output reports the handler's decision. Only call after Run has returned
// (handlers are not goroutine-safe while the loop is live).
func (n *Node) Output() (float64, bool) { return n.cfg.Handler.Output() }

// Handler exposes the wrapped protocol machine; same safety rule as Output.
func (n *Node) Handler() sim.Handler { return n.cfg.Handler }

// Stats returns the node's traffic counters; same safety rule as Output.
func (n *Node) Stats() Stats { return n.stats }
