package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/seedmix"
	"repro/internal/sim"
)

// This file is the adversary registry: named, multi-parameter, composable
// fault strategies, mirroring the protocol and policy registries. A fault
// is selected declaratively as a Spec — strategy name, params map, plus an
// optional list of composed mutator layers — and materialized into a
// sim.Handler wrapper by BuildHandler. Unknown names and unknown params are
// rejected eagerly, never defaulted silently.

// Params carries a strategy's named numeric knobs.
type Params map[string]float64

// Strategy is one registered adversary behavior. Implementations are
// stateless descriptors: all per-run state lives in the handlers Build
// returns.
type Strategy interface {
	// Name is the serialized strategy name ("silent", "crash", ...).
	Name() string
	// Doc is a one-line description for catalogs.
	Doc() string
	// Defaults lists the accepted parameter names with their default
	// values; params outside this set are rejected.
	Defaults() Params
	// Primary names the parameter the legacy scalar fault form maps to
	// ("" when the strategy has no scalar shorthand).
	Primary() string
	// Build wraps the vertex's machine with the behavior. b.Params is
	// complete (defaults filled) and validated.
	Build(b Build) (sim.Handler, error)
}

// MutatorStrategy is a Strategy whose behavior is expressed as outgoing
// message mutators. Only mutator strategies compose: their mutators can be
// layered onto one another (and onto wrapper strategies such as crash).
type MutatorStrategy interface {
	Strategy
	// Mutators returns the strategy's mutator chain for one faulty vertex.
	Mutators(id int, p Params, rng *rand.Rand) []Mutator
}

// Build is the context a Strategy materializes a handler from.
type Build struct {
	// ID is the faulty vertex.
	ID int
	// Inner is the vertex's honest machine (already wrapped in a Mutant
	// when the spec composes mutator layers under a wrapper strategy).
	Inner sim.Handler
	// Params is the complete, validated parameter set.
	Params Params
	// Rng is the vertex's decorrelated random stream (see NodeSeed).
	Rng *rand.Rand
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
)

// Register adds a strategy under its unique, non-empty name.
// Re-registration panics: two packages claiming one name is a programming
// error, not a runtime condition. The built-ins ("silent", "crash",
// "extreme", "equivocate", "tamper", "noise", "delayedequiv", "split",
// "replay") are pre-registered.
func Register(s Strategy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if s == nil || s.Name() == "" {
		panic("adversary: Register with nil strategy or empty name")
	}
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("adversary: strategy %q registered twice", s.Name()))
	}
	if p := s.Primary(); p != "" {
		if _, ok := s.Defaults()[p]; !ok {
			panic(fmt.Sprintf("adversary: strategy %q declares primary param %q outside its defaults", s.Name(), p))
		}
	}
	registry[s.Name()] = s
}

// Adversaries lists the registered strategy names, sorted.
func Adversaries() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a registered strategy.
func ByName(name string) (Strategy, error) {
	registryMu.RLock()
	s := registry[name]
	registryMu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("adversary: unknown fault kind %q (valid values are: %v)", name, Adversaries())
	}
	return s, nil
}

// Layer is one composed mutator strategy: a name plus its params.
type Layer struct {
	Kind   string
	Params Params
}

// Spec is a resolved fault configuration: the base strategy, its params,
// and the mutator layers composed on top of it. When the base is itself a
// mutator strategy, base and composed mutators share one Mutant wrapper
// (base mutators run first); when the base is a wrapper strategy (crash),
// the composed Mutant sits inside the wrapper — a crash-after-N node that
// misbehaves until it dies.
type Spec struct {
	Kind    string
	Params  Params
	Compose []Layer
}

// InnerDiscarder is implemented by wrapper strategies that never invoke
// the wrapped machine (silent): composing mutators under them would be
// silently dead configuration, so resolve rejects it eagerly.
type InnerDiscarder interface {
	DiscardsInner() bool
}

// resolvedLayer is one composed layer with its strategy resolved and its
// params completed.
type resolvedLayer struct {
	strategy MutatorStrategy
	params   Params
}

// resolve is the single source of truth for spec validation: it resolves
// the base strategy and every composed layer, fills and checks params, and
// rejects compositions the base cannot carry. Both Validate (decode time)
// and BuildHandler (construction time) go through it, so the two paths
// cannot diverge.
func resolve(s Spec) (base Strategy, baseParams Params, layers []resolvedLayer, err error) {
	if base, err = ByName(s.Kind); err != nil {
		return nil, nil, nil, err
	}
	if baseParams, err = fillParams(base, s.Params); err != nil {
		return nil, nil, nil, err
	}
	if d, ok := base.(InnerDiscarder); ok && d.DiscardsInner() && len(s.Compose) > 0 {
		return nil, nil, nil, fmt.Errorf("adversary: strategy %q never invokes the wrapped machine and cannot carry composed mutators", s.Kind)
	}
	for i, l := range s.Compose {
		ls, err := ByName(l.Kind)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("compose[%d]: %w", i, err)
		}
		ms, ok := ls.(MutatorStrategy)
		if !ok {
			return nil, nil, nil, fmt.Errorf("adversary: compose[%d]: strategy %q is not a mutator strategy and cannot compose (composable: %v)", i, l.Kind, MutatorKinds())
		}
		lp, err := fillParams(ms, l.Params)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("compose[%d]: %w", i, err)
		}
		layers = append(layers, resolvedLayer{strategy: ms, params: lp})
	}
	return base, baseParams, layers, nil
}

// Validate checks the spec eagerly: the strategy and every composed layer
// must be registered, every param name accepted, composed layers must be
// mutator strategies, and the base must actually carry them.
func (s Spec) Validate() error {
	_, _, _, err := resolve(s)
	return err
}

// MutatorKinds lists the registered strategies that can appear in a
// compose list, sorted.
func MutatorKinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name, s := range registry {
		if _, ok := s.(MutatorStrategy); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ParamChecker is optionally implemented by strategies that constrain
// their parameter ranges (probabilities in [0, 1], non-negative counts);
// CheckParams receives the complete, defaults-filled set. Violations are
// rejected eagerly at decode/construction time, like unknown names —
// never silently reinterpreted at run time.
type ParamChecker interface {
	CheckParams(p Params) error
}

// fillParams merges p over the strategy's defaults, rejecting unknown
// names and out-of-range values.
func fillParams(s Strategy, p Params) (Params, error) {
	defs := s.Defaults()
	full := make(Params, len(defs))
	for k, v := range defs {
		full[k] = v
	}
	for k, v := range p {
		if _, ok := defs[k]; !ok {
			return nil, fmt.Errorf("adversary: strategy %q: unknown param %q (valid params are: %v)", s.Name(), k, paramNames(defs))
		}
		full[k] = v
	}
	if c, ok := s.(ParamChecker); ok {
		if err := c.CheckParams(full); err != nil {
			return nil, fmt.Errorf("adversary: strategy %q: %w", s.Name(), err)
		}
	}
	return full, nil
}

func paramNames(defs Params) []string {
	names := make([]string, 0, len(defs))
	for k := range defs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// NodeSeed derives vertex id's fault-stream seed from the run seed. The
// derivation is a splitmix-style hash, not seed+id: adjacent ids must get
// decorrelated rand streams (seed+i hands neighboring Byzantine nodes
// nearly identical noise sequences).
func NodeSeed(seed int64, id int) int64 {
	return seedmix.Mix(seed, int64(id))
}

// BuildHandler materializes the spec into vertex id's handler, wrapping
// inner. It validates exactly like Spec.Validate (both run through
// resolve), so an unregistered kind, unknown param or uncarryable
// composition is a hard error on every construction path — no silent
// fallback to the honest handler. seed should already be the vertex's
// decorrelated stream seed (NodeSeed).
func BuildHandler(id int, s Spec, inner sim.Handler, seed int64) (sim.Handler, error) {
	base, baseParams, layers, err := resolve(s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var composed []Mutator
	for _, l := range layers {
		composed = append(composed, l.strategy.Mutators(id, l.params, rng)...)
	}
	if ms, ok := base.(MutatorStrategy); ok {
		muts := append(ms.Mutators(id, baseParams, rng), composed...)
		return &Mutant{Inner: inner, Mutators: muts, Rng: rng}, nil
	}
	if len(composed) > 0 {
		inner = &Mutant{Inner: inner, Mutators: composed, Rng: rng}
	}
	return base.Build(Build{ID: id, Inner: inner, Params: baseParams, Rng: rng})
}
