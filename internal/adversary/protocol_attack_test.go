package adversary_test

import (
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// seqJammer attacks the FIFO layer: it floods COMPLETE messages with a
// gapped sequence number (seq = 7 with nothing before it) and a bogus but
// well-formed message set, trying to wedge receivers' FIFO streams, plus
// VAL messages carrying its own trivial path so the traffic looks alive.
// Receiver-side gap buffering must simply hold the jammed messages forever
// without blocking the actual-fault-set thread.
type seqJammer struct {
	id int
	g  *graph.Graph
}

func (j *seqJammer) ID() int { return j.id }

func (j *seqJammer) Start(out *sim.Outbox) {
	out.Broadcast(bw.ValPayload{Round: 1, Value: 0.5, Path: graph.Path{j.id}})
	for _, w := range j.g.Out(j.id) {
		out.Send(w, bw.CompletePayload{
			Round:  1,
			Origin: j.id,
			Seq:    7, // gap: seqs 1..6 never sent
			Tag:    graph.EmptySet,
			Entries: []bw.ValEntry{
				{Value: 123, PathKey: (graph.Path{j.id}).Key()},
			},
			Path: graph.Path{j.id},
		})
	}
}

func (j *seqJammer) Deliver(msg transport.Message, out *sim.Outbox) {}

func (j *seqJammer) Output() (float64, bool) { return 0, false }

func TestBWSeqJammer(t *testing.T) {
	g := graph.Clique(4)
	outs, _ := runWithFaults(t, g, 1, []float64{0, 1, 1.5, 2}, 2, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			1: func(sim.Handler) sim.Handler { return &seqJammer{id: 1, g: g} },
		}, 77)
	// Honest inputs 0, 1.5, 2.
	assertAgreementValidity(t, outs, 0.25, 0, 2)
}

// tagForger floods syntactically valid COMPLETE messages whose tag names an
// honest node as the suspect and whose message set is internally consistent
// but fabricated. Honest nodes may snapshot it in threads whose reach set
// admits the forger; its Completeness clauses must then never be satisfied
// by genuine traffic (the fabricated values arrive over no uncoverable path
// set), which stalls only threads that are allowed to stall.
type tagForger struct {
	id     int
	g      *graph.Graph
	victim int
}

func (f *tagForger) ID() int { return f.id }

func (f *tagForger) Start(out *sim.Outbox) {
	out.Broadcast(bw.ValPayload{Round: 1, Value: 0.25, Path: graph.Path{f.id}})
	entries := []bw.ValEntry{
		{Value: 42, PathKey: (graph.Path{f.id}).Key()},
	}
	for _, w := range f.g.Out(f.id) {
		out.Send(w, bw.CompletePayload{
			Round:   1,
			Origin:  f.id,
			Seq:     1,
			Tag:     graph.SetOf(f.victim),
			Entries: entries,
			Path:    graph.Path{f.id},
		})
	}
}

func (f *tagForger) Deliver(msg transport.Message, out *sim.Outbox) {}

func (f *tagForger) Output() (float64, bool) { return 0, false }

func TestBWTagForger(t *testing.T) {
	g := graph.Clique(4)
	outs, _ := runWithFaults(t, g, 1, []float64{0, 1, 1.5, 2}, 2, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			1: func(sim.Handler) sim.Handler { return &tagForger{id: 1, g: g, victim: 0} },
		}, 79)
	assertAgreementValidity(t, outs, 0.25, 0, 2)
}
