package adversary_test

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// TestBWScheduleSweep runs the same faulty configuration under many random
// asynchrony schedules; agreement and validity must hold under every one.
func TestBWScheduleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	g := cliqueGraph(t)
	for seed := int64(0); seed < 15; seed++ {
		outs, _ := runWithFaults(t, g, 1, []float64{0, 3, 1, 2}, 3, 0.25,
			map[int]func(sim.Handler) sim.Handler{
				3: func(inner sim.Handler) sim.Handler {
					return &adversary.Mutant{
						Inner:    inner,
						Mutators: []adversary.Mutator{adversary.TamperRelays(func(x float64) float64 { return 99 - x })},
						Rng:      rand.New(rand.NewSource(seed)),
					}
				},
			}, seed)
		// Honest inputs: 0, 3, 1.
		assertAgreementValidity(t, outs, 0.25, 0, 3)
	}
}

// TestBWCrashTimingSweep crashes the faulty node at many different points,
// including mid-broadcast with varying numbers of escaping sends; liveness
// and safety must hold at every crash point (the adversarial power of the
// crash model is choosing this point).
func TestBWCrashTimingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	g := cliqueGraph(t)
	for _, after := range []int{0, 1, 2, 5, 10, 25, 60, 150, 400} {
		for _, escape := range []int{0, 1, 3} {
			after, escape := after, escape
			outs, _ := runWithFaults(t, g, 1, []float64{0, 3, 1, 2}, 3, 0.25,
				map[int]func(sim.Handler) sim.Handler{
					1: func(inner sim.Handler) sim.Handler {
						return &adversary.Crash{Inner: inner, AfterDeliveries: after, FinalSends: escape}
					},
				}, int64(after*10+escape))
			// Honest inputs: 0, 1, 2.
			assertAgreementValidity(t, outs, 0.25, 0, 2)
		}
	}
}

// TestBWDoubleFaultBeyondBound documents behavior OUTSIDE the resilience
// bound: with two faulty nodes but f = 1 on K4 (n = 3f+1 for f=1 only),
// guarantees are void — but the run must still terminate (no livelock) for
// the honest nodes or quiesce.
func TestBWDoubleFaultBeyondBound(t *testing.T) {
	g := cliqueGraph(t)
	// Two silent nodes: honest nodes may block forever waiting for
	// fullness, but the runner must reach quiescence rather than livelock.
	_, honest := runQuiescent(t, g, 1, []float64{0, 3, 1, 2}, 3, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			1: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 1} },
			2: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 2} },
		}, 3)
	if honest.Count() != 2 {
		t.Fatalf("honest set = %s", honest)
	}
}
