package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// The built-in strategies. Two concrete shapes: wrapperStrategy replaces or
// encloses the vertex's machine (silent, crash); mutatorStrategy rewrites
// its outgoing traffic and therefore composes (everything else).

// wrapperStrategy is a Strategy built from functions. discardsInner marks
// wrappers that never invoke the wrapped machine (silent), which resolve
// uses to reject dead compose lists eagerly.
type wrapperStrategy struct {
	name          string
	doc           string
	defaults      Params
	primary       string
	discardsInner bool
	check         func(p Params) error
	build         func(b Build) (sim.Handler, error)
}

func (s wrapperStrategy) Name() string                       { return s.name }
func (s wrapperStrategy) Doc() string                        { return s.doc }
func (s wrapperStrategy) Defaults() Params                   { return cloneParams(s.defaults) }
func (s wrapperStrategy) Primary() string                    { return s.primary }
func (s wrapperStrategy) DiscardsInner() bool                { return s.discardsInner }
func (s wrapperStrategy) Build(b Build) (sim.Handler, error) { return s.build(b) }
func (s wrapperStrategy) CheckParams(p Params) error {
	if s.check == nil {
		return nil
	}
	return s.check(p)
}

// mutatorStrategy is a MutatorStrategy built from functions; Build wraps
// the inner machine in a Mutant carrying the strategy's mutators.
type mutatorStrategy struct {
	name     string
	doc      string
	defaults Params
	primary  string
	check    func(p Params) error
	mutators func(id int, p Params, rng *rand.Rand) []Mutator
}

func (s mutatorStrategy) Name() string     { return s.name }
func (s mutatorStrategy) Doc() string      { return s.doc }
func (s mutatorStrategy) Defaults() Params { return cloneParams(s.defaults) }
func (s mutatorStrategy) Primary() string  { return s.primary }
func (s mutatorStrategy) CheckParams(p Params) error {
	if s.check == nil {
		return nil
	}
	return s.check(p)
}
func (s mutatorStrategy) Mutators(id int, p Params, rng *rand.Rand) []Mutator {
	return s.mutators(id, p, rng)
}
func (s mutatorStrategy) Build(b Build) (sim.Handler, error) {
	return &Mutant{Inner: b.Inner, Mutators: s.mutators(b.ID, b.Params, b.Rng), Rng: b.Rng}, nil
}

func cloneParams(p Params) Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// probParam constrains a parameter to [0, 1] — the same eager rejection
// the link-fault rules apply to their prob knobs.
func probParam(name string) func(Params) error {
	return func(p Params) error {
		if x := p[name]; x < 0 || x > 1 {
			return fmt.Errorf("param %q: %g outside [0, 1]", name, x)
		}
		return nil
	}
}

// nonNegParam constrains a parameter to be non-negative.
func nonNegParam(names ...string) func(Params) error {
	return func(p Params) error {
		for _, name := range names {
			if x := p[name]; x < 0 {
				return fmt.Errorf("param %q: %g must be non-negative", name, x)
			}
		}
		return nil
	}
}

func init() {
	Register(wrapperStrategy{
		name:          "silent",
		doc:           "never sends a message (crashed from the start)",
		discardsInner: true,
		build: func(b Build) (sim.Handler, error) {
			return &Silent{NodeID: b.ID}, nil
		},
	})
	Register(wrapperStrategy{
		name:     "crash",
		doc:      "behaves honestly, then crashes after `after` deliveries with at most `finalSends` escaping sends",
		defaults: Params{"after": 20, "finalSends": 1},
		primary:  "after",
		check:    nonNegParam("finalSends"),
		build: func(b Build) (sim.Handler, error) {
			return &Crash{
				Inner:           b.Inner,
				AfterDeliveries: int(b.Params["after"]),
				FinalSends:      int(b.Params["finalSends"]),
			}, nil
		},
	})
	Register(mutatorStrategy{
		name:     "extreme",
		doc:      "floods the extreme value `value` instead of its input",
		defaults: Params{"value": 1e9},
		primary:  "value",
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{ExtremeInput(p["value"])}
		},
	})
	Register(mutatorStrategy{
		name:     "equivocate",
		doc:      "reports input + step*(neighbor+1) per out-neighbor",
		defaults: Params{"step": 0.5},
		primary:  "step",
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{EquivocateInput(p["step"])}
		},
	})
	Register(mutatorStrategy{
		name:     "tamper",
		doc:      "negates and shifts every relayed value and corrupts relayed COMPLETE sets by `delta`",
		defaults: Params{"delta": 100},
		primary:  "delta",
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			delta := p["delta"]
			return []Mutator{
				TamperRelays(func(x float64) float64 { return -x - delta }),
				ForgeCompletes(delta),
			}
		},
	})
	Register(mutatorStrategy{
		name:     "noise",
		doc:      "perturbs every outgoing value by uniform noise in [-amp, amp]",
		defaults: Params{"amp": 10},
		primary:  "amp",
		check:    nonNegParam("amp"),
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{RandomNoise(p["amp"])}
		},
	})
	Register(mutatorStrategy{
		name:     "delayedequiv",
		doc:      "honest for the first `after` originations, then equivocates by `step` per neighbor — defeats detectors that only audit early rounds",
		defaults: Params{"step": 0.5, "after": 6},
		primary:  "step",
		check:    nonNegParam("after"),
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{DelayedEquivocation(p["step"], int(p["after"]))}
		},
	})
	Register(mutatorStrategy{
		name:     "split",
		doc:      "targeted two-faced originations: out-neighbors with id <= `pivot` receive `lo`, the rest `hi`",
		defaults: Params{"lo": -1e6, "hi": 1e6, "pivot": 0},
		primary:  "hi",
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{SplitInput(p["lo"], p["hi"], int(p["pivot"]))}
		},
	})
	Register(mutatorStrategy{
		name:     "replay",
		doc:      "with probability `prob`, re-sends a previously sent payload alongside each outgoing message",
		defaults: Params{"prob": 0.3},
		primary:  "prob",
		check:    probParam("prob"),
		mutators: func(_ int, p Params, _ *rand.Rand) []Mutator {
			return []Mutator{Replay(p["prob"])}
		},
	})
}
