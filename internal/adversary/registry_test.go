package adversary_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

func TestRegistryListsBuiltins(t *testing.T) {
	names := adversary.Adversaries()
	for _, want := range []string{
		"silent", "crash", "extreme", "equivocate", "tamper", "noise",
		"delayedequiv", "split", "replay",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Adversaries() = %v, missing %q", names, want)
		}
	}
	for _, name := range names {
		s, err := adversary.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name || s.Doc() == "" {
			t.Errorf("strategy %q: name=%q doc=%q", name, s.Name(), s.Doc())
		}
		if p := s.Primary(); p != "" {
			if _, ok := s.Defaults()[p]; !ok {
				t.Errorf("strategy %q: primary %q not in defaults %v", name, p, s.Defaults())
			}
		}
	}
}

func TestByNameUnknownIsError(t *testing.T) {
	if _, err := adversary.ByName("gremlin"); err == nil ||
		!strings.Contains(err.Error(), "valid values are") {
		t.Errorf("unknown strategy error unhelpful: %v", err)
	}
}

func TestSpecValidateRejectsEagerly(t *testing.T) {
	cases := []struct {
		name   string
		spec   adversary.Spec
		errHas string
	}{
		{"unknown kind", adversary.Spec{Kind: "gremlin"}, "unknown fault kind"},
		{"unknown param", adversary.Spec{Kind: "crash", Params: adversary.Params{"fuel": 3}}, `unknown param "fuel"`},
		{"unknown compose kind", adversary.Spec{Kind: "crash", Compose: []adversary.Layer{{Kind: "warp"}}}, "compose[0]"},
		{"non-mutator compose", adversary.Spec{Kind: "noise", Compose: []adversary.Layer{{Kind: "crash"}}}, "cannot compose"},
		{"compose under silent", adversary.Spec{Kind: "silent", Compose: []adversary.Layer{{Kind: "noise"}}}, "cannot carry composed mutators"},
		{"prob out of range", adversary.Spec{Kind: "replay", Params: adversary.Params{"prob": 1.5}}, "outside [0, 1]"},
		{"negative count", adversary.Spec{Kind: "crash", Params: adversary.Params{"finalSends": -3}}, "must be non-negative"},
		{"negative amp in compose", adversary.Spec{Kind: "crash", Compose: []adversary.Layer{{Kind: "noise", Params: adversary.Params{"amp": -1}}}}, "must be non-negative"},
		{"compose param", adversary.Spec{Kind: "crash", Compose: []adversary.Layer{{Kind: "noise", Params: adversary.Params{"vol": 1}}}}, `unknown param "vol"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("accepted: %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
	if err := (adversary.Spec{Kind: "crash", Params: adversary.Params{"after": 5, "finalSends": 2},
		Compose: []adversary.Layer{{Kind: "noise", Params: adversary.Params{"amp": 2}}}}).Validate(); err != nil {
		t.Errorf("valid composed spec rejected: %v", err)
	}
}

// TestBuildHandlerUnknownKindHardError pins the satellite fix: unknown
// fault construction errors instead of silently returning the honest
// handler.
func TestBuildHandlerUnknownKindHardError(t *testing.T) {
	if _, err := adversary.BuildHandler(1, adversary.Spec{Kind: "gremlin"}, &adversary.Silent{NodeID: 1}, 1); err == nil {
		t.Fatal("unknown kind built a handler")
	}
}

// bwHandlers builds honest BW machines on g with inputs i mod 4.
func bwHandlers(t *testing.T, g *graph.Graph) []sim.Handler {
	t.Helper()
	proto, err := bw.NewProto(g, 1, 4, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]sim.Handler, g.N())
	for i := range handlers {
		m, err := bw.NewMachine(proto, i, float64(i%4))
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = m
	}
	return handlers
}

// TestComposedCrashNoise runs a crash-after-N node that sprays noise until
// it dies: the wrapper encloses the composed Mutant and the honest nodes
// still converge.
func TestComposedCrashNoise(t *testing.T) {
	g := graph.Fig1a()
	handlers := bwHandlers(t, g)
	spec := adversary.Spec{
		Kind:    "crash",
		Params:  adversary.Params{"after": 8, "finalSends": 2},
		Compose: []adversary.Layer{{Kind: "noise", Params: adversary.Params{"amp": 50}}},
	}
	h, err := adversary.BuildHandler(1, spec, handlers[1], adversary.NodeSeed(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	handlers[1] = h
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(3)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	honest := g.Nodes().Remove(1)
	outs, all := r.Outputs(honest)
	if !all {
		t.Fatalf("honest nodes did not decide: %v", outs)
	}
	assertAgreementValidity(t, outs, 0.25, 0, 3)
}

// TestNewStrategiesTolerated runs each newly registered strategy as the
// single Byzantine node of a fig1a BW execution: f=1 tolerates any
// behavior, so the honest nodes must converge with validity.
func TestNewStrategiesTolerated(t *testing.T) {
	for _, kind := range []string{"delayedequiv", "split", "replay"} {
		t.Run(kind, func(t *testing.T) {
			g := graph.Fig1a()
			handlers := bwHandlers(t, g)
			h, err := adversary.BuildHandler(1, adversary.Spec{Kind: kind}, handlers[1], adversary.NodeSeed(9, 1))
			if err != nil {
				t.Fatal(err)
			}
			handlers[1] = h
			r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(9)}, handlers)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			honest := g.Nodes().Remove(1)
			outs, all := r.Outputs(honest)
			if !all {
				t.Fatalf("honest nodes did not decide: %v", outs)
			}
			assertAgreementValidity(t, outs, 0.25, 0, 3)
		})
	}
}

// TestNodeSeedDecorrelatesNoiseStreams is the regression test for the
// seed-derivation satellite: two adjacent faulty nodes running the same
// noise strategy must perturb with distinct streams. Under the old
// opts.Seed+i derivation adjacent sources handed out correlated values;
// with the splitmix derivation the actual RandomNoise offset sequences of
// nodes 1 and 2 must differ, for every probed base seed.
func TestNodeSeedDecorrelatesNoiseStreams(t *testing.T) {
	probe := transport.Message{From: 0, To: 1, Payload: bw.ValPayload{Round: 1, Value: 0, Path: graph.Path{0}}}
	stream := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		mut := adversary.RandomNoise(1)
		out := make([]float64, 8)
		for i := range out {
			p := mut(rng, probe)
			out[i] = p[0].(bw.ValPayload).Value
		}
		return out
	}
	for base := int64(0); base < 50; base++ {
		a := stream(adversary.NodeSeed(base, 1))
		b := stream(adversary.NodeSeed(base, 2))
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("base seed %d: adjacent nodes drew identical noise streams %v", base, a)
		}
	}
}
