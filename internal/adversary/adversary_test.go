package adversary_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// cliqueGraph returns the standard 4-clique used across the sweeps.
func cliqueGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.Clique(4)
}

// runQuiescent is runWithFaults without the all-honest-decided requirement:
// used to document behavior outside the resilience bound, where liveness is
// forfeit but the execution must still quiesce.
func runQuiescent(t *testing.T, g *graph.Graph, f int, inputs []float64, k, eps float64,
	faulty map[int]func(inner sim.Handler) sim.Handler, seed int64) (map[int]float64, graph.Set) {
	t.Helper()
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatalf("NewProto: %v", err)
	}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatalf("NewMachine(%d): %v", i, err)
		}
		if wrap, bad := faulty[i]; bad {
			handlers[i] = wrap(m)
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs, _ := r.Outputs(honest)
	return outs, honest
}

// runWithFaults executes BW where faulty[i] (if non-nil) replaces the honest
// machine at node i, and returns the outputs of the honest nodes.
func runWithFaults(t *testing.T, g *graph.Graph, f int, inputs []float64, k, eps float64,
	faulty map[int]func(inner sim.Handler) sim.Handler, seed int64) (map[int]float64, graph.Set) {
	t.Helper()
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatalf("NewProto: %v", err)
	}
	honest := graph.EmptySet
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatalf("NewMachine(%d): %v", i, err)
		}
		if wrap, bad := faulty[i]; bad {
			handlers[i] = wrap(m)
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs, all := r.Outputs(honest)
	if !all {
		t.Fatalf("honest nodes failed to decide: outputs=%v steps=%d", outs, r.Steps())
	}
	t.Logf("graph=%s honest outputs=%v (steps=%d, sent=%d)", g, outs, r.Steps(), r.Stats().Sent)
	return outs, honest
}

func assertAgreementValidity(t *testing.T, outs map[int]float64, eps, lo, hi float64) {
	t.Helper()
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	if max-min >= eps {
		t.Errorf("convergence violated: spread %g >= %g", max-min, eps)
	}
	if min < lo || max > hi {
		t.Errorf("validity violated: [%g,%g] outside [%g,%g]", min, max, lo, hi)
	}
}

func TestBWWithSilentFault(t *testing.T) {
	g := graph.Fig1a()
	outs, _ := runWithFaults(t, g, 1, []float64{0, 4, 1, 3, 2}, 4, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			2: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 2} },
		}, 11)
	// Honest inputs: 0, 4, 3, 2.
	assertAgreementValidity(t, outs, 0.25, 0, 4)
}

func TestBWWithCrashMidway(t *testing.T) {
	g := graph.Clique(4)
	outs, _ := runWithFaults(t, g, 1, []float64{0, 3, 1, 2}, 3, 0.2,
		map[int]func(sim.Handler) sim.Handler{
			1: func(inner sim.Handler) sim.Handler {
				return &adversary.Crash{Inner: inner, AfterDeliveries: 40, FinalSends: 1}
			},
		}, 13)
	assertAgreementValidity(t, outs, 0.2, 0, 3)
}

func TestBWWithExtremeInjector(t *testing.T) {
	g := graph.Clique(4)
	outs, _ := runWithFaults(t, g, 1, []float64{1, 0, 1.5, 2}, 3, 0.2,
		map[int]func(sim.Handler) sim.Handler{
			1: func(inner sim.Handler) sim.Handler {
				return &adversary.Mutant{
					Inner:    inner,
					Mutators: []adversary.Mutator{adversary.ExtremeInput(1e9)},
					Rng:      rand.New(rand.NewSource(5)),
				}
			},
		}, 17)
	// Honest inputs: 1, 1.5, 2 — validity must hold despite the 1e9 bomb.
	assertAgreementValidity(t, outs, 0.2, 1, 2)
}

func TestBWWithEquivocator(t *testing.T) {
	g := graph.Fig1a()
	outs, _ := runWithFaults(t, g, 1, []float64{0, 2, 4, 1, 3}, 4, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			1: func(inner sim.Handler) sim.Handler {
				return &adversary.Mutant{
					Inner:    inner,
					Mutators: []adversary.Mutator{adversary.EquivocateInput(0.7)},
					Rng:      rand.New(rand.NewSource(6)),
				}
			},
		}, 19)
	// Honest inputs: 0, 4, 1, 3.
	assertAgreementValidity(t, outs, 0.25, 0, 4)
}

func TestBWWithTamperingRelay(t *testing.T) {
	g := graph.Clique(5)
	inputs := []float64{0, 1, 2, 3, 4}
	outs, _ := runWithFaults(t, g, 1, inputs, 4, 0.25,
		map[int]func(sim.Handler) sim.Handler{
			3: func(inner sim.Handler) sim.Handler {
				return &adversary.Mutant{
					Inner: inner,
					Mutators: []adversary.Mutator{
						adversary.TamperRelays(func(x float64) float64 { return -x - 100 }),
						adversary.ForgeCompletes(42),
					},
					Rng: rand.New(rand.NewSource(7)),
				}
			},
		}, 23)
	// Honest inputs: 0, 1, 2, 4.
	assertAgreementValidity(t, outs, 0.25, 0, 4)
}

func TestNecessityOnK3(t *testing.T) {
	g := graph.Clique(3) // n = 3f for f = 1: 3-reach fails
	res, err := adversary.RunNecessity(g, 1, 1, 0.25, 99)
	if err != nil {
		t.Fatalf("RunNecessity: %v", err)
	}
	t.Logf("%s", res)
	if !res.StructureOK {
		t.Fatalf("stitching structure check failed: %s", res)
	}
	if !res.Violated() {
		t.Fatalf("expected convergence violation, got %s", res)
	}
}

func TestNecessityRejectsGoodGraph(t *testing.T) {
	if _, err := adversary.RunNecessity(graph.Clique(4), 1, 1, 0.25, 1); err == nil {
		t.Fatal("expected ErrConditionHolds on K4 with f=1")
	}
}
