// Package adversary provides the fault behaviors used in the experiments:
// crash faults (including mid-broadcast partial sends), silent nodes, and
// Byzantine nodes that produce protocol-shaped but corrupted traffic —
// equivocation, relay tampering, extreme-value injection, COMPLETE-set
// forgery and seeded random misbehavior. It also hosts the Theorem 18
// indistinguishability construction (necessity.go).
package adversary

import (
	"math/rand"

	"repro/internal/aba"
	"repro/internal/bw"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Silent is a node that never sends anything: the simplest Byzantine
// behavior (equivalently, a node crashed from the very beginning).
type Silent struct{ NodeID int }

var _ sim.Handler = (*Silent)(nil)

// ID implements sim.Handler.
func (s *Silent) ID() int { return s.NodeID }

// Start implements sim.Handler.
func (s *Silent) Start(*sim.Outbox) {}

// Deliver implements sim.Handler.
func (s *Silent) Deliver(transport.Message, *sim.Outbox) {}

// Output implements sim.Handler; a faulty node has no meaningful output.
func (s *Silent) Output() (float64, bool) { return 0, false }

// Crash wraps an honest handler and crashes it after a given number of
// deliveries. On the crash event only a prefix of the node's outgoing batch
// escapes, modeling a node dying mid-broadcast (crash faults may deliver to
// an arbitrary subset, which is the adversarial power in the crash model).
type Crash struct {
	Inner sim.Handler
	// AfterDeliveries is the number of Deliver events processed before the
	// crash; 0 crashes on the first delivery (Start always runs).
	AfterDeliveries int
	// FinalSends bounds the crash event's escaping sends.
	FinalSends int

	delivered int
	crashed   bool
}

var _ sim.Handler = (*Crash)(nil)

// ID implements sim.Handler.
func (c *Crash) ID() int { return c.Inner.ID() }

// Start implements sim.Handler.
func (c *Crash) Start(out *sim.Outbox) {
	if c.AfterDeliveries < 0 {
		c.crashed = true
		return
	}
	c.Inner.Start(out)
}

// Deliver implements sim.Handler.
func (c *Crash) Deliver(msg transport.Message, out *sim.Outbox) {
	if c.crashed {
		return
	}
	if c.delivered < c.AfterDeliveries {
		c.delivered++
		c.Inner.Deliver(msg, out)
		return
	}
	// Crash event: run the inner handler against a collector and let only a
	// prefix of its sends out.
	c.crashed = true
	col := sim.NewCollector(c.Inner.ID(), out.Graph())
	c.Inner.Deliver(msg, col)
	for i, m := range col.Messages() {
		if i >= c.FinalSends {
			break
		}
		out.Send(m.To, m.Payload)
	}
}

// Output implements sim.Handler. A crashed node never outputs.
func (c *Crash) Output() (float64, bool) { return 0, false }

// Mutator rewrites one outgoing message of a Byzantine node; returning nil
// drops it, returning several fabricates extra traffic. The destination is
// fixed (mutators corrupt content, not routing).
type Mutator func(rng *rand.Rand, m transport.Message) []transport.Payload

// Mutant wraps an honest machine and applies mutators to all of its
// outgoing traffic, producing protocol-shaped Byzantine behavior: message
// pattern and timing of a correct node, contents chosen by the adversary.
type Mutant struct {
	Inner    sim.Handler
	Mutators []Mutator
	Rng      *rand.Rand
}

var _ sim.Handler = (*Mutant)(nil)

// ID implements sim.Handler.
func (b *Mutant) ID() int { return b.Inner.ID() }

// Start implements sim.Handler.
func (b *Mutant) Start(out *sim.Outbox) {
	col := sim.NewCollector(b.Inner.ID(), out.Graph())
	b.Inner.Start(col)
	b.emit(col.Messages(), out)
}

// Deliver implements sim.Handler.
func (b *Mutant) Deliver(msg transport.Message, out *sim.Outbox) {
	col := sim.NewCollector(b.Inner.ID(), out.Graph())
	b.Inner.Deliver(msg, col)
	b.emit(col.Messages(), out)
}

// Output implements sim.Handler.
func (b *Mutant) Output() (float64, bool) { return 0, false }

func (b *Mutant) emit(msgs []transport.Message, out *sim.Outbox) {
	for _, m := range msgs {
		payloads := []transport.Payload{m.Payload}
		for _, mut := range b.Mutators {
			var next []transport.Payload
			for _, p := range payloads {
				next = append(next, mut(b.Rng, transport.Message{From: m.From, To: m.To, Payload: p})...)
			}
			payloads = next
		}
		for _, p := range payloads {
			out.Send(m.To, p)
		}
	}
}

// EquivocateInput makes the node report a different initial value to every
// out-neighbor. It is protocol-shaped, covering each family's notion of
// "my initial value": BW's round-r origination (trivial path) carries
// base + step·(to+1); an RBC INIT with numeric content (aad's value
// rounds, acs's input broadcast) carries content + step·(to+1), handing
// each receiver a different slot content for the echo quorums to kill or
// agree on; an ABA message flips its bit toward odd-id receivers — a
// two-faced vote the binding-value rule must contain. Relayed/derived
// traffic (echoes, readies, reports) passes through: this strategy lies
// about inputs, it does not corrupt the transport.
func EquivocateInput(step float64) Mutator {
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		switch v := m.Payload.(type) {
		case bw.ValPayload:
			if len(v.Path) != 1 {
				return []transport.Payload{m.Payload}
			}
			v.Value += step * float64(m.To+1)
			return []transport.Payload{v}
		case rbc.Msg:
			num, isNum := v.Content.(rbc.Num)
			if v.Phase != rbc.PhaseInit || !isNum {
				return []transport.Payload{m.Payload}
			}
			v.Content = num + rbc.Num(step*float64(m.To+1))
			return []transport.Payload{v}
		case aba.Msg:
			v.Value ^= m.To & 1
			return []transport.Payload{v}
		}
		return []transport.Payload{m.Payload}
	}
}

// TamperRelays corrupts every relayed state value (paths longer than one)
// by applying fn.
func TamperRelays(fn func(float64) float64) Mutator {
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		v, ok := m.Payload.(bw.ValPayload)
		if !ok || len(v.Path) <= 1 {
			return []transport.Payload{m.Payload}
		}
		v.Value = fn(v.Value)
		return []transport.Payload{v}
	}
}

// ExtremeInput replaces the node's own originations with an extreme value —
// the classic attack Filter-and-Average's trimming must absorb.
func ExtremeInput(x float64) Mutator {
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		v, ok := m.Payload.(bw.ValPayload)
		if !ok || len(v.Path) != 1 {
			return []transport.Payload{m.Payload}
		}
		v.Value = x
		return []transport.Payload{v}
	}
}

// DelayedEquivocation behaves honestly for the first after originations,
// then equivocates like EquivocateInput: base + step·(to+1). The delay
// defeats auditors that only inspect a node's early traffic; the mutator
// is stateful (one counter per faulty node, counting originated values
// across all out-neighbors).
func DelayedEquivocation(step float64, after int) Mutator {
	sent := 0
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		v, ok := m.Payload.(bw.ValPayload)
		if !ok || len(v.Path) != 1 {
			return []transport.Payload{m.Payload}
		}
		if sent++; sent <= after {
			return []transport.Payload{m.Payload}
		}
		v.Value += step * float64(m.To+1)
		return []transport.Payload{v}
	}
}

// SplitInput is the targeted two-faced attack: originations to
// out-neighbors with id <= pivot carry lo, the rest carry hi — the
// adversary partitions its audience into two camps and tells each a
// different story.
func SplitInput(lo, hi float64, pivot int) Mutator {
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		v, ok := m.Payload.(bw.ValPayload)
		if !ok || len(v.Path) != 1 {
			return []transport.Payload{m.Payload}
		}
		if m.To <= pivot {
			v.Value = lo
		} else {
			v.Value = hi
		}
		return []transport.Payload{v}
	}
}

// replayHistoryCap bounds the per-destination payload history Replay keeps,
// so long runs do not accumulate unbounded attack state.
const replayHistoryCap = 64

// Replay records the node's outgoing payloads per destination and, with
// probability prob per message, re-sends one previously sent payload
// alongside the current one — duplicated and out-of-order traffic that is
// protocol-shaped but stale.
func Replay(prob float64) Mutator {
	history := make(map[int][]transport.Payload)
	return func(rng *rand.Rand, m transport.Message) []transport.Payload {
		out := []transport.Payload{m.Payload}
		old := history[m.To]
		if len(old) > 0 && rng.Float64() < prob {
			out = append(out, old[rng.Intn(len(old))])
		}
		if len(old) < replayHistoryCap {
			history[m.To] = append(old, m.Payload)
		}
		return out
	}
}

// ForgeCompletes corrupts the entry sets of all COMPLETE messages the node
// originates or relays: entry values are shifted by delta, making the
// reported message sets inconsistent with the genuine flood.
func ForgeCompletes(delta float64) Mutator {
	return func(_ *rand.Rand, m transport.Message) []transport.Payload {
		c, ok := m.Payload.(bw.CompletePayload)
		if !ok {
			return []transport.Payload{m.Payload}
		}
		entries := make([]bw.ValEntry, len(c.Entries))
		copy(entries, c.Entries)
		for i := range entries {
			entries[i].Value += delta
		}
		c.Entries = entries
		return []transport.Payload{c}
	}
}

// DropKind drops all messages of the given payload kind with probability p.
func DropKind(kind string, p float64) Mutator {
	return func(rng *rand.Rand, m transport.Message) []transport.Payload {
		if m.Payload.Kind() == kind && rng.Float64() < p {
			return nil
		}
		return []transport.Payload{m.Payload}
	}
}

// RandomNoise perturbs every carried value (originations, relays and
// COMPLETE entries) by a uniform offset in [-amp, amp], independently per
// message — a seeded fuzzing adversary.
func RandomNoise(amp float64) Mutator {
	return func(rng *rand.Rand, m transport.Message) []transport.Payload {
		switch p := m.Payload.(type) {
		case bw.ValPayload:
			p.Value += amp * (2*rng.Float64() - 1)
			return []transport.Payload{p}
		case bw.CompletePayload:
			entries := make([]bw.ValEntry, len(p.Entries))
			copy(entries, p.Entries)
			for i := range entries {
				entries[i].Value += amp * (2*rng.Float64() - 1)
			}
			p.Entries = entries
			return []transport.Payload{p}
		default:
			return []transport.Payload{m.Payload}
		}
	}
}
