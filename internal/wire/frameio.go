package wire

// The live tier's frame-buffer pool and batched I/O primitives. Every
// frame that crosses a hot-path boundary — an Outbound.Send, a node inbox,
// a Mux dispatcher — is a []byte whose ownership travels with it: the
// sender allocates from GetBuf, each hand-off transfers ownership, and the
// final consumer releases with PutBuf once the bytes are dead (for inbound
// frames that is immediately after DecodeMessage, which copies every
// payload field out of the buffer). Nobody may retain a frame after
// releasing it, and nobody may release a frame twice; see DESIGN.md
// ("live-tier hot path") for the full ownership rules.
//
// The pool is a buffered channel rather than a sync.Pool: channel sends
// and receives of []byte values allocate nothing (no interface boxing of
// the slice header) and the pool is not emptied by GC, which makes the
// 0-allocs/op fences in the alloc-budget tests deterministic instead of
// flaky.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Pooled buffers live in a capacity band: GetBuf never hands out less than
// minPooledCap, and PutBuf silently drops buffers outside the band. The
// floor keeps steady-state protocol frames (tens of bytes) from reallocating
// on append; the ceiling keeps a rare giant frame from parking megabytes in
// the pool forever. The drop-outside-the-band rule also makes foreign
// buffers inert: callers that never heard of the pool (tests that push one
// literal frame many times, say) release small non-pooled slices into a
// no-op.
const (
	minPooledCap = 512
	maxPooledCap = 64 << 10
)

// framePool holds released frame buffers. A full pool drops further Puts
// (the buffers become garbage, which is the pre-pool behavior); an empty
// pool makes GetBuf allocate.
var framePool = make(chan []byte, 4096)

// GetBuf returns an empty frame buffer with at least minPooledCap capacity,
// reusing a released one when available. The caller owns the buffer until
// it hands it off or releases it with PutBuf.
func GetBuf() []byte {
	select {
	case b := <-framePool:
		return b[:0]
	default:
		return make([]byte, 0, minPooledCap)
	}
}

// PutBuf releases a frame buffer back to the pool. Buffers outside the
// pooled capacity band — including nil — are dropped silently, so releasing
// a buffer that did not come from GetBuf is always safe. The caller must
// not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) < minPooledCap || cap(b) > maxPooledCap {
		return
	}
	select {
	case framePool <- b[:0]:
	default:
	}
}

// AppendRawFrame appends body as one length-prefixed stream frame to dst
// and returns the extended slice — the in-place form of WriteRawFrame that
// lets a batch of frames coalesce into a single buffer (and a single Write
// syscall). dst is returned unchanged on an oversized body.
func AppendRawFrame(dst, body []byte) ([]byte, error) {
	if len(body) > MaxFrame {
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame %d", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// FrameReader reads length-prefixed frames from a stream through one
// buffered reader, handing out pooled frame bodies: the steady-state read
// path performs no per-frame allocation and no small header read syscalls.
type FrameReader struct {
	br  *bufio.Reader
	hdr [4]byte // scratch header; a field so reading it never escapes
	// err is a deferred stream error hit mid-batch: NextBatch returns the
	// frames decoded before the error first, then surfaces err on the next
	// call so no successfully-read frame is lost to a later failure.
	err error
}

// frameReaderBuf sizes the FrameReader's buffered reader: one read syscall
// ingests many small frames.
const frameReaderBuf = 64 << 10

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, frameReaderBuf)}
}

// Next reads one frame body. The returned slice is pooled: ownership
// transfers to the caller, who must release it with PutBuf once done with
// the bytes (DecodeMessage copies every payload field out, so releasing
// immediately after a decode is safe) — or hand it on to a consumer that
// will. io.EOF at a frame boundary is io.EOF; a stream cut mid-frame is
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() ([]byte, error) {
	if err := fr.takeErr(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(fr.br, fr.hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[:]))
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	return fr.readBody(n)
}

// takeErr consumes a deferred mid-batch error.
func (fr *FrameReader) takeErr() error {
	err := fr.err
	fr.err = nil
	return err
}

// readBody fills a pooled buffer with the next n stream bytes.
func (fr *FrameReader) readBody(n int) ([]byte, error) {
	body := GetBuf()
	if cap(body) < n {
		PutBuf(body)
		body = make([]byte, n)
	} else {
		body = body[:n]
	}
	if _, err := io.ReadFull(fr.br, body); err != nil {
		PutBuf(body)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// NextBatch reads up to max frames in one call, peeking each frame's
// routing header exactly once so downstream dispatchers never re-parse it.
// Decoded frames and their FrameInfos are appended to frames and infos
// (callers pass recycled [:0] slices to keep the steady state
// allocation-free) and the extended slices are returned.
//
// The first frame blocks exactly like Next; after it, frames are taken
// only while they are already fully buffered, so a batch never waits on
// the network for its tail — batch size adapts to what one read syscall
// ingested, preserving per-link arrival order (frames[i] was on the wire
// before frames[i+1]).
//
// A frame whose routing header fails PeekFrame is still returned, with
// infos[i].Bad set: the consumer accounts for it and releases it, and the
// stream keeps going. A stream error mid-batch (cut connection, oversized
// length prefix) is deferred: the frames read before it are returned with
// err == nil, and the next call surfaces the error. Ownership of every
// returned frame transfers to the caller, exactly as with Next.
func (fr *FrameReader) NextBatch(frames [][]byte, infos []FrameInfo, max int) ([][]byte, []FrameInfo, error) {
	if max < 1 {
		max = 1
	}
	if err := fr.takeErr(); err != nil {
		return frames, infos, err
	}
	first, err := fr.Next()
	if err != nil {
		return frames, infos, err
	}
	frames, infos = appendPeeked(frames, infos, first)
	for count := 1; count < max; count++ {
		// Only continue while the header is already buffered: Peek must not
		// block on the network once we hold undelivered frames.
		if fr.br.Buffered() < 4 {
			break
		}
		hdr, perr := fr.br.Peek(4)
		if perr != nil {
			break
		}
		n := int(binary.BigEndian.Uint32(hdr))
		if n > MaxFrame {
			// Poison the stream but deliver the batch first.
			fr.err = fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
			break
		}
		if fr.br.Buffered() < 4+n {
			break
		}
		fr.br.Discard(4)
		body, berr := fr.readBody(n)
		if berr != nil {
			fr.err = berr
			break
		}
		frames, infos = appendPeeked(frames, infos, body)
	}
	return frames, infos, nil
}

// appendPeeked appends one frame and its peeked routing header.
func appendPeeked(frames [][]byte, infos []FrameInfo, body []byte) ([][]byte, []FrameInfo) {
	info, err := PeekFrame(body)
	if err != nil {
		info = FrameInfo{Bad: true}
	}
	return append(frames, body), append(infos, info)
}
