package wire

// The live tier's frame-buffer pool and batched I/O primitives. Every
// frame that crosses a hot-path boundary — an Outbound.Send, a node inbox,
// a Mux dispatcher — is a []byte whose ownership travels with it: the
// sender allocates from GetBuf, each hand-off transfers ownership, and the
// final consumer releases with PutBuf once the bytes are dead (for inbound
// frames that is immediately after DecodeMessage, which copies every
// payload field out of the buffer). Nobody may retain a frame after
// releasing it, and nobody may release a frame twice; see DESIGN.md
// ("live-tier hot path") for the full ownership rules.
//
// The pool is a buffered channel rather than a sync.Pool: channel sends
// and receives of []byte values allocate nothing (no interface boxing of
// the slice header) and the pool is not emptied by GC, which makes the
// 0-allocs/op fences in the alloc-budget tests deterministic instead of
// flaky.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Pooled buffers live in a capacity band: GetBuf never hands out less than
// minPooledCap, and PutBuf silently drops buffers outside the band. The
// floor keeps steady-state protocol frames (tens of bytes) from reallocating
// on append; the ceiling keeps a rare giant frame from parking megabytes in
// the pool forever. The drop-outside-the-band rule also makes foreign
// buffers inert: callers that never heard of the pool (tests that push one
// literal frame many times, say) release small non-pooled slices into a
// no-op.
const (
	minPooledCap = 512
	maxPooledCap = 64 << 10
)

// framePool holds released frame buffers. A full pool drops further Puts
// (the buffers become garbage, which is the pre-pool behavior); an empty
// pool makes GetBuf allocate.
var framePool = make(chan []byte, 4096)

// GetBuf returns an empty frame buffer with at least minPooledCap capacity,
// reusing a released one when available. The caller owns the buffer until
// it hands it off or releases it with PutBuf.
func GetBuf() []byte {
	select {
	case b := <-framePool:
		return b[:0]
	default:
		return make([]byte, 0, minPooledCap)
	}
}

// PutBuf releases a frame buffer back to the pool. Buffers outside the
// pooled capacity band — including nil — are dropped silently, so releasing
// a buffer that did not come from GetBuf is always safe. The caller must
// not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) < minPooledCap || cap(b) > maxPooledCap {
		return
	}
	select {
	case framePool <- b[:0]:
	default:
	}
}

// AppendRawFrame appends body as one length-prefixed stream frame to dst
// and returns the extended slice — the in-place form of WriteRawFrame that
// lets a batch of frames coalesce into a single buffer (and a single Write
// syscall). dst is returned unchanged on an oversized body.
func AppendRawFrame(dst, body []byte) ([]byte, error) {
	if len(body) > MaxFrame {
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame %d", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// FrameReader reads length-prefixed frames from a stream through one
// buffered reader, handing out pooled frame bodies: the steady-state read
// path performs no per-frame allocation and no small header read syscalls.
type FrameReader struct {
	br  *bufio.Reader
	hdr [4]byte // scratch header; a field so reading it never escapes
}

// frameReaderBuf sizes the FrameReader's buffered reader: one read syscall
// ingests many small frames.
const frameReaderBuf = 64 << 10

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, frameReaderBuf)}
}

// Next reads one frame body. The returned slice is pooled: ownership
// transfers to the caller, who must release it with PutBuf once done with
// the bytes (DecodeMessage copies every payload field out, so releasing
// immediately after a decode is safe) — or hand it on to a consumer that
// will. io.EOF at a frame boundary is io.EOF; a stream cut mid-frame is
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.br, fr.hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[:]))
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body := GetBuf()
	if cap(body) < n {
		PutBuf(body)
		body = make([]byte, n)
	} else {
		body = body[:n]
	}
	if _, err := io.ReadFull(fr.br, body); err != nil {
		PutBuf(body)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}
