package wire_test

import (
	"bytes"
	"encoding/hex"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/aad"
	"repro/internal/aba"
	"repro/internal/bw"
	"repro/internal/crashapprox"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/rbc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// sampleMessages covers every payload type and the boundary shapes the
// codec must preserve: empty and long paths, NaN and infinite values,
// multi-entry COMPLETE sets, all three RBC phases and both content types.
func sampleMessages() []transport.Message {
	return []transport.Message{
		{From: 0, To: 1, Payload: bw.ValPayload{Round: 1, Value: 2.5, Path: graph.Path{0}}},
		{From: 3, To: 7, Payload: bw.ValPayload{Round: 12, Value: math.Inf(-1), Path: graph.Path{3, 1, 4, 1, 5}}},
		{From: 2, To: 0, Payload: bw.ValPayload{Round: 0, Value: math.NaN()}},
		{From: 1, To: 2, Payload: bw.CompletePayload{
			Round: 3, Origin: 1, Seq: 9, Tag: graph.SetOf(2, 5),
			Entries: []bw.ValEntry{
				{Value: -1.25, PathKey: graph.Path{0, 1}.Key()},
				{Value: 7, PathKey: graph.Path{2}.Key()},
			},
			Path: graph.Path{1, 2},
		}},
		{From: 5, To: 4, Payload: bw.CompletePayload{Round: 1, Origin: 5, Tag: graph.EmptySet}},
		{From: 0, To: 63, Payload: crashapprox.ValPayload{Round: 2, Value: 0.125, Path: graph.Path{0, 63}}},
		{From: 9, To: 8, Payload: iterative.ValPayload{Round: 4, Value: -3}},
		{From: 0, To: 1, Payload: rbc.Msg{Phase: rbc.PhaseInit, Origin: 0, Tag: "r1/value", Content: aad.Num(1.5)}},
		{From: 1, To: 2, Payload: rbc.Msg{Phase: rbc.PhaseEcho, Origin: 0, Tag: "r2/report",
			Content: aad.Report{0: 1, 3: -2.5, 2: math.Pi}}},
		{From: 2, To: 3, Payload: rbc.Msg{Phase: rbc.PhaseReady, Origin: 2, Tag: "", Content: aad.Num(math.NaN())}},
		{From: 0, To: 1, Payload: aba.Msg{Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: 0}},
		{From: 3, To: 2, Payload: aba.Msg{Inst: 6, Round: 300, Phase: aba.PhaseAux, Value: 1}},
		{From: 1, To: 0, Payload: aba.Msg{Inst: 1023, Round: 0, Phase: aba.PhaseDone, Value: 1}},
		{From: 0, To: 7, Payload: wire.Open{Protocol: "acs"}},
		{From: 6, To: 2, Payload: wire.Open{Protocol: "bw"}},
	}
}

// equalMessage compares messages with NaN-aware float semantics: the codec
// must preserve NaN payloads (it round-trips bits), which reflect.DeepEqual
// would reject.
func equalMessage(a, b transport.Message) bool {
	ab, errA := wire.EncodeMessage(a)
	bb, errB := wire.EncodeMessage(b)
	return errA == nil && errB == nil && bytes.Equal(ab, bb) &&
		a.From == b.From && a.To == b.To && a.Seq == b.Seq
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		body, err := wire.EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %v: %v", m, err)
		}
		got, err := wire.DecodeMessage(body)
		if err != nil {
			t.Fatalf("decode %v: %v", m, err)
		}
		if !equalMessage(m, got) {
			t.Fatalf("round trip changed message:\n in: %#v\nout: %#v", m, got)
		}
		// Everything except NaN-carrying payloads must also round-trip under
		// deep equality (structure, not just bytes).
		if !hasNaN(m) && !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip not deep-equal:\n in: %#v\nout: %#v", m, got)
		}
	}
}

func hasNaN(m transport.Message) bool {
	switch p := m.Payload.(type) {
	case bw.ValPayload:
		return math.IsNaN(p.Value)
	case rbc.Msg:
		n, ok := p.Content.(aad.Num)
		return ok && math.IsNaN(float64(n))
	default:
		return false
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := wire.WriteFrame(&buf, m); err != nil {
			t.Fatalf("write frame: %v", err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		got, err := wire.ReadMessage(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !equalMessage(want, got) {
			t.Fatalf("frame %d changed: in %#v out %#v", i, want, got)
		}
	}
	if _, err := wire.ReadMessage(r); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestTruncatedFrameIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, sampleMessages()[0]); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := wire.ReadMessage(bytes.NewReader(cut)); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	valid, err := wire.EncodeMessage(sampleMessages()[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad version", append([]byte{99}, valid[1:]...), "unsupported version"},
		{"unknown payload type", []byte{wire.Version, 0, 0, 1, 200}, "unknown payload type"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAA), "trailing"},
		{"truncated payload", valid[:len(valid)-3], "truncated"},
	}
	for _, tc := range cases {
		if _, err := wire.DecodeMessage(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestEncodeRejectsUnknownPayload(t *testing.T) {
	if _, err := wire.EncodeMessage(transport.Message{Payload: fakePayload{}}); err == nil {
		t.Fatal("want error for unknown payload type")
	}
	if _, err := wire.EncodeMessage(transport.Message{From: 0, To: 1}); err == nil {
		t.Fatal("want error for nil payload")
	}
	if _, err := wire.EncodeMessage(transport.Message{From: -1, To: 1,
		Payload: iterative.ValPayload{}}); err == nil {
		t.Fatal("want error for negative node id")
	}
}

// TestEncodeRejectsBadABA pins the encoder-side validation of ABA frames:
// a hostile or buggy machine cannot put out-of-domain votes on the wire.
func TestEncodeRejectsBadABA(t *testing.T) {
	for name, p := range map[string]aba.Msg{
		"value 2":        {Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: 2},
		"negative value": {Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: -1},
		"phase 0":        {Inst: 0, Round: 1, Phase: 0, Value: 1},
		"phase 9":        {Inst: 0, Round: 1, Phase: aba.Phase(9), Value: 1},
		"negative inst":  {Inst: -1, Round: 1, Phase: aba.PhaseAux, Value: 1},
		"negative round": {Inst: 0, Round: -1, Phase: aba.PhaseAux, Value: 1},
	} {
		if _, err := wire.EncodeMessage(transport.Message{From: 0, To: 1, Payload: p}); err == nil {
			t.Errorf("%s: encode accepted %+v", name, p)
		}
	}
}

type fakePayload struct{}

func (fakePayload) Kind() string { return "FAKE" }

// TestGoldenWireVectors pins the exact on-wire bytes of one representative
// message per payload type at codec version 4, including instance-stamped
// frames (the service tier's multiplexing header). These are a
// compatibility contract: any codec change that alters them is a wire
// break and must come with a Version bump and a regenerated table, not a
// silent edit.
func TestGoldenWireVectors(t *testing.T) {
	vectors := []struct {
		inst uint64
		msg  transport.Message
		hex  string
	}{
		{0, transport.Message{From: 0, To: 1, Payload: bw.ValPayload{Round: 1, Value: 2.5, Path: graph.Path{0}}},
			"04000001010140040000000000000100"},
		{0, transport.Message{From: 1, To: 2, Payload: bw.CompletePayload{
			Round: 3, Origin: 1, Seq: 9, Tag: graph.SetOf(2, 5),
			Entries: []bw.ValEntry{{Value: -1.25, PathKey: graph.Path{0, 1}.Key()}},
			Path:    graph.Path{1, 2},
		}}, "0400010202030109020205010400000001bff4000000000000020102"},
		{0, transport.Message{From: 0, To: 3, Payload: crashapprox.ValPayload{Round: 2, Value: 0.125, Path: graph.Path{0, 3}}},
			"0400000303023fc0000000000000020003"},
		{0, transport.Message{From: 9, To: 8, Payload: iterative.ValPayload{Round: 4, Value: -3}},
			"040009080404c008000000000000"},
		{0, transport.Message{From: 0, To: 1, Payload: rbc.Msg{Phase: rbc.PhaseInit, Origin: 0, Tag: "acs/v", Content: rbc.Num(1.5)}},
			"04000001050100056163732f76013ff8000000000000"},
		{0, transport.Message{From: 1, To: 2, Payload: rbc.Msg{Phase: rbc.PhaseEcho, Origin: 0, Tag: "r2/report",
			Content: aad.Report{0: 1, 2: -2.5}}},
			"040001020502000972322f7265706f72740202003ff000000000000002c004000000000000"},
		{0, transport.Message{From: 0, To: 1, Payload: aba.Msg{Inst: 0, Round: 1, Phase: aba.PhaseBval, Value: 1}},
			"040000010601000101"},
		{5, transport.Message{From: 2, To: 3, Payload: aba.Msg{Inst: 5, Round: 130, Phase: aba.PhaseAux, Value: 0}},
			"04050203060205820100"},
		{0, transport.Message{From: 3, To: 0, Payload: aba.Msg{Inst: 2, Round: 0, Phase: aba.PhaseDone, Value: 1}},
			"040003000603020001"},
		{7, transport.Message{From: 0, To: 1, Payload: wire.Open{Protocol: "acs"}},
			"040700010703616373"},
		{300, transport.Message{From: 4, To: 6, Payload: iterative.ValPayload{Round: 2, Value: 0.5}},
			"04ac02040604023fe0000000000000"},
	}
	for _, v := range vectors {
		kind := v.msg.Payload.Kind()
		want, err := hex.DecodeString(v.hex)
		if err != nil {
			t.Fatalf("%s: bad vector hex: %v", kind, err)
		}
		if want[0] != wire.Version {
			t.Fatalf("%s: golden vector carries version %d, codec speaks %d — regenerate the table", kind, want[0], wire.Version)
		}
		got, err := wire.EncodeInstanceMessage(v.inst, v.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire bytes changed\n got: %x\nwant: %x", kind, got, want)
		}
		inst, back, err := wire.DecodeInstanceMessage(want)
		if err != nil {
			t.Fatalf("%s: golden bytes no longer decode: %v", kind, err)
		}
		if inst != v.inst {
			t.Errorf("%s: golden bytes decode to instance %d, want %d", kind, inst, v.inst)
		}
		if !equalMessage(v.msg, back) {
			t.Errorf("%s: golden bytes decode to a different message: %#v", kind, back)
		}
		info, err := wire.PeekFrame(want)
		if err != nil {
			t.Fatalf("%s: peek: %v", kind, err)
		}
		_, isOpen := v.msg.Payload.(wire.Open)
		if info.Inst != v.inst || info.From != v.msg.From || info.To != v.msg.To || info.Open != isOpen {
			t.Errorf("%s: peek = %+v, want inst %d from %d to %d open %v",
				kind, info, v.inst, v.msg.From, v.msg.To, isOpen)
		}
	}
}

// TestInstanceRoundTrip pins the multiplexing header across the instance-id
// domain: the id survives encode/decode at every varint width and the
// instance-0 legacy helpers agree with the instance-aware ones.
func TestInstanceRoundTrip(t *testing.T) {
	for _, inst := range []uint64{0, 1, 127, 128, 16384, 1 << 32, math.MaxUint64} {
		for _, m := range sampleMessages() {
			body, err := wire.EncodeInstanceMessage(inst, m)
			if err != nil {
				t.Fatalf("inst %d: encode %v: %v", inst, m, err)
			}
			gotInst, got, err := wire.DecodeInstanceMessage(body)
			if err != nil {
				t.Fatalf("inst %d: decode: %v", inst, err)
			}
			if gotInst != inst || !equalMessage(m, got) {
				t.Fatalf("inst %d: round trip changed frame: inst %d msg %#v", inst, gotInst, got)
			}
			// DecodeMessage accepts any instance and discards it.
			if _, err := wire.DecodeMessage(body); err != nil {
				t.Fatalf("inst %d: instance-blind decode: %v", inst, err)
			}
		}
	}
	// EncodeMessage is exactly EncodeInstanceMessage(0, ·).
	m := sampleMessages()[0]
	a, _ := wire.EncodeMessage(m)
	b, _ := wire.EncodeInstanceMessage(0, m)
	if !bytes.Equal(a, b) {
		t.Fatalf("EncodeMessage disagrees with instance 0: %x vs %x", a, b)
	}
}

func TestOpenPayload(t *testing.T) {
	body, err := wire.EncodeInstanceMessage(9, transport.Message{From: 2, To: 5, Payload: wire.Open{Protocol: "iterative"}})
	if err != nil {
		t.Fatal(err)
	}
	inst, m, err := wire.DecodeInstanceMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if inst != 9 {
		t.Fatalf("inst = %d", inst)
	}
	open, ok := m.Payload.(wire.Open)
	if !ok || open.Protocol != "iterative" {
		t.Fatalf("payload = %#v", m.Payload)
	}
	if _, err := wire.EncodeMessage(transport.Message{From: 0, To: 1, Payload: wire.Open{}}); err == nil {
		t.Fatal("want error for empty protocol name")
	}
	if _, err := wire.EncodeMessage(transport.Message{From: 0, To: 1,
		Payload: wire.Open{Protocol: strings.Repeat("x", 1<<13)}}); err == nil {
		t.Fatal("want error for oversized protocol name")
	}
}

func TestPeekFrameRejects(t *testing.T) {
	if _, err := wire.PeekFrame(nil); err == nil {
		t.Fatal("want error for empty frame")
	}
	if _, err := wire.PeekFrame([]byte{99, 0, 0, 1, 4}); err == nil {
		t.Fatal("want error for bad version")
	}
	if _, err := wire.PeekFrame([]byte{wire.Version, 0, 0}); err == nil {
		t.Fatal("want error for truncated header")
	}
}

// FuzzWireRoundTrip feeds arbitrary bytes to the decoder. Whatever decodes
// must re-encode, and the re-encoded form must be canonical: decoding and
// encoding it again reproduces the same bytes (idempotence). The seed
// corpus is every sample message's real encoding, so the fuzzer starts on
// the valid-format manifold instead of random headers.
func FuzzWireRoundTrip(f *testing.F) {
	for i, m := range sampleMessages() {
		// Seed across the instance-id widths so the fuzzer starts with
		// multi-byte multiplexing headers, not just instance 0.
		body, err := wire.EncodeInstanceMessage(uint64(i)*uint64(i)*200, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, m, err := wire.DecodeInstanceMessage(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		canon, err := wire.EncodeInstanceMessage(inst, m)
		if err != nil {
			t.Fatalf("decoded message fails to encode: %v\nmessage: %#v", err, m)
		}
		inst2, m2, err := wire.DecodeInstanceMessage(canon)
		if err != nil {
			t.Fatalf("canonical form fails to decode: %v\nbytes: %x", err, canon)
		}
		if inst2 != inst {
			t.Fatalf("instance id changed across round trip: %d -> %d", inst, inst2)
		}
		canon2, err := wire.EncodeInstanceMessage(inst2, m2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("encoding not canonical:\nfirst:  %x\nsecond: %x", canon, canon2)
		}
		// The routing peek must agree with the full decode on every frame
		// the decoder accepts.
		info, err := wire.PeekFrame(data)
		if err != nil {
			t.Fatalf("decodable frame fails to peek: %v\nbytes: %x", err, data)
		}
		_, isOpen := m.Payload.(wire.Open)
		if info.Inst != inst || info.From != m.From || info.To != m.To || info.Open != isOpen {
			t.Fatalf("peek disagrees with decode: %+v vs inst %d %#v", info, inst, m)
		}
	})
}
