// Package wire is the versioned binary codec of the live node runtime: it
// serializes every protocol message the repository's machines exchange —
// BW's VAL and COMPLETE floods, the crash-fault and iterative value
// payloads, the RBC traffic (with the shared numeric and AAD report
// contents), and the exact tier's ABA votes — into a deterministic,
// length-prefixed frame format suitable for real network links.
//
// # Format
//
// A frame on a stream is a 4-byte big-endian body length followed by the
// body. A body is:
//
//	byte    version (currently 4)
//	uvarint instance id (0 for single-shot runs)
//	uvarint from
//	uvarint to
//	byte    payload type (one of the type* constants)
//	...     payload-specific fields
//
// The instance id multiplexes many concurrent consensus instances over one
// persistent connection — the service tier's pipelining unit. Single-shot
// runtimes (the classic cluster transports, abacnode) encode and accept
// instance 0 via EncodeMessage/DecodeMessage; the service daemon stamps
// per-instance ids with EncodeInstanceMessage and routes inbound frames by
// PeekFrame without paying a full decode.
//
// Integers are unsigned varints, floats are IEEE-754 bits in big-endian
// order, byte strings and paths are uvarint-length-prefixed. Map-valued
// contents (AAD reports) are serialized in sorted key order, so encoding is
// a pure function of the message value: equal messages produce equal bytes
// on every node, and re-encoding a decoded message reproduces the input
// bytes exactly (the canonical-form property the fuzz tests enforce).
//
// The simulator-assigned Message.Seq is a property of the central in-flight
// pool, not of the message, and does not travel: frames decode with Seq 0
// and the receiving runtime assigns its own local delivery order.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/aad"
	"repro/internal/aba"
	"repro/internal/bw"
	"repro/internal/crashapprox"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/rbc"
	"repro/internal/transport"
)

// Version is the codec version emitted and accepted by this build.
// Version 2 widened the node-id domain to MaxNodes = 1024: COMPLETE tags
// became member lists (previously one packed uint64) and entry path keys
// two bytes per node — a version-1 peer would misdecode rather than
// cleanly reject, hence the bump. Version 3 added the exact tier's ABA
// payload (typeABA); the addition is backward-compatible byte-wise, but a
// version-2 peer in an ABA/ACS cluster would silently drop the frames it
// does not know and stall the protocol, so the bump turns a silent stall
// into a loud handshake failure. Version 4 inserted the instance id
// between the version byte and the sender — every frame now names the
// consensus instance it belongs to — and added the service tier's OPEN
// control payload; a version-3 peer would misread the instance varint as
// its From field, so the bump again turns misdecoding into a handshake
// failure.
const Version = 4

// MaxFrame bounds a frame body; ReadFrame rejects larger length prefixes
// before allocating, so a corrupt or hostile peer cannot trigger huge
// allocations.
const MaxFrame = 16 << 20

// Sanity caps on decoded collection sizes. Propagation paths are redundant
// paths (at most two simple paths, so < 2·MaxNodes nodes); entry sets and
// report maps are bounded by what MaxFrame can carry, but an explicit count
// cap fails fast on corrupt headers instead of over-allocating.
const (
	maxPathLen = 2 * graph.MaxNodes
	// Path keys encode two bytes per node (graph.Path.Key).
	maxPathKeyBytes = 2 * maxPathLen
	maxEntries      = 1 << 20
	maxTagLen       = 1 << 12
)

// Payload type tags.
const (
	typeBWVal      = 1 // bw.ValPayload
	typeBWComplete = 2 // bw.CompletePayload
	typeCrashVal   = 3 // crashapprox.ValPayload
	typeIterVal    = 4 // iterative.ValPayload
	typeRBC        = 5 // rbc.Msg
	typeABA        = 6 // aba.Msg
	typeOpen       = 7 // Open (service-tier instance announcement)
)

// Open is the service tier's instance-announcement control payload: the
// daemon that admits a new consensus instance floods one Open per
// out-edge before its machine sends any protocol traffic, and every
// daemon that first learns of the instance re-floods it. Because each
// connection is FIFO, an Open always precedes its sender's protocol
// frames for that instance; receivers therefore construct the instance's
// machine before its traffic arrives (frames racing ahead of an Open from
// a third party wait in a bounded pending buffer). Opens are consumed by
// the daemon's dispatch layer and never reach protocol machines.
type Open struct {
	// Protocol names the registered protocol the instance runs.
	Protocol string
}

// Kind implements transport.Payload.
func (Open) Kind() string { return "OPEN" }

// RBC content type tags.
const (
	contentNum    = 1 // rbc.Num (aad.Num is an alias)
	contentReport = 2 // aad.Report
)

// EncodeMessage renders m as one frame body (without the stream length
// prefix) under instance 0 — the single-shot form the classic cluster
// transports speak. It fails on payload types the codec does not know and
// on messages with negative coordinates.
func EncodeMessage(m transport.Message) ([]byte, error) {
	return AppendInstanceMessage(nil, 0, m)
}

// EncodeInstanceMessage renders m as one frame body belonging to the given
// consensus instance (the service tier's pipelining unit).
func EncodeInstanceMessage(inst uint64, m transport.Message) ([]byte, error) {
	return AppendInstanceMessage(nil, inst, m)
}

// AppendMessage appends m's instance-0 frame body to dst and returns the
// extended slice.
func AppendMessage(dst []byte, m transport.Message) ([]byte, error) {
	return AppendInstanceMessage(dst, 0, m)
}

// AppendInstanceMessage appends m's frame body under the given instance id
// to dst and returns the extended slice.
func AppendInstanceMessage(dst []byte, inst uint64, m transport.Message) ([]byte, error) {
	if m.From < 0 || m.To < 0 {
		return nil, fmt.Errorf("wire: negative node id in %d->%d", m.From, m.To)
	}
	dst = append(dst, Version)
	dst = appendUint(dst, inst)
	dst = appendUint(dst, uint64(m.From))
	dst = appendUint(dst, uint64(m.To))
	switch p := m.Payload.(type) {
	case bw.ValPayload:
		dst = append(dst, typeBWVal)
		dst = appendUint(dst, uint64(p.Round))
		dst = appendFloat(dst, p.Value)
		dst = appendPath(dst, p.Path)
	case bw.CompletePayload:
		dst = append(dst, typeBWComplete)
		dst = appendUint(dst, uint64(p.Round))
		dst = appendUint(dst, uint64(p.Origin))
		dst = appendUint(dst, uint64(p.Seq))
		dst = appendSet(dst, p.Tag)
		dst = appendUint(dst, uint64(len(p.Entries)))
		for _, e := range p.Entries {
			dst = appendBytes(dst, []byte(e.PathKey))
			dst = appendFloat(dst, e.Value)
		}
		dst = appendPath(dst, p.Path)
	case crashapprox.ValPayload:
		dst = append(dst, typeCrashVal)
		dst = appendUint(dst, uint64(p.Round))
		dst = appendFloat(dst, p.Value)
		dst = appendPath(dst, p.Path)
	case iterative.ValPayload:
		dst = append(dst, typeIterVal)
		dst = appendUint(dst, uint64(p.Round))
		dst = appendFloat(dst, p.Value)
	case rbc.Msg:
		dst = append(dst, typeRBC)
		if p.Phase < rbc.PhaseInit || p.Phase > rbc.PhaseReady {
			return nil, fmt.Errorf("wire: rbc message with phase %v", p.Phase)
		}
		dst = append(dst, byte(p.Phase))
		dst = appendUint(dst, uint64(p.Origin))
		dst = appendBytes(dst, []byte(p.Tag))
		var err error
		if dst, err = appendContent(dst, p.Content); err != nil {
			return nil, err
		}
	case aba.Msg:
		dst = append(dst, typeABA)
		if p.Phase < aba.PhaseBval || p.Phase > aba.PhaseDone {
			return nil, fmt.Errorf("wire: aba message with phase %v", p.Phase)
		}
		if p.Value < 0 || p.Value > 1 {
			return nil, fmt.Errorf("wire: aba message with value %d", p.Value)
		}
		if p.Inst < 0 || p.Round < 0 {
			return nil, fmt.Errorf("wire: aba message with negative inst %d or round %d", p.Inst, p.Round)
		}
		dst = append(dst, byte(p.Phase))
		dst = appendUint(dst, uint64(p.Inst))
		dst = appendUint(dst, uint64(p.Round))
		dst = append(dst, byte(p.Value))
	case Open:
		if p.Protocol == "" {
			return nil, fmt.Errorf("wire: open announcement with empty protocol")
		}
		if len(p.Protocol) > maxTagLen {
			return nil, fmt.Errorf("wire: open announcement protocol name of %d bytes exceeds %d", len(p.Protocol), maxTagLen)
		}
		dst = append(dst, typeOpen)
		dst = appendBytes(dst, []byte(p.Protocol))
	case nil:
		return nil, fmt.Errorf("wire: message %d->%d has no payload", m.From, m.To)
	default:
		return nil, fmt.Errorf("wire: unencodable payload type %T (kind %q)", m.Payload, m.Payload.Kind())
	}
	return dst, nil
}

func appendContent(dst []byte, c rbc.Content) ([]byte, error) {
	switch v := c.(type) {
	case rbc.Num:
		dst = append(dst, contentNum)
		return appendFloat(dst, float64(v)), nil
	case aad.Report:
		dst = append(dst, contentReport)
		keys := make([]int, 0, len(v))
		for k := range v {
			if k < 0 {
				return nil, fmt.Errorf("wire: report with negative origin %d", k)
			}
			keys = append(keys, k)
		}
		sort.Ints(keys)
		dst = appendUint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendUint(dst, uint64(k))
			dst = appendFloat(dst, v[k])
		}
		return dst, nil
	case nil:
		return nil, fmt.Errorf("wire: rbc message with nil content")
	default:
		return nil, fmt.Errorf("wire: unencodable rbc content type %T", c)
	}
}

// DecodeMessage parses one frame body produced by EncodeMessage,
// discarding the instance id (single-shot consumers run exactly one
// instance, so every frame that reaches them is theirs by construction —
// the service daemon routes by instance before any node decodes). Trailing
// bytes after the payload are an error: a frame carries exactly one
// message.
func DecodeMessage(data []byte) (transport.Message, error) {
	_, m, err := DecodeInstanceMessage(data)
	return m, err
}

// DecodeInstanceMessage parses one frame body and returns the consensus
// instance it belongs to alongside the message.
func DecodeInstanceMessage(data []byte) (uint64, transport.Message, error) {
	d := decoder{buf: data}
	var m transport.Message
	version := d.byte()
	if d.err == nil && version != Version {
		return 0, m, fmt.Errorf("wire: unsupported version %d (this build speaks %d)", version, Version)
	}
	inst := d.uint()
	m.From = d.intVal()
	m.To = d.intVal()
	kind := d.byte()
	switch kind {
	case typeBWVal:
		m.Payload = bw.ValPayload{Round: d.intVal(), Value: d.float(), Path: d.path()}
	case typeBWComplete:
		p := bw.CompletePayload{
			Round:  d.intVal(),
			Origin: d.intVal(),
			Seq:    d.intVal(),
			Tag:    d.set(),
		}
		n := d.count(maxEntries)
		if n > 0 {
			p.Entries = make([]bw.ValEntry, 0, min(n, 4096))
			for i := 0; i < n && d.err == nil; i++ {
				p.Entries = append(p.Entries, bw.ValEntry{PathKey: string(d.bytes(maxPathKeyBytes)), Value: d.float()})
			}
		}
		p.Path = d.path()
		m.Payload = p
	case typeCrashVal:
		m.Payload = crashapprox.ValPayload{Round: d.intVal(), Value: d.float(), Path: d.path()}
	case typeIterVal:
		m.Payload = iterative.ValPayload{Round: d.intVal(), Value: d.float()}
	case typeRBC:
		p := rbc.Msg{Phase: rbc.Phase(d.byte())}
		if d.err == nil && (p.Phase < rbc.PhaseInit || p.Phase > rbc.PhaseReady) {
			return 0, m, fmt.Errorf("wire: rbc frame with phase %d", int(p.Phase))
		}
		p.Origin = d.intVal()
		p.Tag = string(d.bytes(maxTagLen))
		p.Content = d.content()
		m.Payload = p
	case typeABA:
		p := aba.Msg{Phase: aba.Phase(d.byte())}
		if d.err == nil && (p.Phase < aba.PhaseBval || p.Phase > aba.PhaseDone) {
			return 0, m, fmt.Errorf("wire: aba frame with phase %d", int(p.Phase))
		}
		p.Inst = d.intVal()
		p.Round = d.intVal()
		v := d.byte()
		if d.err == nil && v > 1 {
			return 0, m, fmt.Errorf("wire: aba frame with value %d", v)
		}
		p.Value = int(v)
		m.Payload = p
	case typeOpen:
		p := Open{Protocol: string(d.bytes(maxTagLen))}
		if d.err == nil && p.Protocol == "" {
			return 0, m, fmt.Errorf("wire: open frame with empty protocol")
		}
		m.Payload = p
	default:
		if d.err == nil {
			return 0, m, fmt.Errorf("wire: unknown payload type %d", kind)
		}
	}
	if d.err != nil {
		return 0, transport.Message{}, d.err
	}
	if len(d.buf) != d.off {
		return 0, transport.Message{}, fmt.Errorf("wire: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return inst, m, nil
}

// FrameInfo is the routing header of one frame — everything a multiplexing
// dispatcher needs, decoded without touching the payload fields.
type FrameInfo struct {
	// Inst is the consensus instance the frame belongs to (0 single-shot).
	Inst uint64
	// From and To are the frame's claimed endpoints.
	From, To int
	// Open reports whether the payload is the service tier's instance
	// announcement (which the dispatcher consumes) rather than protocol
	// traffic (which it routes to the instance's machine).
	Open bool
	// Bad reports that the frame body's routing header did not parse.
	// Batch readers set it instead of failing the whole batch: the frame
	// is still delivered (a dispatcher counts and releases it) and the
	// connection stays up, matching the per-frame path where a header
	// that fails PeekFrame is dropped without killing the link.
	Bad bool
}

// PeekFrame decodes only a frame body's routing header: version check,
// instance id, endpoints and whether it is an Open announcement. The
// service daemon's per-connection readers route every inbound frame
// through this — a handful of varints — and leave the full payload decode
// to the one instance event loop that consumes the frame.
func PeekFrame(data []byte) (FrameInfo, error) {
	d := decoder{buf: data}
	var info FrameInfo
	version := d.byte()
	if d.err == nil && version != Version {
		return info, fmt.Errorf("wire: unsupported version %d (this build speaks %d)", version, Version)
	}
	info.Inst = d.uint()
	info.From = d.intVal()
	info.To = d.intVal()
	info.Open = d.byte() == typeOpen
	if d.err != nil {
		return FrameInfo{}, d.err
	}
	return info, nil
}

// WriteFrame encodes m and writes it to w as a length-prefixed frame.
func WriteFrame(w io.Writer, m transport.Message) error {
	body, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	return WriteRawFrame(w, body)
}

// WriteRawFrame writes an already-encoded frame body with its length
// prefix in a single Write call (one syscall per frame on a net.Conn, and
// no interleaving hazard when callers serialize writes per connection).
// The scratch buffer carrying prefix+body comes from the frame pool, so
// the steady state allocates nothing; body itself is untouched and remains
// the caller's. Batch writers coalesce many frames into one buffer with
// AppendRawFrame instead.
func WriteRawFrame(w io.Writer, body []byte) error {
	buf, err := AppendRawFrame(GetBuf(), body)
	if err != nil {
		PutBuf(buf)
		return err
	}
	_, err = w.Write(buf)
	PutBuf(buf)
	return err
}

// ReadFrame reads one length-prefixed frame body from r. io.EOF at a frame
// boundary is returned as io.EOF; a stream cut mid-frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// ReadMessage reads and decodes one frame from r.
func ReadMessage(r io.Reader) (transport.Message, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return transport.Message{}, err
	}
	return DecodeMessage(body)
}

func appendUint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendPath(dst []byte, p graph.Path) []byte {
	dst = appendUint(dst, uint64(len(p)))
	for _, v := range p {
		dst = appendUint(dst, uint64(v))
	}
	return dst
}

// appendSet encodes a node set as its strictly ascending member list — a
// pure function of the set value, so equal sets produce equal bytes.
func appendSet(dst []byte, s graph.Set) []byte {
	dst = appendUint(dst, uint64(s.Count()))
	s.ForEach(func(v int) bool {
		dst = appendUint(dst, uint64(v))
		return true
	})
	return dst
}

// decoder is a cursor over a frame body with sticky error handling: after
// the first failure every accessor returns a zero value, so decode paths
// read linearly and check d.err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated frame (want byte at offset %d)", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// intVal decodes a uvarint that must fit a non-negative int.
func (d *decoder) intVal() int {
	v := d.uint()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("integer %d out of range", v)
		return 0
	}
	return int(v)
}

// count decodes a collection length bounded by cap.
func (d *decoder) count(capacity int) int {
	n := d.intVal()
	if d.err == nil && n > capacity {
		d.fail("collection length %d exceeds cap %d", n, capacity)
		return 0
	}
	return n
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// bytes decodes a length-prefixed byte string; empty decodes to nil so that
// decoded payloads match their zero-valued originals exactly.
func (d *decoder) bytes(capacity int) []byte {
	n := d.count(capacity)
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated byte string at offset %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

func (d *decoder) path() graph.Path {
	n := d.count(maxPathLen)
	if d.err != nil || n == 0 {
		return nil
	}
	p := make(graph.Path, n)
	for i := range p {
		v := d.intVal()
		if d.err == nil && v >= graph.MaxNodes {
			d.fail("path node id %d out of range", v)
			return nil
		}
		p[i] = v
	}
	if d.err != nil {
		return nil
	}
	return p
}

// set decodes a node set written by appendSet, enforcing the canonical
// strictly ascending order and the MaxNodes id range.
func (d *decoder) set() graph.Set {
	n := d.count(graph.MaxNodes)
	var s graph.Set
	prev := -1
	for i := 0; i < n && d.err == nil; i++ {
		v := d.intVal()
		if d.err != nil {
			break
		}
		if v <= prev || v >= graph.MaxNodes {
			d.fail("set member %d out of order or range", v)
			break
		}
		prev = v
		s = s.Add(v)
	}
	return s
}

func (d *decoder) content() rbc.Content {
	switch kind := d.byte(); kind {
	case contentNum:
		return rbc.Num(d.float())
	case contentReport:
		n := d.count(maxEntries)
		// Pre-size by the graph bound, not the claimed count: a corrupt
		// header must not buy a huge allocation before the first truncated
		// field fails the decode (legitimate reports have one entry per
		// node, so at most graph.MaxNodes).
		rep := make(aad.Report, min(n, graph.MaxNodes))
		for i := 0; i < n && d.err == nil; i++ {
			k := d.intVal()
			v := d.float()
			if _, dup := rep[k]; dup {
				d.fail("report with duplicate origin %d", k)
				return nil
			}
			rep[k] = v
		}
		if d.err != nil {
			return nil
		}
		return rep
	default:
		d.fail("unknown rbc content type %d", kind)
		return nil
	}
}
