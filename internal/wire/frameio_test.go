package wire_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/transport"
	"repro/internal/wire"
)

// frameioMessage is the representative hot-path frame for the pooled-I/O
// tests: a small VAL flood like most protocol traffic.
func frameioMessage() transport.Message {
	return transport.Message{
		From: 3, To: 5,
		Payload: bw.ValPayload{Round: 2, Value: 0.625, Path: graph.Path{3, 1, 5}},
	}
}

func TestAppendRawFrameMatchesWriteRawFrame(t *testing.T) {
	body, err := wire.EncodeMessage(frameioMessage())
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := wire.WriteRawFrame(&streamed, body); err != nil {
		t.Fatal(err)
	}
	appended, err := wire.AppendRawFrame(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), appended) {
		t.Fatalf("AppendRawFrame and WriteRawFrame disagree:\n  write  %x\n  append %x", streamed.Bytes(), appended)
	}
	// Appending onto a non-empty prefix extends rather than replaces.
	withPrefix, err := wire.AppendRawFrame(append([]byte(nil), appended...), body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withPrefix, append(append([]byte(nil), appended...), appended...)) {
		t.Fatal("AppendRawFrame onto a prefix did not concatenate")
	}
}

func TestAppendRawFrameRejectsOversize(t *testing.T) {
	huge := make([]byte, wire.MaxFrame+1)
	dst := []byte{0xAA}
	out, err := wire.AppendRawFrame(dst, huge)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if len(out) != 1 || out[0] != 0xAA {
		t.Fatalf("dst mutated on rejection: %x", out)
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	bodies := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0x5A}, 300),
		bytes.Repeat([]byte{0x7F}, 70_000), // larger than the pooled cap band
	}
	var stream []byte
	for _, b := range bodies {
		var err error
		if stream, err = wire.AppendRawFrame(stream, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	for i, want := range bodies {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		wire.PutBuf(got)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameReaderCutMidFrame(t *testing.T) {
	stream, err := wire.AppendRawFrame(nil, bytes.Repeat([]byte{0xBB}, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 4, 10, len(stream) - 1} {
		fr := wire.NewFrameReader(bytes.NewReader(stream[:cut]))
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameReaderRejectsOversizeHeader(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // ~4GB length
	fr := wire.NewFrameReader(bytes.NewReader(hdr))
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatalf("oversize header: %v, want a MaxFrame error", err)
	}
}

// TestFrameReaderNextBatch pins the batched read path: a coalesced burst
// reads back as the same frames in the same order, each with its routing
// header correctly peeked, followed by clean EOF on the next call.
func TestFrameReaderNextBatch(t *testing.T) {
	var stream []byte
	var wantInsts []uint64
	for i := 0; i < 10; i++ {
		inst := uint64(100 + i)
		body, err := wire.EncodeInstanceMessage(inst, frameioMessage())
		if err != nil {
			t.Fatal(err)
		}
		if stream, err = wire.AppendRawFrame(stream, body); err != nil {
			t.Fatal(err)
		}
		wantInsts = append(wantInsts, inst)
	}
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	var got []uint64
	frames := make([][]byte, 0, 4)
	infos := make([]wire.FrameInfo, 0, 4)
	for len(got) < len(wantInsts) {
		var err error
		frames, infos, err = fr.NextBatch(frames[:0], infos[:0], 4)
		if err != nil {
			t.Fatalf("after %d frames: %v", len(got), err)
		}
		if len(frames) == 0 || len(frames) > 4 {
			t.Fatalf("batch of %d frames, want 1..4", len(frames))
		}
		if len(frames) != len(infos) {
			t.Fatalf("%d frames but %d infos", len(frames), len(infos))
		}
		for i, f := range frames {
			if infos[i].Bad {
				t.Fatalf("frame %d marked bad", len(got))
			}
			if infos[i].Inst != wantInsts[len(got)] {
				t.Fatalf("frame %d peeked inst %d, want %d", len(got), infos[i].Inst, wantInsts[len(got)])
			}
			if infos[i].From != 3 || infos[i].To != 5 || infos[i].Open {
				t.Fatalf("frame %d peeked %+v", len(got), infos[i])
			}
			got = append(got, infos[i].Inst)
			wire.PutBuf(f)
		}
	}
	if _, _, err := fr.NextBatch(frames[:0], infos[:0], 4); err != io.EOF {
		t.Fatalf("after last batch: %v, want io.EOF", err)
	}
}

// TestFrameReaderNextBatchBadHeader: a frame whose body fails PeekFrame is
// still delivered (infos[i].Bad set) and the stream survives — matching
// the per-frame dispatcher, which drops the frame but keeps the link.
func TestFrameReaderNextBatchBadHeader(t *testing.T) {
	good, err := wire.EncodeInstanceMessage(7, frameioMessage())
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream, _ = wire.AppendRawFrame(stream, good)
	stream, _ = wire.AppendRawFrame(stream, []byte{0xFF, 0xFF, 0xFF}) // bad version byte
	stream, _ = wire.AppendRawFrame(stream, good)
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	frames, infos, err := fr.NextBatch(nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("batch of %d frames, want 3", len(frames))
	}
	for i, wantBad := range []bool{false, true, false} {
		if infos[i].Bad != wantBad {
			t.Fatalf("infos[%d].Bad = %v, want %v", i, infos[i].Bad, wantBad)
		}
		wire.PutBuf(frames[i])
	}
	if infos[0].Open || infos[0].Inst != 7 {
		t.Fatalf("good frame peeked %+v", infos[0])
	}
}

// TestFrameReaderNextBatchDeferredError: a mid-batch stream poison (an
// oversize length prefix after valid frames) must not lose the frames
// already decoded — they are returned first, and the error surfaces on
// the following call.
func TestFrameReaderNextBatchDeferredError(t *testing.T) {
	good, err := wire.EncodeInstanceMessage(7, frameioMessage())
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream, _ = wire.AppendRawFrame(stream, good)
	stream, _ = wire.AppendRawFrame(stream, good)
	stream = append(stream, 0xFF, 0xFF, 0xFF, 0xFF) // ~4GB length prefix
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	frames, infos, err := fr.NextBatch(nil, nil, 8)
	if err != nil {
		t.Fatalf("poisoned batch erred early: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("batch of %d frames, want the 2 before the poison", len(frames))
	}
	for i := range frames {
		if infos[i].Bad || infos[i].Inst != 7 {
			t.Fatalf("frame %d peeked %+v", i, infos[i])
		}
		wire.PutBuf(frames[i])
	}
	if _, _, err := fr.NextBatch(nil, nil, 8); err == nil || err == io.EOF {
		t.Fatalf("deferred poison surfaced as %v, want a MaxFrame error", err)
	}
}

// TestFrameReaderNextBatchAllocBudget extends the read alloc fence to the
// batched path: recycled frames/infos slices and pooled bodies make a
// steady-state NextBatch allocation-free.
func TestFrameReaderNextBatchAllocBudget(t *testing.T) {
	body, err := wire.EncodeInstanceMessage(9, frameioMessage())
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for i := 0; i < 64; i++ {
		stream, _ = wire.AppendRawFrame(stream, body)
	}
	fr := wire.NewFrameReader(&loopReader{data: stream})
	frames := make([][]byte, 0, 16)
	infos := make([]wire.FrameInfo, 0, 16)
	got := testing.AllocsPerRun(1000, func() {
		var err error
		frames, infos, err = fr.NextBatch(frames[:0], infos[:0], 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			wire.PutBuf(f)
		}
	})
	if got != 0 {
		t.Errorf("FrameReader.NextBatch allocates %.2f per op, want 0", got)
	}
}

// TestWireEncodeAllocBudget is the frame-path alloc fence: encode into a
// reused buffer, pooled length-prefixed write, and pooled buffered read
// must all be allocation-free in steady state. The pool is a channel
// freelist precisely so these are deterministic 0s, not GC-dependent.
func TestWireEncodeAllocBudget(t *testing.T) {
	msg := frameioMessage()
	const inst = uint64(9)
	body, err := wire.EncodeInstanceMessage(inst, msg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("append-encode", func(t *testing.T) {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		got := testing.AllocsPerRun(1000, func() {
			var err error
			if buf, err = wire.AppendInstanceMessage(buf[:0], inst, msg); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("AppendInstanceMessage allocates %.2f per op, want 0", got)
		}
	})

	t.Run("pooled-write", func(t *testing.T) {
		got := testing.AllocsPerRun(1000, func() {
			if err := wire.WriteRawFrame(io.Discard, body); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("WriteRawFrame allocates %.2f per op, want 0", got)
		}
	})

	t.Run("pooled-read", func(t *testing.T) {
		var stream []byte
		for i := 0; i < 64; i++ {
			stream, _ = wire.AppendRawFrame(stream, body)
		}
		fr := wire.NewFrameReader(&loopReader{data: stream})
		got := testing.AllocsPerRun(1000, func() {
			f, err := fr.Next()
			if err != nil {
				t.Fatal(err)
			}
			wire.PutBuf(f)
		})
		if got != 0 {
			t.Errorf("FrameReader.Next allocates %.2f per op, want 0", got)
		}
	})

	t.Run("get-put", func(t *testing.T) {
		wire.PutBuf(wire.GetBuf()) // prime the pool with one buffer
		got := testing.AllocsPerRun(1000, func() {
			wire.PutBuf(wire.GetBuf())
		})
		if got != 0 {
			t.Errorf("GetBuf/PutBuf allocates %.2f per op, want 0", got)
		}
	})
}

// loopReader replays one stream forever (an infinite in-memory peer).
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// FuzzCoalescedFrames pins the batching invariant end to end: any sequence
// of frames coalesced with AppendRawFrame reads back through a FrameReader
// as exactly the same sequence, then clean EOF — batching must never merge,
// split, reorder, or corrupt frames on a directed edge.
func FuzzCoalescedFrames(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(7), 1)
	f.Add(int64(42), 17)
	f.Fuzz(func(t *testing.T, seed int64, count int) {
		if count < 0 || count > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		frames := make([][]byte, count)
		var stream []byte
		for i := range frames {
			b := make([]byte, rng.Intn(2048))
			rng.Read(b)
			frames[i] = b
			var err error
			if stream, err = wire.AppendRawFrame(stream, b); err != nil {
				t.Fatal(err)
			}
		}
		fr := wire.NewFrameReader(bytes.NewReader(stream))
		for i, want := range frames {
			got, err := fr.Next()
			if err != nil {
				t.Fatalf("frame %d/%d: %v", i, count, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %d/%d corrupted: %d bytes, want %d", i, count, len(got), len(want))
			}
			wire.PutBuf(got)
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("after %d frames: %v, want io.EOF", count, err)
		}
	})
}
