package wire_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/transport"
	"repro/internal/wire"
)

// frameioMessage is the representative hot-path frame for the pooled-I/O
// tests: a small VAL flood like most protocol traffic.
func frameioMessage() transport.Message {
	return transport.Message{
		From: 3, To: 5,
		Payload: bw.ValPayload{Round: 2, Value: 0.625, Path: graph.Path{3, 1, 5}},
	}
}

func TestAppendRawFrameMatchesWriteRawFrame(t *testing.T) {
	body, err := wire.EncodeMessage(frameioMessage())
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := wire.WriteRawFrame(&streamed, body); err != nil {
		t.Fatal(err)
	}
	appended, err := wire.AppendRawFrame(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), appended) {
		t.Fatalf("AppendRawFrame and WriteRawFrame disagree:\n  write  %x\n  append %x", streamed.Bytes(), appended)
	}
	// Appending onto a non-empty prefix extends rather than replaces.
	withPrefix, err := wire.AppendRawFrame(append([]byte(nil), appended...), body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withPrefix, append(append([]byte(nil), appended...), appended...)) {
		t.Fatal("AppendRawFrame onto a prefix did not concatenate")
	}
}

func TestAppendRawFrameRejectsOversize(t *testing.T) {
	huge := make([]byte, wire.MaxFrame+1)
	dst := []byte{0xAA}
	out, err := wire.AppendRawFrame(dst, huge)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if len(out) != 1 || out[0] != 0xAA {
		t.Fatalf("dst mutated on rejection: %x", out)
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	bodies := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0x5A}, 300),
		bytes.Repeat([]byte{0x7F}, 70_000), // larger than the pooled cap band
	}
	var stream []byte
	for _, b := range bodies {
		var err error
		if stream, err = wire.AppendRawFrame(stream, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	for i, want := range bodies {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		wire.PutBuf(got)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameReaderCutMidFrame(t *testing.T) {
	stream, err := wire.AppendRawFrame(nil, bytes.Repeat([]byte{0xBB}, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 4, 10, len(stream) - 1} {
		fr := wire.NewFrameReader(bytes.NewReader(stream[:cut]))
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameReaderRejectsOversizeHeader(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // ~4GB length
	fr := wire.NewFrameReader(bytes.NewReader(hdr))
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatalf("oversize header: %v, want a MaxFrame error", err)
	}
}

// TestWireEncodeAllocBudget is the frame-path alloc fence: encode into a
// reused buffer, pooled length-prefixed write, and pooled buffered read
// must all be allocation-free in steady state. The pool is a channel
// freelist precisely so these are deterministic 0s, not GC-dependent.
func TestWireEncodeAllocBudget(t *testing.T) {
	msg := frameioMessage()
	const inst = uint64(9)
	body, err := wire.EncodeInstanceMessage(inst, msg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("append-encode", func(t *testing.T) {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		got := testing.AllocsPerRun(1000, func() {
			var err error
			if buf, err = wire.AppendInstanceMessage(buf[:0], inst, msg); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("AppendInstanceMessage allocates %.2f per op, want 0", got)
		}
	})

	t.Run("pooled-write", func(t *testing.T) {
		got := testing.AllocsPerRun(1000, func() {
			if err := wire.WriteRawFrame(io.Discard, body); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("WriteRawFrame allocates %.2f per op, want 0", got)
		}
	})

	t.Run("pooled-read", func(t *testing.T) {
		var stream []byte
		for i := 0; i < 64; i++ {
			stream, _ = wire.AppendRawFrame(stream, body)
		}
		fr := wire.NewFrameReader(&loopReader{data: stream})
		got := testing.AllocsPerRun(1000, func() {
			f, err := fr.Next()
			if err != nil {
				t.Fatal(err)
			}
			wire.PutBuf(f)
		})
		if got != 0 {
			t.Errorf("FrameReader.Next allocates %.2f per op, want 0", got)
		}
	})

	t.Run("get-put", func(t *testing.T) {
		wire.PutBuf(wire.GetBuf()) // prime the pool with one buffer
		got := testing.AllocsPerRun(1000, func() {
			wire.PutBuf(wire.GetBuf())
		})
		if got != 0 {
			t.Errorf("GetBuf/PutBuf allocates %.2f per op, want 0", got)
		}
	})
}

// loopReader replays one stream forever (an infinite in-memory peer).
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// FuzzCoalescedFrames pins the batching invariant end to end: any sequence
// of frames coalesced with AppendRawFrame reads back through a FrameReader
// as exactly the same sequence, then clean EOF — batching must never merge,
// split, reorder, or corrupt frames on a directed edge.
func FuzzCoalescedFrames(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(7), 1)
	f.Add(int64(42), 17)
	f.Fuzz(func(t *testing.T, seed int64, count int) {
		if count < 0 || count > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		frames := make([][]byte, count)
		var stream []byte
		for i := range frames {
			b := make([]byte, rng.Intn(2048))
			rng.Read(b)
			frames[i] = b
			var err error
			if stream, err = wire.AppendRawFrame(stream, b); err != nil {
				t.Fatal(err)
			}
		}
		fr := wire.NewFrameReader(bytes.NewReader(stream))
		for i, want := range frames {
			got, err := fr.Next()
			if err != nil {
				t.Fatalf("frame %d/%d: %v", i, count, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %d/%d corrupted: %d bytes, want %d", i, count, len(got), len(want))
			}
			wire.PutBuf(got)
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("after %d frames: %v, want io.EOF", count, err)
		}
	})
}
