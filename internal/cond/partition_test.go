package cond

import (
	"testing"

	"repro/internal/graph"
)

// TestTheorem17Equivalences verifies the paper's Theorem 17 computationally:
// CCS ⟺ 1-reach, CCA ⟺ 2-reach, BCS ⟺ 3-reach. Exhaustive over all
// digraphs on 3 nodes and randomized over larger orders (experiment E2).
func TestTheorem17Equivalences(t *testing.T) {
	check := func(g *graph.Graph, f int) {
		t.Helper()
		r1, _ := Check1Reach(g, f)
		ccs, _ := CheckCCS(g, f)
		if r1 != ccs {
			t.Errorf("%s f=%d: 1-reach=%v CCS=%v", g, f, r1, ccs)
		}
		r2, _ := Check2Reach(g, f)
		cca, _ := CheckCCA(g, f)
		if r2 != cca {
			t.Errorf("%s f=%d: 2-reach=%v CCA=%v", g, f, r2, cca)
		}
		r3, _ := Check3Reach(g, f)
		bcs, _ := CheckBCS(g, f)
		if r3 != bcs {
			t.Errorf("%s f=%d: 3-reach=%v BCS=%v", g, f, r3, bcs)
		}
	}

	// Exhaustive: all 2^6 = 64 digraphs on 3 nodes.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	for mask := 0; mask < 64; mask++ {
		g := graph.New(3)
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				g.MustAddEdge(e[0], e[1])
			}
		}
		for f := 0; f <= 1; f++ {
			check(g, f)
		}
	}

	// Randomized: denser orders.
	for seed := int64(0); seed < 25; seed++ {
		check(graph.RandomDigraph(5, 0.35, seed), 1)
		check(graph.RandomDigraph(6, 0.5, seed), 1)
	}
	for seed := int64(100); seed < 106; seed++ {
		check(graph.RandomDigraph(6, 0.7, seed), 2)
	}
}

func TestPartitionWitness(t *testing.T) {
	// The directed cycle with f=1 violates CCA (threshold f+1 = 2 incoming
	// neighbors); the witness must be a real partition with both
	// thresholds failing.
	g := graph.DirectedCycle(4)
	ok, w := CheckCCA(g, 1)
	if ok {
		t.Fatal("cycle should violate CCA for f=1")
	}
	if w == nil {
		t.Fatal("missing witness")
	}
	if w.L.Union(w.C).Union(w.R) != g.Nodes() {
		t.Errorf("witness is not a partition: %s", w)
	}
	if w.L.Empty() || w.R.Empty() {
		t.Errorf("witness has empty L or R: %s", w)
	}
	if incomingCount(g, w.L.Union(w.C), w.R) >= 2 || incomingCount(g, w.R.Union(w.C), w.L) >= 2 {
		t.Errorf("witness partition does not violate CCA: %s", w)
	}
	// CCS (threshold 1) does hold on the ring for f=1.
	if ok, _ := CheckCCS(g, 1); !ok {
		t.Error("cycle should satisfy CCS for f=1")
	}
}

func TestIncomingCount(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3) // inside B when B = {2,3}
	b := graph.SetOf(2, 3)
	if got := incomingCount(g, graph.SetOf(0, 1), b); got != 2 {
		t.Errorf("incomingCount = %d, want 2 (nodes 0 and 1)", got)
	}
	if got := incomingCount(g, graph.SetOf(0), b); got != 1 {
		t.Errorf("incomingCount = %d, want 1", got)
	}
	if got := incomingCount(g, graph.EmptySet, b); got != 0 {
		t.Errorf("incomingCount = %d, want 0", got)
	}
}

func TestCCAOnUndirected(t *testing.T) {
	// Table 1's undirected crash-async condition is n > 2f and κ(G) > f.
	// The wheel W4 has n = 5, κ = 3: CCA should hold for f = 1, 2 and fail
	// for f = 3 (κ = 3 is not > 3, and n = 5 is not > 6).
	w := graph.Wheel(4)
	for f := 1; f <= 2; f++ {
		if ok, _ := CheckCCA(w, f); !ok {
			t.Errorf("W4 should satisfy CCA for f=%d", f)
		}
	}
	if ok, _ := CheckCCA(w, 3); ok {
		t.Error("W4 should fail CCA for f=3")
	}
}
