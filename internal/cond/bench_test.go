package cond

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkCheck3ReachFig1a(b *testing.B) {
	g := graph.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := Check3Reach(g, 1); !ok {
			b.Fatal("must hold")
		}
	}
}

func BenchmarkCheck3ReachFig1bAnalog(b *testing.B) {
	g := graph.Fig1bAnalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := Check3Reach(g, 1); !ok {
			b.Fatal("must hold")
		}
	}
}

func BenchmarkCheckBCS(b *testing.B) {
	g := graph.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := CheckBCS(g, 1); !ok {
			b.Fatal("must hold")
		}
	}
}

func BenchmarkHasFCover(b *testing.B) {
	paths := []graph.Set{
		graph.SetOf(0, 1, 2), graph.SetOf(1, 3), graph.SetOf(2, 4),
		graph.SetOf(1, 5), graph.SetOf(3, 6, 1),
	}
	allowed := graph.FullSet(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !HasFCover(paths, 2, allowed) {
			b.Fatal("cover must exist")
		}
	}
}

func BenchmarkCoverablePrefix(b *testing.B) {
	paths := make([]graph.Set, 64)
	for i := range paths {
		paths[i] = graph.SetOf(i%6, 6+(i%2))
	}
	allowed := graph.FullSet(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoverablePrefix(paths, 1, allowed)
	}
}

func BenchmarkTheorem5Fig1a(b *testing.B) {
	g := graph.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := CheckTheorem5(g, 1); !rep.Ok() {
			b.Fatal(rep.Failure)
		}
	}
}
