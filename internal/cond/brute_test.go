package cond

import (
	"testing"

	"repro/internal/graph"
)

// brute3Reach evaluates Definition 3's 3-reach by direct quantifier
// enumeration (F, Fu, Fv each of size <= f, u outside F∪Fu, v outside
// F∪Fv). It is exponential in a worse way than Check3Reach's removal-pair
// enumeration and exists to cross-validate the optimized checker's
// decompose() feasibility arithmetic.
func brute3Reach(g *graph.Graph, f int) bool {
	all := g.Nodes()
	ok := true
	graph.Subsets(all, f, func(fshared graph.Set) bool {
		graph.Subsets(all, f, func(fu graph.Set) bool {
			graph.Subsets(all, f, func(fv graph.Set) bool {
				ru := fshared.Union(fu)
				rv := fshared.Union(fv)
				for u := 0; u < g.N() && ok; u++ {
					if ru.Has(u) {
						continue
					}
					reachU := g.ReachSet(u, ru)
					for v := 0; v < g.N(); v++ {
						if rv.Has(v) || u == v {
							continue
						}
						if !reachU.Intersects(g.ReachSet(v, rv)) {
							ok = false
							break
						}
					}
				}
				return ok
			})
			return ok
		})
		return ok
	})
	return ok
}

// brute2Reach evaluates 2-reach directly.
func brute2Reach(g *graph.Graph, f int) bool {
	all := g.Nodes()
	ok := true
	graph.Subsets(all, f, func(fu graph.Set) bool {
		graph.Subsets(all, f, func(fv graph.Set) bool {
			for u := 0; u < g.N() && ok; u++ {
				if fu.Has(u) {
					continue
				}
				reachU := g.ReachSet(u, fu)
				for v := 0; v < g.N(); v++ {
					if fv.Has(v) || u == v {
						continue
					}
					if !reachU.Intersects(g.ReachSet(v, fv)) {
						ok = false
						break
					}
				}
			}
			return ok
		})
		return ok
	})
	return ok
}

// bruteKReach evaluates the implemented k-reach family directly: ⌈k/2⌉
// fault sets of size <= f per side, the first shared when k is odd.
func bruteKReach(g *graph.Graph, k, f int) bool {
	perSide := (k + 1) / 2
	shared := k%2 == 1
	all := g.Nodes()
	ok := true

	// Enumerate each side's removal as a union of perSide subsets.
	var sideUnions func(count int, base graph.Set, fn func(graph.Set) bool) bool
	sideUnions = func(count int, base graph.Set, fn func(graph.Set) bool) bool {
		if count == 0 {
			return fn(base)
		}
		cont := true
		graph.Subsets(all, f, func(s graph.Set) bool {
			cont = sideUnions(count-1, base.Union(s), fn)
			return cont
		})
		return cont
	}

	checkPairQuantified := func(ru, rv graph.Set) bool {
		for u := 0; u < g.N(); u++ {
			if ru.Has(u) {
				continue
			}
			reachU := g.ReachSet(u, ru)
			for v := 0; v < g.N(); v++ {
				if rv.Has(v) || u == v {
					continue
				}
				if !reachU.Intersects(g.ReachSet(v, rv)) {
					return false
				}
			}
		}
		return true
	}

	if shared {
		graph.Subsets(all, f, func(fshared graph.Set) bool {
			sideUnions(perSide-1, fshared, func(ru graph.Set) bool {
				sideUnions(perSide-1, fshared, func(rv graph.Set) bool {
					if !checkPairQuantified(ru, rv) {
						ok = false
					}
					return ok
				})
				return ok
			})
			return ok
		})
	} else {
		sideUnions(perSide, graph.EmptySet, func(ru graph.Set) bool {
			sideUnions(perSide, graph.EmptySet, func(rv graph.Set) bool {
				if !checkPairQuantified(ru, rv) {
					ok = false
				}
				return ok
			})
			return ok
		})
	}
	return ok
}

// TestCheck3ReachMatchesBruteForce cross-validates the optimized checker on
// random digraphs and on the paper's graphs.
func TestCheck3ReachMatchesBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Clique(3), graph.Clique(4), graph.DirectedCycle(4), graph.Fig1a(),
	}
	for seed := int64(0); seed < 40; seed++ {
		graphs = append(graphs, graph.RandomDigraph(5, 0.35+float64(seed%3)*0.15, seed))
	}
	for _, g := range graphs {
		for f := 0; f <= 2; f++ {
			got, _ := Check3Reach(g, f)
			want := brute3Reach(g, f)
			if got != want {
				t.Errorf("%s f=%d: Check3Reach=%v brute=%v", g, f, got, want)
			}
		}
	}
}

func TestCheck2ReachMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := graph.RandomDigraph(5, 0.4, seed)
		for f := 0; f <= 2; f++ {
			got, _ := Check2Reach(g, f)
			if want := brute2Reach(g, f); got != want {
				t.Errorf("seed=%d f=%d: Check2Reach=%v brute=%v", seed, f, got, want)
			}
		}
	}
}

func TestCheckKReachMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := graph.RandomDigraph(5, 0.5, seed)
		for k := 1; k <= 5; k++ {
			got, _ := CheckKReach(g, k, 1)
			if want := bruteKReach(g, k, 1); got != want {
				t.Errorf("seed=%d k=%d: CheckKReach=%v brute=%v", seed, k, got, want)
			}
		}
	}
	// Spot-check k=4 with f=2 where decompose-style pruning differs most.
	for seed := int64(50); seed < 54; seed++ {
		g := graph.RandomDigraph(6, 0.7, seed)
		got, _ := CheckKReach(g, 4, 2)
		if want := bruteKReach(g, 4, 2); got != want {
			t.Errorf("seed=%d k=4 f=2: CheckKReach=%v brute=%v", seed, got, want)
		}
	}
}
