package cond

import "repro/internal/graph"

// This file implements f-covers of path sets (Definition 4): a node set C
// with |C| <= f intersecting every path of a given collection. The search is
// the classic bounded hitting-set branching: pick an uncovered path, branch
// on each of its (allowed) nodes, recurse with budget f-1. Depth is at most
// f, so for the small f of the paper's setting this is exact and fast.

// FindFCover searches for a set C ⊆ allowed with |C| <= f intersecting every
// path in pathSets (paths are given as node sets). It returns the cover and
// true, or (0, false) if none exists. An empty path collection is covered by
// the empty set. Callers enforce the paper's exclusions through the allowed
// mask (e.g. the local node is never a candidate: a node does not suspect
// itself — DESIGN.md fidelity note 2; Completeness further restricts
// candidates to V \ S_{Fu,Fw} per Algorithm 2).
func FindFCover(pathSets []graph.Set, f int, allowed graph.Set) (graph.Set, bool) {
	return findCover(pathSets, f, allowed, graph.EmptySet)
}

// HasFCover reports whether an f-cover within allowed exists.
func HasFCover(pathSets []graph.Set, f int, allowed graph.Set) bool {
	_, ok := FindFCover(pathSets, f, allowed)
	return ok
}

func findCover(pathSets []graph.Set, budget int, allowed, chosen graph.Set) (graph.Set, bool) {
	// Find the first path not yet covered.
	var uncovered graph.Set
	found := false
	for _, p := range pathSets {
		if !p.Intersects(chosen) {
			uncovered = p
			found = true
			break
		}
	}
	if !found {
		return chosen, true
	}
	if budget == 0 {
		return graph.EmptySet, false
	}
	candidates := uncovered.Intersect(allowed)
	var (
		result graph.Set
		ok     bool
	)
	candidates.ForEach(func(v int) bool {
		result, ok = findCover(pathSets, budget-1, allowed, chosen.Add(v))
		return !ok
	})
	return result, ok
}

// CoverablePrefix returns the largest k such that the first k path sets
// admit an f-cover within allowed. Because covering only gets harder as
// paths are added, the property is monotone and binary search applies; the
// collections here are small, so a linear scan from the end is simpler and
// exact. This realizes lines 2–3 of Algorithm 3 (Filter-and-Average), where
// the message vector is sorted and the longest coverable prefix/suffix of
// extreme values is trimmed.
func CoverablePrefix(pathSets []graph.Set, f int, allowed graph.Set) int {
	lo, hi := 0, len(pathSets)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if HasFCover(pathSets[:mid], f, allowed) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
