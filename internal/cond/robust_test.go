package cond

import (
	"testing"

	"repro/internal/graph"
)

func TestRobustnessCliques(t *testing.T) {
	// K_n is (r, s)-robust for r up to ceil(n/2) — in particular K5 is
	// (2,2)-robust, the W-MSR requirement for f = 1.
	if ok, w := CheckRobustness(graph.Clique(5), 2, 2); !ok {
		t.Errorf("K5 should be (2,2)-robust; witness %+v", w)
	}
	if ok, _ := CheckRobustness(graph.Clique(2), 2, 2); ok {
		t.Error("K2 cannot be (2,2)-robust")
	}
}

// TestRobustnessSeparation is the theoretical core of experiment E9: the
// two-clique graph satisfies 3-reach for f=1 (BW works — Theorem 4) but is
// not (2,2)-robust (W-MSR provably fails — LeBlanc et al.).
func TestRobustnessSeparation(t *testing.T) {
	g := graph.Fig1bAnalog()
	if ok, _ := Check3Reach(g, 1); !ok {
		t.Fatal("analog must satisfy 3-reach")
	}
	ok, w := CheckRobustness(g, 2, 2)
	if ok {
		t.Fatal("analog should not be (2,2)-robust")
	}
	if w == nil {
		t.Fatal("missing witness")
	}
	// The natural witness: the two cliques themselves — each node has at
	// most one in-neighbor outside its own clique.
	if w.S1.Empty() || w.S2.Empty() || w.S1.Intersects(w.S2) {
		t.Errorf("malformed witness %+v", w)
	}
	if x := reachableCount(g, graph.SetOf(0, 1, 2, 3), 2); x != 0 {
		t.Errorf("K1 side should have no 2-reachable node, got %d", x)
	}
}

func TestRobustnessDirectedCycle(t *testing.T) {
	// A directed cycle is (1,1)-robust (every subset has a node with an
	// in-neighbor outside) but not (2,s)-robust for any s.
	g := graph.DirectedCycle(5)
	if ok, _ := CheckRobustness(g, 1, 1); !ok {
		t.Error("cycle should be (1,1)-robust")
	}
	if ok, _ := CheckRobustness(g, 2, 1); ok {
		t.Error("cycle cannot be (2,1)-robust (in-degree 1)")
	}
}

func TestReachableCount(t *testing.T) {
	g := graph.Clique(4)
	if got := reachableCount(g, graph.SetOf(0, 1), 2); got != 2 {
		t.Errorf("reachableCount = %d, want 2", got)
	}
	if got := reachableCount(g, graph.SetOf(0, 1, 2), 2); got != 0 {
		t.Errorf("reachableCount = %d, want 0 (only one outside node)", got)
	}
}
