package cond

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements the Tseng–Vaidya partition conditions CCS, CCA and
// BCS (Definitions 16–18), which Theorem 17 proves equivalent to 1-, 2- and
// 3-reach respectively. The test suite verifies those equivalences on
// exhaustive and randomized graph families (experiment E2).

// PartitionWitness records a violating partition.
type PartitionWitness struct {
	F, L, C, R graph.Set
}

// String renders the witness.
func (w PartitionWitness) String() string {
	return fmt.Sprintf("F=%s L=%s C=%s R=%s", w.F, w.L, w.C, w.R)
}

// incomingCount returns |N⁻(B) ∩ A|: the number of distinct nodes of A that
// are incoming neighbors of the set B (Definition 14's A -x-> B threshold).
func incomingCount(g *graph.Graph, a, b graph.Set) int {
	var nbrs graph.Set
	b.ForEach(func(v int) bool {
		nbrs = nbrs.Union(g.InSet(v))
		return true
	})
	return nbrs.Minus(b).Intersect(a).Count()
}

// forEachPartition3 enumerates all assignments of the nodes in universe to
// the three classes L, C, R with L and R nonempty, calling fn for each; it
// stops early when fn returns false.
func forEachPartition3(universe graph.Set, fn func(l, c, r graph.Set) bool) {
	members := universe.Members()
	n := len(members)
	if n == 0 {
		return
	}
	assign := make([]int, n) // 0 = L, 1 = C, 2 = R
	var rec func(i int, l, c, r graph.Set) bool
	rec = func(i int, l, c, r graph.Set) bool {
		if i == n {
			if l.Empty() || r.Empty() {
				return true
			}
			return fn(l, c, r)
		}
		v := members[i]
		assign[i] = 0
		if !rec(i+1, l.Add(v), c, r) {
			return false
		}
		assign[i] = 1
		if !rec(i+1, l, c.Add(v), r) {
			return false
		}
		assign[i] = 2
		return rec(i+1, l, c, r.Add(v))
	}
	rec(0, graph.EmptySet, graph.EmptySet, graph.EmptySet)
}

// CheckCCA verifies Definition 17 (condition CCA): for every partition
// L, C, R of V with L, R nonempty, either L∪C has f+1 incoming links into R
// or R∪C has f+1 incoming links into L.
func CheckCCA(g *graph.Graph, f int) (bool, *PartitionWitness) {
	var w *PartitionWitness
	forEachPartition3(g.Nodes(), func(l, c, r graph.Set) bool {
		if incomingCount(g, l.Union(c), r) >= f+1 {
			return true
		}
		if incomingCount(g, r.Union(c), l) >= f+1 {
			return true
		}
		w = &PartitionWitness{L: l, C: c, R: r}
		return false
	})
	return w == nil, w
}

// checkFPartition is the shared engine for CCS and BCS: for every F with
// |F| <= f and every partition L, C, R of V \ F (L, R nonempty), one of the
// two incoming-neighbor thresholds must hold.
func checkFPartition(g *graph.Graph, f, threshold int) (bool, *PartitionWitness) {
	var w *PartitionWitness
	graph.Subsets(g.Nodes(), f, func(fset graph.Set) bool {
		forEachPartition3(g.Nodes().Minus(fset), func(l, c, r graph.Set) bool {
			if incomingCount(g, l.Union(c), r) >= threshold {
				return true
			}
			if incomingCount(g, r.Union(c), l) >= threshold {
				return true
			}
			w = &PartitionWitness{F: fset, L: l, C: c, R: r}
			return false
		})
		return w == nil
	})
	return w == nil, w
}

// CheckCCS verifies Definition 16 (condition CCS): for every partition
// F, L, C, R of V with |F| <= f and L, R nonempty, either L∪C -> R or
// R∪C -> L has at least one incoming link.
func CheckCCS(g *graph.Graph, f int) (bool, *PartitionWitness) {
	return checkFPartition(g, f, 1)
}

// CheckBCS verifies Definition 18 (condition BCS): like CCS but requiring
// f+1 incoming links — the tight condition for synchronous exact Byzantine
// consensus, shown by this paper to also be tight for asynchronous
// approximate Byzantine consensus (as 3-reach).
func CheckBCS(g *graph.Graph, f int) (bool, *PartitionWitness) {
	return checkFPartition(g, f, f+1)
}
