package cond

import (
	"testing"

	"repro/internal/graph"
)

// TestTheorem5OnFigures runs the Theorem 5 checker on the paper's graphs
// (experiment E11): source components are nonempty, strongly connected in
// the reduced graph, and propagate with f+1 disjoint paths.
func TestTheorem5OnFigures(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		f int
	}{
		{graph.Fig1a(), 1},
		{graph.Fig1bAnalog(), 1},
		{graph.Clique(4), 1},
		{graph.Clique(7), 2},
	}
	for _, tc := range cases {
		rep := CheckTheorem5(tc.g, tc.f)
		if !rep.Ok() {
			t.Errorf("%s f=%d: %s", tc.g, tc.f, rep.Failure)
		}
		if rep.PairsChecked == 0 {
			t.Errorf("%s: no pairs checked", tc.g)
		}
	}
}

// TestTheorem12OnFigures runs the source-component overlap checker.
func TestTheorem12OnFigures(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		f int
	}{
		{graph.Fig1a(), 1},
		{graph.Fig1bAnalog(), 1},
		{graph.Clique(4), 1},
	}
	for _, tc := range cases {
		rep := CheckTheorem12(tc.g, tc.f)
		if !rep.Ok() {
			t.Errorf("%s f=%d: %s", tc.g, tc.f, rep.Failure)
		}
		if rep.TriplesChecked == 0 {
			t.Errorf("%s: no triples checked", tc.g)
		}
	}
}

// TestTheorem5FailsOffCondition: on a graph violating 3-reach the checker
// reports a concrete failure (K3 with f=1).
func TestTheorem5FailsOffCondition(t *testing.T) {
	rep := CheckTheorem5(graph.Clique(3), 1)
	if rep.Ok() {
		t.Error("K3 f=1 should fail the Theorem 5 properties")
	}
}

// TestCommonInfluence verifies the 3-reach witness interface used by the
// BW proof: on a 3-reach graph a common influence node exists for all
// admissible choices, and the one returned is in both reach sets.
func TestCommonInfluence(t *testing.T) {
	g := graph.Fig1a()
	count := 0
	graph.Subsets(g.Nodes(), 1, func(f graph.Set) bool {
		graph.Subsets(g.Nodes(), 1, func(fu graph.Set) bool {
			graph.Subsets(g.Nodes(), 1, func(fv graph.Set) bool {
				for u := 0; u < g.N(); u++ {
					for v := 0; v < g.N(); v++ {
						if u == v || f.Union(fu).Has(u) || f.Union(fv).Has(v) {
							continue
						}
						z := CommonInfluence(g, u, v, f, fu, fv)
						if z < 0 {
							t.Fatalf("no common influence for u=%d v=%d F=%s Fu=%s Fv=%s", u, v, f, fu, fv)
						}
						if !g.ReachSet(u, f.Union(fu)).Has(z) || !g.ReachSet(v, f.Union(fv)).Has(z) {
							t.Fatalf("returned node %d not in both reach sets", z)
						}
						count++
					}
				}
				return true
			})
			return true
		})
		return true
	})
	if count == 0 {
		t.Fatal("no cases checked")
	}
}

// TestCommonInfluenceAbsent: on K3 with f=1 some choice has no common
// influence node (that is exactly the 3-reach violation).
func TestCommonInfluenceAbsent(t *testing.T) {
	g := graph.Clique(3)
	_, w := Check3Reach(g, 1)
	if w == nil {
		t.Fatal("expected witness")
	}
	if z := CommonInfluence(g, w.U, w.V, w.F, w.Fu, w.Fv); z >= 0 {
		t.Errorf("witness should have no common influence, got %d", z)
	}
}
