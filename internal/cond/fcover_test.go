package cond

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestFindFCoverBasics(t *testing.T) {
	paths := []graph.Set{graph.SetOf(0, 1), graph.SetOf(1, 2), graph.SetOf(1, 3)}
	allowed := graph.FullSet(6)
	cover, ok := FindFCover(paths, 1, allowed)
	if !ok || cover != graph.SetOf(1) {
		t.Errorf("cover = %s ok=%v, want {1}", cover, ok)
	}
	// Excluding the hub forces failure at f=1.
	if _, ok := FindFCover(paths, 1, allowed.Remove(1)); ok {
		t.Error("cover should not exist without node 1 at f=1")
	}
	// ... but succeed at f=2 ({0,2}? no: needs {0 or...} paths {0,1},{1,2},{1,3}
	// without 1: need a node from each: {0},{2},{3} -> 3 nodes needed).
	if _, ok := FindFCover(paths, 2, allowed.Remove(1)); ok {
		t.Error("three disjoint remainders cannot be covered by 2 nodes")
	}
	if cover, ok := FindFCover(paths, 3, allowed.Remove(1)); !ok || cover.Count() != 3 {
		t.Errorf("f=3 cover = %s ok=%v", cover, ok)
	}
}

func TestFindFCoverEmptyCollection(t *testing.T) {
	cover, ok := FindFCover(nil, 0, graph.FullSet(4))
	if !ok || !cover.Empty() {
		t.Errorf("empty collection: cover=%s ok=%v", cover, ok)
	}
}

func TestFindFCoverZeroBudget(t *testing.T) {
	if _, ok := FindFCover([]graph.Set{graph.SetOf(2)}, 0, graph.FullSet(4)); ok {
		t.Error("nonempty collection cannot be covered with f=0")
	}
}

// TestFindFCoverMatchesBruteForce cross-checks the branching search against
// exhaustive subset enumeration.
func TestFindFCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 7
	for trial := 0; trial < 400; trial++ {
		numPaths := rng.Intn(6)
		paths := make([]graph.Set, numPaths)
		for i := range paths {
			var s graph.Set
			for j := 0; j < 1+rng.Intn(4); j++ {
				s = s.Add(rng.Intn(n))
			}
			paths[i] = s
		}
		allowed := graph.FullSet(n)
		if rng.Intn(2) == 0 {
			allowed = allowed.Remove(rng.Intn(n))
		}
		f := rng.Intn(3)
		got := HasFCover(paths, f, allowed)
		want := false
		graph.Subsets(allowed, f, func(c graph.Set) bool {
			covers := true
			for _, p := range paths {
				if !p.Intersects(c) {
					covers = false
					break
				}
			}
			if covers {
				want = true
				return false
			}
			return true
		})
		if got != want {
			t.Fatalf("trial %d: HasFCover=%v brute=%v paths=%v f=%d allowed=%s",
				trial, got, want, paths, f, allowed)
		}
	}
}

func TestCoverablePrefix(t *testing.T) {
	// Paths: three covered by node 9, then one that cannot be covered.
	paths := []graph.Set{
		graph.SetOf(9, 1), graph.SetOf(9, 2), graph.SetOf(9, 3),
		graph.SetOf(4, 5),
	}
	allowed := graph.FullSet(10)
	if got := CoverablePrefix(paths, 1, allowed); got != 3 {
		t.Errorf("prefix = %d, want 3", got)
	}
	if got := CoverablePrefix(paths, 2, allowed); got != 4 {
		t.Errorf("prefix = %d, want 4 (cover {9, 4 or 5})", got)
	}
	if got := CoverablePrefix(paths, 0, allowed); got != 0 {
		t.Errorf("prefix = %d, want 0", got)
	}
	if got := CoverablePrefix(nil, 1, allowed); got != 0 {
		t.Errorf("empty prefix = %d", got)
	}
}

// TestCoverablePrefixMonotone validates the binary-search precondition:
// coverability is monotone decreasing in the prefix length.
func TestCoverablePrefixMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		numPaths := 1 + rng.Intn(7)
		paths := make([]graph.Set, numPaths)
		for i := range paths {
			var s graph.Set
			for j := 0; j < 1+rng.Intn(3); j++ {
				s = s.Add(rng.Intn(6))
			}
			paths[i] = s
		}
		f := rng.Intn(3)
		allowed := graph.FullSet(6)
		k := CoverablePrefix(paths, f, allowed)
		for i := 0; i <= len(paths); i++ {
			if got := HasFCover(paths[:i], f, allowed); got != (i <= k) {
				t.Fatalf("trial %d: prefix %d coverable=%v but CoverablePrefix=%d (paths=%v f=%d)",
					trial, i, got, k, paths, f)
			}
		}
	}
}
