package cond

import (
	"testing"

	"repro/internal/graph"
)

// TestCliqueThresholds reproduces the paper's Appendix A remark: on a
// clique, 1-, 2- and 3-reach are equivalent to n > f, n > 2f and n > 3f.
func TestCliqueThresholds(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for f := 0; f <= 2 && f < n-1; f++ {
			// f < n-1 keeps 1-reach non-vacuous: with |F| allowed to swallow
			// all but one node, Definition 3's quantifier ranges over no
			// pairs and the condition holds trivially.
			g := graph.Clique(n)
			if got, _ := Check1Reach(g, f); got != (n > f) {
				t.Errorf("K%d f=%d: 1-reach=%v want %v", n, f, got, n > f)
			}
			if got, _ := Check2Reach(g, f); got != (n > 2*f) {
				t.Errorf("K%d f=%d: 2-reach=%v want %v", n, f, got, n > 2*f)
			}
			if got, _ := Check3Reach(g, f); got != (n > 3*f) {
				t.Errorf("K%d f=%d: 3-reach=%v want %v", n, f, got, n > 3*f)
			}
		}
	}
}

// TestKReachCliqueThresholds extends the clique correspondence to the
// generalized family (Definition 20): k-reach on a clique iff n > kf.
func TestKReachCliqueThresholds(t *testing.T) {
	for n := 2; n <= 7; n++ {
		for k := 1; k <= 4; k++ {
			g := graph.Clique(n)
			if got, _ := CheckKReach(g, k, 1); got != (n > k) {
				t.Errorf("K%d: %d-reach(f=1)=%v want %v", n, k, got, n > k)
			}
		}
	}
}

// TestReachHierarchy: (k+1)-reach implies k-reach.
func TestReachHierarchy(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := graph.RandomDigraph(6, 0.45, seed)
		r1, _ := Check1Reach(g, 1)
		r2, _ := Check2Reach(g, 1)
		r3, _ := Check3Reach(g, 1)
		if r3 && !r2 {
			t.Errorf("seed %d: 3-reach without 2-reach", seed)
		}
		if r2 && !r1 {
			t.Errorf("seed %d: 2-reach without 1-reach", seed)
		}
	}
}

// TestKReachSeparations exhibits witnesses for strict hierarchy levels:
// graphs satisfying k-reach but not (k+1)-reach (experiment E10).
func TestKReachSeparations(t *testing.T) {
	// K2 with f=1: 1-reach (n>f) but not 2-reach (n=2f).
	g2 := graph.Clique(2)
	if ok, _ := Check1Reach(g2, 1); !ok {
		t.Error("K2 should satisfy 1-reach for f=1")
	}
	if ok, _ := Check2Reach(g2, 1); ok {
		t.Error("K2 should fail 2-reach for f=1")
	}
	// K3 with f=1: 2-reach (n>2f) but not 3-reach (n=3f).
	g3 := graph.Clique(3)
	if ok, _ := Check2Reach(g3, 1); !ok {
		t.Error("K3 should satisfy 2-reach for f=1")
	}
	if ok, w := Check3Reach(g3, 1); ok {
		t.Error("K3 should fail 3-reach for f=1")
	} else if w == nil {
		t.Error("missing witness")
	}
	// K4 with f=1: 3-reach but not 4-reach (n=4f).
	g4 := graph.Clique(4)
	if ok, _ := Check3Reach(g4, 1); !ok {
		t.Error("K4 should satisfy 3-reach for f=1")
	}
	if ok, _ := CheckKReach(g4, 4, 1); ok {
		t.Error("K4 should fail 4-reach for f=1")
	}
}

// TestWitnessSound verifies that a returned 3-reach witness indeed has
// disjoint reach sets and legal set sizes.
func TestWitnessSound(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := graph.RandomDigraph(6, 0.3, seed)
		ok, w := Check3Reach(g, 1)
		if ok {
			continue
		}
		if w == nil {
			t.Fatalf("seed %d: violation without witness", seed)
		}
		if w.F.Count() > 1 || w.Fu.Count() > 1 || w.Fv.Count() > 1 {
			t.Errorf("seed %d: witness sets too large: %s", seed, w)
		}
		if w.RemovalU().Has(w.U) || w.RemovalV().Has(w.V) {
			t.Errorf("seed %d: witness node inside its removal set: %s", seed, w)
		}
		ru := g.ReachSet(w.U, w.RemovalU())
		rv := g.ReachSet(w.V, w.RemovalV())
		if ru.Intersects(rv) {
			t.Errorf("seed %d: witness reach sets intersect: %s", seed, w)
		}
	}
}

// TestPaperFigureConditions pins the conditions of the paper's two figures.
func TestPaperFigureConditions(t *testing.T) {
	fig1a := graph.Fig1a()
	if ok, _ := Check3Reach(fig1a, 1); !ok {
		t.Error("Figure 1(a) graph must satisfy 3-reach for f=1")
	}
	if ok, _ := Check3Reach(fig1a, 2); ok {
		t.Error("Figure 1(a) graph cannot satisfy 3-reach for f=2 (n=5 < 3f+1)")
	}
	analog := graph.Fig1bAnalog()
	if ok, _ := Check3Reach(analog, 1); !ok {
		t.Error("Figure 1(b) analog must satisfy 3-reach for f=1")
	}
	// Removing one cross edge direction breaks the condition.
	broken := analog.Clone()
	broken.RemoveEdge(6, 2)
	broken.RemoveEdge(7, 3)
	if ok, _ := Check3Reach(broken, 1); ok {
		t.Error("analog without K2->K1 bridges should fail 3-reach")
	}
}

// TestFig1bFull is the headline Figure 1(b) verification (E4): exhaustive
// 3-reach for f=2 on the 14-node graph.
func TestFig1bFull(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=14 f=2 check skipped in -short mode")
	}
	g := graph.Fig1b()
	if ok, w := Check3Reach(g, 2); !ok {
		t.Fatalf("Figure 1(b) must satisfy 3-reach for f=2; witness %v", w)
	}
	// Dropping the two K2->K1 bridge groups breaks it.
	broken := g.Clone()
	for i := 3; i < 7; i++ {
		broken.RemoveEdge(i+7, i)
	}
	if ok, _ := Check3Reach(broken, 2); ok {
		t.Error("fig1b without K2->K1 bridges should fail 3-reach")
	}
}

func TestDirectedCycleConditions(t *testing.T) {
	g := graph.DirectedCycle(5)
	if ok, _ := Check1Reach(g, 0); !ok {
		t.Error("cycle satisfies 1-reach for f=0 (strongly connected)")
	}
	// Removing one node leaves a chain whose head reaches both u and v, so
	// the cycle satisfies 1-reach even for f=1 (crash-synchronous consensus
	// is achievable on a directed ring with one crash).
	if ok, _ := Check1Reach(g, 1); !ok {
		t.Error("cycle satisfies 1-reach for f=1")
	}
	// But not 2-reach: suspecting u on v's side and v on u's side splits
	// the ring into two disjoint arcs.
	if ok, _ := Check2Reach(g, 1); ok {
		t.Error("cycle cannot satisfy 2-reach for f=1")
	}
	// A graph with two disconnected nodes fails 1-reach already at f=0.
	disc := graph.New(2)
	if ok, _ := Check1Reach(disc, 0); ok {
		t.Error("disconnected pair cannot satisfy 1-reach")
	}
}

func TestDecompose(t *testing.T) {
	a, b := graph.SetOf(0, 1), graph.SetOf(1, 2)
	fs, fu, fv, ok := decompose(a, b, 1)
	if !ok {
		t.Fatal("decompose failed")
	}
	if fs != graph.SetOf(1) || fu != graph.SetOf(0) || fv != graph.SetOf(2) {
		t.Errorf("decompose = %s %s %s", fs, fu, fv)
	}
	if fs.Count() > 1 || fu.Count() > 1 || fv.Count() > 1 {
		t.Error("sizes exceed f")
	}
	// Infeasible: disjoint 2-sets with f=1.
	if _, _, _, ok := decompose(graph.SetOf(0, 1), graph.SetOf(2, 3), 1); ok {
		t.Error("expected infeasible decomposition")
	}
	// A = B of size 2f decomposes with F = A.
	if _, _, _, ok := decompose(graph.SetOf(0, 1), graph.SetOf(0, 1), 1); !ok {
		t.Error("A=B size 2 should decompose for f=1 via F={x}, Fu={y}")
	}
}
