package cond

import "repro/internal/graph"

// This file implements (r, s)-robustness, the tight condition for the
// *local iterative* W-MSR algorithms of LeBlanc–Zhang–Koutsoukos–Sundaram
// [13] (the paper's related work): resilient consensus under the f-total
// Byzantine model is achievable by W-MSR iff the digraph is (f+1, f+1)-
// robust. Robustness is strictly stronger than this paper's 3-reach —
// experiment E9 exhibits a graph satisfying 3-reach (so algorithm BW works)
// that is not (f+1, f+1)-robust (so every local algorithm fails).

// reachableCount returns |X_S^r|: the number of nodes in s with at least r
// in-neighbors outside s.
func reachableCount(g *graph.Graph, s graph.Set, r int) int {
	count := 0
	s.ForEach(func(v int) bool {
		if g.InSet(v).Minus(s).Count() >= r {
			count++
		}
		return true
	})
	return count
}

// CheckRobustness reports whether g is (r, s)-robust: for every pair of
// disjoint nonempty subsets S1, S2, either every node of S1 has r
// in-neighbors outside S1, or every node of S2 does, or at least s nodes
// across the two sets do. The witness (if any) is the violating pair.
func CheckRobustness(g *graph.Graph, r, s int) (bool, *RobustnessWitness) {
	n := g.N()
	var w *RobustnessWitness
	// Enumerate assignments node -> {S1, S2, neither}.
	assign := make([]int, n)
	var rec func(i int, s1, s2 graph.Set) bool
	rec = func(i int, s1, s2 graph.Set) bool {
		if i == n {
			if s1.Empty() || s2.Empty() {
				return true
			}
			x1 := reachableCount(g, s1, r)
			x2 := reachableCount(g, s2, r)
			if x1 == s1.Count() || x2 == s2.Count() || x1+x2 >= s {
				return true
			}
			w = &RobustnessWitness{S1: s1, S2: s2, X1: x1, X2: x2}
			return false
		}
		assign[i] = 0
		if !rec(i+1, s1, s2) {
			return false
		}
		assign[i] = 1
		if !rec(i+1, s1.Add(i), s2) {
			return false
		}
		assign[i] = 2
		return rec(i+1, s1, s2.Add(i))
	}
	ok := rec(0, graph.EmptySet, graph.EmptySet)
	return ok, w
}

// RobustnessWitness is a violating subset pair.
type RobustnessWitness struct {
	S1, S2 graph.Set
	X1, X2 int
}
