// Package cond implements every topological condition in the paper and the
// checkers that verify them on concrete graphs:
//
//   - reach sets (Definition 2) and the 1-/2-/3-reach conditions
//     (Definition 3), plus the general k-reach family (Definition 20),
//   - the partition conditions CCS, CCA and BCS of Tseng–Vaidya
//     (Definitions 16–18), proven equivalent to 1-/2-/3-reach in the
//     paper's Theorem 17 — the equivalence is verified computationally by
//     this repository's test suite,
//   - f-covers of path sets (Definition 4),
//   - reduced graphs and source components (Definitions 5–6) together with
//     the structural Theorems 5 and 12 used by the algorithm's proof.
//
// Checkers are exhaustive (and exact) for the graph orders used in the
// paper's figures; Monte-Carlo variants are provided for larger sweeps.
package cond

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// Witness describes a violation of a reach condition: the node pair (U, V)
// and the fault-set choices under which the reach sets fail to intersect.
// For 1-reach, F is the single fault set and Fu = Fv = F. For 2-reach, F is
// empty. For 3-reach all three sets are populated.
type Witness struct {
	U, V      int
	F, Fu, Fv graph.Set
}

// String renders the witness for diagnostics.
func (w Witness) String() string {
	return fmt.Sprintf("u=%d v=%d F=%s Fu=%s Fv=%s", w.U, w.V, w.F, w.Fu, w.Fv)
}

// RemovalU returns the full removal set on u's side (F ∪ Fu).
func (w Witness) RemovalU() graph.Set { return w.F.Union(w.Fu) }

// RemovalV returns the full removal set on v's side (F ∪ Fv).
func (w Witness) RemovalV() graph.Set { return w.F.Union(w.Fv) }

// reachTable caches Ancestors(u, A) for every removal set A with
// |A| <= maxSize, keyed by the set's position in enumeration order.
type reachTable struct {
	g     *graph.Graph
	sets  []graph.Set
	index map[graph.Set]int
	reach [][]graph.Set // reach[i][u] = Ancestors(u, sets[i])
}

func buildReachTable(g *graph.Graph, maxSize int) *reachTable {
	t := &reachTable{
		g:     g,
		index: make(map[graph.Set]int),
	}
	graph.Subsets(g.Nodes(), maxSize, func(s graph.Set) bool {
		t.index[s] = len(t.sets)
		t.sets = append(t.sets, s)
		return true
	})
	t.reach = make([][]graph.Set, len(t.sets))
	for i, s := range t.sets {
		row := make([]graph.Set, g.N())
		for u := 0; u < g.N(); u++ {
			if !s.Has(u) {
				row[u] = g.Ancestors(u, s)
			}
		}
		t.reach[i] = row
	}
	return t
}

// decomposable is decompose's feasibility test alone, through pointers and
// without materializing any set: it runs once per enumerated pair of
// removal sets — quadratic in the (exponential) set count — so it must not
// copy the multiword arrays.
func decomposable(a, b *graph.Set, f int) bool {
	ca, cb, ci := 0, 0, 0
	for w := range a {
		ca += bits.OnesCount64(a[w])
		cb += bits.OnesCount64(b[w])
		ci += bits.OnesCount64(a[w] & b[w])
	}
	if ci > f {
		ci = f
	}
	return ca-ci <= f && cb-ci <= f
}

// decompose splits removal sets A and B into (F, Fu, Fv) with F shared,
// each of size at most f, if possible. It implements the feasibility rule
// derived from A = F ∪ Fu, B = F ∪ Fv, F ⊆ A ∩ B:
// feasible iff max(|A|,|B|) − min(f, |A∩B|) <= f.
func decompose(a, b graph.Set, f int) (fShared, fu, fv graph.Set, ok bool) {
	inter := a.Intersect(b)
	take := inter.Count()
	if take > f {
		take = f
	}
	if a.Count()-take > f || b.Count()-take > f {
		return graph.EmptySet, graph.EmptySet, graph.EmptySet, false
	}
	var fs graph.Set
	inter.ForEach(func(v int) bool {
		if fs.Count() == take {
			return false
		}
		fs = fs.Add(v)
		return true
	})
	return fs, a.Minus(fs), b.Minus(fs), true
}

// Check1Reach verifies Definition 3's 1-reach condition: for any F with
// |F| <= f and any u, v outside F, reach_u(F) ∩ reach_v(F) != ∅.
func Check1Reach(g *graph.Graph, f int) (bool, *Witness) {
	t := buildReachTable(g, f)
	for i, fset := range t.sets {
		row := t.reach[i]
		for u := 0; u < g.N(); u++ {
			if fset.Has(u) {
				continue
			}
			for v := u + 1; v < g.N(); v++ {
				if fset.Has(v) {
					continue
				}
				if !setsIntersect(&row[u], &row[v]) {
					return false, &Witness{U: u, V: v, F: fset, Fu: fset, Fv: fset}
				}
			}
		}
	}
	return true, nil
}

// Check2Reach verifies Definition 3's 2-reach condition: for any u, v and
// any Fu (not containing u), Fv (not containing v) of size at most f,
// reach_v(Fv) ∩ reach_u(Fu) != ∅.
func Check2Reach(g *graph.Graph, f int) (bool, *Witness) {
	t := buildReachTable(g, f)
	for i := range t.sets {
		for j := i; j < len(t.sets); j++ {
			if w := checkPair(t, i, j); w != nil {
				w.F = graph.EmptySet
				w.Fu = t.sets[i]
				w.Fv = t.sets[j]
				return false, w
			}
		}
	}
	return true, nil
}

// Check3Reach verifies Definition 3's 3-reach condition — the paper's tight
// condition for asynchronous Byzantine approximate consensus (Theorem 4).
// The checker enumerates removal sets A = F ∪ Fu and B = F ∪ Fv of size at
// most 2f and tests every feasible shared-F decomposition.
func Check3Reach(g *graph.Graph, f int) (bool, *Witness) {
	t := buildReachTable(g, 2*f)
	for i := range t.sets {
		for j := i; j < len(t.sets); j++ {
			if !decomposable(&t.sets[i], &t.sets[j], f) {
				continue
			}
			if w := checkPair(t, i, j); w != nil {
				// Materialize the witness decomposition only on failure.
				w.F, w.Fu, w.Fv, _ = decompose(t.sets[i], t.sets[j], f)
				return false, w
			}
		}
	}
	return true, nil
}

// setsIntersect is Set.Intersects through pointers: this predicate runs
// |sets|^2 * n^2 times in the reach checkers, and the method form copies
// two full multiword arrays per call — the dominant cost after Set grew to
// 16 words for the scale experiments.
func setsIntersect(a, b *graph.Set) bool {
	for w := range a {
		if a[w]&b[w] != 0 {
			return true
		}
	}
	return false
}

// hasNode is Set.Has through a pointer (method calls on *Set auto-deref and
// copy the array).
func hasNode(s *graph.Set, v int) bool {
	return s[uint(v)>>6]&(1<<(uint(v)&63)) != 0
}

// checkPair scans all node pairs (u outside sets[i], v outside sets[j]) for
// an empty reach intersection; it returns a partially filled witness with
// U and V set, or nil if every pair intersects. Both orientations of the
// pair are covered because u and v range over all nodes.
func checkPair(t *reachTable, i, j int) *Witness {
	a, b := &t.sets[i], &t.sets[j]
	ra, rb := t.reach[i], t.reach[j]
	n := t.g.N()
	for u := 0; u < n; u++ {
		if hasNode(a, u) {
			continue
		}
		for v := 0; v < n; v++ {
			if hasNode(b, v) || u == v {
				continue
			}
			if !setsIntersect(&ra[u], &rb[v]) {
				return &Witness{U: u, V: v}
			}
		}
	}
	return nil
}

// CheckKReach verifies the general k-reach condition family (Definition 20)
// for the given k >= 1; k = 1, 2, 3 coincide with Check1Reach, Check2Reach
// and Check3Reach.
//
// Fidelity note: as printed, Definition 20 unions k fault sets per side,
// which does not specialize to Definition 3 (2-reach removes one set per
// side and 3-reach removes F ∪ Fv, i.e. two). We implement the family that
// does specialize — ⌈k/2⌉ sets of size at most f per side, with one of them
// shared between the two sides when k is odd. On a clique this family is
// equivalent to n > k·f for every k, matching the paper's Appendix A
// remarks; the printed form would give n > 2⌈k/2⌉·f instead.
func CheckKReach(g *graph.Graph, k, f int) (bool, *Witness) {
	switch k {
	case 1:
		return Check1Reach(g, f)
	case 2:
		return Check2Reach(g, f)
	case 3:
		return Check3Reach(g, f)
	}
	perSide := (k + 1) / 2
	t := buildReachTable(g, perSide*f)
	shared := k%2 == 1
	for i := range t.sets {
		for j := i; j < len(t.sets); j++ {
			if shared {
				// A = F ∪ (perSide-1 sets of size <= f): feasible iff
				// max(|A|,|B|) − min(f,|A∩B|) <= (perSide-1)·f.
				a, b := &t.sets[i], &t.sets[j]
				ca, cb, inter := 0, 0, 0
				for w := range a {
					ca += bits.OnesCount64(a[w])
					cb += bits.OnesCount64(b[w])
					inter += bits.OnesCount64(a[w] & b[w])
				}
				if inter > f {
					inter = f
				}
				rest := (perSide - 1) * f
				if ca-inter > rest || cb-inter > rest {
					continue
				}
			}
			if w := checkPair(t, i, j); w != nil {
				w.Fu = t.sets[i]
				w.Fv = t.sets[j]
				return false, w
			}
		}
	}
	return true, nil
}
