package cond

import (
	"fmt"

	"repro/internal/graph"
)

// This file checks the structural lemmas the algorithm's proof rests on:
//
//   - Theorem 5: on a 3-reach graph, for any F1 and F2 ⊆ complement(F1)
//     (each of size <= f), the source component S_{F1,F2} propagates (with
//     f+1 node-disjoint paths) in the subgraph avoiding F1 to every node
//     outside F1 ∪ S, and likewise avoiding F2.
//   - Theorem 12: for any Fv and any Fu, Fw ⊆ complement(Fv), the source
//     components S_{Fv,Fu} and S_{Fv,Fw} overlap.
//   - Definition 6's side conditions: source components are nonempty (on
//     3-reach graphs) and strongly connected in the reduced graph.
//
// Experiment E11 runs these checkers over graph families.

// StructureReport aggregates the outcome of the structural checks.
type StructureReport struct {
	PairsChecked   int
	TriplesChecked int
	Failure        string // empty when all checks pass
}

// Ok reports whether all checks passed.
func (r StructureReport) Ok() bool { return r.Failure == "" }

// CheckTheorem5 verifies Theorem 5 for every admissible (F1, F2) pair.
func CheckTheorem5(g *graph.Graph, f int) StructureReport {
	var rep StructureReport
	all := g.Nodes()
	graph.Subsets(all, f, func(f1 graph.Set) bool {
		ok := true
		graph.Subsets(all.Minus(f1), f, func(f2 graph.Set) bool {
			rep.PairsChecked++
			s := g.SourceComponent(f1, f2)
			if s.Empty() {
				rep.Failure = fmt.Sprintf("S_{%s,%s} empty", f1, f2)
				ok = false
				return false
			}
			red := g.Reduced(f1, f2)
			if !red.StronglyConnectedWithin(s) {
				rep.Failure = fmt.Sprintf("S_{%s,%s}=%s not strongly connected in reduced graph", f1, f2, s)
				ok = false
				return false
			}
			// S ~G_{complement(F1)}~> complement(F1) \ S, and same for F2.
			for _, excl := range []graph.Set{f1, f2} {
				target := all.Minus(excl).Minus(s)
				if !g.Propagates(s, target, all.Minus(excl), f) {
					rep.Failure = fmt.Sprintf("S_{%s,%s}=%s does not propagate avoiding %s", f1, f2, s, excl)
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	})
	return rep
}

// CheckTheorem12 verifies Theorem 12 for every admissible (Fv, Fu, Fw)
// triple: S_{Fv,Fu} ∩ S_{Fv,Fw} != ∅.
func CheckTheorem12(g *graph.Graph, f int) StructureReport {
	var rep StructureReport
	all := g.Nodes()
	graph.Subsets(all, f, func(fv graph.Set) bool {
		// Collect the source components S_{Fv,·} once per Fv.
		type entry struct {
			fu graph.Set
			s  graph.Set
		}
		var entries []entry
		graph.Subsets(all.Minus(fv), f, func(fu graph.Set) bool {
			entries = append(entries, entry{fu: fu, s: g.SourceComponent(fv, fu)})
			return true
		})
		for i := range entries {
			for j := i + 1; j < len(entries); j++ {
				rep.TriplesChecked++
				if !entries[i].s.Intersects(entries[j].s) {
					rep.Failure = fmt.Sprintf(
						"S_{%s,%s}=%s disjoint from S_{%s,%s}=%s",
						fv, entries[i].fu, entries[i].s, fv, entries[j].fu, entries[j].s)
					return false
				}
			}
		}
		return true
	})
	return rep
}

// CommonInfluence returns a node in reach_v(F ∪ Fv) ∩ reach_u(F ∪ Fu) — the
// "source of common influence" whose existence 3-reach guarantees — or -1
// if none exists. The BW proof (Theorem 10) uses this node as the common
// witness; the tests use it to cross-check the checker against the
// algorithm's behavior.
func CommonInfluence(g *graph.Graph, u, v int, f, fu, fv graph.Set) int {
	ru := g.ReachSet(u, f.Union(fu))
	rv := g.ReachSet(v, f.Union(fv))
	return ru.Intersect(rv).Min()
}
