// Package prof wires the stock pprof profilers into the benchmark
// commands: a -cpuprofile/-memprofile pair on a CLI maps to one Start call,
// so performance work on the delivery core is reproducible with nothing but
// `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges a
// heap profile into memPath (when non-empty). The returned stop function
// finishes both; it is safe to call exactly once, typically deferred from
// main. Either path may be empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-set numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
