// Package prof wires the stock pprof profilers into the repository's
// binaries: a -cpuprofile/-memprofile pair on a CLI maps to one Start
// call, and a long-lived daemon mounts the HTTP profile endpoints with one
// Attach call — so performance work on the delivery core and the service
// tier is reproducible with nothing but `go tool pprof`.
package prof

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Default sampling knobs EnableContention uses when a daemon turns
// profiling on: 1-in-N mutex contention events and block events at or over
// one microsecond. Cheap enough to leave on under production load, dense
// enough that a few seconds of traffic paints the lock picture.
const (
	DefaultMutexFraction = 5
	DefaultBlockRate     = 1000 // nanoseconds
)

// Attach mounts the standard /debug/pprof handlers — including the mutex
// and block profiles once EnableContention has set their sampling rates —
// onto mux. Daemons that build their own ServeMux (the service tier's
// observability plane) get the same endpoints http.DefaultServeMux users
// get from importing net/http/pprof.
func Attach(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// EnableContention turns on the runtime's contention profilers: mutex
// contention sampled 1-in-mutexFraction, goroutine blocking sampled for
// events of at least blockRateNs nanoseconds. Zero values disable the
// respective profiler again.
func EnableContention(mutexFraction, blockRateNs int) {
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNs)
}

// Start begins CPU profiling into cpuPath (when non-empty) and arranges a
// heap profile into memPath (when non-empty). The returned stop function
// finishes both; it is safe to call exactly once, typically deferred from
// main. Either path may be empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-set numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
