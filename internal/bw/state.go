package bw

import (
	"repro/internal/graph"
)

// valEntry is one accepted (value, path) message in M_v, stored with its
// derived attributes. Entries are append-only: the paper's shared M_v only
// grows, which is what makes the Maximal-Consistency "first time" latch and
// the monotone Completeness condition sound.
type valEntry struct {
	value float64
	key   string
	set   graph.Set
	init  int
}

// clause is one conjunct of Algorithm 2: for source component S and node
// q ∈ S, node v must receive value want (= value_q(M_c)) over a path set
// with no f-cover inside allowed = V \ S \ {v}.
//
// Evaluation is incremental: viable holds the maximal candidate covers
// (size min(f, |allowed|) subsets of allowed) that still intersect every
// matching path seen so far. Adding a path filters the list; the clause is
// satisfied exactly when at least one path arrived and no candidate
// survives (no cover can exist, since any cover extends to a maximal
// candidate). This turns the repeated hitting-set searches that dominated
// profiles into O(|viable|) filtering per message.
type clause struct {
	s         graph.Set
	q         int
	want      float64
	allowed   graph.Set
	f         int
	started   bool
	viable    []graph.Set
	satisfied bool
	// subscribers are the pending COMPLETEs sharing this clause: distinct
	// message sets frequently impose identical (S, q, want) obligations
	// (every honest COMPLETE for the same tag does), so clause state is
	// deduplicated per thread and satisfaction fans out to subscribers.
	subscribers []*pendingComplete
}

// addPath feeds one matching propagation path into the clause.
func (cl *clause) addPath(p graph.Set) {
	if cl.satisfied {
		return
	}
	if !cl.started {
		cl.started = true
		size := cl.f
		if c := cl.allowed.Count(); c < size {
			size = c
		}
		// With f == 0 or an empty allowed set the only candidate is the
		// empty set, which covers nothing: viable stays empty and the
		// clause is satisfied by the first path.
		if size > 0 {
			graph.SubsetsOfSize(cl.allowed, size, func(c graph.Set) bool {
				if c.Intersects(p) {
					cl.viable = append(cl.viable, c)
				}
				return true
			})
		}
	} else {
		kept := cl.viable[:0]
		for _, c := range cl.viable {
			if c.Intersects(p) {
				kept = append(kept, c)
			}
		}
		cl.viable = kept
	}
	cl.satisfied = len(cl.viable) == 0
}

// pendingComplete tracks the Completeness(M_v, M_c, Fu) verification of one
// snapshotted COMPLETE message (Definition 11's "informed" requirement).
type pendingComplete struct {
	content    *contentRecord
	fu         graph.Set
	clauses    []*clause
	remaining  int
	impossible bool // M_c lacks a value for some q ∈ S_{Fu,Fw}; never satisfiable
}

// threadState is the dynamic state of the parallel execution for one
// candidate fault set F_v (Algorithm 1 lines 5–18).
type threadState struct {
	pre *threadPre

	// Maximal-Consistency condition (line 10).
	mcFired      bool
	inconsistent bool
	missing      int
	initVals     map[int]float64

	// FIFO-Receive-All condition (line 12).
	fifoDone  bool
	perOrigin map[int]map[string]map[pathDigest]struct{} // origin -> content -> delivered required paths
	satisfied map[int]bool
	satCount  int

	// Verify (lines 14, 20–26): the COMPLETE messages snapshotted when
	// FIFO-Receive-All fired, and their outstanding clauses (deduplicated
	// by (S, q, want) across the snapshot).
	snapshotDone bool
	pending      []*pendingComplete
	pendingLeft  int
	clauseByInit map[int][]*clause
	clauseDedup  map[sharedClauseKey]*clause
}

// sharedClauseKey identifies a clause up to its evaluation semantics.
type sharedClauseKey struct {
	s        graph.Set
	q        int
	wantBits uint64
}

func newThreadState(pre *threadPre) *threadState {
	return &threadState{
		pre:       pre,
		missing:   pre.expectedCount,
		initVals:  make(map[int]float64),
		perOrigin: make(map[int]map[string]map[pathDigest]struct{}),
		satisfied: make(map[int]bool),
	}
}

// verified reports whether this parallel execution may proceed to
// Filter-and-Average.
func (t *threadState) verified() bool {
	return t.fifoDone && t.snapshotDone && t.pendingLeft == 0
}

// fifoStream reorders COMPLETE messages per (origin, propagation path) so
// that a message with sequence number k is processed only after sequence
// numbers 1..k-1 arrived through the same path (Appendix F's FIFO-Receive).
type fifoStream struct {
	next int
	buf  map[int]*bufferedComplete
}

type bufferedComplete struct {
	payload *CompletePayload
	storage graph.Path // wire path extended with the local node
}

// roundState holds everything node v tracks for one asynchronous round r:
// the shared message history M_v, the per-candidate-fault-set thread states,
// the FIFO streams and the COMPLETE content registry.
type roundState struct {
	round   int
	started bool
	x       float64 // x_v[r], the state value flooded this round

	entries []valEntry
	byPath  map[string]int
	byInit  map[int][]int

	threads []*threadState

	streams      map[pathDigest]*fifoStream
	contents     map[string]*contentRecord
	contentOrder []string

	outSeq   int  // FIFO counter for this node's own floods in this round
	advanced bool // the nextround latch (lines 16-18)
}

func newRoundState(r int, pre *nodePre) *roundState {
	rs := &roundState{
		round:    r,
		byPath:   make(map[string]int),
		byInit:   make(map[int][]int),
		streams:  make(map[pathDigest]*fifoStream),
		contents: make(map[string]*contentRecord),
	}
	rs.threads = make([]*threadState, len(pre.threads))
	for i, tp := range pre.threads {
		rs.threads[i] = newThreadState(tp)
	}
	return rs
}
