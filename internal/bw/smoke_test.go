package bw_test

import (
	"math"
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// runHonest executes BW with all nodes honest and returns the outputs.
func runHonest(t *testing.T, g *graph.Graph, f int, inputs []float64, k, eps float64, seed int64) map[int]float64 {
	t.Helper()
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatalf("NewProto: %v", err)
	}
	handlers := make([]sim.Handler, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatalf("NewMachine(%d): %v", i, err)
		}
		handlers[i] = m
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs, all := r.Outputs(g.Nodes())
	if !all {
		t.Fatalf("not all nodes produced output; steps=%d sent=%d", r.Steps(), r.Stats().Sent)
	}
	t.Logf("graph=%s steps=%d sent=%d outputs=%v", g, r.Steps(), r.Stats().Sent, outs)
	return outs
}

func checkAgreement(t *testing.T, outs map[int]float64, eps, lo, hi float64) {
	t.Helper()
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	if max-min >= eps {
		t.Errorf("convergence violated: spread %g >= eps %g", max-min, eps)
	}
	if min < lo || max > hi {
		t.Errorf("validity violated: outputs [%g,%g] outside input range [%g,%g]", min, max, lo, hi)
	}
}

func TestSmokeCliqueHonest(t *testing.T) {
	g := graph.Clique(4)
	outs := runHonest(t, g, 1, []float64{0, 1, 2, 3}, 3, 0.1, 42)
	checkAgreement(t, outs, 0.1, 0, 3)
}

func TestSmokeFig1aHonest(t *testing.T) {
	g := graph.Fig1a()
	outs := runHonest(t, g, 1, []float64{0, 4, 1, 3, 2}, 4, 0.25, 7)
	checkAgreement(t, outs, 0.25, 0, 4)
}
