package bw

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
)

// Proto holds the static, shared context of a BW execution: the topology,
// the resilience parameter, the termination bound and the precomputed
// structures every node consults (fault-set enumeration and source
// components). A Proto is immutable after construction and safely shared by
// all node machines.
type Proto struct {
	G   *graph.Graph
	F   int
	K   float64 // a-priori bound: inputs lie in [0, K]
	Eps float64
	// Rounds is the paper's termination rule: nonfaulty nodes output after
	// the first round r > log2(K/eps), so Rounds = floor(log2(K/eps)) + 1.
	Rounds int
	// PathBudget caps the number of redundant paths any single node may
	// have to track; configurations beyond it are rejected at setup (see
	// DESIGN.md fidelity note 7).
	PathBudget int

	// FaultSets enumerates every F ⊆ V with |F| <= f in a deterministic
	// order; one parallel thread per member of this list runs at each node
	// (restricted to sets not containing the node itself).
	FaultSets []graph.Set
	// srcComp maps a removal union F1 ∪ F2 (size <= 2f) to the source
	// component S_{F1,F2} of Definition 6, which depends on F1, F2 only
	// through their union.
	srcComp map[graph.Set]graph.Set

	// floods caches the content digest and per-origin value map of each
	// distinct COMPLETE flood, keyed by the identity of its immutable,
	// relay-shared entry slice (digestKey). The cache lives on the shared
	// Proto rather than per machine: hashing a flood's content costs
	// O(total key bytes), and with per-machine caches every receiver paid
	// it again — an O(n^4)-byte bill that dominated large-graph profiles.
	// sync.Map because cluster runtimes invoke machines from concurrent
	// node loops; the deterministic simulator is single-threaded and pays
	// only the map overhead.
	floods sync.Map // digestKey -> *floodInfo
}

// DefaultPathBudget bounds per-node redundant path enumeration.
const DefaultPathBudget = 250_000

// RoundsFor returns the paper's round bound: the smallest R such that
// K / 2^R < eps (zero when K < eps — the trivial case).
func RoundsFor(k, eps float64) int {
	if eps <= 0 {
		panic("bw: eps must be positive")
	}
	r := 0
	for spread := k; spread >= eps; spread /= 2 {
		r++
		if r > 64 {
			break
		}
	}
	return r
}

// NewProto validates the configuration and precomputes the shared
// structures. It does not verify 3-reach (checking is the condition
// package's job and some experiments deliberately run BW on graphs that
// violate it); callers wanting the guarantee should check first.
func NewProto(g *graph.Graph, f int, k, eps float64, pathBudget int) (*Proto, error) {
	if f < 0 {
		return nil, fmt.Errorf("bw: negative fault bound %d", f)
	}
	if k <= 0 || eps <= 0 || math.IsNaN(k) || math.IsNaN(eps) {
		return nil, fmt.Errorf("bw: invalid range/eps %v/%v", k, eps)
	}
	if pathBudget <= 0 {
		pathBudget = DefaultPathBudget
	}
	p := &Proto{
		G:          g,
		F:          f,
		K:          k,
		Eps:        eps,
		Rounds:     RoundsFor(k, eps),
		PathBudget: pathBudget,
		srcComp:    make(map[graph.Set]graph.Set),
	}
	graph.Subsets(g.Nodes(), f, func(s graph.Set) bool {
		p.FaultSets = append(p.FaultSets, s)
		return true
	})
	graph.Subsets(g.Nodes(), 2*f, func(s graph.Set) bool {
		p.srcComp[s] = g.SourceComponent(s, graph.EmptySet)
		return true
	})
	return p, nil
}

// SourceComponent returns S_{F1,F2} from the precomputed table.
func (p *Proto) SourceComponent(f1, f2 graph.Set) graph.Set {
	return p.srcComp[f1.Union(f2)]
}

// threadPre is the per-(node, suspect set) static context: the reach set,
// the fullness target of the Maximal-Consistency condition and the
// per-origin simple-path requirements of the FIFO-Receive-All condition.
type threadPre struct {
	fv    graph.Set
	reach graph.Set
	// expectedCount is the size of the fullness set
	// {p ∈ Pr_{V\Fv} : ter(p) = v} of Definition 9. Only the count is
	// needed at run time: every accepted entry is a redundant path of G
	// ending at v, so it belongs to the set exactly when it avoids F_v —
	// membership never has to be tested, and the paths are counted without
	// being materialized (graph.CountRedundantPathsTo), which is what keeps
	// the precomputation feasible on the scale experiments' graphs.
	expectedCount int
	// requiredFIFO maps each c in reach_v(Fv) to the digest set of all
	// simple (c,v)-paths contained in reach_v(Fv) (Algorithm 1 line 12).
	requiredFIFO map[int]map[pathDigest]struct{}
}

// pathDigest is a 128-bit FNV-1a pair over a path's node sequence. The
// FIFO-requirement and stream tables are keyed by digest instead of the
// materialized key string: at the scale experiments' graph orders the key
// strings alone run to gigabytes, while a digest is 16 bytes per path. A
// collision would require two distinct propagation paths hashing
// identically under both variants — negligible at simulation scale (the
// same argument contentKey already relies on).
type pathDigest [2]uint64

// digestPath hashes the path's Key byte encoding without building it.
func digestPath(p graph.Path) pathDigest {
	const prime64 = 1099511628211
	h1 := uint64(14695981039346656037)
	h2 := h1 ^ 0x9e3779b97f4a7c15
	for _, v := range p {
		for _, b := range [2]byte{byte(v >> 8), byte(v)} {
			h1 = (h1 ^ uint64(b)) * prime64
			h2 = (h2 ^ uint64(b^0xa5)) * prime64
		}
	}
	return pathDigest{h1, h2}
}

// nodePre is the full static context of one node's machine.
type nodePre struct {
	id      int
	threads []*threadPre
	byFv    map[graph.Set]int
}

// precompute builds nodePre for node v, enumerating redundant paths within
// the budget.
func (p *Proto) precompute(v int) (*nodePre, error) {
	pre := &nodePre{id: v, byFv: make(map[graph.Set]int)}
	for _, fv := range p.FaultSets {
		if fv.Has(v) {
			continue
		}
		t := &threadPre{fv: fv, reach: p.G.ReachSet(v, fv)}
		count, err := p.G.CountRedundantPathsTo(v, fv, p.PathBudget)
		if err != nil {
			return nil, fmt.Errorf("bw: node %d, thread %s: %w", v, fv, err)
		}
		t.expectedCount = count
		t.requiredFIFO = make(map[int]map[pathDigest]struct{})
		// All simple paths ending at v whose nodes lie inside the reach
		// set; grouped by initial node they realize line 12's requirement.
		outside := p.G.Nodes().Minus(t.reach)
		simple, err := p.G.SimplePathsTo(v, outside, p.PathBudget)
		if err != nil {
			return nil, fmt.Errorf("bw: node %d, thread %s simple paths: %w", v, fv, err)
		}
		for _, sp := range simple {
			c := sp.Init()
			set, ok := t.requiredFIFO[c]
			if !ok {
				set = make(map[pathDigest]struct{})
				t.requiredFIFO[c] = set
			}
			set[digestPath(sp)] = struct{}{}
		}
		pre.byFv[fv] = len(pre.threads)
		pre.threads = append(pre.threads, t)
	}
	return pre, nil
}
