package bw

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestRoundsFor(t *testing.T) {
	tests := []struct {
		k, eps float64
		want   int
	}{
		{1, 2, 0},   // K < eps: trivial
		{1, 1, 1},   // K/2 < eps = 1
		{1, 0.5, 2}, // 1 -> 0.5 -> 0.25
		{8, 1, 4},   // 8 -> 4 -> 2 -> 1 -> 0.5
		{3, 0.1, 5}, // 3 -> ... -> 0.09375
		{100, 0.01, 14},
	}
	for _, tc := range tests {
		if got := RoundsFor(tc.k, tc.eps); got != tc.want {
			t.Errorf("RoundsFor(%g,%g) = %d, want %d", tc.k, tc.eps, got, tc.want)
		}
	}
	// Resulting spread bound: K/2^R < eps.
	for _, tc := range tests {
		r := RoundsFor(tc.k, tc.eps)
		spread := tc.k
		for i := 0; i < r; i++ {
			spread /= 2
		}
		if spread >= tc.eps {
			t.Errorf("K=%g eps=%g: %d rounds leave spread %g", tc.k, tc.eps, r, spread)
		}
	}
}

func TestNewProtoValidation(t *testing.T) {
	g := graph.Clique(4)
	if _, err := NewProto(g, -1, 1, 0.1, 0); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := NewProto(g, 1, 0, 0.1, 0); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := NewProto(g, 1, 1, 0, 0); err == nil {
		t.Error("zero eps accepted")
	}
	p, err := NewProto(g, 1, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fault sets: empty + 4 singletons.
	if len(p.FaultSets) != 5 {
		t.Errorf("fault sets = %d, want 5", len(p.FaultSets))
	}
	if p.PathBudget != DefaultPathBudget {
		t.Errorf("budget default = %d", p.PathBudget)
	}
}

func TestProtoSourceComponentTable(t *testing.T) {
	g := graph.Clique(4)
	p, err := NewProto(g, 1, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Table entries must agree with direct computation for all unions.
	graph.Subsets(g.Nodes(), 2, func(s graph.Set) bool {
		if got, want := p.SourceComponent(s, graph.EmptySet), g.SourceComponent(s, graph.EmptySet); got != want {
			t.Errorf("S_%s: table %s, direct %s", s, got, want)
		}
		return true
	})
	// Symmetric in its arguments.
	if p.SourceComponent(graph.SetOf(0), graph.SetOf(1)) != p.SourceComponent(graph.SetOf(1), graph.SetOf(0)) {
		t.Error("source component not symmetric")
	}
}

func TestMachinePathBudget(t *testing.T) {
	p, err := NewProto(graph.Clique(6), 1, 1, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(p, 0, 0.5); err == nil {
		t.Error("tiny budget should fail on K6")
	}
}

func TestThreadPrecompute(t *testing.T) {
	g := graph.Fig1a()
	p, err := NewProto(g, 1, 1, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := p.precompute(0)
	if err != nil {
		t.Fatal(err)
	}
	// One thread per F ⊆ V\{0} with |F| <= 1: empty + 4 singletons.
	if len(pre.threads) != 5 {
		t.Fatalf("threads = %d, want 5", len(pre.threads))
	}
	for _, th := range pre.threads {
		if th.fv.Has(0) {
			t.Error("thread suspects its own node")
		}
		// The fullness count must match the materialized enumeration —
		// which contains the trivial path <0> and only redundant paths
		// ending at 0 that avoid Fv (the enumeration's own tests pin that).
		brute, err := g.RedundantPathsTo(0, th.fv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if th.expectedCount != len(brute) {
			t.Errorf("thread %s: expectedCount = %d, enumeration has %d", th.fv, th.expectedCount, len(brute))
		}
		if _, ok := brute[(graph.Path{0}).Key()]; !ok {
			t.Errorf("thread %s misses the trivial path", th.fv)
		}
		// reach_v(Fv) contains v, and the FIFO requirement for v itself is
		// exactly the trivial path.
		if !th.reach.Has(0) {
			t.Errorf("thread %s: reach misses v", th.fv)
		}
		self, ok := th.requiredFIFO[0]
		if !ok || len(self) != 1 {
			t.Errorf("thread %s: self FIFO requirement = %v", th.fv, self)
		}
		if _, ok := self[digestPath(graph.Path{0})]; !ok {
			t.Errorf("thread %s: self FIFO requirement is not the trivial path", th.fv)
		}
		// FIFO requirements are exactly the simple (c,0)-paths inside the
		// reach set, per origin, as digests.
		outside := g.Nodes().Minus(th.reach)
		simple, err := g.SimplePathsTo(0, outside, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantFIFO := make(map[int]map[pathDigest]struct{})
		for _, sp := range simple {
			c := sp.Init()
			if !th.reach.Has(c) {
				t.Errorf("thread %s: simple path origin %d outside reach", th.fv, c)
			}
			if wantFIFO[c] == nil {
				wantFIFO[c] = make(map[pathDigest]struct{})
			}
			wantFIFO[c][digestPath(sp)] = struct{}{}
		}
		if !reflect.DeepEqual(th.requiredFIFO, wantFIFO) {
			t.Errorf("thread %s: requiredFIFO mismatch", th.fv)
		}
	}
}

func TestContentKeyCanonical(t *testing.T) {
	a := CompletePayload{Origin: 1, Tag: graph.SetOf(2), Entries: []ValEntry{
		{Value: 1.5, PathKey: "ab"}, {Value: 2.5, PathKey: "cd"},
	}}
	b := a
	b.Path = graph.Path{9, 9} // path and seq are not content
	b.Seq = 7
	if a.contentKey() != b.contentKey() {
		t.Error("content key depends on path/seq")
	}
	c := a
	c.Entries = []ValEntry{{Value: 1.5, PathKey: "ab"}, {Value: 2.5000001, PathKey: "cd"}}
	if a.contentKey() == c.contentKey() {
		t.Error("content key ignores values")
	}
	d := a
	d.Tag = graph.SetOf(3)
	if a.contentKey() == d.contentKey() {
		t.Error("content key ignores tag")
	}
}

func TestFloodInfoConsistency(t *testing.T) {
	p := &CompletePayload{Origin: 0, Entries: []ValEntry{
		{Value: 1, PathKey: graph.Path{2, 0}.Key()},
		{Value: 1, PathKey: graph.Path{2, 1, 0}.Key()},
		{Value: 3, PathKey: graph.Path{4, 0}.Key()},
	}}
	rec := newFloodInfo(p)
	if !rec.consistent {
		t.Error("consistent set flagged inconsistent")
	}
	if rec.values[2] != 1 || rec.values[4] != 3 {
		t.Errorf("values = %v", rec.values)
	}
	p2 := &CompletePayload{Origin: 0, Entries: []ValEntry{
		{Value: 1, PathKey: graph.Path{2, 0}.Key()},
		{Value: 2, PathKey: graph.Path{2, 1, 0}.Key()}, // same init, different value
	}}
	if newFloodInfo(p2).consistent {
		t.Error("inconsistent set not flagged")
	}
	p3 := &CompletePayload{Origin: 0, Entries: []ValEntry{{Value: 1, PathKey: ""}}}
	if newFloodInfo(p3).consistent {
		t.Error("empty path key accepted")
	}
}
