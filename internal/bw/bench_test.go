package bw_test

import (
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// BenchmarkBWRoundClique4 measures a full honest K4 execution (all rounds).
func BenchmarkBWRoundClique4(b *testing.B) {
	g := graph.Clique(4)
	proto, err := bw.NewProto(g, 1, 3, 0.5, 0)
	if err != nil {
		b.Fatal(err)
	}
	inputs := []float64{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handlers := make([]sim.Handler, 4)
		for id := range handlers {
			m, err := bw.NewMachine(proto, id, inputs[id])
			if err != nil {
				b.Fatal(err)
			}
			handlers[id] = m
		}
		r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(int64(i))}, handlers)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachinePrecompute measures the per-node setup (path enumeration,
// FIFO requirements) on the two-clique analog.
func BenchmarkMachinePrecompute(b *testing.B) {
	g := graph.Fig1bAnalog()
	proto, err := bw.NewProto(g, 1, 1, 0.5, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bw.NewMachine(proto, 0, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoSetup measures the shared source-component precomputation.
func BenchmarkProtoSetup(b *testing.B) {
	g := graph.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bw.NewProto(g, 1, 4, 0.25, 0); err != nil {
			b.Fatal(err)
		}
	}
}
