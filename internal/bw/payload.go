// Package bw implements the paper's main contribution: the Byzantine
// Witness (BW) algorithm for asynchronous approximate Byzantine consensus in
// directed networks satisfying the 3-reach condition (Algorithm 1), together
// with its Completeness verification (Algorithm 2), the Filter-and-Average
// value update (Algorithm 3), the RedundantFlood propagation of state values
// (Algorithm 4, Appendix E) and the FIFO-Flood/FIFO-Receive layer
// (Appendix F).
//
// Fidelity notes relative to the paper's pseudocode are catalogued in
// DESIGN.md; the two substantive ones are the midpoint correction in
// Filter-and-Average (the paper's line 5 typo) and the exclusion of the
// local node from hypothesized f-covers (required by Lemma 8's Equation 1).
package bw

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// ValPayload is a RedundantFlood message (x, p): a round-r state value
// propagated along a redundant path. Path ends at the sender; the receiver
// appends itself before storing or relaying, and rejects messages whose
// claimed path does not terminate at the actual sender (Appendix E's
// ter(p) = u check).
type ValPayload struct {
	Round int
	Value float64
	Path  graph.Path
}

// Kind implements transport.Payload.
func (ValPayload) Kind() string { return "VAL" }

// ValEntry is one (value, path) pair of a flooded message set M_c. Entries
// are sorted by path key so that equal message sets serialize identically.
type ValEntry struct {
	Value   float64
	PathKey string
}

// CompletePayload is a FIFO-flooded (M_c, COMPLETE(F)) message: the message
// set M_c that satisfied the Maximal-Consistency condition at Origin for the
// suspect set Tag, together with Origin's per-round FIFO sequence number.
// Entries is immutable and shared between relayed copies.
type CompletePayload struct {
	Round   int
	Origin  int
	Seq     int
	Tag     graph.Set
	Entries []ValEntry
	Path    graph.Path
}

// Kind implements transport.Payload.
func (CompletePayload) Kind() string { return "COMPLETE" }

// contentKey digests the content of a COMPLETE message (origin, tag and
// entry set — not the propagation path or sequence number), so that "the
// same message received from all paths" (the FIFO-Receive-All condition,
// Algorithm 1 line 12) is a key comparison. The digest is a 128-bit FNV-1a
// pair: entry sets can hold thousands of path entries and arrive over many
// paths, so full canonical serialization per receipt dominated profiles;
// a collision would require two distinct Byzantine message sets hashing
// identically under both variants, which is negligible at simulation scale.
func (c CompletePayload) contentKey() string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64)
	h2 := uint64(offset64 ^ 0x9e3779b97f4a7c15)
	mix := func(b byte) {
		h1 = (h1 ^ uint64(b)) * prime64
		h2 = (h2 ^ uint64(b^0xa5)) * prime64
	}
	mix64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	mix64(uint64(c.Origin))
	for _, w := range c.Tag {
		mix64(w)
	}
	for _, e := range c.Entries {
		for i := 0; i < len(e.PathKey); i++ {
			mix(e.PathKey[i])
		}
		mix(0xff) // entry separator
		mix64(math.Float64bits(e.Value))
	}
	var out [18]byte
	out[0] = byte(c.Origin >> 8)
	out[1] = byte(c.Origin)
	for i := 0; i < 8; i++ {
		out[2+i] = byte(h1 >> (8 * i))
		out[10+i] = byte(h2 >> (8 * i))
	}
	return string(out[:])
}

// floodInfo is the receiver-independent summary of one distinct COMPLETE
// flood: its content key and per-origin value map with the Definition 8
// consistency flag. It is computed once per flood and shared by every
// receiver through the Proto's flood cache — both the content hash and the
// value-map scan cost O(|entries|), which per receiver added up to the
// dominant term of large-graph profiles.
type floodInfo struct {
	key        string
	consistent bool
	values     map[int]float64 // init node -> unique value (Definition 8)
}

func newFloodInfo(p *CompletePayload) *floodInfo {
	info := &floodInfo{
		key:        p.contentKey(),
		consistent: true,
		values:     make(map[int]float64),
	}
	for _, e := range p.Entries {
		init := graph.KeyInit(e.PathKey)
		if init < 0 {
			info.consistent = false
			continue
		}
		if prev, ok := info.values[init]; ok && prev != e.Value {
			info.consistent = false
		}
		info.values[init] = e.Value
	}
	return info
}

// contentRecord is the per-receiver state of one distinct COMPLETE content:
// the shared flood summary plus the set of propagation paths it has been
// FIFO-received through so far at this node.
type contentRecord struct {
	origin int
	tag    graph.Set
	info   *floodInfo
	via    map[pathDigest]graph.Set // delivered path digest -> node set of that path
}

// String aids debugging.
func (r *contentRecord) String() string {
	return fmt.Sprintf("COMPLETE(origin=%d tag=%s consistent=%v |values|=%d)",
		r.origin, r.tag, r.info.consistent, len(r.info.values))
}
