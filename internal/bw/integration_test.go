package bw_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bw"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// buildMachines constructs one honest machine per node.
func buildMachines(t *testing.T, g *graph.Graph, f int, inputs []float64, k, eps float64) ([]sim.Handler, []*bw.Machine) {
	t.Helper()
	proto, err := bw.NewProto(g, f, k, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]sim.Handler, g.N())
	machines := make([]*bw.Machine, g.N())
	for i := 0; i < g.N(); i++ {
		m, err := bw.NewMachine(proto, i, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
		handlers[i] = m
	}
	return handlers, machines
}

func execute(t *testing.T, g *graph.Graph, handlers []sim.Handler, policy transport.Policy) *sim.Runner {
	t.Helper()
	r, err := sim.New(sim.Config{Graph: g, Policy: policy}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBWDeterministicUnderSeed(t *testing.T) {
	run := func() map[int]float64 {
		g := graph.Fig1a()
		handlers, _ := buildMachines(t, g, 1, []float64{0, 1, 2, 3, 4}, 4, 0.5)
		r := execute(t, g, handlers, transport.NewRandomPolicy(77))
		outs, all := r.Outputs(g.Nodes())
		if !all {
			t.Fatal("undecided")
		}
		return outs
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

// TestBWAllSchedules runs the same configuration under FIFO, LIFO and
// several random schedules; convergence and validity must hold under every
// asynchrony pattern.
func TestBWAllSchedules(t *testing.T) {
	policies := map[string]func() transport.Policy{
		"fifo":    func() transport.Policy { return transport.FIFOPolicy{} },
		"lifo":    func() transport.Policy { return transport.LIFOPolicy{} },
		"random1": func() transport.Policy { return transport.NewRandomPolicy(1) },
		"random2": func() transport.Policy { return transport.NewRandomPolicy(999) },
		"bounded": func() transport.Policy { return transport.NewBoundedDelayPolicy(40, 5) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			g := graph.Clique(4)
			handlers, _ := buildMachines(t, g, 1, []float64{0, 3, 1, 2}, 3, 0.2)
			r := execute(t, g, handlers, mk())
			outs, all := r.Outputs(g.Nodes())
			if !all {
				t.Fatal("undecided")
			}
			min, max := math.Inf(1), math.Inf(-1)
			for _, x := range outs {
				min, max = math.Min(min, x), math.Max(max, x)
			}
			if max-min >= 0.2 || min < 0 || max > 3 {
				t.Errorf("outputs %v violate agreement/validity", outs)
			}
		})
	}
}

// TestBWLemma15Halving checks the per-round contraction U[r+1]-µ[r+1] <=
// (U[r]-µ[r])/2 on recorded histories (experiment E6).
func TestBWLemma15Halving(t *testing.T) {
	g := graph.Fig1a()
	inputs := []float64{0, 8, 4, 6, 2}
	handlers, machines := buildMachines(t, g, 1, inputs, 8, 0.2)
	execute(t, g, handlers, transport.NewRandomPolicy(31))

	rounds := len(machines[0].Snapshot().History)
	prev := 8.0
	for r := 0; r < rounds; r++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, m := range machines {
			h := m.Snapshot().History
			if len(h) != rounds {
				t.Fatalf("history lengths differ: %d vs %d", len(h), rounds)
			}
			min, max = math.Min(min, h[r]), math.Max(max, h[r])
		}
		if max-min > prev/2+1e-12 {
			t.Errorf("round %d: spread %g exceeds half of %g", r+1, max-min, prev)
		}
		prev = max - min
	}
	if prev >= 0.2 {
		t.Errorf("final spread %g >= eps", prev)
	}
}

// TestBWFig1bAnalog runs the scaled Figure 1(b) graph end to end (E4).
func TestBWFig1bAnalog(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier end-to-end run")
	}
	g := graph.Fig1bAnalog()
	inputs := []float64{0, 0.5, 1, 0.25, 0.75, 1, 0, 0.5}
	handlers, _ := buildMachines(t, g, 1, inputs, 1, 0.25)
	r := execute(t, g, handlers, transport.NewRandomPolicy(41))
	outs, all := r.Outputs(g.Nodes())
	if !all {
		t.Fatal("undecided")
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	if max-min >= 0.25 {
		t.Errorf("spread = %g", max-min)
	}
	if min < 0 || max > 1 {
		t.Errorf("validity violated: [%g, %g]", min, max)
	}
	t.Logf("fig1b-analog: outputs=%v messages=%d", outs, r.Stats().Sent)
}

// TestBWMetrics sanity-checks the observability counters.
func TestBWMetrics(t *testing.T) {
	g := graph.Clique(4)
	handlers, machines := buildMachines(t, g, 1, []float64{0, 1, 2, 3}, 3, 0.5)
	execute(t, g, handlers, transport.NewRandomPolicy(3))
	for i, m := range machines {
		snap := m.Snapshot()
		if snap.FAExecutions != bw.RoundsFor(3, 0.5) {
			t.Errorf("node %d: FA executions = %d, want %d", i, snap.FAExecutions, bw.RoundsFor(3, 0.5))
		}
		if snap.MCFires == 0 {
			t.Errorf("node %d: no MC fires", i)
		}
		if snap.TrimAnomalies != 0 {
			t.Errorf("node %d: trim anomalies = %d", i, snap.TrimAnomalies)
		}
		if len(snap.DecidedThreads) != snap.FAExecutions {
			t.Errorf("node %d: decided threads %d != FA %d", i, len(snap.DecidedThreads), snap.FAExecutions)
		}
	}
}

// TestBWIgnoresGarbage feeds malformed messages directly into a machine;
// they must all be rejected without state corruption.
func TestBWIgnoresGarbage(t *testing.T) {
	g := graph.Clique(4)
	proto, err := bw.NewProto(g, 1, 1, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := bw.NewMachine(proto, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	col := sim.NewCollector(0, g)
	m.Start(col)
	garbage := []transport.Message{
		// Wrong terminal: path must end at the actual sender.
		{From: 1, To: 0, Payload: bw.ValPayload{Round: 1, Value: 1, Path: graph.Path{2}}},
		// Invalid walk.
		{From: 1, To: 0, Payload: bw.ValPayload{Round: 1, Value: 1, Path: graph.Path{9, 1}}},
		// Bad round.
		{From: 1, To: 0, Payload: bw.ValPayload{Round: 99, Value: 1, Path: graph.Path{1}}},
		{From: 1, To: 0, Payload: bw.ValPayload{Round: 0, Value: 1, Path: graph.Path{1}}},
		// Empty path.
		{From: 1, To: 0, Payload: bw.ValPayload{Round: 1, Value: 1, Path: nil}},
		// COMPLETE with origin not matching the path head.
		{From: 1, To: 0, Payload: bw.CompletePayload{Round: 1, Origin: 2, Seq: 1, Tag: graph.SetOf(3), Path: graph.Path{1}}},
		// COMPLETE whose tag includes its own origin.
		{From: 1, To: 0, Payload: bw.CompletePayload{Round: 1, Origin: 1, Seq: 1, Tag: graph.SetOf(1), Path: graph.Path{1}}},
		// COMPLETE with an oversized tag.
		{From: 1, To: 0, Payload: bw.CompletePayload{Round: 1, Origin: 1, Seq: 1, Tag: graph.SetOf(2, 3), Path: graph.Path{1}}},
		// COMPLETE with zero sequence number.
		{From: 1, To: 0, Payload: bw.CompletePayload{Round: 1, Origin: 1, Seq: 0, Tag: graph.SetOf(3), Path: graph.Path{1}}},
		// Unknown payload type.
		{From: 1, To: 0, Payload: junkPayload{}},
	}
	for _, msg := range garbage {
		before := m.Snapshot()
		out := sim.NewCollector(0, g)
		m.Deliver(msg, out)
		after := m.Snapshot()
		if before.FAExecutions != after.FAExecutions {
			t.Errorf("garbage %v advanced the machine", msg)
		}
	}
	if _, done := m.Output(); done {
		t.Error("garbage alone made the node decide")
	}
}

type junkPayload struct{}

func (junkPayload) Kind() string { return "JUNK" }
