package bw

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cond"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Machine is the BW protocol endpoint for one nonfaulty node. It implements
// sim.Handler; all state is confined to the node's goroutine.
type Machine struct {
	proto *Proto
	pre   *nodePre
	id    int
	input float64

	cur    int
	x      float64
	rounds map[int]*roundState

	// ext is the reusable redundant-extension scratch for deliverVal; the
	// machine is single-threaded per the Handler contract, so one instance
	// serves every delivery without reinitialization (epoch tagging).
	ext redundantExt

	output float64
	done   bool

	metrics Metrics
}

var _ sim.Handler = (*Machine)(nil)

// Metrics exposes per-node execution observability.
type Metrics struct {
	MCFires       int
	FAExecutions  int
	TrimAnomalies int
	// History records x_v[r] after each Filter-and-Average execution.
	History []float64
	// DecidedThreads records, per round, the suspect set F_v of the
	// parallel execution that reached Filter-and-Average first.
	DecidedThreads []graph.Set
}

// NewMachine builds the node's machine, precomputing its fullness and
// FIFO-path requirements. It fails if the graph's redundant-path count for
// some candidate fault set exceeds the protocol's budget.
func NewMachine(p *Proto, id int, input float64) (*Machine, error) {
	pre, err := p.precompute(id)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		proto:  p,
		pre:    pre,
		id:     id,
		input:  input,
		rounds: make(map[int]*roundState),
	}
	m.ext.mark = make([]uint64, p.G.N())
	return m, nil
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Output implements sim.Handler.
func (m *Machine) Output() (float64, bool) { return m.output, m.done }

// Snapshot returns a copy of the node's execution metrics.
func (m *Machine) Snapshot() Metrics { return m.metrics }

// History returns x_v[r] after each completed round.
func (m *Machine) History() []float64 { return m.metrics.History }

// Start implements sim.Handler: it begins round 1 by redundant-flooding the
// input value (Algorithm 1 line 4).
func (m *Machine) Start(out *sim.Outbox) {
	m.x = m.input
	if m.proto.Rounds == 0 { // K < eps: the trivial case
		m.output = m.x
		m.done = true
		return
	}
	m.cur = 1
	m.startRound(1, out)
	m.tryAdvance(out)
}

// Deliver implements sim.Handler.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	switch p := msg.Payload.(type) {
	case ValPayload:
		m.deliverVal(p, msg.From, out)
	case CompletePayload:
		m.deliverComplete(p, msg.From, out)
	default:
		// Unknown payloads (from Byzantine peers) are ignored.
	}
	m.tryAdvance(out)
}

func (m *Machine) round(r int) *roundState {
	rs, ok := m.rounds[r]
	if !ok {
		rs = newRoundState(r, m.pre)
		m.rounds[r] = rs
	}
	return rs
}

// startRound floods x_v for round r and stores the node's own trivial-path
// message.
func (m *Machine) startRound(r int, out *sim.Outbox) {
	rs := m.round(r)
	rs.started = true
	rs.x = m.x
	self := graph.Path{m.id}
	out.Broadcast(ValPayload{Round: r, Value: m.x, Path: self})
	m.acceptVal(rs, valEntry{
		value: m.x,
		key:   self.Key(),
		set:   graph.SetOf(m.id),
		init:  m.id,
	}, out)
}

// deliverVal validates, relays and stores one RedundantFlood message
// (Algorithm 4 plus the receiver-side checks of Appendix E).
func (m *Machine) deliverVal(p ValPayload, from int, out *sim.Outbox) {
	if p.Round < 1 || p.Round > m.proto.Rounds {
		return
	}
	if len(p.Path) == 0 || p.Path.Ter() != from || !p.Path.ValidIn(m.proto.G) {
		return
	}
	storage := p.Path.Append(m.id)
	if !m.ext.analyze(storage) {
		return // storage itself is not a redundant path
	}

	rs := m.round(p.Round)
	key := storage.Key()
	if _, dup := rs.byPath[key]; dup {
		return // first message per path wins (Algorithm 4 line 3)
	}
	for _, w := range m.proto.G.Out(m.id) {
		if m.ext.extendable(w) {
			out.Send(w, ValPayload{Round: p.Round, Value: p.Value, Path: storage})
		}
	}
	m.acceptVal(rs, valEntry{value: p.Value, key: key, set: storage.Set(), init: storage.Init()}, out)
}

// redundantExt answers "is storage||w still a redundant path?" in O(1) per
// neighbor. With a = length of the longest all-distinct prefix and b = start
// of the longest all-distinct suffix, a walk is redundant iff b <= a-1
// (graph.Path.IsRedundant). Appending w moves a only when the walk was fully
// distinct, and moves b to just past w's last occurrence.
//
// The scratch array is epoch-tagged rather than cleared: analyze costs
// O(len(storage)) regardless of MaxNodes, which matters when the simulator
// pushes millions of deliveries through a single machine. Entries store
// epoch<<markShift | position+1; a mismatched epoch reads as "absent".
type redundantExt struct {
	n     int
	a, b  int
	epoch uint64
	// mark is sized to the graph order at machine construction (node IDs
	// are dense in [0, n)) — a slice rather than a [graph.MaxNodes]array so
	// machines on small graphs don't carry a 32 KB scratch block under the
	// graph4096 build.
	mark []uint64
}

// markShift leaves room for positions up to 2*MaxNodes+1 in the largest
// build dimension (4096 nodes: 8193 < 1<<15; redundant paths are
// concatenations of two simple paths and longer walks are rejected up
// front). Epochs occupy the remaining 49 bits — no run gets near wrapping.
const markShift = 15

// analyze precomputes the extension test for storage; it reports false when
// storage itself is not redundant (in which case no extension is either,
// since prefixes of redundant walks are redundant).
func (e *redundantExt) analyze(storage graph.Path) bool {
	if len(storage) > 2*graph.MaxNodes {
		// No redundant path is longer than two simple paths; rejecting here
		// also keeps positions within the mark word's low bits.
		return false
	}
	e.n = len(storage)

	// Pass 1: a = length of the longest all-distinct prefix.
	e.epoch++
	tag := e.epoch << markShift
	e.a = e.n
	for i, v := range storage {
		if e.mark[v]>>markShift == e.epoch {
			e.a = i
			break
		}
		e.mark[v] = tag
	}
	// Pass 2: b = start of the longest all-distinct suffix.
	e.epoch++
	tag = e.epoch << markShift
	e.b = 0
	for i := e.n - 1; i >= 0; i-- {
		v := storage[i]
		if e.mark[v]>>markShift == e.epoch {
			e.b = i + 1
			break
		}
		e.mark[v] = tag
	}
	if e.b > e.a-1 {
		return false
	}
	// Pass 3: last occurrence index of every node on the walk.
	e.epoch++
	tag = e.epoch << markShift
	for i, v := range storage {
		e.mark[v] = tag | uint64(i+1)
	}
	return true
}

// lastIdx returns the last occurrence of w in the analyzed walk, or -1.
func (e *redundantExt) lastIdx(w int) int {
	if e.mark[w]>>markShift != e.epoch {
		return -1
	}
	return int(e.mark[w]&(1<<markShift-1)) - 1
}

// extendable reports whether appending w keeps the walk redundant.
func (e *redundantExt) extendable(w int) bool {
	last := e.lastIdx(w)
	a := e.a
	if e.a == e.n && last < 0 { // fully distinct walk, new node
		a = e.n + 1
	}
	b := e.b
	if last+1 > b {
		b = last + 1
	}
	return b <= a-1
}

// acceptVal appends the message to M_v and updates every parallel
// execution: Maximal-Consistency progress for threads whose exclusion set
// the path avoids, and outstanding Completeness clauses everywhere.
func (m *Machine) acceptVal(rs *roundState, e valEntry, out *sim.Outbox) {
	rs.byPath[e.key] = len(rs.entries)
	rs.entries = append(rs.entries, e)
	rs.byInit[e.init] = append(rs.byInit[e.init], len(rs.entries)-1)

	for _, t := range rs.threads {
		// Membership in the fullness set is a bitmask test: every accepted
		// entry is a redundant path of G ending here, so it belongs to
		// thread t's expected set exactly when it avoids F_v.
		if !t.mcFired && !t.inconsistent && !e.set.Intersects(t.pre.fv) {
			if prev, ok := t.initVals[e.init]; ok && prev != e.value {
				t.inconsistent = true
			} else {
				t.initVals[e.init] = e.value
			}
			t.missing--
			if t.missing == 0 && !t.inconsistent {
				m.fireMC(rs, t, out)
			}
		}
		if t.snapshotDone && t.pendingLeft > 0 {
			for _, cl := range t.clauseByInit[e.init] {
				if cl.satisfied || cl.want != e.value {
					continue
				}
				cl.addPath(e.set)
				if cl.satisfied {
					m.clauseSatisfied(t, cl)
				}
			}
		}
	}
}

// fireMC executes lines 10-11: the Maximal-Consistency condition holds for
// this thread for the first time, so the node FIFO-floods
// (M_v excluding F_v, COMPLETE(F_v)).
func (m *Machine) fireMC(rs *roundState, t *threadState, out *sim.Outbox) {
	t.mcFired = true
	m.metrics.MCFires++

	entries := make([]ValEntry, 0, len(t.initVals))
	for _, e := range rs.entries {
		if !e.set.Intersects(t.pre.fv) {
			entries = append(entries, ValEntry{Value: e.value, PathKey: e.key})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].PathKey < entries[j].PathKey })

	rs.outSeq++
	payload := CompletePayload{
		Round:   rs.round,
		Origin:  m.id,
		Seq:     rs.outSeq,
		Tag:     t.pre.fv,
		Entries: entries,
		Path:    graph.Path{m.id},
	}
	out.Broadcast(payload)
	// The node FIFO-receives its own flood through the trivial path <v>.
	m.registerComplete(rs, &payload, graph.Path{m.id}, out)
}

// deliverComplete validates, relays and FIFO-buffers one COMPLETE message.
func (m *Machine) deliverComplete(p CompletePayload, from int, out *sim.Outbox) {
	if p.Round < 1 || p.Round > m.proto.Rounds || p.Seq < 1 {
		return
	}
	if len(p.Path) == 0 || p.Path.Ter() != from || p.Path.Init() != p.Origin || !p.Path.ValidIn(m.proto.G) {
		return
	}
	if p.Tag.Count() > m.proto.F || p.Tag.Has(p.Origin) {
		return // no honest thread floods such a tag (line 5)
	}
	storage := p.Path.Append(m.id)
	if !storage.IsSimple() {
		return // FIFO floods use simple paths only (Appendix F)
	}
	rs := m.round(p.Round)
	// The stream is keyed by (origin, path); the path digest alone suffices
	// because the path begins at the origin (validated above).
	streamKey := digestPath(storage)
	st, ok := rs.streams[streamKey]
	if !ok {
		st = &fifoStream{next: 1, buf: make(map[int]*bufferedComplete)}
		rs.streams[streamKey] = st
	}
	if _, dup := st.buf[p.Seq]; dup || p.Seq < st.next {
		return // first message per (origin, path, seq) wins
	}
	// Relay before FIFO reordering: forwarding is immediate, ordering is
	// enforced receiver-side.
	for _, w := range m.proto.G.Out(m.id) {
		if !storage.Set().Has(w) {
			fwd := p
			fwd.Path = storage
			out.Send(w, fwd)
		}
	}
	st.buf[p.Seq] = &bufferedComplete{payload: &p, storage: storage}
	for {
		b, ok := st.buf[st.next]
		if !ok {
			break
		}
		delete(st.buf, st.next)
		st.next++
		m.registerComplete(rs, b.payload, b.storage, out)
	}
}

// digestKey identifies a COMPLETE payload's content by the identity of its
// (immutable, relay-shared) entry slice, so the flood summary is computed
// once per distinct flood rather than once per delivered copy — and, via
// the Proto's shared cache, once per run rather than once per receiver.
// Two payloads share a cache entry only when they share the same backing
// array, origin and tag — in which case their contents are byte-identical.
type digestKey struct {
	origin int
	tag    graph.Set
	first  *ValEntry
	n      int
}

// floodInfo returns the shared summary of p's content, computing it on
// first sight of the flood in this run.
func (m *Machine) floodInfo(p *CompletePayload) *floodInfo {
	var first *ValEntry
	if len(p.Entries) > 0 {
		first = &p.Entries[0]
	}
	dk := digestKey{origin: p.Origin, tag: p.Tag, first: first, n: len(p.Entries)}
	if v, ok := m.proto.floods.Load(dk); ok {
		return v.(*floodInfo)
	}
	// LoadOrStore, not Store: machines on different parallel-engine lanes
	// may race to summarize the same flood. The summary is a pure function
	// of the payload content, so whichever instance wins the race is
	// equivalent — LoadOrStore just keeps one canonical pointer in the map.
	v, _ := m.proto.floods.LoadOrStore(dk, newFloodInfo(p))
	return v.(*floodInfo)
}

func (m *Machine) contentDigest(p *CompletePayload) string {
	return m.floodInfo(p).key
}

// registerComplete processes one FIFO-delivered COMPLETE: it records the
// content, advances the FIFO-Receive-All condition of the thread whose
// suspect set matches the tag, and — when that condition fires — snapshots
// the qualifying COMPLETE messages for verification (Algorithm 1 lines
// 12-13 and the Section 4.3 snapshot semantics).
func (m *Machine) registerComplete(rs *roundState, p *CompletePayload, storage graph.Path, out *sim.Outbox) {
	info := m.floodInfo(p)
	key := info.key
	rec, ok := rs.contents[key]
	if !ok {
		rec = &contentRecord{
			origin: p.Origin,
			tag:    p.Tag,
			info:   info,
			via:    make(map[pathDigest]graph.Set),
		}
		rs.contents[key] = rec
		rs.contentOrder = append(rs.contentOrder, key)
	}
	dig := digestPath(storage)
	rec.via[dig] = storage.Set()

	idx, ok := m.pre.byFv[p.Tag]
	if !ok {
		return
	}
	t := rs.threads[idx]
	if t.fifoDone {
		return
	}
	required, ok := t.pre.requiredFIFO[p.Origin]
	if !ok {
		return // origin outside reach_v(F_v); not part of the condition
	}
	if _, need := required[dig]; !need {
		return
	}
	byContent, ok := t.perOrigin[p.Origin]
	if !ok {
		byContent = make(map[string]map[pathDigest]struct{})
		t.perOrigin[p.Origin] = byContent
	}
	paths, ok := byContent[key]
	if !ok {
		paths = make(map[pathDigest]struct{})
		byContent[key] = paths
	}
	paths[dig] = struct{}{}
	if len(paths) == len(required) && !t.satisfied[p.Origin] {
		t.satisfied[p.Origin] = true
		t.satCount++
		if t.satCount == len(t.pre.requiredFIFO) {
			t.fifoDone = true
			m.buildSnapshot(rs, t)
		}
	}
}

// buildSnapshot freezes the set of COMPLETE messages this thread must
// verify: every consistent content FIFO-received so far through at least
// one simple (c,v)-path inside reach_v(F_v) (Verify, lines 20-26). Each
// snapshot member contributes the Algorithm 2 clauses; clause state is
// shared across snapshot members imposing the same (S, q, want) obligation.
func (m *Machine) buildSnapshot(rs *roundState, t *threadState) {
	t.clauseByInit = make(map[int][]*clause)
	t.clauseDedup = make(map[sharedClauseKey]*clause)
	for _, key := range rs.contentOrder {
		rec := rs.contents[key]
		if !rec.info.consistent {
			continue
		}
		qualifies := false
		for _, set := range rec.via {
			if set.Minus(t.pre.reach).Empty() {
				qualifies = true
				break
			}
		}
		if !qualifies {
			continue
		}
		pc := &pendingComplete{content: rec, fu: rec.tag}
		type pcClauseKey struct {
			s graph.Set
			q int
		}
		seen := make(map[pcClauseKey]struct{})
		for _, fw := range m.proto.FaultSets {
			if fw == rec.tag {
				continue
			}
			s := m.proto.SourceComponent(rec.tag, fw)
			for _, q := range s.Members() {
				ck := pcClauseKey{s: s, q: q}
				if _, dup := seen[ck]; dup {
					continue
				}
				seen[ck] = struct{}{}
				want, okv := rec.info.values[q]
				if !okv {
					pc.impossible = true
					break
				}
				cl := m.sharedClause(rs, t, s, q, want)
				pc.clauses = append(pc.clauses, cl)
				if !cl.satisfied {
					pc.remaining++
					cl.subscribers = append(cl.subscribers, pc)
				}
			}
			if pc.impossible {
				break
			}
		}
		t.pending = append(t.pending, pc)
		if pc.impossible || pc.remaining > 0 {
			t.pendingLeft++
		}
	}
	t.snapshotDone = true
}

// sharedClause returns the thread's clause for (S, q, want), creating and
// pre-feeding it from the current M_v on first use.
func (m *Machine) sharedClause(rs *roundState, t *threadState, s graph.Set, q int, want float64) *clause {
	key := sharedClauseKey{s: s, q: q, wantBits: math.Float64bits(want)}
	if cl, ok := t.clauseDedup[key]; ok {
		return cl
	}
	cl := &clause{
		s: s, q: q, want: want, f: m.proto.F,
		allowed: m.proto.G.Nodes().Minus(s).Remove(m.id),
	}
	for _, idx := range rs.byInit[q] {
		if e := rs.entries[idx]; e.value == want {
			cl.addPath(e.set)
			if cl.satisfied {
				break
			}
		}
	}
	t.clauseDedup[key] = cl
	t.clauseByInit[q] = append(t.clauseByInit[q], cl)
	return cl
}

// clauseSatisfied fans a newly satisfied clause out to its subscribers.
func (m *Machine) clauseSatisfied(t *threadState, cl *clause) {
	for _, pc := range cl.subscribers {
		if pc.impossible {
			continue
		}
		pc.remaining--
		if pc.remaining == 0 {
			t.pendingLeft--
		}
	}
	cl.subscribers = nil
}

// tryAdvance executes Filter-and-Average once some parallel execution of
// the current round is fully verified, then starts the next round; it loops
// because buffered future-round messages can complete several rounds in one
// delivery.
func (m *Machine) tryAdvance(out *sim.Outbox) {
	for !m.done {
		rs, ok := m.rounds[m.cur]
		if !ok || !rs.started || rs.advanced {
			return
		}
		var winner *threadState
		for _, t := range rs.threads {
			if t.verified() {
				winner = t
				break
			}
		}
		if winner == nil {
			return
		}
		rs.advanced = true
		m.x = m.filterAndAverage(rs)
		m.metrics.FAExecutions++
		m.metrics.History = append(m.metrics.History, m.x)
		m.metrics.DecidedThreads = append(m.metrics.DecidedThreads, winner.pre.fv)
		if m.cur == m.proto.Rounds {
			m.output = m.x
			m.done = true
			return
		}
		m.cur++
		m.startRound(m.cur, out)
	}
}

// filterAndAverage implements Algorithm 3 with the midpoint correction
// (DESIGN.md fidelity note 1): sort M_v by value, trim the longest
// f-coverable prefix and suffix, and return the midpoint of the remaining
// extremes. The node's own trivial-path message admits no cover (a node
// never suspects itself), so the trimmed vector is always nonempty.
func (m *Machine) filterAndAverage(rs *roundState) float64 {
	order := make([]int, len(rs.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := rs.entries[order[a]], rs.entries[order[b]]
		if ea.value != eb.value {
			return ea.value < eb.value
		}
		return ea.key < eb.key
	})
	sets := make([]graph.Set, len(order))
	for i, idx := range order {
		sets[i] = rs.entries[idx].set
	}
	allowed := m.proto.G.Nodes().Remove(m.id)
	lo := cond.CoverablePrefix(sets, m.proto.F, allowed)
	rev := make([]graph.Set, len(sets))
	for i := range sets {
		rev[i] = sets[len(sets)-1-i]
	}
	hi := cond.CoverablePrefix(rev, m.proto.F, allowed)
	if lo+hi >= len(order) {
		// Unreachable when the node's own message is present; defensive.
		m.metrics.TrimAnomalies++
		return rs.x
	}
	low := rs.entries[order[lo]].value
	high := rs.entries[order[len(order)-1-hi]].value
	return (low + high) / 2
}

// String aids debugging.
func (m *Machine) String() string {
	return fmt.Sprintf("bw.Machine(node=%d round=%d/%d x=%g done=%v)",
		m.id, m.cur, m.proto.Rounds, m.x, m.done)
}
