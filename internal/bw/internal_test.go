package bw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cond"
	"repro/internal/graph"
)

// TestAnalyzeRedundantMatchesDefinition cross-validates the O(1) relay
// extension test against the direct IsRedundant definition over random
// walks — the incremental prefix/suffix bound arithmetic is hand-derived,
// so it gets exhaustive scrutiny.
func TestAnalyzeRedundantMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// One shared scratch across all trials exercises the epoch tagging the
	// way a machine does: no clearing between deliveries. mark is sized for
	// the largest node ID the trials use, as NewMachine sizes it for the
	// graph order.
	ext := redundantExt{mark: make([]uint64, 6)}
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(10)
		p := make(graph.Path, n)
		for i := range p {
			p[i] = rng.Intn(5)
		}
		ok := ext.analyze(p)
		if ok != p.IsRedundant() {
			t.Fatalf("analyze(%v) ok=%v, IsRedundant=%v", p, ok, p.IsRedundant())
		}
		if !ok {
			continue
		}
		for w := 0; w < 6; w++ {
			got := ext.extendable(w)
			want := p.Append(w).IsRedundant()
			if got != want {
				t.Fatalf("extendable(%v, %d) = %v, want %v", p, w, got, want)
			}
		}
	}
}

// TestClauseAddPathMatchesCoverSearch cross-validates the incremental
// viable-cover clause evaluation against the exact hitting-set search it
// replaced: after any sequence of paths, the clause is satisfied iff the
// path set has no f-cover inside allowed.
func TestClauseAddPathMatchesCoverSearch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		fBound := rng.Intn(3)
		allowed := graph.FullSet(n)
		for k := 0; k < rng.Intn(3); k++ {
			allowed = allowed.Remove(rng.Intn(n))
		}
		cl := &clause{f: fBound, allowed: allowed}
		var paths []graph.Set
		for step := 0; step < 8; step++ {
			var p graph.Set
			for j := 0; j < 1+rng.Intn(4); j++ {
				p = p.Add(rng.Intn(n))
			}
			paths = append(paths, p)
			cl.addPath(p)
			want := !cond.HasFCover(paths, fBound, allowed)
			if cl.satisfied != want {
				t.Logf("seed=%d step=%d paths=%v f=%d allowed=%s: incremental=%v exact=%v",
					seed, step, paths, fBound, allowed, cl.satisfied, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestClauseAddPathLatched: once satisfied, further paths cannot
// unsatisfy a clause (monotonicity the algorithm relies on).
func TestClauseAddPathLatched(t *testing.T) {
	cl := &clause{f: 1, allowed: graph.SetOf(0, 1)}
	cl.addPath(graph.SetOf(2)) // no candidate can hit {2}
	if !cl.satisfied {
		t.Fatal("clause should be satisfied")
	}
	cl.addPath(graph.SetOf(0))
	if !cl.satisfied {
		t.Fatal("satisfaction must latch")
	}
}

// TestDigestCacheDistinguishesContents ensures the identity-keyed digest
// cache cannot conflate payloads with different backing arrays.
func TestDigestCacheDistinguishesContents(t *testing.T) {
	p, err := NewProto(graph.Clique(4), 1, 1, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a := &CompletePayload{Origin: 1, Tag: graph.SetOf(2),
		Entries: []ValEntry{{Value: 1, PathKey: "\x01\x00"}}}
	b := &CompletePayload{Origin: 1, Tag: graph.SetOf(2),
		Entries: []ValEntry{{Value: 2, PathKey: "\x01\x00"}}}
	if m.contentDigest(a) == m.contentDigest(b) {
		t.Error("different contents produced the same digest")
	}
	// Same payload twice: cached, equal.
	if m.contentDigest(a) != m.contentDigest(a) {
		t.Error("digest not stable")
	}
	// Equal content in a different backing array still digests equally.
	c := &CompletePayload{Origin: 1, Tag: graph.SetOf(2),
		Entries: []ValEntry{{Value: 1, PathKey: "\x01\x00"}}}
	if m.contentDigest(a) != m.contentDigest(c) {
		t.Error("equal contents digested differently")
	}
}
