// Package aad implements the Abraham–Amit–Dolev (OPODIS 2004) optimal
// resilience asynchronous approximate agreement algorithm for complete
// networks with n > 3f — the algorithm whose generalization to directed
// networks is this paper's contribution (Section 2, "Technique Outline").
//
// Per asynchronous round, every node reliably broadcasts its state value;
// after accepting n−f values it reliably broadcasts its report (the set of
// accepted values); a reporter q becomes a *witness* for p once p has
// accepted both q's report and every value the report contains. When p has
// n−f witnesses, any two nonfaulty nodes share a nonfaulty witness (since
// 2(n−f) − n ≥ f+1), hence at least n−2f ≥ f+1 common values — the common
// information that drives the halving. The update trims the f lowest and f
// highest collected values and moves to the midpoint of the remainder.
package aad

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Num is a reliably broadcast state value. The concrete type lives in
// internal/rbc (the substrate shared with the exact tier); the alias keeps
// aad's public surface — and the wire codec's references — unchanged.
type Num = rbc.Num

// Report is a reliably broadcast report: origin -> value. Exported for the
// wire codec, like Num.
type Report map[int]float64

// RBCKey implements rbc.Content.
func (r Report) RBCKey() string {
	keys := make([]int, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d=%x;", k, math.Float64bits(r[k]))
	}
	return b.String()
}

// roundState tracks one asynchronous round.
type roundState struct {
	values    map[int]float64 // accepted state values by origin
	reports   map[int]Report  // accepted reports by origin
	reported  bool            // own report broadcast yet?
	witnesses graph.Set
	advanced  bool
}

func newRound() *roundState {
	return &roundState{
		values:  make(map[int]float64),
		reports: make(map[int]Report),
	}
}

// Machine is the AAD protocol endpoint for one nonfaulty node; it
// implements sim.Handler.
type Machine struct {
	n, f   int
	id     int
	rounds int
	input  float64

	bcast *rbc.Broadcaster
	cur   int
	x     float64
	state map[int]*roundState

	output  float64
	done    bool
	history []float64
}

var _ sim.Handler = (*Machine)(nil)

// NewMachine builds an AAD node for an n-clique with resilience f; rounds
// follows the same log2(K/eps) bound as BW.
func NewMachine(n, f, id, rounds int, input float64) (*Machine, error) {
	b, err := rbc.New(n, f, id)
	if err != nil {
		return nil, err
	}
	return &Machine{
		n: n, f: f, id: id, rounds: rounds, input: input,
		bcast: b,
		state: make(map[int]*roundState),
	}, nil
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Output implements sim.Handler.
func (m *Machine) Output() (float64, bool) { return m.output, m.done }

// History returns x after each completed round.
func (m *Machine) History() []float64 { return m.history }

// Start implements sim.Handler.
func (m *Machine) Start(out *sim.Outbox) {
	m.x = m.input
	if m.rounds == 0 {
		m.output, m.done = m.x, true
		return
	}
	m.cur = 1
	m.beginRound(out)
}

// Deliver implements sim.Handler.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	for _, d := range m.bcast.Handle(msg, out) {
		m.onDelivery(d, out)
	}
	m.maybeAdvance(out)
}

func (m *Machine) round(r int) *roundState {
	rs, ok := m.state[r]
	if !ok {
		rs = newRound()
		m.state[r] = rs
	}
	return rs
}

func (m *Machine) beginRound(out *sim.Outbox) {
	tag := "r" + strconv.Itoa(m.cur) + "/value"
	for _, d := range m.bcast.Broadcast(tag, Num(m.x), out) {
		m.onDelivery(d, out)
	}
	m.maybeAdvance(out)
}

// onDelivery routes a reliable delivery into its round state.
func (m *Machine) onDelivery(d rbc.Delivery, out *sim.Outbox) {
	r, kind, ok := parseTag(d.Tag)
	if !ok || r < 1 || r > m.rounds {
		return
	}
	rs := m.round(r)
	switch kind {
	case "value":
		if v, ok := d.Content.(Num); ok {
			if _, dup := rs.values[d.Origin]; !dup {
				rs.values[d.Origin] = float64(v)
			}
		}
	case "report":
		if rep, ok := d.Content.(Report); ok {
			if _, dup := rs.reports[d.Origin]; !dup && len(rep) >= m.n-m.f {
				rs.reports[d.Origin] = rep
			}
		}
	}
	// Broadcast our own report once n−f values are in (for the round we
	// are actually in; later rounds report when we reach them).
	if r == m.cur && !rs.reported && len(rs.values) >= m.n-m.f {
		rs.reported = true
		snapshot := make(Report, len(rs.values))
		for o, v := range rs.values {
			snapshot[o] = v
		}
		tag := "r" + strconv.Itoa(r) + "/report"
		for _, dd := range m.bcast.Broadcast(tag, snapshot, out) {
			m.onDelivery(dd, out)
		}
	}
}

// witnessCount recomputes the witness set: reporters whose entire report
// has been accepted by this node with matching values.
func (m *Machine) refreshWitnesses(rs *roundState) {
	for origin, rep := range rs.reports {
		if rs.witnesses.Has(origin) {
			continue
		}
		ok := true
		for o, v := range rep {
			if got, have := rs.values[o]; !have || got != v {
				ok = false
				break
			}
		}
		if ok {
			rs.witnesses = rs.witnesses.Add(origin)
		}
	}
}

func (m *Machine) maybeAdvance(out *sim.Outbox) {
	for !m.done {
		rs := m.round(m.cur)
		if rs.advanced {
			return
		}
		if !rs.reported {
			// The report threshold can also be crossed by deliveries that
			// arrived before this round began.
			if len(rs.values) >= m.n-m.f {
				rs.reported = true
				snapshot := make(Report, len(rs.values))
				for o, v := range rs.values {
					snapshot[o] = v
				}
				tag := "r" + strconv.Itoa(m.cur) + "/report"
				for _, dd := range m.bcast.Broadcast(tag, snapshot, out) {
					m.onDelivery(dd, out)
				}
			} else {
				return
			}
		}
		m.refreshWitnesses(rs)
		if rs.witnesses.Count() < m.n-m.f {
			return
		}
		// Update: trim f lowest and f highest accepted values, midpoint.
		rs.advanced = true
		vals := make([]float64, 0, len(rs.values))
		for _, v := range rs.values {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		trimmed := vals[m.f : len(vals)-m.f]
		m.x = (trimmed[0] + trimmed[len(trimmed)-1]) / 2
		m.history = append(m.history, m.x)
		if m.cur == m.rounds {
			m.output, m.done = m.x, true
			return
		}
		m.cur++
		m.beginRound(out)
	}
}

func parseTag(tag string) (round int, kind string, ok bool) {
	if !strings.HasPrefix(tag, "r") {
		return 0, "", false
	}
	parts := strings.SplitN(tag[1:], "/", 2)
	if len(parts) != 2 {
		return 0, "", false
	}
	r, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, "", false
	}
	return r, parts[1], true
}
