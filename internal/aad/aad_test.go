package aad_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aad"
	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

func runAAD(t *testing.T, n, f, rounds int, inputs []float64,
	faulty map[int]func(inner sim.Handler) sim.Handler, seed int64) map[int]float64 {
	t.Helper()
	g := graph.Clique(n)
	honest := graph.EmptySet
	handlers := make([]sim.Handler, n)
	for i := 0; i < n; i++ {
		m, err := aad.NewMachine(n, f, i, rounds, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if wrap, bad := faulty[i]; bad {
			handlers[i] = wrap(m)
		} else {
			handlers[i] = m
			honest = honest.Add(i)
		}
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(honest)
	if !all {
		t.Fatalf("honest nodes did not decide: %v (steps=%d)", outs, r.Steps())
	}
	t.Logf("n=%d f=%d outputs=%v steps=%d", n, f, outs, r.Steps())
	return outs
}

func spread(outs map[int]float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range outs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	return max - min
}

func TestAADHonestClique(t *testing.T) {
	outs := runAAD(t, 4, 1, 6, []float64{0, 1, 2, 3}, nil, 4)
	if s := spread(outs); s >= 3.0/32 {
		t.Errorf("spread = %g after 6 rounds", s)
	}
	for _, x := range outs {
		if x < 0 || x > 3 {
			t.Errorf("validity violated: %g", x)
		}
	}
}

func TestAADWithSilentFault(t *testing.T) {
	outs := runAAD(t, 4, 1, 5, []float64{0, 1, 2, 3},
		map[int]func(sim.Handler) sim.Handler{
			2: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 2} },
		}, 8)
	// Honest inputs 0, 1, 3.
	if s := spread(outs); s >= 3.0/16 {
		t.Errorf("spread = %g", s)
	}
	for _, x := range outs {
		if x < 0 || x > 3 {
			t.Errorf("validity violated: %g", x)
		}
	}
}

func TestAADWithExtremeInjector(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		outs := runAAD(t, 7, 2, 5, []float64{1, 1.5, 2, 1, 1.5, 2, 1},
			map[int]func(sim.Handler) sim.Handler{
				3: func(inner sim.Handler) sim.Handler {
					return &adversary.Mutant{Inner: inner, Rng: rand.New(rand.NewSource(seed))}
				},
				5: func(sim.Handler) sim.Handler { return &adversary.Silent{NodeID: 5} },
			}, seed)
		// Honest inputs within [1, 2].
		for _, x := range outs {
			if x < 1 || x > 2 {
				t.Errorf("seed %d: validity violated: %g", seed, x)
			}
		}
		if s := spread(outs); s >= 0.2 {
			t.Errorf("seed %d: spread = %g", seed, s)
		}
	}
}

func TestAADHalving(t *testing.T) {
	// Per-round contraction should be at least a factor 2 (the AAD
	// guarantee); check the recorded histories.
	g := graph.Clique(4)
	inputs := []float64{0, 4, 8, 2}
	handlers := make([]sim.Handler, 4)
	machines := make([]*aad.Machine, 4)
	for i := 0; i < 4; i++ {
		m, err := aad.NewMachine(4, 1, i, 6, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
		handlers[i] = m
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(2)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	prev := 8.0
	for round := 0; round < 6; round++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, m := range machines {
			h := m.History()
			if len(h) <= round {
				t.Fatalf("missing history round %d", round)
			}
			min, max = math.Min(min, h[round]), math.Max(max, h[round])
		}
		if max-min > prev/2+1e-12 {
			t.Errorf("round %d: spread %g did not halve from %g", round, max-min, prev)
		}
		prev = max - min
	}
}

func TestAADRejectsBadParams(t *testing.T) {
	if _, err := aad.NewMachine(3, 1, 0, 5, 0); err == nil {
		t.Error("n=3f accepted")
	}
}

func TestAADZeroRounds(t *testing.T) {
	m, err := aad.NewMachine(4, 1, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Clique(4)
	col := sim.NewCollector(0, g)
	m.Start(col)
	if out, done := m.Output(); !done || out != 7 {
		t.Errorf("zero rounds: out=%g done=%v", out, done)
	}
}
