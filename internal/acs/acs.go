// Package acs implements BKR-style agreement on a common subset
// (Ben-Or–Kelmer–Rabin, the HoneyBadgerBFT building block) for complete
// networks with n > 3f: every node reliably broadcasts its input value, and
// n asynchronous binary agreement instances — one per origin — agree on
// which broadcasts made it into the common subset. RBC-delivering origin
// j's value proposes 1 to ABA_j; once n−f instances have decided 1, the
// node proposes 0 to every instance it hasn't voted in; when all n
// instances have decided, the subset is {j : ABA_j = 1} and RBC totality
// guarantees the missing values arrive. Agreement on every ABA plus
// agreement on every RBC slot makes the decision vector identical at all
// honest nodes, and at least n−f instances decide 1 because the f
// remaining proposals cannot veto the n−f that honest nodes backed.
//
// The two sub-protocols multiplex over one link without colliding: RBC
// traffic is namespaced by its (origin, tag) slot — the value broadcast
// uses the single tag "acs/v" with the proposer as origin — and ABA
// traffic carries its instance id in every message.
package acs

import (
	"sort"

	"repro/internal/aba"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ValueTag is the RBC slot tag of the input-value broadcasts; the origin
// id distinguishes the n slots.
const ValueTag = "acs/v"

// Machine is the per-node ACS handler: one reliable-broadcast engine plus
// n ABA cores behind a shared event loop. It implements sim.Handler with a
// scalar output (the mean of the agreed subset's values, computed in
// origin order so every honest node reports the identical float) and
// exposes the full decision vector through Vector.
type Machine struct {
	n, f, id int
	input    float64

	bcast    *rbc.Broadcaster
	cores    []*aba.Core
	values   []*float64 // RBC-delivered input per origin
	proposed []bool     // whether our vote for ABA_j is bound
	decision []int      // ABA_j's decision, valid when decidedAt[j]
	decided  []bool
	nDecided int
	ones     int

	done bool
	mean float64
}

// New builds the ACS handler for node id with the given input; n > 3f is
// required by the RBC substrate and enforced there.
func New(n, f, id int, seed int64, input float64) (*Machine, error) {
	b, err := rbc.New(n, f, id)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		n: n, f: f, id: id, input: input,
		bcast:    b,
		cores:    make([]*aba.Core, n),
		values:   make([]*float64, n),
		proposed: make([]bool, n),
		decision: make([]int, n),
		decided:  make([]bool, n),
	}
	b.OnDeliver(m.onRBCDeliver)
	for j := 0; j < n; j++ {
		c := aba.NewCore(n, f, id, j, seed)
		c.OnDecide = m.onABADecide
		m.cores[j] = c
	}
	return m, nil
}

// ID implements sim.Handler.
func (m *Machine) ID() int { return m.id }

// Start implements sim.Handler: reliably broadcast our own input.
func (m *Machine) Start(out *sim.Outbox) {
	m.bcast.Broadcast(ValueTag, rbc.Num(m.input), out)
}

// Deliver implements sim.Handler, routing by payload kind: RBC slots carry
// their own namespace, ABA messages their instance id.
func (m *Machine) Deliver(msg transport.Message, out *sim.Outbox) {
	switch p := msg.Payload.(type) {
	case rbc.Msg:
		m.bcast.Handle(msg, out)
	case aba.Msg:
		if p.Inst < 0 || p.Inst >= m.n {
			return
		}
		m.cores[p.Inst].Handle(msg.From, p, out)
	}
}

func (m *Machine) onRBCDeliver(d rbc.Delivery, out *sim.Outbox) {
	num, ok := d.Content.(rbc.Num)
	if !ok || d.Tag != ValueTag || d.Origin < 0 || d.Origin >= m.n {
		return
	}
	if m.values[d.Origin] != nil {
		return
	}
	v := float64(num)
	m.values[d.Origin] = &v
	// Seeing origin j's broadcast is our vote that it belongs in the
	// subset — unless the 0-proposal phase already bound our vote.
	if !m.proposed[d.Origin] {
		m.proposed[d.Origin] = true
		m.cores[d.Origin].Propose(1, out)
	}
	// A 1-deciding instance may have been waiting for exactly this value.
	m.tryFinish()
}

func (m *Machine) onABADecide(inst, v int, out *sim.Outbox) {
	if m.decided[inst] {
		return
	}
	m.decided[inst] = true
	m.decision[inst] = v
	m.nDecided++
	if v == 1 {
		m.ones++
		if m.ones >= m.n-m.f {
			// Enough of the subset is settled; stop waiting for the rest
			// and vote the undelivered broadcasts out (in index order, so
			// the message schedule is deterministic).
			for j := 0; j < m.n; j++ {
				if !m.proposed[j] {
					m.proposed[j] = true
					m.cores[j].Propose(0, out)
				}
			}
		}
	}
	m.tryFinish()
}

// tryFinish decides once every ABA instance has decided and every
// subset member's value has RBC-delivered (totality guarantees it will).
func (m *Machine) tryFinish() {
	if m.done || m.nDecided < m.n {
		return
	}
	sum, size := 0.0, 0
	for j := 0; j < m.n; j++ {
		if m.decision[j] != 1 {
			continue
		}
		if m.values[j] == nil {
			return
		}
		sum += *m.values[j]
		size++
	}
	// Summed in ascending origin order above: every honest node adds the
	// identical floats in the identical order, so the means are bitwise
	// equal, not just mathematically equal.
	m.done = true
	m.mean = sum / float64(size)
}

// Output implements sim.Handler: the mean of the agreed subset's values.
func (m *Machine) Output() (float64, bool) { return m.mean, m.done }

// Vector returns the decision vector — origin to agreed value for every
// subset member — or nil before the subset is decided. The repro layer
// surfaces it as Result.Vectors.
func (m *Machine) Vector() map[int]float64 {
	if !m.done {
		return nil
	}
	vec := make(map[int]float64)
	for j := 0; j < m.n; j++ {
		if m.decision[j] == 1 && m.values[j] != nil {
			vec[j] = *m.values[j]
		}
	}
	return vec
}

// Subset returns the agreed origins in ascending order, or nil before
// decision.
func (m *Machine) Subset() []int {
	if !m.done {
		return nil
	}
	var s []int
	for j := 0; j < m.n; j++ {
		if m.decision[j] == 1 {
			s = append(s, j)
		}
	}
	sort.Ints(s)
	return s
}
