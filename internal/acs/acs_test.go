package acs_test

import (
	"reflect"
	"testing"

	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/graph"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/transport"
)

func runACS(t *testing.T, handlers []sim.Handler, g *graph.Graph, policy string, seed int64) *sim.Runner {
	t.Helper()
	params := map[string]float64{}
	if policy == "bounded" {
		params["bound"] = 4
	}
	pol, err := transport.NewPolicy(policy, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.New(sim.Config{Graph: g, Policy: pol}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func newMachine(t *testing.T, n, f, id int, seed int64, input float64) *acs.Machine {
	t.Helper()
	m, err := acs.New(n, f, id, seed, input)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestACSAllHonestFullSubset: with no faults the protocol commonly decides
// the full vector; whatever it decides must be identical everywhere, of
// size >= n−f, and every agreed value must be a real input.
func TestACSAllHonestFullSubset(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	inputs := []float64{10, 20, 30, 40}
	for _, policy := range []string{"random", "fifo", "lifo", "bounded"} {
		for seed := int64(0); seed < 10; seed++ {
			machines := make([]*acs.Machine, n)
			handlers := make([]sim.Handler, n)
			for i := 0; i < n; i++ {
				machines[i] = newMachine(t, n, f, i, seed, inputs[i])
				handlers[i] = machines[i]
			}
			r := runACS(t, handlers, g, policy, seed)
			if _, decided := r.Outputs(graph.FullSet(n)); !decided {
				t.Fatalf("%s seed %d: not all nodes decided", policy, seed)
			}
			base := machines[0].Vector()
			if len(base) < n-f {
				t.Fatalf("%s seed %d: subset %v smaller than n-f=%d", policy, seed, base, n-f)
			}
			for j, v := range base {
				if v != inputs[j] {
					t.Fatalf("%s seed %d: slot %d carries %v, input was %v", policy, seed, j, v, inputs[j])
				}
			}
			for i := 1; i < n; i++ {
				if !reflect.DeepEqual(machines[i].Vector(), base) {
					t.Fatalf("%s seed %d: vectors differ: %v vs %v", policy, seed, machines[i].Vector(), base)
				}
				if !reflect.DeepEqual(machines[i].Subset(), machines[0].Subset()) {
					t.Fatalf("%s seed %d: subsets differ", policy, seed)
				}
			}
		}
	}
}

type silentHandler struct{ id int }

func (s *silentHandler) ID() int                                { return s.id }
func (s *silentHandler) Start(*sim.Outbox)                      {}
func (s *silentHandler) Deliver(transport.Message, *sim.Outbox) {}
func (s *silentHandler) Output() (float64, bool)                { return 0, false }

// TestACSSilentNodesExcluded: f silent nodes cannot stall the subset —
// honest nodes decide a common subset of size >= n−f that excludes the
// silent origins (their broadcasts never started).
func TestACSSilentNodesExcluded(t *testing.T) {
	const n, f = 7, 2
	g := graph.Clique(n)
	for seed := int64(0); seed < 8; seed++ {
		machines := make([]*acs.Machine, n)
		handlers := make([]sim.Handler, n)
		honest := graph.EmptySet
		for i := 0; i < n-f; i++ {
			machines[i] = newMachine(t, n, f, i, seed, float64(i))
			handlers[i] = machines[i]
			honest = honest.Add(i)
		}
		for i := n - f; i < n; i++ {
			handlers[i] = &silentHandler{id: i}
		}
		r := runACS(t, handlers, g, "random", seed)
		if _, decided := r.Outputs(honest); !decided {
			t.Fatalf("seed %d: honest nodes did not decide", seed)
		}
		base := machines[0].Vector()
		if len(base) < n-f {
			t.Fatalf("seed %d: subset %v smaller than n-f=%d", seed, base, n-f)
		}
		for j := n - f; j < n; j++ {
			if _, in := base[j]; in {
				t.Fatalf("seed %d: silent node %d made the subset %v", seed, j, base)
			}
		}
		for i := 1; i < n-f; i++ {
			if !reflect.DeepEqual(machines[i].Vector(), base) {
				t.Fatalf("seed %d: vectors differ", seed)
			}
		}
	}
}

// TestACSScalarOutputIsSubsetMean: the sim.Handler scalar face reports the
// mean of the agreed subset, bitwise identical across nodes.
func TestACSScalarOutputIsSubsetMean(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	machines := make([]*acs.Machine, n)
	handlers := make([]sim.Handler, n)
	for i := 0; i < n; i++ {
		machines[i] = newMachine(t, n, f, i, 5, float64(i*i))
		handlers[i] = machines[i]
	}
	r := runACS(t, handlers, g, "random", 5)
	outputs, decided := r.Outputs(graph.FullSet(n))
	if !decided {
		t.Fatal("not all nodes decided")
	}
	vec := machines[0].Vector()
	sum := 0.0
	for _, j := range machines[0].Subset() {
		sum += vec[j]
	}
	want := sum / float64(len(vec))
	for i, got := range outputs {
		if got != want {
			t.Fatalf("node %d output %v, want subset mean %v", i, got, want)
		}
	}
}

// TestACSVectorNilBeforeDecision pins the vectorProvider contract.
func TestACSVectorNilBeforeDecision(t *testing.T) {
	m := newMachine(t, 4, 1, 0, 1, 2.5)
	if m.Vector() != nil || m.Subset() != nil {
		t.Fatal("vector/subset non-nil before decision")
	}
	if _, decided := m.Output(); decided {
		t.Fatal("decided before any traffic")
	}
}

// TestACSIgnoresForeignInstances: ABA traffic for instances outside [0,n)
// and RBC slots with foreign tags must be ignored, not crash.
func TestACSIgnoresForeignInstances(t *testing.T) {
	g := graph.Clique(4)
	m := newMachine(t, 4, 1, 0, 1, 2.5)
	col := sim.NewCollector(0, g)
	// RBC itself is tag-agnostic (it will echo the foreign slot), but the
	// ACS layer must never credit it as a value delivery.
	m.Deliver(transport.Message{From: 1, To: 0, Payload: rbc.Msg{
		Phase: rbc.PhaseInit, Origin: 1, Tag: "other", Content: rbc.Num(9),
	}}, col)
	baseline := len(col.Messages())
	// ABA traffic for instances outside [0,n) must be dropped outright.
	m.Deliver(transport.Message{From: 1, To: 0, Payload: aba.Msg{
		Inst: 99, Round: 1, Phase: aba.PhaseBval, Value: 1,
	}}, col)
	m.Deliver(transport.Message{From: 1, To: 0, Payload: aba.Msg{
		Inst: -1, Round: 1, Phase: aba.PhaseBval, Value: 1,
	}}, col)
	if m.Vector() != nil || len(col.Messages()) != baseline {
		t.Fatal("foreign traffic advanced the machine")
	}
}
