package transport

import (
	"reflect"
	"strings"
	"testing"
)

func TestPolicyNamesListsBuiltins(t *testing.T) {
	got := PolicyNames()
	want := []string{"bounded", "fifo", "lifo", "random"}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("PolicyNames() = %v, missing %q", got, w)
		}
	}
	if !sortedStrings(got) {
		t.Errorf("PolicyNames() not sorted: %v", got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestNewPolicyBuiltins(t *testing.T) {
	cases := []struct {
		name   string
		params map[string]float64
		want   reflect.Type
	}{
		{"", nil, reflect.TypeOf(&RandomPolicy{})}, // empty = default random
		{"random", nil, reflect.TypeOf(&RandomPolicy{})},
		{"fifo", nil, reflect.TypeOf(FIFOPolicy{})},
		{"lifo", nil, reflect.TypeOf(LIFOPolicy{})},
		{"bounded", map[string]float64{"bound": 4}, reflect.TypeOf(&BoundedDelayPolicy{})},
	}
	for _, tc := range cases {
		p, err := NewPolicy(tc.name, tc.params, 7)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", tc.name, err)
		}
		if reflect.TypeOf(p) != tc.want {
			t.Errorf("NewPolicy(%q) = %T, want %v", tc.name, p, tc.want)
		}
	}
	if p, _ := NewPolicy("bounded", map[string]float64{"bound": 4}, 7); p.(*BoundedDelayPolicy).Bound != 4 {
		t.Error("bound param not applied")
	}
}

func TestNewPolicyRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		params map[string]float64
		errHas string
	}{
		{"warp", nil, "unknown policy"},
		{"random", map[string]float64{"x": 1}, "unknown param"},
		{"fifo", map[string]float64{"bound": 1}, "unknown param"},
		{"bounded", nil, `missing param "bound"`},
		{"bounded", map[string]float64{"bound": -1}, "non-negative integer"},
		{"bounded", map[string]float64{"bound": 1.5}, "non-negative integer"},
		{"bounded", map[string]float64{"bound": 2, "slack": 1}, "unknown param"},
	}
	for _, tc := range cases {
		if _, err := NewPolicy(tc.name, tc.params, 1); err == nil {
			t.Errorf("NewPolicy(%q, %v): expected error", tc.name, tc.params)
		} else if !strings.Contains(err.Error(), tc.errHas) {
			t.Errorf("NewPolicy(%q, %v): error %q missing %q", tc.name, tc.params, err, tc.errHas)
		}
		if err := ValidatePolicy(tc.name, tc.params); err == nil {
			t.Errorf("ValidatePolicy(%q, %v): expected error", tc.name, tc.params)
		}
	}
}

// TestNewPolicyReturnsFreshInstances guards against shared stateful policies:
// two instances from the same spec must not share rng streams or counters.
func TestNewPolicyReturnsFreshInstances(t *testing.T) {
	a, err := NewPolicy("bounded", map[string]float64{"bound": 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPolicy("bounded", map[string]float64{"bound": 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("NewPolicy returned a shared instance")
	}
}

func TestRegisterPolicyPanics(t *testing.T) {
	mustPanic := func(name string, b PolicyBuilder) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("RegisterPolicy(%q) did not panic", name)
			}
		}()
		RegisterPolicy(name, b)
	}
	mustPanic("", func(map[string]float64, int64) (Policy, error) { return FIFOPolicy{}, nil })
	mustPanic("fifo", func(map[string]float64, int64) (Policy, error) { return FIFOPolicy{}, nil })
}
