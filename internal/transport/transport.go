// Package transport models the paper's asynchronous message-passing network:
// reliable directed links with arbitrary, unknown, finite delays. Messages
// in flight live in a pool; a pluggable delivery policy picks which pending
// message is delivered next, which realizes adversarial asynchrony while
// keeping executions deterministic under a fixed seed. Hold rules keep
// selected edges' messages undeliverable until a predicate fires — the
// bounded-but-arbitrary delays used by the Theorem 18 indistinguishability
// construction.
//
// # Determinism contract
//
// The pool's pending order is a pure function of the Add/Take/ReleaseHeld
// call sequence: Add appends, Take swap-removes (the last pending message
// fills the vacated slot), and ReleaseHeld appends the held messages in
// their original send order. No map iteration, goroutine interleaving or
// other nondeterminism ever influences the order, so an index-based policy
// such as RandomPolicy replays the exact same schedule for the same seed —
// on any execution engine. Changing any of these three behaviors is a
// schedule-breaking change and must be flagged as such.
package transport

import (
	"fmt"
	"math/rand"
)

// Payload is the protocol-level content of a message. Kind is used for
// message accounting and tracing.
type Payload interface {
	Kind() string
}

// Message is a message in flight on a directed edge.
type Message struct {
	From, To int
	Payload  Payload
	Seq      uint64 // global send order, assigned by the pool
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("#%d %d->%d %s", m.Seq, m.From, m.To, m.Payload.Kind())
}

// PendingView is a read-only window onto a pool's deliverable messages.
// Policies receive a view instead of the backing slice, so they cannot
// perturb the pool's determinism-bearing order (see the package contract).
// The view also exposes the pool's Seq-ordered index, letting order-based
// policies find the oldest/newest pending message in O(log n) amortized
// instead of scanning.
type PendingView struct {
	p *Pool
}

// Len returns the number of deliverable messages.
func (v PendingView) Len() int { return len(v.p.pending) }

// At returns the pending message at index i (0 <= i < Len).
func (v PendingView) At(i int) Message { return v.p.arena[v.p.pending[i]].msg }

// OldestIndex returns the index of the pending message with the smallest
// Seq (the oldest send). Panics on an empty view.
func (v PendingView) OldestIndex() int { return v.p.oldestIndex() }

// NewestIndex returns the index of the pending message with the largest
// Seq (the most recent send). Panics on an empty view.
func (v PendingView) NewestIndex() int { return v.p.newestIndex() }

// Policy selects which pending message is delivered next.
type Policy interface {
	// Pick returns an index into the view (view.Len() > 0).
	Pick(pending PendingView) int
}

// InjectionImmune marks policies whose next k picks, for any k not
// exceeding the current pending count, are unaffected by messages injected
// after the picks are drawn. FIFO has this property: every later injection
// receives a strictly larger Seq than everything currently pending, so the
// k smallest Seqs — FIFO's next k picks — are already in the pool.
// Count-sensitive policies (random: Intn over the pending length) and
// newest-first policies (lifo, bounded's random arm) do not qualify: an
// injection between two picks changes which message they choose. The
// parallel execution engine uses this property to draw a whole batch of
// picks up front and replay the inline schedule exactly; see
// IsInjectionImmune.
type InjectionImmune interface {
	// injectionImmune is a marker; it carries no behavior.
	injectionImmune()
}

// IsInjectionImmune reports whether the policy guarantees the
// InjectionImmune prefix property.
func IsInjectionImmune(p Policy) bool {
	_, ok := p.(InjectionImmune)
	return ok
}

// RandomPolicy delivers a uniformly random pending message; with a fixed
// seed the whole execution is deterministic (the pool's pending order is
// itself deterministic — see the package contract). This is the default
// model of asynchrony for the experiments.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a RandomPolicy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *RandomPolicy) Pick(pending PendingView) int {
	return p.rng.Intn(pending.Len())
}

// FIFOPolicy delivers messages in global send order (the most synchronous
// schedule); useful as a baseline and for debugging.
type FIFOPolicy struct{}

// Pick implements Policy.
func (FIFOPolicy) Pick(pending PendingView) int {
	return pending.OldestIndex()
}

// injectionImmune marks FIFO as batch-drawable: later injections always
// carry larger Seqs, so the next k oldest-first picks are fixed in advance.
func (FIFOPolicy) injectionImmune() {}

// LIFOPolicy delivers the most recently sent message first — a pathological
// but legal asynchronous schedule that stresses the event-driven conditions.
type LIFOPolicy struct{}

// Pick implements Policy.
func (LIFOPolicy) Pick(pending PendingView) int {
	return pending.NewestIndex()
}

// BoundedDelayPolicy models partial synchrony: deliveries are random, but no
// message is overtaken by more than Bound younger deliveries — once a
// message has waited that long it is delivered first. Asynchronous
// algorithms must of course keep working under this (it is a subset of the
// asynchronous schedules); it also gives experiments a knob between fully
// random (Bound = ∞) and FIFO (Bound = 0).
type BoundedDelayPolicy struct {
	Bound     uint64
	rng       *rand.Rand
	delivered uint64
}

// NewBoundedDelayPolicy returns a seeded policy with the given overtaking
// bound.
func NewBoundedDelayPolicy(bound uint64, seed int64) *BoundedDelayPolicy {
	return &BoundedDelayPolicy{Bound: bound, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *BoundedDelayPolicy) Pick(pending PendingView) int {
	oldest := pending.OldestIndex()
	p.delivered++
	if p.delivered > pending.At(oldest).Seq+p.Bound {
		return oldest
	}
	return p.rng.Intn(pending.Len())
}

// HoldRule withholds matching messages from delivery until Release is
// called. Held messages are still "in flight" (delays are finite but
// unbounded); the runner re-injects them on release.
type HoldRule struct {
	// Match reports whether the message is subject to the hold.
	Match func(Message) bool
	// released flips once; afterwards Match is ignored.
	released bool
}

// NewHoldRule builds a hold rule from a match function.
func NewHoldRule(match func(Message) bool) *HoldRule {
	return &HoldRule{Match: match}
}

// HoldEdges builds a hold rule matching all messages on the given directed
// edges.
func HoldEdges(edges map[[2]int]bool) *HoldRule {
	return NewHoldRule(func(m Message) bool {
		return edges[[2]int{m.From, m.To}]
	})
}

// Release lifts the hold.
func (h *HoldRule) Release() { h.released = true }

// Released reports whether the hold has been lifted.
func (h *HoldRule) Released() bool { return h.released }

// Holds reports whether the message is currently withheld.
func (h *HoldRule) Holds(m Message) bool {
	return !h.released && h.Match(m)
}

// Stats accumulates message accounting for an execution.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // sends over non-edges (faulty behavior), discarded
	// kinds counts sends per payload kind. A short linear array instead of
	// a map: protocols use a handful of kind strings (all constants, so the
	// == fast path is a pointer compare), and the per-send map assignment
	// was half the pool's hot-path profile.
	kinds []kindCount
}

type kindCount struct {
	name string
	n    int
}

// NewStats returns empty statistics.
func NewStats() *Stats {
	return &Stats{}
}

// ByKind returns the per-kind send counts as a map (built on demand; the
// hot path maintains a flat array).
func (s *Stats) ByKind() map[string]int {
	out := make(map[string]int, len(s.kinds))
	for _, kc := range s.kinds {
		out[kc.name] = kc.n
	}
	return out
}

func (s *Stats) recordSend(m Message) {
	s.Sent++
	k := m.Payload.Kind()
	for i := range s.kinds {
		if s.kinds[i].name == k {
			s.kinds[i].n++
			return
		}
	}
	s.kinds = append(s.kinds, kindCount{name: k, n: 1})
}

// RecordDrop counts a message that was discarded before entering the pool.
func (s *Stats) RecordDrop() { s.Dropped++ }

// AddDropped merges n drops recorded elsewhere (per-worker staging stats in
// the parallel engine). Dropped is a pure counter, so merge order does not
// affect the result.
func (s *Stats) AddDropped(n int) { s.Dropped += n }

func (s *Stats) recordDelivery() { s.Delivered++ }

// slot is one arena cell: the message plus the bookkeeping that lets every
// structure over the pool update in O(1)–O(log n) without auxiliary maps.
type slot struct {
	msg     Message
	pendPos int32 // index in pending (-1 when held)
	minPos  int32 // position in the oldest-heap (when indexed)
	maxPos  int32 // position in the newest-heap (when indexed)
}

// seqHeap is a binary heap of arena indices ordered by message Seq; min
// selects between oldest-first and newest-first. Heap positions are stored
// back into the arena slots, so removal is a true O(log n) delete — no lazy
// tombstones, no Seq-to-position map, no garbage accumulating across a
// run.
type seqHeap struct {
	min   bool
	items []int32
}

func (h *seqHeap) before(arena []slot, a, b int32) bool {
	if h.min {
		return arena[a].msg.Seq < arena[b].msg.Seq
	}
	return arena[a].msg.Seq > arena[b].msg.Seq
}

func (h *seqHeap) setPos(arena []slot, ai int32, pos int32) {
	if h.min {
		arena[ai].minPos = pos
	} else {
		arena[ai].maxPos = pos
	}
}

func (h *seqHeap) push(arena []slot, ai int32) {
	h.items = append(h.items, ai)
	h.siftUp(arena, len(h.items)-1)
}

func (h *seqHeap) removeAt(arena []slot, pos int32) {
	last := len(h.items) - 1
	if int(pos) != last {
		h.items[pos] = h.items[last]
		h.items = h.items[:last]
		h.setPos(arena, h.items[pos], pos)
		if !h.siftDown(arena, int(pos)) {
			h.siftUp(arena, int(pos))
		}
	} else {
		h.items = h.items[:last]
	}
}

func (h *seqHeap) siftUp(arena []slot, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(arena, h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		h.setPos(arena, h.items[i], int32(i))
		i = parent
	}
	h.setPos(arena, h.items[i], int32(i))
}

// siftDown reports whether anything moved, so removeAt can fall back to
// sifting up (the swapped-in element may be smaller than the removed one).
func (h *seqHeap) siftDown(arena []slot, i int) bool {
	moved := false
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < len(h.items) && h.before(arena, h.items[l], h.items[next]) {
			next = l
		}
		if r < len(h.items) && h.before(arena, h.items[r], h.items[next]) {
			next = r
		}
		if next == i {
			break
		}
		moved = true
		h.items[i], h.items[next] = h.items[next], h.items[i]
		h.setPos(arena, h.items[i], int32(i))
		i = next
	}
	h.setPos(arena, h.items[i], int32(i))
	return moved
}

// Pool is the multiset of in-flight messages plus held messages. Messages
// live in a reusable arena backed by a freelist — a delivered message's
// slot is recycled by the next send, so a run's storage stops growing once
// it reaches its in-flight high-water mark. The pending order (arena
// indices) follows the package determinism contract exactly: Add appends,
// Take swap-removes, ReleaseHeld appends in send order. A Seq index (two
// position-tracked heaps) is built lazily on the first ordered query and
// maintained incrementally afterwards, so index-free policies such as
// RandomPolicy pay nothing for it and ordered policies pick in O(log n)
// with no per-message map traffic.
type Pool struct {
	arena   []slot
	free    []int32 // recycled arena slots
	pending []int32 // deliverable, in determinism-contract order
	held    []int32 // withheld, in send order
	hold    *HoldRule
	nextSeq uint64
	stats   *Stats

	indexed bool    // Seq index built?
	oldest  seqHeap // min-heap over pending slots
	newest  seqHeap // max-heap over pending slots
}

// NewPool returns an empty pool. hold may be nil.
func NewPool(hold *HoldRule, stats *Stats) *Pool {
	return &Pool{hold: hold, stats: stats, oldest: seqHeap{min: true}}
}

// NewPoolSized returns an empty pool with storage preallocated for about
// capacity in-flight messages — one allocation up front instead of a
// doubling series during the run's ramp-up.
func NewPoolSized(hold *HoldRule, stats *Stats, capacity int) *Pool {
	p := NewPool(hold, stats)
	if capacity > 0 {
		p.arena = make([]slot, 0, capacity)
		p.pending = make([]int32, 0, capacity)
		p.free = make([]int32, 0, capacity)
	}
	return p
}

// buildIndex constructs the Seq index from the current pending set; called
// on the first ordered query, after which Add/Take maintain it.
func (p *Pool) buildIndex() {
	p.indexed = true
	p.oldest = seqHeap{min: true, items: make([]int32, 0, cap(p.pending))}
	p.newest = seqHeap{items: make([]int32, 0, cap(p.pending))}
	for _, ai := range p.pending {
		p.oldest.push(p.arena, ai)
		p.newest.push(p.arena, ai)
	}
}

// alloc places m into an arena slot and returns its index.
func (p *Pool) alloc(m Message) int32 {
	if n := len(p.free); n > 0 {
		ai := p.free[n-1]
		p.free = p.free[:n-1]
		p.arena[ai].msg = m
		return ai
	}
	p.arena = append(p.arena, slot{msg: m})
	return int32(len(p.arena) - 1)
}

// Add inserts a newly sent message. It returns the message with its
// assigned Seq plus whether the hold rule withheld it, so callers can
// observe the outcome without re-evaluating the rule's (possibly stateful)
// match function.
func (p *Pool) Add(m Message) (stamped Message, held bool) {
	m.Seq = p.nextSeq
	p.nextSeq++
	p.stats.recordSend(m)
	if p.hold != nil && p.hold.Holds(m) {
		ai := p.alloc(m)
		p.arena[ai].pendPos = -1
		p.held = append(p.held, ai)
		return m, true
	}
	p.append(p.alloc(m))
	return m, false
}

// AddAll injects a batch of messages exactly as successive Add calls would
// — same Seq assignment, same pending order, same statistics — with the
// per-message branching amortized over the batch. Callers that need the
// per-message held outcome (observers) use Add instead.
func (p *Pool) AddAll(msgs []Message) {
	if p.hold != nil && !p.hold.released {
		for _, m := range msgs {
			p.Add(m)
		}
		return
	}
	for _, m := range msgs {
		m.Seq = p.nextSeq
		p.nextSeq++
		p.stats.recordSend(m)
		p.append(p.alloc(m))
	}
}

func (p *Pool) append(ai int32) {
	p.arena[ai].pendPos = int32(len(p.pending))
	p.pending = append(p.pending, ai)
	if p.indexed {
		p.oldest.push(p.arena, ai)
		p.newest.push(p.arena, ai)
	}
}

// View returns a read-only view of the deliverable messages, the form in
// which policies observe the pool.
func (p *Pool) View() PendingView { return PendingView{p: p} }

// Pending returns a copy of the deliverable messages, in pool order. It is
// a diagnostic accessor: the copy protects the pool's determinism-bearing
// internal order from callers. The hot path uses View instead.
func (p *Pool) Pending() []Message {
	out := make([]Message, len(p.pending))
	for i, ai := range p.pending {
		out[i] = p.arena[ai].msg
	}
	return out
}

// HeldCount returns the number of withheld messages.
func (p *Pool) HeldCount() int { return len(p.held) }

// Take removes and returns the pending message at index i: an O(1)
// swap-remove, with the last pending message filling the vacated slot (part
// of the package determinism contract). The vacated arena slot goes back on
// the freelist for the next send.
func (p *Pool) Take(i int) Message {
	ai := p.pending[i]
	last := len(p.pending) - 1
	if i != last {
		moved := p.pending[last]
		p.pending[i] = moved
		p.arena[moved].pendPos = int32(i)
	}
	p.pending = p.pending[:last]
	if p.indexed {
		p.oldest.removeAt(p.arena, p.arena[ai].minPos)
		p.newest.removeAt(p.arena, p.arena[ai].maxPos)
	}
	m := p.arena[ai].msg
	p.arena[ai].msg.Payload = nil // drop the payload reference for GC
	p.free = append(p.free, ai)
	p.stats.recordDelivery()
	return m
}

// DrawBatch removes up to max pending messages by repeatedly applying the
// policy, appending them to dst in pick order, and returns the extended
// slice. The resulting sequence is exactly what max successive
// Pick/Take rounds would have delivered when nothing is injected in
// between; for an InjectionImmune policy that makes it the inline engine's
// next-max delivery schedule verbatim, which is how the parallel engine
// stays byte-identical to inline.
func (p *Pool) DrawBatch(policy Policy, dst []Message, max int) []Message {
	for n := 0; n < max && len(p.pending) > 0; n++ {
		dst = append(dst, p.Take(policy.Pick(p.View())))
	}
	return dst
}

func (p *Pool) oldestIndex() int {
	if !p.indexed {
		p.buildIndex()
	}
	if len(p.oldest.items) == 0 {
		panic("transport: empty pending pool")
	}
	return int(p.arena[p.oldest.items[0]].pendPos)
}

func (p *Pool) newestIndex() int {
	if !p.indexed {
		p.buildIndex()
	}
	if len(p.newest.items) == 0 {
		panic("transport: empty pending pool")
	}
	return int(p.arena[p.newest.items[0]].pendPos)
}

// ReleaseHeld moves all held messages into the pending pool in their
// original send order (called after the hold rule's release condition
// fires).
func (p *Pool) ReleaseHeld() {
	if p.hold != nil {
		p.hold.Release()
	}
	for _, ai := range p.held {
		p.append(ai)
	}
	p.held = p.held[:0]
}

// Empty reports whether no message is deliverable or held.
func (p *Pool) Empty() bool { return len(p.pending) == 0 && len(p.held) == 0 }

// PendingEmpty reports whether no message is deliverable right now.
func (p *Pool) PendingEmpty() bool { return len(p.pending) == 0 }

// PendingLen returns the number of deliverable messages.
func (p *Pool) PendingLen() int { return len(p.pending) }
