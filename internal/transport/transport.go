// Package transport models the paper's asynchronous message-passing network:
// reliable directed links with arbitrary, unknown, finite delays. Messages
// in flight live in a pool; a pluggable delivery policy picks which pending
// message is delivered next, which realizes adversarial asynchrony while
// keeping executions deterministic under a fixed seed. Hold rules keep
// selected edges' messages undeliverable until a predicate fires — the
// bounded-but-arbitrary delays used by the Theorem 18 indistinguishability
// construction.
package transport

import (
	"fmt"
	"math/rand"
)

// Payload is the protocol-level content of a message. Kind is used for
// message accounting and tracing.
type Payload interface {
	Kind() string
}

// Message is a message in flight on a directed edge.
type Message struct {
	From, To int
	Payload  Payload
	Seq      uint64 // global send order, assigned by the pool
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("#%d %d->%d %s", m.Seq, m.From, m.To, m.Payload.Kind())
}

// Policy selects which pending message is delivered next.
type Policy interface {
	// Pick returns an index into pending (len(pending) > 0).
	Pick(pending []Message) int
}

// RandomPolicy delivers a uniformly random pending message; with a fixed
// seed the whole execution is deterministic. This is the default model of
// asynchrony for the experiments.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a RandomPolicy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *RandomPolicy) Pick(pending []Message) int {
	return p.rng.Intn(len(pending))
}

// FIFOPolicy delivers messages in global send order (the most synchronous
// schedule); useful as a baseline and for debugging.
type FIFOPolicy struct{}

// Pick implements Policy.
func (FIFOPolicy) Pick(pending []Message) int {
	best := 0
	for i := 1; i < len(pending); i++ {
		if pending[i].Seq < pending[best].Seq {
			best = i
		}
	}
	return best
}

// LIFOPolicy delivers the most recently sent message first — a pathological
// but legal asynchronous schedule that stresses the event-driven conditions.
type LIFOPolicy struct{}

// Pick implements Policy.
func (LIFOPolicy) Pick(pending []Message) int {
	best := 0
	for i := 1; i < len(pending); i++ {
		if pending[i].Seq > pending[best].Seq {
			best = i
		}
	}
	return best
}

// BoundedDelayPolicy models partial synchrony: deliveries are random, but no
// message is overtaken by more than Bound younger deliveries — once a
// message has waited that long it is delivered first. Asynchronous
// algorithms must of course keep working under this (it is a subset of the
// asynchronous schedules); it also gives experiments a knob between fully
// random (Bound = ∞) and FIFO (Bound = 0).
type BoundedDelayPolicy struct {
	Bound     uint64
	rng       *rand.Rand
	delivered uint64
}

// NewBoundedDelayPolicy returns a seeded policy with the given overtaking
// bound.
func NewBoundedDelayPolicy(bound uint64, seed int64) *BoundedDelayPolicy {
	return &BoundedDelayPolicy{Bound: bound, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *BoundedDelayPolicy) Pick(pending []Message) int {
	oldest := 0
	for i := 1; i < len(pending); i++ {
		if pending[i].Seq < pending[oldest].Seq {
			oldest = i
		}
	}
	p.delivered++
	if p.delivered > pending[oldest].Seq+p.Bound {
		return oldest
	}
	return p.rng.Intn(len(pending))
}

// HoldRule withholds matching messages from delivery until Release is
// called. Held messages are still "in flight" (delays are finite but
// unbounded); the runner re-injects them on release.
type HoldRule struct {
	// Match reports whether the message is subject to the hold.
	Match func(Message) bool
	// released flips once; afterwards Match is ignored.
	released bool
}

// NewHoldRule builds a hold rule from a match function.
func NewHoldRule(match func(Message) bool) *HoldRule {
	return &HoldRule{Match: match}
}

// HoldEdges builds a hold rule matching all messages on the given directed
// edges.
func HoldEdges(edges map[[2]int]bool) *HoldRule {
	return NewHoldRule(func(m Message) bool {
		return edges[[2]int{m.From, m.To}]
	})
}

// Release lifts the hold.
func (h *HoldRule) Release() { h.released = true }

// Released reports whether the hold has been lifted.
func (h *HoldRule) Released() bool { return h.released }

// Holds reports whether the message is currently withheld.
func (h *HoldRule) Holds(m Message) bool {
	return !h.released && h.Match(m)
}

// Stats accumulates message accounting for an execution.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // sends over non-edges (faulty behavior), discarded
	ByKind    map[string]int
}

// NewStats returns empty statistics.
func NewStats() *Stats {
	return &Stats{ByKind: make(map[string]int)}
}

func (s *Stats) recordSend(m Message) {
	s.Sent++
	s.ByKind[m.Payload.Kind()]++
}

// RecordDrop counts a message that was discarded before entering the pool.
func (s *Stats) RecordDrop() { s.Dropped++ }

func (s *Stats) recordDelivery() { s.Delivered++ }

// Pool is the multiset of in-flight messages plus held messages.
type Pool struct {
	pending []Message
	held    []Message
	hold    *HoldRule
	nextSeq uint64
	stats   *Stats
}

// NewPool returns an empty pool. hold may be nil.
func NewPool(hold *HoldRule, stats *Stats) *Pool {
	return &Pool{hold: hold, stats: stats}
}

// Add inserts a newly sent message.
func (p *Pool) Add(m Message) {
	m.Seq = p.nextSeq
	p.nextSeq++
	p.stats.recordSend(m)
	if p.hold != nil && p.hold.Holds(m) {
		p.held = append(p.held, m)
		return
	}
	p.pending = append(p.pending, m)
}

// Pending returns the deliverable messages (callers must not modify).
func (p *Pool) Pending() []Message { return p.pending }

// HeldCount returns the number of withheld messages.
func (p *Pool) HeldCount() int { return len(p.held) }

// Take removes and returns the pending message at index i.
func (p *Pool) Take(i int) Message {
	m := p.pending[i]
	last := len(p.pending) - 1
	p.pending[i] = p.pending[last]
	p.pending = p.pending[:last]
	p.stats.recordDelivery()
	return m
}

// ReleaseHeld moves all held messages into the pending pool (called after
// the hold rule's release condition fires).
func (p *Pool) ReleaseHeld() {
	if p.hold != nil {
		p.hold.Release()
	}
	p.pending = append(p.pending, p.held...)
	p.held = nil
}

// Empty reports whether no message is deliverable or held.
func (p *Pool) Empty() bool { return len(p.pending) == 0 && len(p.held) == 0 }

// PendingEmpty reports whether no message is deliverable right now.
func (p *Pool) PendingEmpty() bool { return len(p.pending) == 0 }
