// Package transport models the paper's asynchronous message-passing network:
// reliable directed links with arbitrary, unknown, finite delays. Messages
// in flight live in a pool; a pluggable delivery policy picks which pending
// message is delivered next, which realizes adversarial asynchrony while
// keeping executions deterministic under a fixed seed. Hold rules keep
// selected edges' messages undeliverable until a predicate fires — the
// bounded-but-arbitrary delays used by the Theorem 18 indistinguishability
// construction.
//
// # Determinism contract
//
// The pool's pending order is a pure function of the Add/Take/ReleaseHeld
// call sequence: Add appends, Take swap-removes (the last pending message
// fills the vacated slot), and ReleaseHeld appends the held messages in
// their original send order. No map iteration, goroutine interleaving or
// other nondeterminism ever influences the order, so an index-based policy
// such as RandomPolicy replays the exact same schedule for the same seed —
// on any execution engine. Changing any of these three behaviors is a
// schedule-breaking change and must be flagged as such.
package transport

import (
	"fmt"
	"math/rand"
)

// Payload is the protocol-level content of a message. Kind is used for
// message accounting and tracing.
type Payload interface {
	Kind() string
}

// Message is a message in flight on a directed edge.
type Message struct {
	From, To int
	Payload  Payload
	Seq      uint64 // global send order, assigned by the pool
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("#%d %d->%d %s", m.Seq, m.From, m.To, m.Payload.Kind())
}

// PendingView is a read-only window onto a pool's deliverable messages.
// Policies receive a view instead of the backing slice, so they cannot
// perturb the pool's determinism-bearing order (see the package contract).
// The view also exposes the pool's Seq-ordered index, letting order-based
// policies find the oldest/newest pending message in O(log n) amortized
// instead of scanning.
type PendingView struct {
	p *Pool
}

// Len returns the number of deliverable messages.
func (v PendingView) Len() int { return len(v.p.pending) }

// At returns the pending message at index i (0 <= i < Len).
func (v PendingView) At(i int) Message { return v.p.pending[i] }

// OldestIndex returns the index of the pending message with the smallest
// Seq (the oldest send). Panics on an empty view.
func (v PendingView) OldestIndex() int { return v.p.oldestIndex() }

// NewestIndex returns the index of the pending message with the largest
// Seq (the most recent send). Panics on an empty view.
func (v PendingView) NewestIndex() int { return v.p.newestIndex() }

// Policy selects which pending message is delivered next.
type Policy interface {
	// Pick returns an index into the view (view.Len() > 0).
	Pick(pending PendingView) int
}

// RandomPolicy delivers a uniformly random pending message; with a fixed
// seed the whole execution is deterministic (the pool's pending order is
// itself deterministic — see the package contract). This is the default
// model of asynchrony for the experiments.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a RandomPolicy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *RandomPolicy) Pick(pending PendingView) int {
	return p.rng.Intn(pending.Len())
}

// FIFOPolicy delivers messages in global send order (the most synchronous
// schedule); useful as a baseline and for debugging.
type FIFOPolicy struct{}

// Pick implements Policy.
func (FIFOPolicy) Pick(pending PendingView) int {
	return pending.OldestIndex()
}

// LIFOPolicy delivers the most recently sent message first — a pathological
// but legal asynchronous schedule that stresses the event-driven conditions.
type LIFOPolicy struct{}

// Pick implements Policy.
func (LIFOPolicy) Pick(pending PendingView) int {
	return pending.NewestIndex()
}

// BoundedDelayPolicy models partial synchrony: deliveries are random, but no
// message is overtaken by more than Bound younger deliveries — once a
// message has waited that long it is delivered first. Asynchronous
// algorithms must of course keep working under this (it is a subset of the
// asynchronous schedules); it also gives experiments a knob between fully
// random (Bound = ∞) and FIFO (Bound = 0).
type BoundedDelayPolicy struct {
	Bound     uint64
	rng       *rand.Rand
	delivered uint64
}

// NewBoundedDelayPolicy returns a seeded policy with the given overtaking
// bound.
func NewBoundedDelayPolicy(bound uint64, seed int64) *BoundedDelayPolicy {
	return &BoundedDelayPolicy{Bound: bound, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *BoundedDelayPolicy) Pick(pending PendingView) int {
	oldest := pending.OldestIndex()
	p.delivered++
	if p.delivered > pending.At(oldest).Seq+p.Bound {
		return oldest
	}
	return p.rng.Intn(pending.Len())
}

// HoldRule withholds matching messages from delivery until Release is
// called. Held messages are still "in flight" (delays are finite but
// unbounded); the runner re-injects them on release.
type HoldRule struct {
	// Match reports whether the message is subject to the hold.
	Match func(Message) bool
	// released flips once; afterwards Match is ignored.
	released bool
}

// NewHoldRule builds a hold rule from a match function.
func NewHoldRule(match func(Message) bool) *HoldRule {
	return &HoldRule{Match: match}
}

// HoldEdges builds a hold rule matching all messages on the given directed
// edges.
func HoldEdges(edges map[[2]int]bool) *HoldRule {
	return NewHoldRule(func(m Message) bool {
		return edges[[2]int{m.From, m.To}]
	})
}

// Release lifts the hold.
func (h *HoldRule) Release() { h.released = true }

// Released reports whether the hold has been lifted.
func (h *HoldRule) Released() bool { return h.released }

// Holds reports whether the message is currently withheld.
func (h *HoldRule) Holds(m Message) bool {
	return !h.released && h.Match(m)
}

// Stats accumulates message accounting for an execution.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // sends over non-edges (faulty behavior), discarded
	ByKind    map[string]int
}

// NewStats returns empty statistics.
func NewStats() *Stats {
	return &Stats{ByKind: make(map[string]int)}
}

func (s *Stats) recordSend(m Message) {
	s.Sent++
	s.ByKind[m.Payload.Kind()]++
}

// RecordDrop counts a message that was discarded before entering the pool.
func (s *Stats) RecordDrop() { s.Dropped++ }

func (s *Stats) recordDelivery() { s.Delivered++ }

// seqHeap is a binary heap of Seq values; less flips it between a min-heap
// (oldest first) and a max-heap (newest first). Entries are removed lazily:
// a popped Seq that is no longer pending is simply skipped.
type seqHeap struct {
	seqs []uint64
	less func(a, b uint64) bool
}

func (h *seqHeap) push(s uint64) {
	h.seqs = append(h.seqs, s)
	i := len(h.seqs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.seqs[i], h.seqs[parent]) {
			break
		}
		h.seqs[i], h.seqs[parent] = h.seqs[parent], h.seqs[i]
		i = parent
	}
}

// top returns the extremal Seq for which live reports true, lazily
// discarding stale entries.
func (h *seqHeap) top(live func(uint64) bool) uint64 {
	for len(h.seqs) > 0 && !live(h.seqs[0]) {
		last := len(h.seqs) - 1
		h.seqs[0] = h.seqs[last]
		h.seqs = h.seqs[:last]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			next := i
			if l < len(h.seqs) && h.less(h.seqs[l], h.seqs[next]) {
				next = l
			}
			if r < len(h.seqs) && h.less(h.seqs[r], h.seqs[next]) {
				next = r
			}
			if next == i {
				break
			}
			h.seqs[i], h.seqs[next] = h.seqs[next], h.seqs[i]
			i = next
		}
	}
	if len(h.seqs) == 0 {
		panic("transport: empty pending pool")
	}
	return h.seqs[0]
}

// Pool is the multiset of in-flight messages plus held messages. Alongside
// the pending slice it keeps a Seq index (position map plus min/max heaps)
// so order-based policies avoid O(n) scans per pick while Take stays an
// O(1) swap-remove. The index is built lazily on the first ordered query
// and maintained incrementally afterwards, so index-free policies such as
// RandomPolicy pay nothing for it.
type Pool struct {
	pending []Message
	held    []Message
	hold    *HoldRule
	nextSeq uint64
	stats   *Stats

	indexed bool           // Seq index built?
	pos     map[uint64]int // Seq -> index in pending
	oldest  seqHeap        // min-heap over pending Seqs (lazy deletion)
	newest  seqHeap        // max-heap over pending Seqs (lazy deletion)
}

// NewPool returns an empty pool. hold may be nil.
func NewPool(hold *HoldRule, stats *Stats) *Pool {
	return &Pool{hold: hold, stats: stats}
}

// buildIndex constructs the Seq index from the current pending set; called
// on the first ordered query, after which append/Take maintain it.
func (p *Pool) buildIndex() {
	p.indexed = true
	p.pos = make(map[uint64]int, len(p.pending))
	p.oldest = seqHeap{less: func(a, b uint64) bool { return a < b }}
	p.newest = seqHeap{less: func(a, b uint64) bool { return a > b }}
	for i, m := range p.pending {
		p.pos[m.Seq] = i
		p.oldest.push(m.Seq)
		p.newest.push(m.Seq)
	}
}

// Add inserts a newly sent message. It returns the message with its
// assigned Seq plus whether the hold rule withheld it, so callers can
// observe the outcome without re-evaluating the rule's (possibly stateful)
// match function.
func (p *Pool) Add(m Message) (stamped Message, held bool) {
	m.Seq = p.nextSeq
	p.nextSeq++
	p.stats.recordSend(m)
	if p.hold != nil && p.hold.Holds(m) {
		p.held = append(p.held, m)
		return m, true
	}
	p.append(m)
	return m, false
}

func (p *Pool) append(m Message) {
	if p.indexed {
		p.pos[m.Seq] = len(p.pending)
		p.oldest.push(m.Seq)
		p.newest.push(m.Seq)
	}
	p.pending = append(p.pending, m)
}

// View returns a read-only view of the deliverable messages, the form in
// which policies observe the pool.
func (p *Pool) View() PendingView { return PendingView{p: p} }

// Pending returns a copy of the deliverable messages, in pool order. It is
// a diagnostic accessor: the copy protects the pool's determinism-bearing
// internal order from callers. The hot path uses View instead.
func (p *Pool) Pending() []Message {
	out := make([]Message, len(p.pending))
	copy(out, p.pending)
	return out
}

// HeldCount returns the number of withheld messages.
func (p *Pool) HeldCount() int { return len(p.held) }

// Take removes and returns the pending message at index i: an O(1)
// swap-remove, with the last pending message filling the vacated slot (part
// of the package determinism contract).
func (p *Pool) Take(i int) Message {
	m := p.pending[i]
	last := len(p.pending) - 1
	if p.indexed {
		delete(p.pos, m.Seq)
		if i != last {
			p.pos[p.pending[last].Seq] = i
		}
	}
	if i != last {
		p.pending[i] = p.pending[last]
	}
	p.pending = p.pending[:last]
	p.stats.recordDelivery()
	return m
}

func (p *Pool) live(seq uint64) bool {
	_, ok := p.pos[seq]
	return ok
}

func (p *Pool) oldestIndex() int {
	if !p.indexed {
		p.buildIndex()
	}
	return p.pos[p.oldest.top(p.live)]
}

func (p *Pool) newestIndex() int {
	if !p.indexed {
		p.buildIndex()
	}
	return p.pos[p.newest.top(p.live)]
}

// ReleaseHeld moves all held messages into the pending pool in their
// original send order (called after the hold rule's release condition
// fires).
func (p *Pool) ReleaseHeld() {
	if p.hold != nil {
		p.hold.Release()
	}
	for _, m := range p.held {
		p.append(m)
	}
	p.held = nil
}

// Empty reports whether no message is deliverable or held.
func (p *Pool) Empty() bool { return len(p.pending) == 0 && len(p.held) == 0 }

// PendingEmpty reports whether no message is deliverable right now.
func (p *Pool) PendingEmpty() bool { return len(p.pending) == 0 }

// PendingLen returns the number of deliverable messages.
func (p *Pool) PendingLen() int { return len(p.pending) }
