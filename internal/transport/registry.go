package transport

import (
	"fmt"
	"sort"
	"sync"
)

// PolicyBuilder constructs a Policy instance from serializable parameters.
// params carries the policy's named numeric knobs; seed drives any internal
// randomness (ignored by deterministic policies). Builders must reject
// parameter names they do not understand, so a misspelled knob in a scenario
// file fails loudly at decode time rather than silently running the default.
type PolicyBuilder func(params map[string]float64, seed int64) (Policy, error)

var (
	policyMu       sync.RWMutex
	policyBuilders = map[string]PolicyBuilder{}
)

// RegisterPolicy adds a named policy constructor to the registry. Names must
// be unique and non-empty; re-registration panics, since it indicates two
// packages fighting over a name rather than a runtime condition.
func RegisterPolicy(name string, build PolicyBuilder) {
	policyMu.Lock()
	defer policyMu.Unlock()
	if name == "" || build == nil {
		panic("transport: RegisterPolicy with empty name or nil builder")
	}
	if _, dup := policyBuilders[name]; dup {
		panic(fmt.Sprintf("transport: policy %q registered twice", name))
	}
	policyBuilders[name] = build
}

// PolicyNames lists the registered delivery policies, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyBuilders))
	for name := range policyBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewPolicy instantiates a registered policy by name. The empty name selects
// "random", the default model of asynchrony. Each call returns a fresh
// instance: policies may be stateful (rng streams, overtaking counters), so
// instances must never be shared between runs.
func NewPolicy(name string, params map[string]float64, seed int64) (Policy, error) {
	if name == "" {
		name = "random"
	}
	policyMu.RLock()
	build := policyBuilders[name]
	policyMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("transport: unknown policy %q (valid values are: %v)", name, PolicyNames())
	}
	p, err := build(params, seed)
	if err != nil {
		return nil, fmt.Errorf("transport: policy %q: %w", name, err)
	}
	return p, nil
}

// ValidatePolicy reports whether the (name, params) pair would build,
// without keeping the instance — decode-time validation for scenario specs.
func ValidatePolicy(name string, params map[string]float64) error {
	_, err := NewPolicy(name, params, 0)
	return err
}

// rejectUnknown errors on any parameter name outside allowed.
func rejectUnknown(params map[string]float64, allowed ...string) error {
	for name := range params {
		ok := false
		for _, a := range allowed {
			if name == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown param %q (valid params are: %v)", name, allowed)
		}
	}
	return nil
}

func init() {
	RegisterPolicy("random", func(params map[string]float64, seed int64) (Policy, error) {
		if err := rejectUnknown(params); err != nil {
			return nil, err
		}
		return NewRandomPolicy(seed), nil
	})
	RegisterPolicy("fifo", func(params map[string]float64, seed int64) (Policy, error) {
		if err := rejectUnknown(params); err != nil {
			return nil, err
		}
		return FIFOPolicy{}, nil
	})
	RegisterPolicy("lifo", func(params map[string]float64, seed int64) (Policy, error) {
		if err := rejectUnknown(params); err != nil {
			return nil, err
		}
		return LIFOPolicy{}, nil
	})
	RegisterPolicy("bounded", func(params map[string]float64, seed int64) (Policy, error) {
		if err := rejectUnknown(params, "bound"); err != nil {
			return nil, err
		}
		bound, ok := params["bound"]
		if !ok {
			return nil, fmt.Errorf(`missing param "bound" (the overtaking bound)`)
		}
		if bound < 0 || bound != float64(uint64(bound)) {
			return nil, fmt.Errorf("param \"bound\" = %g must be a non-negative integer", bound)
		}
		return NewBoundedDelayPolicy(uint64(bound), seed), nil
	})
}
