package transport_test

import (
	"math/rand"
	"testing"

	"repro/internal/transport"
)

type benchPayload struct{ kind string }

func (p benchPayload) Kind() string { return p.kind }

// benchMessages builds a deterministic message batch over a clique of n
// nodes, cycling through a few payload kinds the way a protocol mix does.
func benchMessages(n, count int) []transport.Message {
	kinds := []string{"VAL", "COMPLETE", "RELAY"}
	msgs := make([]transport.Message, count)
	for i := range msgs {
		msgs[i] = transport.Message{
			From:    i % n,
			To:      (i + 1) % n,
			Payload: benchPayload{kind: kinds[i%len(kinds)]},
		}
	}
	return msgs
}

// BenchmarkPoolRandomChurn is the pool's random-policy hot path on the
// clique8 workload: keep 64 messages in flight, repeatedly delivering one at
// a seeded random index and injecting a replacement — the Add/Take cycle the
// simulator performs once per delivery. allocs/op here is the pool's own
// steady-state allocation cost (the alloc-regression smoke baseline).
func BenchmarkPoolRandomChurn(b *testing.B) {
	const inflight = 64
	msgs := benchMessages(8, inflight)
	pool := transport.NewPool(nil, transport.NewStats())
	for _, m := range msgs {
		pool.Add(m)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pool.Take(rng.Intn(pool.PendingLen()))
		pool.Add(m)
	}
}

// BenchmarkPoolOrderedChurn is the same churn through the Seq-ordered index:
// every delivery asks for the oldest pending message (the FIFO policy's
// pick), exercising the index maintenance that Add/Take perform once the
// index exists.
func BenchmarkPoolOrderedChurn(b *testing.B) {
	const inflight = 64
	msgs := benchMessages(8, inflight)
	pool := transport.NewPool(nil, transport.NewStats())
	for _, m := range msgs {
		pool.Add(m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pool.Take(pool.View().OldestIndex())
		pool.Add(m)
	}
}

// BenchmarkPoolFill measures a full pool lifecycle per op: inject the clique8
// batch from empty (via the batched AddAll entry point and a sized arena —
// how the simulator drives the pool) and drain it in LIFO index order.
func BenchmarkPoolFill(b *testing.B) {
	const batch = 256
	msgs := benchMessages(8, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := transport.NewPoolSized(nil, transport.NewStats(), batch)
		pool.AddAll(msgs)
		for !pool.PendingEmpty() {
			pool.Take(pool.PendingLen() - 1)
		}
	}
}
