package transport

import (
	"testing"
)

type testPayload string

func (p testPayload) Kind() string { return string(p) }

func msg(from, to int, kind string) Message {
	return Message{From: from, To: to, Payload: testPayload(kind)}
}

func TestPoolAddTake(t *testing.T) {
	stats := NewStats()
	p := NewPool(nil, stats)
	p.Add(msg(0, 1, "a"))
	p.Add(msg(1, 2, "b"))
	if len(p.Pending()) != 2 || p.Empty() {
		t.Fatal("pool bookkeeping wrong")
	}
	m := p.Take(0)
	if m.Payload.Kind() != "a" && m.Payload.Kind() != "b" {
		t.Fatal("unexpected payload")
	}
	if stats.Sent != 2 || stats.Delivered != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ByKind["a"] != 1 || stats.ByKind["b"] != 1 {
		t.Errorf("by-kind = %v", stats.ByKind)
	}
}

func TestPoolSeqAssignment(t *testing.T) {
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "a"))
	p.Add(msg(0, 1, "b"))
	if p.Pending()[0].Seq != 0 || p.Pending()[1].Seq != 1 {
		t.Errorf("sequence numbers wrong: %v", p.Pending())
	}
}

func TestFIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy FIFOPolicy
	var got []string
	for !p.PendingEmpty() {
		got = append(got, p.Take(policy.Pick(p.Pending())).Payload.Kind())
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v", got)
		}
	}
}

func TestLIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy LIFOPolicy
	if got := p.Take(policy.Pick(p.Pending())).Payload.Kind(); got != "third" {
		t.Fatalf("LIFO picked %q", got)
	}
}

func TestRandomPolicyDeterminism(t *testing.T) {
	mkPending := func() []Message {
		var out []Message
		for i := 0; i < 10; i++ {
			out = append(out, msg(0, 1, "x"))
		}
		return out
	}
	a, b := NewRandomPolicy(7), NewRandomPolicy(7)
	pending := mkPending()
	for i := 0; i < 20; i++ {
		if a.Pick(pending) != b.Pick(pending) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBoundedDelayPolicy(t *testing.T) {
	p := NewBoundedDelayPolicy(3, 1)
	pool := NewPool(nil, NewStats())
	for i := 0; i < 10; i++ {
		pool.Add(msg(0, 1, "m"))
	}
	// Deliver 10 messages; the oldest pending seq can never lag the
	// delivery count by more than the bound.
	for i := 0; i < 10; i++ {
		pending := pool.Pending()
		idx := p.Pick(pending)
		oldest := pending[0].Seq
		for _, m := range pending {
			if m.Seq < oldest {
				oldest = m.Seq
			}
		}
		if uint64(i+1) > oldest+3 && pending[idx].Seq != oldest {
			t.Fatalf("delivery %d: overtaking bound violated (oldest=%d picked=%d)",
				i, oldest, pending[idx].Seq)
		}
		pool.Take(idx)
	}
}

func TestBoundedDelayZeroIsFIFO(t *testing.T) {
	p := NewBoundedDelayPolicy(0, 1)
	pool := NewPool(nil, NewStats())
	for _, k := range []string{"a", "b", "c"} {
		pool.Add(msg(0, 1, k))
	}
	var got []string
	for !pool.PendingEmpty() {
		got = append(got, pool.Take(p.Pick(pool.Pending())).Payload.Kind())
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestHoldRule(t *testing.T) {
	hold := HoldEdges(map[[2]int]bool{{0, 1}: true})
	stats := NewStats()
	p := NewPool(hold, stats)
	p.Add(msg(0, 1, "held"))
	p.Add(msg(1, 0, "free"))
	if len(p.Pending()) != 1 || p.HeldCount() != 1 {
		t.Fatalf("pending=%d held=%d", len(p.Pending()), p.HeldCount())
	}
	if p.Empty() {
		t.Error("pool with held messages is not empty")
	}
	p.ReleaseHeld()
	if len(p.Pending()) != 2 || p.HeldCount() != 0 {
		t.Error("release did not move messages")
	}
	// After release the rule no longer captures new sends.
	p.Add(msg(0, 1, "late"))
	if p.HeldCount() != 0 {
		t.Error("released hold captured a message")
	}
	if !hold.Released() {
		t.Error("Released() should be true")
	}
}

func TestHoldRuleMatchFunc(t *testing.T) {
	h := NewHoldRule(func(m Message) bool { return m.Payload.Kind() == "x" })
	if !h.Holds(msg(0, 1, "x")) || h.Holds(msg(0, 1, "y")) {
		t.Error("match function ignored")
	}
}

func TestStatsDrop(t *testing.T) {
	s := NewStats()
	s.RecordDrop()
	if s.Dropped != 1 {
		t.Error("drop not counted")
	}
}
