package transport

import (
	"testing"
)

type testPayload string

func (p testPayload) Kind() string { return string(p) }

func msg(from, to int, kind string) Message {
	return Message{From: from, To: to, Payload: testPayload(kind)}
}

func TestPoolAddTake(t *testing.T) {
	stats := NewStats()
	p := NewPool(nil, stats)
	p.Add(msg(0, 1, "a"))
	p.Add(msg(1, 2, "b"))
	if p.PendingLen() != 2 || p.Empty() {
		t.Fatal("pool bookkeeping wrong")
	}
	m := p.Take(0)
	if m.Payload.Kind() != "a" && m.Payload.Kind() != "b" {
		t.Fatal("unexpected payload")
	}
	if stats.Sent != 2 || stats.Delivered != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ByKind["a"] != 1 || stats.ByKind["b"] != 1 {
		t.Errorf("by-kind = %v", stats.ByKind)
	}
}

func TestPoolSeqAssignment(t *testing.T) {
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "a"))
	p.Add(msg(0, 1, "b"))
	if p.Pending()[0].Seq != 0 || p.Pending()[1].Seq != 1 {
		t.Errorf("sequence numbers wrong: %v", p.Pending())
	}
}

// TestPendingReturnsCopy pins the fix for policies (or any caller) mutating
// the pool through the Pending slice: the accessor must hand out a copy.
func TestPendingReturnsCopy(t *testing.T) {
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "a"))
	p.Add(msg(2, 3, "b"))
	leak := p.Pending()
	leak[0] = msg(9, 9, "mutated")
	leak[0].Seq = 999
	if got := p.View().At(0); got.From != 0 || got.To != 1 || got.Seq != 0 {
		t.Fatalf("mutating Pending() result reached the pool: %v", got)
	}
}

// TestSeqIndex exercises the oldest/newest index through adds, swap-removes
// and a hold release, cross-checking against a linear scan.
func TestSeqIndex(t *testing.T) {
	hold := HoldEdges(map[[2]int]bool{{5, 6}: true})
	p := NewPool(hold, NewStats())
	check := func() {
		if p.PendingEmpty() {
			return
		}
		v := p.View()
		minI, maxI := 0, 0
		for i := 1; i < v.Len(); i++ {
			if v.At(i).Seq < v.At(minI).Seq {
				minI = i
			}
			if v.At(i).Seq > v.At(maxI).Seq {
				maxI = i
			}
		}
		if got := v.OldestIndex(); got != minI {
			t.Fatalf("OldestIndex = %d, scan says %d", got, minI)
		}
		if got := v.NewestIndex(); got != maxI {
			t.Fatalf("NewestIndex = %d, scan says %d", got, maxI)
		}
	}
	// Interleave adds (some held, so released seqs are out of order later),
	// index checks and takes from varying positions.
	for i := 0; i < 8; i++ {
		p.Add(msg(5, 6, "held")) // seqs 0,2,4,... withheld
		p.Add(msg(0, 1, "free"))
		check()
	}
	p.Take(p.View().OldestIndex())
	check()
	p.Take(p.View().NewestIndex())
	check()
	p.ReleaseHeld() // re-injects seqs older than everything pending
	check()
	for !p.PendingEmpty() {
		idx := int(p.View().At(0).Seq) % p.PendingLen()
		p.Take(idx)
		check()
	}
}

func TestFIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy FIFOPolicy
	var got []string
	for !p.PendingEmpty() {
		got = append(got, p.Take(policy.Pick(p.View())).Payload.Kind())
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v", got)
		}
	}
}

func TestLIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy LIFOPolicy
	if got := p.Take(policy.Pick(p.View())).Payload.Kind(); got != "third" {
		t.Fatalf("LIFO picked %q", got)
	}
}

func TestRandomPolicyDeterminism(t *testing.T) {
	mkPool := func() *Pool {
		p := NewPool(nil, NewStats())
		for i := 0; i < 10; i++ {
			p.Add(msg(0, 1, "x"))
		}
		return p
	}
	a, b := NewRandomPolicy(7), NewRandomPolicy(7)
	pa, pb := mkPool(), mkPool()
	for i := 0; i < 20; i++ {
		if a.Pick(pa.View()) != b.Pick(pb.View()) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBoundedDelayPolicy(t *testing.T) {
	p := NewBoundedDelayPolicy(3, 1)
	pool := NewPool(nil, NewStats())
	for i := 0; i < 10; i++ {
		pool.Add(msg(0, 1, "m"))
	}
	// Deliver 10 messages; the oldest pending seq can never lag the
	// delivery count by more than the bound.
	for i := 0; i < 10; i++ {
		pending := pool.View()
		idx := p.Pick(pending)
		oldest := pending.At(0).Seq
		for j := 1; j < pending.Len(); j++ {
			if pending.At(j).Seq < oldest {
				oldest = pending.At(j).Seq
			}
		}
		if uint64(i+1) > oldest+3 && pending.At(idx).Seq != oldest {
			t.Fatalf("delivery %d: overtaking bound violated (oldest=%d picked=%d)",
				i, oldest, pending.At(idx).Seq)
		}
		pool.Take(idx)
	}
}

func TestBoundedDelayZeroIsFIFO(t *testing.T) {
	p := NewBoundedDelayPolicy(0, 1)
	pool := NewPool(nil, NewStats())
	for _, k := range []string{"a", "b", "c"} {
		pool.Add(msg(0, 1, k))
	}
	var got []string
	for !pool.PendingEmpty() {
		got = append(got, pool.Take(p.Pick(pool.View())).Payload.Kind())
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestHoldRule(t *testing.T) {
	hold := HoldEdges(map[[2]int]bool{{0, 1}: true})
	stats := NewStats()
	p := NewPool(hold, stats)
	p.Add(msg(0, 1, "held"))
	p.Add(msg(1, 0, "free"))
	if p.PendingLen() != 1 || p.HeldCount() != 1 {
		t.Fatalf("pending=%d held=%d", p.PendingLen(), p.HeldCount())
	}
	if p.Empty() {
		t.Error("pool with held messages is not empty")
	}
	p.ReleaseHeld()
	if p.PendingLen() != 2 || p.HeldCount() != 0 {
		t.Error("release did not move messages")
	}
	// After release the rule no longer captures new sends.
	p.Add(msg(0, 1, "late"))
	if p.HeldCount() != 0 {
		t.Error("released hold captured a message")
	}
	if !hold.Released() {
		t.Error("Released() should be true")
	}
}

func TestHoldRuleMatchFunc(t *testing.T) {
	h := NewHoldRule(func(m Message) bool { return m.Payload.Kind() == "x" })
	if !h.Holds(msg(0, 1, "x")) || h.Holds(msg(0, 1, "y")) {
		t.Error("match function ignored")
	}
}

func TestStatsDrop(t *testing.T) {
	s := NewStats()
	s.RecordDrop()
	if s.Dropped != 1 {
		t.Error("drop not counted")
	}
}
