package transport

import (
	"testing"
)

type testPayload string

func (p testPayload) Kind() string { return string(p) }

func msg(from, to int, kind string) Message {
	return Message{From: from, To: to, Payload: testPayload(kind)}
}

func TestPoolAddTake(t *testing.T) {
	stats := NewStats()
	p := NewPool(nil, stats)
	p.Add(msg(0, 1, "a"))
	p.Add(msg(1, 2, "b"))
	if p.PendingLen() != 2 || p.Empty() {
		t.Fatal("pool bookkeeping wrong")
	}
	m := p.Take(0)
	if m.Payload.Kind() != "a" && m.Payload.Kind() != "b" {
		t.Fatal("unexpected payload")
	}
	if stats.Sent != 2 || stats.Delivered != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ByKind()["a"] != 1 || stats.ByKind()["b"] != 1 {
		t.Errorf("by-kind = %v", stats.ByKind())
	}
}

func TestPoolSeqAssignment(t *testing.T) {
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "a"))
	p.Add(msg(0, 1, "b"))
	if p.Pending()[0].Seq != 0 || p.Pending()[1].Seq != 1 {
		t.Errorf("sequence numbers wrong: %v", p.Pending())
	}
}

// TestPendingReturnsCopy pins the fix for policies (or any caller) mutating
// the pool through the Pending slice: the accessor must hand out a copy.
func TestPendingReturnsCopy(t *testing.T) {
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "a"))
	p.Add(msg(2, 3, "b"))
	leak := p.Pending()
	leak[0] = msg(9, 9, "mutated")
	leak[0].Seq = 999
	if got := p.View().At(0); got.From != 0 || got.To != 1 || got.Seq != 0 {
		t.Fatalf("mutating Pending() result reached the pool: %v", got)
	}
}

// TestSeqIndex exercises the oldest/newest index through adds, swap-removes
// and a hold release, cross-checking against a linear scan.
func TestSeqIndex(t *testing.T) {
	hold := HoldEdges(map[[2]int]bool{{5, 6}: true})
	p := NewPool(hold, NewStats())
	check := func() {
		if p.PendingEmpty() {
			return
		}
		v := p.View()
		minI, maxI := 0, 0
		for i := 1; i < v.Len(); i++ {
			if v.At(i).Seq < v.At(minI).Seq {
				minI = i
			}
			if v.At(i).Seq > v.At(maxI).Seq {
				maxI = i
			}
		}
		if got := v.OldestIndex(); got != minI {
			t.Fatalf("OldestIndex = %d, scan says %d", got, minI)
		}
		if got := v.NewestIndex(); got != maxI {
			t.Fatalf("NewestIndex = %d, scan says %d", got, maxI)
		}
	}
	// Interleave adds (some held, so released seqs are out of order later),
	// index checks and takes from varying positions.
	for i := 0; i < 8; i++ {
		p.Add(msg(5, 6, "held")) // seqs 0,2,4,... withheld
		p.Add(msg(0, 1, "free"))
		check()
	}
	p.Take(p.View().OldestIndex())
	check()
	p.Take(p.View().NewestIndex())
	check()
	p.ReleaseHeld() // re-injects seqs older than everything pending
	check()
	for !p.PendingEmpty() {
		idx := int(p.View().At(0).Seq) % p.PendingLen()
		p.Take(idx)
		check()
	}
}

func TestFIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy FIFOPolicy
	var got []string
	for !p.PendingEmpty() {
		got = append(got, p.Take(policy.Pick(p.View())).Payload.Kind())
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v", got)
		}
	}
}

func TestLIFOPolicy(t *testing.T) {
	p := NewPool(nil, NewStats())
	for _, k := range []string{"first", "second", "third"} {
		p.Add(msg(0, 1, k))
	}
	var policy LIFOPolicy
	if got := p.Take(policy.Pick(p.View())).Payload.Kind(); got != "third" {
		t.Fatalf("LIFO picked %q", got)
	}
}

func TestRandomPolicyDeterminism(t *testing.T) {
	mkPool := func() *Pool {
		p := NewPool(nil, NewStats())
		for i := 0; i < 10; i++ {
			p.Add(msg(0, 1, "x"))
		}
		return p
	}
	a, b := NewRandomPolicy(7), NewRandomPolicy(7)
	pa, pb := mkPool(), mkPool()
	for i := 0; i < 20; i++ {
		if a.Pick(pa.View()) != b.Pick(pb.View()) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBoundedDelayPolicy(t *testing.T) {
	p := NewBoundedDelayPolicy(3, 1)
	pool := NewPool(nil, NewStats())
	for i := 0; i < 10; i++ {
		pool.Add(msg(0, 1, "m"))
	}
	// Deliver 10 messages; the oldest pending seq can never lag the
	// delivery count by more than the bound.
	for i := 0; i < 10; i++ {
		pending := pool.View()
		idx := p.Pick(pending)
		oldest := pending.At(0).Seq
		for j := 1; j < pending.Len(); j++ {
			if pending.At(j).Seq < oldest {
				oldest = pending.At(j).Seq
			}
		}
		if uint64(i+1) > oldest+3 && pending.At(idx).Seq != oldest {
			t.Fatalf("delivery %d: overtaking bound violated (oldest=%d picked=%d)",
				i, oldest, pending.At(idx).Seq)
		}
		pool.Take(idx)
	}
}

func TestBoundedDelayZeroIsFIFO(t *testing.T) {
	p := NewBoundedDelayPolicy(0, 1)
	pool := NewPool(nil, NewStats())
	for _, k := range []string{"a", "b", "c"} {
		pool.Add(msg(0, 1, k))
	}
	var got []string
	for !pool.PendingEmpty() {
		got = append(got, pool.Take(p.Pick(pool.View())).Payload.Kind())
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestHoldRule(t *testing.T) {
	hold := HoldEdges(map[[2]int]bool{{0, 1}: true})
	stats := NewStats()
	p := NewPool(hold, stats)
	p.Add(msg(0, 1, "held"))
	p.Add(msg(1, 0, "free"))
	if p.PendingLen() != 1 || p.HeldCount() != 1 {
		t.Fatalf("pending=%d held=%d", p.PendingLen(), p.HeldCount())
	}
	if p.Empty() {
		t.Error("pool with held messages is not empty")
	}
	p.ReleaseHeld()
	if p.PendingLen() != 2 || p.HeldCount() != 0 {
		t.Error("release did not move messages")
	}
	// After release the rule no longer captures new sends.
	p.Add(msg(0, 1, "late"))
	if p.HeldCount() != 0 {
		t.Error("released hold captured a message")
	}
	if !hold.Released() {
		t.Error("Released() should be true")
	}
}

func TestHoldRuleMatchFunc(t *testing.T) {
	h := NewHoldRule(func(m Message) bool { return m.Payload.Kind() == "x" })
	if !h.Holds(msg(0, 1, "x")) || h.Holds(msg(0, 1, "y")) {
		t.Error("match function ignored")
	}
}

func TestStatsDrop(t *testing.T) {
	s := NewStats()
	s.RecordDrop()
	if s.Dropped != 1 {
		t.Error("drop not counted")
	}
}

// TestOrderedIndexEdgeCases covers the PendingView index corners: a single
// pending message, the ordering after a hold release re-injects seqs older
// than everything pending, and the panic on an empty view.
func TestOrderedIndexEdgeCases(t *testing.T) {
	// Single message: both extremes are index 0, repeatedly.
	p := NewPool(nil, NewStats())
	p.Add(msg(0, 1, "only"))
	if p.View().OldestIndex() != 0 || p.View().NewestIndex() != 0 {
		t.Fatal("single-message extremes should both be index 0")
	}
	if got := p.Take(p.View().OldestIndex()); got.Seq != 0 {
		t.Fatalf("took seq %d", got.Seq)
	}

	// Empty view: ordered queries must panic (a policy asking with Len()==0
	// is a bug, never a silent index).
	for name, query := range map[string]func(PendingView) int{
		"oldest": PendingView.OldestIndex,
		"newest": PendingView.NewestIndex,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty view did not panic", name)
				}
			}()
			query(p.View())
		}()
	}

	// Post-ReleaseHeld: released messages carry seqs older than every
	// pending one, so OldestIndex must land on a released slot, and
	// NewestIndex on the most recent live send.
	hold := HoldEdges(map[[2]int]bool{{7, 8}: true})
	p = NewPool(hold, NewStats())
	p.Add(msg(7, 8, "h0")) // seq 0, held
	p.Add(msg(7, 8, "h1")) // seq 1, held
	p.Add(msg(0, 1, "f2")) // seq 2
	p.Add(msg(0, 1, "f3")) // seq 3
	// Force the index to exist before the release so release goes through
	// the incremental path.
	if p.View().OldestIndex() != 0 {
		t.Fatal("oldest free message should be at index 0")
	}
	p.ReleaseHeld()
	v := p.View()
	if got := v.At(v.OldestIndex()).Seq; got != 0 {
		t.Fatalf("post-release OldestIndex picked seq %d, want 0", got)
	}
	if got := v.At(v.NewestIndex()).Seq; got != 3 {
		t.Fatalf("post-release NewestIndex picked seq %d, want 3", got)
	}
	// Draining in oldest order yields global seq order.
	var seqs []uint64
	for !p.PendingEmpty() {
		seqs = append(seqs, p.Take(p.View().OldestIndex()).Seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("oldest-order drain out of order: %v", seqs)
		}
	}
}

// TestAddAllMatchesSequentialAdds pins AddAll's contract: identical Seq
// assignment, pending order and statistics to one-by-one Add calls — with
// and without an active hold rule.
func TestAddAllMatchesSequentialAdds(t *testing.T) {
	batch := []Message{msg(0, 1, "a"), msg(5, 6, "b"), msg(1, 2, "c"), msg(5, 6, "d")}
	mk := func() (*Pool, *Pool) {
		ha := HoldEdges(map[[2]int]bool{{5, 6}: true})
		hb := HoldEdges(map[[2]int]bool{{5, 6}: true})
		return NewPool(ha, NewStats()), NewPool(hb, NewStats())
	}
	seq, bat := mk()
	for _, m := range batch {
		seq.Add(m)
	}
	bat.AddAll(batch)
	if seq.PendingLen() != bat.PendingLen() || seq.HeldCount() != bat.HeldCount() {
		t.Fatalf("pending/held diverged: %d/%d vs %d/%d",
			seq.PendingLen(), seq.HeldCount(), bat.PendingLen(), bat.HeldCount())
	}
	for i := range seq.Pending() {
		a, b := seq.Pending()[i], bat.Pending()[i]
		if a.Seq != b.Seq || a.Payload.Kind() != b.Payload.Kind() {
			t.Fatalf("pending[%d] diverged: %v vs %v", i, a, b)
		}
	}
	seq.ReleaseHeld()
	bat.ReleaseHeld()
	// After release AddAll takes its batched fast path; order must still
	// match sequential adds exactly.
	seq2 := []Message{msg(5, 6, "e"), msg(2, 3, "f")}
	for _, m := range seq2 {
		seq.Add(m)
	}
	bat.AddAll(seq2)
	sp, bp := seq.Pending(), bat.Pending()
	if len(sp) != len(bp) {
		t.Fatalf("pending length diverged: %d vs %d", len(sp), len(bp))
	}
	for i := range sp {
		if sp[i].Seq != bp[i].Seq || sp[i].Payload.Kind() != bp[i].Payload.Kind() {
			t.Fatalf("post-release pending[%d] diverged: %v vs %v", i, sp[i], bp[i])
		}
	}
}

// TestArenaReuse pins the freelist behavior: a long churn at constant
// in-flight load must not grow the arena beyond its high-water mark.
func TestArenaReuse(t *testing.T) {
	p := NewPoolSized(nil, NewStats(), 8)
	for i := 0; i < 8; i++ {
		p.Add(msg(0, 1, "x"))
	}
	for i := 0; i < 10_000; i++ {
		p.Take(i % p.PendingLen())
		p.Add(msg(0, 1, "x"))
	}
	if len(p.arena) != 8+1 {
		// One slot of slack: Add allocates before Take frees in the loop
		// above only on the first iteration.
		if len(p.arena) > 9 {
			t.Fatalf("arena grew to %d slots under constant load 8", len(p.arena))
		}
	}
}

// TestDrawBatchMatchesSequentialTakes: a windowed draw must pick exactly
// the messages that the same number of policy.Pick/Take rounds would, in
// the same order — the property the parallel engine's batching rests on.
func TestDrawBatchMatchesSequentialTakes(t *testing.T) {
	fill := func(p *Pool) {
		for i := 0; i < 9; i++ {
			p.Add(msg(i%3, (i+1)%3, string(rune('a'+i))))
		}
	}
	seq := NewPool(nil, NewStats())
	fill(seq)
	var want []Message
	for i := 0; i < 6; i++ {
		want = append(want, seq.Take(FIFOPolicy{}.Pick(seq.View())))
	}

	batched := NewPool(nil, NewStats())
	fill(batched)
	got := batched.DrawBatch(FIFOPolicy{}, nil, 6)
	if len(got) != 6 {
		t.Fatalf("drew %d messages, want 6", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("draw %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if batched.PendingLen() != 3 {
		t.Fatalf("pending after draw = %d, want 3", batched.PendingLen())
	}
	// Capacity beyond the pending count drains the pool and stops.
	rest := batched.DrawBatch(FIFOPolicy{}, nil, 100)
	if len(rest) != 3 || batched.PendingLen() != 0 {
		t.Fatalf("overdraw: got %d drawn, %d pending", len(rest), batched.PendingLen())
	}
	// The dst slice is appended to, not replaced.
	refill := NewPool(nil, NewStats())
	fill(refill)
	buf := make([]Message, 0, 16)
	buf = refill.DrawBatch(FIFOPolicy{}, buf[:0], 2)
	buf = refill.DrawBatch(FIFOPolicy{}, buf, 2)
	if len(buf) != 4 {
		t.Fatalf("appended draw length = %d, want 4", len(buf))
	}
}

// TestInjectionImmunity pins which policies advertise the marker the
// windowed runner gates on: only FIFO's pick is invariant under messages
// injected behind the window start.
func TestInjectionImmunity(t *testing.T) {
	if !IsInjectionImmune(FIFOPolicy{}) {
		t.Error("fifo must be injection-immune")
	}
	for name, p := range map[string]Policy{
		"random":  NewRandomPolicy(1),
		"lifo":    LIFOPolicy{},
		"bounded": NewBoundedDelayPolicy(5, 1),
	} {
		if IsInjectionImmune(p) {
			t.Errorf("%s must not advertise injection immunity", name)
		}
	}
}
