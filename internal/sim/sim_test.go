package sim

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/transport"
)

// pingPayload is a trivial test payload carrying a hop count.
type pingPayload int

func (pingPayload) Kind() string { return "PING" }

// echoNode starts by sending a ping to all neighbors and decrements each
// received ping, re-broadcasting until it reaches zero; it outputs the
// number of pings received.
type echoNode struct {
	id       int
	initial  int
	received int
	done     bool
}

func (e *echoNode) ID() int { return e.id }

func (e *echoNode) Start(out *Outbox) {
	if e.initial > 0 {
		out.Broadcast(pingPayload(e.initial))
	}
}

func (e *echoNode) Deliver(msg transport.Message, out *Outbox) {
	e.received++
	if p, ok := msg.Payload.(pingPayload); ok && p > 1 {
		out.Broadcast(p - 1)
	}
	e.done = true
}

func (e *echoNode) Output() (float64, bool) { return float64(e.received), e.done }

func newEchoHandlers(n, initial int) []Handler {
	hs := make([]Handler, n)
	for i := range hs {
		hs[i] = &echoNode{id: i, initial: initial}
	}
	return hs
}

func TestRunnerQuiescence(t *testing.T) {
	g := graph.DirectedCycle(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}}, newEchoHandlers(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Each node sends ping(2); receiver re-broadcasts ping(1): 3 + 3 deliveries.
	if r.Steps() != 6 {
		t.Errorf("steps = %d, want 6", r.Steps())
	}
	if r.Stats().Sent != 6 || r.Stats().Delivered != 6 {
		t.Errorf("stats = %+v", r.Stats())
	}
}

func TestRunnerValidation(t *testing.T) {
	g := graph.DirectedCycle(3)
	if _, err := New(Config{}, nil); err == nil {
		t.Error("missing graph accepted")
	}
	if _, err := New(Config{Graph: g}, newEchoHandlers(2, 1)); err == nil {
		t.Error("handler count mismatch accepted")
	}
	bad := newEchoHandlers(3, 1)
	bad[0], bad[1] = bad[1], bad[0]
	if _, err := New(Config{Graph: g}, bad); err == nil {
		t.Error("mis-indexed handlers accepted")
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func(seed int64) int {
		g := graph.Clique(4)
		r, err := New(Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, newEchoHandlers(4, 3))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Steps()
	}
	if run(5) != run(5) {
		t.Error("same seed, different executions")
	}
}

func TestOutboxEnforcesTopology(t *testing.T) {
	g := graph.DirectedCycle(3) // 0->1->2->0
	stats := transport.NewStats()
	o := &Outbox{from: 0, g: g, stats: stats}
	o.Send(1, pingPayload(1)) // legal
	o.Send(2, pingPayload(1)) // no edge 0->2
	if len(o.Messages()) != 1 {
		t.Errorf("messages = %d, want 1", len(o.Messages()))
	}
	if stats.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", stats.Dropped)
	}
	if o.Messages()[0].From != 0 || o.Messages()[0].To != 1 {
		t.Error("message endpoints wrong")
	}
}

func TestCollectorOutbox(t *testing.T) {
	g := graph.Clique(3)
	col := NewCollector(1, g)
	col.Broadcast(pingPayload(1))
	if len(col.Messages()) != 2 {
		t.Errorf("broadcast collected %d messages", len(col.Messages()))
	}
}

// floodNode floods forever to trigger the livelock guard.
type floodNode struct{ id int }

func (f *floodNode) ID() int           { return f.id }
func (f *floodNode) Start(out *Outbox) { out.Broadcast(pingPayload(1)) }
func (f *floodNode) Deliver(_ transport.Message, out *Outbox) {
	out.Broadcast(pingPayload(1))
}
func (f *floodNode) Output() (float64, bool) { return 0, false }

func TestLivelockGuard(t *testing.T) {
	g := graph.Clique(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, MaxSteps: 100},
		[]Handler{&floodNode{0}, &floodNode{1}, &floodNode{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); !errors.Is(err, ErrLivelock) {
		t.Errorf("want ErrLivelock, got %v", err)
	}
}

func TestStopWhen(t *testing.T) {
	g := graph.Clique(3)
	r, err := New(Config{
		Graph:    g,
		Policy:   transport.FIFOPolicy{},
		StopWhen: func(r *Runner) bool { return r.Steps() >= 2 },
	}, newEchoHandlers(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 2 {
		t.Errorf("steps = %d, want 2", r.Steps())
	}
}

func TestHoldReleaseOnQuiescence(t *testing.T) {
	g := graph.DirectedCycle(3)
	hold := transport.HoldEdges(map[[2]int]bool{{0, 1}: true})
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, Hold: hold},
		newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// All messages, including the held one, must eventually be delivered
	// (delays are finite).
	if r.Stats().Delivered != r.Stats().Sent {
		t.Errorf("delivered %d of %d", r.Stats().Delivered, r.Stats().Sent)
	}
	if !hold.Released() {
		t.Error("hold never released")
	}
}

func TestReleaseWhenPredicate(t *testing.T) {
	g := graph.DirectedCycle(3)
	hold := transport.HoldEdges(map[[2]int]bool{{0, 1}: true})
	released := false
	r, err := New(Config{
		Graph:  g,
		Policy: transport.FIFOPolicy{},
		Hold:   hold,
		ReleaseWhen: func(r *Runner) bool {
			released = true
			return true
		},
	}, newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !released || !hold.Released() {
		t.Error("ReleaseWhen not honored")
	}
}

func TestOutputsCollection(t *testing.T) {
	g := graph.Clique(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}}, newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.AllOutput(graph.SetOf(0, 1, 2)) {
		t.Error("nodes decided before running")
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(graph.SetOf(0, 1, 2))
	if !all || len(outs) != 3 {
		t.Errorf("outputs = %v all=%v", outs, all)
	}
	if !r.AllOutput(graph.SetOf(0, 1, 2)) {
		t.Error("AllOutput false after run")
	}
}

// outboxSpy records the Outbox pointers and pre-invocation lengths it sees,
// pinning the engine contract that outboxes are reused across invocations
// and arrive empty each time.
type outboxSpy struct {
	echoNode
	boxes []*Outbox
	lens  []int
}

func (s *outboxSpy) Start(out *Outbox) {
	s.boxes = append(s.boxes, out)
	s.lens = append(s.lens, len(out.Messages()))
	s.echoNode.Start(out)
}

func (s *outboxSpy) Deliver(msg transport.Message, out *Outbox) {
	s.boxes = append(s.boxes, out)
	s.lens = append(s.lens, len(out.Messages()))
	s.echoNode.Deliver(msg, out)
}

// TestOutboxReuseAcrossInvocations: both engines may hand the same Outbox to
// every invocation (the inline engine shares one across all handlers, the
// goroutine engine one per proc), and it must always arrive drained — the
// reuse the Handler contract permits and the batching refactor relies on.
func TestOutboxReuseAcrossInvocations(t *testing.T) {
	for _, eng := range []Engine{Inline(), Goroutine()} {
		t.Run(eng.Name(), func(t *testing.T) {
			g := graph.Clique(3)
			spies := make([]*outboxSpy, g.N())
			hs := make([]Handler, g.N())
			for i := range hs {
				spies[i] = &outboxSpy{echoNode: echoNode{id: i, initial: 3}}
				hs[i] = spies[i]
			}
			r, err := New(Config{Graph: g, Policy: transport.NewRandomPolicy(3), Engine: eng}, hs)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			for i, spy := range spies {
				if len(spy.boxes) < 2 {
					t.Fatalf("node %d saw %d invocations", i, len(spy.boxes))
				}
				for j, l := range spy.lens {
					if l != 0 {
						t.Errorf("node %d invocation %d: outbox arrived with %d stale messages", i, j, l)
					}
				}
				// Reuse: a node's invocations all see one Outbox instance.
				for _, b := range spy.boxes[1:] {
					if b != spy.boxes[0] {
						t.Fatalf("node %d: outbox instance changed between invocations", i)
					}
				}
			}
		})
	}
}

// TestTraceCap bounds the recorded trace without perturbing the run.
func TestTraceCap(t *testing.T) {
	run := func(traceCap int) (*Runner, error) {
		r, err := New(Config{
			Graph:       graph.Clique(4),
			Policy:      transport.NewRandomPolicy(9),
			RecordTrace: true,
			TraceCap:    traceCap,
		}, newEchoHandlers(4, 4))
		if err != nil {
			return nil, err
		}
		return r, r.Run()
	}
	full, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Trace()) != full.Steps() {
		t.Fatalf("unbounded trace kept %d of %d deliveries", len(full.Trace()), full.Steps())
	}
	capped, err := run(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Trace()) != 5 {
		t.Fatalf("capped trace kept %d deliveries, want 5", len(capped.Trace()))
	}
	if capped.Steps() != full.Steps() {
		t.Fatalf("trace cap changed the schedule: %d vs %d steps", capped.Steps(), full.Steps())
	}
	// The kept prefix is the schedule prefix.
	for i, m := range capped.Trace() {
		if m.String() != full.Trace()[i].String() {
			t.Fatalf("capped trace diverged at %d", i)
		}
	}
}
