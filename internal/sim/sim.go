// Package sim runs protocol handlers as message-passing goroutines over the
// transport pool. Each node's handler executes on its own goroutine with
// channel-based delivery, while a central loop picks the next in-flight
// message according to the configured asynchrony policy. Any serialization
// of deliveries chosen this way is a legal asynchronous schedule, so seeded
// executions are both adversarially reorderable and exactly reproducible.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/transport"
)

// Handler is a protocol endpoint for one node. Start is invoked once before
// any delivery; Deliver is invoked once per received message. Handlers send
// by calling Outbox methods; sends are collected per invocation and injected
// into the network atomically afterwards. Output reports the node's
// consensus output once available.
type Handler interface {
	ID() int
	Start(out *Outbox)
	Deliver(msg transport.Message, out *Outbox)
	Output() (float64, bool)
}

// Outbox collects a handler's sends during one invocation and enforces the
// network model: a node can only transmit over its outgoing edges (the
// paper's reliable-link model also means the receiver learns the true
// sender, which the runner guarantees by stamping From itself).
type Outbox struct {
	from  int
	g     *graph.Graph
	msgs  []transport.Message
	stats *transport.Stats
}

// Send queues a message to an out-neighbor. Sends over non-edges are
// dropped (and counted): even Byzantine nodes cannot forge links.
func (o *Outbox) Send(to int, p transport.Payload) {
	if !o.g.HasEdge(o.from, to) {
		if o.stats != nil {
			o.stats.RecordDrop()
		}
		return
	}
	o.msgs = append(o.msgs, transport.Message{From: o.from, To: to, Payload: p})
}

// NewCollector returns a detached Outbox that records sends without
// injecting them anywhere; fault-injection wrappers use it to intercept and
// rewrite an inner handler's traffic before forwarding.
func NewCollector(from int, g *graph.Graph) *Outbox {
	return &Outbox{from: from, g: g}
}

// Messages returns the sends collected so far.
func (o *Outbox) Messages() []transport.Message { return o.msgs }

// Broadcast sends the payload to every out-neighbor.
func (o *Outbox) Broadcast(p transport.Payload) {
	for _, v := range o.g.Out(o.from) {
		o.Send(v, p)
	}
}

// Graph exposes the topology (all nodes know the network, as the paper
// assumes).
func (o *Outbox) Graph() *graph.Graph { return o.g }

type procReq struct {
	start bool
	msg   transport.Message
	reply chan []transport.Message
}

type proc struct {
	h     Handler
	in    chan procReq
	done  chan struct{}
	reply chan []transport.Message
}

func startProc(h Handler, g *graph.Graph, stats *transport.Stats) *proc {
	p := &proc{
		h:     h,
		in:    make(chan procReq),
		done:  make(chan struct{}),
		reply: make(chan []transport.Message, 1),
	}
	go func() {
		defer close(p.done)
		for req := range p.in {
			out := &Outbox{from: h.ID(), g: g, stats: stats}
			if req.start {
				h.Start(out)
			} else {
				h.Deliver(req.msg, out)
			}
			req.reply <- out.msgs
		}
	}()
	return p
}

func (p *proc) invoke(req procReq) []transport.Message {
	req.reply = p.reply
	p.in <- req
	return <-req.reply
}

func (p *proc) stop() {
	close(p.in)
	<-p.done
}

// Config parameterizes an execution.
type Config struct {
	Graph  *graph.Graph
	Policy transport.Policy
	// Hold withholds matching messages until ReleaseWhen fires (or until the
	// rest of the network quiesces — delays are finite). Optional.
	Hold *transport.HoldRule
	// ReleaseWhen, checked after every delivery, releases held messages when
	// it returns true. Optional.
	ReleaseWhen func(r *Runner) bool
	// StopWhen, checked after every delivery, ends the run early. Optional;
	// by default the run ends at quiescence (no deliverable messages).
	StopWhen func(r *Runner) bool
	// MaxSteps caps deliveries as a livelock guard. 0 means the default cap.
	MaxSteps int
}

// DefaultMaxSteps is the delivery cap when Config.MaxSteps is zero.
const DefaultMaxSteps = 20_000_000

// ErrLivelock is returned when an execution exceeds its delivery cap.
var ErrLivelock = errors.New("sim: delivery cap exceeded (livelock?)")

// Runner executes a set of handlers to quiescence.
type Runner struct {
	cfg      Config
	handlers []Handler
	pool     *transport.Pool
	stats    *transport.Stats
	steps    int
}

// New builds a runner. Handlers must be indexed by node ID (handler i has
// ID i) and cover every node of the graph.
func New(cfg Config, handlers []Handler) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: config needs a graph")
	}
	if len(handlers) != cfg.Graph.N() {
		return nil, fmt.Errorf("sim: %d handlers for %d nodes", len(handlers), cfg.Graph.N())
	}
	for i, h := range handlers {
		if h.ID() != i {
			return nil, fmt.Errorf("sim: handler at index %d has ID %d", i, h.ID())
		}
	}
	if cfg.Policy == nil {
		cfg.Policy = transport.NewRandomPolicy(1)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	stats := transport.NewStats()
	return &Runner{
		cfg:      cfg,
		handlers: handlers,
		pool:     transport.NewPool(cfg.Hold, stats),
		stats:    stats,
	}, nil
}

// Run executes until quiescence, early stop, or the delivery cap.
func (r *Runner) Run() error {
	procs := make([]*proc, len(r.handlers))
	for i, h := range r.handlers {
		procs[i] = startProc(h, r.cfg.Graph, r.stats)
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	for _, p := range procs {
		for _, m := range p.invoke(procReq{start: true}) {
			r.pool.Add(m)
		}
	}

	for {
		if r.cfg.StopWhen != nil && r.cfg.StopWhen(r) {
			return nil
		}
		if r.cfg.ReleaseWhen != nil && r.cfg.Hold != nil && !r.cfg.Hold.Released() && r.cfg.ReleaseWhen(r) {
			r.pool.ReleaseHeld()
		}
		if r.pool.PendingEmpty() {
			if r.pool.HeldCount() > 0 {
				// Finite delays: once everything else has quiesced the
				// withheld messages must eventually arrive.
				r.pool.ReleaseHeld()
				continue
			}
			return nil
		}
		if r.steps >= r.cfg.MaxSteps {
			return fmt.Errorf("%w: %d deliveries", ErrLivelock, r.steps)
		}
		r.steps++
		idx := r.cfg.Policy.Pick(r.pool.Pending())
		m := r.pool.Take(idx)
		for _, out := range procs[m.To].invoke(procReq{msg: m}) {
			r.pool.Add(out)
		}
	}
}

// Steps returns the number of deliveries so far.
func (r *Runner) Steps() int { return r.steps }

// Stats returns the execution's message statistics.
func (r *Runner) Stats() *transport.Stats { return r.stats }

// Handler returns the handler for node id.
func (r *Runner) Handler(id int) Handler { return r.handlers[id] }

// AllOutput reports whether every handler in the set has produced output.
func (r *Runner) AllOutput(set graph.Set) bool {
	ok := true
	set.ForEach(func(v int) bool {
		if _, done := r.handlers[v].Output(); !done {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Outputs collects the outputs of the given nodes; the bool result is false
// if any of them has not decided.
func (r *Runner) Outputs(set graph.Set) (map[int]float64, bool) {
	out := make(map[int]float64, set.Count())
	all := true
	set.ForEach(func(v int) bool {
		x, done := r.handlers[v].Output()
		if !done {
			all = false
			return true
		}
		out[v] = x
		return true
	})
	return out, all
}
