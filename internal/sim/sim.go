// Package sim executes protocol handlers over the transport pool: a central
// loop picks the next in-flight message according to the configured
// asynchrony policy and hands it to the receiving handler through a
// pluggable execution Engine — by default a direct-call inline event loop,
// optionally a goroutine-per-node message-passing arrangement. Any
// serialization of deliveries chosen this way is a legal asynchronous
// schedule, so seeded executions are both adversarially reorderable and
// exactly reproducible; the schedule is engine-independent (see Engine), so
// the same seed yields the same delivery trace on every engine.
package sim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/linkfault"
	"repro/internal/transport"
)

// Handler is a protocol endpoint for one node. Start is invoked once before
// any delivery; Deliver is invoked once per received message. Handlers send
// by calling Outbox methods; sends are collected per invocation and injected
// into the network atomically afterwards. The Outbox is only valid for the
// duration of the invocation — engines may reuse it, so handlers must not
// retain it (or slices obtained from it) once Start/Deliver returns. Output
// reports the node's consensus output once available.
type Handler interface {
	ID() int
	Start(out *Outbox)
	Deliver(msg transport.Message, out *Outbox)
	Output() (float64, bool)
}

// Outbox collects a handler's sends during one invocation and enforces the
// network model: a node can only transmit over its outgoing edges (the
// paper's reliable-link model also means the receiver learns the true
// sender, which the runner guarantees by stamping From itself).
type Outbox struct {
	from  int
	g     *graph.Graph
	msgs  []transport.Message
	stats *transport.Stats
}

// Send queues a message to an out-neighbor. Sends over non-edges are
// dropped (and counted): even Byzantine nodes cannot forge links.
func (o *Outbox) Send(to int, p transport.Payload) {
	if !o.g.HasEdge(o.from, to) {
		if o.stats != nil {
			o.stats.RecordDrop()
		}
		return
	}
	o.msgs = append(o.msgs, transport.Message{From: o.from, To: to, Payload: p})
}

// NewCollector returns a detached Outbox that records sends without
// injecting them anywhere; fault-injection wrappers use it to intercept and
// rewrite an inner handler's traffic before forwarding.
func NewCollector(from int, g *graph.Graph) *Outbox {
	return &Outbox{from: from, g: g}
}

// Messages returns the sends collected so far.
func (o *Outbox) Messages() []transport.Message { return o.msgs }

// Broadcast sends the payload to every out-neighbor.
func (o *Outbox) Broadcast(p transport.Payload) {
	for _, v := range o.g.Out(o.from) {
		o.Send(v, p)
	}
}

// Graph exposes the topology (all nodes know the network, as the paper
// assumes).
func (o *Outbox) Graph() *graph.Graph { return o.g }

// Config parameterizes an execution.
type Config struct {
	Graph  *graph.Graph
	Policy transport.Policy
	// Engine selects the execution engine; nil means the inline engine.
	Engine Engine
	// Hold withholds matching messages until ReleaseWhen fires (or until the
	// rest of the network quiesces — delays are finite). Optional.
	Hold *transport.HoldRule
	// LinkFaults, when non-nil, applies per-edge Byzantine link failures at
	// message injection — the simulator's transport boundary: a send may be
	// dropped, duplicated, or delayed by Fate.Delay delivery steps before it
	// enters the pool. Delays are finite: once the rest of the network
	// quiesces, every delayed message is released. Decisions happen in the
	// runner loop, so they are engine-independent and seed-deterministic.
	LinkFaults *linkfault.Set
	// ReleaseWhen, checked after every delivery, releases held messages when
	// it returns true. Optional.
	ReleaseWhen func(r *Runner) bool
	// StopWhen, checked after every delivery, ends the run early. Optional;
	// by default the run ends at quiescence (no deliverable messages).
	StopWhen func(r *Runner) bool
	// MaxSteps caps deliveries as a livelock guard. 0 means the default cap.
	MaxSteps int
	// RecordTrace keeps the delivery trace (one Message per delivery, in
	// delivery order) for the equivalence and determinism tests.
	//
	// Memory: every recorded delivery retains a 40-byte Message value plus
	// whatever its payload pins (for BW, a path proportional to the graph
	// order). Tracing a run at the full 20M-step delivery cap therefore
	// costs at least ~800 MB before payloads — bound long runs with
	// TraceCap, or leave tracing off outside the determinism tests.
	RecordTrace bool
	// TraceCap bounds how many deliveries RecordTrace keeps: recording
	// stops (the run continues) once this many are held. 0 means
	// unbounded. The buffer is preallocated up to the cap.
	TraceCap int
	// Observer, when non-nil, receives streaming events (deliveries, holds,
	// releases, per-round value snapshots) as the run progresses. Observers
	// only watch: the delivery schedule is identical with or without one.
	Observer Observer
}

// DefaultMaxSteps is the delivery cap when Config.MaxSteps is zero.
const DefaultMaxSteps = 20_000_000

// ErrLivelock is returned when an execution exceeds its delivery cap.
var ErrLivelock = errors.New("sim: delivery cap exceeded (livelock?)")

// Runner executes a set of handlers to quiescence.
type Runner struct {
	cfg      Config
	handlers []Handler
	pool     *transport.Pool
	stats    *transport.Stats
	steps    int
	trace    []transport.Message
	// delayed holds link-fault-delayed messages until their release step.
	delayed []delayedMessage
}

// delayedMessage is one send a link-fault delay rule is holding back; it
// enters the pool once the runner reaches step at.
type delayedMessage struct {
	m  transport.Message
	at int
}

// New builds a runner. Handlers must be indexed by node ID (handler i has
// ID i) and cover every node of the graph.
func New(cfg Config, handlers []Handler) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: config needs a graph")
	}
	if len(handlers) != cfg.Graph.N() {
		return nil, fmt.Errorf("sim: %d handlers for %d nodes", len(handlers), cfg.Graph.N())
	}
	for i, h := range handlers {
		if h.ID() != i {
			return nil, fmt.Errorf("sim: handler at index %d has ID %d", i, h.ID())
		}
	}
	if cfg.Policy == nil {
		cfg.Policy = transport.NewRandomPolicy(1)
	}
	if cfg.Engine == nil {
		cfg.Engine = Inline()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	stats := transport.NewStats()
	// Size the pool for one full broadcast wave (one message per edge) —
	// enough that typical runs never grow their arena, cheap enough that
	// tiny runs do not notice.
	capacity := cfg.Graph.M()
	if capacity > 1<<16 {
		capacity = 1 << 16
	}
	r := &Runner{
		cfg:      cfg,
		handlers: handlers,
		pool:     transport.NewPoolSized(cfg.Hold, stats, capacity),
		stats:    stats,
	}
	if cfg.RecordTrace {
		// Preallocate the trace buffer: up to the cap when one is set,
		// otherwise a modest starting size (growth takes over beyond it).
		pre := cfg.TraceCap
		if pre <= 0 || pre > cfg.MaxSteps {
			pre = cfg.MaxSteps
		}
		if pre > 4096 {
			pre = 4096
		}
		r.trace = make([]transport.Message, 0, pre)
	}
	return r, nil
}

// Run executes until quiescence, early stop, or the delivery cap. The loop
// is engine-independent: every pool mutation and policy pick happens here,
// in the same order regardless of engine, which is what makes delivery
// traces comparable across engines.
func (r *Runner) Run() error {
	inv := r.cfg.Engine.Bind(r.handlers, r.cfg.Graph, r.stats)
	defer inv.Close()

	var rounds *roundWatch
	if r.cfg.Observer != nil {
		rounds = newRoundWatch(len(r.handlers))
	}

	for i := range r.handlers {
		r.injectAll(inv.Start(i))
		if rounds != nil {
			rounds.emit(i, r.handlers[i], r.steps, r.cfg.Observer)
		}
	}

	if b, ok := inv.(BatchInvoker); ok && r.windowedEligible() {
		return r.runWindowed(b)
	}

	for {
		if r.cfg.StopWhen != nil && r.cfg.StopWhen(r) {
			return nil
		}
		if r.cfg.ReleaseWhen != nil && r.cfg.Hold != nil && !r.cfg.Hold.Released() && r.cfg.ReleaseWhen(r) {
			r.releaseHeld()
		}
		r.releaseDelayed(false)
		if r.pool.PendingEmpty() {
			if len(r.delayed) > 0 {
				// Link-fault delays are finite: once everything else has
				// quiesced the delayed messages must eventually arrive.
				r.releaseDelayed(true)
				continue
			}
			if r.pool.HeldCount() > 0 {
				// Finite delays: once everything else has quiesced the
				// withheld messages must eventually arrive.
				r.releaseHeld()
				continue
			}
			return nil
		}
		if r.steps >= r.cfg.MaxSteps {
			return fmt.Errorf("%w: %d deliveries", ErrLivelock, r.steps)
		}
		r.steps++
		idx := r.cfg.Policy.Pick(r.pool.View())
		m := r.pool.Take(idx)
		if r.cfg.RecordTrace && (r.cfg.TraceCap == 0 || len(r.trace) < r.cfg.TraceCap) {
			r.trace = append(r.trace, m)
		}
		if r.cfg.Observer != nil {
			r.cfg.Observer.Observe(Event{Type: EventDeliver, Step: r.steps, Message: m})
		}
		r.injectAll(inv.Deliver(m.To, m))
		if rounds != nil {
			rounds.emit(m.To, r.handlers[m.To], r.steps, r.cfg.Observer)
		}
	}
}

// windowedEligible reports whether the run may draw whole delivery windows
// up front instead of picking one message at a time. The requirement is
// that nothing between two picks can change what the policy would pick or
// demand per-delivery interposition:
//
//   - the policy must be injection-immune (its next k picks are fixed
//     before the window's injections happen — transport.InjectionImmune);
//   - no hold rule: released held messages keep their original Seq, which
//     can be lower than pending ones and would invalidate a drawn window;
//   - no observer, stop or release predicate: those contractually run
//     between every two deliveries.
//
// Link faults stay compatible: their fate decisions happen at commit, in
// exact injection order, and delayed messages are re-stamped with fresh
// Seqs on release.
func (r *Runner) windowedEligible() bool {
	return transport.IsInjectionImmune(r.cfg.Policy) &&
		r.cfg.Hold == nil &&
		r.cfg.Observer == nil &&
		r.cfg.StopWhen == nil &&
		r.cfg.ReleaseWhen == nil
}

// windowCap bounds how many deliveries one window may hold. Large enough to
// amortize the per-window fork/join, small enough that the batch and span
// scratch stays cache-resident.
const windowCap = 1 << 13

// runWindowed is the batched delivery loop: draw up to windowCap deliveries
// from the pool in policy order, invoke the handlers for all of them (the
// BatchInvoker may parallelize), then commit each invocation — trace entry,
// outbox injection, delayed-message release — in window order. Every pool
// mutation happens in exactly the order the serial loop would have
// performed it, so traces, statistics and link-fault accounting are
// byte-identical to the per-delivery loop (the cross-engine tests pin
// this).
func (r *Runner) runWindowed(inv BatchInvoker) error {
	batch := make([]transport.Message, 0, windowCap)
	for {
		r.releaseDelayed(false)
		if r.pool.PendingEmpty() {
			if len(r.delayed) > 0 {
				// Link-fault delays are finite: once everything else has
				// quiesced the delayed messages must eventually arrive.
				r.releaseDelayed(true)
				continue
			}
			if r.pool.HeldCount() > 0 {
				r.releaseHeld()
				continue
			}
			return nil
		}
		if r.steps >= r.cfg.MaxSteps {
			return fmt.Errorf("%w: %d deliveries", ErrLivelock, r.steps)
		}
		max := windowCap
		if rem := r.cfg.MaxSteps - r.steps; rem < max {
			max = rem
		}
		batch = r.pool.DrawBatch(r.cfg.Policy, batch[:0], max)
		outs := inv.DeliverBatch(batch)
		for i, m := range batch {
			r.steps++
			if r.cfg.RecordTrace && (r.cfg.TraceCap == 0 || len(r.trace) < r.cfg.TraceCap) {
				r.trace = append(r.trace, m)
			}
			r.injectAll(outs[i])
			r.releaseDelayed(false)
		}
	}
}

// injectAll routes one invocation's batch of sends into the pool. With no
// link faults in play and no observer waiting on hold events it hands the
// whole batch to the pool's AddAll — one call, the per-message fate and
// hold branching amortized away — which is exactly equivalent to injecting
// the messages one by one (same Seq order, same pending order, same
// statistics), so the delivery schedule is unchanged.
func (r *Runner) injectAll(msgs []transport.Message) {
	if len(msgs) == 0 {
		return
	}
	if r.cfg.LinkFaults == nil && (r.cfg.Observer == nil || r.cfg.Hold == nil) {
		r.pool.AddAll(msgs)
		return
	}
	for _, m := range msgs {
		r.inject(m)
	}
}

// inject routes a freshly sent message through the link-fault rules (drop,
// duplicate, delay) and into the pool. The fate decision happens here, on
// the runner's goroutine, in injection order — engine-independent and
// therefore schedule-deterministic.
func (r *Runner) inject(m transport.Message) {
	if r.cfg.LinkFaults != nil {
		fate := r.cfg.LinkFaults.Next(m.From, m.To)
		for i := 0; i < fate.Copies; i++ {
			if fate.Delay > 0 {
				r.delayed = append(r.delayed, delayedMessage{m: m, at: r.steps + fate.Delay})
			} else {
				r.injectNow(m)
			}
		}
		return
	}
	r.injectNow(m)
}

// injectNow adds a message to the pool, reporting it to the observer when
// the hold rule withholds it. The held outcome comes from the pool itself —
// the hold rule's match function is never re-evaluated, so an observer
// cannot perturb stateful rules (part of the observer-passivity guarantee).
func (r *Runner) injectNow(m transport.Message) {
	stamped, held := r.pool.Add(m)
	if held && r.cfg.Observer != nil {
		r.cfg.Observer.Observe(Event{Type: EventHold, Step: r.steps, Message: stamped})
	}
}

// releaseDelayed moves matured link-fault-delayed messages into the pool,
// in their original injection order; force releases everything (the
// finite-delay guarantee at quiescence).
func (r *Runner) releaseDelayed(force bool) {
	if len(r.delayed) == 0 {
		return
	}
	keep := r.delayed[:0]
	for _, d := range r.delayed {
		if force || d.at <= r.steps {
			r.injectNow(d.m)
		} else {
			keep = append(keep, d)
		}
	}
	r.delayed = keep
}

// releaseHeld re-injects withheld messages, reporting the release.
func (r *Runner) releaseHeld() {
	if held := r.pool.HeldCount(); held > 0 && r.cfg.Observer != nil {
		r.cfg.Observer.Observe(Event{Type: EventRelease, Step: r.steps, Count: held})
	}
	r.pool.ReleaseHeld()
}

// Steps returns the number of deliveries so far.
func (r *Runner) Steps() int { return r.steps }

// Stats returns the execution's message statistics.
func (r *Runner) Stats() *transport.Stats { return r.stats }

// Trace returns the recorded delivery trace (empty unless
// Config.RecordTrace was set).
func (r *Runner) Trace() []transport.Message { return r.trace }

// TraceString renders the recorded trace one delivery per line — the byte
// format the determinism and cross-engine equivalence tests compare.
func (r *Runner) TraceString() string {
	var b strings.Builder
	for _, m := range r.trace {
		b.WriteString(m.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Handler returns the handler for node id.
func (r *Runner) Handler(id int) Handler { return r.handlers[id] }

// AllOutput reports whether every handler in the set has produced output.
func (r *Runner) AllOutput(set graph.Set) bool {
	ok := true
	set.ForEach(func(v int) bool {
		if _, done := r.handlers[v].Output(); !done {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Outputs collects the outputs of the given nodes; the bool result is false
// if any of them has not decided.
func (r *Runner) Outputs(set graph.Set) (map[int]float64, bool) {
	out := make(map[int]float64, set.Count())
	all := true
	set.ForEach(func(v int) bool {
		x, done := r.handlers[v].Output()
		if !done {
			all = false
			return true
		}
		out[v] = x
		return true
	})
	return out, all
}
