package sim

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/transport"
)

// recorder keeps every observed event.
type recorder struct{ events []Event }

func (r *recorder) Observe(e Event) { r.events = append(r.events, e) }

func (r *recorder) byType(t EventType) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func TestObserverDeliverEvents(t *testing.T) {
	g := graph.DirectedCycle(3)
	rec := &recorder{}
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, Observer: rec},
		newEchoHandlers(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	delivers := rec.byType(EventDeliver)
	if len(delivers) != r.Steps() {
		t.Fatalf("observed %d deliveries, runner reports %d steps", len(delivers), r.Steps())
	}
	for i, e := range delivers {
		if e.Step != i+1 {
			t.Errorf("delivery %d has step %d", i, e.Step)
		}
		if e.Message.Payload.Kind() != "PING" {
			t.Errorf("delivery %d kind = %q", i, e.Message.Payload.Kind())
		}
		if !g.HasEdge(e.Message.From, e.Message.To) {
			t.Errorf("delivery %d over non-edge %d->%d", i, e.Message.From, e.Message.To)
		}
	}
}

// TestObserverDoesNotPerturbSchedule pins the zero-interference guarantee:
// the delivery trace with an observer attached is byte-identical to the
// trace without one.
func TestObserverDoesNotPerturbSchedule(t *testing.T) {
	run := func(obs Observer) string {
		r, err := New(Config{
			Graph:       graph.Clique(4),
			Policy:      transport.NewRandomPolicy(11),
			RecordTrace: true,
			Observer:    obs,
		}, newEchoHandlers(4, 3))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return r.TraceString()
	}
	bare := run(nil)
	observed := run(&recorder{})
	if bare == "" || bare != observed {
		t.Fatal("observer perturbed the delivery schedule")
	}
}

func TestObserverHoldAndReleaseEvents(t *testing.T) {
	g := graph.DirectedCycle(3)
	hold := transport.HoldEdges(map[[2]int]bool{{0, 1}: true})
	rec := &recorder{}
	r, err := New(Config{
		Graph:    g,
		Policy:   transport.FIFOPolicy{},
		Hold:     hold,
		Observer: rec,
	}, newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	holds := rec.byType(EventHold)
	if len(holds) != 1 {
		t.Fatalf("hold events = %d, want 1 (the 0->1 start ping)", len(holds))
	}
	if holds[0].Message.From != 0 || holds[0].Message.To != 1 {
		t.Errorf("held message = %s", holds[0].Message)
	}
	releases := rec.byType(EventRelease)
	if len(releases) != 1 || releases[0].Count != 1 {
		t.Fatalf("release events = %+v, want one with Count=1", releases)
	}
	// The release happens at quiescence, after the two unheld deliveries.
	if releases[0].Step != 2 {
		t.Errorf("release at step %d, want 2", releases[0].Step)
	}
}

// historyNode records one history value per delivery, exercising EventRound.
type historyNode struct {
	echoNode
	hist []float64
}

func (h *historyNode) Deliver(msg transport.Message, out *Outbox) {
	h.echoNode.Deliver(msg, out)
	h.hist = append(h.hist, float64(h.received))
}

func (h *historyNode) History() []float64 { return h.hist }

func TestObserverRoundEvents(t *testing.T) {
	g := graph.DirectedCycle(3)
	rec := &recorder{}
	handlers := make([]Handler, 3)
	for i := range handlers {
		handlers[i] = &historyNode{echoNode: echoNode{id: i, initial: 2}}
	}
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, Observer: rec}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	rounds := rec.byType(EventRound)
	// 6 deliveries, each appending one history entry on the delivered-to node.
	if len(rounds) != 6 {
		t.Fatalf("round events = %d, want 6", len(rounds))
	}
	perNode := map[int][]float64{}
	lastRound := map[int]int{}
	for _, e := range rounds {
		if e.Round != lastRound[e.Node]+1 {
			t.Errorf("node %d round %d out of order (last %d)", e.Node, e.Round, lastRound[e.Node])
		}
		lastRound[e.Node] = e.Round
		perNode[e.Node] = append(perNode[e.Node], e.Value)
	}
	for i, h := range handlers {
		if want := h.(*historyNode).History(); !reflect.DeepEqual(perNode[i], want) {
			t.Errorf("node %d streamed %v, final history %v", i, perNode[i], want)
		}
	}
}

func TestObserverFuncAndMulti(t *testing.T) {
	var a, b int
	multi := MultiObserver{
		ObserverFunc(func(Event) { a++ }),
		ObserverFunc(func(Event) { b++ }),
	}
	multi.Observe(Event{Type: EventDeliver})
	if a != 1 || b != 1 {
		t.Errorf("fan-out failed: a=%d b=%d", a, b)
	}
	if EventDeliver.String() != "deliver" || EventRound.String() != "round" {
		t.Error("EventType.String misnamed")
	}
	if EventType(99).String() == "" {
		t.Error("unknown EventType should still render")
	}
}
