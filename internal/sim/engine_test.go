package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/transport"
)

// runEcho executes the echo workload on the given engine and returns the
// trace, steps and per-node outputs.
func runEcho(t *testing.T, e Engine, seed int64) (string, int, map[int]float64) {
	t.Helper()
	g := graph.Clique(4)
	r, err := New(Config{
		Graph:       g,
		Policy:      transport.NewRandomPolicy(seed),
		Engine:      e,
		RecordTrace: true,
	}, newEchoHandlers(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(g.Nodes())
	if !all {
		t.Fatal("echo nodes undecided")
	}
	return r.TraceString(), r.Steps(), outs
}

// TestEngineEquivalence is the sim-level half of the cross-engine
// equivalence guarantee: for the same seed and policy, the inline and
// goroutine engines must produce byte-identical delivery traces and
// identical outputs.
func TestEngineEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		inTrace, inSteps, inOuts := runEcho(t, Inline(), seed)
		goTrace, goSteps, goOuts := runEcho(t, Goroutine(), seed)
		if inTrace != goTrace {
			t.Fatalf("seed %d: engines diverged:\ninline:\n%s\ngoroutine:\n%s", seed, inTrace, goTrace)
		}
		if inSteps != goSteps {
			t.Fatalf("seed %d: steps %d vs %d", seed, inSteps, goSteps)
		}
		for id, x := range inOuts {
			if goOuts[id] != x {
				t.Fatalf("seed %d: node %d output %v vs %v", seed, id, x, goOuts[id])
			}
		}
	}
}

// TestEngineDefaultIsInline pins the default: a nil Config.Engine must
// resolve to the inline engine and still match the goroutine engine.
func TestEngineDefaultIsInline(t *testing.T) {
	g := graph.DirectedCycle(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, RecordTrace: true},
		newEchoHandlers(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.cfg.Engine.Name(); got != "inline" {
		t.Fatalf("default engine = %q, want inline", got)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 6 {
		t.Errorf("steps = %d, want 6", r.Steps())
	}
}

func TestEngineByName(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"", "inline"},
		{"inline", "inline"},
		{"goroutine", "goroutine"},
	} {
		e, err := EngineByName(tc.name)
		if err != nil || e.Name() != tc.want {
			t.Errorf("EngineByName(%q) = %v, %v", tc.name, e, err)
		}
	}
	if _, err := EngineByName("warp-drive"); err == nil {
		t.Error("unknown engine accepted")
	}
	names := EngineNames()
	if len(names) != 2 || names[0] != "goroutine" || names[1] != "inline" {
		t.Errorf("EngineNames() = %v", names)
	}
}

// TestTraceRecording checks that traces are recorded only on request and
// that repeated runs of the same seed yield the same trace bytes.
func TestTraceRecording(t *testing.T) {
	g := graph.Clique(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}}, newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Trace()) != 0 || r.TraceString() != "" {
		t.Error("trace recorded without RecordTrace")
	}

	a, _, _ := runEcho(t, Inline(), 11)
	b, _, _ := runEcho(t, Inline(), 11)
	if a == "" || a != b {
		t.Error("same-seed traces differ (or empty)")
	}
}
