package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/transport"
)

// runEcho executes the echo workload on the given engine and returns the
// trace, steps and per-node outputs.
func runEcho(t *testing.T, e Engine, seed int64) (string, int, map[int]float64) {
	t.Helper()
	g := graph.Clique(4)
	r, err := New(Config{
		Graph:       g,
		Policy:      transport.NewRandomPolicy(seed),
		Engine:      e,
		RecordTrace: true,
	}, newEchoHandlers(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(g.Nodes())
	if !all {
		t.Fatal("echo nodes undecided")
	}
	return r.TraceString(), r.Steps(), outs
}

// TestEngineEquivalence is the sim-level half of the cross-engine
// equivalence guarantee: for the same seed and policy, the inline and
// goroutine engines must produce byte-identical delivery traces and
// identical outputs.
func TestEngineEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		inTrace, inSteps, inOuts := runEcho(t, Inline(), seed)
		goTrace, goSteps, goOuts := runEcho(t, Goroutine(), seed)
		if inTrace != goTrace {
			t.Fatalf("seed %d: engines diverged:\ninline:\n%s\ngoroutine:\n%s", seed, inTrace, goTrace)
		}
		if inSteps != goSteps {
			t.Fatalf("seed %d: steps %d vs %d", seed, inSteps, goSteps)
		}
		for id, x := range inOuts {
			if goOuts[id] != x {
				t.Fatalf("seed %d: node %d output %v vs %v", seed, id, x, goOuts[id])
			}
		}
	}
}

// runEchoPolicy is runEcho with a caller-chosen policy, for exercising the
// parallel engine's windowed (fifo) and serial-fallback (random) paths.
func runEchoPolicy(t *testing.T, e Engine, policy transport.Policy) (string, int, map[int]float64) {
	t.Helper()
	g := graph.Clique(4)
	r, err := New(Config{
		Graph:       g,
		Policy:      policy,
		Engine:      e,
		RecordTrace: true,
	}, newEchoHandlers(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	outs, all := r.Outputs(g.Nodes())
	if !all {
		t.Fatal("echo nodes undecided")
	}
	return r.TraceString(), r.Steps(), outs
}

// TestParallelEngineEquivalence checks the parallel engine against inline
// at several worker counts, on both the windowed path (fifo is
// injection-immune) and the serial fallback (random is not).
func TestParallelEngineEquivalence(t *testing.T) {
	policies := map[string]func() transport.Policy{
		"fifo":   func() transport.Policy { return transport.FIFOPolicy{} },
		"random": func() transport.Policy { return transport.NewRandomPolicy(7) },
	}
	for pname, mk := range policies {
		inTrace, inSteps, inOuts := runEchoPolicy(t, Inline(), mk())
		for _, workers := range []int{1, 2, 3, 8} {
			pTrace, pSteps, pOuts := runEchoPolicy(t, Parallel(workers), mk())
			if pTrace != inTrace {
				t.Fatalf("%s workers=%d: traces diverged:\ninline:\n%s\nparallel:\n%s",
					pname, workers, inTrace, pTrace)
			}
			if pSteps != inSteps {
				t.Fatalf("%s workers=%d: steps %d vs %d", pname, workers, pSteps, inSteps)
			}
			for id, x := range inOuts {
				if pOuts[id] != x {
					t.Fatalf("%s workers=%d: node %d output %v vs %v", pname, workers, id, pOuts[id], x)
				}
			}
		}
	}
}

// TestEngineDefaultIsInline pins the default: a nil Config.Engine must
// resolve to the inline engine and still match the goroutine engine.
func TestEngineDefaultIsInline(t *testing.T) {
	g := graph.DirectedCycle(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}, RecordTrace: true},
		newEchoHandlers(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.cfg.Engine.Name(); got != "inline" {
		t.Fatalf("default engine = %q, want inline", got)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 6 {
		t.Errorf("steps = %d, want 6", r.Steps())
	}
}

func TestEngineByName(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"", "inline"},
		{"inline", "inline"},
		{"goroutine", "goroutine"},
		{"parallel", "parallel"},
	} {
		e, err := EngineByName(tc.name)
		if err != nil || e.Name() != tc.want {
			t.Errorf("EngineByName(%q) = %v, %v", tc.name, e, err)
		}
	}
	if _, err := EngineByName("warp-drive"); err == nil {
		t.Error("unknown engine accepted")
	}
	names := EngineNames()
	want := []string{"goroutine", "inline", "parallel"}
	if len(names) != len(want) {
		t.Fatalf("EngineNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("EngineNames()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

// TestNewEngineWorkers pins the worker-count contract: the parallel engine
// accepts a count, the single-threaded engines reject a non-zero one, and
// the catalog advertises which is which.
func TestNewEngineWorkers(t *testing.T) {
	if e, err := NewEngine("parallel", 4); err != nil || e.Name() != "parallel" {
		t.Errorf("NewEngine(parallel, 4) = %v, %v", e, err)
	}
	for _, name := range []string{"inline", "goroutine"} {
		if _, err := NewEngine(name, 4); err == nil {
			t.Errorf("NewEngine(%s, 4) accepted a worker count", name)
		}
		if _, err := NewEngine(name, 0); err != nil {
			t.Errorf("NewEngine(%s, 0) = %v", name, err)
		}
	}
	if _, err := NewEngine("warp-drive", 0); err == nil {
		t.Error("unknown engine accepted")
	}
	workers := map[string]bool{}
	for _, info := range Engines() {
		if info.Doc == "" {
			t.Errorf("engine %q has no doc line", info.Name)
		}
		workers[info.Name] = info.Workers
	}
	if !workers["parallel"] || workers["inline"] || workers["goroutine"] {
		t.Errorf("Engines() worker flags = %v", workers)
	}
}

// TestTraceRecording checks that traces are recorded only on request and
// that repeated runs of the same seed yield the same trace bytes.
func TestTraceRecording(t *testing.T) {
	g := graph.Clique(3)
	r, err := New(Config{Graph: g, Policy: transport.FIFOPolicy{}}, newEchoHandlers(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Trace()) != 0 || r.TraceString() != "" {
		t.Error("trace recorded without RecordTrace")
	}

	a, _, _ := runEcho(t, Inline(), 11)
	b, _, _ := runEcho(t, Inline(), 11)
	if a == "" || a != b {
		t.Error("same-seed traces differ (or empty)")
	}
}
