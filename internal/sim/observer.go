package sim

import (
	"fmt"

	"repro/internal/transport"
)

// EventType discriminates the streaming events a Runner reports.
type EventType int

// Event types, in the order a run produces them.
const (
	// EventDeliver fires once per delivery, before the handler runs.
	EventDeliver EventType = iota + 1
	// EventHold fires when a freshly sent message is withheld by the
	// configured hold rule instead of becoming deliverable.
	EventHold
	// EventRelease fires when withheld messages re-enter the pending pool;
	// Count is how many were released.
	EventRelease
	// EventRound fires when a handler records a new per-round value (one
	// event per completed round, per history-recording node).
	EventRound
)

// String names the event type for renderings and logs.
func (t EventType) String() string {
	switch t {
	case EventDeliver:
		return "deliver"
	case EventHold:
		return "hold"
	case EventRelease:
		return "release"
	case EventRound:
		return "round"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one observation from a running execution. Step is the delivery
// count at emission time. Message is set for EventDeliver and EventHold;
// Count for EventRelease; Node, Round and Value for EventRound.
type Event struct {
	Type    EventType
	Step    int
	Message transport.Message
	Count   int
	Node    int
	Round   int
	Value   float64
}

// Observer receives streaming events from a Runner as the execution
// progresses — live metrics, progress bars, JSONL emitters — without
// waiting for the post-hoc result. Observe is called synchronously from the
// delivery loop on the runner's goroutine: implementations must not call
// back into the Runner and should return quickly. A nil observer costs the
// run nothing (a single pointer test per delivery).
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// MultiObserver fans each event out to every member, in order.
type MultiObserver []Observer

// Observe implements Observer.
func (m MultiObserver) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// historyProvider is implemented by protocol machines that record per-round
// state values; the runner streams growth of that history as EventRound.
type historyProvider interface{ History() []float64 }

// roundWatch tracks how much of each handler's round history has already
// been streamed, so each completed round is reported exactly once.
type roundWatch struct {
	seen []int
}

func newRoundWatch(n int) *roundWatch { return &roundWatch{seen: make([]int, n)} }

// emit streams any rounds node has recorded since the last check.
func (w *roundWatch) emit(node int, h Handler, step int, obs Observer) {
	hp, ok := h.(historyProvider)
	if !ok {
		return
	}
	hist := hp.History()
	for r := w.seen[node]; r < len(hist); r++ {
		obs.Observe(Event{Type: EventRound, Step: step, Node: node, Round: r + 1, Value: hist[r]})
	}
	w.seen[node] = len(hist)
}
