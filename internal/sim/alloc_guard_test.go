package sim_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestRunnerAllocationBudget is the alloc-regression fence for the delivery
// core: a whole clique8 relay execution (runner construction included) must
// stay within a fixed allocation budget per run. The budgets are ~2x the
// measured numbers after the arena/batching refactor (random ~24, fifo ~23,
// bounded ~26 allocs per run, of which 9 are the benchmark handlers
// themselves) and comfortably below the pre-refactor fifo/bounded numbers
// (57/61), so reintroducing per-message index maps or per-invocation boxing
// fails this test long before it shows up in profiles. CI also runs the
// pool/runner benchmarks with -benchmem for visibility.
func TestRunnerAllocationBudget(t *testing.T) {
	g := graph.Clique(8)
	budgets := []struct {
		name   string
		make   func() transport.Policy
		budget float64
	}{
		{"random", func() transport.Policy { return transport.NewRandomPolicy(1) }, 48},
		{"fifo", func() transport.Policy { return transport.FIFOPolicy{} }, 48},
		{"bounded", func() transport.Policy { return transport.NewBoundedDelayPolicy(8, 1) }, 52},
	}
	for _, tc := range budgets {
		t.Run(tc.name, func(t *testing.T) {
			got := testing.AllocsPerRun(10, func() {
				hs := make([]sim.Handler, g.N())
				for j := range hs {
					hs[j] = &benchRelay{id: j, hops: 64}
				}
				r, err := sim.New(sim.Config{Graph: g, Policy: tc.make()}, hs)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Run(); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.budget {
				t.Errorf("clique8 run allocates %.0f times, budget %.0f", got, tc.budget)
			}
		})
	}
}

// TestPoolChurnAllocFree pins the steady-state guarantee: once a pool has
// reached its in-flight high-water mark, the Add/Take delivery cycle does
// not allocate — for the random path and through the ordered Seq index.
func TestPoolChurnAllocFree(t *testing.T) {
	mk := func() *transport.Pool {
		p := transport.NewPool(nil, transport.NewStats())
		for i := 0; i < 32; i++ {
			p.Add(transport.Message{From: 0, To: 1, Payload: benchRelayPayload(1)})
		}
		return p
	}
	random := mk()
	got := testing.AllocsPerRun(1000, func() {
		m := random.Take(int(random.View().At(0).Seq) % random.PendingLen())
		random.Add(m)
	})
	if got != 0 {
		t.Errorf("random churn allocates %.2f per op", got)
	}
	ordered := mk()
	ordered.View().OldestIndex() // build the index
	got = testing.AllocsPerRun(1000, func() {
		m := ordered.Take(ordered.View().OldestIndex())
		ordered.Add(m)
	})
	if got != 0 {
		t.Errorf("ordered churn allocates %.2f per op", got)
	}
}
