package sim_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// benchRelay is a minimal protocol: each delivery does O(1) work and
// forwards one message around the ring, so a full run's measured cost is
// almost entirely the runner/pool machinery — the workload the
// alloc-regression smoke tracks (see CI).
type benchRelay struct {
	id   int
	hops int
	got  int
}

type benchRelayPayload int

func (benchRelayPayload) Kind() string { return "RELAY" }

func (r *benchRelay) ID() int { return r.id }

func (r *benchRelay) Start(out *sim.Outbox) {
	if r.hops > 0 {
		out.Broadcast(benchRelayPayload(r.hops))
	}
}

func (r *benchRelay) Deliver(m transport.Message, out *sim.Outbox) {
	r.got++
	if p := m.Payload.(benchRelayPayload); p > 1 {
		out.Send((r.id+1)%out.Graph().N(), p-1)
	}
}

func (r *benchRelay) Output() (float64, bool) { return float64(r.got), true }

// BenchmarkRunnerClique8 measures one complete simulator execution per op on
// the clique8 relay workload (~3.6k deliveries), for each delivery policy.
// allocs/op is the whole-run allocation bill of the sim+transport layers:
// runner construction, pool storage, policy state, index maintenance. The
// alloc-regression smoke in CI compares this against the checked-in
// baseline.
func BenchmarkRunnerClique8(b *testing.B) {
	g := graph.Clique(8)
	policies := []struct {
		name string
		make func(seed int64) transport.Policy
	}{
		{"random", func(seed int64) transport.Policy { return transport.NewRandomPolicy(seed) }},
		{"fifo", func(int64) transport.Policy { return transport.FIFOPolicy{} }},
		{"bounded", func(seed int64) transport.Policy { return transport.NewBoundedDelayPolicy(8, seed) }},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hs := make([]sim.Handler, g.N())
				for j := range hs {
					hs[j] = &benchRelay{id: j, hops: 64}
				}
				r, err := sim.New(sim.Config{Graph: g, Policy: pc.make(1)}, hs)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerClique8Traced is the same workload with trace recording on:
// the trace buffer is the other allocation sink the scale refactor bounds.
func BenchmarkRunnerClique8Traced(b *testing.B) {
	g := graph.Clique(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hs := make([]sim.Handler, g.N())
		for j := range hs {
			hs[j] = &benchRelay{id: j, hops: 64}
		}
		r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(1), RecordTrace: true}, hs)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
