package sim

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/transport"
)

// parallelEngine executes handler invocations across a worker pool with
// deterministic, inline-identical results. The runner draws a whole window
// of deliveries up front (only legal when the policy is injection-immune —
// see transport.InjectionImmune and Runner.runWindowed), the engine invokes
// the handlers speculatively in parallel, and the runner then commits each
// invocation's outbox into the pool in the window's canonical order. The
// trace, Stats and link-fault accounting are byte-for-byte identical to the
// inline engine for every seed and worker count; workers change wall-clock
// only.
//
// Parallel invocation is safe because deliveries within a window are
// independent by construction: a message sent during the window cannot also
// be delivered in it (injection-immune policies pick only window-start
// messages), so no handler ever observes a window-mate's output. The only
// ordering constraint is per destination — two deliveries to the same node
// mutate that node's state — which the engine preserves by grouping the
// window by destination and running each group sequentially on one worker.
//
// When the run's configuration is not window-eligible (stateful policy,
// hold rule, observer, stop/release predicates) the runner falls back to
// the serial per-delivery loop and this engine behaves exactly like inline.
type parallelEngine struct {
	workers int
}

// Parallel returns the speculative-delivery engine. workers < 1 selects the
// shared GOMAXPROCS-derived default; inside an active sweep the count is
// clamped to the lane's fair share (par.NestedWorkers) so sweep workers ×
// engine workers never oversubscribe the machine.
func Parallel(workers int) Engine { return parallelEngine{workers: workers} }

func (e parallelEngine) Name() string { return "parallel" }

func (e parallelEngine) Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker {
	workers := par.NestedWorkers(e.workers)
	v := &parallelInvoker{
		handlers: handlers,
		stats:    stats,
		workers:  workers,
		lanes:    make([]lane, workers),
		groupOf:  make([]int32, len(handlers)),
	}
	v.out.from = -1
	v.out.g = g
	v.out.stats = stats
	for i := range v.lanes {
		v.lanes[i].out.g = g
		v.lanes[i].out.stats = &v.lanes[i].stats
	}
	for i := range v.groupOf {
		v.groupOf[i] = -1
	}
	return v
}

// lane is one worker's private staging area. Handlers invoked on the lane
// send through its private Outbox (so Outbox drop accounting never races),
// and the sends accumulate in buf with one span per invocation; after the
// window joins, the invoker materializes the per-delivery outboxes from the
// spans and merges the drop counters.
type lane struct {
	out   Outbox
	stats transport.Stats // private: only Dropped is ever touched
	buf   []transport.Message
	spans []span
}

// span records where one invocation's sends landed in the lane buffer.
type span struct {
	batchIdx   int32
	start, end int32
}

// deliverOne runs a single handler invocation on this lane and records its
// sends as a span.
func (l *lane) deliverOne(h Handler, m transport.Message, batchIdx int32) {
	l.out.from = h.ID()
	l.out.msgs = l.out.msgs[:0]
	h.Deliver(m, &l.out)
	start := int32(len(l.buf))
	l.buf = append(l.buf, l.out.msgs...)
	l.spans = append(l.spans, span{batchIdx: batchIdx, start: start, end: int32(len(l.buf))})
}

type parallelInvoker struct {
	handlers []Handler
	stats    *transport.Stats
	workers  int
	lanes    []lane

	// out serves the serial Start/Deliver paths (handler starts, and the
	// whole run when the configuration is not window-eligible), exactly like
	// the inline engine's reusable outbox.
	out Outbox

	// Window scratch, reused across DeliverBatch calls. groupOf maps node ID
	// to its group index for the current window (-1 outside one); groups
	// lists destinations in first-occurrence order with their batch indices.
	groupOf []int32
	groups  []batchGroup
	ngroups int
	outs    [][]transport.Message
}

// batchGroup collects one destination's deliveries within a window.
type batchGroup struct {
	node  int
	items []int32 // indices into the window batch, in batch order
}

func (v *parallelInvoker) reset(node int) *Outbox {
	v.out.from = v.handlers[node].ID()
	v.out.msgs = v.out.msgs[:0]
	return &v.out
}

func (v *parallelInvoker) Start(node int) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Start(out)
	return out.msgs
}

func (v *parallelInvoker) Deliver(node int, m transport.Message) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Deliver(m, out)
	return out.msgs
}

func (v *parallelInvoker) Close() {}

// DeliverBatch implements BatchInvoker: it invokes the handlers for every
// delivery in batch — in parallel across lanes, sequentially per
// destination — and returns each invocation's sends, indexed like batch.
// The returned slices alias lane buffers that the next DeliverBatch call
// reuses, matching the Invoker contract that the runner drains results
// before the next invocation.
func (v *parallelInvoker) DeliverBatch(batch []transport.Message) [][]transport.Message {
	outs := v.outs[:0]
	for range batch {
		outs = append(outs, nil)
	}
	v.outs = outs

	// Reset every lane, not just the ones this window will use: the commit
	// loop below walks all lanes, and a lane idle this window must not
	// contribute last window's spans.
	for li := range v.lanes {
		l := &v.lanes[li]
		l.buf = l.buf[:0]
		l.spans = l.spans[:0]
	}

	// Group the window by destination in first-occurrence order, preserving
	// batch order within each group (same-node deliveries must stay
	// sequential and ordered — they share handler state).
	v.ngroups = 0
	for bi, m := range batch {
		gi := v.groupOf[m.To]
		if gi < 0 {
			gi = int32(v.ngroups)
			v.groupOf[m.To] = gi
			if v.ngroups == len(v.groups) {
				v.groups = append(v.groups, batchGroup{})
			}
			v.groups[v.ngroups].node = m.To
			v.groups[v.ngroups].items = v.groups[v.ngroups].items[:0]
			v.ngroups++
		}
		v.groups[gi].items = append(v.groups[gi].items, int32(bi))
	}
	for gi := 0; gi < v.ngroups; gi++ {
		v.groupOf[v.groups[gi].node] = -1
	}

	workers := v.workers
	if workers > v.ngroups {
		workers = v.ngroups
	}
	if workers <= 1 {
		// One lane (or one destination): run the window on the caller's
		// goroutine, same code path as the parallel case minus the spawn.
		v.runLane(0, 1, batch)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				v.runLane(w, workers, batch)
			}(w)
		}
		wg.Wait()
	}

	// Commit staging: materialize the per-delivery outboxes from the lane
	// spans and fold the lanes' private drop counters into the run stats.
	// Everything here is a pure function of the window content — lane
	// assignment is round-robin by group index, spans are appended in group
	// order — so the result is identical for every worker count.
	for li := range v.lanes {
		l := &v.lanes[li]
		for _, sp := range l.spans {
			outs[sp.batchIdx] = l.buf[sp.start:sp.end:sp.end]
		}
		if l.stats.Dropped > 0 {
			v.stats.AddDropped(l.stats.Dropped)
			l.stats.Dropped = 0
		}
	}
	return outs
}

// runLane executes lane w's share of the window: groups w, w+workers,
// w+2·workers, …, each group's deliveries in batch order.
func (v *parallelInvoker) runLane(w, workers int, batch []transport.Message) {
	l := &v.lanes[w]
	for gi := w; gi < v.ngroups; gi += workers {
		g := &v.groups[gi]
		h := v.handlers[g.node]
		for _, bi := range g.items {
			l.deliverOne(h, batch[bi], bi)
		}
	}
}
