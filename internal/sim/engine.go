package sim

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/transport"
)

// Engine abstracts where handler code executes. The delivery loop itself —
// policy picks, hold releases, stop conditions, pool bookkeeping — lives in
// Runner and is engine-independent, so two engines given the same graph,
// seed and policy produce byte-identical delivery traces and outputs;
// engines differ only in how a Start/Deliver invocation reaches the
// handler.
//
// Engines are stateless and safe to share across concurrent runs; all
// per-run state lives in the Invoker returned by Bind.
type Engine interface {
	// Name identifies the engine ("inline", "goroutine").
	Name() string
	// Bind prepares one execution over the given handlers. The returned
	// invoker is single-run and not goroutine-safe; Close must be called
	// when the run ends.
	Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker
}

// Invoker dispatches handler invocations for one execution and returns the
// messages each invocation sent.
type Invoker interface {
	Start(node int) []transport.Message
	Deliver(node int, m transport.Message) []transport.Message
	Close()
}

// inlineEngine invokes handlers directly on the runner's goroutine: no
// channels, no context switches. It is the default engine — roughly an
// order of magnitude cheaper per delivery than the goroutine engine (see
// the engine-comparison benchmarks) with identical semantics for handlers
// that, like all protocol machines here, do not block in Deliver.
type inlineEngine struct{}

// Inline returns the single-threaded direct-call engine (the default).
func Inline() Engine { return inlineEngine{} }

func (inlineEngine) Name() string { return "inline" }

func (inlineEngine) Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker {
	v := &inlineInvoker{handlers: handlers, g: g, stats: stats}
	v.out.g = g
	v.out.stats = stats
	return v
}

type inlineInvoker struct {
	handlers []Handler
	g        *graph.Graph
	stats    *transport.Stats
	// out is reused across invocations: the runner drains the returned
	// message slice into the pool (copying each Message) before the next
	// invocation, and no handler retains the Outbox past its invocation —
	// the contract stated on Handler.
	out Outbox
}

func (v *inlineInvoker) reset(node int) *Outbox {
	v.out.from = v.handlers[node].ID()
	v.out.msgs = v.out.msgs[:0]
	return &v.out
}

func (v *inlineInvoker) Start(node int) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Start(out)
	return out.msgs
}

func (v *inlineInvoker) Deliver(node int, m transport.Message) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Deliver(m, out)
	return out.msgs
}

func (v *inlineInvoker) Close() {}

// goroutineEngine runs each handler on its own goroutine with channel-based
// dispatch — the message-passing-process execution model the simulator
// started with. It is kept both as the semantic reference for the
// cross-engine equivalence tests and for handlers that want real goroutine
// isolation.
type goroutineEngine struct{}

// Goroutine returns the goroutine-per-node engine.
func Goroutine() Engine { return goroutineEngine{} }

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker {
	v := &goroutineInvoker{procs: make([]*proc, len(handlers))}
	for i, h := range handlers {
		v.procs[i] = startProc(h, g, stats)
	}
	return v
}

type goroutineInvoker struct {
	procs []*proc
}

func (v *goroutineInvoker) Start(node int) []transport.Message {
	return v.procs[node].invoke(procReq{start: true})
}

func (v *goroutineInvoker) Deliver(node int, m transport.Message) []transport.Message {
	return v.procs[node].invoke(procReq{msg: m})
}

func (v *goroutineInvoker) Close() {
	for _, p := range v.procs {
		p.stop()
	}
}

type procReq struct {
	start bool
	msg   transport.Message
	reply chan []transport.Message
}

type proc struct {
	h     Handler
	in    chan procReq
	done  chan struct{}
	reply chan []transport.Message
}

func startProc(h Handler, g *graph.Graph, stats *transport.Stats) *proc {
	p := &proc{
		h:     h,
		in:    make(chan procReq),
		done:  make(chan struct{}),
		reply: make(chan []transport.Message, 1),
	}
	go func() {
		defer close(p.done)
		// One Outbox per proc, reused across invocations: the runner drains
		// the returned slice before the next invoke round-trips, and
		// handlers must not retain it (the Handler contract) — mirroring
		// the inline engine's reuse.
		out := &Outbox{from: h.ID(), g: g, stats: stats}
		for req := range p.in {
			out.msgs = out.msgs[:0]
			if req.start {
				h.Start(out)
			} else {
				h.Deliver(req.msg, out)
			}
			req.reply <- out.msgs
		}
	}()
	return p
}

func (p *proc) invoke(req procReq) []transport.Message {
	req.reply = p.reply
	p.in <- req
	return <-req.reply
}

func (p *proc) stop() {
	close(p.in)
	<-p.done
}

var engines = map[string]Engine{
	"inline":    Inline(),
	"goroutine": Goroutine(),
}

// EngineByName resolves an engine by name; the empty string selects the
// default inline engine.
func EngineByName(name string) (Engine, error) {
	if name == "" {
		return Inline(), nil
	}
	e, ok := engines[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown engine %q (valid values are: %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
