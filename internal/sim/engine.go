package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/transport"
)

// Engine abstracts where handler code executes. The delivery loop itself —
// policy picks, hold releases, stop conditions, pool bookkeeping — lives in
// Runner and is engine-independent, so two engines given the same graph,
// seed and policy produce byte-identical delivery traces and outputs;
// engines differ only in how a Start/Deliver invocation reaches the
// handler.
//
// Engines are stateless and safe to share across concurrent runs; all
// per-run state lives in the Invoker returned by Bind.
type Engine interface {
	// Name identifies the engine ("inline", "goroutine").
	Name() string
	// Bind prepares one execution over the given handlers. The returned
	// invoker is single-run and not goroutine-safe; Close must be called
	// when the run ends.
	Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker
}

// Invoker dispatches handler invocations for one execution and returns the
// messages each invocation sent.
type Invoker interface {
	Start(node int) []transport.Message
	Deliver(node int, m transport.Message) []transport.Message
	Close()
}

// BatchInvoker is the optional fast path an engine exposes when it can
// execute a whole window of deliveries at once. The runner only uses it
// when the window's delivery order can be fixed before any handler runs
// (see Runner.windowedEligible); otherwise a BatchInvoker engine runs
// through the ordinary per-delivery Invoker methods.
type BatchInvoker interface {
	Invoker
	// DeliverBatch invokes the handler for every delivery in batch and
	// returns each invocation's sends, indexed like batch. The runner
	// commits the results (trace, injection, delayed-release) in batch
	// order; the returned slices are valid until the next invocation.
	DeliverBatch(batch []transport.Message) [][]transport.Message
}

// inlineEngine invokes handlers directly on the runner's goroutine: no
// channels, no context switches. It is the default engine — roughly an
// order of magnitude cheaper per delivery than the goroutine engine (see
// the engine-comparison benchmarks) with identical semantics for handlers
// that, like all protocol machines here, do not block in Deliver.
type inlineEngine struct{}

// Inline returns the single-threaded direct-call engine (the default).
func Inline() Engine { return inlineEngine{} }

func (inlineEngine) Name() string { return "inline" }

func (inlineEngine) Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker {
	v := &inlineInvoker{handlers: handlers, g: g, stats: stats}
	v.out.g = g
	v.out.stats = stats
	return v
}

type inlineInvoker struct {
	handlers []Handler
	g        *graph.Graph
	stats    *transport.Stats
	// out is reused across invocations: the runner drains the returned
	// message slice into the pool (copying each Message) before the next
	// invocation, and no handler retains the Outbox past its invocation —
	// the contract stated on Handler.
	out Outbox
}

func (v *inlineInvoker) reset(node int) *Outbox {
	v.out.from = v.handlers[node].ID()
	v.out.msgs = v.out.msgs[:0]
	return &v.out
}

func (v *inlineInvoker) Start(node int) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Start(out)
	return out.msgs
}

func (v *inlineInvoker) Deliver(node int, m transport.Message) []transport.Message {
	out := v.reset(node)
	v.handlers[node].Deliver(m, out)
	return out.msgs
}

func (v *inlineInvoker) Close() {}

// goroutineEngine runs each handler on its own goroutine with channel-based
// dispatch — the message-passing-process execution model the simulator
// started with. It is kept both as the semantic reference for the
// cross-engine equivalence tests and for handlers that want real goroutine
// isolation.
type goroutineEngine struct{}

// Goroutine returns the goroutine-per-node engine.
func Goroutine() Engine { return goroutineEngine{} }

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) Bind(handlers []Handler, g *graph.Graph, stats *transport.Stats) Invoker {
	v := &goroutineInvoker{procs: make([]*proc, len(handlers))}
	for i, h := range handlers {
		v.procs[i] = startProc(h, g, stats)
	}
	return v
}

type goroutineInvoker struct {
	procs []*proc
}

func (v *goroutineInvoker) Start(node int) []transport.Message {
	return v.procs[node].invoke(procReq{start: true})
}

func (v *goroutineInvoker) Deliver(node int, m transport.Message) []transport.Message {
	return v.procs[node].invoke(procReq{msg: m})
}

func (v *goroutineInvoker) Close() {
	for _, p := range v.procs {
		p.stop()
	}
}

type procReq struct {
	start bool
	msg   transport.Message
	reply chan []transport.Message
}

type proc struct {
	h     Handler
	in    chan procReq
	done  chan struct{}
	reply chan []transport.Message
}

func startProc(h Handler, g *graph.Graph, stats *transport.Stats) *proc {
	p := &proc{
		h:     h,
		in:    make(chan procReq),
		done:  make(chan struct{}),
		reply: make(chan []transport.Message, 1),
	}
	go func() {
		defer close(p.done)
		// One Outbox per proc, reused across invocations: the runner drains
		// the returned slice before the next invoke round-trips, and
		// handlers must not retain it (the Handler contract) — mirroring
		// the inline engine's reuse.
		out := &Outbox{from: h.ID(), g: g, stats: stats}
		for req := range p.in {
			out.msgs = out.msgs[:0]
			if req.start {
				h.Start(out)
			} else {
				h.Deliver(req.msg, out)
			}
			req.reply <- out.msgs
		}
	}()
	return p
}

func (p *proc) invoke(req procReq) []transport.Message {
	req.reply = p.reply
	p.in <- req
	return <-req.reply
}

func (p *proc) stop() {
	close(p.in)
	<-p.done
}

// EngineInfo describes a registered engine for catalogs (abacsim -list).
type EngineInfo struct {
	Name string
	// Doc is a one-line description of the engine's execution model.
	Doc string
	// Workers reports whether the engine accepts a worker count; engines
	// without it reject a non-zero workers argument to NewEngine.
	Workers bool
}

// EngineBuilder constructs an engine instance. workers is the requested
// worker count (0 means the engine's default); builders for engines whose
// Info.Workers is false receive 0 always — NewEngine rejects the flag
// before they run.
type EngineBuilder func(workers int) Engine

type engineEntry struct {
	info  EngineInfo
	build EngineBuilder
}

var (
	engineMu      sync.RWMutex
	engineEntries = map[string]engineEntry{}
)

// RegisterEngine adds a named engine constructor to the registry, mirroring
// the policy/protocol/adversary registries. Names must be unique and
// non-empty; re-registration panics, since it indicates two packages
// fighting over a name rather than a runtime condition. Registration and
// lookup are mutex-guarded, so init-time registration is race-clean even
// when tests resolve engines concurrently.
func RegisterEngine(info EngineInfo, build EngineBuilder) {
	engineMu.Lock()
	defer engineMu.Unlock()
	if info.Name == "" || build == nil {
		panic("sim: RegisterEngine with empty name or nil builder")
	}
	if _, dup := engineEntries[info.Name]; dup {
		panic(fmt.Sprintf("sim: engine %q registered twice", info.Name))
	}
	engineEntries[info.Name] = engineEntry{info: info, build: build}
}

// NewEngine instantiates a registered engine by name. The empty name
// selects the default inline engine. workers is the worker count for
// engines that take one (0 means the engine default, one worker per CPU);
// passing a non-zero count to a single-threaded engine is an error rather
// than a silent no-op.
func NewEngine(name string, workers int) (Engine, error) {
	if name == "" {
		name = "inline"
	}
	engineMu.RLock()
	entry, ok := engineEntries[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown engine %q (valid values are: %v)", name, EngineNames())
	}
	if workers != 0 && !entry.info.Workers {
		return nil, fmt.Errorf("sim: engine %q does not take a worker count", name)
	}
	return entry.build(workers), nil
}

// EngineByName resolves an engine by name with its default worker count;
// the empty string selects the default inline engine.
func EngineByName(name string) (Engine, error) {
	return NewEngine(name, 0)
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engineEntries))
	for name := range engineEntries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Engines returns the registered engine descriptors, sorted by name — the
// catalog form behind abacsim -list.
func Engines() []EngineInfo {
	engineMu.RLock()
	defer engineMu.RUnlock()
	infos := make([]EngineInfo, 0, len(engineEntries))
	for _, e := range engineEntries {
		infos = append(infos, e.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

func init() {
	RegisterEngine(EngineInfo{
		Name: "inline",
		Doc:  "direct handler calls on the runner goroutine (default, fastest single-core)",
	}, func(int) Engine { return Inline() })
	RegisterEngine(EngineInfo{
		Name: "goroutine",
		Doc:  "one goroutine per node with channel dispatch (semantic reference model)",
	}, func(int) Engine { return Goroutine() })
	RegisterEngine(EngineInfo{
		Name:    "parallel",
		Doc:     "speculative parallel delivery with canonical commit; trace-identical to inline",
		Workers: true,
	}, func(workers int) Engine { return Parallel(workers) })
}
