// Package rbc implements Bracha-style reliable broadcast for complete
// networks with n > 3f, the substrate of the Abraham–Amit–Dolev baseline
// [1] that this paper generalizes to directed networks. The classic
// INIT/ECHO/READY protocol guarantees that all nonfaulty nodes deliver the
// same content per (origin, tag) slot, and that they deliver at all if the
// origin is nonfaulty.
package rbc

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Content is an opaque broadcast payload; RBCKey must canonically encode it
// so that equality of contents is equality of keys.
type Content interface {
	RBCKey() string
}

// Num is a float64 broadcast content keyed by its exact bit pattern, so
// distinct NaN payloads and signed zeros stay distinct slots. It is shared
// by the approximate tier (aad reports reference it) and the exact tier
// (acs value broadcasts).
type Num float64

// RBCKey implements Content.
func (v Num) RBCKey() string {
	return strconv.FormatUint(math.Float64bits(float64(v)), 16)
}

// Phase is the protocol step of an RBC message.
type Phase int

// Message phases.
const (
	PhaseInit Phase = iota + 1
	PhaseEcho
	PhaseReady
)

func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "INIT"
	case PhaseEcho:
		return "ECHO"
	case PhaseReady:
		return "READY"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Msg is the wire payload of the broadcast protocol.
type Msg struct {
	Phase   Phase
	Origin  int
	Tag     string // caller-chosen slot label, e.g. "r3/value"
	Content Content
}

// Kind implements transport.Payload.
func (m Msg) Kind() string { return "RBC-" + m.Phase.String() }

// Delivery is a reliably delivered broadcast.
type Delivery struct {
	Origin  int
	Tag     string
	Content Content
}

type slotKey struct {
	origin int
	tag    string
}

type slotState struct {
	sentEcho  bool
	sentReady bool
	delivered bool
	echoes    map[string]graph.Set // content key -> echoing senders
	readies   map[string]graph.Set
	contents  map[string]Content
}

// Broadcaster is the per-node reliable-broadcast engine. It is driven by
// the owning handler's event loop (single goroutine), so it needs no
// internal locking.
type Broadcaster struct {
	n, f  int
	id    int
	slots map[slotKey]*slotState
	hook  func(Delivery, *sim.Outbox)
}

// New returns a Broadcaster for node id in an n-node clique tolerating f
// Byzantine faults; it requires n > 3f.
func New(n, f, id int) (*Broadcaster, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("rbc: n=%d must exceed 3f=%d", n, 3*f)
	}
	return &Broadcaster{n: n, f: f, id: id, slots: make(map[slotKey]*slotState)}, nil
}

// OnDeliver registers fn as the delivery hook: every delivery is handed to
// fn at the moment it happens, with the outbox that is live at that point,
// in addition to being returned from Broadcast/Handle. fn may re-enter the
// Broadcaster (e.g. start the next round's Broadcast); slot state is
// monotone, so re-entrant calls are safe on the single-goroutine event
// loops that drive it. Register before the first Broadcast or Handle.
func (b *Broadcaster) OnDeliver(fn func(Delivery, *sim.Outbox)) { b.hook = fn }

func (b *Broadcaster) slot(k slotKey) *slotState {
	s, ok := b.slots[k]
	if !ok {
		s = &slotState{
			echoes:   make(map[string]graph.Set),
			readies:  make(map[string]graph.Set),
			contents: make(map[string]Content),
		}
		b.slots[k] = s
	}
	return s
}

// Broadcast initiates a reliable broadcast of content under the given tag.
// The INIT is sent to all neighbors and self-processed; resulting
// deliveries (possible in a one-node system) are returned.
func (b *Broadcaster) Broadcast(tag string, content Content, out *sim.Outbox) []Delivery {
	msg := Msg{Phase: PhaseInit, Origin: b.id, Tag: tag, Content: content}
	out.Broadcast(msg)
	return b.Handle(transport.Message{From: b.id, To: b.id, Payload: msg}, out)
}

// Handle processes one incoming RBC message, emitting any protocol messages
// through out and returning newly delivered broadcasts.
func (b *Broadcaster) Handle(m transport.Message, out *sim.Outbox) []Delivery {
	msg, ok := m.Payload.(Msg)
	if !ok || msg.Content == nil {
		return nil
	}
	key := slotKey{origin: msg.Origin, tag: msg.Tag}
	s := b.slot(key)
	ck := msg.Content.RBCKey()
	if _, seen := s.contents[ck]; !seen {
		s.contents[ck] = msg.Content
	}

	switch msg.Phase {
	case PhaseInit:
		// Only the origin itself may INIT its slot; first INIT wins.
		if m.From != msg.Origin || s.sentEcho {
			return nil
		}
		s.sentEcho = true
		echo := Msg{Phase: PhaseEcho, Origin: msg.Origin, Tag: msg.Tag, Content: msg.Content}
		out.Broadcast(echo)
		return b.Handle(transport.Message{From: b.id, To: b.id, Payload: echo}, out)
	case PhaseEcho:
		if s.echoes[ck].Has(m.From) {
			return nil
		}
		s.echoes[ck] = s.echoes[ck].Add(m.From)
		return b.maybeAdvance(key, s, ck, out)
	case PhaseReady:
		if s.readies[ck].Has(m.From) {
			return nil
		}
		s.readies[ck] = s.readies[ck].Add(m.From)
		return b.maybeAdvance(key, s, ck, out)
	default:
		return nil
	}
}

func (b *Broadcaster) maybeAdvance(key slotKey, s *slotState, ck string, out *sim.Outbox) []Delivery {
	var deliveries []Delivery
	echoThreshold := (b.n + b.f + 2) / 2 // ceil((n+f+1)/2)
	if !s.sentReady && (s.echoes[ck].Count() >= echoThreshold || s.readies[ck].Count() >= b.f+1) {
		s.sentReady = true
		ready := Msg{Phase: PhaseReady, Origin: key.origin, Tag: key.tag, Content: s.contents[ck]}
		out.Broadcast(ready)
		deliveries = append(deliveries, b.Handle(transport.Message{From: b.id, To: b.id, Payload: ready}, out)...)
	}
	if !s.delivered && s.readies[ck].Count() >= 2*b.f+1 {
		s.delivered = true
		d := Delivery{Origin: key.origin, Tag: key.tag, Content: s.contents[ck]}
		deliveries = append(deliveries, d)
		if b.hook != nil {
			b.hook(d, out)
		}
	}
	return deliveries
}
