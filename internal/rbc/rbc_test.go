package rbc_test

import (
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// strContent is a trivial rbc.Content for tests.
type strContent string

func (s strContent) RBCKey() string { return string(s) }

// rbcNode drives one Broadcaster and records deliveries.
type rbcNode struct {
	id        int
	b         *rbc.Broadcaster
	toSend    map[string]rbc.Content // tag -> content broadcast at start
	delivered map[string]string      // origin/tag -> content key
}

func newRBCNode(t *testing.T, n, f, id int) *rbcNode {
	t.Helper()
	b, err := rbc.New(n, f, id)
	if err != nil {
		t.Fatal(err)
	}
	return &rbcNode{id: id, b: b, toSend: map[string]rbc.Content{}, delivered: map[string]string{}}
}

func (r *rbcNode) ID() int { return r.id }

func (r *rbcNode) Start(out *sim.Outbox) {
	for tag, c := range r.toSend {
		r.record(r.b.Broadcast(tag, c, out))
	}
}

func (r *rbcNode) Deliver(msg transport.Message, out *sim.Outbox) {
	r.record(r.b.Handle(msg, out))
}

func (r *rbcNode) record(ds []rbc.Delivery) {
	for _, d := range ds {
		r.delivered[strconv.Itoa(d.Origin)+"/"+d.Tag] = d.Content.RBCKey()
	}
}

func (r *rbcNode) Output() (float64, bool) { return 0, len(r.delivered) > 0 }

// byzantineInit equivocates: it sends INIT with different contents to
// different receivers.
type byzantineInit struct {
	id int
}

func (b *byzantineInit) ID() int { return b.id }

func (b *byzantineInit) Start(out *sim.Outbox) {
	for _, w := range out.Graph().Out(b.id) {
		out.Send(w, rbc.Msg{
			Phase:   rbc.PhaseInit,
			Origin:  b.id,
			Tag:     "t",
			Content: strContent("split-" + strconv.Itoa(w%2)),
		})
	}
}

func (b *byzantineInit) Deliver(transport.Message, *sim.Outbox) {}

func (b *byzantineInit) Output() (float64, bool) { return 0, false }

func runRBC(t *testing.T, handlers []sim.Handler, g *graph.Graph, seed int64) {
	t.Helper()
	r, err := sim.New(sim.Config{Graph: g, Policy: transport.NewRandomPolicy(seed)}, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRBCAllDeliverHonest(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	nodes := make([]*rbcNode, n)
	handlers := make([]sim.Handler, n)
	for i := 0; i < n; i++ {
		nodes[i] = newRBCNode(t, n, f, i)
		nodes[i].toSend["t"] = strContent("v" + strconv.Itoa(i))
		handlers[i] = nodes[i]
	}
	runRBC(t, handlers, g, 3)
	for i, node := range nodes {
		if len(node.delivered) != n {
			t.Errorf("node %d delivered %d broadcasts, want %d", i, len(node.delivered), n)
		}
	}
	// Agreement: all nodes deliver the same content per slot.
	for slot, want := range nodes[0].delivered {
		for i := 1; i < n; i++ {
			if got := nodes[i].delivered[slot]; got != want {
				t.Errorf("slot %s: node %d delivered %q, node 0 %q", slot, i, got, want)
			}
		}
	}
}

func TestRBCEquivocatorAgreement(t *testing.T) {
	// A Byzantine origin sends different INITs to different nodes; honest
	// nodes must still agree (they may deliver nothing, but never
	// different contents).
	const n, f = 4, 1
	g := graph.Clique(n)
	for seed := int64(0); seed < 30; seed++ {
		nodes := make([]*rbcNode, n)
		handlers := make([]sim.Handler, n)
		for i := 1; i < n; i++ {
			nodes[i] = newRBCNode(t, n, f, i)
			handlers[i] = nodes[i]
		}
		handlers[0] = &byzantineInit{id: 0}
		runRBC(t, handlers, g, seed)
		var seen string
		for i := 1; i < n; i++ {
			if c, ok := nodes[i].delivered["0/t"]; ok {
				if seen == "" {
					seen = c
				} else if c != seen {
					t.Fatalf("seed %d: honest nodes delivered %q and %q", seed, seen, c)
				}
			}
		}
	}
}

func TestRBCRejectsForeignInit(t *testing.T) {
	// An INIT claiming origin X sent by Y != X must be ignored.
	const n, f = 4, 1
	b, err := rbc.New(n, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Clique(n)
	col := sim.NewCollector(1, g)
	forged := rbc.Msg{Phase: rbc.PhaseInit, Origin: 0, Tag: "t", Content: strContent("x")}
	if ds := b.Handle(transport.Message{From: 2, To: 1, Payload: forged}, col); len(ds) != 0 {
		t.Error("forged INIT delivered")
	}
	if len(col.Messages()) != 0 {
		t.Error("forged INIT echoed")
	}
}

func TestRBCParameters(t *testing.T) {
	if _, err := rbc.New(3, 1, 0); err == nil {
		t.Error("n=3f accepted")
	}
	if _, err := rbc.New(4, 1, 0); err != nil {
		t.Errorf("n=3f+1 rejected: %v", err)
	}
}

// silentNode participates in nothing: with enough of them, echo quorums
// become unreachable.
type silentNode struct{ id int }

func (s *silentNode) ID() int                                { return s.id }
func (s *silentNode) Start(*sim.Outbox)                      {}
func (s *silentNode) Deliver(transport.Message, *sim.Outbox) {}
func (s *silentNode) Output() (float64, bool)                { return 0, false }

// TestRBCNoDeliveryWithoutEchoQuorum: with two of four nodes silent only
// two echoes can ever exist, below the ceil((n+f+1)/2)=3 threshold, so no
// slot may deliver anywhere — totality only holds when the quorums are
// reachable.
func TestRBCNoDeliveryWithoutEchoQuorum(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	for seed := int64(0); seed < 10; seed++ {
		nodes := make([]*rbcNode, n)
		handlers := make([]sim.Handler, n)
		for i := 0; i < 2; i++ {
			nodes[i] = newRBCNode(t, n, f, i)
			nodes[i].toSend["t"] = strContent("v" + strconv.Itoa(i))
			handlers[i] = nodes[i]
		}
		for i := 2; i < n; i++ {
			handlers[i] = &silentNode{id: i}
		}
		runRBC(t, handlers, g, seed)
		for i := 0; i < 2; i++ {
			if len(nodes[i].delivered) != 0 {
				t.Fatalf("seed %d: node %d delivered %v without an echo quorum", seed, i, nodes[i].delivered)
			}
		}
	}
}

// hookNode consumes deliveries through the OnDeliver hook instead of the
// return values, the way the exact tier's ACS machine does.
type hookNode struct {
	id     int
	b      *rbc.Broadcaster
	toSend map[string]rbc.Content
	hooked map[string]string
	retd   int // deliveries seen via return values, must match the hook
}

func newHookNode(t *testing.T, n, f, id int) *hookNode {
	t.Helper()
	b, err := rbc.New(n, f, id)
	if err != nil {
		t.Fatal(err)
	}
	h := &hookNode{id: id, b: b, toSend: map[string]rbc.Content{}, hooked: map[string]string{}}
	b.OnDeliver(func(d rbc.Delivery, _ *sim.Outbox) {
		h.hooked[strconv.Itoa(d.Origin)+"/"+d.Tag] = d.Content.RBCKey()
	})
	return h
}

func (h *hookNode) ID() int { return h.id }

func (h *hookNode) Start(out *sim.Outbox) {
	for tag, c := range h.toSend {
		h.retd += len(h.b.Broadcast(tag, c, out))
	}
}

func (h *hookNode) Deliver(msg transport.Message, out *sim.Outbox) {
	h.retd += len(h.b.Handle(msg, out))
}

func (h *hookNode) Output() (float64, bool) { return 0, len(h.hooked) > 0 }

// TestRBCDeliveryHook: the hook observes exactly the deliveries the return
// values report, with the same per-slot agreement, and numeric contents
// (rbc.Num) round-trip through it.
func TestRBCDeliveryHook(t *testing.T) {
	const n, f = 4, 1
	g := graph.Clique(n)
	nodes := make([]*hookNode, n)
	handlers := make([]sim.Handler, n)
	for i := 0; i < n; i++ {
		nodes[i] = newHookNode(t, n, f, i)
		nodes[i].toSend["t"] = rbc.Num(float64(i) + 0.5)
		handlers[i] = nodes[i]
	}
	runRBC(t, handlers, g, 11)
	for i, node := range nodes {
		if len(node.hooked) != n {
			t.Errorf("node %d hook saw %d deliveries, want %d", i, len(node.hooked), n)
		}
		if node.retd != len(node.hooked) {
			t.Errorf("node %d: %d deliveries via returns, %d via hook", i, node.retd, len(node.hooked))
		}
		for slot, want := range nodes[0].hooked {
			if got := node.hooked[slot]; got != want {
				t.Errorf("slot %s: node %d hooked %q, node 0 %q", slot, i, got, want)
			}
		}
	}
	if key := nodes[0].hooked["2/t"]; key != rbc.Num(2.5).RBCKey() {
		t.Errorf("slot 2/t key = %q, want %q", key, rbc.Num(2.5).RBCKey())
	}
}
