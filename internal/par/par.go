// Package par is the worker-pool primitive behind the parallel sweep
// runners: it fans independent jobs across a bounded number of goroutines
// while keeping results (and error selection) deterministic, so a parallel
// sweep reports exactly what its sequential counterpart would. Sweeps are
// cancellable: a context threads through Map and stops the fan-out between
// jobs.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values < 1 mean "one worker per
// available CPU", and the count never exceeds the job count.
func Workers(workers, jobs int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs job(0..n-1) across the given number of workers and returns the
// results in index order. Every job runs exactly once even when some fail;
// if any jobs error, the error of the lowest-indexed failing job is
// returned — the same error a sequential left-to-right runner would have
// hit first (modulo early exit), keeping parallel runs report-identical to
// sequential ones. workers < 1 selects one worker per CPU; workers == 1
// runs inline with no goroutines.
//
// Cancelling ctx stops the fan-out between jobs: running jobs finish,
// remaining jobs never start, and Map returns ctx.Err() (job errors from
// jobs that did run take precedence, preserving the sequential-equivalence
// rule). A nil ctx means context.Background().
func Map[T any](ctx context.Context, workers, n int, job func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := job(i)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = job(i)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	// Cancellation that arrives after the last job has finished skipped
	// nothing: the results are complete, exactly as the sequential path
	// would have returned them (parallel-identical-to-sequential rule).
	if completed.Load() < int64(n) {
		return results, ctx.Err()
	}
	return results, nil
}
