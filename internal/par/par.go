// Package par is the worker-pool primitive behind the parallel sweep
// runners: it fans independent jobs across a bounded number of goroutines
// while keeping results (and error selection) deterministic, so a parallel
// sweep reports exactly what its sequential counterpart would. Sweeps are
// cancellable: a context threads through Map and stops the fan-out between
// jobs.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the one GOMAXPROCS-derived worker default shared by
// every concurrency knob in the repository: sweep fan-out (Workers) and the
// parallel execution engine's lane count both resolve "use the hardware" to
// this value, so the two layers agree on what a full machine means.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// Workers normalizes a worker-count knob: values < 1 mean "one worker per
// available CPU" (DefaultWorkers), and the count never exceeds the job
// count.
func Workers(workers, jobs int) int {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// active tracks how many extra sweep workers (beyond the caller's own
// goroutine) are currently fanned out by Map. Nested parallel consumers —
// the sim "parallel" engine binding inside a sweep lane — consult it via
// NestedWorkers so that sweep workers × engine workers cannot silently
// oversubscribe the machine.
var active atomic.Int64

// NestedWorkers resolves a worker request made from code that may itself be
// running inside a Map fan-out. Outside any sweep the request stands
// (requested < 1 means DefaultWorkers). Inside an active sweep the machine
// is already divided among the sweep lanes, so the request is clamped to
// the lane's fair share of DefaultWorkers — never below 1. Results are
// unaffected either way (worker counts change wall-clock, never outputs);
// the clamp only prevents w sweep lanes × e engine workers goroutine
// explosions.
func NestedWorkers(requested int) int {
	if requested < 1 {
		requested = DefaultWorkers()
	}
	if extra := active.Load(); extra > 0 {
		share := DefaultWorkers() / (int(extra) + 1)
		if share < 1 {
			share = 1
		}
		if requested > share {
			return share
		}
	}
	return requested
}

// Map runs job(0..n-1) across the given number of workers and returns the
// results in index order. Every job runs exactly once even when some fail;
// if any jobs error, the error of the lowest-indexed failing job is
// returned — the same error a sequential left-to-right runner would have
// hit first (modulo early exit), keeping parallel runs report-identical to
// sequential ones. workers < 1 selects one worker per CPU; workers == 1
// runs inline with no goroutines.
//
// Cancelling ctx stops the fan-out between jobs: running jobs finish,
// remaining jobs never start, and Map returns ctx.Err() (job errors from
// jobs that did run take precedence, preserving the sequential-equivalence
// rule). A nil ctx means context.Background().
func Map[T any](ctx context.Context, workers, n int, job func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := job(i)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	// Register the extra lanes (beyond the caller's goroutine) so nested
	// parallel consumers see the sweep via NestedWorkers.
	active.Add(int64(workers - 1))
	defer active.Add(int64(-(workers - 1)))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = job(i)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	// Cancellation that arrives after the last job has finished skipped
	// nothing: the results are complete, exactly as the sequential path
	// would have returned them (parallel-identical-to-sequential rule).
	if completed.Load() < int64(n) {
		return results, ctx.Err()
	}
	return results, nil
}
