package par

import (
	"errors"
	"fmt"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, x := range got {
			if x != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, x)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	boom := func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 40, boom)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3 failed", workers, err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(5, 3) != 3 {
		t.Error("workers not capped at job count")
	}
	if Workers(0, 100) < 1 {
		t.Error("auto workers below 1")
	}
	if Workers(-2, 0) != 1 {
		t.Error("zero jobs should still yield 1 worker")
	}
}
