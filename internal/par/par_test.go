package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := Map(context.Background(), workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, x := range got {
			if x != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, x)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	boom := func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 40, boom)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3 failed", workers, err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

// TestMapCancellation: a context cancelled mid-sweep stops the fan-out
// between jobs and surfaces ctx.Err(), on both the sequential and the
// parallel path. Jobs already running are never interrupted.
func TestMapCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := Map(ctx, workers, 1000, func(i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: all %d jobs ran despite cancellation", workers, n)
		}
	}
}

// TestMapJobErrorBeatsCancellation: when a job fails and the sweep is also
// cancelled, the job error wins (sequential-equivalence rule).
func TestMapJobErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	_, err := Map(ctx, 4, 100, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	cancel()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job error to take precedence", err)
	}
}

func TestMapNilContext(t *testing.T) {
	got, err := Map(nil, 2, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Fatalf("nil ctx: %v %v", got, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(5, 3) != 3 {
		t.Error("workers not capped at job count")
	}
	if Workers(0, 100) < 1 {
		t.Error("auto workers below 1")
	}
	if Workers(-2, 0) != 1 {
		t.Error("zero jobs should still yield 1 worker")
	}
}
