package repro

import (
	"context"
	"fmt"
	"net"
	"sort"

	"repro/internal/adversary"
	"repro/internal/cluster"
)

// This file is the public face of the live node runtime: the same
// Scenario that drives the deterministic simulator can execute as a
// cluster of real nodes — per-vertex event loops exchanging wire-encoded
// frames over an in-process loopback medium or TCP sockets — and come back
// as the same Result type, judged by the same validity and ε-agreement
// criteria. The cross-runtime conformance tests pin exactly that: for
// every registered protocol, a Scenario that passes the checks on the
// simulator passes them on the loopback cluster too.

// RuntimeSim names the in-process deterministic simulator runtime (the
// default); RuntimeLoopback and RuntimeTCP name the live cluster runtimes.
const (
	RuntimeSim      = "sim"
	RuntimeLoopback = "loopback"
	RuntimeTCP      = "tcp"
)

// RuntimeNames lists every execution runtime a Scenario can run on,
// sorted: the cluster transports plus the simulator.
func RuntimeNames() []string {
	names := append(cluster.Runtimes(), RuntimeSim)
	sort.Strings(names)
	return names
}

// RunOn executes the scenario once on the named runtime: "sim" (or "") is
// Scenario.Run on the deterministic simulator; "loopback" and "tcp"
// materialize the scenario as live nodes — one event loop per vertex,
// faulty vertices wrapped by their adversaries, protocol messages
// round-tripping through the wire codec — over in-process channels or real
// sockets respectively.
//
// Cluster runs honor ctx cancellation and deadlines (a deadline-less ctx
// gets a 60s default timeout); the simulator runtime checks ctx only at
// the start. A cluster run that times out before every honest vertex
// decides returns Decided false, mirroring undecided simulator quiescence.
func (s Scenario) RunOn(ctx context.Context, runtime string) (*Result, error) {
	return s.RunOnObserved(ctx, runtime, nil)
}

// RunOnObserved is RunOn with a streaming observer attached. On cluster
// runtimes the observer is invoked concurrently from every node's event
// loop and must be goroutine-safe (JSONLObserver is); Event.Step is then
// the node-local delivery count.
func (s Scenario) RunOnObserved(ctx context.Context, runtime string, obs Observer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch runtime {
	case "", RuntimeSim:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.RunObserved(obs)
	}
	run, err := cluster.ByName(runtime)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	inputs, opts, spec, err := s.clusterSpec()
	if err != nil {
		return nil, err
	}
	spec.Observer = obs
	outcome, err := run(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Outputs:      outcome.Outputs,
		Honest:       spec.Honest,
		Decided:      outcome.Decided,
		Steps:        outcome.Deliveries,
		MessagesSent: outcome.Sent,
		ByKind:       outcome.ByKind,
		Histories:    outcome.Histories,
		Vectors:      outcome.Vectors,
		LinkStats:    linkStats(spec.LinkFaults),
	}
	res.finish(inputs, opts.Eps)
	return res, nil
}

// RunCluster is the package-level spelling of Scenario.RunOn for cluster
// runtimes ("loopback" or "tcp").
func RunCluster(ctx context.Context, s Scenario, runtime string) (*Result, error) {
	return s.RunOn(ctx, runtime)
}

// clusterSpec validates the scenario for live execution and materializes
// its inputs, normalized options and handler set.
func (s Scenario) clusterSpec() ([]float64, Options, cluster.Spec, error) {
	var zero cluster.Spec
	if err := s.validateForCluster(); err != nil {
		return nil, Options{}, zero, err
	}
	g, inputs, err := s.Materialize()
	if err != nil {
		return nil, Options{}, zero, err
	}
	build, err := ProtocolBuilder(s.Protocol)
	if err != nil {
		return nil, Options{}, zero, err
	}
	opts := s.options()
	opts.normalize(inputs)
	factory, err := build(g, inputs, opts)
	if err != nil {
		return nil, Options{}, zero, err
	}
	handlers, honest, err := buildHandlers(g, inputs, opts, factory)
	if err != nil {
		return nil, Options{}, zero, err
	}
	links, err := buildLinkFaults(g, opts)
	if err != nil {
		return nil, Options{}, zero, err
	}
	return inputs, opts, cluster.Spec{Graph: g, Handlers: handlers, Honest: honest, LinkFaults: links}, nil
}

// validateForCluster rejects, eagerly and by name, the scenario knobs that
// only mean something on the central simulator: engines, delivery
// policies, and trace recording all manipulate the simulator's message
// pool, which a live cluster does not have. Silently ignoring them would
// replay the wrong experiment.
func (s Scenario) validateForCluster() error {
	if s.Engine != "" {
		return fmt.Errorf("repro: scenario engine %q applies to the sim runtime only (a cluster has no central engine)", s.Engine)
	}
	if s.EngineWorkers != 0 {
		return fmt.Errorf("repro: scenario engineWorkers applies to the sim runtime only (a cluster has no central engine)")
	}
	if s.Policy != nil {
		return fmt.Errorf("repro: scenario policy %q applies to the sim runtime only (a cluster's schedule is the network's)", s.Policy.Name)
	}
	if s.RecordTrace {
		return fmt.Errorf("repro: recordTrace applies to the sim runtime only (a cluster has no global delivery order to record)")
	}
	if s.Seeds > 1 {
		return fmt.Errorf("repro: seed batches run on the sim runtime (RunBatch); cluster runtimes execute one run")
	}
	return nil
}

// JoinSpec describes one vertex joining a multi-process TCP cluster: the
// shared scenario file plus this process's identity and addressing.
type JoinSpec struct {
	// Scenario is the run specification every member process shares.
	Scenario Scenario
	// ID is this process's vertex.
	ID int
	// Listener, when non-nil, is used as-is for inbound links (embedders
	// and tests bind it up front so peer addresses are known before any
	// node starts). Otherwise Listen is the bind address (defaults to
	// 127.0.0.1:0); when its port is taken, up to ListenAttempts
	// consecutive ports are tried.
	Listener       net.Listener
	Listen         string
	ListenAttempts int
	// Peers maps vertex ids to dial addresses; it must cover every
	// out-neighbor of ID.
	Peers map[int]string
	// Observer streams this node's runtime events; OnDecide fires once
	// when the vertex decides; OnListen reports the bound address before
	// dialing starts.
	Observer Observer
	OnDecide func(output float64)
	OnListen func(addr string)
}

// NodeReport is one vertex's outcome from JoinCluster.
type NodeReport struct {
	ID        int
	Output    float64
	Decided   bool
	Addr      string
	Delivered int
	Sent      int
}

// JoinCluster runs one vertex of the scenario as a live TCP node until ctx
// ends — the library form of the abacnode daemon. The vertex's machine is
// built from the scenario (adversary-wrapped if the scenario marks it
// faulty); deciding does not stop the node, because in the asynchronous
// model honest nodes keep relaying for their peers — the caller chooses
// when to leave by cancelling ctx (abacnode lingers a grace period after
// deciding).
func JoinCluster(ctx context.Context, spec JoinSpec) (*NodeReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Scenario.validateForCluster(); err != nil {
		return nil, err
	}
	g, inputs, err := spec.Scenario.Materialize()
	if err != nil {
		return nil, err
	}
	if spec.ID < 0 || spec.ID >= g.N() {
		return nil, fmt.Errorf("repro: join id %d outside graph order %d", spec.ID, g.N())
	}
	for _, v := range g.Out(spec.ID) {
		if _, ok := spec.Peers[v]; !ok {
			return nil, fmt.Errorf("repro: join: no peer address for out-neighbor %d of vertex %d", v, spec.ID)
		}
	}
	build, err := ProtocolBuilder(spec.Scenario.Protocol)
	if err != nil {
		return nil, err
	}
	opts := spec.Scenario.options()
	opts.normalize(inputs)
	factory, err := build(g, inputs, opts)
	if err != nil {
		return nil, err
	}
	handler, err := factory(spec.ID)
	if err != nil {
		return nil, err
	}
	if fl, bad := opts.Faults[spec.ID]; bad {
		handler, err = adversary.BuildHandler(spec.ID, fl.spec(), handler, adversary.NodeSeed(opts.Seed, spec.ID))
		if err != nil {
			return nil, fmt.Errorf("repro: fault at node %d: %w", spec.ID, err)
		}
	}
	links, err := buildLinkFaults(g, opts)
	if err != nil {
		return nil, err
	}
	var onDecide func(int, float64)
	if spec.OnDecide != nil {
		onDecide = func(_ int, x float64) { spec.OnDecide(x) }
	}
	out, err := cluster.JoinTCP(ctx, cluster.JoinConfig{
		ID:             spec.ID,
		Graph:          g,
		Handler:        handler,
		Listener:       spec.Listener,
		Listen:         spec.Listen,
		ListenAttempts: spec.ListenAttempts,
		Peers:          spec.Peers,
		LinkFaults:     links,
		Observer:       spec.Observer,
		OnDecide:       onDecide,
		OnListen:       spec.OnListen,
	})
	if out == nil {
		return nil, err
	}
	return &NodeReport{
		ID: out.ID, Output: out.Output, Decided: out.Decided, Addr: out.Addr,
		Delivered: out.Stats.Delivered, Sent: out.Stats.Sent,
	}, err
}
