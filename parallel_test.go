// Cross-engine equivalence tests for the parallel delivery engine: for
// every protocol, adversary mix and worker count, the parallel engine must
// replay the inline engine's delivery trace byte for byte and produce
// identical outputs and accounting. Worker counts are a wall-clock knob,
// never a semantics knob — these tests are the fence around that claim.
package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
)

// parallelWorkerCounts is the sweep every scenario is replayed under: the
// degenerate single lane, two mid sizes that force cross-lane commits, and
// an oversubscribed count larger than any batch group fan-out.
var parallelWorkerCounts = []int{1, 2, 3, 8}

// parallelScenarios is one scenario per registered protocol, each carrying
// a composed adversary and link faults (including delay, which exercises
// the delayed-release buffering inside the windowed runner).
func parallelScenarios(t *testing.T, seed int64) []repro.Scenario {
	t.Helper()
	g, err := repro.NamedGraph("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	if len(es) < 2 {
		t.Fatal("fig1a has too few edges for link-fault rules")
	}
	return []repro.Scenario{
		{
			Name: "bw-composed-linkfaults", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{
				Node: 1, Kind: "tamper", Params: map[string]float64{"delta": 50},
				Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 3}}},
			}},
			LinkFaults: []repro.LinkFault{
				{Kind: "delay", Edges: [][2]int{es[0]}, Params: map[string]float64{"prob": 0.5, "amount": 7}},
				{Kind: "drop", Edges: [][2]int{es[1]}, Params: map[string]float64{"prob": 0.3}},
			},
		},
		{
			Name: "aad-silent", Graph: "clique:8", Protocol: "aad",
			F: 2, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 7, Kind: "silent"}},
			LinkFaults: []repro.LinkFault{
				{Kind: "delay", Edges: [][2]int{{0, 1}, {2, 3}}, Params: map[string]float64{"prob": 0.4, "amount": 11}},
			},
		},
		{
			Name: "iterative-torus", Graph: "torus:4:8", Protocol: "iterative",
			InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
			F:        1, K: 3, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{
				Node: 5, Kind: "extreme",
				Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 2}}},
			}},
			LinkFaults: []repro.LinkFault{
				{Kind: "duplicate", Edges: [][2]int{{1, 2}}, Params: map[string]float64{"prob": 0.5}},
			},
		},
		{
			Name: "crashapprox-clique", Graph: "clique:6", Protocol: "crashapprox",
			InputGen: &repro.InputGenSpec{Kind: "linear"},
			F:        1, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 2, Kind: "crash"}},
		},
	}
}

// runEngine replays one scenario under an engine configuration with the
// trace recorder on and the fifo policy unless the scenario names another.
func runEngine(t *testing.T, s repro.Scenario, engine string, workers int) *repro.Result {
	t.Helper()
	s.Engine = engine
	s.EngineWorkers = workers
	s.RecordTrace = true
	if s.Policy == nil {
		s.Policy = &repro.PolicySpec{Name: "fifo"}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("%s on %s/w%d: %v", s.Name, engine, workers, err)
	}
	return res
}

// requireSameRun asserts byte-identical traces and identical results.
func requireSameRun(t *testing.T, label string, base, got *repro.Result) {
	t.Helper()
	if base.Trace == "" {
		t.Fatalf("%s: no trace recorded", label)
	}
	if got.Trace != base.Trace {
		t.Fatalf("%s: delivery trace diverged from inline", label)
	}
	if got.Steps != base.Steps || got.MessagesSent != base.MessagesSent {
		t.Fatalf("%s: accounting diverged: steps %d vs %d, sends %d vs %d",
			label, got.Steps, base.Steps, got.MessagesSent, base.MessagesSent)
	}
	if got.Decided != base.Decided || got.Converged != base.Converged {
		t.Fatalf("%s: verdicts diverged: decided %v/%v converged %v/%v",
			label, got.Decided, base.Decided, got.Converged, base.Converged)
	}
	if !reflect.DeepEqual(got.Outputs, base.Outputs) {
		t.Fatalf("%s: outputs diverged: %v vs %v", label, got.Outputs, base.Outputs)
	}
}

// TestParallelEngineCrossEquivalence: every protocol, with composed
// adversaries and link faults, replayed at every worker count, must match
// inline exactly.
func TestParallelEngineCrossEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 23} {
		for _, s := range parallelScenarios(t, seed) {
			t.Run(fmt.Sprintf("%s/seed%d", s.Name, seed), func(t *testing.T) {
				base := runEngine(t, s, "inline", 0)
				for _, w := range parallelWorkerCounts {
					got := runEngine(t, s, "parallel", w)
					requireSameRun(t, fmt.Sprintf("%s w=%d", s.Name, w), base, got)
				}
			})
		}
	}
}

// TestParallelEngineFallbackPolicies: under count-sensitive policies the
// engine cannot batch (the draw depends on intermediate injections) and
// must fall back to serial delivery — still byte-identical to inline.
func TestParallelEngineFallbackPolicies(t *testing.T) {
	policies := []repro.PolicySpec{
		{Name: "random"},
		{Name: "lifo"},
		{Name: "bounded", Params: map[string]float64{"bound": 5}},
	}
	for _, policy := range policies {
		t.Run(policy.Name, func(t *testing.T) {
			s := parallelScenarios(t, 7)[0]
			p := policy
			s.Policy = &p
			base := runEngine(t, s, "inline", 0)
			got := runEngine(t, s, "parallel", 4)
			requireSameRun(t, policy.Name, base, got)
		})
	}
}

// TestParallelSmokeRung is the CI smoke cell: the n=64 iterative torus rung
// at four workers must match inline. Small enough for every push, big
// enough that batches actually span lanes.
func TestParallelSmokeRung(t *testing.T) {
	s := repro.Scenario{
		Name: "smoke-iter-torus-64", Graph: "torus:8:8", Protocol: "iterative",
		InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
		F:        1, K: 3, Eps: 0.25, Seed: 1,
	}
	base := runEngine(t, s, "inline", 0)
	got := runEngine(t, s, "parallel", 4)
	requireSameRun(t, "smoke rung", base, got)
}

// FuzzParallelEngine drives the equivalence over arbitrary (seed, workers)
// pairs: whatever the schedule seed and lane count, the parallel engine
// must replay inline's trace.
func FuzzParallelEngine(f *testing.F) {
	f.Add(int64(1), 2)
	f.Add(int64(23), 8)
	f.Add(int64(-5), 1)
	f.Fuzz(func(t *testing.T, seed int64, workers int) {
		workers = workers%16 + 1
		if workers < 1 {
			workers += 16
		}
		s := repro.Scenario{
			Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "tamper", Params: map[string]float64{"delta": 50}}},
		}
		base := runEngine(t, s, "inline", 0)
		got := runEngine(t, s, "parallel", workers)
		requireSameRun(t, fmt.Sprintf("seed=%d w=%d", seed, workers), base, got)
	})
}
