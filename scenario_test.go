package repro_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// TestScenarioJSONGolden pins the canonical serialized form: encode must
// produce exactly this document, and decoding it must reproduce the value.
func TestScenarioJSONGolden(t *testing.T) {
	legacy := 50.0
	s := repro.Scenario{
		Name:     "fig1a-bw-tamper",
		Graph:    "fig1a",
		Protocol: "bw",
		Inputs:   []float64{0, 4, 1, 3, 2},
		F:        1,
		K:        4,
		Eps:      0.25,
		Seed:     42,
		Engine:   "inline",
		Policy:   &repro.PolicySpec{Name: "bounded", Params: map[string]float64{"bound": 8}},
		Faults: []repro.FaultSpec{
			{Node: 2, Kind: "tamper", Param: &legacy,
				Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 3}}}},
			{Node: 1, Kind: "silent"},
		},
		LinkFaults: []repro.LinkFault{
			{Kind: "duplicate", Edges: [][2]int{{0, 2}}, Params: map[string]float64{"prob": 0.5}},
			{Kind: "partition", Nodes: []int{1, 2}, Params: map[string]float64{"heal": 4}},
		},
		RecordTrace: true,
	}
	got, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "name": "fig1a-bw-tamper",
  "graph": "fig1a",
  "protocol": "bw",
  "inputs": [
    0,
    4,
    1,
    3,
    2
  ],
  "f": 1,
  "k": 4,
  "eps": 0.25,
  "seed": 42,
  "engine": "inline",
  "policy": {
    "name": "bounded",
    "params": {
      "bound": 8
    }
  },
  "faults": [
    {
      "node": 1,
      "kind": "silent"
    },
    {
      "node": 2,
      "kind": "tamper",
      "params": {
        "delta": 50
      },
      "compose": [
        {
          "kind": "noise",
          "params": {
            "amp": 3
          }
        }
      ]
    }
  ],
  "linkFaults": [
    {
      "kind": "duplicate",
      "edges": [
        [
          0,
          2
        ]
      ],
      "params": {
        "prob": 0.5
      }
    },
    {
      "kind": "partition",
      "nodes": [
        1,
        2
      ],
      "params": {
        "heal": 4
      }
    }
  ],
  "recordTrace": true
}`
	if string(got) != golden {
		t.Errorf("canonical JSON drifted:\n%s\nwant:\n%s", got, golden)
	}

	back, err := repro.ParseScenario(got)
	if err != nil {
		t.Fatal(err)
	}
	// JSON() canonicalizes: faults in node order, legacy scalars folded
	// into the params maps. Compare against the normalized form.
	want := s
	want.Faults = []repro.FaultSpec{
		{Node: 1, Kind: "silent"},
		{Node: 2, Kind: "tamper", Params: map[string]float64{"delta": 50},
			Compose: []repro.MutationSpec{{Kind: "noise", Params: map[string]float64{"amp": 3}}}},
	}
	if !reflect.DeepEqual(*back, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", *back, want)
	}
}

func TestParseScenarioRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name   string
		doc    string
		errHas string
	}{
		{"unknown field", `{"graph":"fig1a","protocol":"bw","budget":9}`, "budget"},
		{"trailing data", `{"graph":"fig1a","protocol":"bw"} {"x":1}`, "trailing"},
		{"trailing brace", `{"graph":"fig1a","protocol":"bw"} }`, "trailing"},
		{"trailing garbage", `{"graph":"fig1a","protocol":"bw"} not-json`, "trailing"},
		{"missing graph", `{"protocol":"bw"}`, "missing graph"},
		{"bad graph", `{"graph":"hypercube:4","protocol":"bw"}`, "unknown spec"},
		{"missing protocol", `{"graph":"fig1a"}`, "missing protocol"},
		{"bad protocol", `{"graph":"fig1a","protocol":"paxos"}`, "unknown protocol"},
		{"bad engine", `{"graph":"fig1a","protocol":"bw","engine":"quantum"}`, "unknown engine"},
		{"bad policy", `{"graph":"fig1a","protocol":"bw","policy":{"name":"warp"}}`, "unknown policy"},
		{"bad policy param", `{"graph":"fig1a","protocol":"bw","policy":{"name":"fifo","params":{"bound":3}}}`, "unknown param"},
		{"missing policy param", `{"graph":"fig1a","protocol":"bw","policy":{"name":"bounded"}}`, `missing param "bound"`},
		{"bad fault kind", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"gaslight"}]}`, "unknown fault kind"},
		{"bad fault param", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"crash","params":{"fuel":3}}]}`, `unknown param "fuel"`},
		{"scalar on paramless kind", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"silent","param":2}]}`, "takes no scalar param"},
		{"scalar vs params conflict", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"extreme","param":2,"params":{"value":3}}]}`, "both set"},
		{"bad compose kind", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"crash","compose":[{"kind":"warp"}]}]}`, "unknown fault kind"},
		{"non-mutator compose", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"noise","compose":[{"kind":"silent"}]}]}`, "cannot compose"},
		{"compose under silent", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"silent","compose":[{"kind":"noise"}]}]}`, "cannot carry composed mutators"},
		{"fault param out of range", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"replay","params":{"prob":7}}]}`, "outside [0, 1]"},
		{"fault node range", `{"graph":"fig1a","protocol":"bw","faults":[{"node":5,"kind":"silent"}]}`, "outside graph order"},
		{"bad link kind", `{"graph":"fig1a","protocol":"bw","linkFaults":[{"kind":"sever","edges":[[0,1]]}]}`, "unknown link fault kind"},
		{"link non-edge", `{"graph":"fig1a","protocol":"bw","linkFaults":[{"kind":"drop","edges":[[1,3]]}]}`, "not an edge"},
		{"link bad param", `{"graph":"fig1a","protocol":"bw","linkFaults":[{"kind":"drop","edges":[[0,1]],"params":{"rate":1}}]}`, `unknown param "rate"`},
		{"link no edges", `{"graph":"fig1a","protocol":"bw","linkFaults":[{"kind":"delay"}]}`, "at least one edge"},
		{"partition with edges", `{"graph":"fig1a","protocol":"bw","linkFaults":[{"kind":"partition","edges":[[0,1]],"nodes":[0]}]}`, "takes nodes"},
		{"duplicate fault", `{"graph":"fig1a","protocol":"bw","faults":[{"node":1,"kind":"silent"},{"node":1,"kind":"noise"}]}`, "two fault entries"},
		{"inputs arity", `{"graph":"fig1a","protocol":"bw","inputs":[1,2]}`, "2 inputs for 5 nodes"},
		{"inputs and gen", `{"graph":"fig1a","protocol":"bw","inputs":[0,1,2,3,4],"inputGen":{"kind":"const"}}`, "mutually exclusive"},
		{"bad gen kind", `{"graph":"fig1a","protocol":"bw","inputGen":{"kind":"zipf"}}`, "unknown inputGen kind"},
		{"bad gen mod", `{"graph":"fig1a","protocol":"bw","inputGen":{"kind":"mod"}}`, "must be >= 1"},
		{"bad gen range", `{"graph":"fig1a","protocol":"bw","inputGen":{"kind":"uniform","lo":2,"hi":1}}`, "hi 1 < lo 2"},
		{"negative knob", `{"graph":"fig1a","protocol":"bw","f":-2}`, "non-negative"},
		{"negative eps", `{"graph":"fig1a","protocol":"bw","eps":-0.5}`, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := repro.ParseScenario([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}

// TestScenarioRoundTripTraceIdentical is the API's reproducibility
// guarantee: a scenario serialized to JSON, decoded, and re-run produces a
// byte-identical Result.Trace — on both engines and under every registered
// policy.
func TestScenarioRoundTripTraceIdentical(t *testing.T) {
	policies := []*repro.PolicySpec{
		nil, // default random
		{Name: "random"},
		{Name: "fifo"},
		{Name: "lifo"},
		{Name: "bounded", Params: map[string]float64{"bound": 6}},
	}
	for _, engine := range repro.EngineNames() {
		for _, pol := range policies {
			name := engine + "/default"
			if pol != nil {
				name = engine + "/" + pol.Name
			}
			t.Run(name, func(t *testing.T) {
				s := repro.Scenario{
					Graph:    "fig1a",
					Protocol: "bw",
					Inputs:   []float64{0, 4, 1, 3, 2},
					F:        1, K: 4, Eps: 0.25, Seed: 23,
					Engine:      engine,
					Policy:      pol,
					Faults:      []repro.FaultSpec{{Node: 1, Kind: "tamper", Params: map[string]float64{"delta": 50}}},
					RecordTrace: true,
				}
				direct, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if direct.Trace == "" {
					t.Fatal("no trace recorded")
				}
				data, err := s.JSON()
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := repro.ParseScenario(data)
				if err != nil {
					t.Fatal(err)
				}
				rerun, err := decoded.Run()
				if err != nil {
					t.Fatal(err)
				}
				if rerun.Trace != direct.Trace {
					t.Error("trace not byte-identical after JSON round-trip")
				}
				if !reflect.DeepEqual(rerun.Outputs, direct.Outputs) {
					t.Errorf("outputs drifted: %v vs %v", rerun.Outputs, direct.Outputs)
				}
			})
		}
	}
}

// TestScenarioPolicyChangesSchedule sanity-checks that the policy knob is
// real: different registered policies yield different delivery schedules on
// the same scenario.
func TestScenarioPolicyChangesSchedule(t *testing.T) {
	traces := map[string]string{}
	for _, name := range []string{"random", "fifo", "lifo"} {
		s := repro.Scenario{
			Graph: "clique:4", Protocol: "bw",
			Inputs: []float64{0, 1, 2, 3},
			F:      1, K: 3, Eps: 0.25, Seed: 9,
			Policy:      &repro.PolicySpec{Name: name},
			RecordTrace: true,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged || !res.ValidityOK {
			t.Errorf("%s: BW failed to converge: %+v", name, res)
		}
		traces[name] = res.Trace
	}
	if traces["fifo"] == traces["lifo"] || traces["random"] == traces["fifo"] {
		t.Error("distinct policies produced identical schedules")
	}
}

func TestScenarioRunBatch(t *testing.T) {
	s := repro.Scenario{
		Graph: "fig1a", Protocol: "bw",
		InputGen: &repro.InputGenSpec{Kind: "mod", Mod: 4},
		F:        1, K: 4, Eps: 0.25, Seed: 100, Seeds: 4,
	}
	parallel, err := s.RunBatch(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != 4 {
		t.Fatalf("batch returned %d results", len(parallel))
	}
	sequential, err := s.RunBatch(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		if !parallel[i].Converged {
			t.Errorf("seed %d did not converge", 100+i)
		}
		if !reflect.DeepEqual(parallel[i].Outputs, sequential[i].Outputs) {
			t.Errorf("seed %d: parallel and sequential outputs differ", 100+i)
		}
	}
	// Seeds <= 1 means one run.
	single := s
	single.Seeds = 0
	if res, err := single.RunBatch(context.Background(), 0); err != nil || len(res) != 1 {
		t.Errorf("Seeds=0 batch: %d results, err %v", len(res), err)
	}
}

func TestRunScenariosList(t *testing.T) {
	list := []repro.Scenario{
		{Graph: "clique:4", Protocol: "aad", Inputs: []float64{0, 1, 2, 3}, F: 1, K: 3, Eps: 0.2, Seed: 2},
		{Graph: "circulant:5:1,2", Protocol: "crashapprox", Inputs: []float64{0, 1, 2, 3, 4},
			F: 1, K: 4, Eps: 0.2, Seed: 3, Faults: []repro.FaultSpec{{Node: 4, Kind: "crash", Params: map[string]float64{"after": 10}}}},
		{Graph: "clique:5", Protocol: "iterative", Inputs: []float64{0, 1, 2, 3, 4}, F: 1, K: 4, Eps: 0.1, Seed: 4, Rounds: 25},
	}
	results, err := repro.RunScenarios(context.Background(), list, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(list) {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if !res.Converged {
			t.Errorf("scenario %d (%s) did not converge: %+v", i, list[i].Protocol, res)
		}
	}
	// A bad entry fails the whole list eagerly, naming the index.
	list[1].Protocol = "paxos"
	if _, err := repro.RunScenarios(context.Background(), list, 0); err == nil || !strings.Contains(err.Error(), "scenario 1") {
		t.Errorf("bad list entry: %v", err)
	}
}

func TestScenarioObserver(t *testing.T) {
	s := repro.Scenario{
		Graph: "fig1a", Protocol: "bw",
		Inputs: []float64{0, 4, 1, 3, 2},
		F:      1, K: 4, Eps: 0.25, Seed: 7,
	}
	var delivers, rounds int
	res, err := s.RunObserved(repro.ObserverFunc(func(e repro.Event) {
		switch e.Type {
		case repro.EventDeliver:
			delivers++
		case repro.EventRound:
			rounds++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if delivers != res.Steps {
		t.Errorf("observed %d deliveries, result says %d", delivers, res.Steps)
	}
	if rounds == 0 {
		t.Error("no per-round snapshots streamed")
	}
	// The observer must not perturb the run.
	bare, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Outputs, res.Outputs) || bare.Steps != res.Steps {
		t.Error("observer perturbed the execution")
	}
}

func TestJSONLObserver(t *testing.T) {
	var sb strings.Builder
	obs, flushErr := repro.JSONLObserver(&sb)
	s := repro.Scenario{
		Graph: "clique:4", Protocol: "bw",
		Inputs: []float64{0, 1, 2, 3}, F: 1, K: 3, Eps: 0.25, Seed: 5,
	}
	res, err := s.RunObserved(obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := flushErr(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < res.Steps {
		t.Fatalf("%d JSONL lines for %d deliveries", len(lines), res.Steps)
	}
	sawRound := false
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		switch rec["type"] {
		case "deliver":
			if _, ok := rec["kind"].(string); !ok {
				t.Fatalf("deliver record missing kind: %s", line)
			}
		case "round":
			sawRound = true
			if _, ok := rec["value"].(float64); !ok {
				t.Fatalf("round record missing value: %s", line)
			}
		}
	}
	if !sawRound {
		t.Error("no round records in JSONL stream")
	}
}

// TestJSONLObserverSharedAcrossSeeds pins the observer's goroutine-safety:
// one JSONLObserver fanned across parallel RunSeeds runs must neither race
// (the CI -race run) nor interleave mid-record.
func TestJSONLObserverSharedAcrossSeeds(t *testing.T) {
	var sb strings.Builder
	obs, flushErr := repro.JSONLObserver(&sb)
	opts := repro.Options{F: 1, K: 4, Eps: 0.25, Seed: 1, Observer: obs}
	results, err := repro.RunSeeds(context.Background(), repro.RunBW, repro.Fig1a(), []float64{0, 4, 1, 3, 2}, opts, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := flushErr(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, res := range results {
		total += res.Steps
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < total {
		t.Fatalf("%d JSONL lines for %d total deliveries", len(lines), total)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d corrupted by interleaving: %q", i, line)
		}
	}
}

// TestOptionsNormalizeNegativeInputs is the regression test for the K
// default: with all-negative inputs, K must cover the input magnitudes
// (max |x|), not collapse to the floor of 1 via max(x).
func TestOptionsNormalizeNegativeInputs(t *testing.T) {
	g := repro.Fig1a()
	inputs := []float64{-8, -2, -6, -4, -7}
	res, err := repro.RunBW(g, inputs, repro.Options{F: 1, Eps: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.ValidityOK {
		t.Errorf("all-negative inputs with defaulted K: %+v", res)
	}
	for _, x := range res.Outputs {
		if x < -8 || x > -2 {
			t.Errorf("output %g outside honest range [-8,-2]", x)
		}
	}
}

func TestProtocolRegistry(t *testing.T) {
	names := repro.Protocols()
	for _, want := range []string{"aad", "bw", "crashapprox", "iterative"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Protocols() = %v, missing %q", names, want)
		}
	}
	if _, err := repro.ProtocolByName("bw"); err != nil {
		t.Error(err)
	}
	if _, err := repro.ProtocolByName("nope"); err == nil ||
		!strings.Contains(err.Error(), "valid values are") {
		t.Errorf("unknown protocol error unhelpful: %v", err)
	}
	if len(repro.Policies()) < 4 {
		t.Errorf("Policies() = %v", repro.Policies())
	}
}

func TestFaultKindNames(t *testing.T) {
	kinds := repro.FaultKinds()
	for _, want := range []string{
		"silent", "crash", "extreme", "equivocate", "tamper", "noise",
		"delayedequiv", "split", "replay",
	} {
		found := false
		for _, n := range kinds {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("FaultKinds() = %v, missing %q", kinds, want)
		}
	}
	// Every registered kind must decode in a scenario fault entry.
	for _, name := range kinds {
		s := repro.Scenario{Graph: "fig1a", Protocol: "bw",
			Faults: []repro.FaultSpec{{Node: 1, Kind: name}}}
		if err := s.Validate(); err != nil {
			t.Errorf("kind %q rejected: %v", name, err)
		}
	}
}

// TestScenarioLegacyScalarDecodes pins backward compatibility: an archived
// pre-registry scenario file using the scalar "param" form decodes, folds
// into the primary param, and runs.
func TestScenarioLegacyScalarDecodes(t *testing.T) {
	doc := `{"graph":"fig1a","protocol":"bw","inputs":[0,4,1,3,2],"f":1,"k":4,"eps":0.25,"seed":7,
		"faults":[{"node":1,"kind":"crash","param":10}]}`
	s, err := repro.ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.ValidityOK {
		t.Errorf("legacy scenario run: %+v", res)
	}
	// The canonical re-encoding folds the scalar away.
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"param":`) {
		t.Errorf("canonical JSON still carries legacy scalars:\n%s", data)
	}
	if !strings.Contains(string(data), `"after": 10`) {
		t.Errorf("canonical JSON missing folded params:\n%s", data)
	}
}

// TestScenarioExplicitZeroScalar pins that a legacy explicit "param": 0 is
// a present value (the pointer field), not an absent one: crash with
// param 0 must fold to after=0 — crash on the first delivery — rather than
// silently reverting to the default of 20.
func TestScenarioExplicitZeroScalar(t *testing.T) {
	doc := `{"graph":"fig1a","protocol":"bw","inputs":[0,4,1,3,2],"f":1,"k":4,"eps":0.25,"seed":3,
		"faults":[{"node":1,"kind":"crash","param":0}]}`
	s, err := repro.ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"after": 0`) {
		t.Errorf("explicit zero scalar lost in canonicalization:\n%s", data)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.ValidityOK {
		t.Errorf("crash-at-first-delivery run: %+v", res)
	}
}
