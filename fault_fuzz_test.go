package repro_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro"
)

// FuzzFaultSpec fuzzes the FaultSpec decode path: arbitrary JSON documents
// are decoded as a scenario fault entry and validated. Three properties
// are pinned: validation never panics, whatever the bytes; a spec that
// validates must canonicalize (Scenario.JSON); and the canonical form must
// re-parse to a scenario that still validates — decode/encode is a closed
// loop over the valid set.
func FuzzFaultSpec(f *testing.F) {
	for _, seed := range []string{
		`{"node":1,"kind":"silent"}`,
		`{"node":1,"kind":"crash","param":10}`,
		`{"node":2,"kind":"crash","params":{"after":5,"finalSends":2}}`,
		`{"node":3,"kind":"extreme","param":1e9}`,
		`{"node":1,"kind":"tamper","params":{"delta":50},"compose":[{"kind":"noise","params":{"amp":3}}]}`,
		`{"node":4,"kind":"split","params":{"lo":-1,"hi":1,"pivot":2}}`,
		`{"node":1,"kind":"replay","param":0.5,"compose":[{"kind":"replay"}]}`,
		`{"node":0,"kind":"gremlin"}`,
		`{"node":-1,"kind":"silent"}`,
		`{"node":1,"kind":"crash","param":1,"params":{"after":2}}`,
		`{"kind":"noise"}`,
		`{}`,
		`[]`,
		`{"node":1e99,"kind":"silent"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var fs repro.FaultSpec
		if err := dec.Decode(&fs); err != nil {
			return // not a fault spec; nothing to check
		}
		s := repro.Scenario{
			Graph:    "fig1a",
			Protocol: "bw",
			Faults:   []repro.FaultSpec{fs},
		}
		if err := s.Validate(); err != nil {
			return // invalid specs must be rejected, not crash — done
		}
		canonical, err := s.JSON()
		if err != nil {
			t.Fatalf("valid spec failed to canonicalize: %+v: %v", fs, err)
		}
		back, err := repro.ParseScenario(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %s: %v", canonical, err)
		}
		if len(back.Faults) != 1 || back.Faults[0].Kind != fs.Kind {
			t.Fatalf("canonical round-trip changed the fault: %+v vs %+v", back.Faults, fs)
		}
		if back.Faults[0].Param != nil {
			t.Fatalf("canonical form still carries a legacy scalar: %+v", back.Faults[0])
		}
	})
}
