package repro_test

import (
	"testing"

	"repro"
)

func TestCheckConditionsFig1a(t *testing.T) {
	g := repro.Fig1a()
	rep := repro.CheckConditions(g, 1)
	if !rep.OneReach || !rep.TwoReach || !rep.ThreeReach {
		t.Errorf("fig1a should satisfy all reach conditions for f=1: %+v", rep)
	}
	if !rep.CCS || !rep.CCA || !rep.BCS {
		t.Errorf("fig1a should satisfy all partition conditions for f=1: %+v", rep)
	}
	if rep.Kappa != 3 {
		t.Errorf("fig1a kappa = %d, want 3", rep.Kappa)
	}
	if rep.Witness3 != nil {
		t.Error("no witness expected when 3-reach holds")
	}
}

func TestCheckConditionsDirectedSkipsKappa(t *testing.T) {
	rep := repro.CheckConditions(repro.DirectedCycle(4), 1)
	if rep.Kappa != -1 {
		t.Errorf("directed graph kappa = %d, want -1", rep.Kappa)
	}
}

func TestCheckConditionsLargeUsesReachForPartitions(t *testing.T) {
	// n = 14 exceeds PartitionLimit; partition fields mirror reach results.
	rep := repro.CheckConditions(repro.Fig1b(), 2)
	if !rep.ThreeReach || rep.BCS != rep.ThreeReach {
		t.Errorf("fig1b f=2: %+v", rep)
	}
}

func TestRunBWFacade(t *testing.T) {
	g := repro.Fig1a()
	res, err := repro.RunBW(g, []float64{0, 4, 1, 3, 2}, repro.Options{
		F: 1, K: 4, Eps: 0.25, Seed: 5,
		Faults: map[int]repro.Fault{2: {Type: repro.FaultSilent}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Converged || !res.ValidityOK {
		t.Errorf("result: %+v", res)
	}
	if res.Honest.Count() != 4 || res.Honest.Has(2) {
		t.Errorf("honest set = %s", res.Honest)
	}
	if res.MessagesSent == 0 || res.Steps == 0 {
		t.Error("missing stats")
	}
	if res.ByKind["VAL"] == 0 || res.ByKind["COMPLETE"] == 0 {
		t.Errorf("by-kind stats: %v", res.ByKind)
	}
	for v, h := range res.Histories {
		if len(h) == 0 {
			t.Errorf("node %d has empty history", v)
		}
	}
}

func TestRunBWInputMismatch(t *testing.T) {
	if _, err := repro.RunBW(repro.Clique(4), []float64{1}, repro.Options{}); err == nil {
		t.Error("input length mismatch accepted")
	}
}

func TestRunAADFacade(t *testing.T) {
	g := repro.Clique(4)
	res, err := repro.RunAAD(g, []float64{0, 1, 2, 3}, repro.Options{F: 1, K: 3, Eps: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.ValidityOK {
		t.Errorf("AAD result: %+v", res)
	}
	if _, err := repro.RunAAD(repro.DirectedCycle(4), []float64{0, 1, 2, 3}, repro.Options{}); err == nil {
		t.Error("AAD on non-clique accepted")
	}
}

func TestRunCrashApproxFacade(t *testing.T) {
	g := repro.Circulant(5, 1, 2)
	res, err := repro.RunCrashApprox(g, []float64{0, 1, 2, 3, 4}, repro.Options{
		F: 1, K: 4, Eps: 0.2, Seed: 3,
		Faults: map[int]repro.Fault{4: {Type: repro.FaultCrash, Param: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.ValidityOK {
		t.Errorf("crash approx result: %+v", res)
	}
}

func TestRunIterativeFacade(t *testing.T) {
	res, err := repro.RunIterative(repro.Clique(5), []float64{0, 1, 2, 3, 4}, repro.Options{
		F: 1, K: 4, Eps: 0.1, Seed: 4, Rounds: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("iterative on clique should converge: %+v", res)
	}
	// The E9 separation via the facade.
	sep, err := repro.RunIterative(repro.Fig1bAnalog(),
		[]float64{0, 0, 0, 0, 1, 1, 1, 1}, repro.Options{F: 1, K: 1, Eps: 0.1, Seed: 4, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if sep.Converged {
		t.Error("iterative should not converge on the two-clique graph")
	}
}

func TestRunNecessityFacade(t *testing.T) {
	res, err := repro.RunNecessity(repro.Clique(3), 1, 1, 0.25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated() {
		t.Errorf("expected violation: %s", res)
	}
}

func TestBWRounds(t *testing.T) {
	if got := repro.BWRounds(8, 1); got != 4 {
		t.Errorf("BWRounds(8,1) = %d", got)
	}
}

func TestFaultTypesAllRun(t *testing.T) {
	g := repro.Clique(4)
	for _, ft := range []repro.FaultType{
		repro.FaultSilent, repro.FaultCrash, repro.FaultExtreme,
		repro.FaultEquivocate, repro.FaultTamper, repro.FaultNoise,
	} {
		res, err := repro.RunBW(g, []float64{1, 0, 1.5, 2}, repro.Options{
			F: 1, K: 2, Eps: 0.25, Seed: int64(ft),
			Faults: map[int]repro.Fault{1: {Type: ft, Param: 3}},
		})
		if err != nil {
			t.Fatalf("fault %d: %v", ft, err)
		}
		if !res.Converged || !res.ValidityOK {
			t.Errorf("fault %d: %+v", ft, res)
		}
	}
}

func TestNamedGraphFacade(t *testing.T) {
	g, err := repro.NamedGraph("wheel:4")
	if err != nil || g.N() != 5 {
		t.Errorf("NamedGraph: %v %v", g, err)
	}
	if _, err := repro.NamedGraph("bogus"); err == nil {
		t.Error("bogus spec accepted")
	}
}

func TestCheckRobustnessFacade(t *testing.T) {
	if !repro.CheckRobustness(repro.Clique(5), 2, 2) {
		t.Error("K5 should be (2,2)-robust")
	}
	// The E9 separation via the facade: 3-reach without robustness.
	g := repro.Fig1bAnalog()
	if ok, _ := repro.Check3Reach(g, 1); !ok {
		t.Error("analog should satisfy 3-reach")
	}
	if repro.CheckRobustness(g, 2, 2) {
		t.Error("analog should not be (2,2)-robust")
	}
}

func TestCheckKReachFacade(t *testing.T) {
	if ok, _ := repro.CheckKReach(repro.Clique(5), 4, 1); !ok {
		t.Error("K5 should satisfy 4-reach for f=1")
	}
	if ok, w := repro.CheckKReach(repro.Clique(4), 4, 1); ok || w == nil {
		t.Error("K4 should fail 4-reach with witness")
	}
}
