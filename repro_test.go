package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestCheckConditionsFig1a(t *testing.T) {
	g := repro.Fig1a()
	rep := repro.CheckConditions(g, 1)
	if !rep.OneReach || !rep.TwoReach || !rep.ThreeReach {
		t.Errorf("fig1a should satisfy all reach conditions for f=1: %+v", rep)
	}
	if !rep.CCS || !rep.CCA || !rep.BCS {
		t.Errorf("fig1a should satisfy all partition conditions for f=1: %+v", rep)
	}
	if rep.Kappa != 3 {
		t.Errorf("fig1a kappa = %d, want 3", rep.Kappa)
	}
	if rep.Witness3 != nil {
		t.Error("no witness expected when 3-reach holds")
	}
}

func TestCheckConditionsDirectedSkipsKappa(t *testing.T) {
	rep := repro.CheckConditions(repro.DirectedCycle(4), 1)
	if rep.Kappa != -1 {
		t.Errorf("directed graph kappa = %d, want -1", rep.Kappa)
	}
}

func TestCheckConditionsLargeUsesReachForPartitions(t *testing.T) {
	// n = 14 exceeds PartitionLimit; partition fields mirror reach results.
	rep := repro.CheckConditions(repro.Fig1b(), 2)
	if !rep.ThreeReach || rep.BCS != rep.ThreeReach {
		t.Errorf("fig1b f=2: %+v", rep)
	}
}

func TestRunBWFacade(t *testing.T) {
	g := repro.Fig1a()
	res, err := repro.RunBW(g, []float64{0, 4, 1, 3, 2}, repro.Options{
		F: 1, K: 4, Eps: 0.25, Seed: 5,
		Faults: map[int]repro.Fault{2: {Kind: "silent"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Converged || !res.ValidityOK {
		t.Errorf("result: %+v", res)
	}
	if res.Honest.Count() != 4 || res.Honest.Has(2) {
		t.Errorf("honest set = %s", res.Honest)
	}
	if res.MessagesSent == 0 || res.Steps == 0 {
		t.Error("missing stats")
	}
	if res.ByKind["VAL"] == 0 || res.ByKind["COMPLETE"] == 0 {
		t.Errorf("by-kind stats: %v", res.ByKind)
	}
	for v, h := range res.Histories {
		if len(h) == 0 {
			t.Errorf("node %d has empty history", v)
		}
	}
}

func TestRunBWInputMismatch(t *testing.T) {
	if _, err := repro.RunBW(repro.Clique(4), []float64{1}, repro.Options{}); err == nil {
		t.Error("input length mismatch accepted")
	}
}

func TestRunAADFacade(t *testing.T) {
	g := repro.Clique(4)
	res, err := repro.RunAAD(g, []float64{0, 1, 2, 3}, repro.Options{F: 1, K: 3, Eps: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.ValidityOK {
		t.Errorf("AAD result: %+v", res)
	}
	if _, err := repro.RunAAD(repro.DirectedCycle(4), []float64{0, 1, 2, 3}, repro.Options{}); err == nil {
		t.Error("AAD on non-clique accepted")
	}
}

func TestRunCrashApproxFacade(t *testing.T) {
	g := repro.Circulant(5, 1, 2)
	res, err := repro.RunCrashApprox(g, []float64{0, 1, 2, 3, 4}, repro.Options{
		F: 1, K: 4, Eps: 0.2, Seed: 3,
		Faults: map[int]repro.Fault{4: {Kind: "crash", Params: map[string]float64{"after": 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.ValidityOK {
		t.Errorf("crash approx result: %+v", res)
	}
}

func TestRunIterativeFacade(t *testing.T) {
	res, err := repro.RunIterative(repro.Clique(5), []float64{0, 1, 2, 3, 4}, repro.Options{
		F: 1, K: 4, Eps: 0.1, Seed: 4, Rounds: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("iterative on clique should converge: %+v", res)
	}
	// The E9 separation via the facade.
	sep, err := repro.RunIterative(repro.Fig1bAnalog(),
		[]float64{0, 0, 0, 0, 1, 1, 1, 1}, repro.Options{F: 1, K: 1, Eps: 0.1, Seed: 4, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if sep.Converged {
		t.Error("iterative should not converge on the two-clique graph")
	}
}

func TestRunNecessityFacade(t *testing.T) {
	res, err := repro.RunNecessity(repro.Clique(3), 1, 1, 0.25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated() {
		t.Errorf("expected violation: %s", res)
	}
}

func TestBWRounds(t *testing.T) {
	if got := repro.BWRounds(8, 1); got != 4 {
		t.Errorf("BWRounds(8,1) = %d", got)
	}
}

// TestFaultKindsAllRun runs every registered adversary strategy, with its
// default params, as the single Byzantine node of a BW execution: f=1
// tolerates any behavior, so the run must converge with validity whatever
// the registry holds.
func TestFaultKindsAllRun(t *testing.T) {
	g := repro.Clique(4)
	for i, kind := range repro.FaultKinds() {
		res, err := repro.RunBW(g, []float64{1, 0, 1.5, 2}, repro.Options{
			F: 1, K: 2, Eps: 0.25, Seed: int64(i + 1),
			Faults: map[int]repro.Fault{1: {Kind: kind}},
		})
		if err != nil {
			t.Fatalf("fault %q: %v", kind, err)
		}
		if !res.Converged || !res.ValidityOK {
			t.Errorf("fault %q: %+v", kind, res)
		}
	}
}

// TestUnknownFaultHardError pins the satellite fix: an unregistered fault
// kind (or unknown param) must fail handler construction on the simulator
// path — never silently run the honest machine.
func TestUnknownFaultHardError(t *testing.T) {
	g := repro.Clique(4)
	inputs := []float64{0, 1, 2, 3}
	if _, err := repro.RunBW(g, inputs, repro.Options{
		Faults: map[int]repro.Fault{1: {Kind: "gremlin"}},
	}); err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Errorf("unknown kind: got %v", err)
	}
	if _, err := repro.RunBW(g, inputs, repro.Options{
		Faults: map[int]repro.Fault{1: {Kind: "crash", Params: map[string]float64{"fuel": 1}}},
	}); err == nil || !strings.Contains(err.Error(), `unknown param "fuel"`) {
		t.Errorf("unknown param: got %v", err)
	}
	if _, err := repro.RunBW(g, inputs, repro.Options{
		Faults: map[int]repro.Fault{1: {Kind: ""}},
	}); err == nil {
		t.Error("empty kind accepted")
	}
}

// TestFaultRegistryFacade pins the public catalog surface: kinds, defaults
// and primary-param lookups.
func TestFaultRegistryFacade(t *testing.T) {
	kinds := repro.FaultKinds()
	if len(kinds) < 9 {
		t.Fatalf("FaultKinds() = %v", kinds)
	}
	for _, kind := range kinds {
		defs, err := repro.FaultDefaults(kind)
		if err != nil {
			t.Fatal(err)
		}
		primary, doc, err := repro.FaultPrimary(kind)
		if err != nil || doc == "" {
			t.Errorf("FaultPrimary(%q) = %q, %q, %v", kind, primary, doc, err)
		}
		if primary != "" {
			if _, ok := defs[primary]; !ok {
				t.Errorf("kind %q: primary %q missing from defaults %v", kind, primary, defs)
			}
		}
	}
	if _, err := repro.FaultDefaults("gremlin"); err == nil {
		t.Error("unknown kind accepted by FaultDefaults")
	}
	if lk := repro.LinkFaultKinds(); len(lk) != 4 {
		t.Errorf("LinkFaultKinds() = %v", lk)
	}
	for _, kind := range repro.LinkFaultKinds() {
		if _, doc, err := repro.LinkFaultDefaults(kind); err != nil || doc == "" {
			t.Errorf("LinkFaultDefaults(%q): %q, %v", kind, doc, err)
		}
	}
}

// TestProtocolCatalog pins the registry metadata surface the CLIs render:
// every registered protocol appears exactly once with a legal tier and
// decision shape, and the exact tier is annotated as such.
func TestProtocolCatalog(t *testing.T) {
	catalog := repro.ProtocolCatalog()
	byName := make(map[string]repro.ProtocolInfo, len(catalog))
	for _, info := range catalog {
		if _, dup := byName[info.Name]; dup {
			t.Fatalf("protocol %q listed twice", info.Name)
		}
		byName[info.Name] = info
		if info.Tier != repro.TierApproximate && info.Tier != repro.TierExact {
			t.Errorf("protocol %q has tier %q", info.Name, info.Tier)
		}
		if info.Shape != repro.ShapeScalar && info.Shape != repro.ShapeVector {
			t.Errorf("protocol %q has shape %q", info.Name, info.Shape)
		}
	}
	for _, name := range repro.Protocols() {
		if _, ok := byName[name]; !ok {
			t.Errorf("registered protocol %q missing from catalog", name)
		}
	}
	for name, want := range map[string][2]string{
		"bw":  {repro.TierApproximate, repro.ShapeScalar},
		"aba": {repro.TierExact, repro.ShapeScalar},
		"acs": {repro.TierExact, repro.ShapeVector},
	} {
		info, ok := byName[name]
		if !ok {
			t.Fatalf("protocol %q missing from catalog", name)
		}
		if info.Tier != want[0] || info.Shape != want[1] {
			t.Errorf("protocol %q: tier/shape %q/%q, want %q/%q",
				name, info.Tier, info.Shape, want[0], want[1])
		}
		if info.Doc == "" {
			t.Errorf("protocol %q has no doc line", name)
		}
	}
}

func TestNamedGraphFacade(t *testing.T) {
	g, err := repro.NamedGraph("wheel:4")
	if err != nil || g.N() != 5 {
		t.Errorf("NamedGraph: %v %v", g, err)
	}
	if _, err := repro.NamedGraph("bogus"); err == nil {
		t.Error("bogus spec accepted")
	}
}

func TestCheckRobustnessFacade(t *testing.T) {
	if !repro.CheckRobustness(repro.Clique(5), 2, 2) {
		t.Error("K5 should be (2,2)-robust")
	}
	// The E9 separation via the facade: 3-reach without robustness.
	g := repro.Fig1bAnalog()
	if ok, _ := repro.Check3Reach(g, 1); !ok {
		t.Error("analog should satisfy 3-reach")
	}
	if repro.CheckRobustness(g, 2, 2) {
		t.Error("analog should not be (2,2)-robust")
	}
}

func TestCheckKReachFacade(t *testing.T) {
	if ok, _ := repro.CheckKReach(repro.Clique(5), 4, 1); !ok {
		t.Error("K5 should satisfy 4-reach for f=1")
	}
	if ok, w := repro.CheckKReach(repro.Clique(4), 4, 1); ok || w == nil {
		t.Error("K4 should fail 4-reach with witness")
	}
}

// TestCheckConditionsSkipsAboveCertLimit: beyond CertLimit the exponential
// checkers must not run; the report says so explicitly instead of
// presenting unchecked falses as violations.
func TestCheckConditionsSkipsAboveCertLimit(t *testing.T) {
	g, err := repro.NamedGraph("torus:16:32")
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.CheckConditions(g, 1)
	if rep.Certified {
		t.Fatal("512-node graph should not certify")
	}
	if rep.Note == "" {
		t.Fatal("skip must carry a note")
	}
	if rep.OneReach || rep.ThreeReach || rep.CCS {
		t.Fatal("skipped report must not claim any condition holds")
	}
	// At or below the limit, certification still runs.
	small := repro.CheckConditions(repro.Fig1b(), 2)
	if !small.Certified || !small.ThreeReach {
		t.Fatalf("fig1b should certify: %+v", small)
	}
}
