package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/linkfault"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Scenario is a declarative, JSON-round-trippable run specification: one
// (graph, protocol, adversary, schedule) tuple plus execution knobs. It is
// the unit the experiment matrices are made of — serialize a Scenario,
// archive it next to the numbers it produced, decode and Run it again and
// the delivery trace is byte-identical on every engine.
//
// The zero values defer to the same defaults as Options: F=1, Eps=0.1,
// K=max(|input|), random delivery policy, inline engine. Inputs and
// InputGen are mutually exclusive; with neither, nodes get input i mod 4
// (the CLI default).
type Scenario struct {
	// Name is an optional label for reports and sweep rows.
	Name string `json:"name,omitempty"`
	// Graph is a named graph spec, e.g. "fig1a", "clique:5",
	// "circulant:7:1,2,3" or "random:6:0.6:13"; see NamedGraph.
	Graph string `json:"graph"`
	// Protocol names a registered protocol: "bw", "aad", "crashapprox",
	// "iterative", or anything added via Register.
	Protocol string `json:"protocol"`
	// Inputs are explicit per-node inputs (length must match the graph
	// order). Mutually exclusive with InputGen.
	Inputs []float64 `json:"inputs,omitempty"`
	// InputGen derives the inputs from the graph order instead of listing
	// them, keeping large scenarios compact.
	InputGen *InputGenSpec `json:"inputGen,omitempty"`
	// F is the resilience parameter (default 1; -1 = explicit zero fault
	// bound, see FZero).
	F int `json:"f,omitempty"`
	// K is the a-priori input range bound (default max(|input|)).
	K float64 `json:"k,omitempty"`
	// Eps is the agreement parameter (default 0.1).
	Eps float64 `json:"eps,omitempty"`
	// Rounds overrides the log2(K/Eps) round bound where supported.
	Rounds int `json:"rounds,omitempty"`
	// Seed drives the asynchrony schedule and randomized faults.
	Seed int64 `json:"seed,omitempty"`
	// Seeds is the batch width for RunBatch: consecutive seeds starting at
	// Seed. 0 and 1 both mean a single run.
	Seeds int `json:"seeds,omitempty"`
	// Engine selects the execution engine ("inline", "goroutine",
	// "parallel").
	Engine string `json:"engine,omitempty"`
	// EngineWorkers sets the worker count for engines that take one
	// ("parallel"); 0 means the engine default. Worker counts never change
	// results, only wall-clock.
	EngineWorkers int `json:"engineWorkers,omitempty"`
	// Policy selects the asynchrony schedule policy (default random).
	Policy *PolicySpec `json:"policy,omitempty"`
	// Faults lists the faulty nodes and their behaviors.
	Faults []FaultSpec `json:"faults,omitempty"`
	// LinkFaults lists Byzantine link-failure rules, applied in order to
	// every send crossing a matched directed edge — on the simulator and on
	// the cluster runtimes alike; see LinkFault.
	LinkFaults []LinkFault `json:"linkFaults,omitempty"`
	// RecordTrace captures the delivery schedule into Result.Trace.
	RecordTrace bool `json:"recordTrace,omitempty"`
}

// PolicySpec names a registered delivery policy plus its numeric knobs.
type PolicySpec struct {
	// Name is a registered policy: "random", "fifo", "lifo", "bounded".
	Name string `json:"name"`
	// Params carries named knobs, e.g. {"bound": 8} for "bounded".
	Params map[string]float64 `json:"params,omitempty"`
}

// FaultSpec assigns one node a registered adversary strategy (see
// FaultKinds) with named parameters and optional composed mutator layers.
//
// Param is the legacy single-scalar form: a present Param — including an
// explicit 0, which is why the field is a pointer — sets the strategy's
// primary parameter (e.g. "crash"'s after, "extreme"'s value), so
// pre-registry scenario files decode unchanged. The canonical JSON form
// (Scenario.JSON) always folds Param into Params.
type FaultSpec struct {
	Node int `json:"node"`
	// Kind is a registered strategy name: "silent", "crash", "extreme",
	// "equivocate", "tamper", "noise", "delayedequiv", "split", "replay",
	// ... (see FaultKinds).
	Kind    string             `json:"kind"`
	Param   *float64           `json:"param,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
	Compose []MutationSpec     `json:"compose,omitempty"`
}

// MutationSpec is one composed mutator layer of a FaultSpec; Param is the
// same legacy scalar shorthand.
type MutationSpec struct {
	Kind   string             `json:"kind"`
	Param  *float64           `json:"param,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// foldScalar folds the legacy scalar into the strategy's primary param,
// returning the merged params map.
func foldScalar(kind string, scalar *float64, params map[string]float64) (map[string]float64, error) {
	if scalar == nil {
		return params, nil
	}
	primary, _, err := FaultPrimary(kind)
	if err != nil {
		return nil, err
	}
	if primary == "" {
		return nil, fmt.Errorf("repro: fault kind %q takes no scalar param; use the params map", kind)
	}
	if _, dup := params[primary]; dup {
		return nil, fmt.Errorf("repro: fault kind %q: param and params[%q] both set", kind, primary)
	}
	merged := make(map[string]float64, len(params)+1)
	for k, v := range params {
		merged[k] = v
	}
	merged[primary] = *scalar
	return merged, nil
}

// fault resolves the spec into the imperative Fault form, folding legacy
// scalars, and validates every name and param against the registry.
func (fl FaultSpec) fault() (Fault, error) {
	params, err := foldScalar(fl.Kind, fl.Param, fl.Params)
	if err != nil {
		return Fault{}, err
	}
	f := Fault{Kind: fl.Kind, Params: params}
	for _, m := range fl.Compose {
		mp, err := foldScalar(m.Kind, m.Param, m.Params)
		if err != nil {
			return Fault{}, err
		}
		f.Compose = append(f.Compose, Mutation{Kind: m.Kind, Params: mp})
	}
	if err := f.spec().Validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}

// normalize returns the spec in canonical form: legacy scalars folded into
// the params map. Only valid on validated specs.
func (fl FaultSpec) normalize() FaultSpec {
	f, err := fl.fault()
	if err != nil {
		return fl
	}
	out := FaultSpec{Node: fl.Node, Kind: f.Kind, Params: f.Params}
	for _, m := range f.Compose {
		out.Compose = append(out.Compose, MutationSpec{Kind: m.Kind, Params: m.Params})
	}
	return out
}

// InputGenSpec derives per-node inputs from the graph order:
//
//	{"kind":"mod","mod":4}                  input i = i mod 4
//	{"kind":"linear","scale":2,"offset":1}  input i = scale*i + offset
//	{"kind":"const","value":3.5}            all inputs equal
//	{"kind":"uniform","lo":0,"hi":4,"seed":7}  i.i.d. uniform draws
type InputGenSpec struct {
	Kind   string  `json:"kind"`
	Mod    int     `json:"mod,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
}

// generate produces the inputs for a graph of order n.
func (g *InputGenSpec) generate(n int) ([]float64, error) {
	out := make([]float64, n)
	switch g.Kind {
	case "mod":
		for i := range out {
			out[i] = float64(i % g.Mod)
		}
	case "linear":
		scale := g.Scale
		if scale == 0 {
			scale = 1
		}
		for i := range out {
			out[i] = scale*float64(i) + g.Offset
		}
	case "const":
		for i := range out {
			out[i] = g.Value
		}
	case "uniform":
		rng := rand.New(rand.NewSource(g.Seed))
		for i := range out {
			out[i] = g.Lo + (g.Hi-g.Lo)*rng.Float64()
		}
	default:
		return nil, fmt.Errorf("repro: unknown inputGen kind %q (valid values are: [mod linear const uniform])", g.Kind)
	}
	return out, nil
}

// validate checks the generator spec without a graph at hand.
func (g *InputGenSpec) validate() error {
	switch g.Kind {
	case "mod":
		if g.Mod < 1 {
			return fmt.Errorf("repro: inputGen mod: %d must be >= 1", g.Mod)
		}
	case "linear", "const":
		// No constraints.
	case "uniform":
		if g.Hi < g.Lo {
			return fmt.Errorf("repro: inputGen uniform: hi %g < lo %g", g.Hi, g.Lo)
		}
	default:
		return fmt.Errorf("repro: unknown inputGen kind %q (valid values are: [mod linear const uniform])", g.Kind)
	}
	return nil
}

// defaultInputGen is applied when a scenario specifies neither Inputs nor
// InputGen — the same i mod 4 assignment the CLI defaults to.
var defaultInputGen = InputGenSpec{Kind: "mod", Mod: 4}

// Validate checks every name and cross-reference in the scenario eagerly —
// graph spec, protocol, engine, policy and params, fault kinds and node
// ranges, input arity — so a bad scenario file fails at decode time with a
// message naming the valid values, not mid-run from deep inside the
// simulator.
func (s Scenario) Validate() error {
	_, _, err := s.Materialize()
	return err
}

// Materialize validates the scenario and builds its concrete graph and
// input vector.
func (s Scenario) Materialize() (*Graph, []float64, error) {
	if s.Graph == "" {
		return nil, nil, fmt.Errorf("repro: scenario: missing graph spec")
	}
	g, err := graph.Named(s.Graph)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: scenario: %w", err)
	}
	if s.Protocol == "" {
		return nil, nil, fmt.Errorf("repro: scenario: missing protocol (valid values are: %v)", Protocols())
	}
	if _, err := ProtocolByName(s.Protocol); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	if s.F < FZero || s.K < 0 || s.Eps < 0 || s.Rounds < 0 || s.Seeds < 0 {
		return nil, nil, fmt.Errorf("repro: scenario: k, eps, rounds and seeds must be non-negative and f >= %d (%d = explicit zero fault bound)", FZero, FZero)
	}
	if s.EngineWorkers < 0 {
		return nil, nil, fmt.Errorf("repro: scenario: engineWorkers must be non-negative, got %d", s.EngineWorkers)
	}
	if _, err := sim.NewEngine(s.Engine, s.EngineWorkers); err != nil {
		return nil, nil, fmt.Errorf("repro: scenario: %w", err)
	}
	if s.Policy != nil {
		if err := transport.ValidatePolicy(s.Policy.Name, s.Policy.Params); err != nil {
			return nil, nil, fmt.Errorf("repro: scenario: %w", err)
		}
	}
	seen := make(map[int]bool, len(s.Faults))
	for _, fl := range s.Faults {
		if _, err := fl.fault(); err != nil {
			return nil, nil, fmt.Errorf("scenario: %w", err)
		}
		if fl.Node < 0 || fl.Node >= g.N() {
			return nil, nil, fmt.Errorf("repro: scenario: fault node %d outside graph order %d", fl.Node, g.N())
		}
		if seen[fl.Node] {
			return nil, nil, fmt.Errorf("repro: scenario: node %d has two fault entries", fl.Node)
		}
		seen[fl.Node] = true
	}
	if len(s.LinkFaults) > 0 {
		rules := make([]linkfault.Rule, len(s.LinkFaults))
		for i, l := range s.LinkFaults {
			rules[i] = l.rule()
		}
		if err := linkfault.Validate(g, rules); err != nil {
			return nil, nil, fmt.Errorf("repro: scenario: %w", err)
		}
	}

	var inputs []float64
	switch {
	case s.Inputs != nil && s.InputGen != nil:
		return nil, nil, fmt.Errorf("repro: scenario: inputs and inputGen are mutually exclusive")
	case s.Inputs != nil:
		if len(s.Inputs) != g.N() {
			return nil, nil, fmt.Errorf("repro: scenario: %d inputs for %d nodes", len(s.Inputs), g.N())
		}
		inputs = append([]float64(nil), s.Inputs...)
	default:
		gen := s.InputGen
		if gen == nil {
			gen = &defaultInputGen
		}
		if err := gen.validate(); err != nil {
			return nil, nil, err
		}
		if inputs, err = gen.generate(g.N()); err != nil {
			return nil, nil, err
		}
	}
	return g, inputs, nil
}

// options translates the scenario into the imperative Options form.
func (s Scenario) options() Options {
	opts := Options{
		F: s.F, K: s.K, Eps: s.Eps, Seed: s.Seed,
		Engine: s.Engine, EngineWorkers: s.EngineWorkers,
		Rounds: s.Rounds, RecordTrace: s.RecordTrace,
	}
	if s.Policy != nil {
		opts.Policy = s.Policy.Name
		opts.PolicyParams = s.Policy.Params
	}
	if len(s.Faults) > 0 {
		opts.Faults = make(map[int]Fault, len(s.Faults))
		for _, fl := range s.Faults {
			f, _ := fl.fault() // validated in Materialize
			opts.Faults[fl.Node] = f
		}
	}
	if len(s.LinkFaults) > 0 {
		opts.LinkFaults = append([]LinkFault(nil), s.LinkFaults...)
	}
	return opts
}

// Run validates the scenario and executes it once with its Seed.
func (s Scenario) Run() (*Result, error) { return s.RunObserved(nil) }

// RunObserved is Run with a streaming observer attached: obs receives
// per-delivery, hold/release and per-round events live (see Observer). A
// nil obs is allowed and costs nothing.
func (s Scenario) RunObserved(obs Observer) (*Result, error) {
	g, inputs, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	run, err := ProtocolByName(s.Protocol)
	if err != nil {
		return nil, err
	}
	opts := s.options()
	opts.Observer = obs
	return run(g, inputs, opts)
}

// RunBatch executes the scenario across Seeds consecutive seeds starting at
// Seed (a single run when Seeds <= 1), fanning the independent executions
// over a worker pool (workers < 1 means one per CPU, 1 runs sequentially).
// Results come back in seed order and are identical to sequential calls:
// every run rebuilds its policy and handlers from the spec, so no mutable
// state crosses runs. RunBatch subsumes RunSeeds for scenario callers.
// Cancelling ctx stops the batch between runs and returns ctx.Err(); a nil
// ctx means context.Background().
func (s Scenario) RunBatch(ctx context.Context, workers int) ([]*Result, error) {
	// Materialize once: Graph is immutable after construction and the runs
	// only read the inputs, so the whole batch shares them safely instead of
	// rebuilding per seed.
	g, inputs, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	run, err := ProtocolByName(s.Protocol)
	if err != nil {
		return nil, err
	}
	n := s.Seeds
	if n < 1 {
		n = 1
	}
	return RunSeeds(ctx, run, g, inputs, s.options(), n, workers)
}

// RunScenarios executes an arbitrary scenario list over a worker pool,
// returning results in list order — the building block for experiment
// matrices where each cell is its own (graph, adversary, schedule) triple.
// Cancelling ctx stops the matrix between runs and returns ctx.Err(); a
// nil ctx means context.Background().
func RunScenarios(ctx context.Context, scenarios []Scenario, workers int) ([]*Result, error) {
	for i := range scenarios {
		if err := scenarios[i].Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	return par.Map(ctx, workers, len(scenarios), func(i int) (*Result, error) {
		return scenarios[i].Run()
	})
}

// ParseScenario decodes and validates a JSON scenario. Unknown fields are
// rejected — a typoed knob must not silently fall back to a default.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("repro: scenario: %w", err)
	}
	// Anything but clean EOF after the object — valid JSON or garbage — is
	// trailing data (e.g. a botched merge leaving a stray brace).
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("repro: scenario: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the scenario as validated, stable, indented JSON — the
// canonical serialized form, which ParseScenario round-trips: the fault
// list is in node order and legacy scalar params are folded into the
// params maps. Link-fault rules keep their listed order (rules apply in
// order).
func (s Scenario) JSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Faults) > 0 {
		faults := make([]FaultSpec, len(s.Faults))
		for i, fl := range s.Faults {
			faults[i] = fl.normalize()
		}
		sort.Slice(faults, func(i, j int) bool { return faults[i].Node < faults[j].Node })
		s.Faults = faults
	}
	return json.MarshalIndent(s, "", "  ")
}
