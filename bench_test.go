// Top-level benchmarks: one per reproduced table/figure/claim (experiment
// IDs E1–E12, see DESIGN.md and EXPERIMENTS.md). They wrap the same drivers
// as cmd/benchtables, so `go test -bench=.` regenerates the reproduction's
// numbers while timing them.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/cond"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/transport"
)

// BenchmarkTable1Undirected is E1: Table 1's undirected equivalences.
func BenchmarkTable1Undirected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table1(3, int64(i))
		if rep.Mismatches() != 0 {
			b.Fatal("Table 1 mismatch")
		}
	}
}

// BenchmarkTable2Equivalences is E2: Theorem 17's equivalences.
func BenchmarkTable2Equivalences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table2(4, int64(i))
		if rep.Mismatches() != 0 {
			b.Fatal("Theorem 17 mismatch")
		}
	}
}

// BenchmarkFig1a is E3: the Figure 1(a) claims plus a BW run.
func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFig1a(int64(i))
		if err != nil || !rep.BWConverged {
			b.Fatalf("fig1a failed: %v", err)
		}
	}
}

// BenchmarkFig1b3Reach is the heart of E4: the exhaustive bitmask check
// that the 14-node Figure 1(b) graph satisfies 3-reach for f = 2.
func BenchmarkFig1b3Reach(b *testing.B) {
	g := graph.Fig1b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := cond.Check3Reach(g, 2); !ok {
			b.Fatal("fig1b must satisfy 3-reach")
		}
	}
}

// BenchmarkFig1bDisjointPaths measures the Menger computation behind the
// "only 2f = 4 disjoint paths" claim.
func BenchmarkFig1bDisjointPaths(b *testing.B) {
	g := graph.Fig1b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.MaxDisjointPaths(0, 7, graph.EmptySet) != 4 {
			b.Fatal("disjoint path count wrong")
		}
	}
}

// BenchmarkBWSufficiency is a single E5 cell: BW on the wheel with a
// relay-tampering Byzantine node.
func BenchmarkBWSufficiency(b *testing.B) {
	g := repro.Fig1a()
	inputs := []float64{0, 4, 1, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunBW(g, inputs, repro.Options{
			F: 1, K: 4, Eps: 0.5, Seed: int64(i),
			Faults: map[int]repro.Fault{1: {Kind: "tamper", Params: map[string]float64{"delta": 50}}},
		})
		if err != nil || !res.Converged || !res.ValidityOK {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkConvergenceRate is E6: the Lemma 15 contraction series.
func BenchmarkConvergenceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunConvergence(int64(i))
		if err != nil || rep.Violations != 0 {
			b.Fatalf("convergence failed: %v", err)
		}
	}
}

// BenchmarkNecessity is E7: the Theorem 18 construction on K3.
func BenchmarkNecessity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunNecessity(int64(i))
		if err != nil || !rep.Violated {
			b.Fatalf("necessity failed: %v", err)
		}
	}
}

// BenchmarkAADvsBW is E8: baseline comparison on cliques.
func BenchmarkAADvsBW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunAADComparison(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			if !row.BothOK {
				b.Fatal("comparison failed")
			}
		}
	}
}

// BenchmarkIterativeAblation is E9: local algorithms vs BW.
func BenchmarkIterativeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunIterativeAblation(int64(i))
		if err != nil || !rep.TwoCliqueStalled || !rep.BWConverged {
			b.Fatalf("ablation failed: %v", err)
		}
	}
}

// BenchmarkKReach is E10: the generalized condition family.
func BenchmarkKReach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.RunKReach(); !rep.AllMatch() {
			b.Fatal("hierarchy mismatch")
		}
	}
}

// BenchmarkStructureTheorems is E11 on the Figure 1(a) graph.
func BenchmarkStructureTheorems(b *testing.B) {
	g := graph.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := cond.CheckTheorem5(g, 1); !rep.Ok() {
			b.Fatal(rep.Failure)
		}
		if rep := cond.CheckTheorem12(g, 1); !rep.Ok() {
			b.Fatal(rep.Failure)
		}
	}
}

// BenchmarkCrashCell covers Table 2's crash/asynchronous cell (Theorem 2).
func BenchmarkCrashCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunCrashCell(int64(i))
		if err != nil || !rep.Converged {
			b.Fatalf("crash cell failed: %v", err)
		}
	}
}

// relayNode is a minimal protocol for measuring engine dispatch overhead:
// each delivery does O(1) work and forwards one message, so nearly all the
// measured time is the simulator's own per-delivery cost.
type relayNode struct {
	id   int
	hops int
	got  int
}

type relayPayload int

func (relayPayload) Kind() string { return "RELAY" }

func (r *relayNode) ID() int { return r.id }

func (r *relayNode) Start(out *sim.Outbox) {
	if r.hops > 0 {
		out.Broadcast(relayPayload(r.hops))
	}
}

func (r *relayNode) Deliver(m transport.Message, out *sim.Outbox) {
	r.got++
	if p := m.Payload.(relayPayload); p > 1 {
		out.Send((r.id+1)%out.Graph().N(), p-1)
	}
}

func (r *relayNode) Output() (float64, bool) { return float64(r.got), true }

// BenchmarkEngineDispatch isolates per-delivery engine overhead on a
// trivial relay workload: the inline engine's direct calls against the
// goroutine engine's channel round-trips (~10x on one CPU). This is the
// engine machinery's own speedup; end-to-end protocol speedups
// (BenchmarkBWEngines) are smaller because protocol work dominates there.
func BenchmarkEngineDispatch(b *testing.B) {
	g := graph.Clique(6)
	for _, name := range repro.EngineNames() {
		eng, err := sim.EngineByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hs := make([]sim.Handler, g.N())
				for j := range hs {
					hs[j] = &relayNode{id: j, hops: 500}
				}
				r, err := sim.New(sim.Config{Graph: g,
					Policy: transport.NewRandomPolicy(int64(i)), Engine: eng}, hs)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Steps()), "deliveries/run")
			}
		})
	}
}

// BenchmarkBWEngines compares the execution engines on the BW convergence
// workload (the E6 graph with a Byzantine tamperer): identical schedules
// and outputs, different invocation machinery. Here protocol work (path
// flooding, storage) dominates, so the inline margin is smaller than the
// raw dispatch margin of BenchmarkEngineDispatch.
func BenchmarkBWEngines(b *testing.B) {
	g := repro.Fig1a()
	inputs := []float64{0, 4, 1, 3, 2}
	for _, engine := range repro.EngineNames() {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := repro.RunBW(g, inputs, repro.Options{
					F: 1, K: 4, Eps: 0.25, Seed: int64(i), Engine: engine,
					Faults: map[int]repro.Fault{1: {Kind: "tamper", Params: map[string]float64{"delta": 50}}},
				})
				if err != nil || !res.Converged || !res.ValidityOK {
					b.Fatalf("run failed: %v %+v", err, res)
				}
				b.ReportMetric(float64(res.Steps), "deliveries/run")
			}
		})
	}
}

// BenchmarkSweepWorkers compares the sequential and parallel sweep runners
// on identical workloads (byte-identical reports; see the determinism
// tests) — the scaling knob for multi-run experiments.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := experiments.RunSweepExec(context.Background(), 6, 1234, experiments.Exec{Workers: workers})
				if err != nil || !rep.AllPassed() {
					b.Fatalf("sweep failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkScalability is E12: BW end-to-end cost by network size on the
// sparse circulant family.
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		g := graph.Circulant(n, 1, 2, 3)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64(i % 3)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := repro.RunBW(g, inputs, repro.Options{F: 1, K: 2, Eps: 0.5, Seed: int64(i)})
				if err != nil || !res.Converged {
					b.Fatalf("n=%d failed: %v", n, err)
				}
				b.ReportMetric(float64(res.MessagesSent), "msgs/run")
			}
		})
	}
}

// BenchmarkRuntimes compares the deterministic inline simulator against the
// live loopback cluster on the fig1a (BW, silent Byzantine node) and
// table1-style clique (AAD) scenarios — the same pairs cmd/benchruntimes
// snapshots into BENCH_1.json. The gap is the price of real concurrency:
// goroutine scheduling plus a full wire encode/decode per message.
func BenchmarkRuntimes(b *testing.B) {
	scenarios := []repro.Scenario{
		{
			Name: "fig1a-bw", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: 1,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		{
			Name: "table1-clique8-aad", Graph: "clique:8", Protocol: "aad",
			F: 2, Eps: 0.25, Seed: 1,
			Faults: []repro.FaultSpec{{Node: 7, Kind: "silent"}},
		},
	}
	for _, s := range scenarios {
		for _, runtime := range []string{repro.RuntimeSim, repro.RuntimeLoopback} {
			b.Run(s.Name+"/"+runtime, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := s.RunOn(context.Background(), runtime)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged || !res.ValidityOK {
						b.Fatalf("%s on %s: %+v", s.Name, runtime, res)
					}
				}
			})
		}
	}
}

// BenchmarkExactMatrix is E15: the exact tier's adversary matrix.
func BenchmarkExactMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunExact(int64(i))
		if err != nil || !rep.AllPassed() {
			b.Fatalf("exact matrix failed: %v", err)
		}
	}
}
