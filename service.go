package repro

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/seedmix"
)

// InstanceFactory is the service tier's bridge into the protocol registry:
// a Scenario materialized once — graph, inputs, normalized options,
// resolved builder — from which per-instance machines are minted on
// demand. Each consensus instance gets its own decorrelated seed
// (seedmix.Mix of the base seed and the instance id), so pipelined
// instances with randomized adversaries or seeded coins do not replay each
// other's streams, while two daemons minting machines for the same
// instance id derive identical per-instance options — the agreement
// protocols' shared-parameter requirement.
type InstanceFactory struct {
	protocol string
	g        *Graph
	inputs   []float64
	opts     Options
	build    BuilderFunc
	honest   NodeSet
}

// NewInstanceFactory materializes the scenario's graph and inputs, resolves
// the protocol's live-runtime builder, and normalizes options — everything
// shared across instances, done once. The scenario's own Protocol is the
// default; NewInstanceFactoryFor overrides it.
func NewInstanceFactory(s Scenario) (*InstanceFactory, error) {
	return NewInstanceFactoryFor(s, s.Protocol)
}

// NewInstanceFactoryFor is NewInstanceFactory with the protocol overridden
// — the daemon uses it to pipeline several protocols over one materialized
// scenario (same graph, inputs and fault plan).
func NewInstanceFactoryFor(s Scenario, protocol string) (*InstanceFactory, error) {
	if protocol == "" {
		return nil, fmt.Errorf("repro: instance factory needs a protocol (valid values are: %v)", Protocols())
	}
	s.Protocol = protocol
	g, inputs, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	build, err := ProtocolBuilder(protocol)
	if err != nil {
		return nil, err
	}
	opts := s.options()
	opts.normalize(inputs)
	honest := graph.EmptySet
	for i := 0; i < g.N(); i++ {
		if _, bad := opts.Faults[i]; !bad {
			honest = honest.Add(i)
		}
	}
	f := &InstanceFactory{protocol: protocol, g: g, inputs: inputs, opts: opts, build: build, honest: honest}
	// Fail at construction, not at the first submit: run the builder once
	// so structural rejections (incomplete graph for the exact tier,
	// n <= 3f, reach violations) surface immediately.
	if _, err := build(g, inputs, f.instOpts(0)); err != nil {
		return nil, err
	}
	return f, nil
}

// Protocol names the factory's protocol.
func (f *InstanceFactory) Protocol() string { return f.protocol }

// Graph returns the materialized topology (shared; do not mutate).
func (f *InstanceFactory) Graph() *Graph { return f.g }

// Inputs returns the materialized input vector (shared; do not mutate).
func (f *InstanceFactory) Inputs() []float64 { return f.inputs }

// Honest is the set of vertices the scenario leaves fault-free.
func (f *InstanceFactory) Honest() NodeSet { return f.honest }

// Eps is the normalized agreement parameter.
func (f *InstanceFactory) Eps() float64 { return f.opts.Eps }

// instOpts derives instance inst's options: the shared normalized options
// with the seed decorrelated per instance.
func (f *InstanceFactory) instOpts(inst uint64) Options {
	opts := f.opts
	opts.Seed = seedmix.Mix(f.opts.Seed, int64(inst))
	return opts
}

// HandlerFor mints vertex id's machine for instance inst, adversary-wrapped
// when the scenario marks the vertex faulty — exactly the machine the
// single-shot cluster path would give that vertex, at the instance's seed.
func (f *InstanceFactory) HandlerFor(inst uint64, id int) (Handler, error) {
	if id < 0 || id >= f.g.N() {
		return nil, fmt.Errorf("repro: instance factory: vertex %d outside graph order %d", id, f.g.N())
	}
	opts := f.instOpts(inst)
	factory, err := f.build(f.g, f.inputs, opts)
	if err != nil {
		return nil, err
	}
	inner, err := factory(id)
	if err != nil {
		return nil, err
	}
	if fl, bad := opts.Faults[id]; bad {
		h, err := adversary.BuildHandler(id, fl.spec(), inner, adversary.NodeSeed(opts.Seed, id))
		if err != nil {
			return nil, fmt.Errorf("repro: fault at node %d: %w", id, err)
		}
		return h, nil
	}
	return inner, nil
}

// HandlersFor mints the full per-vertex machine set for instance inst —
// what an in-process harness (or a conformance test) uses to run a whole
// pipelined instance the way buildHandlers arms a single-shot run.
func (f *InstanceFactory) HandlersFor(inst uint64) ([]Handler, NodeSet, error) {
	opts := f.instOpts(inst)
	factory, err := f.build(f.g, f.inputs, opts)
	if err != nil {
		return nil, graph.EmptySet, err
	}
	return buildHandlers(f.g, f.inputs, opts, factory)
}
