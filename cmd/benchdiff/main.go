// Command benchdiff compares two BENCH_*.json reports cell by cell and
// prints per-rung speedup/regression deltas — the tool behind statements
// like "BENCH_3's parallel engine at 4 workers vs BENCH_2's inline
// baseline". All BENCH generations share one schema
// (internal/experiments.BenchReport), so any pair of files compares.
//
// Cells match on (name, runtime, engine, workers) when both files carry the
// engine columns; a new-file cell with no exact counterpart falls back to
// matching the old file's (name, runtime) cell, which is what compares an
// engine sweep against a plain baseline — every workers rung then reports
// its speedup against the same baseline row. Unmatched cells are listed,
// never silently dropped.
//
// Usage:
//
//	benchdiff BENCH_2.json BENCH_3.json
//	benchdiff -min-ms 5 old.json new.json   # hide sub-5ms cells (noise)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	minMs := flag.Float64("min-ms", 0, "hide cells where both sides ran faster than this (timer noise)")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-min-ms N] OLD.json NEW.json")
	}
	oldRep, err := experiments.LoadBench(flag.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := experiments.LoadBench(flag.Arg(1))
	if err != nil {
		return err
	}

	oldCells := oldRep.Cells()
	byKey := make(map[string]experiments.BenchRun, len(oldCells))
	byBase := make(map[string]experiments.BenchRun, len(oldCells))
	baseDup := make(map[string]bool)
	for _, c := range oldCells {
		byKey[c.Key()] = c
		// BaseKey collisions (an old file that itself has a workers column)
		// make the fallback ambiguous; mark and refuse rather than compare
		// against an arbitrary rung.
		if _, dup := byBase[c.BaseKey()]; dup {
			baseDup[c.BaseKey()] = true
		}
		byBase[c.BaseKey()] = c
	}

	matchedOld := make(map[string]bool)
	var unmatchedNew []experiments.BenchRun
	shown, hidden := 0, 0
	fmt.Printf("%-34s %-16s %-16s %10s %10s %9s\n",
		"cell", "old", "new", "old ms", "new ms", "speedup")
	for _, n := range newRep.Cells() {
		o, exact := byKey[n.Key()]
		if !exact {
			var ok bool
			o, ok = byBase[n.BaseKey()]
			if !ok || baseDup[n.BaseKey()] {
				unmatchedNew = append(unmatchedNew, n)
				continue
			}
		}
		matchedOld[o.Key()] = true
		if o.Ms < *minMs && n.Ms < *minMs {
			hidden++
			continue
		}
		shown++
		fmt.Printf("%-34s %-16s %-16s %10.1f %10.1f %8.2fx%s%s\n",
			cellName(n), configLabel(o), configLabel(n), o.Ms, n.Ms, speedup(o.Ms, n.Ms), frameDelta(o, n), marker(o.Ms, n.Ms))
	}
	if hidden > 0 {
		fmt.Printf("(%d cells under %.0f ms hidden)\n", hidden, *minMs)
	}
	for _, n := range unmatchedNew {
		fmt.Printf("only in %s: %s %s\n", flag.Arg(1), cellName(n), configLabel(n))
	}
	for _, o := range oldCells {
		if !matchedOld[o.Key()] {
			fmt.Printf("only in %s: %s %s\n", flag.Arg(0), cellName(o), configLabel(o))
		}
	}
	if shown == 0 && len(unmatchedNew) == len(newRep.Cells()) {
		return fmt.Errorf("no cells matched between %s and %s", flag.Arg(0), flag.Arg(1))
	}
	return nil
}

// cellName renders the cell's identity: the scenario name plus the runtime
// when one is recorded.
func cellName(r experiments.BenchRun) string {
	if r.Runtime == "" {
		return r.Name
	}
	return r.Name + "/" + r.Runtime
}

// configLabel renders the cell's engine configuration column.
func configLabel(r experiments.BenchRun) string {
	e := r.Engine
	if e == "" {
		e = "inline"
	}
	if r.Workers > 0 {
		e = fmt.Sprintf("%s/w%d", e, r.Workers)
	}
	if r.Policy != "" {
		e += "+" + r.Policy
	}
	return e
}

// frameDelta renders the throughput and frame-path columns when either
// side carries them: decisions/sec (service cells), ns-per-frame (the
// micro cells' headline metric — BENCH_7's dispatch-inbox cell included)
// and allocs-per-frame. An absent column prints as "n/a" so a BENCH_5
// baseline that predates it reads as "not measured", not "was zero"; a
// micro cell's measured 0 allocs/op still prints as 0.00 because
// NsPerFrame marks the cell as measured.
func frameDelta(o, n experiments.BenchRun) string {
	var s string
	if o.PerSec > 0 || n.PerSec > 0 {
		s += fmt.Sprintf("  dec/s %s->%s", num(o.PerSec, o.PerSec > 0, "%.1f"), num(n.PerSec, n.PerSec > 0, "%.1f"))
	}
	if o.NsPerFrame > 0 || n.NsPerFrame > 0 {
		s += fmt.Sprintf("  ns/frame %s->%s", num(o.NsPerFrame, o.NsPerFrame > 0, "%.0f"), num(n.NsPerFrame, n.NsPerFrame > 0, "%.0f"))
	}
	oAllocs := o.AllocsPerFrame > 0 || o.NsPerFrame > 0
	nAllocs := n.AllocsPerFrame > 0 || n.NsPerFrame > 0
	if oAllocs || nAllocs {
		s += fmt.Sprintf("  allocs/frame %s->%s", num(o.AllocsPerFrame, oAllocs, "%.2f"), num(n.AllocsPerFrame, nAllocs, "%.2f"))
	}
	return s
}

// num formats a possibly-unmeasured value.
func num(v float64, measured bool, format string) string {
	if !measured {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// speedup is old/new: >1 means the new file's cell is faster.
func speedup(oldMs, newMs float64) float64 {
	if newMs <= 0 {
		return 0
	}
	return oldMs / newMs
}

// marker flags regressions worse than 10% so they stand out in the table.
func marker(oldMs, newMs float64) string {
	if newMs > oldMs*1.1 {
		return "  <-- regression"
	}
	return ""
}
