// Command benchruntimes measures the execution runtimes against each other.
//
// The default suite runs the fig1a BW and table1-style clique AAD scenarios
// (both with a silent Byzantine node) on the deterministic inline simulator
// and on the live loopback cluster; BENCH_1.json in the repository root is
// its committed snapshot.
//
// The scale suite runs the E14 scale-out ladder — Algorithm BW on directed
// cycles with an explicit zero fault bound and the iterative baseline on
// torus/expander families, from n = 8 up to n = 1024 — and BENCH_2.json is
// its committed snapshot: the scaling trajectory of the delivery core.
//
// Usage:
//
//	benchruntimes                            # default suite, print only
//	benchruntimes -json BENCH_1.json         # also write the JSON report
//	benchruntimes -suite scale -json BENCH_2.json
//	benchruntimes -suite scale -maxn 128     # cap the ladder
//	benchruntimes -reps 5 -seed 7            # more repetitions, other seed
//	benchruntimes -runtimes sim,loopback,tcp # default suite runtime set
//	benchruntimes -cpuprofile cpu.out        # stock pprof profiles
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/prof"
)

// defaultScenarios are the benchmarked pairs of the default suite; keep in
// sync with the root BenchmarkRuntimes benchmark.
func defaultScenarios(seed int64) []repro.Scenario {
	return []repro.Scenario{
		{
			Name: "fig1a-bw", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		{
			Name: "table1-clique8-aad", Graph: "clique:8", Protocol: "aad",
			F: 2, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 7, Kind: "silent"}},
		},
	}
}

type runRecord struct {
	Name      string  `json:"name"`
	Runtime   string  `json:"runtime"`
	Ms        float64 `json:"ms"` // best-of-reps wall time
	Steps     int     `json:"steps"`
	Sends     int     `json:"sends"`
	Decided   bool    `json:"decided"`
	Converged bool    `json:"converged"`
	Valid     bool    `json:"valid"`
	// Scale-suite columns (omitted by the default suite).
	Protocol string `json:"protocol,omitempty"`
	Family   string `json:"family,omitempty"`
	N        int    `json:"n,omitempty"`
	F        int    `json:"f,omitempty"`
}

type report struct {
	Suite   string      `json:"suite"`
	Seed    int64       `json:"seed"`
	Reps    int         `json:"reps"`
	Runs    []runRecord `json:"runs"`
	Skipped []string    `json:"skipped,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchruntimes:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		suite      = flag.String("suite", "default", "benchmark suite: default | scale (the E14 ladder)")
		seed       = flag.Int64("seed", 1, "scenario seed")
		reps       = flag.Int("reps", 0, "repetitions per cell, best time wins (0 = 3 for the default suite, 1 for scale)")
		maxN       = flag.Int("maxn", 0, "scale suite: largest graph order to run (0 = the full ladder to 1024)")
		names      = flag.String("runtimes", "sim,loopback", "comma-separated runtimes for the default suite (see abacsim -list)")
		jsonPath   = flag.String("json", "", "also write the report to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchruntimes:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *suite {
	case "default":
		if *reps == 0 {
			*reps = 3
		}
		return runDefault(ctx, *seed, *reps, *names, *jsonPath)
	case "scale":
		if *reps == 0 {
			*reps = 1
		}
		return runScale(ctx, *seed, *reps, *maxN, *jsonPath)
	default:
		return fmt.Errorf("unknown suite %q (valid values are: default, scale)", *suite)
	}
}

func runDefault(ctx context.Context, seed int64, reps int, names, jsonPath string) error {
	var runtimes []string
	for _, r := range strings.Split(names, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		ok := false
		for _, known := range repro.RuntimeNames() {
			if r == known {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown runtime %q (valid values are: %v)", r, repro.RuntimeNames())
		}
		runtimes = append(runtimes, r)
	}

	rep := report{Suite: "default", Seed: seed, Reps: reps}
	fmt.Printf("%-22s %-10s %12s %10s %10s\n", "scenario", "runtime", "best ms", "steps", "sends")
	for _, s := range defaultScenarios(seed) {
		base := -1.0
		for _, runtime := range runtimes {
			rec, err := measure(ctx, s, runtime, reps)
			if err != nil {
				return err
			}
			if !rec.Converged || !rec.Valid {
				return fmt.Errorf("%s on %s: run failed its own acceptance (converged=%v validity=%v)",
					s.Name, runtime, rec.Converged, rec.Valid)
			}
			rep.Runs = append(rep.Runs, rec)
			suffix := ""
			if base < 0 {
				base = rec.Ms
			} else if base > 0 {
				suffix = fmt.Sprintf("  (%.2fx vs %s)", rec.Ms/base, runtimes[0])
			}
			fmt.Printf("%-22s %-10s %12.3f %10d %10d%s\n",
				s.Name, runtime, rec.Ms, rec.Steps, rec.Sends, suffix)
		}
	}
	return write(rep, jsonPath)
}

func runScale(ctx context.Context, seed int64, reps, maxN int, jsonPath string) error {
	rep := report{Suite: "scale", Seed: seed, Reps: reps}
	fmt.Printf("%-10s %-9s %-5s %-3s %-9s %12s %10s %10s\n",
		"protocol", "family", "n", "f", "runtime", "best ms", "steps", "sends")
	for _, c := range experiments.ScaleCases(seed, maxN) {
		for _, runtime := range c.Runtimes {
			rec, err := measure(ctx, c.Scenario, runtime, reps)
			if err != nil {
				return err
			}
			rec.Protocol = c.Scenario.Protocol
			rec.Family = c.Family
			rec.N = c.N
			rec.F = c.F
			rep.Runs = append(rep.Runs, rec)
			fmt.Printf("%-10s %-9s %-5d %-3d %-9s %12.1f %10d %10d\n",
				rec.Protocol, rec.Family, rec.N, rec.F, runtime, rec.Ms, rec.Steps, rec.Sends)
		}
		if c.SkipNote != "" {
			rep.Skipped = append(rep.Skipped, c.SkipNote)
		}
	}
	for _, s := range rep.Skipped {
		fmt.Printf("skipped: %s\n", s)
	}
	return write(rep, jsonPath)
}

// measure runs one (scenario, runtime) cell reps times and keeps the best
// wall time.
func measure(ctx context.Context, s repro.Scenario, runtime string, reps int) (runRecord, error) {
	if reps < 1 {
		reps = 1
	}
	rec := runRecord{Name: s.Name, Runtime: runtime, Ms: -1}
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		start := time.Now()
		res, err := s.RunOn(ctx, runtime)
		if err != nil {
			return rec, fmt.Errorf("%s on %s: %w", s.Name, runtime, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if rec.Ms < 0 || ms < rec.Ms {
			rec.Ms = ms
		}
		rec.Steps, rec.Sends = res.Steps, res.MessagesSent
		rec.Decided, rec.Converged, rec.Valid = res.Decided, res.Converged, res.ValidityOK
	}
	return rec, nil
}

func write(rep report, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
