// Command benchruntimes measures the execution runtimes against each other.
//
// The default suite runs the fig1a BW and table1-style clique AAD scenarios
// (both with a silent Byzantine node) on the deterministic inline simulator
// and on the live loopback cluster; BENCH_1.json in the repository root is
// its committed snapshot.
//
// The scale suite runs the E14 scale-out ladder — Algorithm BW on directed
// cycles with an explicit zero fault bound and the iterative baseline on
// torus/expander families, from n = 8 up to the build's node limit — and
// BENCH_2.json is its committed snapshot: the scaling trajectory of the
// delivery core. With -engine parallel and an -engine-workers list, every
// sim cell is measured once per worker count (the BENCH_3.json workers
// column); parallel-engine cells run under the fifo delivery policy, the
// schedule the engine can batch, so the worker counts compare like with
// like.
//
// All BENCH_*.json files share one schema (internal/experiments.BenchReport);
// cmd/benchdiff compares any two.
//
// Usage:
//
//	benchruntimes                            # default suite, print only
//	benchruntimes -json BENCH_1.json         # also write the JSON report
//	benchruntimes -suite scale -json BENCH_2.json
//	benchruntimes -suite scale -maxn 128     # cap the ladder
//	benchruntimes -suite scale -engine parallel -engine-workers 1,2,4 -json BENCH_3.json
//	benchruntimes -reps 5 -seed 7            # more repetitions, other seed
//	benchruntimes -runtimes sim,loopback,tcp # default suite runtime set
//	benchruntimes -cpuprofile cpu.out        # stock pprof profiles
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/prof"
)

// defaultScenarios are the benchmarked pairs of the default suite; keep in
// sync with the root BenchmarkRuntimes benchmark.
func defaultScenarios(seed int64) []repro.Scenario {
	return []repro.Scenario{
		{
			Name: "fig1a-bw", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		{
			Name: "table1-clique8-aad", Graph: "clique:8", Protocol: "aad",
			F: 2, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 7, Kind: "silent"}},
		},
	}
}

// engineConfig is one engine configuration a sim cell is measured under.
type engineConfig struct {
	engine  string
	workers int
	policy  string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchruntimes:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		suite      = flag.String("suite", "default", "benchmark suite: default | scale (the E14 ladder)")
		seed       = flag.Int64("seed", 1, "scenario seed")
		reps       = flag.Int("reps", 0, "repetitions per cell, best time wins (0 = 3 for the default suite, 1 for scale)")
		maxN       = flag.Int("maxn", 0, "scale suite: largest graph order to run (0 = the full ladder)")
		names      = flag.String("runtimes", "sim,loopback", "comma-separated runtimes for the default suite (see abacsim -list)")
		engine     = flag.String("engine", "", "sim execution engine: inline (default) | goroutine | parallel")
		eworkers   = flag.String("engine-workers", "", "comma-separated worker counts; each sim cell is measured once per count (engines that take workers, e.g. -engine parallel -engine-workers 1,2,4)")
		jsonPath   = flag.String("json", "", "also write the report to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	configs, notes, err := engineConfigs(*engine, *eworkers)
	if err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchruntimes:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *suite {
	case "default":
		if *reps == 0 {
			*reps = 3
		}
		return runDefault(ctx, *seed, *reps, *names, configs, notes, *jsonPath)
	case "scale":
		if *reps == 0 {
			*reps = 1
		}
		return runScale(ctx, *seed, *reps, *maxN, configs, notes, *jsonPath)
	default:
		return fmt.Errorf("unknown suite %q (valid values are: default, scale)", *suite)
	}
}

// engineConfigs expands the -engine/-engine-workers flags into the engine
// configurations every sim cell is measured under. The parallel engine's
// cells run under the fifo policy — the injection-immune schedule the
// engine can actually batch — so the worker counts compare the same
// schedule; the override is recorded on every cell and in the report notes.
func engineConfigs(engine, workersList string) ([]engineConfig, []string, error) {
	if engine == "" && workersList != "" {
		return nil, nil, fmt.Errorf("-engine-workers needs -engine (an engine that takes workers, e.g. parallel)")
	}
	if engine == "" {
		return []engineConfig{{}}, nil, nil
	}
	found := false
	for _, known := range repro.EngineNames() {
		if engine == known {
			found = true
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("unknown engine %q (valid values are: %v)", engine, repro.EngineNames())
	}
	policy := ""
	var notes []string
	if engine == "parallel" {
		policy = "fifo"
		notes = append(notes, "parallel-engine cells run under the fifo delivery policy (the schedule the engine batches); other cells keep the scenario default")
	}
	if workersList == "" {
		return []engineConfig{{engine: engine, policy: policy}}, notes, nil
	}
	var configs []engineConfig
	for _, tok := range strings.Split(workersList, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w, err := strconv.Atoi(tok)
		if err != nil || w < 1 {
			return nil, nil, fmt.Errorf("-engine-workers: %q is not a positive integer", tok)
		}
		configs = append(configs, engineConfig{engine: engine, workers: w, policy: policy})
	}
	if len(configs) == 0 {
		return nil, nil, fmt.Errorf("-engine-workers: empty list")
	}
	return configs, notes, nil
}

// applyConfig overlays one engine configuration onto a sim scenario.
func applyConfig(s repro.Scenario, cfg engineConfig) repro.Scenario {
	s.Engine = cfg.engine
	s.EngineWorkers = cfg.workers
	if cfg.policy != "" {
		s.Policy = &repro.PolicySpec{Name: cfg.policy}
	}
	return s
}

// cellConfigs returns the engine configurations for one (scenario, runtime)
// cell: the full set on the simulator, the single default elsewhere (a
// cluster has no central engine).
func cellConfigs(runtime string, configs []engineConfig) []engineConfig {
	if runtime == repro.RuntimeSim {
		return configs
	}
	return []engineConfig{{}}
}

func runDefault(ctx context.Context, seed int64, reps int, names string, configs []engineConfig, notes []string, jsonPath string) error {
	var runtimes []string
	for _, r := range strings.Split(names, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		ok := false
		for _, known := range repro.RuntimeNames() {
			if r == known {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown runtime %q (valid values are: %v)", r, repro.RuntimeNames())
		}
		runtimes = append(runtimes, r)
	}

	rep := experiments.BenchReport{Suite: "default", Seed: seed, Reps: reps, Notes: notes}
	fmt.Printf("%-22s %-10s %-12s %12s %10s %10s\n", "scenario", "runtime", "engine", "best ms", "steps", "sends")
	for _, s := range defaultScenarios(seed) {
		base := -1.0
		for _, runtime := range runtimes {
			for _, cfg := range cellConfigs(runtime, configs) {
				rec, err := measure(ctx, applyConfig(s, cfg), runtime, reps, cfg)
				if err != nil {
					return err
				}
				if !rec.Converged || !rec.Valid {
					return fmt.Errorf("%s on %s: run failed its own acceptance (converged=%v validity=%v)",
						s.Name, runtime, rec.Converged, rec.Valid)
				}
				rep.Runs = append(rep.Runs, rec)
				suffix := ""
				if base < 0 {
					base = rec.Ms
				} else if base > 0 {
					suffix = fmt.Sprintf("  (%.2fx vs %s)", rec.Ms/base, runtimes[0])
				}
				fmt.Printf("%-22s %-10s %-12s %12.3f %10d %10d%s\n",
					s.Name, runtime, engineLabel(cfg), rec.Ms, rec.Steps, rec.Sends, suffix)
			}
		}
	}
	return write(rep, jsonPath)
}

func runScale(ctx context.Context, seed int64, reps, maxN int, configs []engineConfig, notes []string, jsonPath string) error {
	rep := experiments.BenchReport{Suite: "scale", Seed: seed, Reps: reps, Notes: notes}
	fmt.Printf("%-10s %-9s %-5s %-3s %-9s %-12s %12s %10s %10s\n",
		"protocol", "family", "n", "f", "runtime", "engine", "best ms", "steps", "sends")
	for _, c := range experiments.ScaleCases(seed, maxN) {
		for _, runtime := range c.Runtimes {
			for _, cfg := range cellConfigs(runtime, configs) {
				rec, err := measure(ctx, applyConfig(c.Scenario, cfg), runtime, reps, cfg)
				if err != nil {
					return err
				}
				rec.Protocol = c.Scenario.Protocol
				rec.Family = c.Family
				rec.N = c.N
				rec.F = c.F
				rep.Runs = append(rep.Runs, rec)
				fmt.Printf("%-10s %-9s %-5d %-3d %-9s %-12s %12.1f %10d %10d\n",
					rec.Protocol, rec.Family, rec.N, rec.F, runtime, engineLabel(cfg), rec.Ms, rec.Steps, rec.Sends)
			}
		}
		if c.SkipNote != "" {
			rep.Skipped = append(rep.Skipped, c.SkipNote)
		}
	}
	for _, s := range rep.Skipped {
		fmt.Printf("skipped: %s\n", s)
	}
	return write(rep, jsonPath)
}

// engineLabel renders one engine configuration for the console table.
func engineLabel(cfg engineConfig) string {
	if cfg.engine == "" {
		return "inline"
	}
	if cfg.workers > 0 {
		return fmt.Sprintf("%s/w%d", cfg.engine, cfg.workers)
	}
	return cfg.engine
}

// measure runs one (scenario, runtime, engine-config) cell reps times and
// keeps the best wall time.
func measure(ctx context.Context, s repro.Scenario, runtime string, reps int, cfg engineConfig) (experiments.BenchRun, error) {
	if reps < 1 {
		reps = 1
	}
	rec := experiments.BenchRun{
		Name: s.Name, Runtime: runtime,
		Engine: cfg.engine, Workers: cfg.workers, Policy: cfg.policy,
		Ms: -1,
	}
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		start := time.Now()
		res, err := s.RunOn(ctx, runtime)
		if err != nil {
			return rec, fmt.Errorf("%s on %s: %w", s.Name, runtime, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if rec.Ms < 0 || ms < rec.Ms {
			rec.Ms = ms
		}
		rec.Steps, rec.Sends = res.Steps, res.MessagesSent
		rec.Decided, rec.Converged, rec.Valid = res.Decided, res.Converged, res.ValidityOK
	}
	return rec, nil
}

func write(rep experiments.BenchReport, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
