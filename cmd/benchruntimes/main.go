// Command benchruntimes measures the execution runtimes against each other:
// the same scenarios (the fig1a BW run and the table1-style clique AAD run,
// both with a silent Byzantine node) execute on the deterministic inline
// simulator and on the live loopback cluster, and the best-of-N wall times
// land in a JSON report. BENCH_1.json in the repository root is this
// command's committed snapshot — the start of the runtime-performance
// trajectory next to BENCH_0.json's engine baseline.
//
// Usage:
//
//	benchruntimes                      # print the comparison
//	benchruntimes -json BENCH_1.json   # also write the JSON report
//	benchruntimes -reps 5 -seed 7      # more repetitions, other seed
//	benchruntimes -runtimes sim,loopback,tcp
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
)

// scenarios are the benchmarked pairs; keep in sync with the root
// BenchmarkRuntimes benchmark.
func scenarios(seed int64) []repro.Scenario {
	return []repro.Scenario{
		{
			Name: "fig1a-bw", Graph: "fig1a", Protocol: "bw",
			Inputs: []float64{0, 4, 1, 3, 2}, F: 1, K: 4, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 1, Kind: "silent"}},
		},
		{
			Name: "table1-clique8-aad", Graph: "clique:8", Protocol: "aad",
			F: 2, Eps: 0.25, Seed: seed,
			Faults: []repro.FaultSpec{{Node: 7, Kind: "silent"}},
		},
	}
}

type runRecord struct {
	Name    string  `json:"name"`
	Runtime string  `json:"runtime"`
	Ms      float64 `json:"ms"` // best-of-reps wall time
	Steps   int     `json:"steps"`
	Sends   int     `json:"sends"`
}

type report struct {
	Seed int64       `json:"seed"`
	Reps int         `json:"reps"`
	Runs []runRecord `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchruntimes:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "scenario seed")
		reps     = flag.Int("reps", 3, "repetitions per cell (best time wins)")
		names    = flag.String("runtimes", "sim,loopback", "comma-separated runtimes to compare (see abacsim -list)")
		jsonPath = flag.String("json", "", "also write the report to this JSON file")
	)
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}
	var runtimes []string
	for _, r := range strings.Split(*names, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		ok := false
		for _, known := range repro.RuntimeNames() {
			if r == known {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown runtime %q (valid values are: %v)", r, repro.RuntimeNames())
		}
		runtimes = append(runtimes, r)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep := report{Seed: *seed, Reps: *reps}
	fmt.Printf("%-22s %-10s %12s %10s %10s\n", "scenario", "runtime", "best ms", "steps", "sends")
	for _, s := range scenarios(*seed) {
		base := -1.0
		for _, runtime := range runtimes {
			rec := runRecord{Name: s.Name, Runtime: runtime, Ms: -1}
			for i := 0; i < *reps; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				start := time.Now()
				res, err := s.RunOn(ctx, runtime)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", s.Name, runtime, err)
				}
				if !res.Converged || !res.ValidityOK {
					return fmt.Errorf("%s on %s: run failed its own acceptance (spread %g, validity %v)",
						s.Name, runtime, res.Spread, res.ValidityOK)
				}
				ms := float64(time.Since(start).Microseconds()) / 1000
				if rec.Ms < 0 || ms < rec.Ms {
					rec.Ms = ms
				}
				rec.Steps, rec.Sends = res.Steps, res.MessagesSent
			}
			rep.Runs = append(rep.Runs, rec)
			suffix := ""
			if base < 0 {
				base = rec.Ms
			} else if base > 0 {
				suffix = fmt.Sprintf("  (%.2fx vs %s)", rec.Ms/base, runtimes[0])
			}
			fmt.Printf("%-22s %-10s %12.3f %10d %10d%s\n",
				s.Name, runtime, rec.Ms, rec.Steps, rec.Sends, suffix)
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
