package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSpec(t *testing.T) {
	g, err := load("clique:4", "")
	if err != nil || g.N() != 4 {
		t.Fatalf("load spec: %v %v", g, err)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("# tiny\nn 3\ne 0 1\ne 1 2\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	g, err := load("", path)
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("load file: %v %v", g, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := load("clique:4", "x.txt"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := load("", "/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
}
